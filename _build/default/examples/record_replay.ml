(* The §3.3 implication, end to end: diagnose a bug once, record just the
   order of the racing accesses in a failing run, then replay that coarse
   schedule under a seed whose natural interleaving would NOT fail — the
   failure reproduces on demand.

   Run with: dune exec examples/record_replay.exe *)

module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty

(* A deliberately knife-edge race: whether main's teardown beats the
   logger's flush depends only on scheduling jitter, so seeds split
   between failing and passing runs. *)
let build () =
  let m = Lir.Irmod.create "rr" in
  ignore (Lir.Irmod.declare_struct m "Msg" [ T.I64 ]);
  Lir.Irmod.declare_global m "mailbox" (T.Ptr (T.Struct "Msg"));
  B.define m "logger" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.io_delay b ~ns:380_000;
      let msg = B.load b ~name:"msg" (V.Global "mailbox") in
      let v = B.load b (B.gep b msg 0) in
      B.call_void b Lir.Intrinsics.print_i64 [ v ];
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let msg = B.malloc b ~name:"msg" (T.Struct "Msg") in
      B.store b ~value:(V.i64 42) ~ptr:(B.gep b msg 0);
      B.store b ~value:msg ~ptr:(V.Global "mailbox");
      let t = B.spawn b "logger" (V.i64 0) in
      B.work b ~ns:380_000;
      B.store b ~value:(V.Null (T.Ptr (T.Struct "Msg"))) ~ptr:(V.Global "mailbox");
      B.call_void b Lir.Intrinsics.print_i64 [ V.i64 0 ];
      B.join b t;
      B.ret_void b);
  Lir.Verify.check_exn m;
  Lir.Irmod.layout m;
  m

let outcome_name r =
  match r.Sim.Interp.outcome with
  | Sim.Interp.Completed -> "completed"
  | Sim.Interp.Failed { failure; _ } -> Sim.Failure.to_string failure
  | Sim.Interp.Stuck -> "stuck"
  | Sim.Interp.Fuel_exhausted -> "fuel exhausted"

let failed r =
  match r.Sim.Interp.outcome with Sim.Interp.Failed _ -> true | _ -> false

let () =
  let m = build () in
  (* Find one failing and one naturally-passing seed. *)
  let rec find p seed =
    if p (Sim.Interp.run ~config:{ Sim.Interp.default_config with seed } m ~entry:"main")
    then seed
    else find p (seed + 1)
  in
  let failing_seed = find failed 1 in
  let passing_seed = find (fun r -> not (failed r)) (failing_seed + 1) in
  Printf.printf "seed %d fails naturally; seed %d passes naturally.\n\n"
    failing_seed passing_seed;
  (* The racy instructions: in a deployment these come from a Snorlax
     diagnosis (Replay.racy_iids_of_pattern); here we mark the mailbox
     store and load by rebuilding with the iids captured. *)
  let racy_iids =
    let found = ref [] in
    Lir.Irmod.iter_instrs m (fun _ _ i ->
        match i.Lir.Instr.kind with
        | Lir.Instr.Store { ptr = Lir.Value.Global "mailbox"; _ }
        | Lir.Instr.Load { ptr = Lir.Value.Global "mailbox"; _ } ->
          found := i.Lir.Instr.iid :: !found
        | _ -> ());
    !found
  in
  (* 1. Record the racing-access order in the failing run. *)
  let r_rec, schedule = Replay.record ~seed:failing_seed m ~entry:"main" ~racy_iids in
  Printf.printf "recorded run: %s\n" (outcome_name r_rec);
  Printf.printf "coarse schedule: %d racing-access events (that is all we store)\n\n"
    (Replay.schedule_length schedule);
  (* 2. The passing seed, unconstrained. *)
  let r_free =
    Sim.Interp.run
      ~config:{ Sim.Interp.default_config with seed = passing_seed }
      m ~entry:"main"
  in
  Printf.printf "seed %d, free run:     %s\n" passing_seed (outcome_name r_free);
  (* 3. The same seed, with the recorded order enforced. *)
  let r_rep, fidelity =
    Replay.replay ~seed:passing_seed m ~entry:"main" ~racy_iids schedule
  in
  Printf.printf "seed %d, under replay: %s\n" passing_seed (outcome_name r_rep);
  Printf.printf "  (%d accesses steered into the recorded order, %d diverged)\n"
    fidelity.Replay.enforced fidelity.Replay.diverged;
  if failed r_rep && not (failed r_free) then
    print_endline
      "\nThe coarse schedule alone reproduced the failure — the record/replay \
       implication of the coarse interleaving hypothesis (section 3.3)."
