examples/atomicity_window.ml: Corpus Lir List Printf Pt Snorlax_core
