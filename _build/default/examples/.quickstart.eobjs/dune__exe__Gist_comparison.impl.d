examples/gist_comparison.ml: Analysis Corpus Experiments Gist List Printf Pt Snorlax_core
