examples/atomicity_window.mli:
