examples/gist_comparison.mli:
