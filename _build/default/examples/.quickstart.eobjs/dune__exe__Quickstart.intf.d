examples/quickstart.mli:
