examples/deadlock_diagnosis.mli:
