examples/quickstart.ml: Corpus Lir List Option Printf Pt Sim Snorlax_core
