examples/record_replay.ml: Lir Printf Replay Sim
