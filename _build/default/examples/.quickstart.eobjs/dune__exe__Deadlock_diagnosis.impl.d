examples/deadlock_diagnosis.ml: Bytes Corpus Lir List Printf Pt Snorlax_core
