(* Tests for the Gist baseline: slice windowing, recurrence counting and
   the instrumentation cost model. *)

module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty

let fixture () =
  let m = Lir.Irmod.create "g" in
  Lir.Irmod.declare_global m "g" T.I64;
  let store_iid = ref (-1) and load_iid = ref (-1) in
  B.define m "producer" ~params:[] ~ret:T.Void (fun b ->
      B.store b ~value:(V.i64 7) ~ptr:(V.Global "g");
      store_iid := B.last_iid b;
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b "producer" [];
      let v = B.load b (V.Global "g") in
      load_iid := B.last_iid b;
      B.call_void b Lir.Intrinsics.print_i64 [ v ];
      B.ret_void b);
  Lir.Verify.check_exn m;
  Lir.Irmod.layout m;
  let pta = Analysis.Pointsto.analyze_all m in
  (m, pta, !store_iid, !load_iid)

let test_plan_windows_partition_slice () =
  let m, pta, _, load_iid = fixture () in
  let plan = Gist.plan m ~points_to:pta ~failing_iid:load_iid in
  let from_windows = List.concat plan.Gist.windows in
  Alcotest.(check int) "windows cover the slice"
    (List.length plan.Gist.slice)
    (List.length from_windows);
  Alcotest.(check (list int)) "same members"
    (List.sort compare plan.Gist.slice)
    (List.sort compare from_windows);
  (* Window 0 holds only the failing instruction. *)
  Alcotest.(check (list int)) "depth-0 window" [ load_iid ]
    (List.hd plan.Gist.windows)

let test_recurrences_grow_with_depth () =
  let m, pta, store_iid, load_iid = fixture () in
  let plan = Gist.plan m ~points_to:pta ~failing_iid:load_iid in
  let r_self = Gist.recurrences_needed plan ~targets:[ load_iid ] in
  let r_store = Gist.recurrences_needed plan ~targets:[ store_iid ] in
  Alcotest.(check int) "anchor found in first window" 1 r_self;
  Alcotest.(check bool) "deeper target needs more recurrences" true
    (r_store > r_self)

let test_recurrences_monotone_in_targets () =
  let m, pta, store_iid, load_iid = fixture () in
  let plan = Gist.plan m ~points_to:pta ~failing_iid:load_iid in
  let r_one = Gist.recurrences_needed plan ~targets:[ load_iid ] in
  let r_both = Gist.recurrences_needed plan ~targets:[ load_iid; store_iid ] in
  Alcotest.(check bool) "more targets never need fewer" true (r_both >= r_one)

let test_unreachable_target_bounded () =
  let m, pta, _, load_iid = fixture () in
  let plan = Gist.plan m ~points_to:pta ~failing_iid:load_iid in
  let r = Gist.recurrences_needed plan ~targets:[ 999_999 ] in
  Alcotest.(check int) "one past the last window"
    (List.length plan.Gist.windows + 1)
    r

let test_monitored_after_prefix () =
  let m, pta, _, load_iid = fixture () in
  let plan = Gist.plan m ~points_to:pta ~failing_iid:load_iid in
  let m1 = Gist.monitored_after plan ~recurrences:1 in
  let m2 = Gist.monitored_after plan ~recurrences:2 in
  Alcotest.(check bool) "monitoring only widens" true
    (List.for_all (fun iid -> List.mem iid m2) m1)

let test_instrument_costs () =
  let costs = { Gist.per_event_ns = 1.0; contention_ns = 0.5 } in
  let hooks = Gist.instrument_hooks ~monitored:(fun iid -> iid = 7) ~threads:4 ~costs in
  match hooks.Sim.Hooks.on_instr with
  | None -> Alcotest.fail "no instr hook"
  | Some f ->
    let load_instr iid =
      Lir.Instr.make ~iid
        (Lir.Instr.Load
           {
             dst = { Lir.Value.rid = 0; rname = "x"; rty = T.I64 };
             ptr = V.Null (T.Ptr T.I64);
           })
    in
    Alcotest.(check (float 1e-9)) "monitored access charged"
      (1.0 +. (0.5 *. 3.0))
      (f ~tid:0 ~time:0.0 (load_instr 7));
    Alcotest.(check (float 1e-9)) "unmonitored access free" 0.0
      (f ~tid:0 ~time:0.0 (load_instr 8));
    Alcotest.(check (float 1e-9)) "non-access free" 0.0
      (f ~tid:0 ~time:0.0 (Lir.Instr.make ~iid:7 (Lir.Instr.Br "x")))

let test_latency_factor () =
  Alcotest.(check (float 1e-9)) "multiplies" 2523.0
    (Gist.latency_factor_vs_snorlax ~recurrences:3 ~tracked_bugs:841);
  Alcotest.(check (float 1e-9)) "single bug" 4.0
    (Gist.latency_factor_vs_snorlax ~recurrences:4 ~tracked_bugs:1)

let tests =
  [
    ( "gist",
      [
        Alcotest.test_case "windows partition slice" `Quick
          test_plan_windows_partition_slice;
        Alcotest.test_case "recurrences grow with depth" `Quick
          test_recurrences_grow_with_depth;
        Alcotest.test_case "recurrences monotone" `Quick
          test_recurrences_monotone_in_targets;
        Alcotest.test_case "unreachable bounded" `Quick test_unreachable_target_bounded;
        Alcotest.test_case "monitoring widens" `Quick test_monitored_after_prefix;
        Alcotest.test_case "instrument costs" `Quick test_instrument_costs;
        Alcotest.test_case "latency factor" `Quick test_latency_factor;
      ] );
  ]
