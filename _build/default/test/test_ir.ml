(* Tests for the LIR substrate: types, values, instructions, the builder
   DSL, module layout/lookup, the verifier and the CFG utilities. *)

module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty

let mk_module () =
  let m = Lir.Irmod.create "t" in
  ignore (Lir.Irmod.declare_struct m "Pair" [ T.I64; T.Ptr T.I64 ]);
  m

(* --- types -------------------------------------------------------------- *)

let test_ty_equal () =
  Alcotest.(check bool) "ptr equal" true (T.equal (T.Ptr T.I64) (T.Ptr T.I64));
  Alcotest.(check bool) "ptr differs" false (T.equal (T.Ptr T.I64) (T.Ptr T.I8));
  Alcotest.(check bool) "struct by name" true
    (T.equal (T.Struct "Q") (T.Struct "Q"));
  Alcotest.(check bool) "array arity" false
    (T.equal (T.Array (T.I8, 3)) (T.Array (T.I8, 4)))

let test_ty_pointee () =
  Alcotest.(check bool) "pointee" true (T.equal T.I32 (T.pointee (T.Ptr T.I32)));
  Alcotest.check_raises "pointee of int"
    (Invalid_argument "Ty.pointee: not a pointer: i64") (fun () ->
      ignore (T.pointee T.I64))

let test_ty_sizes () =
  let m = mk_module () in
  let size ty = Lir.Irmod.size_of m ty in
  Alcotest.(check int) "i1" 1 (size T.I1);
  Alcotest.(check int) "i8" 1 (size T.I8);
  Alcotest.(check int) "i32" 4 (size T.I32);
  Alcotest.(check int) "i64" 8 (size T.I64);
  Alcotest.(check int) "ptr" 8 (size (T.Ptr (T.Struct "Pair")));
  Alcotest.(check int) "struct = sum" 16 (size (T.Struct "Pair"));
  Alcotest.(check int) "array" 24 (size (T.Array (T.I64, 3)))

let test_ty_to_string () =
  Alcotest.(check string) "nested ptr" "i32**" (T.to_string (T.Ptr (T.Ptr T.I32)));
  Alcotest.(check string) "struct" "%struct.Queue*"
    (T.to_string (T.Ptr (T.Struct "Queue")))

(* --- values ------------------------------------------------------------- *)

let test_value_types () =
  let m = mk_module () in
  Lir.Irmod.declare_global m "g" T.I64;
  let globals = Lir.Irmod.global_ty m in
  Alcotest.(check bool) "imm" true (T.equal T.I64 (V.ty_of ~globals (V.i64 3)));
  Alcotest.(check bool) "global is address" true
    (T.equal (T.Ptr T.I64) (V.ty_of ~globals (V.Global "g")));
  Alcotest.(check bool) "null keeps type" true
    (T.equal (T.Ptr T.I8) (V.ty_of ~globals (V.Null (T.Ptr T.I8))))

(* --- builder + layout --------------------------------------------------- *)

let build_simple () =
  let m = mk_module () in
  Lir.Irmod.declare_global m "counter" T.I64;
  B.define m "main" ~params:[] ~ret:T.I64 (fun b ->
      let p = B.alloca b T.I64 in
      B.store b ~value:(V.i64 5) ~ptr:p;
      let v = B.load b p in
      let w = B.add b v (V.i64 2) in
      B.store b ~value:w ~ptr:(V.Global "counter");
      B.ret b w);
  m

let test_builder_simple () =
  let m = build_simple () in
  Lir.Verify.check_exn m;
  Alcotest.(check int) "instruction count" 6 (Lir.Irmod.instr_count m)

let test_layout_lookup () =
  let m = build_simple () in
  Lir.Irmod.layout m;
  Lir.Irmod.iter_instrs m (fun _ _ i ->
      Alcotest.(check bool) "pc assigned" true (i.Lir.Instr.pc >= 0x1000);
      let found = Lir.Irmod.instr_at_pc m i.Lir.Instr.pc in
      Alcotest.(check int) "pc lookup" i.Lir.Instr.iid found.Lir.Instr.iid;
      let by_iid = Lir.Irmod.instr_by_iid m i.Lir.Instr.iid in
      Alcotest.(check int) "iid lookup" i.Lir.Instr.pc by_iid.Lir.Instr.pc)

let test_layout_pcs_distinct () =
  let m = build_simple () in
  Lir.Irmod.layout m;
  let pcs = ref [] in
  Lir.Irmod.iter_instrs m (fun _ _ i -> pcs := i.Lir.Instr.pc :: !pcs);
  Alcotest.(check int) "all distinct"
    (List.length !pcs)
    (List.length (List.sort_uniq compare !pcs))

let test_layout_block_starts () =
  let m = mk_module () in
  B.define m "f" ~params:[] ~ret:T.Void (fun b ->
      let l = B.fresh_label b "next" in
      B.br b l;
      B.start_block b l;
      B.ret_void b);
  Lir.Irmod.layout m;
  let pc = Lir.Irmod.block_start_pc m ~fname:"f" ~label:"entry" in
  let f, blk = Lir.Irmod.block_at_pc m pc in
  Alcotest.(check string) "function" "f" f.Lir.Func.fname;
  Alcotest.(check string) "block" "entry" blk.Lir.Block.label

let test_builder_if_else () =
  let m = mk_module () in
  Lir.Irmod.declare_global m "out" T.I64;
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let c = B.icmp b Lir.Instr.Slt (V.i64 1) (V.i64 2) in
      B.if_ b c
        ~then_:(fun () -> B.store b ~value:(V.i64 10) ~ptr:(V.Global "out"))
        ~else_:(fun () -> B.store b ~value:(V.i64 20) ~ptr:(V.Global "out"));
      B.ret_void b);
  Lir.Verify.check_exn m;
  let f = Lir.Irmod.find_func m "main" in
  Alcotest.(check int) "four blocks" 4 (List.length f.Lir.Func.blocks)

let test_builder_for_loop () =
  let m = mk_module () in
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 3) (fun _ -> ());
      B.ret_void b);
  Lir.Verify.check_exn m

let test_builder_gep_checks () =
  let m = mk_module () in
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let p = B.malloc b (T.Struct "Pair") in
      Alcotest.check_raises "field out of range"
        (Invalid_argument "Builder.gep: %struct.Pair has no field 7") (fun () ->
          ignore (B.gep b p 7));
      B.ret_void b)

let test_builder_last_iid () =
  let m = mk_module () in
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let p = B.alloca b T.I64 in
      let after_alloca = B.last_iid b in
      B.store b ~value:(V.i64 1) ~ptr:p;
      let after_store = B.last_iid b in
      Alcotest.(check bool) "monotone" true (after_store > after_alloca);
      B.ret_void b)

let test_builder_unsealed_rejected () =
  let m = mk_module () in
  Alcotest.(check bool) "unsealed body fails" true
    (try
       B.define m "broken" ~params:[] ~ret:T.Void (fun _ -> ());
       false
     with Invalid_argument _ -> true)

(* --- verifier ----------------------------------------------------------- *)

let errors_of m = List.length (Lir.Verify.check m)

let test_verify_clean () =
  Alcotest.(check int) "no errors" 0 (errors_of (build_simple ()))

let test_verify_unknown_callee () =
  let m = mk_module () in
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b "no_such_function" [];
      B.ret_void b);
  Alcotest.(check bool) "caught" true (errors_of m > 0)

let test_verify_arity_mismatch () =
  let m = mk_module () in
  B.define m "callee" ~params:[ ("x", T.I64) ] ~ret:T.Void (fun b ->
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b "callee" [];
      B.ret_void b);
  Alcotest.(check bool) "caught" true (errors_of m > 0)

let test_verify_intrinsic_arity () =
  let m = mk_module () in
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b Lir.Intrinsics.work [];
      B.ret_void b);
  Alcotest.(check bool) "caught" true (errors_of m > 0)

let test_verify_bad_branch_target () =
  let m = mk_module () in
  let f = Lir.Func.create ~fname:"f" ~params:[] ~ret:T.Void in
  let blk = Lir.Block.create ~label:"entry" in
  blk.Lir.Block.instrs <- [ Lir.Instr.make ~iid:0 (Lir.Instr.Br "nowhere") ];
  f.Lir.Func.blocks <- [ blk ];
  Lir.Irmod.add_func m f;
  Alcotest.(check bool) "caught" true (errors_of m > 0)

let test_verify_unsealed_block () =
  let m = mk_module () in
  let f = Lir.Func.create ~fname:"f" ~params:[] ~ret:T.Void in
  let blk = Lir.Block.create ~label:"entry" in
  blk.Lir.Block.instrs <-
    [
      Lir.Instr.make ~iid:0
        (Lir.Instr.Alloca
           { dst = Lir.Irmod.fresh_reg m ~name:"x" ~ty:(T.Ptr T.I64); ty = T.I64 });
    ];
  f.Lir.Func.blocks <- [ blk ];
  Lir.Irmod.add_func m f;
  Alcotest.(check bool) "caught" true (errors_of m > 0)

let test_verify_use_before_def () =
  let m = mk_module () in
  let reg = Lir.Irmod.fresh_reg m ~name:"ghost" ~ty:(T.Ptr T.I64) in
  let f = Lir.Func.create ~fname:"f" ~params:[] ~ret:T.Void in
  let blk = Lir.Block.create ~label:"entry" in
  let dst = Lir.Irmod.fresh_reg m ~name:"v" ~ty:T.I64 in
  blk.Lir.Block.instrs <-
    [
      Lir.Instr.make ~iid:(Lir.Irmod.fresh_iid m)
        (Lir.Instr.Load { dst; ptr = V.Reg reg });
      Lir.Instr.make ~iid:(Lir.Irmod.fresh_iid m) (Lir.Instr.Ret None);
    ];
  f.Lir.Func.blocks <- [ blk ];
  Lir.Irmod.add_func m f;
  Alcotest.(check bool) "caught" true (errors_of m > 0)

let test_verify_store_type_mismatch () =
  let m = mk_module () in
  Lir.Irmod.declare_global m "g" T.I64;
  let f = Lir.Func.create ~fname:"f" ~params:[] ~ret:T.Void in
  let blk = Lir.Block.create ~label:"entry" in
  blk.Lir.Block.instrs <-
    [
      Lir.Instr.make ~iid:(Lir.Irmod.fresh_iid m)
        (Lir.Instr.Store { value = V.i8 1; ptr = V.Global "g" });
      Lir.Instr.make ~iid:(Lir.Irmod.fresh_iid m) (Lir.Instr.Ret None);
    ];
  f.Lir.Func.blocks <- [ blk ];
  Lir.Irmod.add_func m f;
  Alcotest.(check bool) "caught" true (errors_of m > 0)

let test_verify_duplicate_labels () =
  let m = mk_module () in
  let f = Lir.Func.create ~fname:"f" ~params:[] ~ret:T.Void in
  let mk_blk () =
    let blk = Lir.Block.create ~label:"dup" in
    blk.Lir.Block.instrs <-
      [ Lir.Instr.make ~iid:(Lir.Irmod.fresh_iid m) (Lir.Instr.Ret None) ];
    blk
  in
  f.Lir.Func.blocks <- [ mk_blk (); mk_blk () ];
  Lir.Irmod.add_func m f;
  Alcotest.(check bool) "caught" true (errors_of m > 0)

(* --- cfg ---------------------------------------------------------------- *)

let diamond () =
  let m = mk_module () in
  B.define m "f" ~params:[ ("c", T.I1) ] ~ret:T.Void (fun b ->
      let lt = B.fresh_label b "left" in
      let rt = B.fresh_label b "right" in
      let j = B.fresh_label b "join" in
      B.cond_br b (B.param b 0) lt rt;
      B.start_block b lt;
      B.br b j;
      B.start_block b rt;
      B.br b j;
      B.start_block b j;
      B.ret_void b);
  Lir.Irmod.find_func m "f"

let test_cfg_successors () =
  let f = diamond () in
  let cfg = Lir.Cfg.of_func f in
  Alcotest.(check int) "entry has two" 2
    (List.length (Lir.Cfg.successors cfg "entry"));
  Alcotest.(check int) "join has none" 0
    (List.length
       (Lir.Cfg.successors cfg
          (List.nth (List.map (fun b -> b.Lir.Block.label) f.Lir.Func.blocks) 3)))

let test_cfg_predecessors () =
  let f = diamond () in
  let cfg = Lir.Cfg.of_func f in
  let join = List.nth f.Lir.Func.blocks 3 in
  Alcotest.(check int) "join has two preds" 2
    (List.length (Lir.Cfg.predecessors cfg join.Lir.Block.label))

let test_cfg_rpo () =
  let f = diamond () in
  let cfg = Lir.Cfg.of_func f in
  let rpo = Lir.Cfg.reverse_postorder cfg in
  Alcotest.(check string) "entry first" "entry" (List.hd rpo);
  Alcotest.(check int) "all blocks" 4 (List.length rpo)

(* --- printer & intrinsics ----------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_printer_smoke () =
  let m = build_simple () in
  let text = Lir.Printer.module_to_string m in
  Alcotest.(check bool) "mentions main" true (contains text "@main");
  Alcotest.(check bool) "mentions global" true (contains text "@counter")

let test_printer_location () =
  let m = build_simple () in
  Lir.Irmod.layout m;
  let s = Lir.Printer.instr_with_location m 0 in
  Alcotest.(check bool) "has pc" true (String.length s > 10)

let test_intrinsics_table () =
  Alcotest.(check bool) "malloc known" true
    (Lir.Intrinsics.is_intrinsic Lir.Intrinsics.malloc);
  Alcotest.(check bool) "unknown rejected" false
    (Lir.Intrinsics.is_intrinsic "fopen");
  (match Lir.Intrinsics.lookup Lir.Intrinsics.thread_create with
  | Some { Lir.Intrinsics.arg_count; _ } ->
    Alcotest.(check int) "thread_create arity" 2 arg_count
  | None -> Alcotest.fail "thread_create missing");
  Alcotest.(check int) "all intrinsics listed" 16
    (List.length Lir.Intrinsics.all)

let tests =
  [
    ( "ir.types",
      [
        Alcotest.test_case "equality" `Quick test_ty_equal;
        Alcotest.test_case "pointee" `Quick test_ty_pointee;
        Alcotest.test_case "sizes" `Quick test_ty_sizes;
        Alcotest.test_case "to_string" `Quick test_ty_to_string;
        Alcotest.test_case "value types" `Quick test_value_types;
      ] );
    ( "ir.builder",
      [
        Alcotest.test_case "simple function" `Quick test_builder_simple;
        Alcotest.test_case "layout lookups" `Quick test_layout_lookup;
        Alcotest.test_case "pcs distinct" `Quick test_layout_pcs_distinct;
        Alcotest.test_case "block starts" `Quick test_layout_block_starts;
        Alcotest.test_case "if/else shape" `Quick test_builder_if_else;
        Alcotest.test_case "for loop" `Quick test_builder_for_loop;
        Alcotest.test_case "gep bounds" `Quick test_builder_gep_checks;
        Alcotest.test_case "last_iid" `Quick test_builder_last_iid;
        Alcotest.test_case "unsealed rejected" `Quick test_builder_unsealed_rejected;
      ] );
    ( "ir.verify",
      [
        Alcotest.test_case "clean module" `Quick test_verify_clean;
        Alcotest.test_case "unknown callee" `Quick test_verify_unknown_callee;
        Alcotest.test_case "call arity" `Quick test_verify_arity_mismatch;
        Alcotest.test_case "intrinsic arity" `Quick test_verify_intrinsic_arity;
        Alcotest.test_case "bad branch target" `Quick test_verify_bad_branch_target;
        Alcotest.test_case "unsealed block" `Quick test_verify_unsealed_block;
        Alcotest.test_case "use before def" `Quick test_verify_use_before_def;
        Alcotest.test_case "store type mismatch" `Quick
          test_verify_store_type_mismatch;
        Alcotest.test_case "duplicate labels" `Quick test_verify_duplicate_labels;
      ] );
    ( "ir.cfg",
      [
        Alcotest.test_case "successors" `Quick test_cfg_successors;
        Alcotest.test_case "predecessors" `Quick test_cfg_predecessors;
        Alcotest.test_case "reverse postorder" `Quick test_cfg_rpo;
      ] );
    ( "ir.misc",
      [
        Alcotest.test_case "printer module" `Quick test_printer_smoke;
        Alcotest.test_case "printer location" `Quick test_printer_location;
        Alcotest.test_case "intrinsics table" `Quick test_intrinsics_table;
      ] );
  ]
