(* Tests for the points-to analysis, memory objects and backward slicing. *)

module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty
module Memobj = Analysis.Memobj
module Pointsto = Analysis.Pointsto

(* --- memobj ------------------------------------------------------------- *)

let test_memobj_overlaps () =
  let heap = Memobj.Heap 3 in
  let f0 = Memobj.Field (heap, 0) in
  let f1 = Memobj.Field (heap, 1) in
  Alcotest.(check bool) "object overlaps its field" true (Memobj.overlaps heap f0);
  Alcotest.(check bool) "field overlaps its object" true (Memobj.overlaps f0 heap);
  Alcotest.(check bool) "sibling fields disjoint" false (Memobj.overlaps f0 f1);
  Alcotest.(check bool) "distinct allocations disjoint" false
    (Memobj.overlaps heap (Memobj.Heap 4));
  Alcotest.(check bool) "nested field" true
    (Memobj.overlaps heap (Memobj.Field (f0, 2)))

let test_memobj_base () =
  let deep = Memobj.Field (Memobj.Field (Memobj.Global "g", 1), 0) in
  Alcotest.(check bool) "base strips fields" true
    (Memobj.equal (Memobj.Global "g") (Memobj.base deep))

let test_memobj_sets_overlap () =
  let s1 = Memobj.Set.of_list [ Memobj.Field (Memobj.Heap 1, 0) ] in
  let s2 = Memobj.Set.of_list [ Memobj.Heap 1 ] in
  let s3 = Memobj.Set.of_list [ Memobj.Heap 2 ] in
  Alcotest.(check bool) "field vs base" true (Memobj.sets_overlap s1 s2);
  Alcotest.(check bool) "disjoint" false (Memobj.sets_overlap s1 s3)

(* --- points-to ---------------------------------------------------------- *)

(* Shared fixture: a module exercising every constraint rule. *)
let pta_fixture () =
  let m = Lir.Irmod.create "pta" in
  ignore (Lir.Irmod.declare_struct m "Node" [ T.I64; T.Ptr T.I64 ]);
  Lir.Irmod.declare_global m "gptr" (T.Ptr (T.Struct "Node"));
  let captured = Hashtbl.create 16 in
  let cap name b = Hashtbl.replace captured name (B.last_iid b) in
  B.define m "helper" ~params:[ ("n", T.Ptr (T.Struct "Node")) ] ~ret:(T.Ptr (T.Struct "Node"))
    (fun b ->
      let n = B.param b 0 in
      let field = B.gep b n 0 in
      let v = B.load b field in
      cap "helper_load" b;
      B.store b ~value:v ~ptr:field;
      B.ret b n);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let node = B.malloc b ~name:"node" (T.Struct "Node") in
      cap "malloc_cast" b;
      B.store b ~value:node ~ptr:(V.Global "gptr");
      cap "store_global" b;
      let reread = B.load b (V.Global "gptr") in
      cap "load_global" b;
      let f0 = B.gep b reread 0 in
      B.store b ~value:(V.i64 1) ~ptr:f0;
      cap "store_field" b;
      let other = B.alloca b T.I64 in
      B.store b ~value:(V.i64 2) ~ptr:other;
      cap "store_alloca" b;
      let via_call = B.call b ~ret:(T.Ptr (T.Struct "Node")) "helper" [ node ] in
      let f0' = B.gep b via_call 0 in
      let _ = B.load b f0' in
      cap "load_field_via_call" b;
      B.ret_void b);
  Lir.Verify.check_exn m;
  Lir.Irmod.layout m;
  (m, captured)

let instr (m, captured) name = Lir.Irmod.instr_by_iid m (Hashtbl.find captured name)

let test_pta_alloc_sites () =
  let ((m, _) as fx) = pta_fixture () in
  let pta = Pointsto.analyze_all m in
  (* The global's cell holds the malloc'd node. *)
  let in_global = Pointsto.pts_of_object pta (Memobj.Global "gptr") in
  Alcotest.(check bool) "heap object reaches global" true
    (Memobj.Set.exists (function Memobj.Heap _ -> true | _ -> false) in_global);
  (* A load of the global sees the same object as the direct pointer. *)
  let load = instr fx "load_global" in
  let objs = Pointsto.accessed_objects pta load in
  Alcotest.(check bool) "load accesses the global cell" true
    (Memobj.Set.mem (Memobj.Global "gptr") objs)

let test_pta_field_sensitivity () =
  let ((m, _) as fx) = pta_fixture () in
  let pta = Pointsto.analyze_all m in
  let store_field = instr fx "store_field" in
  let objs = Pointsto.accessed_objects pta store_field in
  Alcotest.(check bool) "field store hits Field(heap,0)" true
    (Memobj.Set.exists
       (function Memobj.Field (Memobj.Heap _, 0) -> true | _ -> false)
       objs);
  Alcotest.(check bool) "field store misses Field(heap,1)" false
    (Memobj.Set.exists
       (function Memobj.Field (Memobj.Heap _, 1) -> true | _ -> false)
       objs)

let test_pta_param_binding () =
  let ((m, _) as fx) = pta_fixture () in
  let pta = Pointsto.analyze_all m in
  (* helper's load through its parameter must reach the heap node. *)
  let helper_load = instr fx "helper_load" in
  let objs = Pointsto.accessed_objects pta helper_load in
  Alcotest.(check bool) "param aliases caller object" true
    (Memobj.Set.exists
       (function Memobj.Field (Memobj.Heap _, 0) -> true | _ -> false)
       objs)

let test_pta_return_binding () =
  let ((m, _) as fx) = pta_fixture () in
  let pta = Pointsto.analyze_all m in
  let through_ret = instr fx "load_field_via_call" in
  let direct = instr fx "store_field" in
  Alcotest.(check bool) "return value aliases argument" true
    (Memobj.sets_overlap
       (Pointsto.accessed_objects pta through_ret)
       (Pointsto.accessed_objects pta direct))

let test_pta_alloca_distinct () =
  let ((m, _) as fx) = pta_fixture () in
  let pta = Pointsto.analyze_all m in
  let store_alloca = instr fx "store_alloca" in
  let store_field = instr fx "store_field" in
  Alcotest.(check bool) "alloca does not alias heap field" false
    (Memobj.sets_overlap
       (Pointsto.accessed_objects pta store_alloca)
       (Pointsto.accessed_objects pta store_field))

let test_pta_scope_restriction () =
  let m, captured = pta_fixture () in
  (* Exclude everything: no constraints, empty points-to sets. *)
  let pta = Pointsto.analyze m ~scope:(fun _ -> false) in
  Alcotest.(check int) "nothing analyzed" 0 (Pointsto.instructions_analyzed pta);
  let load = Lir.Irmod.instr_by_iid m (Hashtbl.find captured "load_global") in
  Alcotest.(check bool) "global constant set remains" true
    (Memobj.Set.mem (Memobj.Global "gptr") (Pointsto.accessed_objects pta load))

let test_pta_thread_entry_binding () =
  let m = Lir.Irmod.create "t" in
  ignore (Lir.Irmod.declare_struct m "Arg" [ T.I64 ]);
  let worker_load = ref (-1) in
  B.define m "worker" ~params:[ ("arg", T.Ptr (T.Struct "Arg")) ] ~ret:T.Void
    (fun b ->
      let v = B.load b (B.gep b (B.param b 0) 0) in
      worker_load := B.last_iid b;
      B.call_void b Lir.Intrinsics.print_i64 [ v ];
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let arg = B.malloc b (T.Struct "Arg") in
      B.store b ~value:(V.i64 1) ~ptr:(B.gep b arg 0);
      let t = B.spawn b "worker" arg in
      B.join b t;
      B.ret_void b);
  Lir.Verify.check_exn m;
  Lir.Irmod.layout m;
  let pta = Pointsto.analyze_all m in
  let objs =
    Pointsto.accessed_objects pta (Lir.Irmod.instr_by_iid m !worker_load)
  in
  Alcotest.(check bool) "thread arg bound to entry param" true
    (Memobj.Set.exists
       (function Memobj.Field (Memobj.Heap _, 0) -> true | _ -> false)
       objs)

let test_pta_lock_operand () =
  let m = Lir.Irmod.create "t" in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  Lir.Irmod.declare_global m "l" (T.Struct "Mutex");
  let lock_iid = ref (-1) in
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.mutex_lock b (V.Global "l");
      lock_iid := B.last_iid b;
      B.mutex_unlock b (V.Global "l");
      B.ret_void b);
  Lir.Verify.check_exn m;
  Lir.Irmod.layout m;
  let pta = Pointsto.analyze_all m in
  let objs = Pointsto.accessed_objects pta (Lir.Irmod.instr_by_iid m !lock_iid) in
  Alcotest.(check bool) "lock call names the mutex" true
    (Memobj.Set.mem (Memobj.Global "l") objs)

let test_may_alias () =
  let m, _ = pta_fixture () in
  let pta = Pointsto.analyze_all m in
  Alcotest.(check bool) "global aliases itself" true
    (Pointsto.may_alias pta (V.Global "gptr") (V.Global "gptr"))

(* --- slicing ------------------------------------------------------------ *)

let slice_fixture () =
  let m = Lir.Irmod.create "sl" in
  Lir.Irmod.declare_global m "g" T.I64;
  let store_iid = ref (-1) and load_iid = ref (-1) in
  B.define m "producer" ~params:[] ~ret:T.Void (fun b ->
      B.store b ~value:(V.i64 7) ~ptr:(V.Global "g");
      store_iid := B.last_iid b;
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b "producer" [];
      let v = B.load b (V.Global "g") in
      load_iid := B.last_iid b;
      let c = B.icmp b Lir.Instr.Sgt v (V.i64 0) in
      B.if_ b c
        ~then_:(fun () -> B.call_void b Lir.Intrinsics.print_i64 [ v ])
        ~else_:(fun () -> ());
      B.ret_void b);
  Lir.Verify.check_exn m;
  Lir.Irmod.layout m;
  (m, !store_iid, !load_iid)

let test_slice_memory_dep () =
  let m, store_iid, load_iid = slice_fixture () in
  let pta = Pointsto.analyze_all m in
  let slice = Analysis.Slice.backward_slice m ~points_to:pta ~from_iid:load_iid in
  Alcotest.(check bool) "store reaching load in slice" true
    (List.mem store_iid slice);
  Alcotest.(check bool) "anchor itself in slice" true (List.mem load_iid slice)

let test_slice_depths_monotone () =
  let m, _, load_iid = slice_fixture () in
  let pta = Pointsto.analyze_all m in
  let depths =
    Analysis.Slice.backward_slice_depths m ~points_to:pta ~from_iid:load_iid
  in
  Alcotest.(check bool) "anchor has depth 0" true
    (List.exists (fun (iid, d) -> iid = load_iid && d = 0) depths);
  List.iter
    (fun (_, d) -> Alcotest.(check bool) "non-negative depth" true (d >= 0))
    depths

let test_slice_size_consistent () =
  let m, _, load_iid = slice_fixture () in
  let pta = Pointsto.analyze_all m in
  Alcotest.(check int) "size equals list length"
    (List.length (Analysis.Slice.backward_slice m ~points_to:pta ~from_iid:load_iid))
    (Analysis.Slice.slice_size m ~points_to:pta ~from_iid:load_iid)

let tests =
  [
    ( "analysis.memobj",
      [
        Alcotest.test_case "overlaps" `Quick test_memobj_overlaps;
        Alcotest.test_case "base" `Quick test_memobj_base;
        Alcotest.test_case "sets overlap" `Quick test_memobj_sets_overlap;
      ] );
    ( "analysis.pointsto",
      [
        Alcotest.test_case "allocation sites" `Quick test_pta_alloc_sites;
        Alcotest.test_case "field sensitivity" `Quick test_pta_field_sensitivity;
        Alcotest.test_case "param binding" `Quick test_pta_param_binding;
        Alcotest.test_case "return binding" `Quick test_pta_return_binding;
        Alcotest.test_case "alloca distinct" `Quick test_pta_alloca_distinct;
        Alcotest.test_case "scope restriction" `Quick test_pta_scope_restriction;
        Alcotest.test_case "thread entry binding" `Quick test_pta_thread_entry_binding;
        Alcotest.test_case "lock operand" `Quick test_pta_lock_operand;
        Alcotest.test_case "may_alias" `Quick test_may_alias;
      ] );
    ( "analysis.slice",
      [
        Alcotest.test_case "memory dependence" `Quick test_slice_memory_dep;
        Alcotest.test_case "depths monotone" `Quick test_slice_depths_monotone;
        Alcotest.test_case "size consistent" `Quick test_slice_size_consistent;
      ] );
  ]
