(* Direct tests of the simulated address space: region layout, fault
   classification, allocation and stack discipline. *)

module B = Lir.Builder
module T = Lir.Ty
module Memory = Sim.Memory

let fresh () =
  let mem = Memory.create () in
  let m = Lir.Irmod.create "mem" in
  Lir.Irmod.declare_global m "g1" T.I64;
  Lir.Irmod.declare_global m "g2" (T.Ptr T.I64);
  Memory.load_globals mem m;
  mem

let test_null_page_faults () =
  let mem = fresh () in
  (match Memory.read mem ~addr:0 with
  | Error Memory.Null -> ()
  | _ -> Alcotest.fail "addr 0 must be Null");
  (match Memory.write mem ~addr:0xfff ~value:1 with
  | Error Memory.Null -> ()
  | _ -> Alcotest.fail "near-null write must fault")

let test_code_region_unmapped () =
  let mem = fresh () in
  match Memory.read mem ~addr:0x2000 with
  | Error Memory.Unmapped -> ()
  | _ -> Alcotest.fail "code region must not be data-readable"

let test_globals_rw () =
  let mem = fresh () in
  let a1 = Memory.global_addr mem "g1" in
  let a2 = Memory.global_addr mem "g2" in
  Alcotest.(check bool) "distinct addresses" true (a1 <> a2);
  (match Memory.read mem ~addr:a1 with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "globals zero-initialized");
  (match Memory.write mem ~addr:a1 ~value:77 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "global writable");
  (match Memory.read mem ~addr:a1 with
  | Ok 77 -> ()
  | _ -> Alcotest.fail "global readback");
  match Memory.read mem ~addr:a2 with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "sibling global untouched"

let test_heap_alloc_free () =
  let mem = fresh () in
  let a = Memory.alloc_heap mem ~size:16 in
  let b = Memory.alloc_heap mem ~size:16 in
  Alcotest.(check bool) "bump allocation grows" true (b > a);
  (match Memory.write mem ~addr:a ~value:1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "live heap writable");
  (match Memory.free_heap mem a with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "free of live base");
  (match Memory.read mem ~addr:a with
  | Error Memory.Freed -> ()
  | _ -> Alcotest.fail "UAF classified as Freed");
  (match Memory.read mem ~addr:(a + 8) with
  | Error Memory.Freed -> ()
  | _ -> Alcotest.fail "interior of freed range also Freed");
  match Memory.free_heap mem a with
  | Error Memory.Unmapped -> ()
  | _ -> Alcotest.fail "double free rejected"

let test_heap_beyond_bump_unmapped () =
  let mem = fresh () in
  let a = Memory.alloc_heap mem ~size:8 in
  match Memory.read mem ~addr:(a + 4096) with
  | Error Memory.Unmapped -> ()
  | _ -> Alcotest.fail "unallocated heap is unmapped"

let test_free_of_wild_pointer () =
  let mem = fresh () in
  match Memory.free_heap mem 0x1234_5678 with
  | Error Memory.Unmapped -> ()
  | _ -> Alcotest.fail "free of non-allocation rejected"

let test_stack_discipline () =
  let mem = fresh () in
  let mark = Memory.frame_mark mem ~tid:3 in
  let s1 = Memory.alloc_stack mem ~tid:3 ~size:8 in
  let s2 = Memory.alloc_stack mem ~tid:3 ~size:8 in
  Alcotest.(check bool) "stack grows" true (s2 > s1);
  (match Memory.write mem ~addr:s1 ~value:5 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "stack slot writable");
  Memory.pop_frame mem ~tid:3 ~mark;
  let s3 = Memory.alloc_stack mem ~tid:3 ~size:8 in
  Alcotest.(check int) "frame reuse after pop" s1 s3

let test_thread_stacks_disjoint () =
  let mem = fresh () in
  let a = Memory.alloc_stack mem ~tid:0 ~size:8 in
  let b = Memory.alloc_stack mem ~tid:1 ~size:8 in
  Alcotest.(check bool) "per-thread regions" true (abs (a - b) >= 0x10_0000)

let tests =
  [
    ( "sim.memory",
      [
        Alcotest.test_case "null page" `Quick test_null_page_faults;
        Alcotest.test_case "code region unmapped" `Quick test_code_region_unmapped;
        Alcotest.test_case "globals r/w" `Quick test_globals_rw;
        Alcotest.test_case "heap alloc/free/UAF" `Quick test_heap_alloc_free;
        Alcotest.test_case "beyond bump unmapped" `Quick
          test_heap_beyond_bump_unmapped;
        Alcotest.test_case "wild free rejected" `Quick test_free_of_wild_pointer;
        Alcotest.test_case "stack discipline" `Quick test_stack_discipline;
        Alcotest.test_case "thread stacks disjoint" `Quick
          test_thread_stacks_disjoint;
      ] );
  ]
