test/test_fuzz.ml: Analysis Array Hashtbl Lir List Printf Pt QCheck QCheck_alcotest Sim Snorlax_util
