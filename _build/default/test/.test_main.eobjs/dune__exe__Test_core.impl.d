test/test_core.ml: Alcotest Analysis Array Hashtbl Lir List Option Pt Sim Snorlax_core
