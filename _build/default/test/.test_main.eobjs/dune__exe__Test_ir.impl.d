test/test_ir.ml: Alcotest Lir List String
