test/test_corpus.ml: Alcotest Corpus Lir List Printf Sim Snorlax_core
