test/test_sim.ml: Alcotest Hashtbl Lir List Option QCheck QCheck_alcotest Sim
