test/test_gist.ml: Alcotest Analysis Gist Lir List Sim
