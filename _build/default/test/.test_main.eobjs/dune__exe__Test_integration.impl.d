test/test_integration.ml: Alcotest Corpus Experiments Gist List Pt Snorlax_core
