test/test_memory.ml: Alcotest Lir Sim
