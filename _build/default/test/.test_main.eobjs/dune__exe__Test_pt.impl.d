test/test_pt.ml: Alcotest Buffer Bytes Hashtbl Lir List Printf Pt QCheck QCheck_alcotest Sim
