test/test_main.ml: Alcotest Test_analysis Test_core Test_corpus Test_experiments Test_fuzz Test_gist Test_integration Test_ir Test_memory Test_pt Test_replay Test_sim Test_util
