test/test_experiments.ml: Alcotest Corpus Experiments Lir List Sim
