test/test_analysis.ml: Alcotest Analysis Hashtbl Lir List
