test/test_replay.ml: Alcotest Hashtbl Lir List Replay Sim Snorlax_core
