test/test_util.ml: Alcotest Array Buffer Bytes Gen List Printf QCheck QCheck_alcotest Snorlax_util String
