type reg = { rid : int; rname : string; rty : Ty.t }

type t =
  | Reg of reg
  | Imm of int64 * Ty.t
  | Global of string
  | Null of Ty.t
  | Fn_ref of string

let ty_of ~globals = function
  | Reg r -> r.rty
  | Imm (_, ty) -> ty
  | Global g -> Ty.Ptr (globals g)
  | Null ty -> ty
  | Fn_ref _ -> Ty.Ptr Ty.Fn

let to_string = function
  | Reg r -> "%" ^ r.rname
  | Imm (v, ty) -> Printf.sprintf "%s %Ld" (Ty.to_string ty) v
  | Global g -> "@" ^ g
  | Null ty -> Printf.sprintf "%s null" (Ty.to_string ty)
  | Fn_ref f -> "@" ^ f

let i64 v = Imm (Int64.of_int v, Ty.I64)
let i32 v = Imm (Int64.of_int v, Ty.I32)
let i8 v = Imm (Int64.of_int v, Ty.I8)
let bool_true = Imm (1L, Ty.I1)
let bool_false = Imm (0L, Ty.I1)
