(** Runtime intrinsics: the external functions the simulator implements
    directly (the analogue of libc/pthreads in the paper's subject
    programs).  The verifier accepts calls to these without a module-level
    definition, and the points-to analysis models [malloc] as an allocation
    site. *)

type signature = { arg_count : int; ret : Ty.t }

val lookup : string -> signature option
(** [None] when the name is not an intrinsic. *)

val is_intrinsic : string -> bool

val mutex_lock : string
(** ["mutex_lock"] — the lock-acquisition intrinsic the deadlock pattern
    analysis keys on. *)

val mutex_unlock : string
val mutex_init : string
val cond_init : string

(** [cond_wait(cond, mutex)]: atomically release the mutex and sleep until
    signalled, then re-acquire the mutex before returning *)
val cond_wait : string

val cond_signal : string
val cond_broadcast : string
val malloc : string
val free : string
val thread_create : string
val thread_join : string

(** busy CPU for the given number of nanoseconds *)
val work : string

(** off-CPU wait for the given number of nanoseconds *)
val io_delay : string

(** fail-stop when the argument is 0 *)
val assert_true : string

(** [rand(bound)]: uniform in [0, bound), drawn from the simulator's
    seeded stream — the corpus' stand-in for data-dependent control flow
    (request sizes, cache hits, I/O latencies) that varies run to run *)
val rand : string

val print_i64 : string
val all : string list
