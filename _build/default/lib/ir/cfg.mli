(** Control-flow graph queries over a function's blocks.  The trace decoder
    replays branches against this graph, and Gist's backward slicer uses the
    predecessor relation for control dependences. *)

type t

val of_func : Func.t -> t

val successors : t -> Instr.label -> Instr.label list
val predecessors : t -> Instr.label -> Instr.label list

val reverse_postorder : t -> Instr.label list
(** Entry-first ordering suitable for forward dataflow. *)

val reachable : t -> Instr.label list
(** Labels reachable from the entry block. *)
