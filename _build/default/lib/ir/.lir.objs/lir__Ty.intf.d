lib/ir/ty.mli:
