lib/ir/intrinsics.ml: List Ty
