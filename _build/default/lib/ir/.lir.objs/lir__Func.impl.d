lib/ir/func.ml: Block List String Ty Value
