lib/ir/irmod.ml: Block Func Hashtbl Instr List Printf String Ty Value
