lib/ir/verify.ml: Block Func Hashtbl Instr Intrinsics Irmod List Printf String Ty Value
