lib/ir/value.mli: Ty
