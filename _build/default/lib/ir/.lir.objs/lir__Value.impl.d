lib/ir/value.ml: Int64 Printf Ty
