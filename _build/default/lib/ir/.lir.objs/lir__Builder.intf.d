lib/ir/builder.mli: Instr Irmod Ty Value
