lib/ir/instr.ml: List Printf String Ty Value
