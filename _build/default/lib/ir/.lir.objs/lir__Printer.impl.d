lib/ir/printer.ml: Block Buffer Func Instr Irmod List Printf String Ty Value
