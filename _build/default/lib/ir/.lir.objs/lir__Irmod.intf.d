lib/ir/irmod.mli: Block Func Instr Ty Value
