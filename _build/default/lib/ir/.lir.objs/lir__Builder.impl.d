lib/ir/builder.ml: Block Func Instr Intrinsics Irmod List Printf Ty Value
