lib/ir/verify.mli: Irmod
