lib/ir/func.mli: Block Instr Ty Value
