lib/ir/intrinsics.mli: Ty
