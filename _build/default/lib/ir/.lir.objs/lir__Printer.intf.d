lib/ir/printer.mli: Func Irmod
