lib/ir/ty.ml: List Printf Stdlib String
