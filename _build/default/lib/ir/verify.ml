type error = { where : string; what : string }

let check m =
  let errors = ref [] in
  let fail ~where what = errors := { where; what } :: !errors in
  let check_func f =
    let where = f.Func.fname in
    if f.Func.blocks = [] then fail ~where "function has no blocks";
    (* Block labels unique and sealed. *)
    let labels = List.map (fun b -> b.Block.label) f.Func.blocks in
    let dup =
      List.filter
        (fun l -> List.length (List.filter (String.equal l) labels) > 1)
        labels
    in
    (match List.sort_uniq compare dup with
    | [] -> ()
    | l :: _ -> fail ~where ("duplicate block label " ^ l));
    let check_sealed b =
      match List.rev b.Block.instrs with
      | last :: rest when Instr.is_terminator last ->
        if List.exists Instr.is_terminator rest then
          fail ~where (b.Block.label ^ ": terminator in block middle")
      | _ -> fail ~where (b.Block.label ^ ": block not sealed by a terminator")
    in
    List.iter check_sealed f.Func.blocks;
    (* Branch targets resolve (only meaningful on sealed blocks). *)
    let is_sealed b =
      match List.rev b.Block.instrs with
      | last :: _ -> Instr.is_terminator last
      | [] -> false
    in
    let check_targets b =
      if is_sealed b then
        List.iter
          (fun l ->
            if not (List.mem l labels) then
              fail ~where (b.Block.label ^ ": branch to unknown label " ^ l))
          (Block.successors b)
    in
    List.iter check_targets f.Func.blocks;
    (* Def-before-use in block order (approximation of dominance: a register
       must be defined in an earlier-or-same position of the block list). *)
    let defined = Hashtbl.create 32 in
    List.iter (fun r -> Hashtbl.replace defined r.Value.rid ()) f.Func.params;
    let use_ok v =
      match v with
      | Value.Reg r -> Hashtbl.mem defined r.Value.rid
      | Value.Imm _ | Value.Null _ | Value.Fn_ref _ | Value.Global _ -> true
    in
    let check_instr i =
      List.iter
        (fun v ->
          if not (use_ok v) then
            fail ~where
              (Printf.sprintf "use before def of %s in: %s" (Value.to_string v)
                 (Instr.to_string i)))
        (Instr.operands i);
      (match Instr.defined_reg i with
      | Some r -> Hashtbl.replace defined r.Value.rid ()
      | None -> ());
      (* Operand typing for pointer-shaped instructions. *)
      let vty v = Value.ty_of ~globals:(Irmod.global_ty m) v in
      match i.Instr.kind with
      | Instr.Load { dst; ptr } -> (
        match vty ptr with
        | Ty.Ptr p ->
          if not (Ty.equal p dst.Value.rty) then
            fail ~where ("load type mismatch: " ^ Instr.to_string i)
        | _ -> fail ~where ("load from non-pointer: " ^ Instr.to_string i))
      | Instr.Store { ptr; value } -> (
        match vty ptr with
        | Ty.Ptr p ->
          if not (Ty.equal p (vty value)) then
            fail ~where ("store type mismatch: " ^ Instr.to_string i)
        | _ -> fail ~where ("store to non-pointer: " ^ Instr.to_string i))
      | Instr.Gep { base; field; _ } -> (
        match vty base with
        | Ty.Ptr (Ty.Struct s) ->
          let nfields =
            match Irmod.struct_fields m s with
            | fields -> List.length fields
            | exception Not_found ->
              fail ~where ("gep into undeclared struct " ^ s);
              max_int
          in
          if field < 0 || field >= nfields then
            fail ~where ("gep field out of range: " ^ Instr.to_string i)
        | _ -> fail ~where ("gep base not a struct pointer: " ^ Instr.to_string i))
      | Instr.Call { callee; args; _ } -> (
        match Intrinsics.lookup callee with
        | Some { Intrinsics.arg_count; _ } ->
          if List.length args <> arg_count then
            fail ~where ("intrinsic arity mismatch: " ^ Instr.to_string i)
        | None ->
          if not (Irmod.has_func m callee) then
            fail ~where ("call to unknown function " ^ callee)
          else
            let target = Irmod.find_func m callee in
            if List.length args <> List.length target.Func.params then
              fail ~where ("call arity mismatch: " ^ Instr.to_string i))
      | Instr.Alloca _ | Instr.Binop _ | Instr.Icmp _ | Instr.Index _
      | Instr.Cast _ | Instr.Br _ | Instr.Cond_br _ | Instr.Ret _
      | Instr.Unreachable ->
        ()
    in
    Func.iter_instrs f (fun _ i -> check_instr i)
  in
  List.iter check_func (Irmod.funcs m);
  List.rev !errors

let check_exn m =
  match check m with
  | [] -> ()
  | errors ->
    let msgs =
      List.map (fun { where; what } -> where ^ ": " ^ what) errors
    in
    failwith ("Verify.check_exn:\n  " ^ String.concat "\n  " msgs)
