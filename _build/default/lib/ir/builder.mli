(** Imperative construction DSL for LIR modules.

    The corpus programs (lib/corpus) are thousands of lines of this DSL, so
    it favours brevity: types are inferred from operand types where
    possible, and structured combinators ([if_], [while_], [for_]) spare the
    caller explicit label plumbing while still producing ordinary branches
    that the tracer records. *)

type t
(** A function under construction. *)

val define :
  Irmod.t ->
  string ->
  params:(string * Ty.t) list ->
  ret:Ty.t ->
  (t -> unit) ->
  unit
(** [define m name ~params ~ret body] adds a function to [m]; [body]
    receives the builder positioned in the entry block.  The builder checks
    at the end that every declared block was defined and sealed. *)

val md : t -> Irmod.t
val param : t -> int -> Value.t

val last_iid : t -> int
(** The iid of the most recently emitted instruction.  The corpus captures
    ground-truth target instructions with this right after emitting them.
    Raises [Invalid_argument] before the first emission. *)

(** {2 Block plumbing (for irreducible shapes the combinators can't build)} *)

val fresh_label : t -> string -> Instr.label
val start_block : t -> Instr.label -> unit
(** Begin emitting into the (previously branched-to) label.  The current
    block must be sealed. *)

(** {2 Straight-line instructions.  All [?name]s are printing hints.} *)

val alloca : t -> ?name:string -> Ty.t -> Value.t
val load : t -> ?name:string -> Value.t -> Value.t
val store : t -> value:Value.t -> ptr:Value.t -> unit
val binop : t -> Instr.binop -> Value.t -> Value.t -> Value.t
val add : t -> Value.t -> Value.t -> Value.t
val sub : t -> Value.t -> Value.t -> Value.t
val mul : t -> Value.t -> Value.t -> Value.t
val icmp : t -> Instr.icmp -> Value.t -> Value.t -> Value.t
val gep : t -> ?name:string -> Value.t -> int -> Value.t
(** Field address; the base must have type [Ptr (Struct s)]. *)

val index : t -> ?name:string -> Value.t -> Value.t -> Value.t
(** Element address; the base must have type [Ptr (Array (t, n))] or
    [Ptr t] (plain pointer arithmetic). *)

val cast : t -> ?name:string -> Value.t -> Ty.t -> Value.t
val call : t -> ?name:string -> ret:Ty.t -> string -> Value.t list -> Value.t
val call_void : t -> string -> Value.t list -> unit

(** {2 Intrinsic shorthands} *)

val malloc : t -> ?name:string -> Ty.t -> Value.t
(** [call malloc(sizeof ty)] followed by a cast to [Ptr ty]. *)

val mutex_lock : t -> Value.t -> unit
val mutex_unlock : t -> Value.t -> unit
val cond_wait : t -> cond:Value.t -> mutex:Value.t -> unit
val cond_signal : t -> Value.t -> unit
val cond_broadcast : t -> Value.t -> unit
val work : t -> ns:int -> unit
val io_delay : t -> ns:int -> unit
val assert_true : t -> Value.t -> unit
val rand : t -> bound:int -> Value.t
(** Draw a seeded pseudo-random i64 in [0, bound). *)

val spawn : t -> ?name:string -> string -> Value.t -> Value.t
(** [thread_create(@fn, arg)]; returns the thread id as an i64 value. *)

val join : t -> Value.t -> unit

(** {2 Terminators} *)

val br : t -> Instr.label -> unit
val cond_br : t -> Value.t -> Instr.label -> Instr.label -> unit
val ret : t -> Value.t -> unit
val ret_void : t -> unit

(** {2 Structured control flow} *)

val if_ : t -> Value.t -> then_:(unit -> unit) -> else_:(unit -> unit) -> unit
(** Both arms fall through to a fresh join block (arms may also return). *)

val while_ : t -> cond:(unit -> Value.t) -> body:(unit -> unit) -> unit
(** [cond] is re-emitted in the loop header each iteration. *)

val for_ : t -> from:int -> below:Value.t -> (Value.t -> unit) -> unit
(** Counted loop over an i64 induction variable held in a stack slot. *)
