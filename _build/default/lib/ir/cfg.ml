type t = {
  entry : Instr.label;
  succ : (Instr.label, Instr.label list) Hashtbl.t;
  pred : (Instr.label, Instr.label list) Hashtbl.t;
}

let of_func f =
  let succ = Hashtbl.create 16 and pred = Hashtbl.create 16 in
  let note_block b =
    let ss = Block.successors b in
    Hashtbl.replace succ b.Block.label ss;
    if not (Hashtbl.mem pred b.Block.label) then
      Hashtbl.replace pred b.Block.label [];
    List.iter
      (fun s ->
        let existing = Option.value ~default:[] (Hashtbl.find_opt pred s) in
        Hashtbl.replace pred s (b.Block.label :: existing))
      ss
  in
  List.iter note_block f.Func.blocks;
  { entry = (Func.entry f).Block.label; succ; pred }

let successors t l = Option.value ~default:[] (Hashtbl.find_opt t.succ l)
let predecessors t l = List.rev (Option.value ~default:[] (Hashtbl.find_opt t.pred l))

let reverse_postorder t =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      List.iter dfs (successors t l);
      order := l :: !order
    end
  in
  dfs t.entry;
  !order

let reachable t = reverse_postorder t
