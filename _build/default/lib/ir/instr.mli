(** LIR instructions.

    Every instruction carries a module-unique id ([iid]) — the analyses key
    on iids — and, once the module is laid out, a synthetic program counter
    ([pc]) that the trace packets refer to, playing the role of machine
    addresses in the paper. *)

type binop = Add | Sub | Mul | Sdiv | Srem | And | Or | Xor | Shl | Lshr

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge

type label = string

type kind =
  | Alloca of { dst : Value.reg; ty : Ty.t }
      (** stack slot of type [ty]; [dst] has type [Ptr ty] *)
  | Load of { dst : Value.reg; ptr : Value.t }
  | Store of { value : Value.t; ptr : Value.t }
  | Binop of { dst : Value.reg; op : binop; lhs : Value.t; rhs : Value.t }
  | Icmp of { dst : Value.reg; cmp : icmp; lhs : Value.t; rhs : Value.t }
  | Gep of { dst : Value.reg; base : Value.t; field : int }
      (** address of field [field] of the struct pointed to by [base] *)
  | Index of { dst : Value.reg; base : Value.t; idx : Value.t }
      (** address of element [idx] of the array pointed to by [base] *)
  | Cast of { dst : Value.reg; src : Value.t }
      (** bit/pointer cast; changes only the static type *)
  | Call of { dst : Value.reg option; callee : string; args : Value.t list }
  | Br of label
  | Cond_br of { cond : Value.t; then_ : label; else_ : label }
  | Ret of Value.t option
  | Unreachable

type t = {
  iid : int;
  kind : kind;
  mutable pc : int;  (** assigned by {!Layout}; -1 before layout *)
}

val make : iid:int -> kind -> t

val is_terminator : t -> bool

val defined_reg : t -> Value.reg option
(** The register the instruction defines, if any. *)

val operands : t -> Value.t list
(** All value operands (excluding labels and callee names). *)

val is_memory_access : t -> bool
(** Loads and stores — the shared-memory target-event candidates of §3. *)

val to_string : t -> string

val binop_to_string : binop -> string
val icmp_to_string : icmp -> string
