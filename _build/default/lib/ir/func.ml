type t = {
  fname : string;
  params : Value.reg list;
  ret : Ty.t;
  mutable blocks : Block.t list;
}

let create ~fname ~params ~ret = { fname; params; ret; blocks = [] }

let entry t =
  match t.blocks with
  | [] -> invalid_arg ("Func.entry: empty function " ^ t.fname)
  | b :: _ -> b

let find_block t label =
  List.find (fun b -> String.equal b.Block.label label) t.blocks

let iter_instrs t f =
  List.iter (fun b -> List.iter (f b) b.Block.instrs) t.blocks

let instr_count t =
  List.fold_left (fun acc b -> acc + List.length b.Block.instrs) 0 t.blocks
