type t = { label : Instr.label; mutable instrs : Instr.t list }

let create ~label = { label; instrs = [] }

let terminator t =
  match List.rev t.instrs with
  | last :: _ when Instr.is_terminator last -> last
  | _ -> invalid_arg ("Block.terminator: unsealed block " ^ t.label)

let successors t =
  match (terminator t).Instr.kind with
  | Instr.Br l -> [ l ]
  | Instr.Cond_br { then_; else_; _ } -> [ then_; else_ ]
  | Instr.Ret _ | Instr.Unreachable -> []
  | Instr.Alloca _ | Instr.Load _ | Instr.Store _ | Instr.Binop _
  | Instr.Icmp _ | Instr.Gep _ | Instr.Index _ | Instr.Cast _ | Instr.Call _
    ->
    assert false
