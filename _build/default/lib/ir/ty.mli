(** Types of the LIR intermediate representation.

    The set mirrors the LLVM types Lazy Diagnosis cares about: integers of a
    few widths, pointers, and named structs.  Named structs are resolved
    through the enclosing module's struct table, which keeps recursive types
    (e.g. linked-list nodes) representable. *)

type t =
  | Void
  | I1
  | I8
  | I32
  | I64
  | Ptr of t
  | Struct of string  (** named struct; fields live in the module table *)
  | Array of t * int
  | Fn  (** opaque function type, used for function pointers *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pointee : t -> t
(** The pointed-to type.  Raises [Invalid_argument] on non-pointers. *)

val is_pointer : t -> bool

val to_string : t -> string
(** LLVM-flavoured rendering, e.g. ["%struct.Queue*"], ["i32"]. *)

val size_in_bytes : struct_fields:(string -> t list) -> t -> int
(** Byte size under the simulator's layout (i1/i8 = 1, i32 = 4, i64 and
    pointers = 8, structs = sum of fields, arrays = n * elem).
    [struct_fields] resolves named structs; raises [Invalid_argument] for
    [Void] and [Fn]. *)
