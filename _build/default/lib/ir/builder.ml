type t = {
  m : Irmod.t;
  func : Func.t;
  mutable current : Block.t option;
  mutable labels : Instr.label list; (* declared labels, for the final check *)
  mutable label_counter : int;
  mutable last_iid : int;
}

let md t = t.m

let param t i =
  match List.nth_opt t.func.Func.params i with
  | Some r -> Value.Reg r
  | None ->
    invalid_arg
      (Printf.sprintf "Builder.param: %s has no param %d" t.func.Func.fname i)

let fresh_label t hint =
  t.label_counter <- t.label_counter + 1;
  let label = Printf.sprintf "%s%d" hint t.label_counter in
  t.labels <- label :: t.labels;
  label

let current_block t =
  match t.current with
  | Some b -> b
  | None ->
    invalid_arg
      ("Builder: emitting into a sealed block in " ^ t.func.Func.fname
     ^ "; call start_block first")

let emit t kind =
  let b = current_block t in
  let i = Instr.make ~iid:(Irmod.fresh_iid t.m) kind in
  b.Block.instrs <- b.Block.instrs @ [ i ];
  if Instr.is_terminator i then t.current <- None;
  t.last_iid <- i.Instr.iid;
  i

let last_iid t =
  if t.last_iid < 0 then invalid_arg "Builder.last_iid: nothing emitted yet";
  t.last_iid

let start_block t label =
  (match t.current with
  | Some b ->
    invalid_arg
      (Printf.sprintf "Builder.start_block: block %s not sealed" b.Block.label)
  | None -> ());
  let b = Block.create ~label in
  t.func.Func.blocks <- t.func.Func.blocks @ [ b ];
  t.current <- Some b

let reg t name ty = Irmod.fresh_reg t.m ~name ~ty

let value_ty t v = Value.ty_of ~globals:(Irmod.global_ty t.m) v

let alloca t ?(name = "slot") ty =
  let dst = reg t name (Ty.Ptr ty) in
  ignore (emit t (Instr.Alloca { dst; ty }));
  Value.Reg dst

let load t ?(name = "val") ptr =
  let pointee = Ty.pointee (value_ty t ptr) in
  let dst = reg t name pointee in
  ignore (emit t (Instr.Load { dst; ptr }));
  Value.Reg dst

let store t ~value ~ptr = ignore (emit t (Instr.Store { value; ptr }))

let binop t op lhs rhs =
  let dst = reg t "tmp" (value_ty t lhs) in
  ignore (emit t (Instr.Binop { dst; op; lhs; rhs }));
  Value.Reg dst

let add t a b = binop t Instr.Add a b
let sub t a b = binop t Instr.Sub a b
let mul t a b = binop t Instr.Mul a b

let icmp t cmp lhs rhs =
  let dst = reg t "cmp" Ty.I1 in
  ignore (emit t (Instr.Icmp { dst; cmp; lhs; rhs }));
  Value.Reg dst

let gep t ?(name = "field") base field =
  let field_ty =
    match value_ty t base with
    | Ty.Ptr (Ty.Struct s) -> (
      match List.nth_opt (Irmod.struct_fields t.m s) field with
      | Some ty -> ty
      | None ->
        invalid_arg
          (Printf.sprintf "Builder.gep: %%struct.%s has no field %d" s field))
    | ty ->
      invalid_arg ("Builder.gep: base is not a struct pointer: " ^ Ty.to_string ty)
  in
  let dst = reg t name (Ty.Ptr field_ty) in
  ignore (emit t (Instr.Gep { dst; base; field }));
  Value.Reg dst

let index t ?(name = "elem") base idx =
  let elem_ty =
    match value_ty t base with
    | Ty.Ptr (Ty.Array (elem, _)) -> elem
    | Ty.Ptr elem -> elem
    | ty -> invalid_arg ("Builder.index: not a pointer: " ^ Ty.to_string ty)
  in
  let dst = reg t name (Ty.Ptr elem_ty) in
  ignore (emit t (Instr.Index { dst; base; idx }));
  Value.Reg dst

let cast t ?(name = "cast") src ty =
  let dst = reg t name ty in
  ignore (emit t (Instr.Cast { dst; src }));
  Value.Reg dst

let call t ?(name = "ret") ~ret callee args =
  let dst = reg t name ret in
  ignore (emit t (Instr.Call { dst = Some dst; callee; args }));
  Value.Reg dst

let call_void t callee args =
  ignore (emit t (Instr.Call { dst = None; callee; args }))

let malloc t ?(name = "obj") ty =
  let size = Irmod.size_of t.m ty in
  let raw = call t ~name:(name ^ ".raw") ~ret:(Ty.Ptr Ty.I8) Intrinsics.malloc [ Value.i64 size ] in
  cast t ~name raw (Ty.Ptr ty)

let mutex_lock t m = call_void t Intrinsics.mutex_lock [ m ]
let mutex_unlock t m = call_void t Intrinsics.mutex_unlock [ m ]

let cond_wait t ~cond ~mutex = call_void t Intrinsics.cond_wait [ cond; mutex ]
let cond_signal t c = call_void t Intrinsics.cond_signal [ c ]
let cond_broadcast t c = call_void t Intrinsics.cond_broadcast [ c ]
let work t ~ns = call_void t Intrinsics.work [ Value.i64 ns ]
let io_delay t ~ns = call_void t Intrinsics.io_delay [ Value.i64 ns ]
let assert_true t v = call_void t Intrinsics.assert_true [ v ]

let rand t ~bound =
  call t ~name:"rand" ~ret:Ty.I64 Intrinsics.rand [ Value.i64 bound ]

let spawn t ?(name = "tid") fn arg =
  call t ~name ~ret:Ty.I64 Intrinsics.thread_create [ Value.Fn_ref fn; arg ]

let join t tid = call_void t Intrinsics.thread_join [ tid ]

let br t label = ignore (emit t (Instr.Br label))

let cond_br t cond then_ else_ =
  ignore (emit t (Instr.Cond_br { cond; then_; else_ }))

let ret t v = ignore (emit t (Instr.Ret (Some v)))
let ret_void t = ignore (emit t (Instr.Ret None))

let if_ t cond ~then_ ~else_ =
  let lt = fresh_label t "then" in
  let le = fresh_label t "else" in
  let lj = fresh_label t "join" in
  cond_br t cond lt le;
  start_block t lt;
  then_ ();
  if t.current <> None then br t lj;
  start_block t le;
  else_ ();
  if t.current <> None then br t lj;
  start_block t lj

let while_ t ~cond ~body =
  let lh = fresh_label t "head" in
  let lb = fresh_label t "body" in
  let lx = fresh_label t "exit" in
  br t lh;
  start_block t lh;
  let c = cond () in
  cond_br t c lb lx;
  start_block t lb;
  body ();
  if t.current <> None then br t lh;
  start_block t lx

let for_ t ~from ~below body =
  let slot = alloca t ~name:"i" Ty.I64 in
  store t ~value:(Value.i64 from) ~ptr:slot;
  let cond () =
    let i = load t ~name:"i" slot in
    icmp t Instr.Slt i below
  in
  let step () =
    let i = load t ~name:"i" slot in
    body i;
    if t.current <> None then begin
      let i' = load t ~name:"i" slot in
      let next = add t i' (Value.i64 1) in
      store t ~value:next ~ptr:slot
    end
  in
  while_ t ~cond ~body:step

let define m fname ~params ~ret body =
  let params =
    List.map (fun (pname, ty) -> Irmod.fresh_reg m ~name:pname ~ty) params
  in
  let func = Func.create ~fname ~params ~ret in
  Irmod.add_func m func;
  let t =
    { m; func; current = None; labels = []; label_counter = 0; last_iid = -1 }
  in
  start_block t "entry";
  body t;
  (match t.current with
  | Some b ->
    invalid_arg
      (Printf.sprintf "Builder.define: %s ends with unsealed block %s" fname
         b.Block.label)
  | None -> ());
  let defined = List.map (fun b -> b.Block.label) func.Func.blocks in
  let missing = List.filter (fun l -> not (List.mem l defined)) t.labels in
  (* Labels created by combinators are always defined; a user label branched
     to but never started is a bug in the corpus program. *)
  match missing with
  | [] -> ()
  | l :: _ ->
    invalid_arg (Printf.sprintf "Builder.define: %s: label %s never defined" fname l)
