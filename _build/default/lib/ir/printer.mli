(** Textual rendering of LIR modules in an LLVM-flavoured syntax, used by
    the CLI's [dump] command and by diagnosis reports that show the
    instructions involved in a bug pattern. *)

val func_to_string : Func.t -> string
val module_to_string : Irmod.t -> string

val instr_with_location : Irmod.t -> int -> string
(** ["func:block: <instr>  (pc 0x...)"] for the given iid. *)
