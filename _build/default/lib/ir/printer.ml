let func_to_string f =
  let buf = Buffer.create 256 in
  let params =
    String.concat ", "
      (List.map
         (fun r -> Ty.to_string r.Value.rty ^ " %" ^ r.Value.rname)
         f.Func.params)
  in
  Buffer.add_string buf
    (Printf.sprintf "define %s @%s(%s) {\n" (Ty.to_string f.Func.ret)
       f.Func.fname params);
  let emit_block b =
    Buffer.add_string buf (b.Block.label ^ ":\n");
    List.iter
      (fun i -> Buffer.add_string buf ("  " ^ Instr.to_string i ^ "\n"))
      b.Block.instrs
  in
  List.iter emit_block f.Func.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let module_to_string m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "; module %s\n" (Irmod.name m));
  Irmod.iter_globals m (fun g ty ->
      Buffer.add_string buf
        (Printf.sprintf "@%s = global %s\n" g (Ty.to_string ty)));
  List.iter
    (fun f -> Buffer.add_string buf ("\n" ^ func_to_string f))
    (Irmod.funcs m);
  Buffer.contents buf

let instr_with_location m iid =
  let i = Irmod.instr_by_iid m iid in
  let f, b = Irmod.location_of_iid m iid in
  Printf.sprintf "%s:%s: %s  (pc 0x%x)" f.Func.fname b.Block.label
    (Instr.to_string i) i.Instr.pc
