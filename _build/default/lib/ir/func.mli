(** An LIR function: parameters, return type and an ordered list of basic
    blocks whose first element is the entry block. *)

type t = {
  fname : string;
  params : Value.reg list;
  ret : Ty.t;
  mutable blocks : Block.t list;
}

val create : fname:string -> params:Value.reg list -> ret:Ty.t -> t

val entry : t -> Block.t
(** Raises [Invalid_argument] on a body-less function. *)

val find_block : t -> Instr.label -> Block.t
(** Raises [Not_found] for unknown labels. *)

val iter_instrs : t -> (Block.t -> Instr.t -> unit) -> unit
(** Visit every instruction in block order. *)

val instr_count : t -> int
