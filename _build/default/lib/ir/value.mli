(** Operands of LIR instructions: virtual registers, immediates, globals,
    null pointers and function references. *)

type reg = {
  rid : int;  (** unique within the enclosing function *)
  rname : string;  (** for printing, e.g. ["%fifo"] *)
  rty : Ty.t;
}

type t =
  | Reg of reg
  | Imm of int64 * Ty.t  (** integer immediate of an integer type *)
  | Global of string  (** address of a module global (a pointer value) *)
  | Null of Ty.t  (** null of pointer type [Ty.Ptr _] *)
  | Fn_ref of string  (** address of a function, for thread entry points *)

val ty_of : globals:(string -> Ty.t) -> t -> Ty.t
(** Static type of the operand.  For [Global g], the result is a pointer to
    the global's declared type, which [globals] resolves. *)

val to_string : t -> string

val i64 : int -> t
val i32 : int -> t
val i8 : int -> t
val bool_true : t
val bool_false : t
