type binop = Add | Sub | Mul | Sdiv | Srem | And | Or | Xor | Shl | Lshr

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge

type label = string

type kind =
  | Alloca of { dst : Value.reg; ty : Ty.t }
  | Load of { dst : Value.reg; ptr : Value.t }
  | Store of { value : Value.t; ptr : Value.t }
  | Binop of { dst : Value.reg; op : binop; lhs : Value.t; rhs : Value.t }
  | Icmp of { dst : Value.reg; cmp : icmp; lhs : Value.t; rhs : Value.t }
  | Gep of { dst : Value.reg; base : Value.t; field : int }
  | Index of { dst : Value.reg; base : Value.t; idx : Value.t }
  | Cast of { dst : Value.reg; src : Value.t }
  | Call of { dst : Value.reg option; callee : string; args : Value.t list }
  | Br of label
  | Cond_br of { cond : Value.t; then_ : label; else_ : label }
  | Ret of Value.t option
  | Unreachable

type t = { iid : int; kind : kind; mutable pc : int }

let make ~iid kind = { iid; kind; pc = -1 }

let is_terminator t =
  match t.kind with
  | Br _ | Cond_br _ | Ret _ | Unreachable -> true
  | Alloca _ | Load _ | Store _ | Binop _ | Icmp _ | Gep _ | Index _ | Cast _
  | Call _ ->
    false

let defined_reg t =
  match t.kind with
  | Alloca { dst; _ }
  | Load { dst; _ }
  | Binop { dst; _ }
  | Icmp { dst; _ }
  | Gep { dst; _ }
  | Index { dst; _ }
  | Cast { dst; _ } ->
    Some dst
  | Call { dst; _ } -> dst
  | Store _ | Br _ | Cond_br _ | Ret _ | Unreachable -> None

let operands t =
  match t.kind with
  | Alloca _ | Br _ | Unreachable -> []
  | Load { ptr; _ } -> [ ptr ]
  | Store { value; ptr } -> [ value; ptr ]
  | Binop { lhs; rhs; _ } | Icmp { lhs; rhs; _ } -> [ lhs; rhs ]
  | Gep { base; _ } -> [ base ]
  | Index { base; idx; _ } -> [ base; idx ]
  | Cast { src; _ } -> [ src ]
  | Call { args; _ } -> args
  | Cond_br { cond; _ } -> [ cond ]
  | Ret v -> ( match v with None -> [] | Some v -> [ v ])

let is_memory_access t =
  match t.kind with
  | Load _ | Store _ -> true
  | Alloca _ | Binop _ | Icmp _ | Gep _ | Index _ | Cast _ | Call _ | Br _
  | Cond_br _ | Ret _ | Unreachable ->
    false

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Sdiv -> "sdiv"
  | Srem -> "srem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"

let icmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Slt -> "slt"
  | Sle -> "sle"
  | Sgt -> "sgt"
  | Sge -> "sge"

let vstr = Value.to_string

let to_string t =
  match t.kind with
  | Alloca { dst; ty } ->
    Printf.sprintf "%%%s = alloca %s" dst.Value.rname (Ty.to_string ty)
  | Load { dst; ptr } ->
    Printf.sprintf "%%%s = load %s, %s" dst.Value.rname
      (Ty.to_string dst.Value.rty) (vstr ptr)
  | Store { value; ptr } -> Printf.sprintf "store %s, %s" (vstr value) (vstr ptr)
  | Binop { dst; op; lhs; rhs } ->
    Printf.sprintf "%%%s = %s %s, %s" dst.Value.rname (binop_to_string op)
      (vstr lhs) (vstr rhs)
  | Icmp { dst; cmp; lhs; rhs } ->
    Printf.sprintf "%%%s = icmp %s %s, %s" dst.Value.rname (icmp_to_string cmp)
      (vstr lhs) (vstr rhs)
  | Gep { dst; base; field } ->
    Printf.sprintf "%%%s = getelementptr %s, field %d" dst.Value.rname
      (vstr base) field
  | Index { dst; base; idx } ->
    Printf.sprintf "%%%s = getelementptr %s, idx %s" dst.Value.rname (vstr base)
      (vstr idx)
  | Cast { dst; src } ->
    Printf.sprintf "%%%s = bitcast %s to %s" dst.Value.rname (vstr src)
      (Ty.to_string dst.Value.rty)
  | Call { dst; callee; args } ->
    let args = String.concat ", " (List.map vstr args) in
    let prefix =
      match dst with
      | None -> ""
      | Some d -> Printf.sprintf "%%%s = " d.Value.rname
    in
    Printf.sprintf "%scall @%s(%s)" prefix callee args
  | Br l -> "br label %" ^ l
  | Cond_br { cond; then_; else_ } ->
    Printf.sprintf "br %s, label %%%s, label %%%s" (vstr cond) then_ else_
  | Ret None -> "ret void"
  | Ret (Some v) -> "ret " ^ vstr v
  | Unreachable -> "unreachable"
