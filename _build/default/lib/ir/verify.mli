(** Module well-formedness checks, run by the corpus tests on every program
    before it is simulated: sealed blocks, resolvable branch targets and
    callees, register def-before-use, and operand typing for the memory and
    pointer instructions the analyses interpret. *)

type error = { where : string; what : string }

val check : Irmod.t -> error list
(** Empty when the module is well-formed. *)

val check_exn : Irmod.t -> unit
(** Raises [Failure] with all errors joined when any check fails. *)
