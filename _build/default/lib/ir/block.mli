(** A basic block: a labelled, branch-free instruction sequence ending in a
    single terminator.  Blocks are the nodes of the control-flow graph the
    trace decoder walks. *)

type t = {
  label : Instr.label;
  mutable instrs : Instr.t list;  (** in execution order; last = terminator *)
}

val create : label:Instr.label -> t

val terminator : t -> Instr.t
(** Raises [Invalid_argument] when the block is empty or does not end in a
    terminator (i.e. before the builder seals it). *)

val successors : t -> Instr.label list
(** Labels this block can branch to (empty for return blocks). *)
