type t =
  | Void
  | I1
  | I8
  | I32
  | I64
  | Ptr of t
  | Struct of string
  | Array of t * int
  | Fn

let rec equal a b =
  match a, b with
  | Void, Void | I1, I1 | I8, I8 | I32, I32 | I64, I64 | Fn, Fn -> true
  | Ptr a, Ptr b -> equal a b
  | Struct a, Struct b -> String.equal a b
  | Array (a, n), Array (b, m) -> n = m && equal a b
  | (Void | I1 | I8 | I32 | I64 | Ptr _ | Struct _ | Array _ | Fn), _ -> false

let compare = Stdlib.compare

let rec to_string = function
  | Void -> "void"
  | I1 -> "i1"
  | I8 -> "i8"
  | I32 -> "i32"
  | I64 -> "i64"
  | Ptr t -> to_string t ^ "*"
  | Struct name -> "%struct." ^ name
  | Array (t, n) -> Printf.sprintf "[%d x %s]" n (to_string t)
  | Fn -> "fn"

let pointee = function
  | Ptr t -> t
  | t -> invalid_arg ("Ty.pointee: not a pointer: " ^ to_string t)

let is_pointer = function
  | Ptr _ -> true
  | Void | I1 | I8 | I32 | I64 | Struct _ | Array _ | Fn -> false

let rec size_in_bytes ~struct_fields = function
  | Void -> invalid_arg "Ty.size_in_bytes: void"
  | Fn -> invalid_arg "Ty.size_in_bytes: fn"
  | I1 | I8 -> 1
  | I32 -> 4
  | I64 | Ptr _ -> 8
  | Struct name ->
    List.fold_left
      (fun acc f -> acc + size_in_bytes ~struct_fields f)
      0 (struct_fields name)
  | Array (t, n) -> n * size_in_bytes ~struct_fields t
