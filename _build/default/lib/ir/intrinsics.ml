type signature = { arg_count : int; ret : Ty.t }

let mutex_lock = "mutex_lock"
let mutex_unlock = "mutex_unlock"
let mutex_init = "mutex_init"
let cond_init = "cond_init"
let cond_wait = "cond_wait"
let cond_signal = "cond_signal"
let cond_broadcast = "cond_broadcast"
let malloc = "malloc"
let free = "free"
let thread_create = "thread_create"
let thread_join = "thread_join"
let work = "work"
let io_delay = "io_delay"
let assert_true = "assert_true"
let print_i64 = "print_i64"
let rand = "rand"

let table =
  [
    (malloc, { arg_count = 1; ret = Ty.Ptr Ty.I8 });
    (free, { arg_count = 1; ret = Ty.Void });
    (mutex_init, { arg_count = 1; ret = Ty.Void });
    (mutex_lock, { arg_count = 1; ret = Ty.Void });
    (mutex_unlock, { arg_count = 1; ret = Ty.Void });
    (cond_init, { arg_count = 1; ret = Ty.Void });
    (cond_wait, { arg_count = 2; ret = Ty.Void });
    (cond_signal, { arg_count = 1; ret = Ty.Void });
    (cond_broadcast, { arg_count = 1; ret = Ty.Void });
    (thread_create, { arg_count = 2; ret = Ty.I64 });
    (thread_join, { arg_count = 1; ret = Ty.Void });
    (work, { arg_count = 1; ret = Ty.Void });
    (io_delay, { arg_count = 1; ret = Ty.Void });
    (assert_true, { arg_count = 1; ret = Ty.Void });
    (print_i64, { arg_count = 1; ret = Ty.Void });
    (rand, { arg_count = 1; ret = Ty.I64 });
  ]

let lookup name = List.assoc_opt name table
let is_intrinsic name = List.mem_assoc name table
let all = List.map fst table
