lib/sim/hooks.ml: Float Lir
