lib/sim/failure.mli:
