lib/sim/interp.ml: Array Condvars Failure Float Hashtbl Hooks Int64 Lir List Memory Mutexes Option Snorlax_util String
