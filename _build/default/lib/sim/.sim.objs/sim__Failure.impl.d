lib/sim/failure.ml: List Printf String
