lib/sim/memory.ml: Hashtbl Lir List Option
