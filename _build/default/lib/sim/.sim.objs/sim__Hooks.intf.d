lib/sim/hooks.mli: Lir
