lib/sim/interp.mli: Failure Hooks Lir
