lib/sim/mutexes.mli:
