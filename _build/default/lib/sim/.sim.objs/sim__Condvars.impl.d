lib/sim/condvars.ml: Hashtbl List Queue
