lib/sim/mutexes.ml: Hashtbl List Printf Queue
