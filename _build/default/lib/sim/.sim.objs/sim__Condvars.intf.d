lib/sim/condvars.mli:
