lib/sim/memory.mli: Lir
