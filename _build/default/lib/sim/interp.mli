(** Discrete-event interpreter for LIR modules.

    Every thread runs on its own virtual core with a local clock; the
    engine always steps the runnable thread with the smallest clock, which
    yields a genuinely parallel interleaving under a single global
    time base — the simulator analogue of the invariant TSC the paper's
    measurements depend on (§3.2).  Per-instruction costs carry seeded
    jitter so repeated runs interleave differently while staying
    reproducible from the seed. *)

type outcome =
  | Completed
  | Failed of { failure : Failure.t; time_ns : float }
  | Stuck
      (** threads blocked with no failure recorded (e.g. a join cycle) *)
  | Fuel_exhausted

type run_result = {
  outcome : outcome;
  final_time_ns : float;  (** max thread clock = virtual wall-clock time *)
  steps : int;  (** instructions executed across all threads *)
  output : int list;  (** print_i64 values, in emission order *)
  threads_spawned : int;
}

type config = {
  seed : int;
  max_steps : int;
  hooks : Hooks.t;
  cost_scale : float;
      (** multiplies all instruction base costs; 1.0 = defaults *)
}

val default_config : config

val run : ?config:config -> Lir.Irmod.t -> entry:string -> run_result
(** Executes [entry] (a nullary or unary function; a unary entry receives
    0) to completion.  The module is laid out and globals are allocated
    first.  Host-level exceptions ([Failure]) indicate corpus-program bugs
    such as unlocking an unheld mutex, not simulated failures. *)
