type crash_reason = Null_deref | Use_after_free | Unmapped

type t =
  | Crash of { tid : int; iid : int; pc : int; reason : crash_reason; addr : int }
  | Assert_fail of { tid : int; iid : int; pc : int }
  | Deadlock of { waiters : (int * int * int) list }

let failing_iid = function
  | Crash { iid; _ } | Assert_fail { iid; _ } -> iid
  | Deadlock { waiters } -> (
    match List.rev waiters with
    | (_, iid, _) :: _ -> iid
    | [] -> invalid_arg "Failure.failing_iid: empty deadlock")

let kind_name = function
  | Crash _ -> "crash"
  | Assert_fail _ -> "assert"
  | Deadlock _ -> "deadlock"

let reason_to_string = function
  | Null_deref -> "null dereference"
  | Use_after_free -> "use after free"
  | Unmapped -> "unmapped access"

let to_string = function
  | Crash { tid; iid; pc; reason; addr } ->
    Printf.sprintf "crash: thread %d, iid %d, pc 0x%x, %s of 0x%x" tid iid pc
      (reason_to_string reason) addr
  | Assert_fail { tid; iid; pc } ->
    Printf.sprintf "assertion failure: thread %d, iid %d, pc 0x%x" tid iid pc
  | Deadlock { waiters } ->
    let part (tid, iid, lock) =
      Printf.sprintf "thread %d blocked at iid %d on lock 0x%x" tid iid lock
    in
    "deadlock: " ^ String.concat "; " (List.map part waiters)
