(** Plain-text rendering of every table and figure the paper's evaluation
    contains, in paper order.  Each [print_*] returns the data it printed
    so callers (the bench harness, EXPERIMENTS.md generation) can reuse
    it. *)

val print_table1 : ?samples:int -> unit -> Hypothesis.row list
(** Deadlock ΔT table. *)

val print_table2 : ?samples:int -> unit -> Hypothesis.row list
(** Order-violation ΔT table. *)

val print_table3 : ?samples:int -> unit -> Hypothesis.row list
(** Atomicity-violation ΔT1/ΔT2 table. *)

val print_hypothesis_summary : Hypothesis.row list list -> unit

val print_accuracy : unit -> (string * bool * float * bool) list
(** §6.1: per eval bug (id, root-cause match, A_O, unique top). *)

val print_figure7 : unit -> Stages.stage_shares list

val print_table4 : unit -> Analysis_time.row list

val print_figure8 : ?seeds:int list -> unit -> Overhead.row list

val print_figure9 : ?threads:int list -> unit -> Scalability.point list

val print_latency : unit -> Latency.row list
