(** Throughput workloads for the overhead experiments (Figures 8 and 9):
    bug-free server loops with per-system compute/IO profiles.  The
    profile controls branch density, which controls how much trace the
    hardware tracer emits per unit time — compute-bound pbzip2 tops the
    overhead chart exactly as in the paper. *)

type spec = {
  name : string;
  requests : int;  (** requests per worker thread *)
  io_gap_ns : int;  (** off-CPU wait between requests *)
  inner_iters : int;  (** branch-dense compute per request *)
  lock_every : int;  (** take the shared lock once per N requests *)
}

val specs : spec list
(** One per C/C++ system of §6.2's Figure 8, in display order. *)

val find : string -> spec

val build : spec -> threads:int -> Lir.Irmod.t * (int -> bool)
(** The workload module (entry ["main"]) and a predicate marking the
    worker's memory accesses — what a Gist-style tool instruments. *)

val run_overhead :
  spec ->
  threads:int ->
  seed:int ->
  tracer_config:Pt.Config.t option ->
  gist_costs:Gist.cost_model option ->
  float
(** Relative slowdown (e.g. 0.011 = 1.1%) of running the workload under
    the given monitoring versus bare, same seed.  Exactly one of
    [tracer_config]/[gist_costs] should be [Some]; both [None] returns
    0. *)
