(** The coarse-interleaving-hypothesis study (§3.2, Tables 1–3): reproduce
    every corpus bug several times while timestamping its target
    instructions (the clock_gettime instrumentation of the paper) and
    measure the time elapsed between consecutive target events. *)

type measurement = {
  bug : Corpus.Bug.t;
  deltas_us : float list list;
      (** one list per ΔT pair (deadlock/order: one; atomicity: ΔT1, ΔT2),
          each with one sample per reproduced failure *)
  runs_to_reproduce : int list;  (** executions needed per reproduction *)
}

type row = {
  r_bug : Corpus.Bug.t;
  avg_us : float list;  (** mean per ΔT pair *)
  std_us : float list;
  min_us : float;
}

val measure : ?samples:int -> ?max_tries:int -> Corpus.Bug.t -> measurement
(** Reproduce the bug [samples] (default 10, the paper's count) times. *)

val row_of_measurement : measurement -> row

val run :
  ?samples:int -> kind:Corpus.Bug.kind -> unit -> row list
(** All corpus bugs of one kind — one table of the paper. *)

val summary : row list list -> float * float * float
(** (smallest per-bug average, largest per-bug average, global minimum
    sample) across tables — the paper quotes 154 µs, 3505 µs and 91 µs. *)
