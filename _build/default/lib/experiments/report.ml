module Tablefmt = Snorlax_util.Tablefmt
module Stats = Snorlax_util.Stats

let header title =
  Printf.printf "\n=== %s ===\n" title

let hypothesis_table ~title ~kind ?samples () =
  header title;
  let rows = Hypothesis.run ?samples ~kind () in
  let atomicity = kind = Corpus.Bug.Atomicity_violation in
  let headers =
    if atomicity then
      [ "bug"; "tracker"; "dT1 avg (us)"; "sigma1"; "dT2 avg (us)"; "sigma2" ]
    else [ "bug"; "tracker"; "dT avg (us)"; "sigma" ]
  in
  let t = Tablefmt.create ~headers in
  Tablefmt.set_align t
    (Tablefmt.Left :: Tablefmt.Left
    :: List.map (fun _ -> Tablefmt.Right) (List.tl (List.tl headers)));
  List.iter
    (fun (r : Hypothesis.row) ->
      let cells =
        [ r.Hypothesis.r_bug.Corpus.Bug.id; r.Hypothesis.r_bug.Corpus.Bug.tracker_id ]
        @ List.concat
            (List.map2
               (fun a s -> [ Tablefmt.fmt_us a; Tablefmt.fmt_us s ])
               r.Hypothesis.avg_us r.Hypothesis.std_us)
      in
      Tablefmt.add_row t cells)
    rows;
  Tablefmt.print t;
  rows

let print_table1 ?samples () =
  hypothesis_table ?samples
    ~title:"Table 1: time elapsed between deadlock target events"
    ~kind:Corpus.Bug.Deadlock ()

let print_table2 ?samples () =
  hypothesis_table ?samples
    ~title:"Table 2: time elapsed between order-violation target events"
    ~kind:Corpus.Bug.Order_violation ()

let print_table3 ?samples () =
  hypothesis_table ?samples
    ~title:"Table 3: times elapsed between atomicity-violation target events"
    ~kind:Corpus.Bug.Atomicity_violation ()

let print_hypothesis_summary tables =
  let lo, hi, global_min = Hypothesis.summary tables in
  Printf.printf
    "\nHypothesis summary: per-bug averages span %.0f-%.0f us; smallest \
     single observed gap %.2f us (paper: 154-3505 us, minimum 91 us; our \
     tails reach lower, but the tracer's sub-us timing still orders them \
     — see EXPERIMENTS.md).\n"
    lo hi global_min

let print_accuracy () =
  header "Accuracy (Section 6.1) over the 11-bug evaluation set";
  let t =
    Tablefmt.create
      ~headers:[ "bug"; "kind"; "root cause"; "A_O (%)"; "top F1"; "unique" ]
  in
  Tablefmt.set_align t
    [ Tablefmt.Left; Tablefmt.Left; Tablefmt.Left; Tablefmt.Right;
      Tablefmt.Right; Tablefmt.Left ];
  let results =
    List.map
      (fun (e : Eval_runs.entry) ->
        let ok, ao, unique = Eval_runs.accuracy_of e in
        let f1 =
          match e.Eval_runs.diagnosis.Snorlax_core.Diagnosis.top with
          | Some s -> s.Snorlax_core.Statistics.f1
          | None -> 0.0
        in
        Tablefmt.add_row t
          [
            e.Eval_runs.bug.Corpus.Bug.id;
            Corpus.Bug.kind_name e.Eval_runs.bug.Corpus.Bug.kind;
            (if ok then "correct" else "WRONG");
            Printf.sprintf "%.1f" ao;
            Printf.sprintf "%.2f" f1;
            (if unique then "yes" else "tie(resolved)");
          ];
        (e.Eval_runs.bug.Corpus.Bug.id, ok, ao, unique))
      (Eval_runs.eval_entries ())
  in
  Tablefmt.print t;
  let correct = List.length (List.filter (fun (_, ok, _, _) -> ok) results) in
  Printf.printf "Root-cause accuracy: %d/%d (paper: 100%%).\n" correct
    (List.length results);
  results

let print_figure7 () =
  header "Figure 7: per-stage contribution to candidate elimination";
  let shares, g_trace, g_rank = Stages.run () in
  let t =
    Tablefmt.create
      ~headers:("bug" :: List.map (fun n -> n ^ " (%)") Stages.stage_names)
  in
  Tablefmt.set_align t
    (Tablefmt.Left :: List.map (fun _ -> Tablefmt.Right) Stages.stage_names);
  List.iter
    (fun (s : Stages.stage_shares) ->
      Tablefmt.add_row t
        (s.Stages.bug_id
        :: List.map (fun v -> Printf.sprintf "%.1f" v) s.Stages.shares))
    shares;
  Tablefmt.print t;
  Printf.printf
    "Scope restriction shrinks the analysis %.1fx (geomean; paper: 9x); \
     type ranking a further %.1fx (paper: 4.6x).\n"
    g_trace g_rank;
  shares

let print_table4 () =
  header "Table 4: server-side analysis time and speedup vs whole-program static analysis";
  let rows, geo = Analysis_time.run () in
  let t =
    Tablefmt.create
      ~headers:
        [ "bug"; "system"; "analysis (s)"; "hybrid PTA (s)"; "static PTA (s)";
          "speedup"; "scope reduction" ]
  in
  Tablefmt.set_align t
    [ Tablefmt.Left; Tablefmt.Left; Tablefmt.Right; Tablefmt.Right;
      Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ];
  List.iter
    (fun (r : Analysis_time.row) ->
      Tablefmt.add_row t
        [
          r.Analysis_time.bug_id;
          r.Analysis_time.system;
          Printf.sprintf "%.4f" r.Analysis_time.analysis_s;
          Printf.sprintf "%.5f" r.Analysis_time.hybrid_pta_s;
          Printf.sprintf "%.5f" r.Analysis_time.static_pta_s;
          Tablefmt.fmt_x r.Analysis_time.speedup;
          Tablefmt.fmt_x r.Analysis_time.scope_reduction;
        ])
    rows;
  Tablefmt.print t;
  Printf.printf "Geometric-mean speedup: %.1fx (paper: 24x).\n" geo;
  rows

let print_figure8 ?seeds () =
  header "Figure 8: runtime overhead of control-flow tracing (2 threads)";
  let rows, avg = Overhead.run ?seeds () in
  let t = Tablefmt.create ~headers:[ "system"; "overhead (%)"; "peak (%)" ] in
  Tablefmt.set_align t [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right ];
  List.iter
    (fun (r : Overhead.row) ->
      Tablefmt.add_row t
        [
          r.Overhead.system;
          Tablefmt.fmt_pct r.Overhead.avg_pct;
          Tablefmt.fmt_pct r.Overhead.peak_pct;
        ])
    rows;
  Tablefmt.print t;
  Printf.printf "Average overhead: %.2f%% (paper: 0.97%%, peak pbzip2 1.91%%).\n" avg;
  rows

let print_figure9 ?threads () =
  header "Figure 9: scalability with application thread count";
  let points = Scalability.run ?threads () in
  let t =
    Tablefmt.create ~headers:[ "threads"; "snorlax (%)"; "gist (%)" ]
  in
  List.iter
    (fun (p : Scalability.point) ->
      Tablefmt.add_row t
        [
          string_of_int p.Scalability.threads;
          Tablefmt.fmt_pct p.Scalability.snorlax_pct;
          Tablefmt.fmt_pct p.Scalability.gist_pct;
        ])
    points;
  Tablefmt.print t;
  Printf.printf
    "(paper: Snorlax 0.87%% -> 1.98%%, Gist 3.14%% -> 38.9%% over 2 -> 32 \
     threads)\n";
  points

let print_latency () =
  header "Diagnosis latency vs Gist (Section 6.3)";
  let rows, avg = Latency.run () in
  let t =
    Tablefmt.create
      ~headers:[ "bug"; "snorlax failures"; "gist recurrences"; "slice size" ]
  in
  Tablefmt.set_align t
    [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ];
  List.iter
    (fun (r : Latency.row) ->
      Tablefmt.add_row t
        [
          r.Latency.bug_id;
          string_of_int r.Latency.snorlax_failures;
          string_of_int r.Latency.gist_recurrences;
          string_of_int r.Latency.slice_size;
        ])
    rows;
  Tablefmt.print t;
  Printf.printf
    "Average Gist recurrences: %.1f (paper: 3.7).  With Chromium's 684 \
     tracked races, Gist needs ~%.0f failing executions per diagnosis \
     (paper: 2523) versus Snorlax's 1.\n"
    avg
    (Latency.chromium_scenario ~avg_recurrences:avg ~tracked_bugs:684);
  rows
