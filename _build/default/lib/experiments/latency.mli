(** The §6.3 diagnosis-latency comparison: Snorlax diagnoses after a
    single failure; Gist needs several recurrences (iterative slice
    refinement) and, with sampling in space, a further factor equal to the
    number of bugs being tracked. *)

type row = {
  bug_id : string;
  snorlax_failures : int;  (** always 1 *)
  gist_recurrences : int;  (** refinement rounds until the root-cause
                               instructions are instrumented *)
  slice_size : int;
}

val of_entry : Eval_runs.entry -> row

val run : unit -> row list * float
(** Rows plus the average recurrence count (the paper reports 3.7). *)

val chromium_scenario : avg_recurrences:float -> tracked_bugs:int -> float
(** The paper's conservative estimate: with [tracked_bugs] open race
    reports (Chromium had 684), Gist's latency is
    [avg_recurrences * tracked_bugs] failing executions per diagnosis
    (2523x in the paper) versus Snorlax's one. *)
