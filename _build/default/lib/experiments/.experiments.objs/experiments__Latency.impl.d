lib/experiments/latency.ml: Analysis Corpus Eval_runs Gist List Pt Snorlax_core Snorlax_util
