lib/experiments/hypothesis.mli: Corpus
