lib/experiments/workloads.mli: Gist Lir Pt
