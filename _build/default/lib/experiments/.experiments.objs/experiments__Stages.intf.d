lib/experiments/stages.mli: Eval_runs
