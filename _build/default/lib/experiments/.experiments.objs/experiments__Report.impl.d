lib/experiments/report.ml: Analysis_time Corpus Eval_runs Hypothesis Latency List Overhead Printf Scalability Snorlax_core Snorlax_util Stages
