lib/experiments/ablations.mli:
