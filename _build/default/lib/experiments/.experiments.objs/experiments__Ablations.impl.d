lib/experiments/ablations.ml: Array Corpus Float List Printf Pt Snorlax_core Snorlax_util
