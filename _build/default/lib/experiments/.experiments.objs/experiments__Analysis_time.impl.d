lib/experiments/analysis_time.ml: Analysis Corpus Eval_runs Float List Pt Snorlax_core Snorlax_util Sys
