lib/experiments/analysis_time.mli: Eval_runs
