lib/experiments/overhead.ml: List Pt Snorlax_util Workloads
