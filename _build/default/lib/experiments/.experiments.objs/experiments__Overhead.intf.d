lib/experiments/overhead.mli:
