lib/experiments/report.mli: Analysis_time Hypothesis Latency Overhead Scalability Stages
