lib/experiments/eval_runs.mli: Corpus Snorlax_core
