lib/experiments/stages.ml: Corpus Eval_runs List Snorlax_core Snorlax_util
