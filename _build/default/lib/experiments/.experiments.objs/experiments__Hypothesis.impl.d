lib/experiments/hypothesis.ml: Array Corpus Float Hashtbl Lir List Printf Sim Snorlax_util
