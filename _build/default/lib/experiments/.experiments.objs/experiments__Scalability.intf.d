lib/experiments/scalability.mli:
