lib/experiments/workloads.ml: Corpus Gist Lir List Pt Sim String
