lib/experiments/latency.mli: Eval_runs
