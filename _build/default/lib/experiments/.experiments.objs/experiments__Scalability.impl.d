lib/experiments/scalability.ml: Gist List Pt Snorlax_util Workloads
