lib/experiments/eval_runs.ml: Corpus Hashtbl List Pt Snorlax_core
