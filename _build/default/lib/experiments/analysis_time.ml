module Stats = Snorlax_util.Stats
module D = Snorlax_core.Diagnosis

type row = {
  bug_id : string;
  system : string;
  analysis_s : float;
  hybrid_pta_s : float;
  static_pta_s : float;
  speedup : float;
  scope_reduction : float;
}

(* Time the whole-program analysis over a few repetitions so that the
   ratio is stable even when a single solve is sub-millisecond. *)
let timed_static m =
  let reps = 5 in
  let t0 = Sys.time () in
  for _ = 1 to reps do
    ignore (Analysis.Pointsto.analyze_all m)
  done;
  (Sys.time () -. t0) /. float_of_int reps

let timed_hybrid m ~executed =
  let reps = 5 in
  let t0 = Sys.time () in
  for _ = 1 to reps do
    ignore
      (Analysis.Pointsto.analyze m ~scope:(fun iid ->
           Snorlax_core.Trace_processing.Iset.mem iid executed))
  done;
  (Sys.time () -. t0) /. float_of_int reps

let of_entry (e : Eval_runs.entry) =
  let m = e.Eval_runs.collected.Corpus.Runner.built.Corpus.Bug.m in
  let first = List.hd e.Eval_runs.collected.Corpus.Runner.failing in
  let tp = D.process_failing m ~config:Pt.Config.default first in
  let executed = tp.Snorlax_core.Trace_processing.executed in
  let hybrid_pta_s = timed_hybrid m ~executed in
  let static_pta_s = timed_static m in
  let c = e.Eval_runs.diagnosis.D.stage_counts in
  {
    bug_id = e.Eval_runs.bug.Corpus.Bug.id;
    system = e.Eval_runs.bug.Corpus.Bug.system;
    analysis_s = e.Eval_runs.diagnosis.D.timings.D.pipeline_s;
    hybrid_pta_s;
    static_pta_s;
    speedup = static_pta_s /. Float.max 1e-6 hybrid_pta_s;
    scope_reduction =
      float_of_int c.D.total_instrs
      /. float_of_int (max 1 c.D.after_trace_processing);
  }

let run () =
  let rows = List.map of_entry (Eval_runs.eval_entries ()) in
  (rows, Stats.geomean (List.map (fun r -> r.speedup) rows))
