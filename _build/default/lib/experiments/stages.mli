(** Figure 7: how much each Lazy Diagnosis stage contributes to narrowing
    the candidate instructions down to the root cause, plus the §6.1
    accuracy numbers themselves. *)

type stage_shares = {
  bug_id : string;
  shares : float list;
      (** five percentages summing to ~100: trace processing, points-to,
          type ranking, pattern computation, statistical diagnosis — each
          stage's share of the total candidate elimination *)
  reduction_trace : float;  (** the "9x" analog: static / executed *)
  reduction_ranking : float;  (** the "4.6x" analog: candidates / rank-1 *)
}

val stage_names : string list

val of_entry : Eval_runs.entry -> stage_shares

val run : unit -> stage_shares list * float * float
(** Per-bug shares plus geometric means of the trace-processing and
    type-ranking reduction factors over the eval set. *)
