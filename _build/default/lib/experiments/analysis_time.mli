(** Table 4: server-side analysis time per received trace and the speedup
    of the hybrid (scope-restricted) points-to analysis over a
    whole-program static analysis of the same module.  Times are real,
    measured wall-clock seconds of this OCaml implementation; the paper's
    absolute numbers differ, but the speedup is the measured quantity the
    table is about. *)

type row = {
  bug_id : string;
  system : string;
  analysis_s : float;  (** full pipeline (steps 2-7) per trace *)
  hybrid_pta_s : float;
  static_pta_s : float;  (** whole-program points-to on the same module *)
  speedup : float;  (** static_pta_s / hybrid_pta_s *)
  scope_reduction : float;  (** static instrs / executed instrs *)
}

val of_entry : Eval_runs.entry -> row

val run : unit -> row list * float
(** Rows plus the geometric-mean speedup (the paper reports 24x). *)
