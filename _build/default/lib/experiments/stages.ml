module Stats = Snorlax_util.Stats
module D = Snorlax_core.Diagnosis

type stage_shares = {
  bug_id : string;
  shares : float list;
  reduction_trace : float;
  reduction_ranking : float;
}

let stage_names =
  [
    "trace processing";
    "hybrid points-to";
    "type ranking";
    "pattern computation";
    "statistical diagnosis";
  ]

let of_entry (e : Eval_runs.entry) =
  let c = e.Eval_runs.diagnosis.D.stage_counts in
  let counts =
    [
      c.D.total_instrs;
      c.D.after_trace_processing;
      c.D.after_points_to;
      c.D.after_type_ranking;
      c.D.after_patterns;
      c.D.after_statistics;
    ]
  in
  let total_eliminated =
    float_of_int (c.D.total_instrs - c.D.after_statistics)
  in
  let rec pair_shares = function
    | a :: (b :: _ as rest) ->
      (* A stage can only eliminate; clamp the rare case where pattern
         enumeration lists more instruction slots than candidates. *)
      (100.0 *. float_of_int (max 0 (a - b)) /. total_eliminated)
      :: pair_shares rest
    | [ _ ] | [] -> []
  in
  {
    bug_id = e.Eval_runs.bug.Corpus.Bug.id;
    shares = pair_shares counts;
    reduction_trace =
      float_of_int c.D.total_instrs /. float_of_int (max 1 c.D.after_trace_processing);
    reduction_ranking =
      float_of_int c.D.after_points_to /. float_of_int (max 1 c.D.after_type_ranking);
  }

let run () =
  let shares = List.map of_entry (Eval_runs.eval_entries ()) in
  let g_trace = Stats.geomean (List.map (fun s -> s.reduction_trace) shares) in
  let g_rank = Stats.geomean (List.map (fun s -> s.reduction_ranking) shares) in
  (shares, g_trace, g_rank)
