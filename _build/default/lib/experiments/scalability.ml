module Stats = Snorlax_util.Stats

type point = { threads : int; snorlax_pct : float; gist_pct : float }

(* Keep total simulated work roughly constant as threads grow so the
   sweep completes quickly; overhead is a ratio, so the absolute workload
   size only affects noise. *)
let scaled spec ~threads =
  {
    spec with
    Workloads.requests = max 12 (spec.Workloads.requests * 2 / threads);
  }

let run ?(threads = [ 2; 4; 8; 16; 32 ]) ?(seed = 7) () =
  let point threads =
    let per_spec monitor =
      Stats.mean
        (List.map
           (fun spec ->
             let spec = scaled spec ~threads in
             100.0
             *.
             match monitor with
             | `Snorlax ->
               Workloads.run_overhead spec ~threads ~seed
                 ~tracer_config:(Some Pt.Config.default) ~gist_costs:None
             | `Gist ->
               Workloads.run_overhead spec ~threads ~seed ~tracer_config:None
                 ~gist_costs:(Some Gist.default_costs))
           Workloads.specs)
    in
    {
      threads;
      snorlax_pct = per_spec `Snorlax;
      gist_pct = per_spec `Gist;
    }
  in
  List.map point threads
