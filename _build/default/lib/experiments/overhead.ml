module Stats = Snorlax_util.Stats

type row = { system : string; avg_pct : float; peak_pct : float }

let run ?(seeds = [ 3; 11; 27 ]) () =
  let measure spec =
    let pcts =
      List.map
        (fun seed ->
          100.0
          *. Workloads.run_overhead spec ~threads:2 ~seed
               ~tracer_config:(Some Pt.Config.default) ~gist_costs:None)
        seeds
    in
    {
      system = spec.Workloads.name;
      avg_pct = Stats.mean pcts;
      peak_pct = snd (Stats.min_max pcts);
    }
  in
  let rows = List.map measure Workloads.specs in
  (rows, Stats.mean (List.map (fun r -> r.avg_pct) rows))
