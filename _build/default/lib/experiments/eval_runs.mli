(** Shared, memoized end-to-end runs of the 11-bug evaluation set: each
    bug is reproduced once, ten successful traces are gathered at the
    failure location, and the full diagnosis pipeline runs — the inputs to
    §6.1 accuracy, Figure 7, Table 4 and the §6.3 latency comparison. *)

type entry = {
  bug : Corpus.Bug.t;
  collected : Corpus.Runner.collected;
  diagnosis : Snorlax_core.Diagnosis.result;
}

val get : Corpus.Bug.t -> entry
(** Memoized per bug id (the corpus builds deterministically, so one
    collection per process is enough). *)

val eval_entries : unit -> entry list
(** All 11 evaluation bugs, collected and diagnosed. *)

val accuracy_of : entry -> bool * float * bool
(** (root-cause match vs ground truth, ordering accuracy A_O, unique top
    F1). *)
