module Stats = Snorlax_util.Stats
module D = Snorlax_core.Diagnosis
module Tp = Snorlax_core.Trace_processing

type row = {
  bug_id : string;
  snorlax_failures : int;
  gist_recurrences : int;
  slice_size : int;
}

let of_entry (e : Eval_runs.entry) =
  let m = e.Eval_runs.collected.Corpus.Runner.built.Corpus.Bug.m in
  let first = List.hd e.Eval_runs.collected.Corpus.Runner.failing in
  let tp = D.process_failing m ~config:Pt.Config.default first in
  let executed = tp.Tp.executed in
  let points_to =
    Analysis.Pointsto.analyze m ~scope:(fun iid -> Tp.Iset.mem iid executed)
  in
  let failing_iid = Snorlax_core.Report.failing_anchor_iid first in
  let plan = Gist.plan m ~points_to ~failing_iid in
  let targets =
    e.Eval_runs.collected.Corpus.Runner.built.Corpus.Bug.ground_truth
  in
  {
    bug_id = e.Eval_runs.bug.Corpus.Bug.id;
    snorlax_failures = 1;
    gist_recurrences = Gist.recurrences_needed plan ~targets;
    slice_size = List.length plan.Gist.slice;
  }

let run () =
  let rows = List.map of_entry (Eval_runs.eval_entries ()) in
  let avg =
    Stats.mean (List.map (fun r -> float_of_int r.gist_recurrences) rows)
  in
  (rows, avg)

let chromium_scenario ~avg_recurrences ~tracked_bugs =
  avg_recurrences *. float_of_int tracked_bugs
