(** Figure 8: runtime overhead of always-on control-flow tracing on each
    benchmark's throughput workload (2 application threads, the paper's
    client), averaged over several seeds. *)

type row = {
  system : string;
  avg_pct : float;
  peak_pct : float;  (** worst seed *)
}

val run : ?seeds:int list -> unit -> row list * float
(** Per-system rows plus the cross-system average (the paper's 0.97%). *)
