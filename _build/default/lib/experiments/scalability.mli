(** Figure 9: Snorlax vs Gist runtime overhead as the application thread
    count doubles from 2 to 32, conflated (averaged) across the benchmark
    workloads as in the paper. *)

type point = {
  threads : int;
  snorlax_pct : float;
  gist_pct : float;
}

val run : ?threads:int list -> ?seed:int -> unit -> point list
