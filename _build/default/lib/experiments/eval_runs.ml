module Core = Snorlax_core

type entry = {
  bug : Corpus.Bug.t;
  collected : Corpus.Runner.collected;
  diagnosis : Core.Diagnosis.result;
}

let cache : (string, entry) Hashtbl.t = Hashtbl.create 16

let get bug =
  match Hashtbl.find_opt cache bug.Corpus.Bug.id with
  | Some e -> e
  | None ->
    let collected =
      match Corpus.Runner.collect bug () with
      | Ok c -> c
      | Error msg -> failwith ("Eval_runs.get: " ^ msg)
    in
    let diagnosis =
      Core.Diagnosis.diagnose collected.Corpus.Runner.built.Corpus.Bug.m
        ~config:Pt.Config.default ~failing:collected.Corpus.Runner.failing
        ~successful:collected.Corpus.Runner.successful
    in
    let e = { bug; collected; diagnosis } in
    Hashtbl.add cache bug.Corpus.Bug.id e;
    e

let eval_entries () = List.map get Corpus.Registry.eval_set

let accuracy_of e =
  let gt = e.collected.Corpus.Runner.built.Corpus.Bug.ground_truth in
  match e.diagnosis.Core.Diagnosis.top with
  | None -> (false, 0.0, false)
  | Some top ->
    ( Core.Accuracy.root_cause_match ~diagnosed:top.Core.Statistics.pattern
        ~ground_truth:gt,
      Core.Accuracy.ordering_accuracy ~diagnosed:top.Core.Statistics.pattern
        ~ground_truth:gt,
      e.diagnosis.Core.Diagnosis.unique_top )
