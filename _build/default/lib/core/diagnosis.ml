module Tp = Trace_processing

type stage_counts = {
  total_instrs : int;
  after_trace_processing : int;
  after_points_to : int;
  after_type_ranking : int;
  after_patterns : int;
  after_statistics : int;
}

type timings = { hybrid_analysis_s : float; pipeline_s : float }

type result = {
  scored : Statistics.scored list;
  top : Statistics.scored option;
  unique_top : bool;
  stage_counts : stage_counts;
  timings : timings;
  anchor_iid : int;
  executed_count : int;
  desynced : bool;
}

let build_def_table m =
  let tbl = Hashtbl.create 256 in
  Lir.Irmod.iter_instrs m (fun _ _ i ->
      match Lir.Instr.defined_reg i with
      | Some r -> Hashtbl.replace tbl r.Lir.Value.rid i
      | None -> ());
  tbl

(* RETracer-style provenance: follow the faulting pointer value back
   through geps/casts/arithmetic to the load that produced it — that load
   read the racing memory location. *)
let rec provenance defs (v : Lir.Value.t) =
  match v with
  | Lir.Value.Reg r -> (
    match Hashtbl.find_opt defs r.Lir.Value.rid with
    | None -> None
    | Some (def : Lir.Instr.t) -> (
      match def.Lir.Instr.kind with
      | Lir.Instr.Load _ -> Some def.Lir.Instr.iid
      | Lir.Instr.Gep { base; _ } -> provenance defs base
      | Lir.Instr.Index { base; _ } -> provenance defs base
      | Lir.Instr.Cast { src; _ } -> provenance defs src
      | Lir.Instr.Binop { lhs; _ } -> provenance defs lhs
      | _ -> None))
  | Lir.Value.Imm _ | Lir.Value.Global _ | Lir.Value.Null _
  | Lir.Value.Fn_ref _ ->
    None

(* Latest memory access the failing thread performed before the failure
   (the assert-style fallback). *)
let nearest_access m tp (r : Report.failing_report) ~reported =
  let best = ref None in
  Array.iter
    (fun (e : Tp.event) ->
      if
        e.Tp.tid = r.Report.failing_tid
        && Lir.Instr.is_memory_access (Lir.Irmod.instr_by_iid m e.Tp.iid)
      then
        match !best with
        | Some (b : Tp.event) when b.Tp.seq >= e.Tp.seq -> ()
        | Some _ | None -> best := Some e)
    tp.Tp.events;
  match !best with Some e -> e.Tp.iid | None -> reported

let resolve_anchor m tp (r : Report.failing_report) =
  let reported = Report.failing_anchor_iid r in
  match r.Report.info with
  | Report.Deadlock_info _ -> reported
  | Report.Crash_info { crash_kind; _ } -> (
    let i = Lir.Irmod.instr_by_iid m reported in
    match i.Lir.Instr.kind with
    | Lir.Instr.Load { ptr; _ } | Lir.Instr.Store { ptr; _ } -> (
      match crash_kind with
      | Report.Bad_pointer -> (
        match provenance (build_def_table m) ptr with
        | Some iid -> iid
        | None -> reported)
      | Report.Use_after_free | Report.Assertion -> reported)
    | _ -> nearest_access m tp r ~reported)

let tails_of m (r : Report.failing_report) =
  let pc_of iid = (Lir.Irmod.instr_by_iid m iid).Lir.Instr.pc in
  match r.Report.info with
  | Report.Crash_info { failing_iid; _ } ->
    [ (r.Report.failing_tid, pc_of failing_iid, r.Report.failure_time_ns) ]
  | Report.Deadlock_info { blocked } ->
    List.map
      (fun (tid, iid) -> (tid, pc_of iid, r.Report.failure_time_ns))
      blocked

let process_failing m ~config (r : Report.failing_report) =
  Tp.process m ~config ~fail_tails:(tails_of m r) r.Report.traces

let process_successful m ~config (s : Report.success_report) =
  (* The successful trace was snapped at the watchpoint; replay the
     triggering thread up to the watched pc so the events right before it
     (branch-free code) participate in the statistics, exactly as the
     failing thread is replayed to the crash pc. *)
  Tp.process m ~config
    ~fail_tails:
      [ (s.Report.trigger_tid, s.Report.trigger_pc, s.Report.trigger_time_ns) ]
    s.Report.s_traces

let diagnose m ~config ~failing ~successful =
  let first =
    match failing with
    | [] -> invalid_arg "Diagnosis.diagnose: no failing report"
    | r :: _ -> r
  in
  Lir.Irmod.layout m;
  let t0 = Sys.time () in
  (* Steps 2-3: trace processing for every execution. *)
  let failing_tps = List.map (process_failing m ~config) failing in
  let success_tps = List.map (process_successful m ~config) successful in
  let first_tp = List.hd failing_tps in
  let executed =
    List.fold_left
      (fun acc (tp : Tp.t) -> Tp.Iset.union acc tp.Tp.executed)
      Tp.Iset.empty (failing_tps @ success_tps)
  in
  (* Step 4: hybrid points-to restricted to executed code. *)
  let t_pta0 = Sys.time () in
  let points_to =
    Analysis.Pointsto.analyze m ~scope:(fun iid -> Tp.Iset.mem iid executed)
  in
  let hybrid_analysis_s = Sys.time () -. t_pta0 in
  (* Step 5: candidates ranked by type. *)
  let anchor_iid = resolve_anchor m first_tp first in
  let prefer_free =
    match first.Report.info with
    | Report.Crash_info { crash_kind = Report.Use_after_free; _ } -> true
    | Report.Crash_info _ | Report.Deadlock_info _ -> false
  in
  let candidates =
    Type_ranking.candidates m ~points_to ~executed ~anchor_iid ~prefer_free ()
  in
  (* Step 6: bug patterns from the first failing trace. *)
  let info =
    match first.Report.info with
    | Report.Crash_info { crash_kind; _ } ->
      Report.Crash_info { failing_iid = anchor_iid; crash_kind }
    | Report.Deadlock_info _ as d -> d
  in
  let patterns =
    Patterns.generate m ~points_to ~tp:first_tp ~info
      ~failing_tid:first.Report.failing_tid ~candidates
  in
  (* Step 7: statistical diagnosis over all runs. *)
  let scored =
    Statistics.score m ~points_to ~patterns ~failing:failing_tps
      ~successful:success_tps
  in
  let top = Statistics.top scored in
  let pipeline_s = Sys.time () -. t0 in
  let distinct_iids ps =
    List.sort_uniq compare (List.concat_map Patterns.ordered_iids ps)
  in
  let rank1 = Type_ranking.rank1_count candidates in
  let stage_counts =
    {
      total_instrs = Lir.Irmod.instr_count m;
      after_trace_processing = Tp.Iset.cardinal executed;
      after_points_to = List.length candidates;
      after_type_ranking = (if rank1 > 0 then rank1 else List.length candidates);
      after_patterns = List.length (distinct_iids patterns);
      after_statistics =
        (match top with
        | Some s -> List.length (Patterns.ordered_iids s.Statistics.pattern)
        | None -> 0);
    }
  in
  {
    scored;
    top;
    unique_top = Statistics.is_unique_top scored;
    stage_counts;
    timings = { hybrid_analysis_s; pipeline_s };
    anchor_iid;
    executed_count = Tp.Iset.cardinal executed;
    desynced =
      List.exists (fun (tp : Tp.t) -> tp.Tp.desynced_tids <> []) failing_tps;
  }
