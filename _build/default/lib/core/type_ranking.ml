type candidate = { iid : int; rank : int; access : [ `Read | `Write | `Lock ] }

let moved_type m (i : Lir.Instr.t) =
  let globals = Lir.Irmod.global_ty m in
  match i.Lir.Instr.kind with
  | Lir.Instr.Load { dst; _ } -> Some dst.Lir.Value.rty
  | Lir.Instr.Store { value; _ } -> Some (Lir.Value.ty_of ~globals value)
  | Lir.Instr.Call { callee; args; _ }
    when String.equal callee Lir.Intrinsics.mutex_lock
         || String.equal callee Lir.Intrinsics.mutex_unlock -> (
    match args with
    | a :: _ -> Some (Lir.Value.ty_of ~globals a)
    | [] -> None)
  | _ -> None

let access_kind (i : Lir.Instr.t) =
  match i.Lir.Instr.kind with
  | Lir.Instr.Load _ -> Some `Read
  | Lir.Instr.Store _ -> Some `Write
  | Lir.Instr.Call { callee; _ }
    when String.equal callee Lir.Intrinsics.mutex_lock ->
    Some `Lock
  | Lir.Instr.Call { callee; _ } when String.equal callee Lir.Intrinsics.free ->
    (* Freeing an object acts as the racing write in UAF bugs. *)
    Some `Write
  | _ -> None

let is_free_call (i : Lir.Instr.t) =
  match i.Lir.Instr.kind with
  | Lir.Instr.Call { callee; _ } -> String.equal callee Lir.Intrinsics.free
  | _ -> false

let candidates m ~points_to ~executed ~anchor_iid ?(prefer_free = false) () =
  let anchor = Lir.Irmod.instr_by_iid m anchor_iid in
  let anchor_objs = Analysis.Pointsto.accessed_objects points_to anchor in
  let anchor_ty = moved_type m anchor in
  let out = ref [] in
  Lir.Irmod.iter_instrs m (fun _ _ i ->
      if Trace_processing.Iset.mem i.Lir.Instr.iid executed then
        match access_kind i with
        | None -> ()
        | Some access ->
          let objs = Analysis.Pointsto.accessed_objects points_to i in
          if Analysis.Memobj.sets_overlap objs anchor_objs then begin
            let rank =
              if prefer_free && is_free_call i then 0
              else
                match anchor_ty, moved_type m i with
                | Some a, Some b when Lir.Ty.equal a b -> 1
                | Some _, Some _ -> 2
                | None, _ | _, None -> 2
            in
            out := { iid = i.Lir.Instr.iid; rank; access } :: !out
          end);
  List.stable_sort
    (fun a b ->
      match compare a.rank b.rank with 0 -> compare a.iid b.iid | c -> c)
    !out

let rank1_count cs = List.length (List.filter (fun c -> c.rank = 1) cs)
