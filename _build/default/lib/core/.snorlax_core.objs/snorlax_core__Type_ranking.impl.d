lib/core/type_ranking.ml: Analysis Lir List String Trace_processing
