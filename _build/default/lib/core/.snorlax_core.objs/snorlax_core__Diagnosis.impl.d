lib/core/diagnosis.ml: Analysis Array Hashtbl Lir List Patterns Report Statistics Sys Trace_processing Type_ranking
