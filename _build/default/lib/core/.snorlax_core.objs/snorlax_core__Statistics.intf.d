lib/core/statistics.mli: Analysis Lir Patterns Trace_processing
