lib/core/statistics.ml: List Patterns Snorlax_util
