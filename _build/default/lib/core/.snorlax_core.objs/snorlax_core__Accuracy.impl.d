lib/core/accuracy.ml: List Patterns Snorlax_util
