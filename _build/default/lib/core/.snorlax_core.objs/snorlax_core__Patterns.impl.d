lib/core/patterns.ml: Analysis Array Hashtbl Lir List Option Printf Report String Trace_processing Type_ranking
