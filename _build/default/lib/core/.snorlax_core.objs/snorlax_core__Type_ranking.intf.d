lib/core/type_ranking.mli: Analysis Lir Trace_processing
