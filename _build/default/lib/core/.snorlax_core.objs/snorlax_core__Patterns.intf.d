lib/core/patterns.mli: Analysis Lir Report Trace_processing Type_ranking
