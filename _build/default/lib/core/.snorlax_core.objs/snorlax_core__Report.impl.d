lib/core/report.ml: List Sim
