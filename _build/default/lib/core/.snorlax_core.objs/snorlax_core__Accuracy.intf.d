lib/core/accuracy.mli: Patterns
