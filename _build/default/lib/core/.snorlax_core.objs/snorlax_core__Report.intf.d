lib/core/report.mli: Sim
