lib/core/diagnosis.mli: Lir Pt Report Statistics Trace_processing
