lib/core/trace_processing.mli: Hashtbl Lir Pt Set
