lib/core/trace_processing.ml: Array Hashtbl Int List Option Pt Set
