(** Steps 4–5 of Lazy Diagnosis: from the hybrid points-to solution, the
    candidate target instructions (those that may touch the memory the
    failing instruction touched), ranked by type (Figure 4): instructions
    moving a value of exactly the failing instruction's type come first;
    type-mismatched candidates (e.g. behind an [i8*] cast) are kept at a
    lower rank, never discarded. *)

type candidate = {
  iid : int;
  rank : int;  (** 1 = exact type match, 2 = mismatch *)
  access : [ `Read | `Write | `Lock ];
}

val moved_type : Lir.Irmod.t -> Lir.Instr.t -> Lir.Ty.t option
(** The type of the value a load reads / a store writes, or the pointer
    type a lock call operates on; [None] for other instructions. *)

val candidates :
  Lir.Irmod.t ->
  points_to:Analysis.Pointsto.t ->
  executed:Trace_processing.Iset.t ->
  anchor_iid:int ->
  ?prefer_free:bool ->
  unit ->
  candidate list
(** Executed memory accesses (and lock calls) whose accessed objects
    intersect the anchor's, rank-1 first, excluding nothing (§4.3).  The
    anchor itself is included.  [prefer_free] ranks free calls highest
    (rank 0) — used for use-after-free crashes, where the release of the
    object is the semantically tied racing write. *)

val rank1_count : candidate list -> int
