(** §6.1's evaluation metrics: whether the diagnosed pattern matches a
    bug's ground truth, and the ordering accuracy A_O based on the
    normalized Kendall-tau distance. *)

val ordering_accuracy : diagnosed:Patterns.t -> ground_truth:int list -> float
(** A_O between the diagnosed pattern's instruction order and the manually
    established ground-truth order (100.0 = perfect). *)

val root_cause_match : diagnosed:Patterns.t -> ground_truth:int list -> bool
(** True when the diagnosed pattern involves exactly the ground-truth
    instructions (as a set). *)
