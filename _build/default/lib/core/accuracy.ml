module Stats = Snorlax_util.Stats

let ordering_accuracy ~diagnosed ~ground_truth =
  Stats.ordering_accuracy (Patterns.ordered_iids diagnosed) ground_truth

let root_cause_match ~diagnosed ~ground_truth =
  let a = List.sort_uniq compare (Patterns.ordered_iids diagnosed) in
  let b = List.sort_uniq compare ground_truth in
  a = b
