(** Step 6 of Lazy Diagnosis: combine the type-ranked candidate
    instructions with the partially ordered dynamic trace (partial flow
    sensitivity, Figure 5) into candidate concurrency-bug patterns
    (Figure 6): order violations (the remote access executes before the
    failing one), single-variable atomicity violations (a remote access
    lands between two local accesses — the four unserializable shapes of
    Lu et al.), and deadlock cycles (crossed lock acquisitions). *)

type order_shape = WR | RW | WW

type atomicity_shape = RWR | WWR | RWW | WRW

type t =
  | Order of { remote_iid : int; anchor_iid : int; shape : order_shape }
  | Atomicity of {
      local_iid : int;
      remote_iid : int;
      anchor_iid : int;
      shape : atomicity_shape;
      guard_writes : int list;
          (** other candidate writes to the location; the remote write only
              counts when none of these lands between it and the anchor —
              i.e. the anchor really observed the remote write's value *)
    }
  | Deadlock_cycle of { sides : (int * int) list }
      (** per thread in cycle order: (lock call it holds, lock call it
          attempts); hold_i aliases attempt_(i-1) *)

val id : t -> string
(** Stable identity for de-duplication and cross-run statistics. *)

val ordered_iids : t -> int list
(** The target instructions in diagnosed execution order, comparable to a
    bug's ground truth for the A_O metric. *)

val describe : Lir.Irmod.t -> t -> string

val generate :
  Lir.Irmod.t ->
  points_to:Analysis.Pointsto.t ->
  tp:Trace_processing.t ->
  info:Report.failure_info ->
  failing_tid:int ->
  candidates:Type_ranking.candidate list ->
  t list
(** Patterns consistent with the failing trace.  [anchor_iid] inside
    [info] must refer to a memory access (the caller resolves assert-style
    failures to their feeding access first). *)

val present_in :
  Lir.Irmod.t -> points_to:Analysis.Pointsto.t -> t -> Trace_processing.t -> bool
(** Whether an execution (failing or successful) exhibits the pattern. *)
