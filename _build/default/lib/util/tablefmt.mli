(** Plain-text table rendering for the experiment reports (Tables 1–4 and
    the figure data series are printed as aligned ASCII tables). *)

type align = Left | Right

type t

val create : headers:string list -> t
(** A table with one column per header, all right-aligned by default. *)

val set_align : t -> align list -> unit
(** Per-column alignment; the list must match the header count. *)

val add_row : t -> string list -> unit
(** Append a row.  Raises [Invalid_argument] when the cell count does not
    match the header count. *)

val add_separator : t -> unit
(** A horizontal rule between row groups. *)

val render : t -> string
(** The whole table, trailing newline included. *)

val print : t -> unit
(** [render] to stdout. *)

val fmt_us : float -> string
(** Microseconds with 1 decimal, e.g. ["154.3"]. *)

val fmt_pct : float -> string
(** Percentage with 2 decimals, e.g. ["0.97"]. *)

val fmt_x : float -> string
(** Factor with 1 decimal and an [x] suffix, e.g. ["4.6x"]. *)
