(** Deterministic pseudo-random number generation.

    The simulator, the scheduler and the workload generators must be
    reproducible from a single integer seed, so we implement SplitMix64
    rather than relying on [Random]'s unspecified cross-version stream. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator whose stream is a pure function of
    [seed]. *)

val copy : t -> t
(** Independent copy: advancing one does not affect the other. *)

val split : t -> t
(** [split t] derives a new generator from [t]'s stream, advancing [t].
    Streams of [t] and the result are statistically independent. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val in_range : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [\[lo, hi\]]. Requires [lo <= hi]. *)

val float : t -> bound:float -> float
(** Uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> p:float -> bool
(** [chance t ~p] is true with probability [p] (clamped to [\[0,1\]]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
