(** Fixed-capacity byte ring buffer.

    Models the in-memory trace buffer of a hardware tracer: writes never
    block, old bytes are silently overwritten once the buffer is full, and a
    snapshot returns the surviving bytes in write order.  The consumer (the
    trace decoder) must re-synchronize inside the snapshot, exactly as an
    Intel PT decoder re-synchronizes at a PSB packet after wrap-around. *)

type t

val create : capacity:int -> t
(** [create ~capacity] makes an empty buffer holding at most [capacity]
    bytes.  Requires [capacity > 0]. *)

val capacity : t -> int

val length : t -> int
(** Number of bytes currently retained (≤ capacity). *)

val total_written : t -> int
(** Bytes ever written, including overwritten ones. *)

val wrapped : t -> bool
(** True once at least one byte has been overwritten. *)

val write_byte : t -> int -> unit
(** Append one byte (low 8 bits used). *)

val write_bytes : t -> bytes -> unit
(** Append all bytes of the argument. *)

val snapshot : t -> bytes
(** Surviving bytes, oldest first.  Does not modify the buffer. *)

val clear : t -> unit
(** Drop all contents and reset counters. *)
