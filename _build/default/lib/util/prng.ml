type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next64 t in
  { state = seed }

let int t ~bound =
  assert (bound > 0);
  (* Mask to OCaml's 62 positive bits: Int64.to_int alone can yield a
     negative 63-bit value. *)
  let raw = Int64.to_int (next64 t) land max_int in
  raw mod bound

let in_range t ~lo ~hi =
  assert (lo <= hi);
  lo + int t ~bound:(hi - lo + 1)

let float t ~bound =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next64 t) 1L = 1L

let chance t ~p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t ~bound:1.0 < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t ~bound:(Array.length arr))
