type t = {
  data : bytes;
  cap : int;
  mutable head : int; (* next write position *)
  mutable filled : int; (* bytes retained, <= cap *)
  mutable written : int; (* bytes ever written *)
}

let create ~capacity =
  assert (capacity > 0);
  { data = Bytes.create capacity; cap = capacity; head = 0; filled = 0; written = 0 }

let capacity t = t.cap
let length t = t.filled
let total_written t = t.written
let wrapped t = t.written > t.cap

let write_byte t b =
  Bytes.unsafe_set t.data t.head (Char.unsafe_chr (b land 0xff));
  t.head <- (t.head + 1) mod t.cap;
  if t.filled < t.cap then t.filled <- t.filled + 1;
  t.written <- t.written + 1

let write_bytes t src =
  for i = 0 to Bytes.length src - 1 do
    write_byte t (Char.code (Bytes.get src i))
  done

let snapshot t =
  let out = Bytes.create t.filled in
  let start = (t.head - t.filled + t.cap * 2) mod t.cap in
  for i = 0 to t.filled - 1 do
    Bytes.set out i (Bytes.get t.data ((start + i) mod t.cap))
  done;
  out

let clear t =
  t.head <- 0;
  t.filled <- 0;
  t.written <- 0
