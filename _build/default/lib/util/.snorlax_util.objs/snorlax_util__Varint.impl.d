lib/util/varint.ml: Buffer Bytes Char
