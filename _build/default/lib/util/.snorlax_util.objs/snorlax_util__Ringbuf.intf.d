lib/util/ringbuf.mli:
