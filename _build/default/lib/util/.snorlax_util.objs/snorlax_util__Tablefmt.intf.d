lib/util/tablefmt.mli:
