lib/util/ringbuf.ml: Bytes Char
