lib/util/stats.mli:
