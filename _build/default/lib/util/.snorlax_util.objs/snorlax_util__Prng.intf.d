lib/util/prng.mli:
