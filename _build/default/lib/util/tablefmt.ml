type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  ncols : int;
  mutable aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ~headers =
  let ncols = List.length headers in
  { headers; ncols; aligns = List.map (fun _ -> Right) headers; rows = [] }

let set_align t aligns =
  if List.length aligns <> t.ncols then
    invalid_arg "Tablefmt.set_align: arity mismatch";
  t.aligns <- aligns

let add_row t cells =
  if List.length cells <> t.ncols then
    invalid_arg "Tablefmt.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let note = function
    | Cells cells ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
    | Separator -> ()
  in
  List.iter note rows;
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let buf = Buffer.create 256 in
  let emit_cells cells =
    let parts =
      List.mapi
        (fun i c -> pad (List.nth t.aligns i) widths.(i) c)
        cells
    in
    Buffer.add_string buf (String.concat "  " parts);
    Buffer.add_char buf '\n'
  in
  let rule () =
    let total =
      Array.fold_left ( + ) 0 widths + (2 * (t.ncols - 1))
    in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  rule ();
  let emit = function Cells c -> emit_cells c | Separator -> rule () in
  List.iter emit rows;
  Buffer.contents buf

let print t = print_string (render t)

let fmt_us v = Printf.sprintf "%.1f" v
let fmt_pct v = Printf.sprintf "%.2f" v
let fmt_x v = Printf.sprintf "%.1fx" v
