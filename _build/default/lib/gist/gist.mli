(** Re-implementation of Gist's algorithmic skeleton (Kasikci et al.,
    SOSP'15 "Failure Sketching"), the state-of-the-art baseline of §6.3.

    Gist computes a static backward slice from the failing instruction and
    then *iteratively* instruments widening windows of the slice across
    failure recurrences, refining the failure sketch each time.  Its
    instrumentation tracks the order of shared accesses with blocking
    synchronization, which is why its overhead grows with thread count
    (Figure 9), and its sampling-in-space means it monitors one bug per
    execution, multiplying diagnosis latency by the number of tracked bugs
    (§6.3). *)

type plan = {
  slice : int list;  (** backward slice from the failing instruction *)
  windows : int list list;
      (** slice iids by dependence depth: window k is instrumented from
          recurrence k+1 on *)
}

val plan : Lir.Irmod.t -> points_to:Analysis.Pointsto.t -> failing_iid:int -> plan

val recurrences_needed : plan -> targets:int list -> int
(** Failure recurrences before every target instruction (the root-cause
    events) is inside the instrumented region — Gist's diagnosis latency
    in units of failures (paper average: 3.7). *)

val monitored_after : plan -> recurrences:int -> int list
(** The instrumented instruction set once [recurrences] failures have been
    observed. *)

(** {2 Cost model for the instrumentation (Figure 9)} *)

type cost_model = {
  per_event_ns : float;  (** bookkeeping per monitored access *)
  contention_ns : float;
      (** extra cost per monitored access per *other* application thread:
          Gist orders accesses with blocking synchronization *)
}

val default_costs : cost_model

val instrument_hooks :
  monitored:(int -> bool) -> threads:int -> costs:cost_model -> Sim.Hooks.t
(** Simulation hooks charging each monitored memory access the
    synchronization cost. *)

(** {2 Latency comparison (§6.3)} *)

val latency_factor_vs_snorlax :
  recurrences:int -> tracked_bugs:int -> float
(** How many failing executions Gist needs for one diagnosis relative to
    Snorlax's single failure: [recurrences * tracked_bugs] (sampling in
    space monitors one bug per execution). *)
