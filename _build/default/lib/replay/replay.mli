(** Coarse record/replay of racing accesses — the §3.3 implication of the
    coarse interleaving hypothesis, built out: because the events leading
    to a concurrency bug are coarsely interleaved, recording just the
    *order* of the racing accesses (a handful of events, not a
    fine-grained schedule) is enough to steer a later execution back into
    the failing interleaving.

    [record] runs a program while logging the global order of dynamic
    instances of the given racy instructions (in practice, the
    instructions a Snorlax diagnosis names).  [replay] runs the program
    again — typically under a seed where the bug would not manifest — and
    enforces the recorded order by parking a thread that arrives at a racy
    access out of turn (the {!Sim.Hooks.t.gate} primitive). *)

type schedule = {
  order : (int * int) array;  (** (tid, iid) instances, in recorded order *)
}

val schedule_length : schedule -> int

type fidelity = {
  enforced : int;  (** racy accesses executed in the recorded order *)
  diverged : int;  (** racy accesses executed out of recorded order *)
  gave_up : bool;  (** a stalled thread had to be released *)
}

val record :
  ?seed:int ->
  Lir.Irmod.t ->
  entry:string ->
  racy_iids:int list ->
  Sim.Interp.run_result * schedule

val replay :
  ?seed:int ->
  ?max_stalls:int ->
  Lir.Irmod.t ->
  entry:string ->
  racy_iids:int list ->
  schedule ->
  Sim.Interp.run_result * fidelity
(** [max_stalls] (default 2000) bounds how long a thread may be parked
    waiting for its turn before the enforcer gives up on that schedule
    entry (e.g. when the run's data-dependent paths diverge). *)

val racy_iids_of_pattern : Snorlax_core.Patterns.t -> int list
(** The instructions a diagnosed pattern names — the natural recording
    set. *)
