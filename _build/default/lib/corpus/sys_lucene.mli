(** Model of Apache Lucene: segment readers and the merge scheduler.
    Two corpus bugs (hypothesis study only). *)

val bugs : Bug.t list
