module B = Lir.Builder
module Prng = Snorlax_util.Prng

let checkpoint b =
  let always = B.icmp b Lir.Instr.Eq (Lir.Value.i64 0) (Lir.Value.i64 0) in
  B.if_ b always ~then_:(fun () -> ()) ~else_:(fun () -> ())

let pause b ~ns =
  B.work b ~ns;
  checkpoint b

let io_pause b ~ns =
  B.io_delay b ~ns;
  checkpoint b

(* Three separate untyped reads model a serializer walking the state
   word by word (re-reading deliberately, as volatile debug dumps do). *)
let probe_word b ptr =
  let cell = B.cast b ~name:"rawview" ptr (Lir.Ty.Ptr Lir.Ty.I64) in
  let w0 = B.load b ~name:"raw0" cell in
  let w1 = B.load b ~name:"raw1" cell in
  let w2 = B.load b ~name:"raw2" cell in
  let x = B.binop b Lir.Instr.Xor w0 w1 in
  let x = B.binop b Lir.Instr.Xor x w2 in
  B.call_void b Lir.Intrinsics.print_i64 [ x ]

let probe_global b gname = probe_word b (Lir.Value.Global gname)

let mutex_struct m =
  match Lir.Irmod.struct_fields m "Mutex" with
  | _ -> Lir.Ty.Struct "Mutex"
  | exception Not_found ->
    Lir.Irmod.declare_struct m "Mutex" [ Lir.Ty.I64 ]

(* Cold code: plausible library internals that reference their own structs
   and each other.  Never called from any entry point, so trace-processing
   scope restriction eliminates all of it. *)
let add_cold_code m ~seed ~functions =
  let prng = Prng.create ~seed in
  let prefix = Printf.sprintf "cold%d" seed in
  let struct_name i = Printf.sprintf "%s_rec%d" prefix i in
  let nstructs = max 2 (functions / 8) in
  for i = 0 to nstructs - 1 do
    ignore
      (Lir.Irmod.declare_struct m (struct_name i)
         [ Lir.Ty.I64; Lir.Ty.Ptr Lir.Ty.I64; Lir.Ty.Ptr (Lir.Ty.Struct "Mutex") ])
  done;
  let fn_name i = Printf.sprintf "%s_fn%d" prefix i in
  for i = 0 to functions - 1 do
    let sname = struct_name (Prng.int prng ~bound:nstructs) in
    let callee =
      (* Only call already-defined cold functions to keep the callgraph a
         DAG; the verifier requires callees to exist. *)
      if i > 0 then Some (fn_name (Prng.int prng ~bound:i)) else None
    in
    let body b =
      let obj = B.malloc b ~name:"rec" (Lir.Ty.Struct sname) in
      let counter = B.gep b ~name:"count" obj 0 in
      let buf = B.gep b ~name:"buf" obj 1 in
      B.store b ~value:(B.param b 0) ~ptr:counter;
      let spill = B.alloca b ~name:"spill" Lir.Ty.I64 in
      B.store b ~value:(Lir.Value.i64 0) ~ptr:spill;
      B.for_ b ~from:0 ~below:(Lir.Value.i64 4) (fun idx ->
          let v = B.load b ~name:"count" counter in
          let v' = B.add b v idx in
          B.store b ~value:v' ~ptr:spill;
          let cell = B.cast b spill (Lir.Ty.Ptr Lir.Ty.I64) in
          B.store b ~value:cell ~ptr:buf);
      let again = B.load b ~name:"again" counter in
      let deep = B.icmp b Lir.Instr.Sgt again (Lir.Value.i64 100) in
      B.if_ b deep
        ~then_:(fun () ->
          match callee with
          | Some f ->
            ignore (B.call b ~ret:Lir.Ty.I64 f [ again ])
          | None -> ())
        ~else_:(fun () -> ());
      B.call_void b Lir.Intrinsics.free
        [ B.cast b obj (Lir.Ty.Ptr Lir.Ty.I8) ];
      B.ret b again
    in
    B.define m (fn_name i) ~params:[ ("n", Lir.Ty.I64) ] ~ret:Lir.Ty.I64 body
  done
