let deadlock_latches () =
  Scenario.two_lock_deadlock
    {
      Scenario.system = "derby";
      lock1 = "container_lock";
      lock2 = "page_latch";
      counter1 = "rows_fetched";
      counter2 = "pages_pinned";
      thread_a = "row_scanner";
      thread_b = "page_splitter";
      iters_a = 7;
      iters_b = 5;
      gap_a_ns = 640_000;
      gap_b_ns = 1_050_000;
      hold_a_ns = 682_000;
      hold_b_ns = 594_000;
      b_one_in = 3;
      cold_seed = 901;
      cold_functions = 70;
    }

let order_context_close () =
  Scenario.teardown_order
    {
      Scenario.system = "derby";
      struct_name = "ConnContext";
      global_name = "lcc";
      worker_name = "statement_executor";
      teardown_name = "connection_closer";
      retire = `Free;
      items = 10;
      item_gap_ns = 360_000;
      cleanup_slow_ns = 1_150_000;
      cleanup_fast_ns = 90_000;
      grace_ns = 560_000;
      cold_seed = 902;
      cold_functions = 70;
    }

let order_plan_invalidate () =
  Scenario.teardown_order
    {
      Scenario.system = "derby";
      struct_name = "StmtPlan";
      global_name = "prepared_plan";
      worker_name = "plan_executor";
      teardown_name = "ddl_invalidator";
      retire = `Null;
      items = 12;
      item_gap_ns = 230_000;
      cleanup_slow_ns = 870_000;
      cleanup_fast_ns = 60_000;
      grace_ns = 410_000;
      cold_seed = 903;
      cold_functions = 70;
    }

let atomicity_bufpool () =
  Scenario.check_reuse
    {
      Scenario.system = "derby";
      struct_name = "BufSlot";
      global_name = "buffer_pool_head";
      mutator_name = "checkpoint_writer";
      checker_name = "page_reader";
      rotations = 9;
      rotate_gap_ns = 1_300_000;
      swap_gap_ns = 350_000;
      poll_ns = 560_000;
      long_ns = 430_000;
      short_ns = 30_000;
      long_one_in = 4;
      cold_seed = 904;
      cold_functions = 70;
    }

let mk id tracker kind description delta build =
  {
    Bug.id;
    system = "derby";
    tracker_id = tracker;
    kind;
    description;
    java = true;
    expected_delta_us = delta;
    build;
    entry = "main";
  }

let bugs =
  [
    mk "derby-1" "2861" Bug.Deadlock
      "row scan nests container lock then page latch; page split nests \
       them the other way"
      300.0 deadlock_latches;
    mk "derby-2" "3786" Bug.Order_violation
      "connection close frees the language context while a statement \
       still executes against it"
      500.0 order_context_close;
    mk "derby-3" "N/A" Bug.Order_violation
      "DDL invalidation nulls the prepared plan under a running executor"
      350.0 order_plan_invalidate;
    mk "derby-4" "N/A" Bug.Atomicity_violation
      "page reader checks then re-reads the buffer-pool slot while the \
       checkpoint writer recycles it"
      560.0 atomicity_bufpool;
  ]
