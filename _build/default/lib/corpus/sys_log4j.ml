let deadlock_appender () =
  Scenario.two_lock_deadlock
    {
      Scenario.system = "log4j";
      lock1 = "hierarchy_lock";
      lock2 = "appender_lock";
      counter1 = "events_logged";
      counter2 = "appenders_flushed";
      thread_a = "logging_caller";
      thread_b = "config_reloader";
      iters_a = 10;
      iters_b = 6;
      gap_a_ns = 260_000;
      gap_b_ns = 480_000;
      hold_a_ns = 242_000;
      hold_b_ns = 209_000;
      b_one_in = 3;
      cold_seed = 1201;
      cold_functions = 35;
    }

let order_remove_appender () =
  Scenario.teardown_order
    {
      Scenario.system = "log4j";
      struct_name = "Appender";
      global_name = "console_appender";
      worker_name = "async_logger";
      teardown_name = "appender_remover";
      retire = `Null;
      items = 14;
      item_gap_ns = 160_000;
      cleanup_slow_ns = 690_000;
      cleanup_fast_ns = 45_000;
      grace_ns = 310_000;
      cold_seed = 1202;
      cold_functions = 35;
    }

let atomicity_level () =
  Scenario.check_reuse
    {
      Scenario.system = "log4j";
      struct_name = "Level";
      global_name = "category_level";
      mutator_name = "level_setter";
      checker_name = "is_enabled_check";
      rotations = 12;
      rotate_gap_ns = 390_000;
      swap_gap_ns = 137_500;
      poll_ns = 180_000;
      long_ns = 130_000;
      short_ns = 11_000;
      long_one_in = 5;
      cold_seed = 1203;
      cold_functions = 35;
    }

let mk id tracker kind description delta build =
  {
    Bug.id;
    system = "log4j";
    tracker_id = tracker;
    kind;
    description;
    java = true;
    expected_delta_us = delta;
    build;
    entry = "main";
  }

let bugs =
  [
    mk "log4j-1" "509" Bug.Deadlock
      "logging nests hierarchy then appender locks; config reload nests \
       them the other way"
      100.0 deadlock_appender;
    mk "log4j-2" "N/A" Bug.Order_violation
      "removeAppender nulls the appender while the async logger still \
       calls through it"
      250.0 order_remove_appender;
    mk "log4j-3" "N/A" Bug.Atomicity_violation
      "isEnabledFor checks then re-reads the category level while \
       setLevel swaps it"
      130.0 atomicity_level;
  ]
