let build_lock_order_deadlock () =
  Scenario.two_lock_deadlock
    {
      Scenario.system = "memcached";
      lock1 = "cache_lock";
      lock2 = "slabs_lock";
      counter1 = "stored_items";
      counter2 = "slab_pages";
      thread_a = "worker_store";
      thread_b = "slab_rebalancer";
      iters_a = 9;
      iters_b = 6;
      gap_a_ns = 220_000;
      gap_b_ns = 390_000;
      hold_a_ns = 110_000;
      hold_b_ns = 90_000;
      b_one_in = 4;
      cold_seed = 501;
      cold_functions = 30;
    }

let build_hash_expand_order () =
  Scenario.teardown_order
    {
      Scenario.system = "memcached";
      struct_name = "HashTable";
      global_name = "primary_hashtable";
      worker_name = "worker_get";
      teardown_name = "hash_expander";
      retire = `Null;
      items = 12;
      item_gap_ns = 170_000;
      cleanup_slow_ns = 700_000;
      cleanup_fast_ns = 50_000;
      grace_ns = 330_000;
      cold_seed = 502;
      cold_functions = 30;
    }

let build_item_evict_atomicity () =
  Scenario.check_reuse
    {
      Scenario.system = "memcached";
      struct_name = "Item";
      global_name = "hot_item";
      mutator_name = "lru_maintainer";
      checker_name = "worker_touch";
      rotations = 10;
      rotate_gap_ns = 560_000;
      swap_gap_ns = 175_000;
      poll_ns = 240_000;
      long_ns = 170_000;
      short_ns = 13_000;
      long_one_in = 5;
      cold_seed = 503;
      cold_functions = 30;
    }

let mk id tracker kind description delta build =
  {
    Bug.id;
    system = "memcached";
    tracker_id = tracker;
    kind;
    description;
    java = false;
    expected_delta_us = delta;
    build;
    entry = "main";
  }

let bugs =
  [
    mk "memcached-1" "N/A" Bug.Deadlock
      "store path nests cache_lock then slabs_lock; the rebalancer nests \
       them the other way"
      90.0 build_lock_order_deadlock;
    mk "memcached-2" "127" Bug.Order_violation
      "hash expansion retires the primary table while a get still walks \
       it"
      200.0 build_hash_expand_order;
    mk "memcached-3" "N/A" Bug.Atomicity_violation
      "worker checks then touches a hot item while the LRU maintainer \
       evicts it in between"
      170.0 build_item_evict_atomicity;
  ]
