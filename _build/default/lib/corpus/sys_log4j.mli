(** Model of Apache Log4j: the logger hierarchy, appender list and
    category levels.  Three corpus bugs (hypothesis study only). *)

val bugs : Bug.t list
