(** Model of memcached (~9 KLOC): worker threads over a hash table and a
    slab allocator, with an LRU maintainer and online hash expansion.
    Three corpus bugs. *)

val bugs : Bug.t list
