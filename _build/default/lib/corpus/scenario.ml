module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty

type check_reuse = {
  system : string;
  struct_name : string;
  global_name : string;
  mutator_name : string;
  checker_name : string;
  rotations : int;
  rotate_gap_ns : int;
  swap_gap_ns : int;
  poll_ns : int;
  long_ns : int;
  short_ns : int;
  long_one_in : int;
  cold_seed : int;
  cold_functions : int;
}

let check_reuse c =
  let m = Lir.Irmod.create c.system in
  ignore (Dsl.mutex_struct m);
  ignore (Lir.Irmod.declare_struct m c.struct_name [ T.I64; T.I64 ]);
  let ptr_ty = T.Ptr (T.Struct c.struct_name) in
  Lir.Irmod.declare_global m c.global_name ptr_ty;
  Lir.Irmod.declare_global m "mutator_done" T.I64;
  let gt_check = ref (-1) in
  let gt_swap = ref (-1) in
  let gt_reuse = ref (-1) in
  B.define m c.mutator_name ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 c.rotations) (fun _ ->
          Dsl.io_pause b ~ns:c.rotate_gap_ns;
          B.store b ~value:(V.Null ptr_ty) ~ptr:(V.Global c.global_name);
          gt_swap := B.last_iid b;
          Dsl.checkpoint b;
          Dsl.pause b ~ns:c.swap_gap_ns;
          let fresh = B.malloc b ~name:"fresh" (T.Struct c.struct_name) in
          B.store b ~value:(V.i64 0) ~ptr:(B.gep b fresh 0);
          B.store b ~value:fresh ~ptr:(V.Global c.global_name);
          (* Trace-log the slot through a generic view. *)
          Dsl.probe_global b c.global_name);
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "mutator_done");
      B.ret_void b);
  B.define m c.checker_name ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.while_ b
        ~cond:(fun () ->
          let s = B.load b ~name:"s" (V.Global "mutator_done") in
          B.icmp b Lir.Instr.Eq s (V.i64 0))
        ~body:(fun () ->
          Dsl.io_pause b ~ns:c.poll_ns;
          let p = B.load b ~name:"p" (V.Global c.global_name) in
          gt_check := B.last_iid b;
          let ok = B.icmp b Lir.Instr.Ne p (V.Null ptr_ty) in
          B.if_ b ok
            ~then_:(fun () ->
              let long =
                B.icmp b Lir.Instr.Eq (B.rand b ~bound:c.long_one_in) (V.i64 0)
              in
              B.if_ b long
                ~then_:(fun () -> Dsl.pause b ~ns:c.long_ns)
                ~else_:(fun () -> Dsl.pause b ~ns:c.short_ns);
              let p2 = B.load b ~name:"p2" (V.Global c.global_name) in
              gt_reuse := B.last_iid b;
              let field = B.gep b ~name:"field" p2 0 in
              let v = B.load b ~name:"v" field in
              B.store b ~value:(B.add b v (V.i64 1)) ~ptr:field)
            ~else_:(fun () -> ()));
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let first = B.malloc b ~name:"first" (T.Struct c.struct_name) in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b first 0);
      B.store b ~value:first ~ptr:(V.Global c.global_name);
      let t1 = B.spawn b c.checker_name (V.i64 0) in
      let t2 = B.spawn b c.mutator_name (V.i64 0) in
      B.join b t2;
      B.join b t1;
      B.ret_void b);
  Dsl.add_cold_code m ~seed:c.cold_seed ~functions:c.cold_functions;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_check; !gt_swap; !gt_reuse ];
    delta_pairs = [ (!gt_check, !gt_swap); (!gt_swap, !gt_reuse) ];
  }

type publish_clear_use = {
  system : string;
  struct_name : string;
  global_name : string;
  worker_name : string;
  sweeper_name : string;
  iterations : int;
  work_gap_ns : int;
  sweep_gap_ns : int;
  sweep_one_in : int;
  long_ns : int;
  short_ns : int;
  long_one_in : int;
  cold_seed : int;
  cold_functions : int;
}

let publish_clear_use c =
  let m = Lir.Irmod.create c.system in
  ignore (Dsl.mutex_struct m);
  ignore (Lir.Irmod.declare_struct m c.struct_name [ T.I64; T.I64 ]);
  let ptr_ty = T.Ptr (T.Struct c.struct_name) in
  Lir.Irmod.declare_global m c.global_name ptr_ty;
  Lir.Irmod.declare_global m "worker_done" T.I64;
  let gt_publish = ref (-1) in
  let gt_clear = ref (-1) in
  let gt_use = ref (-1) in
  B.define m c.worker_name ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 c.iterations) (fun i ->
          Dsl.io_pause b ~ns:c.work_gap_ns;
          let obj = B.malloc b ~name:"obj" (T.Struct c.struct_name) in
          B.store b ~value:i ~ptr:(B.gep b obj 0);
          B.store b ~value:(V.i64 0) ~ptr:(B.gep b obj 1);
          B.store b ~value:obj ~ptr:(V.Global c.global_name);
          gt_publish := B.last_iid b;
          Dsl.checkpoint b;
          let long =
            B.icmp b Lir.Instr.Eq (B.rand b ~bound:c.long_one_in) (V.i64 0)
          in
          B.if_ b long
            ~then_:(fun () -> Dsl.pause b ~ns:c.long_ns)
            ~else_:(fun () -> Dsl.pause b ~ns:c.short_ns);
          let current = B.load b ~name:"current" (V.Global c.global_name) in
          gt_use := B.last_iid b;
          let field = B.gep b ~name:"field" current 1 in
          let v = B.load b ~name:"v" field in
          B.store b ~value:(B.add b v (V.i64 1)) ~ptr:field);
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "worker_done");
      B.ret_void b);
  B.define m c.sweeper_name ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.while_ b
        ~cond:(fun () ->
          let s = B.load b ~name:"s" (V.Global "worker_done") in
          B.icmp b Lir.Instr.Eq s (V.i64 0))
        ~body:(fun () ->
          Dsl.io_pause b ~ns:c.sweep_gap_ns;
          let sweep =
            B.icmp b Lir.Instr.Eq (B.rand b ~bound:c.sweep_one_in) (V.i64 0)
          in
          B.if_ b sweep
            ~then_:(fun () ->
              B.store b ~value:(V.Null ptr_ty) ~ptr:(V.Global c.global_name);
              gt_clear := B.last_iid b;
              Dsl.checkpoint b)
            ~else_:(fun () -> Dsl.probe_global b c.global_name));
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let first = B.malloc b ~name:"first" (T.Struct c.struct_name) in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b first 0);
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b first 1);
      B.store b ~value:first ~ptr:(V.Global c.global_name);
      let t1 = B.spawn b c.worker_name (V.i64 0) in
      let t2 = B.spawn b c.sweeper_name (V.i64 0) in
      B.join b t1;
      B.join b t2;
      B.ret_void b);
  Dsl.add_cold_code m ~seed:c.cold_seed ~functions:c.cold_functions;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_publish; !gt_clear; !gt_use ];
    delta_pairs = [ (!gt_publish, !gt_clear); (!gt_clear, !gt_use) ];
  }

type two_lock_deadlock = {
  system : string;
  lock1 : string;
  lock2 : string;
  counter1 : string;
  counter2 : string;
  thread_a : string;
  thread_b : string;
  iters_a : int;
  iters_b : int;
  gap_a_ns : int;
  gap_b_ns : int;
  hold_a_ns : int;
  hold_b_ns : int;
  b_one_in : int;
  cold_seed : int;
  cold_functions : int;
}

let two_lock_deadlock c =
  let m = Lir.Irmod.create c.system in
  ignore (Dsl.mutex_struct m);
  Lir.Irmod.declare_global m c.lock1 (T.Struct "Mutex");
  Lir.Irmod.declare_global m c.lock2 (T.Struct "Mutex");
  Lir.Irmod.declare_global m c.counter1 T.I64;
  Lir.Irmod.declare_global m c.counter2 T.I64;
  let gt = Array.make 4 (-1) in
  let bump b counter =
    let v = B.load b ~name:"v" (V.Global counter) in
    B.store b ~value:(B.add b v (V.i64 1)) ~ptr:(V.Global counter)
  in
  B.define m c.thread_a ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 c.iters_a) (fun _ ->
          Dsl.io_pause b ~ns:c.gap_a_ns;
          B.mutex_lock b (V.Global c.lock1);
          gt.(0) <- B.last_iid b;
          bump b c.counter1;
          Dsl.pause b ~ns:c.hold_a_ns;
          B.mutex_lock b (V.Global c.lock2);
          gt.(1) <- B.last_iid b;
          bump b c.counter2;
          B.mutex_unlock b (V.Global c.lock2);
          B.mutex_unlock b (V.Global c.lock1));
      B.ret_void b);
  B.define m c.thread_b ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 c.iters_b) (fun _ ->
          Dsl.io_pause b ~ns:c.gap_b_ns;
          (* Lock diagnostics read the mutex words through a raw view. *)
          Dsl.probe_global b c.lock1;
          Dsl.probe_global b c.lock2;
          let due = B.icmp b Lir.Instr.Eq (B.rand b ~bound:c.b_one_in) (V.i64 0) in
          B.if_ b due
            ~then_:(fun () ->
              (* BUG: the opposite nesting order from thread A. *)
              B.mutex_lock b (V.Global c.lock2);
              gt.(2) <- B.last_iid b;
              bump b c.counter2;
              Dsl.pause b ~ns:c.hold_b_ns;
              B.mutex_lock b (V.Global c.lock1);
              gt.(3) <- B.last_iid b;
              bump b c.counter1;
              B.mutex_unlock b (V.Global c.lock1);
              B.mutex_unlock b (V.Global c.lock2))
            ~else_:(fun () -> ()));
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global c.lock1 ];
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global c.lock2 ];
      let t1 = B.spawn b c.thread_a (V.i64 0) in
      let t2 = B.spawn b c.thread_b (V.i64 0) in
      B.join b t1;
      B.join b t2;
      B.ret_void b);
  Dsl.add_cold_code m ~seed:c.cold_seed ~functions:c.cold_functions;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ gt.(0); gt.(1); gt.(2); gt.(3) ];
    delta_pairs = [ (gt.(1), gt.(3)) ];
  }

type teardown_order = {
  system : string;
  struct_name : string;
  global_name : string;
  worker_name : string;
  teardown_name : string;
  retire : [ `Null | `Free ];
  items : int;
  item_gap_ns : int;
  cleanup_slow_ns : int;
  cleanup_fast_ns : int;
  grace_ns : int;
  cold_seed : int;
  cold_functions : int;
}

let teardown_order c =
  let m = Lir.Irmod.create c.system in
  ignore (Dsl.mutex_struct m);
  ignore (Lir.Irmod.declare_struct m c.struct_name [ T.I64; T.I64 ]);
  let ptr_ty = T.Ptr (T.Struct c.struct_name) in
  Lir.Irmod.declare_global m c.global_name ptr_ty;
  Lir.Irmod.declare_global m "work_done" T.I64;
  let gt_retire = ref (-1) in
  let gt_read = ref (-1) in
  B.define m c.worker_name ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let cached = B.load b ~name:"cached" (V.Global c.global_name) in
      B.for_ b ~from:0 ~below:(V.i64 c.items) (fun _ ->
          Dsl.io_pause b ~ns:c.item_gap_ns;
          let field = B.gep b ~name:"field" cached 1 in
          let v = B.load b ~name:"v" field in
          B.store b ~value:(B.add b v (V.i64 1)) ~ptr:field);
      (* Cleanup path: flush, then one final racy read through the shared
         pointer. *)
      let slow = B.icmp b Lir.Instr.Eq (B.rand b ~bound:2) (V.i64 0) in
      B.if_ b slow
        ~then_:(fun () -> Dsl.io_pause b ~ns:c.cleanup_slow_ns)
        ~else_:(fun () -> Dsl.io_pause b ~ns:c.cleanup_fast_ns);
      let p = B.load b ~name:"p" (V.Global c.global_name) in
      (match c.retire with
      | `Null -> gt_read := B.last_iid b
      | `Free -> ());
      let field0 = B.gep b ~name:"field0" p 0 in
      let v = B.load b ~name:"v0" field0 in
      (match c.retire with
      | `Free -> gt_read := B.last_iid b
      | `Null -> ());
      B.call_void b Lir.Intrinsics.print_i64 [ v ];
      B.ret_void b);
  B.define m c.teardown_name ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      (* Wait out the nominal workload, then retire the object after a
         fixed grace period — the missing join.  The retired pointer is
         first dumped through a generic view (state save). *)
      Dsl.io_pause b ~ns:(c.items * c.item_gap_ns);
      Dsl.pause b ~ns:c.grace_ns;
      Dsl.probe_global b c.global_name;
      (match c.retire with
      | `Null ->
        B.store b ~value:(V.Null ptr_ty) ~ptr:(V.Global c.global_name);
        gt_retire := B.last_iid b
      | `Free ->
        let old = B.load b ~name:"old" (V.Global c.global_name) in
        B.call_void b Lir.Intrinsics.free [ B.cast b old (T.Ptr T.I8) ];
        gt_retire := B.last_iid b);
      Dsl.checkpoint b;
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "work_done");
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let obj = B.malloc b ~name:"obj" (T.Struct c.struct_name) in
      B.store b ~value:(V.i64 7) ~ptr:(B.gep b obj 0);
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b obj 1);
      B.store b ~value:obj ~ptr:(V.Global c.global_name);
      let t1 = B.spawn b c.worker_name (V.i64 0) in
      let t2 = B.spawn b c.teardown_name (V.i64 0) in
      B.join b t1;
      B.join b t2;
      B.ret_void b);
  Dsl.add_cold_code m ~seed:c.cold_seed ~functions:c.cold_functions;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_retire; !gt_read ];
    delta_pairs = [ (!gt_retire, !gt_read) ];
  }
