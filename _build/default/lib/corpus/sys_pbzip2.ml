module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty

(* The shared scaffolding of the pbzip2 model: a producer (main) pushes
   [blocks] compressed-block descriptors through a FIFO; one consumer
   drains it.  Delay constants are in nanoseconds and set the coarse event
   spacing the hypothesis study measures. *)

let declare_queue m =
  let mutex = Dsl.mutex_struct m in
  ignore
    (Lir.Irmod.declare_struct m "Queue" [ T.I64; T.I64; mutex ]);
  Lir.Irmod.declare_global m "fifo" (T.Ptr (T.Struct "Queue"));
  Lir.Irmod.declare_global m "done_flag" T.I64;
  Lir.Irmod.declare_global m "consumed" T.I64

let field_head = 0
let field_tail = 1
let field_mut = 2

(* Consumer loop shared by the teardown bugs: caches the queue pointer,
   processes [blocks] items, then runs a cleanup path that re-reads the
   global queue pointer — the racy access. *)
let define_consumer m ~blocks ~poll_ns ~process_ns ~gt_read ~read_field =
  B.define m "consumer" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let q = B.load b ~name:"q" (V.Global "fifo") in
      let i = B.alloca b ~name:"seen" T.I64 in
      B.store b ~value:(V.i64 0) ~ptr:i;
      B.while_ b
        ~cond:(fun () ->
          let seen = B.load b ~name:"seen" i in
          B.icmp b Lir.Instr.Slt seen (V.i64 blocks))
        ~body:(fun () ->
          Dsl.io_pause b ~ns:poll_ns;
          let mut = B.gep b ~name:"mut" q field_mut in
          B.mutex_lock b mut;
          let head = B.load b ~name:"head" (B.gep b ~name:"headp" q field_head) in
          let seen = B.load b ~name:"seen" i in
          let avail = B.icmp b Lir.Instr.Sgt head seen in
          B.if_ b avail
            ~then_:(fun () ->
              let seen' = B.add b seen (V.i64 1) in
              B.store b ~value:seen' ~ptr:i;
              B.store b ~value:seen' ~ptr:(V.Global "consumed"))
            ~else_:(fun () -> ());
          B.mutex_unlock b mut;
          let seen2 = B.load b ~name:"seen" i in
          let progressed = B.icmp b Lir.Instr.Sgt seen2 seen in
          B.if_ b progressed
            ~then_:(fun () -> Dsl.pause b ~ns:process_ns)
            ~else_:(fun () -> ()));
      (* Cleanup/statistics path: flush the output file — fast when the OS
         cache absorbs it, slow when it hits the disk — then read the
         shared queue pointer one last time.  The slow path is what loses
         the race with main's teardown. *)
      let slow = B.icmp b Lir.Instr.Eq (B.rand b ~bound:2) (V.i64 0) in
      B.if_ b slow
        ~then_:(fun () -> Dsl.io_pause b ~ns:620_000)
        ~else_:(fun () -> Dsl.io_pause b ~ns:60_000);
      let f2 = B.load b ~name:"fifo2" (V.Global "fifo") in
      gt_read := B.last_iid b;
      let tailp = B.gep b ~name:"tailp" f2 read_field in
      let remaining = B.load b ~name:"remaining" tailp in
      B.call_void b Lir.Intrinsics.print_i64 [ remaining ];
      B.ret_void b)

let define_producer_main m ~blocks ~produce_ns ~teardown ~shutdown_ns =
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let q = B.malloc b ~name:"q" (T.Struct "Queue") in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b q field_head);
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b q field_tail);
      let mut = B.gep b ~name:"mut" q field_mut in
      B.call_void b Lir.Intrinsics.mutex_init [ mut ];
      B.store b ~value:q ~ptr:(V.Global "fifo");
      let tid = B.spawn b "consumer" (V.i64 0) in
      B.for_ b ~from:0 ~below:(V.i64 blocks) (fun _ ->
          Dsl.pause b ~ns:produce_ns;
          B.mutex_lock b mut;
          let headp = B.gep b ~name:"headp" q field_head in
          let h = B.load b ~name:"head" headp in
          B.store b ~value:(B.add b h (V.i64 1)) ~ptr:headp;
          B.mutex_unlock b mut);
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "done_flag");
      (* BUG: tears the queue down after a fixed grace period instead of
         joining the consumer first. *)
      Dsl.pause b ~ns:shutdown_ns;
      Dsl.probe_global b "fifo";
      teardown b q;
      Dsl.checkpoint b;
      B.join b tid;
      B.ret_void b)

(* pbzip2-1: WR order violation.  main nulls the global queue pointer; the
   consumer's cleanup re-read dereferences null. *)
let build_null_teardown () =
  let m = Lir.Irmod.create "pbzip2" in
  declare_queue m;
  let gt_read = ref (-1) in
  let gt_write = ref (-1) in
  define_consumer m ~blocks:10 ~poll_ns:120_000 ~process_ns:260_000 ~gt_read
    ~read_field:field_tail;
  define_producer_main m ~blocks:10 ~produce_ns:380_000
    ~shutdown_ns:800_000
    ~teardown:(fun b _q ->
      B.store b ~value:(V.Null (T.Ptr (T.Struct "Queue")))
        ~ptr:(V.Global "fifo");
      gt_write := B.last_iid b);
  Dsl.add_cold_code m ~seed:101 ~functions:40;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_write; !gt_read ];
    delta_pairs = [ (!gt_write, !gt_read) ];
  }

(* pbzip2-2: WR order violation, use-after-free flavour.  main frees the
   queue; the consumer's cleanup read of a queue field faults. *)
let build_free_teardown () =
  let m = Lir.Irmod.create "pbzip2" in
  declare_queue m;
  let gt_read = ref (-1) in
  let gt_write = ref (-1) in
  B.define m "queue_destroy" ~params:[ ("q", T.Ptr (T.Struct "Queue")) ]
    ~ret:T.Void (fun b ->
      let q = B.param b 0 in
      B.call_void b Lir.Intrinsics.free [ B.cast b q (T.Ptr T.I8) ];
      gt_write := B.last_iid b;
      B.ret_void b);
  (* The consumer re-reads @fifo (still the dangling pointer) and then
     loads a field through it: the field load is the crashing, racy
     access. *)
  let gt_field_read = ref (-1) in
  B.define m "consumer" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let q = B.load b ~name:"q" (V.Global "fifo") in
      let i = B.alloca b ~name:"seen" T.I64 in
      B.store b ~value:(V.i64 0) ~ptr:i;
      B.while_ b
        ~cond:(fun () ->
          let seen = B.load b ~name:"seen" i in
          B.icmp b Lir.Instr.Slt seen (V.i64 10))
        ~body:(fun () ->
          Dsl.io_pause b ~ns:120_000;
          let mut = B.gep b ~name:"mut" q field_mut in
          B.mutex_lock b mut;
          let head = B.load b ~name:"head" (B.gep b ~name:"headp" q field_head) in
          let seen = B.load b ~name:"seen" i in
          let avail = B.icmp b Lir.Instr.Sgt head seen in
          B.if_ b avail
            ~then_:(fun () ->
              let seen' = B.add b seen (V.i64 1) in
              B.store b ~value:seen' ~ptr:i;
              B.store b ~value:seen' ~ptr:(V.Global "consumed"))
            ~else_:(fun () -> ());
          B.mutex_unlock b mut;
          let seen2 = B.load b ~name:"seen" i in
          let progressed = B.icmp b Lir.Instr.Sgt seen2 seen in
          B.if_ b progressed
            ~then_:(fun () -> Dsl.pause b ~ns:260_000)
            ~else_:(fun () -> ()));
      let slow = B.icmp b Lir.Instr.Eq (B.rand b ~bound:2) (V.i64 0) in
      B.if_ b slow
        ~then_:(fun () -> Dsl.io_pause b ~ns:620_000)
        ~else_:(fun () -> Dsl.io_pause b ~ns:60_000);
      let f2 = B.load b ~name:"fifo2" (V.Global "fifo") in
      gt_read := B.last_iid b;
      let tailp = B.gep b ~name:"tailp" f2 field_tail in
      let remaining = B.load b ~name:"remaining" tailp in
      gt_field_read := B.last_iid b;
      B.call_void b Lir.Intrinsics.print_i64 [ remaining ];
      B.ret_void b);
  define_producer_main m ~blocks:10 ~produce_ns:380_000
    ~shutdown_ns:800_000
    ~teardown:(fun b q -> B.call_void b "queue_destroy" [ q ]);
  Dsl.add_cold_code m ~seed:102 ~functions:40;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_write; !gt_field_read ];
    delta_pairs = [ (!gt_write, !gt_field_read) ];
  }

(* pbzip2-3: RWR atomicity violation on the shared output-buffer pointer:
   the consumer checks it, formats (a long pause), then re-reads and
   dereferences; the writer swaps buffers in between, transiently nulling
   the pointer. *)
let build_outbuf_swap () =
  let m = Lir.Irmod.create "pbzip2" in
  ignore (Dsl.mutex_struct m);
  ignore (Lir.Irmod.declare_struct m "OutBuf" [ T.I64; T.I64 ]);
  Lir.Irmod.declare_global m "outbuf" (T.Ptr (T.Struct "OutBuf"));
  Lir.Irmod.declare_global m "stop" T.I64;
  let gt_check = ref (-1) in
  let gt_swap = ref (-1) in
  let gt_reuse = ref (-1) in
  (* Writer thread: every rotation, retire the buffer (null it), allocate
     a fresh one, publish it. *)
  B.define m "rotator" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 12) (fun _ ->
          Dsl.io_pause b ~ns:520_000;
          B.store b
            ~value:(V.Null (T.Ptr (T.Struct "OutBuf")))
            ~ptr:(V.Global "outbuf");
          gt_swap := B.last_iid b;
          Dsl.checkpoint b;
          Dsl.pause b ~ns:110_000;
          let fresh = B.malloc b ~name:"fresh" (T.Struct "OutBuf") in
          B.store b ~value:(V.i64 0) ~ptr:(B.gep b fresh 0);
          B.store b ~value:fresh ~ptr:(V.Global "outbuf"));
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "stop");
      B.ret_void b);
  B.define m "emitter" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.while_ b
        ~cond:(fun () ->
          let s = B.load b ~name:"stop" (V.Global "stop") in
          B.icmp b Lir.Instr.Eq s (V.i64 0))
        ~body:(fun () ->
          Dsl.io_pause b ~ns:310_000;
          let buf = B.load b ~name:"buf" (V.Global "outbuf") in
          gt_check := B.last_iid b;
          let ok = B.icmp b Lir.Instr.Ne buf (V.Null (T.Ptr (T.Struct "OutBuf"))) in
          B.if_ b ok
            ~then_:(fun () ->
              (* Formatting is usually quick; a large block takes long
                 enough for a rotation to land inside the unprotected
                 window. *)
              let big = B.icmp b Lir.Instr.Eq (B.rand b ~bound:6) (V.i64 0) in
              B.if_ b big
                ~then_:(fun () -> Dsl.pause b ~ns:170_000)
                ~else_:(fun () -> Dsl.pause b ~ns:15_000);
              let buf2 = B.load b ~name:"buf2" (V.Global "outbuf") in
              gt_reuse := B.last_iid b;
              let lenp = B.gep b ~name:"lenp" buf2 0 in
              let len = B.load b ~name:"len" lenp in
              B.store b ~value:(B.add b len (V.i64 1)) ~ptr:lenp)
            ~else_:(fun () -> ()));
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let first = B.malloc b ~name:"first" (T.Struct "OutBuf") in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b first 0);
      B.store b ~value:first ~ptr:(V.Global "outbuf");
      let t1 = B.spawn b "emitter" (V.i64 0) in
      let t2 = B.spawn b "rotator" (V.i64 0) in
      B.join b t2;
      B.join b t1;
      B.ret_void b);
  Dsl.add_cold_code m ~seed:103 ~functions:40;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_check; !gt_swap; !gt_reuse ];
    delta_pairs = [ (!gt_check, !gt_swap); (!gt_swap, !gt_reuse) ];
  }

let bugs =
  [
    {
      Bug.id = "pbzip2-1";
      system = "pbzip2";
      tracker_id = "N/A";
      kind = Bug.Order_violation;
      description =
        "main nulls the shared FIFO pointer during teardown while the \
         consumer's cleanup path still dereferences it";
      java = false;
      expected_delta_us = 200.0;
      build = build_null_teardown;
      entry = "main";
    };
    {
      Bug.id = "pbzip2-2";
      system = "pbzip2";
      tracker_id = "N/A";
      kind = Bug.Order_violation;
      description =
        "main frees the FIFO before the consumer finished; the cleanup \
         read hits freed memory";
      java = false;
      expected_delta_us = 200.0;
      build = build_free_teardown;
      entry = "main";
    };
    {
      Bug.id = "pbzip2-3";
      system = "pbzip2";
      tracker_id = "N/A";
      kind = Bug.Atomicity_violation;
      description =
        "check-then-reuse of the shared output buffer races with the \
         rotator's unprotected swap window";
      java = false;
      expected_delta_us = 150.0;
      build = build_outbuf_swap;
      entry = "main";
    };
  ]
