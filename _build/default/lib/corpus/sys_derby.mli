(** Model of Apache Derby (pure-Java RDBMS): page latches, a buffer pool,
    connection contexts and statement plans.  Four corpus bugs
    (hypothesis study only). *)

val bugs : Bug.t list
