module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty

(* aget-1 (order violation, assert-detected): the SIGINT save path
   detaches the segment table while a worker is mid-download; the worker's
   own sanity assertion fires on the nulled table. *)
let build_sigint_save_order () =
  let m = Lir.Irmod.create "aget" in
  ignore (Dsl.mutex_struct m);
  (* Segments = { offset; written } *)
  ignore (Lir.Irmod.declare_struct m "Segments" [ T.I64; T.I64 ]);
  Lir.Irmod.declare_global m "segments" (T.Ptr (T.Struct "Segments"));
  let gt_detach = ref (-1) in
  let gt_read = ref (-1) in
  B.define m "segment_worker" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let segs = B.load b ~name:"segs" (V.Global "segments") in
      B.for_ b ~from:0 ~below:(V.i64 13) (fun _ ->
          Dsl.io_pause b ~ns:210_000;
          let written = B.gep b ~name:"written" segs 1 in
          let w = B.load b ~name:"w" written in
          B.store b ~value:(B.add b w (V.i64 8192)) ~ptr:written);
      (* Final bookkeeping; a stalling server delays the last recv. *)
      let stall = B.icmp b Lir.Instr.Eq (B.rand b ~bound:2) (V.i64 0) in
      B.if_ b stall
        ~then_:(fun () -> Dsl.io_pause b ~ns:820_000)
        ~else_:(fun () -> Dsl.io_pause b ~ns:60_000);
      let table = B.load b ~name:"table" (V.Global "segments") in
      gt_read := B.last_iid b;
      let ok =
        B.icmp b Lir.Instr.Ne table (V.Null (T.Ptr (T.Struct "Segments")))
      in
      B.assert_true b ok;
      let off = B.gep b ~name:"off" table 0 in
      let o = B.load b ~name:"o" off in
      B.call_void b Lir.Intrinsics.print_i64 [ o ];
      B.ret_void b);
  B.define m "sigint_handler" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      (* The user interrupts near the end of the download. *)
      Dsl.io_pause b ~ns:2_730_000;
      Dsl.pause b ~ns:340_000;
      (* BUG: detaches the table for the resume save without stopping the
         workers first.  The resume file gets the raw pointer word. *)
      Dsl.probe_global b "segments";
      B.store b ~value:(V.Null (T.Ptr (T.Struct "Segments")))
        ~ptr:(V.Global "segments");
      gt_detach := B.last_iid b;
      Dsl.checkpoint b;
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let segs = B.malloc b ~name:"segs" (T.Struct "Segments") in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b segs 0);
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b segs 1);
      B.store b ~value:segs ~ptr:(V.Global "segments");
      let t1 = B.spawn b "segment_worker" (V.i64 0) in
      let t2 = B.spawn b "sigint_handler" (V.i64 0) in
      B.join b t1;
      B.join b t2;
      B.ret_void b);
  Dsl.add_cold_code m ~seed:701 ~functions:12;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_detach; !gt_read ];
    delta_pairs = [ (!gt_detach, !gt_read) ];
  }

let build_progress_atomicity () =
  Scenario.publish_clear_use
    {
      Scenario.system = "aget";
      struct_name = "Progress";
      global_name = "progress_slot";
      worker_name = "segment_worker";
      sweeper_name = "progress_reporter";
      iterations = 10;
      work_gap_ns = 390_000;
      sweep_gap_ns = 470_000;
      sweep_one_in = 3;
      long_ns = 200_000;
      short_ns = 15_000;
      long_one_in = 5;
      cold_seed = 702;
      cold_functions = 12;
    }

let mk id kind description delta build =
  {
    Bug.id;
    system = "aget";
    tracker_id = "N/A";
    kind;
    description;
    java = false;
    expected_delta_us = delta;
    build;
    entry = "main";
  }

let bugs =
  [
    mk "aget-1" Bug.Order_violation
      "SIGINT resume-save detaches the segment table while a worker's \
       final bookkeeping still reads it (assertion-detected)"
      350.0 build_sigint_save_order;
    mk "aget-2" Bug.Atomicity_violation
      "worker publishes its progress record and re-reads it; the \
       reporter clears the slot in between"
      200.0 build_progress_atomicity;
  ]
