(** Model of the JDK runtime libraries: class loading, [java.util.Timer],
    logging, and reference caches.  Six corpus bugs (hypothesis study
    only, like all Java systems — §3.2). *)

val bugs : Bug.t list
