(** Parameterized bug scenarios shared across system models.

    Real concurrency bugs fall into a small number of interleaving shapes
    (the paper's Figure 1); what differs between systems is the domain
    structure around them.  These generators implement the shapes once;
    each system instantiates them with its own module, struct and thread
    names, workload rhythm and window sizes, and adds bespoke bugs where
    the shape does not fit. *)

(** Configuration for {!check_reuse} (single-variable RWR atomicity): a
    checker validates a shared pointer, spends a data-dependent while in
    the middle, then re-reads and dereferences; a mutator periodically
    swaps the pointee with a transient null window. *)
type check_reuse = {
  system : string;
  struct_name : string;
  global_name : string;
  mutator_name : string;
  checker_name : string;
  rotations : int;
  rotate_gap_ns : int;  (** mutator period *)
  swap_gap_ns : int;  (** width of the null window *)
  poll_ns : int;  (** checker period *)
  long_ns : int;  (** vulnerable middle section, slow path *)
  short_ns : int;  (** vulnerable middle section, fast path *)
  long_one_in : int;  (** slow path probability = 1/long_one_in *)
  cold_seed : int;
  cold_functions : int;
}

val check_reuse : check_reuse -> Bug.built

(** Configuration for {!publish_clear_use} (WWR atomicity): a worker
    publishes an object into a shared slot, works for a data-dependent
    while, then reads the slot back and dereferences; a sweeper
    occasionally clears the slot without checking ownership. *)
type publish_clear_use = {
  system : string;
  struct_name : string;
  global_name : string;
  worker_name : string;
  sweeper_name : string;
  iterations : int;
  work_gap_ns : int;  (** worker period *)
  sweep_gap_ns : int;  (** sweeper period *)
  sweep_one_in : int;
  long_ns : int;
  short_ns : int;
  long_one_in : int;
  cold_seed : int;
  cold_functions : int;
}

val publish_clear_use : publish_clear_use -> Bug.built

(** Configuration for {!two_lock_deadlock}: thread A nests lock1 before
    lock2 on every iteration; thread B occasionally nests them the other
    way.  Both locks are module globals named by the caller. *)
type two_lock_deadlock = {
  system : string;
  lock1 : string;
  lock2 : string;
  counter1 : string;  (** shared counter guarded by the pair, thread A *)
  counter2 : string;  (** shared counter touched by thread B *)
  thread_a : string;
  thread_b : string;
  iters_a : int;
  iters_b : int;
  gap_a_ns : int;
  gap_b_ns : int;
  hold_a_ns : int;  (** time A holds lock1 before wanting lock2 *)
  hold_b_ns : int;
  b_one_in : int;  (** probability B runs its nested section *)
  cold_seed : int;
  cold_functions : int;
}

val two_lock_deadlock : two_lock_deadlock -> Bug.built

(** Configuration for {!teardown_order} (WR order violation): a worker
    loops over items then runs a cleanup path that re-reads a shared
    pointer; a teardown thread retires the pointee after a fixed grace
    period instead of joining.  [`Null] stores null (crash = null deref);
    [`Free] frees the object (crash = use-after-free). *)
type teardown_order = {
  system : string;
  struct_name : string;
  global_name : string;
  worker_name : string;
  teardown_name : string;
  retire : [ `Null | `Free ];
  items : int;
  item_gap_ns : int;
  cleanup_slow_ns : int;
  cleanup_fast_ns : int;
  grace_ns : int;  (** teardown delay after the workload completes *)
  cold_seed : int;
  cold_functions : int;
}

val teardown_order : teardown_order -> Bug.built
