(** Model of MySQL (~650 KLOC): connection handler threads over a table
    cache, a binlog, a query cache and a replication applier.  Nine corpus
    bugs: three lock-order deadlocks, three order violations, three
    single-variable atomicity violations, loosely patterned after the
    MySQL tickets used in the paper's study set. *)

val bugs : Bug.t list
