module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty

let build_session_torrent_deadlock () =
  Scenario.two_lock_deadlock
    {
      Scenario.system = "transmission";
      lock1 = "session_lock";
      lock2 = "torrent_lock";
      counter1 = "session_peers";
      counter2 = "torrent_bytes";
      thread_a = "peer_io";
      thread_b = "torrent_stopper";
      iters_a = 8;
      iters_b = 5;
      gap_a_ns = 480_000;
      gap_b_ns = 820_000;
      hold_a_ns = 506_000;
      hold_b_ns = 418_000;
      b_one_in = 3;
      cold_seed = 601;
      cold_functions = 50;
    }

(* transmission-2 (order violation): tr_torrentFree nulls the torrent
   while the tracker announce timer still reads its stats — the crash
   that plagued shutdown for years. *)
let build_torrent_close_order () =
  let m = Lir.Irmod.create "transmission" in
  ignore (Dsl.mutex_struct m);
  (* Torrent = { downloaded; uploaded } *)
  ignore (Lir.Irmod.declare_struct m "Torrent" [ T.I64; T.I64 ]);
  Lir.Irmod.declare_global m "torrent" (T.Ptr (T.Struct "Torrent"));
  let gt_write = ref (-1) in
  let gt_read = ref (-1) in
  B.define m "announce_timer" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 6) (fun _ ->
          (* Tracker interval, with DNS/TCP jitter on the last announce. *)
          Dsl.io_pause b ~ns:800_000;
          let tor = B.load b ~name:"tor" (V.Global "torrent") in
          gt_read := B.last_iid b;
          let down = B.gep b ~name:"down" tor 0 in
          let d = B.load b ~name:"d" down in
          B.call_void b Lir.Intrinsics.print_i64 [ d ]);
      B.ret_void b);
  B.define m "downloader" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let tor = B.load b ~name:"tor" (V.Global "torrent") in
      B.for_ b ~from:0 ~below:(V.i64 16) (fun _ ->
          Dsl.io_pause b ~ns:260_000;
          let down = B.gep b ~name:"down" tor 0 in
          let d = B.load b ~name:"d" down in
          B.store b ~value:(B.add b d (V.i64 16384)) ~ptr:down);
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let tor = B.malloc b ~name:"tor" (T.Struct "Torrent") in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b tor 0);
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b tor 1);
      B.store b ~value:tor ~ptr:(V.Global "torrent");
      let t1 = B.spawn b "announce_timer" (V.i64 0) in
      let t2 = B.spawn b "downloader" (V.i64 0) in
      B.join b t2;
      (* BUG: the user hits "remove torrent" as the download completes;
         the timer thread may still have one announce in flight. *)
      let quick_user = B.icmp b Lir.Instr.Eq (B.rand b ~bound:2) (V.i64 0) in
      B.if_ b quick_user
        ~then_:(fun () -> Dsl.pause b ~ns:180_000)
        ~else_:(fun () -> Dsl.pause b ~ns:1_300_000);
      Dsl.probe_global b "torrent";
      B.store b ~value:(V.Null (T.Ptr (T.Struct "Torrent"))) ~ptr:(V.Global "torrent");
      gt_write := B.last_iid b;
      Dsl.checkpoint b;
      B.join b t1;
      B.ret_void b);
  Dsl.add_cold_code m ~seed:602 ~functions:50;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_write; !gt_read ];
    delta_pairs = [ (!gt_write, !gt_read) ];
  }

let build_bandwidth_uaf () =
  Scenario.teardown_order
    {
      Scenario.system = "transmission";
      struct_name = "Bandwidth";
      global_name = "session_bandwidth";
      worker_name = "peer_reader";
      teardown_name = "session_close";
      retire = `Free;
      items = 11;
      item_gap_ns = 300_000;
      cleanup_slow_ns = 1_000_000;
      cleanup_fast_ns = 80_000;
      grace_ns = 520_000;
      cold_seed = 603;
      cold_functions = 50;
    }

let build_peer_msgs_atomicity () =
  Scenario.check_reuse
    {
      Scenario.system = "transmission";
      struct_name = "PeerMsgs";
      global_name = "active_peer";
      mutator_name = "peer_reconnector";
      checker_name = "request_scheduler";
      rotations = 9;
      rotate_gap_ns = 680_000;
      swap_gap_ns = 212_500;
      poll_ns = 310_000;
      long_ns = 220_000;
      short_ns = 18_000;
      long_one_in = 4;
      cold_seed = 604;
      cold_functions = 50;
    }

let mk id tracker kind description delta build =
  {
    Bug.id;
    system = "transmission";
    tracker_id = tracker;
    kind;
    description;
    java = false;
    expected_delta_us = delta;
    build;
    entry = "main";
  }

let bugs =
  [
    mk "transmission-1" "1818" Bug.Deadlock
      "peer I/O nests session_lock then torrent_lock; the stopper nests \
       them the other way"
      220.0 build_session_torrent_deadlock;
    mk "transmission-2" "N/A" Bug.Order_violation
      "remove-torrent nulls the handle while the announce timer still \
       reads its stats"
      600.0 build_torrent_close_order;
    mk "transmission-3" "N/A" Bug.Order_violation
      "session close frees the bandwidth accounting while a peer reader \
       still charges bytes to it"
      400.0 build_bandwidth_uaf;
    mk "transmission-4" "N/A" Bug.Atomicity_violation
      "request scheduler checks then reuses the peer-msgs pointer while \
       the reconnector swaps it"
      250.0 build_peer_msgs_atomicity;
  ]
