let deadlock_metaclass () =
  Scenario.two_lock_deadlock
    {
      Scenario.system = "groovy";
      lock1 = "registry_lock";
      lock2 = "class_init_lock";
      counter1 = "metaclasses";
      counter2 = "initialized_classes";
      thread_a = "script_runner";
      thread_b = "class_initializer";
      iters_a = 8;
      iters_b = 6;
      gap_a_ns = 420_000;
      gap_b_ns = 680_000;
      hold_a_ns = 440_000;
      hold_b_ns = 352_000;
      b_one_in = 3;
      cold_seed = 1001;
      cold_functions = 45;
    }

let order_metaclass_swap () =
  Scenario.teardown_order
    {
      Scenario.system = "groovy";
      struct_name = "MetaClass";
      global_name = "instance_metaclass";
      worker_name = "invoker";
      teardown_name = "metaclass_replacer";
      retire = `Null;
      items = 13;
      item_gap_ns = 190_000;
      cleanup_slow_ns = 760_000;
      cleanup_fast_ns = 55_000;
      grace_ns = 360_000;
      cold_seed = 1002;
      cold_functions = 45;
    }

let atomicity_callsite () =
  Scenario.check_reuse
    {
      Scenario.system = "groovy";
      struct_name = "CallSite";
      global_name = "cached_callsite";
      mutator_name = "cache_invalidator";
      checker_name = "dispatcher";
      rotations = 11;
      rotate_gap_ns = 470_000;
      swap_gap_ns = 162_500;
      poll_ns = 210_000;
      long_ns = 150_000;
      short_ns = 12_000;
      long_one_in = 5;
      cold_seed = 1003;
      cold_functions = 45;
    }

let mk id kind description delta build =
  {
    Bug.id;
    system = "groovy";
    tracker_id = "N/A";
    kind;
    description;
    java = true;
    expected_delta_us = delta;
    build;
    entry = "main";
  }

let bugs =
  [
    mk "groovy-1" Bug.Deadlock
      "script dispatch nests registry then class-init locks; static \
       initialization nests them the other way"
      190.0 deadlock_metaclass;
    mk "groovy-2" Bug.Order_violation
      "metaclass replacement nulls the per-instance metaclass under a \
       running invoker"
      300.0 order_metaclass_swap;
    mk "groovy-3" Bug.Atomicity_violation
      "dispatcher checks then reuses the call-site cache entry while the \
       invalidator swaps it"
      150.0 atomicity_callsite;
  ]
