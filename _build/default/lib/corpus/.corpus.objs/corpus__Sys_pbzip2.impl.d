lib/corpus/sys_pbzip2.ml: Bug Dsl Lir
