lib/corpus/scenario.ml: Array Bug Dsl Lir
