lib/corpus/runner.mli: Bug Lir Pt Sim Snorlax_core
