lib/corpus/sys_dbcp.ml: Bug Scenario
