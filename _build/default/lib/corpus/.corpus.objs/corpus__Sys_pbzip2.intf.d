lib/corpus/sys_pbzip2.mli: Bug
