lib/corpus/dsl.mli: Lir
