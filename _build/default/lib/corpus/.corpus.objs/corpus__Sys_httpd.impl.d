lib/corpus/sys_httpd.ml: Array Bug Dsl Lir List Scenario
