lib/corpus/sys_groovy.mli: Bug
