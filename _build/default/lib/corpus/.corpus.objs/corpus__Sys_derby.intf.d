lib/corpus/sys_derby.mli: Bug
