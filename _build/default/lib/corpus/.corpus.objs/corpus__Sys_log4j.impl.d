lib/corpus/sys_log4j.ml: Bug Scenario
