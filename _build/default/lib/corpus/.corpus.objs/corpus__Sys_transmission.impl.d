lib/corpus/sys_transmission.ml: Bug Dsl Lir Scenario
