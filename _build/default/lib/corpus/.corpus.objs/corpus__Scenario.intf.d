lib/corpus/scenario.mli: Bug
