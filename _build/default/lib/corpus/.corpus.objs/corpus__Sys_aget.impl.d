lib/corpus/sys_aget.ml: Bug Dsl Lir Scenario
