lib/corpus/registry.ml: Bug List String Sys_aget Sys_dbcp Sys_derby Sys_groovy Sys_httpd Sys_jdk Sys_log4j Sys_lucene Sys_memcached Sys_mysql Sys_pbzip2 Sys_sqlite Sys_transmission
