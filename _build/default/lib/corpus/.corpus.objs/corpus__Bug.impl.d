lib/corpus/bug.ml: Lir
