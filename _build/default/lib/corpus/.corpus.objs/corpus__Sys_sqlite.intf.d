lib/corpus/sys_sqlite.mli: Bug
