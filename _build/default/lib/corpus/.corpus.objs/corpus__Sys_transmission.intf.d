lib/corpus/sys_transmission.mli: Bug
