lib/corpus/sys_httpd.mli: Bug
