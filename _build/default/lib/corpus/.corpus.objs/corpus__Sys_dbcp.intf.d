lib/corpus/sys_dbcp.mli: Bug
