lib/corpus/registry.mli: Bug
