lib/corpus/sys_mysql.mli: Bug
