lib/corpus/sys_memcached.ml: Bug Scenario
