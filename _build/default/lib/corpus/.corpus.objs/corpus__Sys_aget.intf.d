lib/corpus/sys_aget.mli: Bug
