lib/corpus/sys_lucene.mli: Bug
