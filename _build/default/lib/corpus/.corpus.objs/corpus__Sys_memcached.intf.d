lib/corpus/sys_memcached.mli: Bug
