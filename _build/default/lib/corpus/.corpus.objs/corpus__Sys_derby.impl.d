lib/corpus/sys_derby.ml: Bug Scenario
