lib/corpus/runner.ml: Bug Lir List Option Printf Pt Sim Snorlax_core
