lib/corpus/dsl.ml: Lir Printf Snorlax_util
