lib/corpus/sys_sqlite.ml: Bug Dsl Lir
