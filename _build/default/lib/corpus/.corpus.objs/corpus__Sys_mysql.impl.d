lib/corpus/sys_mysql.ml: Array Bug Dsl Lir List
