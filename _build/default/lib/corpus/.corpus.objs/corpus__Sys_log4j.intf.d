lib/corpus/sys_log4j.mli: Bug
