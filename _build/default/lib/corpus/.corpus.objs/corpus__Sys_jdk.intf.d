lib/corpus/sys_jdk.mli: Bug
