lib/corpus/sys_groovy.ml: Bug Scenario
