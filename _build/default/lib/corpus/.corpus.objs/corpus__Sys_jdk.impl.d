lib/corpus/sys_jdk.ml: Bug Scenario
