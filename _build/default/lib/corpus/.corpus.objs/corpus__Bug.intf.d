lib/corpus/bug.mli: Lir
