lib/corpus/sys_lucene.ml: Bug Scenario
