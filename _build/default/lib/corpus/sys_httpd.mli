(** Model of Apache httpd (~223 KLOC): a worker-MPM server with a
    listener, worker threads, a scoreboard, a shared configuration
    pointer, and graceful-restart machinery.  Seven corpus bugs. *)

val bugs : Bug.t list
