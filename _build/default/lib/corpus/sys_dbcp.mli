(** Model of Apache Commons DBCP (JDBC connection pool): the pool, its
    evictor thread, and the connection factory.  Four corpus bugs
    (hypothesis study only). *)

val bugs : Bug.t list
