(** A corpus entry: one reproducible concurrency bug in one modelled
    system, with machine-checkable ground truth.

    The corpus mirrors the paper's study set (§3.2): 54 bugs across 13
    systems — the seven C/C++ systems (also used for the Snorlax
    end-to-end evaluation, §6) and six Java systems (hypothesis study
    only).  Each modelled bug reproduces the *pattern* and the
    microsecond-scale event spacing of its real counterpart. *)

type kind = Deadlock | Order_violation | Atomicity_violation

type built = {
  m : Lir.Irmod.t;
  ground_truth : int list;
      (** target-instruction iids in failure order (Fig. 1), e.g.
          [\[store; load\]] for a WR order violation *)
  delta_pairs : (int * int) list;
      (** consecutive ground-truth event pairs whose elapsed time the
          hypothesis study measures: ΔT for deadlocks/order violations,
          ΔT1/ΔT2 for atomicity violations *)
}

type t = {
  id : string;  (** e.g. ["pbzip2-1"] *)
  system : string;
  tracker_id : string;  (** upstream bug id, or ["N/A"] as in the tables *)
  kind : kind;
  description : string;
  java : bool;  (** hypothesis-study-only system (JDK, Derby, ...) *)
  expected_delta_us : float;
      (** the ΔT scale the model is tuned for, for documentation *)
  build : unit -> built;  (** fresh module each call *)
  entry : string;
}

val kind_name : kind -> string
