module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty

(* Server scaffolding shared by the MySQL bugs: a table cache protected by
   LOCK_open, a binlog protected by LOCK_log, and per-connection handler
   threads that run queries against them. *)

let declare_server m =
  let mutex = Dsl.mutex_struct m in
  (* Table = { rows; version; lock } *)
  ignore (Lir.Irmod.declare_struct m "Table" [ T.I64; T.I64; mutex ]);
  (* Binlog = { pos; lock } *)
  ignore (Lir.Irmod.declare_struct m "Binlog" [ T.I64; mutex ]);
  Lir.Irmod.declare_global m "table" (T.Ptr (T.Struct "Table"));
  Lir.Irmod.declare_global m "binlog" (T.Ptr (T.Struct "Binlog"));
  Lir.Irmod.declare_global m "lock_open" (T.Struct "Mutex");
  Lir.Irmod.declare_global m "queries_served" T.I64

let tbl_rows = 0
let tbl_version = 1
let tbl_lock = 2
let log_pos = 0
let log_lock = 1

let define_server_main m ~threads =
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let table = B.malloc b ~name:"table" (T.Struct "Table") in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b table tbl_rows);
      B.store b ~value:(V.i64 1) ~ptr:(B.gep b table tbl_version);
      B.call_void b Lir.Intrinsics.mutex_init [ B.gep b table tbl_lock ];
      B.store b ~value:table ~ptr:(V.Global "table");
      let binlog = B.malloc b ~name:"binlog" (T.Struct "Binlog") in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b binlog log_pos);
      B.call_void b Lir.Intrinsics.mutex_init [ B.gep b binlog log_lock ];
      B.store b ~value:binlog ~ptr:(V.Global "binlog");
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global "lock_open" ];
      let tids =
        List.map (fun (fn, arg) -> B.spawn b fn (V.i64 arg)) threads
      in
      List.iter (fun t -> B.join b t) tids;
      B.ret_void b)

(* mysql-1 (deadlock): a writer journals under the table lock then takes
   LOCK_log, while the binlog rotation thread holds LOCK_log and asks for
   the table lock to stamp the table version. *)
let build_binlog_deadlock () =
  let m = Lir.Irmod.create "mysql" in
  declare_server m;
  let gt = Array.make 4 (-1) in
  B.define m "writer_conn" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let table = B.load b ~name:"table" (V.Global "table") in
      let binlog = B.load b ~name:"binlog" (V.Global "binlog") in
      let tlock = B.gep b ~name:"tlock" table tbl_lock in
      let llock = B.gep b ~name:"llock" binlog log_lock in
      B.for_ b ~from:0 ~below:(V.i64 9) (fun _ ->
          Dsl.io_pause b ~ns:340_000;
          B.mutex_lock b tlock;
          gt.(0) <- B.last_iid b;
          let rows = B.gep b ~name:"rows" table tbl_rows in
          let r = B.load b ~name:"r" rows in
          B.store b ~value:(B.add b r (V.i64 1)) ~ptr:rows;
          (* Row change must reach the binlog atomically with the commit. *)
          Dsl.pause b ~ns:360_000;
          B.mutex_lock b llock;
          gt.(1) <- B.last_iid b;
          let pos = B.gep b ~name:"pos" binlog log_pos in
          let p = B.load b ~name:"p" pos in
          B.store b ~value:(B.add b p (V.i64 1)) ~ptr:pos;
          B.mutex_unlock b llock;
          B.mutex_unlock b tlock);
      B.ret_void b);
  B.define m "rotate_thread" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let table = B.load b ~name:"table" (V.Global "table") in
      let binlog = B.load b ~name:"binlog" (V.Global "binlog") in
      let tlock = B.gep b ~name:"tlock" table tbl_lock in
      let llock = B.gep b ~name:"llock" binlog log_lock in
      B.for_ b ~from:0 ~below:(V.i64 6) (fun _ ->
          Dsl.io_pause b ~ns:520_000;
          Dsl.probe_word b tlock;
          Dsl.probe_word b llock;
          let due = B.icmp b Lir.Instr.Eq (B.rand b ~bound:3) (V.i64 0) in
          B.if_ b due
            ~then_:(fun () ->
              B.mutex_lock b llock;
              gt.(2) <- B.last_iid b;
              (* BUG: stamps the table version while holding LOCK_log. *)
              Dsl.pause b ~ns:300_000;
              B.mutex_lock b tlock;
              gt.(3) <- B.last_iid b;
              let ver = B.gep b ~name:"ver" table tbl_version in
              let v = B.load b ~name:"v" ver in
              B.store b ~value:(B.add b v (V.i64 1)) ~ptr:ver;
              B.mutex_unlock b tlock;
              B.mutex_unlock b llock)
            ~else_:(fun () -> ()));
      B.ret_void b);
  define_server_main m ~threads:[ ("writer_conn", 0); ("rotate_thread", 0) ];
  Dsl.add_cold_code m ~seed:301 ~functions:120;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ gt.(0); gt.(1); gt.(2); gt.(3) ];
    delta_pairs = [ (gt.(1), gt.(3)) ];
  }

(* mysql-2 (deadlock): DROP TABLE holds LOCK_open and needs the table
   lock; a handler holds the table lock and re-enters the cache under
   LOCK_open. *)
let build_lock_open_deadlock () =
  let m = Lir.Irmod.create "mysql" in
  declare_server m;
  let gt = Array.make 4 (-1) in
  B.define m "handler_conn" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let table = B.load b ~name:"table" (V.Global "table") in
      let tlock = B.gep b ~name:"tlock" table tbl_lock in
      B.for_ b ~from:0 ~below:(V.i64 8) (fun _ ->
          Dsl.io_pause b ~ns:410_000;
          B.mutex_lock b tlock;
          gt.(0) <- B.last_iid b;
          let rows = B.gep b ~name:"rows" table tbl_rows in
          let r = B.load b ~name:"r" rows in
          B.store b ~value:(B.add b r (V.i64 1)) ~ptr:rows;
          (* Re-open a second table: goes back through the cache. *)
          Dsl.pause b ~ns:220_000;
          B.mutex_lock b (V.Global "lock_open");
          gt.(1) <- B.last_iid b;
          let served = B.load b ~name:"served" (V.Global "queries_served") in
          B.store b ~value:(B.add b served (V.i64 1))
            ~ptr:(V.Global "queries_served");
          B.mutex_unlock b (V.Global "lock_open");
          B.mutex_unlock b tlock);
      B.ret_void b);
  B.define m "drop_table" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let table = B.load b ~name:"table" (V.Global "table") in
      let tlock = B.gep b ~name:"tlock" table tbl_lock in
      B.for_ b ~from:0 ~below:(V.i64 5) (fun _ ->
          Dsl.io_pause b ~ns:640_000;
          let ddl = B.icmp b Lir.Instr.Eq (B.rand b ~bound:3) (V.i64 0) in
          B.if_ b ddl
            ~then_:(fun () ->
              B.mutex_lock b (V.Global "lock_open");
              gt.(2) <- B.last_iid b;
              Dsl.pause b ~ns:380_000;
              B.mutex_lock b tlock;
              gt.(3) <- B.last_iid b;
              let ver = B.gep b ~name:"ver" table tbl_version in
              let v = B.load b ~name:"v" ver in
              B.store b ~value:(B.add b v (V.i64 1)) ~ptr:ver;
              B.mutex_unlock b tlock;
              B.mutex_unlock b (V.Global "lock_open"))
            ~else_:(fun () -> ()));
      B.ret_void b);
  define_server_main m ~threads:[ ("handler_conn", 0); ("drop_table", 0) ];
  Dsl.add_cold_code m ~seed:302 ~functions:120;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ gt.(0); gt.(1); gt.(2); gt.(3) ];
    delta_pairs = [ (gt.(1), gt.(3)) ];
  }

(* mysql-3 (deadlock): the purge thread acquires the binlog lock then the
   table lock, racing a checkpointing handler that nests them the other
   way around; three-way pressure comes from a stats thread that briefly
   holds the table lock. *)
let build_purge_deadlock () =
  let m = Lir.Irmod.create "mysql" in
  declare_server m;
  let gt = Array.make 4 (-1) in
  B.define m "checkpoint_conn" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let table = B.load b ~name:"table" (V.Global "table") in
      let binlog = B.load b ~name:"binlog" (V.Global "binlog") in
      let tlock = B.gep b ~name:"tlock" table tbl_lock in
      let llock = B.gep b ~name:"llock" binlog log_lock in
      B.for_ b ~from:0 ~below:(V.i64 7) (fun _ ->
          Dsl.io_pause b ~ns:940_000;
          B.mutex_lock b tlock;
          gt.(0) <- B.last_iid b;
          Dsl.pause b ~ns:420_000;
          B.mutex_lock b llock;
          gt.(1) <- B.last_iid b;
          let pos = B.gep b ~name:"pos" binlog log_pos in
          let p = B.load b ~name:"p" pos in
          B.store b ~value:(B.add b p (V.i64 1)) ~ptr:pos;
          B.mutex_unlock b llock;
          B.mutex_unlock b tlock);
      B.ret_void b);
  B.define m "purge_thread" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let table = B.load b ~name:"table" (V.Global "table") in
      let binlog = B.load b ~name:"binlog" (V.Global "binlog") in
      let tlock = B.gep b ~name:"tlock" table tbl_lock in
      let llock = B.gep b ~name:"llock" binlog log_lock in
      B.for_ b ~from:0 ~below:(V.i64 5) (fun _ ->
          Dsl.io_pause b ~ns:1_300_000;
          let due = B.icmp b Lir.Instr.Eq (B.rand b ~bound:4) (V.i64 0) in
          B.if_ b due
            ~then_:(fun () ->
              B.mutex_lock b llock;
              gt.(2) <- B.last_iid b;
              Dsl.pause b ~ns:380_000;
              B.mutex_lock b tlock;
              gt.(3) <- B.last_iid b;
              let rows = B.gep b ~name:"rows" table tbl_rows in
              let r = B.load b ~name:"r" rows in
              B.store b ~value:r ~ptr:(V.Global "queries_served");
              B.mutex_unlock b tlock;
              B.mutex_unlock b llock)
            ~else_:(fun () -> ()));
      B.ret_void b);
  B.define m "stats_thread" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let table = B.load b ~name:"table" (V.Global "table") in
      let tlock = B.gep b ~name:"tlock" table tbl_lock in
      B.for_ b ~from:0 ~below:(V.i64 10) (fun _ ->
          Dsl.io_pause b ~ns:700_000;
          B.mutex_lock b tlock;
          let rows = B.gep b ~name:"rows" table tbl_rows in
          let r = B.load b ~name:"r" rows in
          B.call_void b Lir.Intrinsics.print_i64 [ r ];
          B.mutex_unlock b tlock);
      B.ret_void b);
  define_server_main m
    ~threads:[ ("checkpoint_conn", 0); ("purge_thread", 0); ("stats_thread", 0) ];
  Dsl.add_cold_code m ~seed:303 ~functions:120;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ gt.(0); gt.(1); gt.(2); gt.(3) ];
    delta_pairs = [ (gt.(1), gt.(3)) ];
  }

(* mysql-4 (order violation): KILL CONNECTION nulls the THD's network
   buffer while the handler drains the final result set through it. *)
let build_kill_net_order () =
  let m = Lir.Irmod.create "mysql" in
  ignore (Dsl.mutex_struct m);
  (* Net = { written; fd } *)
  ignore (Lir.Irmod.declare_struct m "Net" [ T.I64; T.I64 ]);
  Lir.Irmod.declare_global m "thd_net" (T.Ptr (T.Struct "Net"));
  Lir.Irmod.declare_global m "kill_flag" T.I64;
  let gt_write = ref (-1) in
  let gt_read = ref (-1) in
  B.define m "result_writer" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 12) (fun _ ->
          Dsl.io_pause b ~ns:280_000;
          let net = B.load b ~name:"net" (V.Global "thd_net") in
          let written = B.gep b ~name:"written" net 0 in
          let w = B.load b ~name:"w" written in
          B.store b ~value:(B.add b w (V.i64 64)) ~ptr:written);
      (* Final flush: a slow client keeps the socket busy long enough for
         the kill path to win. *)
      let slow_client = B.icmp b Lir.Instr.Eq (B.rand b ~bound:2) (V.i64 0) in
      B.if_ b slow_client
        ~then_:(fun () -> Dsl.io_pause b ~ns:1_400_000)
        ~else_:(fun () -> Dsl.io_pause b ~ns:100_000);
      let net2 = B.load b ~name:"net2" (V.Global "thd_net") in
      gt_read := B.last_iid b;
      let fd = B.gep b ~name:"fd" net2 1 in
      let f = B.load b ~name:"f" fd in
      B.call_void b Lir.Intrinsics.print_i64 [ f ];
      B.ret_void b);
  B.define m "kill_conn" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      (* The admin issues KILL once the connection looks stuck. *)
      Dsl.io_pause b ~ns:3_360_000;
      Dsl.pause b ~ns:500_000;
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "kill_flag");
      Dsl.probe_global b "thd_net";
      B.store b ~value:(V.Null (T.Ptr (T.Struct "Net"))) ~ptr:(V.Global "thd_net");
      gt_write := B.last_iid b;
      Dsl.checkpoint b;
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let net = B.malloc b ~name:"net" (T.Struct "Net") in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b net 0);
      B.store b ~value:(V.i64 3) ~ptr:(B.gep b net 1);
      B.store b ~value:net ~ptr:(V.Global "thd_net");
      let t1 = B.spawn b "result_writer" (V.i64 0) in
      let t2 = B.spawn b "kill_conn" (V.i64 0) in
      B.join b t1;
      B.join b t2;
      B.ret_void b);
  Dsl.add_cold_code m ~seed:304 ~functions:120;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_write; !gt_read ];
    delta_pairs = [ (!gt_write, !gt_read) ];
  }

(* mysql-5 (order violation, use-after-free): log rotation frees the old
   relay-log descriptor while the replication applier still reads its
   position field. *)
let build_relay_rotate_uaf () =
  let m = Lir.Irmod.create "mysql" in
  ignore (Dsl.mutex_struct m);
  (* Relay = { pos; events } *)
  ignore (Lir.Irmod.declare_struct m "Relay" [ T.I64; T.I64 ]);
  Lir.Irmod.declare_global m "relay" (T.Ptr (T.Struct "Relay"));
  Lir.Irmod.declare_global m "rotation_done" T.I64;
  let gt_free = ref (-1) in
  let gt_read = ref (-1) in
  B.define m "applier" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let log = B.load b ~name:"log" (V.Global "relay") in
      B.for_ b ~from:0 ~below:(V.i64 10) (fun _ ->
          Dsl.io_pause b ~ns:450_000;
          let events = B.gep b ~name:"events" log 1 in
          let e = B.load b ~name:"e" events in
          B.store b ~value:(B.add b e (V.i64 1)) ~ptr:events);
      (* Record the final applied position from the (possibly stale)
         descriptor; a slow fsync widens the window. *)
      let slow = B.icmp b Lir.Instr.Eq (B.rand b ~bound:2) (V.i64 0) in
      B.if_ b slow
        ~then_:(fun () -> Dsl.io_pause b ~ns:1_200_000)
        ~else_:(fun () -> Dsl.io_pause b ~ns:90_000);
      let posp = B.gep b ~name:"posp" log 0 in
      let p = B.load b ~name:"p" posp in
      gt_read := B.last_iid b;
      B.call_void b Lir.Intrinsics.print_i64 [ p ];
      B.ret_void b);
  B.define m "rotator" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      Dsl.io_pause b ~ns:4_500_000;
      Dsl.pause b ~ns:480_000;
      let old = B.load b ~name:"old" (V.Global "relay") in
      let fresh = B.malloc b ~name:"fresh" (T.Struct "Relay") in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b fresh 0);
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b fresh 1);
      B.store b ~value:fresh ~ptr:(V.Global "relay");
      (* BUG: frees the old descriptor without waiting for the applier. *)
      B.call_void b Lir.Intrinsics.free [ B.cast b old (T.Ptr T.I8) ];
      gt_free := B.last_iid b;
      Dsl.checkpoint b;
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "rotation_done");
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let log = B.malloc b ~name:"log" (T.Struct "Relay") in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b log 0);
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b log 1);
      B.store b ~value:log ~ptr:(V.Global "relay");
      let t1 = B.spawn b "applier" (V.i64 0) in
      let t2 = B.spawn b "rotator" (V.i64 0) in
      B.join b t1;
      B.join b t2;
      B.ret_void b);
  Dsl.add_cold_code m ~seed:305 ~functions:120;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_free; !gt_read ];
    delta_pairs = [ (!gt_free, !gt_read) ];
  }

(* mysql-6 (order violation): FLUSH QUERY CACHE nulls the cache block
   pointer while a reader resolves a cached result through it. *)
let build_query_cache_order () =
  let m = Lir.Irmod.create "mysql" in
  ignore (Dsl.mutex_struct m);
  (* CacheBlock = { hits; result } *)
  ignore (Lir.Irmod.declare_struct m "CacheBlock" [ T.I64; T.I64 ]);
  Lir.Irmod.declare_global m "qcache" (T.Ptr (T.Struct "CacheBlock"));
  let gt_write = ref (-1) in
  let gt_read = ref (-1) in
  B.define m "select_conn" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 10) (fun _ ->
          Dsl.io_pause b ~ns:180_000;
          let block = B.load b ~name:"block" (V.Global "qcache") in
          gt_read := B.last_iid b;
          let hits = B.gep b ~name:"hits" block 0 in
          let h = B.load b ~name:"h" hits in
          B.store b ~value:(B.add b h (V.i64 1)) ~ptr:hits;
          (* A cache miss recomputes the result, lengthening the window
             between iterations. *)
          let miss = B.icmp b Lir.Instr.Eq (B.rand b ~bound:6) (V.i64 0) in
          B.if_ b miss
            ~then_:(fun () -> Dsl.pause b ~ns:300_000)
            ~else_:(fun () -> ()));
      B.ret_void b);
  B.define m "flush_conn" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      Dsl.io_pause b ~ns:2_450_000;
      (* BUG: invalidates by nulling the pointer before readers drain. *)
      B.store b
        ~value:(V.Null (T.Ptr (T.Struct "CacheBlock")))
        ~ptr:(V.Global "qcache");
      gt_write := B.last_iid b;
      Dsl.checkpoint b;
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let block = B.malloc b ~name:"block" (T.Struct "CacheBlock") in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b block 0);
      B.store b ~value:(V.i64 42) ~ptr:(B.gep b block 1);
      B.store b ~value:block ~ptr:(V.Global "qcache");
      let t1 = B.spawn b "select_conn" (V.i64 0) in
      let t2 = B.spawn b "flush_conn" (V.i64 0) in
      B.join b t1;
      B.join b t2;
      B.ret_void b);
  Dsl.add_cold_code m ~seed:306 ~functions:120;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_write; !gt_read ];
    delta_pairs = [ (!gt_write, !gt_read) ];
  }

(* mysql-7 (atomicity, RWR): the classic thd->proc_info race — a monitor
   checks the status string pointer, then dereferences it again after
   formatting, while the owning connection resets it in between. *)
let build_proc_info_atomicity () =
  let m = Lir.Irmod.create "mysql" in
  ignore (Dsl.mutex_struct m);
  (* ProcInfo = { stage; len } *)
  ignore (Lir.Irmod.declare_struct m "ProcInfo" [ T.I64; T.I64 ]);
  Lir.Irmod.declare_global m "proc_info" (T.Ptr (T.Struct "ProcInfo"));
  Lir.Irmod.declare_global m "conn_done" T.I64;
  let gt_check = ref (-1) in
  let gt_reset = ref (-1) in
  let gt_reuse = ref (-1) in
  B.define m "conn_thread" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 11) (fun i ->
          Dsl.io_pause b ~ns:540_000;
          (* Entering a new query stage: dump, clear, then publish. *)
          Dsl.probe_global b "proc_info";
          B.store b
            ~value:(V.Null (T.Ptr (T.Struct "ProcInfo")))
            ~ptr:(V.Global "proc_info");
          gt_reset := B.last_iid b;
          Dsl.checkpoint b;
          Dsl.pause b ~ns:150_000;
          let info = B.malloc b ~name:"info" (T.Struct "ProcInfo") in
          B.store b ~value:i ~ptr:(B.gep b info 0);
          B.store b ~value:(V.i64 16) ~ptr:(B.gep b info 1);
          B.store b ~value:info ~ptr:(V.Global "proc_info"));
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "conn_done");
      B.ret_void b);
  B.define m "show_processlist" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.while_ b
        ~cond:(fun () ->
          let s = B.load b ~name:"s" (V.Global "conn_done") in
          B.icmp b Lir.Instr.Eq s (V.i64 0))
        ~body:(fun () ->
          Dsl.io_pause b ~ns:330_000;
          let info = B.load b ~name:"info" (V.Global "proc_info") in
          gt_check := B.last_iid b;
          let ok =
            B.icmp b Lir.Instr.Ne info (V.Null (T.Ptr (T.Struct "ProcInfo")))
          in
          B.if_ b ok
            ~then_:(fun () ->
              (* Formatting the row for a wide terminal takes a while. *)
              let wide = B.icmp b Lir.Instr.Eq (B.rand b ~bound:5) (V.i64 0) in
              B.if_ b wide
                ~then_:(fun () -> Dsl.pause b ~ns:200_000)
                ~else_:(fun () -> Dsl.pause b ~ns:14_000);
              let info2 = B.load b ~name:"info2" (V.Global "proc_info") in
              gt_reuse := B.last_iid b;
              let stage = B.gep b ~name:"stage" info2 0 in
              let s = B.load b ~name:"s" stage in
              B.call_void b Lir.Intrinsics.print_i64 [ s ])
            ~else_:(fun () -> ()));
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let info = B.malloc b ~name:"info" (T.Struct "ProcInfo") in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b info 0);
      B.store b ~value:(V.i64 8) ~ptr:(B.gep b info 1);
      B.store b ~value:info ~ptr:(V.Global "proc_info");
      let t1 = B.spawn b "show_processlist" (V.i64 0) in
      let t2 = B.spawn b "conn_thread" (V.i64 0) in
      B.join b t2;
      B.join b t1;
      B.ret_void b);
  Dsl.add_cold_code m ~seed:307 ~functions:120;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_check; !gt_reset; !gt_reuse ];
    delta_pairs = [ (!gt_check, !gt_reset); (!gt_reset, !gt_reuse) ];
  }

(* mysql-8 (atomicity, WWR): a handler publishes its active statement,
   expects it to still be there after parsing, but the kill path clears
   it in between (write-write-read on the same slot). *)
let build_stmt_slot_atomicity () =
  let m = Lir.Irmod.create "mysql" in
  ignore (Dsl.mutex_struct m);
  (* Stmt = { id; cost } *)
  ignore (Lir.Irmod.declare_struct m "Stmt" [ T.I64; T.I64 ]);
  Lir.Irmod.declare_global m "active_stmt" (T.Ptr (T.Struct "Stmt"));
  Lir.Irmod.declare_global m "handler_done" T.I64;
  let gt_publish = ref (-1) in
  let gt_clear = ref (-1) in
  let gt_use = ref (-1) in
  B.define m "stmt_handler" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 10) (fun i ->
          Dsl.io_pause b ~ns:470_000;
          let stmt = B.malloc b ~name:"stmt" (T.Struct "Stmt") in
          B.store b ~value:i ~ptr:(B.gep b stmt 0);
          B.store b ~value:(V.i64 0) ~ptr:(B.gep b stmt 1);
          (* Publish the statement for monitoring... *)
          B.store b ~value:stmt ~ptr:(V.Global "active_stmt");
          gt_publish := B.last_iid b;
          Dsl.checkpoint b;
          (* ...then parse; complex queries take long enough for the kill
             path to clear the slot underneath us. *)
          let complex = B.icmp b Lir.Instr.Eq (B.rand b ~bound:5) (V.i64 0) in
          B.if_ b complex
            ~then_:(fun () -> Dsl.pause b ~ns:230_000)
            ~else_:(fun () -> Dsl.pause b ~ns:18_000);
          let current = B.load b ~name:"current" (V.Global "active_stmt") in
          gt_use := B.last_iid b;
          let cost = B.gep b ~name:"cost" current 1 in
          let c = B.load b ~name:"c" cost in
          B.store b ~value:(B.add b c (V.i64 1)) ~ptr:cost);
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "handler_done");
      B.ret_void b);
  B.define m "kill_sweeper" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.while_ b
        ~cond:(fun () ->
          let s = B.load b ~name:"s" (V.Global "handler_done") in
          B.icmp b Lir.Instr.Eq s (V.i64 0))
        ~body:(fun () ->
          Dsl.io_pause b ~ns:590_000;
          let sweep = B.icmp b Lir.Instr.Eq (B.rand b ~bound:3) (V.i64 0) in
          B.if_ b sweep
            ~then_:(fun () ->
              (* BUG: clears the slot without checking ownership. *)
              B.store b
                ~value:(V.Null (T.Ptr (T.Struct "Stmt")))
                ~ptr:(V.Global "active_stmt");
              gt_clear := B.last_iid b;
              Dsl.checkpoint b)
            ~else_:(fun () -> ()));
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let stmt = B.malloc b ~name:"stmt" (T.Struct "Stmt") in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b stmt 0);
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b stmt 1);
      B.store b ~value:stmt ~ptr:(V.Global "active_stmt");
      let t1 = B.spawn b "stmt_handler" (V.i64 0) in
      let t2 = B.spawn b "kill_sweeper" (V.i64 0) in
      B.join b t1;
      B.join b t2;
      B.ret_void b);
  Dsl.add_cold_code m ~seed:308 ~functions:120;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_publish; !gt_clear; !gt_use ];
    delta_pairs = [ (!gt_publish, !gt_clear); (!gt_clear, !gt_use) ];
  }

(* mysql-9 (atomicity, RWR): InnoDB adaptive-hash-index pointer — a
   searcher validates the AHI block, drops the latch while computing the
   fold, then re-reads it; the btree reorganizer swaps it in between. *)
let build_ahi_atomicity () =
  let m = Lir.Irmod.create "mysql" in
  ignore (Dsl.mutex_struct m);
  (* AhiBlock = { fold; refs } *)
  ignore (Lir.Irmod.declare_struct m "AhiBlock" [ T.I64; T.I64 ]);
  Lir.Irmod.declare_global m "ahi" (T.Ptr (T.Struct "AhiBlock"));
  Lir.Irmod.declare_global m "reorg_done" T.I64;
  let gt_check = ref (-1) in
  let gt_swap = ref (-1) in
  let gt_reuse = ref (-1) in
  B.define m "btree_reorg" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 8) (fun _ ->
          Dsl.io_pause b ~ns:1_150_000;
          B.store b
            ~value:(V.Null (T.Ptr (T.Struct "AhiBlock")))
            ~ptr:(V.Global "ahi");
          gt_swap := B.last_iid b;
          Dsl.checkpoint b;
          Dsl.pause b ~ns:330_000;
          let fresh = B.malloc b ~name:"fresh" (T.Struct "AhiBlock") in
          B.store b ~value:(V.i64 0) ~ptr:(B.gep b fresh 0);
          B.store b ~value:fresh ~ptr:(V.Global "ahi"));
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "reorg_done");
      B.ret_void b);
  B.define m "searcher" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.while_ b
        ~cond:(fun () ->
          let s = B.load b ~name:"s" (V.Global "reorg_done") in
          B.icmp b Lir.Instr.Eq s (V.i64 0))
        ~body:(fun () ->
          Dsl.io_pause b ~ns:620_000;
          let blockp = B.load b ~name:"blockp" (V.Global "ahi") in
          gt_check := B.last_iid b;
          let ok =
            B.icmp b Lir.Instr.Ne blockp (V.Null (T.Ptr (T.Struct "AhiBlock")))
          in
          B.if_ b ok
            ~then_:(fun () ->
              let deep = B.icmp b Lir.Instr.Eq (B.rand b ~bound:4) (V.i64 0) in
              B.if_ b deep
                ~then_:(fun () -> Dsl.pause b ~ns:340_000)
                ~else_:(fun () -> Dsl.pause b ~ns:25_000);
              let block2 = B.load b ~name:"block2" (V.Global "ahi") in
              gt_reuse := B.last_iid b;
              let fold = B.gep b ~name:"fold" block2 0 in
              let f = B.load b ~name:"f" fold in
              B.store b ~value:(B.add b f (V.i64 1)) ~ptr:fold)
            ~else_:(fun () -> ()));
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let block = B.malloc b ~name:"block" (T.Struct "AhiBlock") in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b block 0);
      B.store b ~value:block ~ptr:(V.Global "ahi");
      let t1 = B.spawn b "searcher" (V.i64 0) in
      let t2 = B.spawn b "btree_reorg" (V.i64 0) in
      B.join b t2;
      B.join b t1;
      B.ret_void b);
  Dsl.add_cold_code m ~seed:309 ~functions:120;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_check; !gt_swap; !gt_reuse ];
    delta_pairs = [ (!gt_check, !gt_swap); (!gt_swap, !gt_reuse) ];
  }

let mk id tracker kind description delta build =
  {
    Bug.id;
    system = "mysql";
    tracker_id = tracker;
    kind;
    description;
    java = false;
    expected_delta_us = delta;
    build;
    entry = "main";
  }

let bugs =
  [
    mk "mysql-1" "169" Bug.Deadlock
      "commit path nests table lock then LOCK_log; binlog rotation nests \
       them the other way"
      160.0 build_binlog_deadlock;
    mk "mysql-2" "644" Bug.Deadlock
      "DROP TABLE holds LOCK_open and wants the table lock; a handler \
       holds the table lock and re-enters the cache"
      180.0 build_lock_open_deadlock;
    mk "mysql-3" "791" Bug.Deadlock
      "purge thread (binlog->table) deadlocks against checkpointing \
       handler (table->binlog) under stats-thread pressure"
      400.0 build_purge_deadlock;
    mk "mysql-4" "12228" Bug.Order_violation
      "KILL CONNECTION nulls thd->net while the handler drains the final \
       result set"
      500.0 build_kill_net_order;
    mk "mysql-5" "56324" Bug.Order_violation
      "relay-log rotation frees the old descriptor while the applier \
       records its final position"
      480.0 build_relay_rotate_uaf;
    mk "mysql-6" "3596" Bug.Order_violation
      "FLUSH QUERY CACHE nulls the block pointer under concurrent \
       readers"
      200.0 build_query_cache_order;
    mk "mysql-7" "2011" Bug.Atomicity_violation
      "SHOW PROCESSLIST checks thd->proc_info then dereferences it again \
       after formatting; the owner resets it in between"
      200.0 build_proc_info_atomicity;
    mk "mysql-8" "12848" Bug.Atomicity_violation
      "handler publishes its active statement and re-reads it after \
       parsing; the kill sweeper clears the slot in between"
      230.0 build_stmt_slot_atomicity;
    mk "mysql-9" "59464" Bug.Atomicity_violation
      "adaptive-hash-index check-then-reuse races with the btree \
       reorganizer's swap window"
      340.0 build_ahi_atomicity;
  ]
