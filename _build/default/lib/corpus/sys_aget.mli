(** Model of aget (842 LOC): a multi-connection download accelerator with
    per-segment worker threads, a progress reporter, and resume-state
    saving on SIGINT.  Two corpus bugs, one of which fails through an
    assertion (exercising the non-crash fail-stop path of §7). *)

val bugs : Bug.t list
