let order_reader_close () =
  Scenario.teardown_order
    {
      Scenario.system = "lucene";
      struct_name = "SegmentReader";
      global_name = "current_reader";
      worker_name = "searcher";
      teardown_name = "reader_closer";
      retire = `Free;
      items = 12;
      item_gap_ns = 320_000;
      cleanup_slow_ns = 1_250_000;
      cleanup_fast_ns = 85_000;
      grace_ns = 590_000;
      cold_seed = 1301;
      cold_functions = 55;
    }

let atomicity_segment_infos () =
  Scenario.check_reuse
    {
      Scenario.system = "lucene";
      struct_name = "SegmentInfos";
      global_name = "segment_infos";
      mutator_name = "merge_scheduler";
      checker_name = "index_searcher";
      rotations = 8;
      rotate_gap_ns = 1_700_000;
      swap_gap_ns = 450_000;
      poll_ns = 740_000;
      long_ns = 520_000;
      short_ns = 35_000;
      long_one_in = 4;
      cold_seed = 1302;
      cold_functions = 55;
    }

let mk id kind description delta build =
  {
    Bug.id;
    system = "lucene";
    tracker_id = "N/A";
    kind;
    description;
    java = true;
    expected_delta_us = delta;
    build;
    entry = "main";
  }

let bugs =
  [
    mk "lucene-1" Bug.Order_violation
      "IndexReader.close frees the segment reader while a search still \
       scores against it"
      530.0 order_reader_close;
    mk "lucene-2" Bug.Atomicity_violation
      "searcher checks then reuses the SegmentInfos pointer while the \
       merge scheduler installs a new generation"
      700.0 atomicity_segment_infos;
  ]
