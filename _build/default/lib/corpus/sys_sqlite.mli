(** Model of SQLite (~100 KLOC): an embedded database with a connection
    handle protected by a database lock and a journal lock, a page cache,
    and a background checkpointer.  Four corpus bugs: two lock-order
    deadlocks, one teardown order violation, one page-cache atomicity
    violation. *)

val bugs : Bug.t list
