module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty

(* Shared scaffolding: a Db handle with two locks (database and journal),
   a page counter and a dirty flag.  A writer executes transactions while
   a checkpointer occasionally flushes the journal. *)

let declare_db m =
  let mutex = Dsl.mutex_struct m in
  (* Db = { db_lock; journal_lock; pages; dirty } *)
  ignore (Lir.Irmod.declare_struct m "Db" [ mutex; mutex; T.I64; T.I64 ]);
  Lir.Irmod.declare_global m "db" (T.Ptr (T.Struct "Db"));
  Lir.Irmod.declare_global m "txns_done" T.I64

let f_db_lock = 0
let f_journal_lock = 1
let f_pages = 2
let f_dirty = 3

let define_main m ~writer ~helper =
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let db = B.malloc b ~name:"db" (T.Struct "Db") in
      B.call_void b Lir.Intrinsics.mutex_init [ B.gep b db f_db_lock ];
      B.call_void b Lir.Intrinsics.mutex_init [ B.gep b db f_journal_lock ];
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b db f_pages);
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b db f_dirty);
      B.store b ~value:db ~ptr:(V.Global "db");
      let t1 = B.spawn b writer (V.i64 0) in
      let t2 = B.spawn b helper (V.i64 0) in
      B.join b t1;
      B.join b t2;
      B.ret_void b)

(* sqlite-1: classic two-lock deadlock.  The writer takes db_lock then
   journal_lock; the checkpointer occasionally takes journal_lock then
   db_lock. *)
let build_journal_deadlock () =
  let m = Lir.Irmod.create "sqlite" in
  declare_db m;
  let gt_w_hold = ref (-1) in
  let gt_w_attempt = ref (-1) in
  let gt_c_hold = ref (-1) in
  let gt_c_attempt = ref (-1) in
  B.define m "writer" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let db = B.load b ~name:"db" (V.Global "db") in
      let dlock = B.gep b ~name:"dlock" db f_db_lock in
      let jlock = B.gep b ~name:"jlock" db f_journal_lock in
      B.for_ b ~from:0 ~below:(V.i64 8) (fun _ ->
          Dsl.io_pause b ~ns:260_000;
          B.mutex_lock b dlock;
          gt_w_hold := B.last_iid b;
          (* Prepare the row update before journaling it. *)
          Dsl.pause b ~ns:280_000;
          B.mutex_lock b jlock;
          gt_w_attempt := B.last_iid b;
          let pages = B.gep b ~name:"pages" db f_pages in
          let p = B.load b ~name:"p" pages in
          B.store b ~value:(B.add b p (V.i64 1)) ~ptr:pages;
          B.mutex_unlock b jlock;
          B.mutex_unlock b dlock);
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "txns_done");
      B.ret_void b);
  B.define m "checkpointer" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let db = B.load b ~name:"db" (V.Global "db") in
      let dlock = B.gep b ~name:"dlock" db f_db_lock in
      let jlock = B.gep b ~name:"jlock" db f_journal_lock in
      B.for_ b ~from:0 ~below:(V.i64 6) (fun _ ->
          Dsl.io_pause b ~ns:380_000;
          (* Checkpoint only when the journal looks worth flushing. *)
          Dsl.probe_word b dlock;
          Dsl.probe_word b jlock;
          let worth = B.icmp b Lir.Instr.Eq (B.rand b ~bound:3) (V.i64 0) in
          B.if_ b worth
            ~then_:(fun () ->
              B.mutex_lock b jlock;
              gt_c_hold := B.last_iid b;
              (* BUG: grabs db_lock while holding journal_lock — the
                 opposite order from the writer. *)
              Dsl.pause b ~ns:240_000;
              B.mutex_lock b dlock;
              gt_c_attempt := B.last_iid b;
              let dirty = B.gep b ~name:"dirty" db f_dirty in
              B.store b ~value:(V.i64 0) ~ptr:dirty;
              B.mutex_unlock b dlock;
              B.mutex_unlock b jlock)
            ~else_:(fun () -> ()));
      B.ret_void b);
  define_main m ~writer:"writer" ~helper:"checkpointer";
  Dsl.add_cold_code m ~seed:201 ~functions:60;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_w_hold; !gt_w_attempt; !gt_c_hold; !gt_c_attempt ];
    delta_pairs = [ (!gt_w_attempt, !gt_c_attempt) ];
  }

(* sqlite-2: deadlock between a transaction rollback (journal -> db) and
   a busy-handler retry path (db -> journal), both in the writer-facing
   API but driven from different threads. *)
let build_rollback_deadlock () =
  let m = Lir.Irmod.create "sqlite" in
  declare_db m;
  let gt_w_hold = ref (-1) in
  let gt_w_attempt = ref (-1) in
  let gt_r_hold = ref (-1) in
  let gt_r_attempt = ref (-1) in
  B.define m "busy_retry" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let db = B.load b ~name:"db" (V.Global "db") in
      let dlock = B.gep b ~name:"dlock" db f_db_lock in
      let jlock = B.gep b ~name:"jlock" db f_journal_lock in
      B.for_ b ~from:0 ~below:(V.i64 7) (fun _ ->
          Dsl.io_pause b ~ns:310_000;
          B.mutex_lock b dlock;
          gt_w_hold := B.last_iid b;
          Dsl.pause b ~ns:320_000;
          B.mutex_lock b jlock;
          gt_w_attempt := B.last_iid b;
          let pages = B.gep b ~name:"pages" db f_pages in
          let p = B.load b ~name:"p" pages in
          B.store b ~value:(B.add b p (V.i64 1)) ~ptr:pages;
          B.mutex_unlock b jlock;
          B.mutex_unlock b dlock);
      B.ret_void b);
  B.define m "rollback" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let db = B.load b ~name:"db" (V.Global "db") in
      let dlock = B.gep b ~name:"dlock" db f_db_lock in
      let jlock = B.gep b ~name:"jlock" db f_journal_lock in
      B.for_ b ~from:0 ~below:(V.i64 5) (fun _ ->
          Dsl.io_pause b ~ns:420_000;
          let hot = B.icmp b Lir.Instr.Eq (B.rand b ~bound:3) (V.i64 0) in
          B.if_ b hot
            ~then_:(fun () ->
              B.mutex_lock b jlock;
              gt_r_hold := B.last_iid b;
              Dsl.pause b ~ns:260_000;
              B.mutex_lock b dlock;
              gt_r_attempt := B.last_iid b;
              let dirty = B.gep b ~name:"dirty" db f_dirty in
              B.store b ~value:(V.i64 1) ~ptr:dirty;
              B.mutex_unlock b dlock;
              B.mutex_unlock b jlock)
            ~else_:(fun () -> ()));
      B.ret_void b);
  define_main m ~writer:"busy_retry" ~helper:"rollback";
  Dsl.add_cold_code m ~seed:202 ~functions:60;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_w_hold; !gt_w_attempt; !gt_r_hold; !gt_r_attempt ];
    delta_pairs = [ (!gt_w_attempt, !gt_r_attempt) ];
  }

(* sqlite-3: order violation — sqlite3_close nulls the handle while a
   reader is still inside a statement. *)
let build_close_order_violation () =
  let m = Lir.Irmod.create "sqlite" in
  declare_db m;
  let gt_write = ref (-1) in
  let gt_read = ref (-1) in
  B.define m "reader" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let local = B.load b ~name:"local" (V.Global "db") in
      B.for_ b ~from:0 ~below:(V.i64 9) (fun _ ->
          Dsl.io_pause b ~ns:230_000;
          let pages = B.gep b ~name:"pages" local f_pages in
          let p = B.load b ~name:"p" pages in
          B.call_void b Lir.Intrinsics.print_i64 [ p ]);
      (* Final statistics query re-reads the shared handle; a slow stat
         aggregation loses the race against sqlite3_close. *)
      let slow = B.icmp b Lir.Instr.Eq (B.rand b ~bound:2) (V.i64 0) in
      B.if_ b slow
        ~then_:(fun () -> Dsl.io_pause b ~ns:900_000)
        ~else_:(fun () -> Dsl.io_pause b ~ns:80_000);
      let handle = B.load b ~name:"handle" (V.Global "db") in
      gt_read := B.last_iid b;
      let pages = B.gep b ~name:"pages2" handle f_pages in
      let p = B.load b ~name:"p2" pages in
      B.call_void b Lir.Intrinsics.print_i64 [ p ];
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let db = B.malloc b ~name:"db" (T.Struct "Db") in
      B.call_void b Lir.Intrinsics.mutex_init [ B.gep b db f_db_lock ];
      B.call_void b Lir.Intrinsics.mutex_init [ B.gep b db f_journal_lock ];
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b db f_pages);
      B.store b ~value:db ~ptr:(V.Global "db");
      let t = B.spawn b "reader" (V.i64 0) in
      B.for_ b ~from:0 ~below:(V.i64 9) (fun _ ->
          Dsl.pause b ~ns:240_000;
          let pages = B.gep b ~name:"pages" db f_pages in
          let p = B.load b ~name:"p" pages in
          B.store b ~value:(B.add b p (V.i64 1)) ~ptr:pages);
      (* BUG: sqlite3_close runs after a fixed drain period, without
         waiting for the reader. *)
      Dsl.pause b ~ns:500_000;
      Dsl.probe_global b "db";
      B.store b ~value:(V.Null (T.Ptr (T.Struct "Db"))) ~ptr:(V.Global "db");
      gt_write := B.last_iid b;
      Dsl.checkpoint b;
      B.join b t;
      B.ret_void b);
  Dsl.add_cold_code m ~seed:203 ~functions:60;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_write; !gt_read ];
    delta_pairs = [ (!gt_write, !gt_read) ];
  }

(* sqlite-4: RWR atomicity violation on the page-cache pointer: a reader
   validates the cache entry, then re-fetches it after a computed step
   while the cache manager invalidates entries in between. *)
let build_pcache_atomicity () =
  let m = Lir.Irmod.create "sqlite" in
  ignore (Dsl.mutex_struct m);
  ignore (Lir.Irmod.declare_struct m "Page" [ T.I64; T.I64 ]);
  Lir.Irmod.declare_global m "pcache" (T.Ptr (T.Struct "Page"));
  Lir.Irmod.declare_global m "shutdown" T.I64;
  let gt_check = ref (-1) in
  let gt_invalidate = ref (-1) in
  let gt_reuse = ref (-1) in
  B.define m "cache_manager" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 10) (fun _ ->
          Dsl.io_pause b ~ns:610_000;
          (* Invalidate, then install the replacement page. *)
          B.store b ~value:(V.Null (T.Ptr (T.Struct "Page")))
            ~ptr:(V.Global "pcache");
          gt_invalidate := B.last_iid b;
          Dsl.checkpoint b;
          Dsl.pause b ~ns:140_000;
          let page = B.malloc b ~name:"page" (T.Struct "Page") in
          B.store b ~value:(V.i64 0) ~ptr:(B.gep b page 0);
          B.store b ~value:page ~ptr:(V.Global "pcache"));
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "shutdown");
      B.ret_void b);
  B.define m "reader" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.while_ b
        ~cond:(fun () ->
          let s = B.load b ~name:"s" (V.Global "shutdown") in
          B.icmp b Lir.Instr.Eq s (V.i64 0))
        ~body:(fun () ->
          Dsl.io_pause b ~ns:270_000;
          let page = B.load b ~name:"page" (V.Global "pcache") in
          gt_check := B.last_iid b;
          let ok =
            B.icmp b Lir.Instr.Ne page (V.Null (T.Ptr (T.Struct "Page")))
          in
          B.if_ b ok
            ~then_:(fun () ->
              (* Pin and decode the page; large pages take long enough for
                 an invalidation to slip in. *)
              let big = B.icmp b Lir.Instr.Eq (B.rand b ~bound:5) (V.i64 0) in
              B.if_ b big
                ~then_:(fun () -> Dsl.pause b ~ns:190_000)
                ~else_:(fun () -> Dsl.pause b ~ns:12_000);
              let page2 = B.load b ~name:"page2" (V.Global "pcache") in
              gt_reuse := B.last_iid b;
              let hits = B.gep b ~name:"hits" page2 0 in
              let h = B.load b ~name:"h" hits in
              B.store b ~value:(B.add b h (V.i64 1)) ~ptr:hits)
            ~else_:(fun () -> ()));
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let first = B.malloc b ~name:"first" (T.Struct "Page") in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b first 0);
      B.store b ~value:first ~ptr:(V.Global "pcache");
      let t1 = B.spawn b "reader" (V.i64 0) in
      let t2 = B.spawn b "cache_manager" (V.i64 0) in
      B.join b t2;
      B.join b t1;
      B.ret_void b);
  Dsl.add_cold_code m ~seed:204 ~functions:60;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_check; !gt_invalidate; !gt_reuse ];
    delta_pairs = [ (!gt_check, !gt_invalidate); (!gt_invalidate, !gt_reuse) ];
  }

let bugs =
  [
    {
      Bug.id = "sqlite-1";
      system = "sqlite";
      tracker_id = "1672";
      kind = Bug.Deadlock;
      description =
        "writer takes db_lock then journal_lock; checkpointer takes them \
         in the opposite order";
      java = false;
      expected_delta_us = 130.0;
      build = build_journal_deadlock;
      entry = "main";
    };
    {
      Bug.id = "sqlite-2";
      system = "sqlite";
      tracker_id = "N/A";
      kind = Bug.Deadlock;
      description =
        "busy-handler retry (db->journal) deadlocks against rollback \
         (journal->db)";
      java = false;
      expected_delta_us = 150.0;
      build = build_rollback_deadlock;
      entry = "main";
    };
    {
      Bug.id = "sqlite-3";
      system = "sqlite";
      tracker_id = "N/A";
      kind = Bug.Order_violation;
      description =
        "sqlite3_close nulls the shared handle while a reader's final \
         statistics query still dereferences it";
      java = false;
      expected_delta_us = 300.0;
      build = build_close_order_violation;
      entry = "main";
    };
    {
      Bug.id = "sqlite-4";
      system = "sqlite";
      tracker_id = "N/A";
      kind = Bug.Atomicity_violation;
      description =
        "page-cache check-then-reuse races with the cache manager's \
         invalidate/replace window";
      java = false;
      expected_delta_us = 100.0;
      build = build_pcache_atomicity;
      entry = "main";
    };
  ]
