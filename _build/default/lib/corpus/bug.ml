type kind = Deadlock | Order_violation | Atomicity_violation

type built = {
  m : Lir.Irmod.t;
  ground_truth : int list;
  delta_pairs : (int * int) list;
}

type t = {
  id : string;
  system : string;
  tracker_id : string;
  kind : kind;
  description : string;
  java : bool;
  expected_delta_us : float;
  build : unit -> built;
  entry : string;
}

let kind_name = function
  | Deadlock -> "deadlock"
  | Order_violation -> "order violation"
  | Atomicity_violation -> "atomicity violation"
