(** Model of pbzip2, the parallel bzip2 compressor (~2 KLOC): a producer
    enqueues blocks into a shared FIFO, consumer threads drain it.  Its
    famous crash is an order violation — main tears the queue down while a
    consumer still uses it.  Three corpus bugs. *)

val bugs : Bug.t list
