let deadlock_classloader () =
  Scenario.two_lock_deadlock
    {
      Scenario.system = "jdk";
      lock1 = "classloader_lock";
      lock2 = "resolution_lock";
      counter1 = "classes_loaded";
      counter2 = "symbols_resolved";
      thread_a = "app_loader";
      thread_b = "reflection_resolver";
      iters_a = 8;
      iters_b = 6;
      gap_a_ns = 520_000;
      gap_b_ns = 760_000;
      hold_a_ns = 572_000;
      hold_b_ns = 462_000;
      b_one_in = 3;
      cold_seed = 801;
      cold_functions = 80;
    }

let deadlock_timer () =
  Scenario.two_lock_deadlock
    {
      Scenario.system = "jdk";
      lock1 = "timer_queue_lock";
      lock2 = "task_cancel_lock";
      counter1 = "tasks_fired";
      counter2 = "tasks_cancelled";
      thread_a = "timer_thread";
      thread_b = "canceller";
      iters_a = 10;
      iters_b = 6;
      gap_a_ns = 300_000;
      gap_b_ns = 540_000;
      hold_a_ns = 264_000;
      hold_b_ns = 220_000;
      b_one_in = 3;
      cold_seed = 802;
      cold_functions = 80;
    }

let order_timer_cancel () =
  Scenario.teardown_order
    {
      Scenario.system = "jdk";
      struct_name = "TimerTask";
      global_name = "next_task";
      worker_name = "timer_scheduler";
      teardown_name = "cancel_all";
      retire = `Null;
      items = 12;
      item_gap_ns = 280_000;
      cleanup_slow_ns = 950_000;
      cleanup_fast_ns = 70_000;
      grace_ns = 430_000;
      cold_seed = 803;
      cold_functions = 80;
    }

let order_handler_close () =
  Scenario.teardown_order
    {
      Scenario.system = "jdk";
      struct_name = "LogHandler";
      global_name = "root_handler";
      worker_name = "logging_thread";
      teardown_name = "handler_closer";
      retire = `Free;
      items = 14;
      item_gap_ns = 150_000;
      cleanup_slow_ns = 640_000;
      cleanup_fast_ns = 40_000;
      grace_ns = 290_000;
      cold_seed = 804;
      cold_functions = 80;
    }

let atomicity_refcache () =
  Scenario.check_reuse
    {
      Scenario.system = "jdk";
      struct_name = "CachedRef";
      global_name = "soft_cache";
      mutator_name = "reference_handler";
      checker_name = "cache_client";
      rotations = 10;
      rotate_gap_ns = 900_000;
      swap_gap_ns = 275_000;
      poll_ns = 420_000;
      long_ns = 300_000;
      short_ns = 22_000;
      long_one_in = 4;
      cold_seed = 805;
      cold_functions = 80;
    }

let atomicity_task_slot () =
  Scenario.publish_clear_use
    {
      Scenario.system = "jdk";
      struct_name = "Runnable";
      global_name = "queued_task";
      worker_name = "executor_worker";
      sweeper_name = "purge_thread";
      iterations = 10;
      work_gap_ns = 500_000;
      sweep_gap_ns = 630_000;
      sweep_one_in = 3;
      long_ns = 240_000;
      short_ns = 20_000;
      long_one_in = 5;
      cold_seed = 806;
      cold_functions = 80;
    }

let mk id tracker kind description delta build =
  {
    Bug.id;
    system = "jdk";
    tracker_id = tracker;
    kind;
    description;
    java = true;
    expected_delta_us = delta;
    build;
    entry = "main";
  }

let bugs =
  [
    mk "jdk-1" "4670071" Bug.Deadlock
      "class loading nests the loader lock then the resolution lock; \
       reflection resolves in the opposite order"
      260.0 deadlock_classloader;
    mk "jdk-2" "6453355" Bug.Deadlock
      "Timer firing nests queue then cancel locks; TimerTask.cancel nests \
       them the other way"
      110.0 deadlock_timer;
    mk "jdk-3" "N/A" Bug.Order_violation
      "Timer.cancel clears the next-task slot while the scheduler still \
       dereferences it"
      380.0 order_timer_cancel;
    mk "jdk-4" "N/A" Bug.Order_violation
      "handler close releases the log handler while a logging thread \
       still writes through it"
      260.0 order_handler_close;
    mk "jdk-5" "N/A" Bug.Atomicity_violation
      "client checks the soft-reference cache then re-reads it; the \
       reference handler clears it in between"
      400.0 atomicity_refcache;
    mk "jdk-6" "N/A" Bug.Atomicity_violation
      "executor publishes a task and re-reads the slot after setup; the \
       purge thread clears it in between"
      280.0 atomicity_task_slot;
  ]
