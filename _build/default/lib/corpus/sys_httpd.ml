module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty

(* Worker-MPM scaffolding: an accept queue guarded by queue_lock, a
   scoreboard guarded by sb_lock, and a shared server-config pointer that
   graceful restart swaps. *)

let declare_server m =
  let mutex = Dsl.mutex_struct m in
  (* Scoreboard = { busy; served; lock } *)
  ignore (Lir.Irmod.declare_struct m "Scoreboard" [ T.I64; T.I64; mutex ]);
  (* Config = { timeout; keepalive } *)
  ignore (Lir.Irmod.declare_struct m "Config" [ T.I64; T.I64 ]);
  Lir.Irmod.declare_global m "scoreboard" (T.Ptr (T.Struct "Scoreboard"));
  Lir.Irmod.declare_global m "config" (T.Ptr (T.Struct "Config"));
  Lir.Irmod.declare_global m "queue_lock" (T.Struct "Mutex");
  Lir.Irmod.declare_global m "accepted" T.I64;
  Lir.Irmod.declare_global m "shutting_down" T.I64

let sb_busy = 0
let sb_served = 1
let sb_lock = 2

let define_bootstrap m ~threads =
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let sb = B.malloc b ~name:"sb" (T.Struct "Scoreboard") in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b sb sb_busy);
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b sb sb_served);
      B.call_void b Lir.Intrinsics.mutex_init [ B.gep b sb sb_lock ];
      B.store b ~value:sb ~ptr:(V.Global "scoreboard");
      let conf = B.malloc b ~name:"conf" (T.Struct "Config") in
      B.store b ~value:(V.i64 30) ~ptr:(B.gep b conf 0);
      B.store b ~value:(V.i64 5) ~ptr:(B.gep b conf 1);
      B.store b ~value:conf ~ptr:(V.Global "config");
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global "queue_lock" ];
      let tids = List.map (fun fn -> B.spawn b fn (V.i64 0)) threads in
      List.iter (fun t -> B.join b t) tids;
      B.ret_void b)

(* httpd-1 (deadlock): a worker serving a request holds queue_lock and
   updates the scoreboard; the graceful-restart path holds sb_lock and
   drains the accept queue. *)
let build_graceful_deadlock () =
  let m = Lir.Irmod.create "httpd" in
  declare_server m;
  let gt = Array.make 4 (-1) in
  B.define m "worker" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let sb = B.load b ~name:"sb" (V.Global "scoreboard") in
      let slock = B.gep b ~name:"slock" sb sb_lock in
      B.for_ b ~from:0 ~below:(V.i64 9) (fun _ ->
          Dsl.io_pause b ~ns:290_000;
          B.mutex_lock b (V.Global "queue_lock");
          gt.(0) <- B.last_iid b;
          let acc = B.load b ~name:"acc" (V.Global "accepted") in
          B.store b ~value:(B.add b acc (V.i64 1)) ~ptr:(V.Global "accepted");
          Dsl.pause b ~ns:260_000;
          B.mutex_lock b slock;
          gt.(1) <- B.last_iid b;
          let served = B.gep b ~name:"served" sb sb_served in
          let s = B.load b ~name:"s" served in
          B.store b ~value:(B.add b s (V.i64 1)) ~ptr:served;
          B.mutex_unlock b slock;
          B.mutex_unlock b (V.Global "queue_lock"));
      B.ret_void b);
  B.define m "graceful_restart" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let sb = B.load b ~name:"sb" (V.Global "scoreboard") in
      let slock = B.gep b ~name:"slock" sb sb_lock in
      B.for_ b ~from:0 ~below:(V.i64 5) (fun _ ->
          Dsl.io_pause b ~ns:520_000;
          Dsl.probe_global b "queue_lock";
          Dsl.probe_word b slock;
          let restart = B.icmp b Lir.Instr.Eq (B.rand b ~bound:3) (V.i64 0) in
          B.if_ b restart
            ~then_:(fun () ->
              B.mutex_lock b slock;
              gt.(2) <- B.last_iid b;
              (* BUG: drains the accept queue while holding sb_lock. *)
              Dsl.pause b ~ns:220_000;
              B.mutex_lock b (V.Global "queue_lock");
              gt.(3) <- B.last_iid b;
              B.store b ~value:(V.i64 0) ~ptr:(V.Global "accepted");
              B.mutex_unlock b (V.Global "queue_lock");
              B.mutex_unlock b slock)
            ~else_:(fun () -> ()));
      B.ret_void b);
  define_bootstrap m ~threads:[ "worker"; "graceful_restart" ];
  Dsl.add_cold_code m ~seed:401 ~functions:90;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ gt.(0); gt.(1); gt.(2); gt.(3) ];
    delta_pairs = [ (gt.(1), gt.(3)) ];
  }

(* httpd-2 (deadlock): mod_ssl's session-cache lock nests against the
   scoreboard lock in opposite orders on the handshake and the
   cache-expiry paths. *)
let build_ssl_cache_deadlock () =
  let m = Lir.Irmod.create "httpd" in
  declare_server m;
  Lir.Irmod.declare_global m "ssl_cache_lock" (T.Struct "Mutex");
  Lir.Irmod.declare_global m "sessions" T.I64;
  let gt = Array.make 4 (-1) in
  B.define m "handshake" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let sb = B.load b ~name:"sb" (V.Global "scoreboard") in
      let slock = B.gep b ~name:"slock" sb sb_lock in
      B.for_ b ~from:0 ~below:(V.i64 8) (fun _ ->
          Dsl.io_pause b ~ns:430_000;
          B.mutex_lock b (V.Global "ssl_cache_lock");
          gt.(0) <- B.last_iid b;
          let sess = B.load b ~name:"sess" (V.Global "sessions") in
          B.store b ~value:(B.add b sess (V.i64 1)) ~ptr:(V.Global "sessions");
          Dsl.pause b ~ns:400_000;
          B.mutex_lock b slock;
          gt.(1) <- B.last_iid b;
          let busy = B.gep b ~name:"busy" sb sb_busy in
          let v = B.load b ~name:"v" busy in
          B.store b ~value:(B.add b v (V.i64 1)) ~ptr:busy;
          B.mutex_unlock b slock;
          B.mutex_unlock b (V.Global "ssl_cache_lock"));
      B.ret_void b);
  B.define m "cache_expiry" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let sb = B.load b ~name:"sb" (V.Global "scoreboard") in
      let slock = B.gep b ~name:"slock" sb sb_lock in
      B.for_ b ~from:0 ~below:(V.i64 6) (fun _ ->
          Dsl.io_pause b ~ns:660_000;
          let due = B.icmp b Lir.Instr.Eq (B.rand b ~bound:3) (V.i64 0) in
          B.if_ b due
            ~then_:(fun () ->
              B.mutex_lock b slock;
              gt.(2) <- B.last_iid b;
              Dsl.pause b ~ns:340_000;
              B.mutex_lock b (V.Global "ssl_cache_lock");
              gt.(3) <- B.last_iid b;
              B.store b ~value:(V.i64 0) ~ptr:(V.Global "sessions");
              B.mutex_unlock b (V.Global "ssl_cache_lock");
              B.mutex_unlock b slock)
            ~else_:(fun () -> ()));
      B.ret_void b);
  define_bootstrap m ~threads:[ "handshake"; "cache_expiry" ];
  Dsl.add_cold_code m ~seed:402 ~functions:90;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ gt.(0); gt.(1); gt.(2); gt.(3) ];
    delta_pairs = [ (gt.(1), gt.(3)) ];
  }

(* httpd-3 (order violation): graceful restart nulls the old config while
   a worker still resolves its request timeout through it. *)
let build_config_swap_order () =
  let m = Lir.Irmod.create "httpd" in
  declare_server m;
  let gt_write = ref (-1) in
  let gt_read = ref (-1) in
  B.define m "worker" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 11) (fun _ ->
          Dsl.io_pause b ~ns:240_000;
          let sb = B.load b ~name:"sb" (V.Global "scoreboard") in
          let served = B.gep b ~name:"served" sb sb_served in
          let s = B.load b ~name:"s" served in
          B.store b ~value:(B.add b s (V.i64 1)) ~ptr:served);
      (* Lingering close consults the (possibly swapped-out) config; a
         slow client stretches the window. *)
      let lingering = B.icmp b Lir.Instr.Eq (B.rand b ~bound:2) (V.i64 0) in
      B.if_ b lingering
        ~then_:(fun () -> Dsl.io_pause b ~ns:1_100_000)
        ~else_:(fun () -> Dsl.io_pause b ~ns:90_000);
      let conf = B.load b ~name:"conf" (V.Global "config") in
      gt_read := B.last_iid b;
      let timeout = B.gep b ~name:"timeout" conf 0 in
      let t = B.load b ~name:"t" timeout in
      B.call_void b Lir.Intrinsics.print_i64 [ t ];
      B.ret_void b);
  B.define m "restarter" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      Dsl.io_pause b ~ns:2_800_000;
      Dsl.pause b ~ns:320_000;
      (* BUG: old config retired before workers finished lingering
         closes. *)
      Dsl.probe_global b "config";
      B.store b ~value:(V.Null (T.Ptr (T.Struct "Config"))) ~ptr:(V.Global "config");
      gt_write := B.last_iid b;
      Dsl.checkpoint b;
      B.ret_void b);
  define_bootstrap m ~threads:[ "worker"; "restarter" ];
  Dsl.add_cold_code m ~seed:403 ~functions:90;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_write; !gt_read ];
    delta_pairs = [ (!gt_write, !gt_read) ];
  }

(* httpd-4 (order violation, use-after-free): shutdown frees the
   scoreboard while a worker posts its final status. *)
let build_scoreboard_uaf () =
  let m = Lir.Irmod.create "httpd" in
  declare_server m;
  let gt_free = ref (-1) in
  let gt_write = ref (-1) in
  B.define m "worker" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let sb = B.load b ~name:"sb" (V.Global "scoreboard") in
      B.for_ b ~from:0 ~below:(V.i64 10) (fun _ ->
          Dsl.io_pause b ~ns:310_000;
          let served = B.gep b ~name:"served" sb sb_served in
          let s = B.load b ~name:"s" served in
          B.store b ~value:(B.add b s (V.i64 1)) ~ptr:served);
      (* Final status post after access-log flush. *)
      let slow_log = B.icmp b Lir.Instr.Eq (B.rand b ~bound:2) (V.i64 0) in
      B.if_ b slow_log
        ~then_:(fun () -> Dsl.io_pause b ~ns:1_000_000)
        ~else_:(fun () -> Dsl.io_pause b ~ns:70_000);
      let busy = B.gep b ~name:"busy" sb sb_busy in
      B.store b ~value:(V.i64 0) ~ptr:busy;
      gt_write := B.last_iid b;
      Dsl.checkpoint b;
      B.ret_void b);
  B.define m "shutdown" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      Dsl.io_pause b ~ns:3_300_000;
      Dsl.pause b ~ns:300_000;
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "shutting_down");
      let sb = B.load b ~name:"sb" (V.Global "scoreboard") in
      (* BUG: releases the scoreboard without joining the workers. *)
      B.call_void b Lir.Intrinsics.free [ B.cast b sb (T.Ptr T.I8) ];
      gt_free := B.last_iid b;
      Dsl.checkpoint b;
      B.ret_void b);
  define_bootstrap m ~threads:[ "worker"; "shutdown" ];
  Dsl.add_cold_code m ~seed:404 ~functions:90;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_free; !gt_write ];
    delta_pairs = [ (!gt_free, !gt_write) ];
  }

(* httpd-5 (atomicity, RWR): keepalive connection record check-then-reuse
   against the reaper's recycle window. *)
let build_keepalive_atomicity () =
  Scenario.check_reuse
    {
      Scenario.system = "httpd";
      struct_name = "ConnRec";
      global_name = "keptalive";
      mutator_name = "conn_reaper";
      checker_name = "keepalive_filter";
      rotations = 11;
      rotate_gap_ns = 480_000;
      swap_gap_ns = 150_000;
      poll_ns = 260_000;
      long_ns = 180_000;
      short_ns = 15_000;
      long_one_in = 5;
      cold_seed = 405;
      cold_functions = 90;
    }

(* httpd-6 (atomicity, WWR): a worker publishes its request pool, then
   re-reads it after running filters; the pool recycler clears the slot in
   between. *)
let build_pool_slot_atomicity () =
  let m = Lir.Irmod.create "httpd" in
  ignore (Dsl.mutex_struct m);
  ignore (Lir.Irmod.declare_struct m "Pool" [ T.I64; T.I64 ]);
  Lir.Irmod.declare_global m "active_pool" (T.Ptr (T.Struct "Pool"));
  Lir.Irmod.declare_global m "worker_done" T.I64;
  let gt_publish = ref (-1) in
  let gt_clear = ref (-1) in
  let gt_use = ref (-1) in
  B.define m "request_worker" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 10) (fun i ->
          Dsl.io_pause b ~ns:420_000;
          let pool = B.malloc b ~name:"pool" (T.Struct "Pool") in
          B.store b ~value:i ~ptr:(B.gep b pool 0);
          B.store b ~value:(V.i64 0) ~ptr:(B.gep b pool 1);
          B.store b ~value:pool ~ptr:(V.Global "active_pool");
          gt_publish := B.last_iid b;
          Dsl.checkpoint b;
          let heavy = B.icmp b Lir.Instr.Eq (B.rand b ~bound:5) (V.i64 0) in
          B.if_ b heavy
            ~then_:(fun () -> Dsl.pause b ~ns:210_000)
            ~else_:(fun () -> Dsl.pause b ~ns:16_000);
          let current = B.load b ~name:"current" (V.Global "active_pool") in
          gt_use := B.last_iid b;
          let bytes = B.gep b ~name:"bytes" current 1 in
          let v = B.load b ~name:"v" bytes in
          B.store b ~value:(B.add b v (V.i64 512)) ~ptr:bytes);
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "worker_done");
      B.ret_void b);
  B.define m "pool_recycler" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.while_ b
        ~cond:(fun () ->
          let s = B.load b ~name:"s" (V.Global "worker_done") in
          B.icmp b Lir.Instr.Eq s (V.i64 0))
        ~body:(fun () ->
          Dsl.io_pause b ~ns:560_000;
          let sweep = B.icmp b Lir.Instr.Eq (B.rand b ~bound:3) (V.i64 0) in
          B.if_ b sweep
            ~then_:(fun () ->
              (* BUG: recycles the slot without checking the owner. *)
              B.store b ~value:(V.Null (T.Ptr (T.Struct "Pool")))
                ~ptr:(V.Global "active_pool");
              gt_clear := B.last_iid b;
              Dsl.checkpoint b)
            ~else_:(fun () -> ()));
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let pool = B.malloc b ~name:"pool" (T.Struct "Pool") in
      B.store b ~value:(V.i64 0) ~ptr:(B.gep b pool 0);
      B.store b ~value:pool ~ptr:(V.Global "active_pool");
      let t1 = B.spawn b "request_worker" (V.i64 0) in
      let t2 = B.spawn b "pool_recycler" (V.i64 0) in
      B.join b t1;
      B.join b t2;
      B.ret_void b);
  Dsl.add_cold_code m ~seed:406 ~functions:90;
  Lir.Verify.check_exn m;
  {
    Bug.m;
    ground_truth = [ !gt_publish; !gt_clear; !gt_use ];
    delta_pairs = [ (!gt_publish, !gt_clear); (!gt_clear, !gt_use) ];
  }

(* httpd-7 (atomicity, RWR): mod_status samples the stats block pointer
   twice around rendering while the collector swaps it. *)
let build_status_atomicity () =
  Scenario.check_reuse
    {
      Scenario.system = "httpd";
      struct_name = "StatsBlock";
      global_name = "stats";
      mutator_name = "stats_collector";
      checker_name = "mod_status";
      rotations = 9;
      rotate_gap_ns = 740_000;
      swap_gap_ns = 225_000;
      poll_ns = 380_000;
      long_ns = 260_000;
      short_ns = 20_000;
      long_one_in = 4;
      cold_seed = 407;
      cold_functions = 90;
    }

let mk id tracker kind description delta build =
  {
    Bug.id;
    system = "httpd";
    tracker_id = tracker;
    kind;
    description;
    java = false;
    expected_delta_us = delta;
    build;
    entry = "main";
  }

let bugs =
  [
    mk "httpd-1" "42031" Bug.Deadlock
      "worker nests queue_lock then sb_lock; graceful restart nests them \
       the other way"
      120.0 build_graceful_deadlock;
    mk "httpd-2" "N/A" Bug.Deadlock
      "mod_ssl session-cache lock vs scoreboard lock in opposite orders \
       on handshake and expiry paths"
      190.0 build_ssl_cache_deadlock;
    mk "httpd-3" "25520" Bug.Order_violation
      "graceful restart retires the config while a lingering close still \
       reads the timeout through it"
      350.0 build_config_swap_order;
    mk "httpd-4" "21287" Bug.Order_violation
      "shutdown frees the scoreboard before workers post final status"
      320.0 build_scoreboard_uaf;
    mk "httpd-5" "N/A" Bug.Atomicity_violation
      "keepalive filter checks the connection record then reuses it; the \
       reaper recycles it in between"
      180.0 build_keepalive_atomicity;
    mk "httpd-6" "N/A" Bug.Atomicity_violation
      "worker publishes its request pool and re-reads it after filters; \
       the recycler clears the slot in between"
      210.0 build_pool_slot_atomicity;
    mk "httpd-7" "45605" Bug.Atomicity_violation
      "mod_status samples the stats pointer around rendering while the \
       collector swaps it"
      260.0 build_status_atomicity;
  ]
