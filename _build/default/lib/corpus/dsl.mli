(** Shared building blocks for the corpus system models. *)

val checkpoint : Lir.Builder.t -> unit
(** An always-taken conditional branch.  Real code is branch-dense; our
    models compress long stretches of computation into [work]/[io_delay]
    intrinsics, so a checkpoint after each delay restores the timing
    packets a real program would have emitted there, pinning the trace
    clock right before the accesses that follow. *)

val pause : Lir.Builder.t -> ns:int -> unit
(** CPU work followed by a checkpoint. *)

val io_pause : Lir.Builder.t -> ns:int -> unit
(** Off-CPU wait followed by a checkpoint. *)

val probe_word : Lir.Builder.t -> Lir.Value.t -> unit
(** Read the first machine word behind a pointer through a generic
    [i64*] view and feed it to the diagnostics sink.  Models the untyped
    accesses real code makes (serializers, memcpy, crash handlers): they
    alias the typed accesses but move a generic type, giving type-based
    ranking (§4.3) something to down-rank. *)

val probe_global : Lir.Builder.t -> string -> unit
(** [probe_word] on a module global's cell. *)

val mutex_struct : Lir.Irmod.t -> Lir.Ty.t
(** Declare (once) and return the [%struct.Mutex] type for a module. *)

val add_cold_code :
  Lir.Irmod.t -> seed:int -> functions:int -> unit
(** Synthesize never-executed library code (error handling, maintenance
    paths): functions with allocations, field traffic, branches and
    cross-calls.  This is the code a whole-program static analysis must
    chew through but scope restriction skips — the source of Table 4's
    speedups and Figure 7's trace-processing contribution. *)
