let deadlock_evictor () =
  Scenario.two_lock_deadlock
    {
      Scenario.system = "dbcp";
      lock1 = "pool_lock";
      lock2 = "evictor_lock";
      counter1 = "borrowed";
      counter2 = "evicted";
      thread_a = "borrower";
      thread_b = "evictor";
      iters_a = 9;
      iters_b = 6;
      gap_a_ns = 350_000;
      gap_b_ns = 560_000;
      hold_a_ns = 330_000;
      hold_b_ns = 286_000;
      b_one_in = 3;
      cold_seed = 1101;
      cold_functions = 40;
    }

let deadlock_factory () =
  Scenario.two_lock_deadlock
    {
      Scenario.system = "dbcp";
      lock1 = "factory_lock";
      lock2 = "pool_lock2";
      counter1 = "created";
      counter2 = "pooled";
      thread_a = "connection_creator";
      thread_b = "pool_maintainer";
      iters_a = 7;
      iters_b = 5;
      gap_a_ns = 700_000;
      gap_b_ns = 1_150_000;
      hold_a_ns = 748_000;
      hold_b_ns = 616_000;
      b_one_in = 3;
      cold_seed = 1102;
      cold_functions = 40;
    }

let order_pool_close () =
  Scenario.teardown_order
    {
      Scenario.system = "dbcp";
      struct_name = "IdleConns";
      global_name = "idle_list";
      worker_name = "returner";
      teardown_name = "pool_closer";
      retire = `Null;
      items = 11;
      item_gap_ns = 270_000;
      cleanup_slow_ns = 930_000;
      cleanup_fast_ns = 75_000;
      grace_ns = 450_000;
      cold_seed = 1103;
      cold_functions = 40;
    }

let atomicity_borrow () =
  Scenario.publish_clear_use
    {
      Scenario.system = "dbcp";
      struct_name = "PooledConn";
      global_name = "checkout_slot";
      worker_name = "borrower";
      sweeper_name = "abandoned_remover";
      iterations = 10;
      work_gap_ns = 440_000;
      sweep_gap_ns = 610_000;
      sweep_one_in = 3;
      long_ns = 220_000;
      short_ns = 17_000;
      long_one_in = 5;
      cold_seed = 1104;
      cold_functions = 40;
    }

let mk id tracker kind description delta build =
  {
    Bug.id;
    system = "dbcp";
    tracker_id = tracker;
    kind;
    description;
    java = true;
    expected_delta_us = delta;
    build;
    entry = "main";
  }

let bugs =
  [
    mk "dbcp-1" "44" Bug.Deadlock
      "borrow nests pool then evictor locks; the evictor nests them the \
       other way"
      140.0 deadlock_evictor;
    mk "dbcp-2" "N/A" Bug.Deadlock
      "connection creation nests factory then pool locks; maintenance \
       nests them the other way"
      330.0 deadlock_factory;
    mk "dbcp-3" "N/A" Bug.Order_violation
      "pool close nulls the idle list while a return is in flight"
      380.0 order_pool_close;
    mk "dbcp-4" "N/A" Bug.Atomicity_violation
      "borrower publishes the checked-out connection and re-reads the \
       slot; the abandoned-connection remover clears it in between"
      240.0 atomicity_borrow;
  ]
