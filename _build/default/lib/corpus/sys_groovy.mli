(** Model of Apache Groovy's runtime: the metaclass registry and call-site
    method cache.  Three corpus bugs (hypothesis study only). *)

val bugs : Bug.t list
