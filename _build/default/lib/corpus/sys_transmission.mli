(** Model of Transmission (~60 KLOC BitTorrent client): torrents with
    per-torrent state, a session with shared bandwidth accounting, tracker
    announces and peer I/O.  Four corpus bugs. *)

val bugs : Bug.t list
