lib/analysis/pointsto.mli: Lir Memobj
