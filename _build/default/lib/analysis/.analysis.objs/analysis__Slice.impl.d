lib/analysis/slice.ml: Hashtbl Int Lir List Memobj Option Pointsto Queue Set
