lib/analysis/memobj.mli: Set
