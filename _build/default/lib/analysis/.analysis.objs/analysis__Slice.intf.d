lib/analysis/slice.mli: Lir Pointsto
