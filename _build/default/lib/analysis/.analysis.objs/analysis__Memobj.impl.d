lib/analysis/memobj.ml: Printf Set Stdlib
