lib/analysis/pointsto.ml: Hashtbl Int Lir List Map Memobj Option Queue Set Stdlib String
