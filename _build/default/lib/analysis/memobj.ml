type t =
  | Global of string
  | Stack of int
  | Heap of int
  | Func of string
  | Field of t * int

let compare = Stdlib.compare
let equal a b = compare a b = 0

let rec to_string = function
  | Global g -> "@" ^ g
  | Stack iid -> Printf.sprintf "stack#%d" iid
  | Heap iid -> Printf.sprintf "heap#%d" iid
  | Func f -> "fn:" ^ f
  | Field (b, n) -> Printf.sprintf "%s.%d" (to_string b) n

let rec base = function
  | Field (b, _) -> base b
  | (Global _ | Stack _ | Heap _ | Func _) as o -> o

let rec is_prefix a b =
  equal a b
  || match b with Field (b', _) -> is_prefix a b' | Global _ | Stack _ | Heap _ | Func _ -> false

let overlaps a b = is_prefix a b || is_prefix b a

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let sets_overlap s1 s2 =
  Set.exists (fun a -> Set.exists (fun b -> overlaps a b) s2) s1
