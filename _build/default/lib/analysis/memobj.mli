(** Abstract memory objects for the points-to analysis: one object per
    allocation site (global, alloca, malloc call), refined by struct field
    (field-sensitive); array elements collapse onto their array. *)

type t =
  | Global of string
  | Stack of int  (** iid of the alloca *)
  | Heap of int  (** iid of the malloc call site *)
  | Func of string  (** a function, for function pointers *)
  | Field of t * int  (** field [n] of a base object *)

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string

val base : t -> t
(** Strip [Field] wrappers down to the allocation site. *)

val overlaps : t -> t -> bool
(** Whether two objects can share memory: equal, or one is a field path
    inside the other (freeing or locking a whole struct touches all its
    fields). *)

module Set : Set.S with type elt = t

val sets_overlap : Set.t -> Set.t -> bool
(** Some pair across the two sets overlaps. *)
