module ISet = Set.Make (Int)

(* Pre-computed dependence indices for one module. *)
type index = {
  def_of_reg : (int, int) Hashtbl.t; (* rid -> defining iid *)
  stores_to_obj : (Memobj.t, int list) Hashtbl.t; (* base object -> store iids *)
  callers_of : (string, (int * Lir.Value.t list) list) Hashtbl.t;
      (* callee -> (call iid, args) *)
  rets_of : (string, int list) Hashtbl.t; (* fname -> ret iids *)
  param_pos : (int, string * int) Hashtbl.t; (* param rid -> (fname, index) *)
  block_terms : (string * string, int) Hashtbl.t; (* (fname, label) -> iid *)
  cfgs : (string, Lir.Cfg.t) Hashtbl.t;
}

let build_index m ~points_to =
  let idx =
    {
      def_of_reg = Hashtbl.create 256;
      stores_to_obj = Hashtbl.create 64;
      callers_of = Hashtbl.create 32;
      rets_of = Hashtbl.create 32;
      param_pos = Hashtbl.create 32;
      block_terms = Hashtbl.create 64;
      cfgs = Hashtbl.create 16;
    }
  in
  List.iter
    (fun (f : Lir.Func.t) ->
      Hashtbl.replace idx.cfgs f.Lir.Func.fname (Lir.Cfg.of_func f);
      List.iteri
        (fun n (p : Lir.Value.reg) ->
          Hashtbl.replace idx.param_pos p.Lir.Value.rid (f.Lir.Func.fname, n))
        f.Lir.Func.params)
    (Lir.Irmod.funcs m);
  Lir.Irmod.iter_instrs m (fun f b i ->
      (match Lir.Instr.defined_reg i with
      | Some r -> Hashtbl.replace idx.def_of_reg r.Lir.Value.rid i.Lir.Instr.iid
      | None -> ());
      (match List.rev b.Lir.Block.instrs with
      | last :: _ when last.Lir.Instr.iid = i.Lir.Instr.iid ->
        Hashtbl.replace idx.block_terms
          (f.Lir.Func.fname, b.Lir.Block.label)
          i.Lir.Instr.iid
      | _ -> ());
      match i.Lir.Instr.kind with
      | Lir.Instr.Store _ ->
        let objs = Pointsto.accessed_objects points_to i in
        Memobj.Set.iter
          (fun o ->
            let base = Memobj.base o in
            let cur =
              Option.value ~default:[] (Hashtbl.find_opt idx.stores_to_obj base)
            in
            Hashtbl.replace idx.stores_to_obj base (i.Lir.Instr.iid :: cur))
          objs
      | Lir.Instr.Call { callee; args; _ } ->
        let cur =
          Option.value ~default:[] (Hashtbl.find_opt idx.callers_of callee)
        in
        Hashtbl.replace idx.callers_of callee ((i.Lir.Instr.iid, args) :: cur)
      | Lir.Instr.Ret _ ->
        let cur =
          Option.value ~default:[] (Hashtbl.find_opt idx.rets_of f.Lir.Func.fname)
        in
        Hashtbl.replace idx.rets_of f.Lir.Func.fname (i.Lir.Instr.iid :: cur)
      | _ -> ());
  idx

let backward_slice_depths m ~points_to ~from_iid =
  Lir.Irmod.layout m;
  let idx = build_index m ~points_to in
  let depth_of = Hashtbl.create 64 in
  let work = Queue.create () in
  let push ~depth iid =
    if not (Hashtbl.mem depth_of iid) then begin
      Hashtbl.add depth_of iid depth;
      Queue.add (iid, depth) work
    end
  in
  push ~depth:0 from_iid;
  let push_reg_def ~depth (r : Lir.Value.reg) =
    match Hashtbl.find_opt idx.def_of_reg r.Lir.Value.rid with
    | Some def -> push ~depth def
    | None -> (
      (* A parameter: depend on every caller's matching argument def. *)
      match Hashtbl.find_opt idx.param_pos r.Lir.Value.rid with
      | None -> ()
      | Some (fname, n) ->
        List.iter
          (fun (call_iid, args) ->
            push ~depth call_iid;
            match List.nth_opt args n with
            | Some (Lir.Value.Reg ar) -> (
              match Hashtbl.find_opt idx.def_of_reg ar.Lir.Value.rid with
              | Some def -> push ~depth def
              | None -> ())
            | Some _ | None -> ())
          (Option.value ~default:[] (Hashtbl.find_opt idx.callers_of fname)))
  in
  while not (Queue.is_empty work) do
    let iid, d = Queue.pop work in
    let depth = d + 1 in
    let i = Lir.Irmod.instr_by_iid m iid in
    let f, b = Lir.Irmod.location_of_iid m iid in
    (* Data dependences through registers. *)
    List.iter
      (fun v ->
        match (v : Lir.Value.t) with
        | Lir.Value.Reg r -> push_reg_def ~depth r
        | Lir.Value.Imm _ | Lir.Value.Global _ | Lir.Value.Null _
        | Lir.Value.Fn_ref _ ->
          ())
      (Lir.Instr.operands i);
    (* Memory dependences: loads depend on may-aliasing stores. *)
    (match i.Lir.Instr.kind with
    | Lir.Instr.Load _ ->
      let objs = Pointsto.accessed_objects points_to i in
      Memobj.Set.iter
        (fun o ->
          List.iter (push ~depth)
            (Option.value ~default:[]
               (Hashtbl.find_opt idx.stores_to_obj (Memobj.base o))))
        objs
    | Lir.Instr.Call { dst = Some _; callee; _ }
      when not (Lir.Intrinsics.is_intrinsic callee) ->
      (* The result depends on the callee's returns. *)
      List.iter (push ~depth)
        (Option.value ~default:[] (Hashtbl.find_opt idx.rets_of callee))
    | _ -> ());
    (* Control dependence: terminators of predecessor blocks. *)
    (match Hashtbl.find_opt idx.cfgs f.Lir.Func.fname with
    | None -> ()
    | Some cfg ->
      List.iter
        (fun pred ->
          match Hashtbl.find_opt idx.block_terms (f.Lir.Func.fname, pred) with
          | Some term -> push ~depth term
          | None -> ())
        (Lir.Cfg.predecessors cfg b.Lir.Block.label))
  done;
  Hashtbl.fold (fun iid depth acc -> (iid, depth) :: acc) depth_of []
  |> List.sort compare

let backward_slice m ~points_to ~from_iid =
  List.map fst (backward_slice_depths m ~points_to ~from_iid)

let slice_size m ~points_to ~from_iid =
  List.length (backward_slice m ~points_to ~from_iid)
