(** Inclusion-based (Andersen-style) interprocedural points-to analysis,
    following the constraint rules of the paper's Figure 3.

    The analysis is flow-insensitive (§4.2: instruction order across
    threads cannot be trusted in a multithreaded program) and
    field-sensitive for struct accesses.  [scope] restricts constraint
    generation to a subset of instructions — the hybrid analysis passes the
    executed-instruction set from trace processing; the whole-program
    baseline passes everything.  Calls bind arguments to parameters and
    return values to call results context-insensitively; [thread_create]
    binds its argument to the entry function's parameter. *)

type t

val analyze : Lir.Irmod.t -> scope:(int -> bool) -> t
(** [scope iid] decides whether the instruction participates. *)

val analyze_all : Lir.Irmod.t -> t
(** Whole-program analysis ([scope] = always true). *)

val instructions_analyzed : t -> int
val solver_iterations : t -> int

val pts_of_operand : t -> Lir.Value.t -> Memobj.Set.t
(** Objects the operand may point to ([Global g] is the singleton address
    of [g], registers come from the solved constraints). *)

val pts_of_object : t -> Memobj.t -> Memobj.Set.t
(** Objects stored inside the given object's cells. *)

val accessed_objects : t -> Lir.Instr.t -> Memobj.Set.t
(** Objects a load/store may access through its pointer operand, or a
    [mutex_lock]/[mutex_unlock]/[free] call may name through its argument;
    empty for other instructions ([free] counts because releasing an
    object is the racing "write" of use-after-free order violations). *)

val may_alias : t -> Lir.Value.t -> Lir.Value.t -> bool
(** Whether the two pointer operands may reference a common object. *)
