(** Static backward slicing, the core of the Gist baseline (§6.3): the set
    of instructions that could affect a given (failing) instruction through
    data dependences (register def-use, may-aliasing stores reaching
    loads), call bindings, and control dependences (terminators of blocks
    that decide whether the dependent code runs). *)

val backward_slice :
  Lir.Irmod.t -> points_to:Pointsto.t -> from_iid:int -> int list
(** Iids in the slice, including [from_iid]; order unspecified. *)

val backward_slice_depths :
  Lir.Irmod.t -> points_to:Pointsto.t -> from_iid:int -> (int * int) list
(** Slice iids paired with their dependence distance from [from_iid]
    (0 = the failing instruction itself).  Gist's iterative refinement
    instruments the slice one depth ring at a time. *)

val slice_size : Lir.Irmod.t -> points_to:Pointsto.t -> from_iid:int -> int
