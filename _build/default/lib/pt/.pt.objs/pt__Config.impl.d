lib/pt/config.ml:
