lib/pt/decoder.mli: Config Lir
