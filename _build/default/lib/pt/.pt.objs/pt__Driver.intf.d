lib/pt/driver.mli: Config Sim Tracer
