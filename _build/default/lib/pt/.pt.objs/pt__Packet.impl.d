lib/pt/packet.ml: Buffer Bytes Char List Printf Snorlax_util
