lib/pt/packet.mli: Buffer
