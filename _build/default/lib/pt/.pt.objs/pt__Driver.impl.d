lib/pt/driver.ml: Config Lir List Sim Tracer
