lib/pt/decoder.ml: Array Bytes Config Lir List Packet Printf
