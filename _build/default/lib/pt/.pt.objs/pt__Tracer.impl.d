lib/pt/tracer.ml: Buffer Config Hashtbl List Packet Sim Snorlax_util
