lib/pt/tracer.mli: Config Sim
