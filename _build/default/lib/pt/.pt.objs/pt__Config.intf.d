lib/pt/config.mli:
