(** The client-side trace driver (the paper's 3773-LOC loadable kernel
    module, §5): owns the per-thread tracer, snapshots every ring buffer on
    demand (a failure) or when execution reaches a watched pc (the
    hardware-breakpoint path used to collect traces from successful
    executions at the previous failure location, step 8 of Figure 2). *)

type snapshot = {
  traces : (int * bytes) list;  (** (tid, surviving ring bytes) *)
  at_time_ns : float;
  trigger_pc : int option;  (** the watched pc that fired, if any *)
  trigger_tid : int option;  (** the thread that hit the watchpoint *)
}

type t

val create : ?config:Config.t -> unit -> t

val hooks : t -> Sim.Hooks.t
(** Plug into [Sim.Interp.config.hooks]. *)

val set_watchpoints : t -> pcs:int list -> unit
(** Snapshot whenever any of [pcs] executes, keeping the latest hit (the
    longest history).  The head of [pcs] is the failure pc itself and
    takes precedence; the rest are the paper's predecessor-block
    fallbacks, used only while the primary has never fired. *)

val watch_snapshot : t -> snapshot option
(** The snapshot captured by the watchpoint, if it fired. *)

val snapshot_now : t -> at_time_ns:float -> snapshot
(** Dump all buffers immediately (the failure path). *)

val tracer : t -> Tracer.t
