(** The per-thread control-flow tracer: turns the simulator's control
    events into packet bytes in per-thread ring buffers and charges the
    traced thread the (small) virtual-time cost of doing so.

    This module is the mechanism behind the coarse-interleaving story: it
    records *when* control flow happened at packet granularity, nothing
    finer, and its cost model is what Figures 8 and 9 measure. *)

type t

val create : config:Config.t -> t

val on_control : t -> time:float -> Sim.Hooks.control_event -> float
(** Feed one control event; returns the virtual-time cost in ns.  Suitable
    for use as [Sim.Hooks.on_control]. *)

val snapshot : t -> (int * bytes) list
(** Current (tid, surviving bytes) for every thread buffer, oldest byte
    first.  Non-destructive, like dumping the PT ring from the driver. *)

val bytes_written : t -> int
(** Total trace bytes ever produced across all threads. *)

val events_seen : t -> int
val timing_packets : t -> int
val thread_count : t -> int
