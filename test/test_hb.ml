(* Tests for the happens-before oracle: vector-clock lattice laws
   (qcheck), conflict classification (racy vs lock-ordered vs enforced),
   free-range conflicts, path reporting and lock-order facts. *)

module Hb = Analysis.Hb

(* --- vector-clock laws --------------------------------------------------- *)

(* A clock built from a random tick script: each (tid, n) applies n ticks
   to component tid. *)
let clock_of_script s =
  List.fold_left
    (fun vc (tid, n) ->
      let rec go vc n = if n = 0 then vc else go (Hb.Vc.tick tid vc) (n - 1) in
      go vc n)
    Hb.Vc.empty s

let script_arb =
  QCheck.(small_list (pair (int_range 0 4) (int_range 1 3)))

let qcheck_leq_reflexive =
  QCheck.Test.make ~name:"Vc.leq is reflexive" ~count:300 script_arb (fun s ->
      let a = clock_of_script s in
      Hb.Vc.leq a a)

let qcheck_leq_transitive =
  QCheck.Test.make ~name:"Vc.leq is transitive" ~count:300
    QCheck.(triple script_arb script_arb script_arb)
    (fun (s1, s2, s3) ->
      let a = clock_of_script s1 in
      let b = Hb.Vc.join a (clock_of_script s2) in
      let c = Hb.Vc.join b (clock_of_script s3) in
      (* a <= b and b <= c by construction; transitivity demands a <= c *)
      Hb.Vc.leq a b && Hb.Vc.leq b c && Hb.Vc.leq a c)

let qcheck_join_upper_bound =
  QCheck.Test.make ~name:"Vc.join is an upper bound" ~count:300
    QCheck.(pair script_arb script_arb)
    (fun (s1, s2) ->
      let a = clock_of_script s1 and b = clock_of_script s2 in
      let j = Hb.Vc.join a b in
      Hb.Vc.leq a j && Hb.Vc.leq b j)

let qcheck_join_least =
  QCheck.Test.make ~name:"Vc.join is the least upper bound" ~count:300
    QCheck.(triple script_arb script_arb script_arb)
    (fun (s1, s2, s3) ->
      let a = clock_of_script s1 and b = clock_of_script s2 in
      (* any c above both a and b must be above their join *)
      let c = Hb.Vc.join (Hb.Vc.join a b) (clock_of_script s3) in
      QCheck.assume (Hb.Vc.leq a c && Hb.Vc.leq b c);
      Hb.Vc.leq (Hb.Vc.join a b) c)

let qcheck_join_commutative =
  QCheck.Test.make ~name:"Vc.join is commutative (order-equal)" ~count:300
    QCheck.(pair script_arb script_arb)
    (fun (s1, s2) ->
      let a = clock_of_script s1 and b = clock_of_script s2 in
      Hb.Vc.leq (Hb.Vc.join a b) (Hb.Vc.join b a)
      && Hb.Vc.leq (Hb.Vc.join b a) (Hb.Vc.join a b))

let qcheck_tick_strict =
  QCheck.Test.make ~name:"Vc.tick strictly increases" ~count:300
    QCheck.(pair script_arb (int_range 0 4))
    (fun (s, tid) ->
      let a = clock_of_script s in
      let t = Hb.Vc.tick tid a in
      Hb.Vc.leq a t && (not (Hb.Vc.leq t a))
      && Hb.Vc.get t tid = Hb.Vc.get a tid + 1)

let test_vc_empty () =
  Alcotest.(check int) "empty component" 0 (Hb.Vc.get Hb.Vc.empty 3);
  Alcotest.(check bool) "empty leq anything" true
    (Hb.Vc.leq Hb.Vc.empty (clock_of_script [ (1, 2) ]))

(* --- engine scenarios ---------------------------------------------------- *)

let acc tid iid addr kind =
  Hb.Access { tid; iid; addr; size = 8; kind }

let feed_all es =
  let t = Hb.create () in
  List.iter (Hb.feed t) es;
  t

let check_ordering msg expected t a b =
  match Hb.pair_verdict t a b with
  | Hb.Conflict { ordering; _ } when ordering = expected -> ()
  | Hb.Conflict { ordering; _ } ->
    Alcotest.failf "%s: got %s" msg
      (match ordering with
      | Hb.Racy -> "racy"
      | Hb.Lock_ordered -> "lock-ordered"
      | Hb.Enforced -> "enforced")
  | Hb.No_conflict -> Alcotest.failf "%s: got no-conflict" msg

let test_racy_pair () =
  let t =
    feed_all
      [
        Hb.Fork { parent = 0; child = 1; iid = 1 };
        acc 0 10 100 Hb.Write;
        acc 1 20 100 Hb.Write;
      ]
  in
  check_ordering "unsynchronized writes" Hb.Racy t 10 20;
  match Hb.races t with
  | [ r ] ->
    Alcotest.(check (pair int int)) "race pair" (10, 20) (r.Hb.a_iid, r.Hb.b_iid)
  | rs -> Alcotest.failf "expected one race, got %d" (List.length rs)

let test_fork_enforces () =
  let t =
    feed_all
      [
        acc 0 10 100 Hb.Write;
        Hb.Fork { parent = 0; child = 1; iid = 1 };
        acc 1 20 100 Hb.Read;
      ]
  in
  check_ordering "write before fork" Hb.Enforced t 10 20;
  Alcotest.(check int) "no races" 0 (Hb.race_count t);
  match Hb.pair_verdict t 10 20 with
  | Hb.Conflict { path; _ } ->
    Alcotest.(check bool) "path is reported" true (path <> [])
  | Hb.No_conflict -> Alcotest.fail "conflict expected"

let test_join_enforces () =
  let t =
    feed_all
      [
        Hb.Fork { parent = 0; child = 1; iid = 1 };
        acc 1 20 100 Hb.Write;
        Hb.Join { tid = 0; target = 1; iid = 2 };
        acc 0 10 100 Hb.Read;
      ]
  in
  check_ordering "join orders child work" Hb.Enforced t 10 20

let test_cond_enforces () =
  let t =
    feed_all
      [
        Hb.Fork { parent = 0; child = 1; iid = 1 };
        acc 0 10 100 Hb.Write;
        Hb.Cond_wake { waker = 0; woken = 1; cond = 900 };
        acc 1 20 100 Hb.Read;
      ]
  in
  check_ordering "signal orders the write" Hb.Enforced t 10 20

let test_lock_ordered_is_not_enforced () =
  let t =
    feed_all
      [
        Hb.Fork { parent = 0; child = 1; iid = 1 };
        Hb.Acquire { tid = 0; iid = 2; lock = 500 };
        acc 0 10 100 Hb.Write;
        Hb.Release { tid = 0; iid = 3; lock = 500 };
        Hb.Acquire { tid = 1; iid = 12; lock = 500 };
        acc 1 20 100 Hb.Write;
        Hb.Release { tid = 1; iid = 13; lock = 500 };
      ]
  in
  (* The lock serialized this run, but nothing stops the opposite grant
     order: the pair is a bug-pattern candidate, not enforced. *)
  check_ordering "critical sections" Hb.Lock_ordered t 10 20;
  Alcotest.(check int) "lock-ordered is not racy" 0 (Hb.race_count t)

let test_reads_do_not_conflict () =
  let t =
    feed_all
      [
        Hb.Fork { parent = 0; child = 1; iid = 1 };
        acc 0 10 100 Hb.Read;
        acc 1 20 100 Hb.Read;
      ]
  in
  (match Hb.pair_verdict t 10 20 with
  | Hb.No_conflict -> ()
  | Hb.Conflict _ -> Alcotest.fail "two reads cannot conflict");
  Alcotest.(check int) "no races" 0 (Hb.race_count t)

let test_free_conflicts_with_inner_access () =
  let t =
    feed_all
      [
        Hb.Fork { parent = 0; child = 1; iid = 1 };
        Hb.Free { tid = 0; iid = 10; addr = 100; size = 16 };
        acc 1 20 108 Hb.Read;
      ]
  in
  check_ordering "read inside freed block" Hb.Racy t 10 20

let test_disjoint_addresses_no_conflict () =
  let t =
    feed_all
      [
        Hb.Fork { parent = 0; child = 1; iid = 1 };
        acc 0 10 100 Hb.Write;
        acc 1 20 200 Hb.Write;
      ]
  in
  match Hb.pair_verdict t 10 20 with
  | Hb.No_conflict -> ()
  | Hb.Conflict _ -> Alcotest.fail "disjoint addresses cannot conflict"

let test_races_sorted_and_deduped () =
  (* Two dynamic instances of the same static pair: one race entry. *)
  let t =
    feed_all
      [
        Hb.Fork { parent = 0; child = 1; iid = 1 };
        acc 0 30 100 Hb.Write;
        acc 1 20 100 Hb.Write;
        acc 0 30 100 Hb.Write;
        acc 1 20 100 Hb.Write;
        acc 0 10 200 Hb.Write;
        acc 1 40 200 Hb.Write;
      ]
  in
  let rs = Hb.races t in
  Alcotest.(check (list (pair int int)))
    "sorted, duplicate-free"
    [ (10, 40); (20, 30) ]
    (List.map (fun (r : Hb.race) -> (r.Hb.a_iid, r.Hb.b_iid)) rs)

let test_lock_edges () =
  let t =
    feed_all
      [
        Hb.Acquire { tid = 0; iid = 2; lock = 500 };
        Hb.Lock_attempt { tid = 0; iid = 5; lock = 600 };
      ]
  in
  Alcotest.(check bool) "hold-while-acquiring fact recorded" true
    (List.exists
       (fun (tid, held, held_iid, wanted, wanted_iid) ->
         tid = 0 && held = 500 && held_iid = 2 && wanted = 600
         && wanted_iid = 5)
       (Hb.lock_edges t))

let tests =
  [
    ( "hb.vc",
      [
        Alcotest.test_case "empty clock" `Quick test_vc_empty;
        QCheck_alcotest.to_alcotest qcheck_leq_reflexive;
        QCheck_alcotest.to_alcotest qcheck_leq_transitive;
        QCheck_alcotest.to_alcotest qcheck_join_upper_bound;
        QCheck_alcotest.to_alcotest qcheck_join_least;
        QCheck_alcotest.to_alcotest qcheck_join_commutative;
        QCheck_alcotest.to_alcotest qcheck_tick_strict;
      ] );
    ( "hb.engine",
      [
        Alcotest.test_case "racy pair" `Quick test_racy_pair;
        Alcotest.test_case "fork enforces" `Quick test_fork_enforces;
        Alcotest.test_case "join enforces" `Quick test_join_enforces;
        Alcotest.test_case "cond enforces" `Quick test_cond_enforces;
        Alcotest.test_case "lock-ordered is weaker" `Quick
          test_lock_ordered_is_not_enforced;
        Alcotest.test_case "reads do not conflict" `Quick
          test_reads_do_not_conflict;
        Alcotest.test_case "free is a range write" `Quick
          test_free_conflicts_with_inner_access;
        Alcotest.test_case "disjoint addresses" `Quick
          test_disjoint_addresses_no_conflict;
        Alcotest.test_case "races sorted and deduped" `Quick
          test_races_sorted_and_deduped;
        Alcotest.test_case "lock edges" `Quick test_lock_edges;
      ] );
  ]
