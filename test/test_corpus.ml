(* Corpus-wide invariants: every bug builds a verifiable module with valid
   ground truth, the registry is consistent with the paper's study set,
   and every bug both reproduces and completes within a reasonable number
   of seeds. *)

let all = Corpus.Registry.all

let test_corpus_size () =
  Alcotest.(check int) "54 bugs as in the paper" 54 (List.length all);
  Alcotest.(check int) "13 systems" 13 (List.length Corpus.Registry.systems);
  Alcotest.(check int) "11-bug evaluation set" 11
    (List.length Corpus.Registry.eval_set)

let test_kind_mix () =
  let count kind = List.length (Corpus.Registry.by_kind kind) in
  Alcotest.(check int) "sums to 54" 54
    (count Corpus.Bug.Deadlock
    + count Corpus.Bug.Order_violation
    + count Corpus.Bug.Atomicity_violation);
  Alcotest.(check bool) "all three kinds present" true
    (count Corpus.Bug.Deadlock > 0
    && count Corpus.Bug.Order_violation > 0
    && count Corpus.Bug.Atomicity_violation > 0)

let test_ids_unique () =
  let ids = List.map (fun b -> b.Corpus.Bug.id) all in
  Alcotest.(check int) "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_eval_set_is_native () =
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (b.Corpus.Bug.id ^ " is a C/C++ system")
        false b.Corpus.Bug.java)
    Corpus.Registry.eval_set

let test_find_and_by_system () =
  let b = Corpus.Registry.find_exn "mysql-7" in
  Alcotest.(check string) "found" "mysql-7" b.Corpus.Bug.id;
  Alcotest.(check int) "mysql has 9" 9
    (List.length (Corpus.Registry.by_system "mysql"));
  Alcotest.(check bool) "find returns Some" true
    (match Corpus.Registry.find "mysql-7" with
    | Some b -> String.equal b.Corpus.Bug.id "mysql-7"
    | None -> false);
  Alcotest.(check bool) "unknown is None" true
    (Corpus.Registry.find "nope-1" = None);
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Corpus.Registry.find_exn "nope-1");
       false
     with Not_found -> true)

let test_every_bug_builds_and_verifies () =
  List.iter
    (fun bug ->
      let built = bug.Corpus.Bug.build () in
      Alcotest.(check int)
        (bug.Corpus.Bug.id ^ " verifies")
        0
        (List.length (Lir.Verify.check built.Corpus.Bug.m));
      (* Ground truth references valid, distinct instructions. *)
      let gt = built.Corpus.Bug.ground_truth in
      Alcotest.(check bool) (bug.Corpus.Bug.id ^ " gt nonempty") true (gt <> []);
      Alcotest.(check int)
        (bug.Corpus.Bug.id ^ " gt distinct")
        (List.length gt)
        (List.length (List.sort_uniq compare gt));
      List.iter
        (fun iid ->
          Alcotest.(check bool)
            (Printf.sprintf "%s gt iid %d resolvable" bug.Corpus.Bug.id iid)
            true
            (match Lir.Irmod.instr_by_iid built.Corpus.Bug.m iid with
            | _ -> true
            | exception Not_found -> false))
        gt;
      (* Delta pairs reference ground-truth members. *)
      List.iter
        (fun (a, b) ->
          Alcotest.(check bool)
            (bug.Corpus.Bug.id ^ " delta pair in gt")
            true
            (List.mem a gt && List.mem b gt))
        built.Corpus.Bug.delta_pairs)
    all

let test_builds_are_deterministic () =
  let bug = Corpus.Registry.find_exn "pbzip2-1" in
  let b1 = bug.Corpus.Bug.build () in
  let b2 = bug.Corpus.Bug.build () in
  Alcotest.(check (list int)) "same ground truth iids"
    b1.Corpus.Bug.ground_truth b2.Corpus.Bug.ground_truth;
  Alcotest.(check int) "same instruction count"
    (Lir.Irmod.instr_count b1.Corpus.Bug.m)
    (Lir.Irmod.instr_count b2.Corpus.Bug.m)

let test_cold_code_present () =
  (* The whole-program analysis must have substantially more code than
     any execution touches (Table 4's raison d'etre). *)
  List.iter
    (fun bug ->
      let built = bug.Corpus.Bug.build () in
      Alcotest.(check bool)
        (bug.Corpus.Bug.id ^ " has cold code")
        true
        (Lir.Irmod.instr_count built.Corpus.Bug.m > 300))
    Corpus.Registry.eval_set

let reproduction_outcomes bug ~seeds =
  let built = bug.Corpus.Bug.build () in
  let fails = ref 0 and completes = ref 0 in
  for seed = 1 to seeds do
    match
      (Corpus.Runner.run_untraced ~built ~entry:bug.Corpus.Bug.entry ~seed ())
        .Sim.Interp.outcome
    with
    | Sim.Interp.Failed _ -> incr fails
    | Sim.Interp.Completed -> incr completes
    | Sim.Interp.Stuck | Sim.Interp.Fuel_exhausted -> ()
  done;
  (!fails, !completes)

let test_every_bug_reproduces () =
  List.iter
    (fun bug ->
      let fails, completes = reproduction_outcomes bug ~seeds:60 in
      Alcotest.(check bool)
        (bug.Corpus.Bug.id ^ " manifests")
        true (fails > 0);
      Alcotest.(check bool)
        (bug.Corpus.Bug.id ^ " also completes")
        true (completes > 0))
    all

let test_failure_kind_matches_bug_kind () =
  List.iter
    (fun bug ->
      let built = bug.Corpus.Bug.build () in
      let rec first_failure seed =
        if seed > 200 then None
        else
          match
            (Corpus.Runner.run_untraced ~built ~entry:bug.Corpus.Bug.entry ~seed ())
              .Sim.Interp.outcome
          with
          | Sim.Interp.Failed { failure; _ } -> Some failure
          | _ -> first_failure (seed + 1)
      in
      match first_failure 1 with
      | None -> Alcotest.fail (bug.Corpus.Bug.id ^ " did not reproduce")
      | Some failure -> (
        match bug.Corpus.Bug.kind, failure with
        | Corpus.Bug.Deadlock, Sim.Failure.Deadlock _ -> ()
        | (Corpus.Bug.Order_violation | Corpus.Bug.Atomicity_violation),
          (Sim.Failure.Crash _ | Sim.Failure.Assert_fail _) ->
          ()
        | _ ->
          Alcotest.fail
            (Printf.sprintf "%s failed with unexpected kind: %s"
               bug.Corpus.Bug.id
               (Sim.Failure.to_string failure))))
    Corpus.Registry.eval_set

let test_runner_collect_shape () =
  let bug = Corpus.Registry.find_exn "pbzip2-1" in
  match Corpus.Runner.collect bug ~success_per_failing:4 () with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
    Alcotest.(check int) "one failing" 1 (List.length c.Corpus.Runner.failing);
    Alcotest.(check int) "four successes" 4
      (List.length c.Corpus.Runner.successful);
    Alcotest.(check bool) "needed at least one run" true
      (c.Corpus.Runner.runs_needed >= 1);
    List.iter
      (fun (s : Snorlax_core.Report.success_report) ->
        Alcotest.(check bool) "success traces nonempty" true
          (s.Snorlax_core.Report.s_traces <> []))
      c.Corpus.Runner.successful

let test_watch_pcs_start_with_failure_pc () =
  let bug = Corpus.Registry.find_exn "sqlite-3" in
  match Corpus.Runner.collect bug ~success_per_failing:1 () with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
    let m = c.Corpus.Runner.built.Corpus.Bug.m in
    let failing = List.hd c.Corpus.Runner.failing in
    let pcs = Corpus.Runner.watch_pcs_for m failing in
    let anchor = Snorlax_core.Report.failing_anchor_iid failing in
    Alcotest.(check int) "head is failing pc"
      (Lir.Irmod.instr_by_iid m anchor).Lir.Instr.pc (List.hd pcs)

let tests =
  [
    ( "corpus.registry",
      [
        Alcotest.test_case "size" `Quick test_corpus_size;
        Alcotest.test_case "kind mix" `Quick test_kind_mix;
        Alcotest.test_case "ids unique" `Quick test_ids_unique;
        Alcotest.test_case "eval set native" `Quick test_eval_set_is_native;
        Alcotest.test_case "find/by_system" `Quick test_find_and_by_system;
      ] );
    ( "corpus.programs",
      [
        Alcotest.test_case "all build and verify" `Slow
          test_every_bug_builds_and_verifies;
        Alcotest.test_case "builds deterministic" `Quick test_builds_are_deterministic;
        Alcotest.test_case "cold code present" `Quick test_cold_code_present;
      ] );
    ( "corpus.reproduction",
      [
        Alcotest.test_case "every bug reproduces" `Slow test_every_bug_reproduces;
        Alcotest.test_case "failure kinds match" `Slow
          test_failure_kind_matches_bug_kind;
        Alcotest.test_case "collect shape" `Quick test_runner_collect_shape;
        Alcotest.test_case "watch pcs" `Quick test_watch_pcs_start_with_failure_pc;
      ] );
  ]
