(* Tests for the Lazy Diagnosis pipeline stages: trace processing, type
   ranking, pattern generation and presence, statistical scoring, anchor
   resolution and the accuracy metrics. *)

module Core = Snorlax_core
module Tp = Core.Trace_processing
module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty

(* --- synthetic trace-processing values ---------------------------------- *)

(* Build a Tp.t directly from an event list (tid, seq, iid, t_lo, t_hi). *)
let tp_of_events events =
  let by_iid_l = Hashtbl.create 16 in
  List.iter
    (fun (tid, seq, iid, t_lo, t_hi) ->
      let e = { Tp.tid; seq; iid; pc = iid * 4; t_lo; t_hi = Some t_hi } in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_iid_l iid) in
      Hashtbl.replace by_iid_l iid (cur @ [ e ]))
    events;
  let by_iid = Hashtbl.create 16 in
  Hashtbl.iter (fun iid l -> Hashtbl.add by_iid iid (Array.of_list l)) by_iid_l;
  let executed =
    List.fold_left
      (fun acc (_, _, iid, _, _) -> Tp.Iset.add iid acc)
      Tp.Iset.empty events
  in
  {
    Tp.executed;
    events =
      Array.of_list
        (List.map
           (fun (tid, seq, iid, t_lo, t_hi) ->
             { Tp.tid; seq; iid; pc = iid * 4; t_lo; t_hi = Some t_hi })
           events);
    events_by_iid = by_iid;
    lost_bytes = 0;
    desynced_tids = [];
  }

let ev tid seq iid t_lo t_hi = (tid, seq, iid, t_lo, t_hi)

let test_executes_before_cross_thread () =
  let tp = tp_of_events [ ev 1 0 10 100 110; ev 2 0 20 200 210 ] in
  let a = List.hd (Tp.instances tp ~iid:10) in
  let b = List.hd (Tp.instances tp ~iid:20) in
  Alcotest.(check bool) "disjoint intervals order" true (Tp.executes_before a b);
  Alcotest.(check bool) "not backwards" false (Tp.executes_before b a)

let test_executes_before_overlap_unordered () =
  let tp = tp_of_events [ ev 1 0 10 100 250; ev 2 0 20 200 300 ] in
  let a = List.hd (Tp.instances tp ~iid:10) in
  let b = List.hd (Tp.instances tp ~iid:20) in
  Alcotest.(check bool) "overlap is unordered ab" false (Tp.executes_before a b);
  Alcotest.(check bool) "overlap is unordered ba" false (Tp.executes_before b a)

let test_executes_before_same_thread_program_order () =
  (* Same thread: sequence numbers order events even with overlapping
     time intervals. *)
  let tp = tp_of_events [ ev 1 0 10 100 400; ev 1 1 20 100 400 ] in
  let a = List.hd (Tp.instances tp ~iid:10) in
  let b = List.hd (Tp.instances tp ~iid:20) in
  Alcotest.(check bool) "program order holds" true (Tp.executes_before a b)

(* --- pattern presence on synthetic traces -------------------------------- *)

let order_pattern =
  Core.Patterns.Order
    { remote_iid = 1; anchor_iid = 2; shape = Core.Patterns.WR }

(* present_in needs a module+points_to only for deadlocks; give it a tiny
   dummy module. *)
let dummy_pta =
  let m = Lir.Irmod.create "dummy" in
  B.define m "main" ~params:[] ~ret:T.Void (fun b -> B.ret_void b);
  Lir.Irmod.layout m;
  (m, Analysis.Pointsto.analyze_all m)

let present p tp =
  let m, pta = dummy_pta in
  Core.Patterns.present_in m ~points_to:pta p tp

let test_order_present () =
  let tp = tp_of_events [ ev 1 0 1 100 110; ev 2 0 2 200 210 ] in
  Alcotest.(check bool) "W before R across threads" true (present order_pattern tp)

let test_order_absent_when_reversed () =
  let tp = tp_of_events [ ev 2 0 2 100 110; ev 1 0 1 200 210 ] in
  Alcotest.(check bool) "R before W is not the pattern" false
    (present order_pattern tp)

let test_order_absent_same_thread () =
  let tp = tp_of_events [ ev 1 0 1 100 110; ev 1 1 2 200 210 ] in
  Alcotest.(check bool) "same thread does not race" false
    (present order_pattern tp)

let atomicity_pattern ~guards =
  Core.Patterns.Atomicity
    {
      local_iid = 1;
      remote_iid = 2;
      anchor_iid = 3;
      shape = Core.Patterns.RWR;
      guard_writes = guards;
    }

let test_atomicity_present () =
  let tp =
    tp_of_events
      [ ev 1 0 1 100 110; ev 2 0 2 200 210; ev 1 1 3 300 310 ]
  in
  Alcotest.(check bool) "sandwich detected" true
    (present (atomicity_pattern ~guards:[]) tp)

let test_atomicity_absent_remote_outside () =
  let tp =
    tp_of_events
      [ ev 2 0 2 50 60; ev 1 0 1 100 110; ev 1 1 3 300 310 ]
  in
  Alcotest.(check bool) "remote before both locals" false
    (present (atomicity_pattern ~guards:[]) tp)

let test_atomicity_adjacency_required () =
  (* A second local instance of the anchor between l and a breaks
     adjacency. *)
  let tp =
    tp_of_events
      [
        ev 1 0 1 100 110;
        ev 2 0 2 200 210;
        ev 1 1 3 250 260;
        ev 1 2 3 300 310;
      ]
  in
  (* Pair (l=seq0, a=seq2) is not adjacent (a at seq1 lies between), but
     pair (l=seq0, a=seq1) IS sandwiched: presence still holds. *)
  Alcotest.(check bool) "adjacent pair found" true
    (present (atomicity_pattern ~guards:[]) tp);
  (* Now move the remote write after the first anchor: only the
     non-adjacent pair would qualify, so presence must fail. *)
  let tp2 =
    tp_of_events
      [
        ev 1 0 1 100 110;
        ev 1 1 3 150 160;
        ev 2 0 2 200 210;
        ev 1 2 3 300 310;
      ]
  in
  Alcotest.(check bool) "non-adjacent pair rejected" false
    (present (atomicity_pattern ~guards:[]) tp2)

let test_atomicity_guard_write () =
  (* A guarded write between the remote write and the anchor means the
     anchor did not observe the remote value. *)
  let tp =
    tp_of_events
      [
        ev 1 0 1 100 110;
        ev 2 0 2 200 210;
        ev 2 1 9 250 260;
        (* guard write overwrites *)
        ev 1 1 3 300 310;
      ]
  in
  Alcotest.(check bool) "clobbered remote does not count" false
    (present (atomicity_pattern ~guards:[ 9 ]) tp);
  Alcotest.(check bool) "without guard it would" true
    (present (atomicity_pattern ~guards:[]) tp)

(* The other unserializable shapes of Figure 1(c) are detected too. *)
let shape_pattern shape =
  Core.Patterns.Atomicity
    { local_iid = 1; remote_iid = 2; anchor_iid = 3; shape; guard_writes = [] }

let test_all_atomicity_shapes_present () =
  (* Shapes only differ by access classification, which generation fixes;
     presence uses the same interleaving predicate, so one sandwiched
     trace exhibits all four. *)
  let tp =
    tp_of_events [ ev 1 0 1 100 110; ev 2 0 2 200 210; ev 1 1 3 300 310 ]
  in
  List.iter
    (fun shape ->
      Alcotest.(check bool) "shape present" true (present (shape_pattern shape) tp))
    [ Core.Patterns.RWR; Core.Patterns.WWR; Core.Patterns.RWW; Core.Patterns.WRW ]

(* --- deadlock pattern presence ------------------------------------------- *)

(* A module with two global locks and the four lock/unlock call sites the
   pattern references; events are then synthesized over those real iids so
   the alias-aware hold-tracking has something to chew on. *)
let deadlock_fixture () =
  let m = Lir.Irmod.create "dl" in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  Lir.Irmod.declare_global m "la" (T.Struct "Mutex");
  Lir.Irmod.declare_global m "lb" (T.Struct "Mutex");
  let ids = Hashtbl.create 8 in
  B.define m "w1" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.mutex_lock b (V.Global "la");
      Hashtbl.replace ids "hold_a" (B.last_iid b);
      B.mutex_lock b (V.Global "lb");
      Hashtbl.replace ids "attempt_b" (B.last_iid b);
      B.mutex_unlock b (V.Global "lb");
      Hashtbl.replace ids "unlock_b" (B.last_iid b);
      B.mutex_unlock b (V.Global "la");
      Hashtbl.replace ids "unlock_a" (B.last_iid b);
      B.ret_void b);
  B.define m "w2" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.mutex_lock b (V.Global "lb");
      Hashtbl.replace ids "hold_b" (B.last_iid b);
      B.mutex_lock b (V.Global "la");
      Hashtbl.replace ids "attempt_a" (B.last_iid b);
      B.mutex_unlock b (V.Global "la");
      B.mutex_unlock b (V.Global "lb");
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b -> B.ret_void b);
  Lir.Irmod.layout m;
  let pta = Analysis.Pointsto.analyze_all m in
  (m, pta, fun name -> Hashtbl.find ids name)

let test_deadlock_presence_crossed () =
  let m, pta, id = deadlock_fixture () in
  let pattern =
    Core.Patterns.Deadlock_cycle
      { sides = [ (id "hold_a", id "attempt_b"); (id "hold_b", id "attempt_a") ] }
  in
  (* Crossed holding: both holds precede the other's attempt. *)
  let crossed =
    tp_of_events
      [
        ev 1 0 (id "hold_a") 100 101;
        ev 2 0 (id "hold_b") 150 151;
        ev 1 1 (id "attempt_b") 300 301;
        ev 2 1 (id "attempt_a") 320 321;
      ]
  in
  Alcotest.(check bool) "crossed order present" true
    (Core.Patterns.present_in m ~points_to:pta pattern crossed);
  (* Serialized: w1 finished (released) before w2 started. *)
  let serialized =
    tp_of_events
      [
        ev 1 0 (id "hold_a") 100 101;
        ev 1 1 (id "attempt_b") 120 121;
        ev 1 2 (id "unlock_b") 140 141;
        ev 1 3 (id "unlock_a") 160 161;
        ev 2 0 (id "hold_b") 400 401;
        ev 2 1 (id "attempt_a") 420 421;
      ]
  in
  Alcotest.(check bool) "serialized order absent" false
    (Core.Patterns.present_in m ~points_to:pta pattern serialized)

let test_deadlock_presence_needs_distinct_threads () =
  let m, pta, id = deadlock_fixture () in
  let pattern =
    Core.Patterns.Deadlock_cycle
      { sides = [ (id "hold_a", id "attempt_b"); (id "hold_b", id "attempt_a") ] }
  in
  let same_thread =
    tp_of_events
      [
        ev 1 0 (id "hold_a") 100 101;
        ev 1 1 (id "hold_b") 150 151;
        ev 1 2 (id "attempt_b") 300 301;
        ev 1 3 (id "attempt_a") 320 321;
      ]
  in
  Alcotest.(check bool) "one thread cannot deadlock with itself" false
    (Core.Patterns.present_in m ~points_to:pta pattern same_thread)

(* --- statistics ---------------------------------------------------------- *)

let test_f1_scoring () =
  let m, pta = dummy_pta in
  let failing = [ tp_of_events [ ev 1 0 1 100 110; ev 2 0 2 200 210 ] ] in
  let successful =
    [
      tp_of_events [ ev 2 0 2 100 110; ev 1 0 1 200 210 ];
      tp_of_events [ ev 2 0 2 100 110 ];
    ]
  in
  let scored =
    Core.Statistics.score m ~points_to:pta ~patterns:[ order_pattern ]
      ~failing ~successful
  in
  match scored with
  | [ s ] ->
    Alcotest.(check (float 1e-9)) "perfect F1" 1.0 s.Core.Statistics.f1;
    Alcotest.(check int) "in failing" 1 s.Core.Statistics.present_in_failing;
    Alcotest.(check int) "not in successful" 0
      s.Core.Statistics.present_in_successful
  | _ -> Alcotest.fail "expected one scored pattern"

let test_f1_tie_break_prefers_order () =
  let m, pta = dummy_pta in
  let failing =
    [ tp_of_events [ ev 1 0 1 100 110; ev 2 0 2 200 210; ev 1 1 3 300 310 ] ]
  in
  let patterns =
    [
      atomicity_pattern ~guards:[];
      Core.Patterns.Order
        { remote_iid = 2; anchor_iid = 3; shape = Core.Patterns.WR };
    ]
  in
  let scored =
    Core.Statistics.score m ~points_to:pta ~patterns ~failing ~successful:[]
  in
  (match Core.Statistics.top scored with
  | Some top -> (
    match top.Core.Statistics.pattern with
    | Core.Patterns.Order _ -> ()
    | _ -> Alcotest.fail "order should win the tie")
  | None -> Alcotest.fail "no top");
  Alcotest.(check bool) "reported as tie" false (Core.Statistics.is_unique_top scored)

(* Degenerate populations: no failing runs, no patterns, no traces at
   all.  Scoring must stay total — 0s and [] — never raise or emit NaN. *)
let test_scoring_degenerate_inputs () =
  let m, pta = dummy_pta in
  let no_failing =
    Core.Statistics.score m ~points_to:pta ~patterns:[ order_pattern ]
      ~failing:[]
      ~successful:[ tp_of_events [ ev 1 0 1 100 110 ] ]
  in
  (match no_failing with
  | [ s ] ->
    Alcotest.(check (float 1e-9)) "zero failing -> f1 0" 0.0
      s.Core.Statistics.f1;
    Alcotest.(check bool) "f1 is a number" false
      (Float.is_nan s.Core.Statistics.f1)
  | _ -> Alcotest.fail "expected one scored pattern");
  Alcotest.(check bool) "no patterns -> empty" true
    (Core.Statistics.score m ~points_to:pta ~patterns:[] ~failing:[]
       ~successful:[]
    = []);
  Alcotest.(check bool) "top of empty" true
    (Core.Statistics.top [] = None);
  Alcotest.(check bool) "empty list is trivially unique" true
    (Core.Statistics.is_unique_top [])

(* All-identical F1 scores: the winner must be the proximate cause (the
   remote access that executed last before the failure), not whichever
   pattern the generator happened to emit first. *)
let test_tie_break_prefers_proximate_remote () =
  let m, pta = dummy_pta in
  let failing =
    [
      tp_of_events
        [ ev 2 0 2 100 110; ev 2 1 4 150 160; ev 1 0 3 300 310 ];
    ]
  in
  let early =
    Core.Patterns.Order { remote_iid = 2; anchor_iid = 3; shape = Core.Patterns.WR }
  and late =
    Core.Patterns.Order { remote_iid = 4; anchor_iid = 3; shape = Core.Patterns.WR }
  in
  List.iter
    (fun patterns ->
      let scored =
        Core.Statistics.score m ~points_to:pta ~patterns ~failing
          ~successful:[]
      in
      Alcotest.(check bool) "scores tie" false
        (Core.Statistics.is_unique_top scored);
      match Core.Statistics.top scored with
      | Some t ->
        Alcotest.(check string) "latest remote wins regardless of order"
          (Core.Patterns.id late)
          (Core.Patterns.id t.Core.Statistics.pattern)
      | None -> Alcotest.fail "no top")
    [ [ early; late ]; [ late; early ] ]

(* --- pattern metadata ---------------------------------------------------- *)

let test_pattern_ids_stable () =
  Alcotest.(check string) "order id" "order:WR:1->2" (Core.Patterns.id order_pattern);
  Alcotest.(check string) "atomicity id" "atom:RWR:1,2,3"
    (Core.Patterns.id (atomicity_pattern ~guards:[ 7 ]));
  Alcotest.(check string) "deadlock id" "deadlock:1,2|3,4"
    (Core.Patterns.id (Core.Patterns.Deadlock_cycle { sides = [ (1, 2); (3, 4) ] }))

let test_ordered_iids () =
  Alcotest.(check (list int)) "order" [ 1; 2 ]
    (Core.Patterns.ordered_iids order_pattern);
  Alcotest.(check (list int)) "atomicity" [ 1; 2; 3 ]
    (Core.Patterns.ordered_iids (atomicity_pattern ~guards:[]));
  Alcotest.(check (list int)) "deadlock" [ 1; 2; 3; 4 ]
    (Core.Patterns.ordered_iids
       (Core.Patterns.Deadlock_cycle { sides = [ (1, 2); (3, 4) ] }))

(* --- accuracy ------------------------------------------------------------ *)

let test_accuracy_metrics () =
  Alcotest.(check bool) "set match" true
    (Core.Accuracy.root_cause_match ~diagnosed:order_pattern ~ground_truth:[ 1; 2 ]);
  Alcotest.(check bool) "set mismatch" false
    (Core.Accuracy.root_cause_match ~diagnosed:order_pattern ~ground_truth:[ 1; 9 ]);
  Alcotest.(check (float 1e-6)) "perfect order" 100.0
    (Core.Accuracy.ordering_accuracy ~diagnosed:order_pattern ~ground_truth:[ 1; 2 ]);
  Alcotest.(check (float 1e-6)) "reversed order" 0.0
    (Core.Accuracy.ordering_accuracy ~diagnosed:order_pattern ~ground_truth:[ 2; 1 ])

(* --- anchor resolution --------------------------------------------------- *)

let test_anchor_provenance () =
  (* Crash on a field load whose pointer came from a load of a global:
     the anchor must be the provenance load. *)
  let m = Lir.Irmod.create "t" in
  ignore (Lir.Irmod.declare_struct m "Box" [ T.I64 ]);
  Lir.Irmod.declare_global m "box" (T.Ptr (T.Struct "Box"));
  let prov = ref (-1) in
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let p = B.load b (V.Global "box") in
      prov := B.last_iid b;
      let v = B.load b (B.gep b p 0) in
      B.call_void b Lir.Intrinsics.print_i64 [ v ];
      B.ret_void b);
  Lir.Verify.check_exn m;
  Lir.Irmod.layout m;
  let driver = Pt.Driver.create () in
  let config =
    { Sim.Interp.default_config with hooks = Pt.Driver.hooks driver }
  in
  let result = Sim.Interp.run ~config m ~entry:"main" in
  match result.Sim.Interp.outcome with
  | Sim.Interp.Failed { failure; time_ns } ->
    let snap = Pt.Driver.snapshot_now driver ~at_time_ns:time_ns in
    let report =
      Core.Report.of_sim_failure failure ~time_ns ~traces:snap.Pt.Driver.traces
    in
    let tp = Core.Diagnosis.process_failing m ~config:Pt.Config.default report in
    Alcotest.(check int) "anchor is the provenance load" !prov
      (Core.Diagnosis.resolve_anchor m tp report)
  | _ -> Alcotest.fail "expected crash"

let test_report_kinds () =
  let crash =
    Core.Report.of_sim_failure
      (Sim.Failure.Crash
         { tid = 1; iid = 5; pc = 0x20; reason = Sim.Failure.Null_deref; addr = 0 })
      ~time_ns:123.0 ~traces:[]
  in
  (match crash.Core.Report.info with
  | Core.Report.Crash_info { failing_iid; crash_kind = Core.Report.Bad_pointer } ->
    Alcotest.(check int) "iid carried" 5 failing_iid
  | _ -> Alcotest.fail "expected bad-pointer crash info");
  let dl =
    Core.Report.of_sim_failure
      (Sim.Failure.Deadlock { waiters = [ (1, 7, 0x10); (2, 9, 0x20) ] })
      ~time_ns:5.0 ~traces:[]
  in
  Alcotest.(check int) "deadlock anchor is cycle closer" 9
    (Core.Report.failing_anchor_iid dl)

(* --- parallel decode determinism & cache correctness --------------------- *)

(* The perf paths (domain pool, memo cache) must be invisible in the
   output: any pool size and any cache state has to produce the exact
   Tp.t the sequential, uncached code produces. *)

let tp_equal (a : Tp.t) (b : Tp.t) =
  Tp.Iset.equal a.Tp.executed b.Tp.executed
  && a.Tp.events = b.Tp.events
  && a.Tp.lost_bytes = b.Tp.lost_bytes
  && a.Tp.desynced_tids = b.Tp.desynced_tids
  && Hashtbl.length a.Tp.events_by_iid = Hashtbl.length b.Tp.events_by_iid
  && Hashtbl.fold
       (fun iid evs acc ->
         acc && Hashtbl.find_opt b.Tp.events_by_iid iid = Some evs)
       a.Tp.events_by_iid true

let corpus_reports =
  lazy
    (List.concat_map
       (fun bug ->
         let e = Experiments.Eval_runs.get bug in
         let c = e.Experiments.Eval_runs.collected in
         let m = c.Corpus.Runner.built.Corpus.Bug.m in
         let keep n l = List.filteri (fun i _ -> i < n) l in
         List.map
           (fun r -> (bug.Corpus.Bug.id, m, `Failing r))
           (keep 2 c.Corpus.Runner.failing)
         @ List.map
             (fun s -> (bug.Corpus.Bug.id, m, `Success s))
             (keep 2 c.Corpus.Runner.successful))
       (List.filteri (fun i _ -> i < 3) Corpus.Registry.eval_set))

let process_report ~jobs ~cache m report =
  match report with
  | `Failing r ->
    Core.Diagnosis.process_failing ~jobs ~cache m ~config:Pt.Config.default r
  | `Success s ->
    Core.Diagnosis.process_successful ~jobs ~cache m ~config:Pt.Config.default
      s

let test_parallel_decode_deterministic () =
  List.iter
    (fun (id, m, report) ->
      let no_cache = Pt.Decode_cache.create ~capacity:0 () in
      let base = process_report ~jobs:1 ~cache:no_cache m report in
      List.iter
        (fun jobs ->
          let tp = process_report ~jobs ~cache:no_cache m report in
          Alcotest.(check bool)
            (Printf.sprintf "%s: jobs=%d equals sequential" id jobs)
            true (tp_equal base tp))
        [ 2; 4 ])
    (Lazy.force corpus_reports)

let test_cached_decode_deterministic () =
  List.iter
    (fun (id, m, report) ->
      let no_cache = Pt.Decode_cache.create ~capacity:0 () in
      let base = process_report ~jobs:1 ~cache:no_cache m report in
      let cache = Pt.Decode_cache.create ~capacity:64 () in
      let cold = process_report ~jobs:1 ~cache m report in
      let warm = process_report ~jobs:1 ~cache m report in
      (* A warm parallel run exercises both perf paths at once. *)
      let warm_par = process_report ~jobs:4 ~cache m report in
      Alcotest.(check bool)
        (Printf.sprintf "%s: cold cached equals uncached" id)
        true (tp_equal base cold);
      Alcotest.(check bool)
        (Printf.sprintf "%s: warm equals cold" id)
        true (tp_equal cold warm);
      Alcotest.(check bool)
        (Printf.sprintf "%s: warm parallel equals cold" id)
        true (tp_equal cold warm_par);
      let s = Pt.Decode_cache.stats cache in
      Alcotest.(check bool)
        (Printf.sprintf "%s: warm runs actually hit" id)
        true
        (s.Pt.Decode_cache.hits >= s.Pt.Decode_cache.misses))
    (Lazy.force corpus_reports)

(* Warm must equal cold on hostile inputs too, not just clean rings: the
   chaos harness's ring fault classes (truncation, bitflips) produce
   snapshots whose decodes desync or lose sync, and a cache that mixed
   those up would turn one corrupted report into many. *)
let test_cache_correct_on_corrupt_rings () =
  let bug = Corpus.Registry.find_exn "pbzip2-1" in
  let e = Experiments.Eval_runs.get bug in
  let c = e.Experiments.Eval_runs.collected in
  let m = c.Corpus.Runner.built.Corpus.Bug.m in
  let traces =
    (List.hd c.Corpus.Runner.failing).Core.Report.traces
  in
  let truncate frac (tid, b) =
    let n = Bytes.length b in
    (tid, Bytes.sub b 0 (max 1 (n * frac / 100)))
  in
  let bitflip seed (tid, b) =
    let prng = Snorlax_util.Prng.create ~seed in
    let b = Bytes.copy b in
    for _ = 1 to 5 do
      let i = Snorlax_util.Prng.int prng ~bound:(Bytes.length b) in
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Snorlax_util.Prng.int prng ~bound:8)))
    done;
    (tid, b)
  in
  let variants =
    [
      ("clean", traces);
      ("truncated-30", List.map (truncate 30) traces);
      ("truncated-75", List.map (truncate 75) traces);
      ("bitflipped-1", List.map (bitflip 1) traces);
      ("bitflipped-2", List.map (bitflip 2) traces);
    ]
  in
  List.iter
    (fun (name, traces) ->
      let no_cache = Pt.Decode_cache.create ~capacity:0 () in
      let cache = Pt.Decode_cache.create ~capacity:64 () in
      let base =
        Tp.process m ~config:Pt.Config.default ~jobs:1 ~cache:no_cache traces
      in
      let cold =
        Tp.process m ~config:Pt.Config.default ~jobs:1 ~cache traces
      in
      let warm =
        Tp.process m ~config:Pt.Config.default ~jobs:1 ~cache traces
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: cached equals uncached" name)
        true (tp_equal base cold);
      Alcotest.(check bool)
        (Printf.sprintf "%s: warm equals cold" name)
        true (tp_equal cold warm))
    variants

(* End-to-end: a whole diagnosis repeated against the same warm cache must
   rank the same root cause — the fleet collector's per-bucket re-runs
   depend on exactly this. *)
let test_diagnosis_stable_under_warm_cache () =
  let bug = Corpus.Registry.find_exn "pbzip2-1" in
  let e = Experiments.Eval_runs.get bug in
  let c = e.Experiments.Eval_runs.collected in
  let m = c.Corpus.Runner.built.Corpus.Bug.m in
  let cache = Pt.Decode_cache.create ~capacity:256 () in
  let diagnose () =
    Core.Diagnosis.diagnose ~jobs:1 ~cache m ~config:Pt.Config.default
      ~failing:c.Corpus.Runner.failing
      ~successful:c.Corpus.Runner.successful
  in
  let top r =
    match r.Core.Diagnosis.top with
    | Some t -> Core.Patterns.id t.Core.Statistics.pattern
    | None -> "<none>"
  in
  let cold = diagnose () in
  let warm = diagnose () in
  Alcotest.(check string) "same top pattern" (top cold) (top warm);
  Alcotest.(check (list string)) "same scored ranking"
    (List.map (fun s -> Core.Patterns.id s.Core.Statistics.pattern)
       cold.Core.Diagnosis.scored)
    (List.map (fun s -> Core.Patterns.id s.Core.Statistics.pattern)
       warm.Core.Diagnosis.scored);
  let s = Pt.Decode_cache.stats cache in
  Alcotest.(check bool) "warm diagnosis reused decodes" true
    (s.Pt.Decode_cache.hits > 0)

let tests =
  [
    ( "core.trace_processing",
      [
        Alcotest.test_case "cross-thread order" `Quick test_executes_before_cross_thread;
        Alcotest.test_case "overlap unordered" `Quick
          test_executes_before_overlap_unordered;
        Alcotest.test_case "program order" `Quick
          test_executes_before_same_thread_program_order;
      ] );
    ( "core.patterns",
      [
        Alcotest.test_case "order present" `Quick test_order_present;
        Alcotest.test_case "order reversed absent" `Quick test_order_absent_when_reversed;
        Alcotest.test_case "order same-thread absent" `Quick test_order_absent_same_thread;
        Alcotest.test_case "atomicity present" `Quick test_atomicity_present;
        Alcotest.test_case "atomicity remote outside" `Quick
          test_atomicity_absent_remote_outside;
        Alcotest.test_case "atomicity adjacency" `Quick test_atomicity_adjacency_required;
        Alcotest.test_case "atomicity guard writes" `Quick test_atomicity_guard_write;
        Alcotest.test_case "pattern ids" `Quick test_pattern_ids_stable;
        Alcotest.test_case "ordered iids" `Quick test_ordered_iids;
        Alcotest.test_case "all atomicity shapes" `Quick
          test_all_atomicity_shapes_present;
        Alcotest.test_case "deadlock crossed presence" `Quick
          test_deadlock_presence_crossed;
        Alcotest.test_case "deadlock needs two threads" `Quick
          test_deadlock_presence_needs_distinct_threads;
      ] );
    ( "core.statistics",
      [
        Alcotest.test_case "f1 scoring" `Quick test_f1_scoring;
        Alcotest.test_case "tie-break" `Quick test_f1_tie_break_prefers_order;
        Alcotest.test_case "degenerate inputs" `Quick
          test_scoring_degenerate_inputs;
        Alcotest.test_case "proximate-cause tie-break" `Quick
          test_tie_break_prefers_proximate_remote;
      ] );
    ( "core.accuracy",
      [
        Alcotest.test_case "metrics" `Quick test_accuracy_metrics;
        Alcotest.test_case "anchor provenance" `Quick test_anchor_provenance;
        Alcotest.test_case "report kinds" `Quick test_report_kinds;
      ] );
    ( "core.decode_perf_paths",
      [
        Alcotest.test_case "pool sizes 1/2/4 identical" `Quick
          test_parallel_decode_deterministic;
        Alcotest.test_case "cache on/off/warm identical" `Quick
          test_cached_decode_deterministic;
        Alcotest.test_case "cache correct on corrupt rings" `Quick
          test_cache_correct_on_corrupt_rings;
        Alcotest.test_case "diagnosis stable under warm cache" `Quick
          test_diagnosis_stable_under_warm_cache;
      ] );
  ]
