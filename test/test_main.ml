(* Aggregated test entry point: `dune runtest` runs everything. *)

let () =
  Alcotest.run "snorlax"
    (Test_util.tests @ Test_obs.tests @ Test_ir.tests @ Test_sim.tests
   @ Test_memory.tests @ Test_pt.tests
   @ Test_analysis.tests @ Test_hb.tests @ Test_core.tests @ Test_gist.tests
   @ Test_corpus.tests @ Test_replay.tests @ Test_experiments.tests @ Test_fuzz.tests
   @ Test_fleet.tests @ Test_stream.tests @ Test_chaos.tests
   @ Test_oracle.tests @ Test_fix.tests @ Test_integration.tests)
