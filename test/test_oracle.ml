(* End-to-end differential checks: the happens-before oracle must agree
   with the diagnosis pipeline on every corpus bug, and the diagnosis
   must be bit-identical across decode parallelism levels. *)

module Core = Snorlax_core

let test_full_registry_agreement () =
  List.iter
    (fun (bug : Corpus.Bug.t) ->
      match Oracle.Diffcheck.check_bug bug with
      | Error e ->
        Alcotest.failf "%s failed to reproduce: %s" bug.Corpus.Bug.id e
      | Ok r ->
        Alcotest.(check string)
          (bug.Corpus.Bug.id ^ " classification")
          "agree"
          (Oracle.Diffcheck.classification_name
             r.Oracle.Diffcheck.classification);
        Alcotest.(check bool)
          (bug.Corpus.Bug.id ^ " spurious pairs")
          true
          (r.Oracle.Diffcheck.spurious = []);
        Alcotest.(check int)
          (bug.Corpus.Bug.id ^ " decoder engines agree")
          0 r.Oracle.Diffcheck.decoder_mismatches)
    Corpus.Registry.all

(* The scored pattern list — order included, since statistics tie-breaks
   depend on it — must not vary with how many domains decoded the
   traces. *)
let test_decode_jobs_determinism () =
  List.iter
    (fun id ->
      let bug = Corpus.Registry.find_exn id in
      match Corpus.Runner.collect bug () with
      | Error e -> Alcotest.failf "%s failed to reproduce: %s" id e
      | Ok c ->
        let ids jobs =
          let res =
            Core.Diagnosis.diagnose ~jobs c.Corpus.Runner.built.Corpus.Bug.m
              ~config:Pt.Config.default ~failing:c.Corpus.Runner.failing
              ~successful:c.Corpus.Runner.successful
          in
          List.map
            (fun (s : Core.Statistics.scored) ->
              Core.Patterns.id s.Core.Statistics.pattern)
            res.Core.Diagnosis.scored
        in
        let sequential = ids 1 in
        Alcotest.(check (list string)) (id ^ " jobs=2") sequential (ids 2);
        Alcotest.(check (list string)) (id ^ " jobs=4") sequential (ids 4))
    [ "mysql-5"; "mysql-7"; "httpd-1" ]

(* The corpus sweep itself parallelizes (one lane per bug): the result
   list must come back in input order with results identical to the
   sequential sweep, and a reproduction failure must surface as the same
   Error in the same slot. *)
let test_sweep_jobs_determinism () =
  let bugs =
    List.map Corpus.Registry.find_exn [ "pbzip2-1"; "mysql-5"; "httpd-1" ]
  in
  let strip r =
    List.map
      (fun (id, res) ->
        ( id,
          match res with
          | Error e -> Error e
          | Ok (r : Oracle.Diffcheck.bug_result) ->
            Ok
              ( Oracle.Diffcheck.classification_name
                  r.Oracle.Diffcheck.classification,
                r.Oracle.Diffcheck.spurious,
                r.Oracle.Diffcheck.decoder_mismatches ) ))
      r
  in
  let seq = strip (Oracle.Diffcheck.check_all bugs) in
  let par = strip (Oracle.Diffcheck.check_all ~sweep_jobs:4 bugs) in
  Alcotest.(check int) "same result count" (List.length seq) (List.length par);
  List.iter2
    (fun (id_s, r_s) (id_p, r_p) ->
      Alcotest.(check string) "input order preserved" id_s id_p;
      Alcotest.(check bool) (id_s ^ ": parallel sweep equals sequential") true
        (r_s = r_p))
    seq par

let tests =
  [
    ( "oracle.diffcheck",
      [
        Alcotest.test_case "all 54 corpus bugs agree" `Quick
          test_full_registry_agreement;
        Alcotest.test_case "decode-jobs 1/2/4 determinism" `Quick
          test_decode_jobs_determinism;
        Alcotest.test_case "sweep-jobs 1/4 determinism" `Quick
          test_sweep_jobs_determinism;
      ] );
  ]
