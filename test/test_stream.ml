(* The streaming subsystem: the incremental engine's equivalence with the
   from-scratch batch pipeline, shard backpressure (shed policies,
   watermarks, the offered = shed + drained + depth invariant), tracker
   routing, traffic-generator determinism, and the end-to-end streaming
   deployment — including a sweep of all nine chaos fault classes. *)

module Core = Snorlax_core
module Report = Core.Report
module Wire = Fleet.Wire
module Collector = Fleet.Collector
module Incremental = Stream.Incremental
module Shard = Stream.Shard
module Router = Stream.Router
module Traffic = Stream.Traffic
module Deploy = Stream.Deploy

(* --- fixtures ------------------------------------------------------------ *)

let fixture =
  lazy
    (let bug = Corpus.Registry.find_exn "pbzip2-1" in
     match Corpus.Runner.collect bug ~seed_base:1 () with
     | Ok c -> (bug, c)
     | Error msg -> Alcotest.failf "fixture: %s" msg)

let real_envelope ?(endpoint = 0) payload =
  let bug, _ = Lazy.force fixture in
  {
    Wire.endpoint;
    seed = 1;
    bug_id = bug.Corpus.Bug.id;
    config = Pt.Config.default;
    prov = None;
    payload;
  }

let scored_ids = List.map (fun (s : Core.Statistics.scored) ->
    Core.Patterns.id s.Core.Statistics.pattern)

let latency_hist () =
  Obs.Metrics.histogram (Obs.Metrics.create ()) "latency_ns"

(* --- incremental == batch ------------------------------------------------ *)

let check_snapshot_equals_batch name (snap : Incremental.snapshot)
    (batch : Core.Diagnosis.result) =
  Alcotest.(check (list string))
    (name ^ ": same patterns in the same order")
    (scored_ids batch.Core.Diagnosis.scored)
    (scored_ids snap.Incremental.scored);
  List.iter2
    (fun (a : Core.Statistics.scored) (b : Core.Statistics.scored) ->
      Alcotest.(check (float 1e-9)) (name ^ ": same F1") a.Core.Statistics.f1
        b.Core.Statistics.f1;
      Alcotest.(check (float 1e-9))
        (name ^ ": same precision") a.Core.Statistics.precision
        b.Core.Statistics.precision;
      Alcotest.(check (float 1e-9))
        (name ^ ": same recall") a.Core.Statistics.recall
        b.Core.Statistics.recall)
    batch.Core.Diagnosis.scored snap.Incremental.scored;
  Alcotest.(check (option string))
    (name ^ ": same top")
    (Option.map
       (fun (s : Core.Statistics.scored) ->
         Core.Patterns.id s.Core.Statistics.pattern)
       batch.Core.Diagnosis.top)
    (Option.map
       (fun (s : Core.Statistics.scored) ->
         Core.Patterns.id s.Core.Statistics.pattern)
       snap.Incremental.top)

let test_incremental_equals_batch () =
  let _, c = Lazy.force fixture in
  let m = c.Corpus.Runner.built.Corpus.Bug.m in
  let batch =
    Core.Diagnosis.diagnose m ~config:Pt.Config.default
      ~failing:c.Corpus.Runner.failing ~successful:c.Corpus.Runner.successful
  in
  let eng = Incremental.create m ~config:Pt.Config.default in
  List.iter (fun r -> Incremental.add_failing eng r) c.Corpus.Runner.failing;
  List.iter
    (fun s -> Incremental.add_successful eng s)
    c.Corpus.Runner.successful;
  match Incremental.results eng with
  | None -> Alcotest.fail "no snapshot after failing reports"
  | Some snap ->
    check_snapshot_equals_batch "one-shot" snap batch;
    Alcotest.(check int) "all failing folded in"
      (List.length c.Corpus.Runner.failing)
      snap.Incremental.snap_failing;
    Alcotest.(check bool) "derived at least once" true
      (snap.Incremental.rederives >= 1)

let test_incremental_equals_batch_interleaved () =
  (* Snapshots taken mid-stream force early derivations; later reports
     then take the fast path or invalidate.  The final answer must still
     be the batch answer, and duplicate deliveries must count like the
     batch seeing the report twice. *)
  let _, c = Lazy.force fixture in
  let m = c.Corpus.Runner.built.Corpus.Bug.m in
  let first = List.hd c.Corpus.Runner.failing in
  let failing = c.Corpus.Runner.failing @ [ first ] in
  let successful = c.Corpus.Runner.successful in
  let batch =
    Core.Diagnosis.diagnose m ~config:Pt.Config.default ~failing ~successful
  in
  let eng = Incremental.create m ~config:Pt.Config.default in
  Incremental.add_failing eng first;
  (* force a derivation before the bulk arrives *)
  ignore (Incremental.results eng);
  List.iter
    (fun s -> Incremental.add_successful eng s)
    successful;
  ignore (Incremental.results eng);
  List.iter (fun r -> Incremental.add_failing eng r) (List.tl failing);
  (match Incremental.results eng with
  | None -> Alcotest.fail "no snapshot"
  | Some snap ->
    check_snapshot_equals_batch "interleaved" snap batch;
    Alcotest.(check bool)
      (Printf.sprintf "some updates took the fast path (%d)"
         snap.Incremental.fast_updates)
      true
      (snap.Incremental.fast_updates > 0));
  (* results is idempotent: calling again without new reports changes
     nothing and derives nothing. *)
  let r1 = Incremental.rederives eng in
  ignore (Incremental.results eng);
  Alcotest.(check int) "no re-derive without new reports" r1
    (Incremental.rederives eng)

let test_incremental_none_before_failing () =
  let _, c = Lazy.force fixture in
  let m = c.Corpus.Runner.built.Corpus.Bug.m in
  let eng = Incremental.create m ~config:Pt.Config.default in
  List.iter
    (fun s -> Incremental.add_successful eng s)
    c.Corpus.Runner.successful;
  Alcotest.(check bool) "successes alone anchor nothing" true
    (Incremental.results eng = None)

(* --- shard backpressure -------------------------------------------------- *)

let shard_failing_packets n =
  (* n distinguishable failing packets: failure_time_ns identifies which
     survived the shed policy. *)
  let _, c = Lazy.force fixture in
  let failing = List.hd c.Corpus.Runner.failing in
  List.init n (fun i ->
      Wire.encode
        (real_envelope ~endpoint:i
           (Wire.Failing { failing with Report.failure_time_ns = i })))

let drain_times shard =
  let hist = latency_hist () in
  ignore (Shard.service shard ~budget:max_int hist);
  match Collector.buckets (Shard.collector shard) with
  | [ b ] ->
    List.map
      (fun (r : Report.failing_report) -> r.Report.failure_time_ns)
      (Collector.failing b)
  | bs -> Alcotest.failf "expected 1 bucket, got %d" (List.length bs)

let test_shard_drop_oldest_keeps_freshest () =
  let shard =
    Shard.create ~id:0 ~capacity:4 ~shed:Shard.Drop_oldest
      ~modules:(Hashtbl.create 4) ()
  in
  List.iter (Shard.offer shard ~arrival:0.0) (shard_failing_packets 10);
  Alcotest.(check int) "offered" 10 (Shard.offered shard);
  Alcotest.(check int) "shed" 6 (Shard.shed_count shard);
  Alcotest.(check int) "depth at capacity" 4 (Shard.depth shard);
  Alcotest.(check (list int)) "the freshest four survived" [ 6; 7; 8; 9 ]
    (drain_times shard);
  Alcotest.(check int) "accounting: offered = shed + drained + depth"
    (Shard.offered shard)
    (Shard.shed_count shard + Shard.drained shard + Shard.depth shard)

let test_shard_drop_newest_keeps_backlog () =
  let shard =
    Shard.create ~id:0 ~capacity:4 ~shed:Shard.Drop_newest
      ~modules:(Hashtbl.create 4) ()
  in
  List.iter (Shard.offer shard ~arrival:0.0) (shard_failing_packets 10);
  Alcotest.(check int) "shed" 6 (Shard.shed_count shard);
  Alcotest.(check (list int)) "the backlog won" [ 0; 1; 2; 3 ]
    (drain_times shard);
  Alcotest.(check int) "accounting: offered = shed + drained + depth"
    (Shard.offered shard)
    (Shard.shed_count shard + Shard.drained shard + Shard.depth shard)

let test_shard_watermarks () =
  (* capacity 10 -> high at 8, low at 5: rising through 8 warns once,
     draining to 5 clears, rising again warns again. *)
  let shard =
    Shard.create ~id:7 ~capacity:10 ~shed:Shard.Drop_oldest
      ~modules:(Hashtbl.create 4) ()
  in
  let junk i = Bytes.of_string (Printf.sprintf "junk-%d" i) in
  let hist = latency_hist () in
  for i = 1 to 8 do
    Shard.offer shard ~arrival:0.0 (junk i)
  done;
  Alcotest.(check int) "high watermark crossed once" 1
    (Shard.high_crossings shard);
  ignore (Shard.service shard ~budget:3 hist);
  for i = 9 to 11 do
    Shard.offer shard ~arrival:0.0 (junk i)
  done;
  Alcotest.(check int) "crossed again after clearing" 2
    (Shard.high_crossings shard);
  Alcotest.(check int) "peak depth tracked" 8 (Shard.peak_depth shard);
  ignore (Shard.service shard ~budget:max_int hist);
  Alcotest.(check int) "garbage drains as ingest errors" 11
    (Shard.ingest_err shard);
  Alcotest.(check int) "accounting survives garbage"
    (Shard.offered shard)
    (Shard.shed_count shard + Shard.drained shard + Shard.depth shard)

(* --- tracker routing ----------------------------------------------------- *)

let make_cluster ?(shards = 2) ?pending_cap () =
  let modules = Hashtbl.create 4 in
  let arr =
    Array.init shards (fun id ->
        Shard.create ~id ~capacity:64 ~shed:Shard.Drop_oldest ~modules ())
  in
  (arr, Router.create ?pending_cap arr modules)

let service_all shards =
  let hist = latency_hist () in
  Array.iter (fun s -> ignore (Shard.service s ~budget:max_int hist)) shards

let test_router_holds_then_routes_success () =
  let _, c = Lazy.force fixture in
  let failing = List.hd c.Corpus.Runner.failing in
  let success = List.hd c.Corpus.Runner.successful in
  let shards, router = make_cluster () in
  Router.route router (Wire.encode (real_envelope (Wire.Success success)));
  Alcotest.(check int) "success held while unrouted" 1
    (Router.pending_held router);
  Router.route router
    (Wire.encode (real_envelope ~endpoint:1 (Wire.Failing failing)));
  Alcotest.(check int) "held success released by the route" 0
    (Router.pending_held router);
  service_all shards;
  let buckets =
    Array.to_list shards
    |> List.concat_map (fun s -> Collector.buckets (Shard.collector s))
  in
  (match buckets with
  | [ b ] ->
    Alcotest.(check int) "failing landed" 1 (Collector.failing_kept b);
    Alcotest.(check int) "success followed it to the same shard" 1
      (Collector.success_kept b)
  | bs -> Alcotest.failf "expected 1 bucket, got %d" (List.length bs));
  Alcotest.(check int) "router received both" 2 (Router.received router)

let test_router_forwards_malformed () =
  (* The tracker never swallows a packet: garbage is hashed on raw bytes
     and forwarded so the owning shard's collector counts the error. *)
  let shards, router = make_cluster () in
  Router.route router (Bytes.of_string "not a packet");
  Alcotest.(check int) "malformed counted at the tracker" 1
    (Router.malformed router);
  Alcotest.(check int) "still forwarded" 1
    (Array.fold_left (fun a s -> a + Shard.offered s) 0 shards);
  service_all shards;
  let errors =
    Array.fold_left
      (fun a s -> a + (Collector.totals (Shard.collector s)).Collector.decode_errors)
      0 shards
  in
  Alcotest.(check int) "shard collector is the source of truth" 1 errors

let test_router_pending_pool_bounded () =
  let _, c = Lazy.force fixture in
  let success = List.hd c.Corpus.Runner.successful in
  let _, router = make_cluster ~pending_cap:2 () in
  for i = 1 to 5 do
    Router.route router
      (Wire.encode
         (real_envelope
            (Wire.Success { success with Report.trigger_time_ns = i })))
  done;
  Alcotest.(check int) "pool capped" 2 (Router.pending_held router);
  Alcotest.(check int) "evictions counted" 3 (Router.pending_dropped router)

(* --- traffic generator --------------------------------------------------- *)

let test_traffic_deterministic () =
  (* Everything is a pure function of seed: two generators with the same
     seed emit byte-identical streams, tick after tick. *)
  let bug, _ = Lazy.force fixture in
  let mk () = Traffic.create ~seed:7 ~endpoints:5 ~churn:true [ bug ] in
  let a = mk () and b = mk () in
  for _ = 1 to 2 * Traffic.diurnal_period do
    let ba = Traffic.tick a and bb = Traffic.tick b in
    Alcotest.(check bool) "identical packet streams" true
      (ba.Traffic.packets = bb.Traffic.packets);
    Alcotest.(check bool) "load is a probability" true
      (ba.Traffic.load >= 0.0 && ba.Traffic.load <= 1.0)
  done;
  Alcotest.(check int) "same survivor count" (Traffic.alive a)
    (Traffic.alive b)

let test_traffic_diurnal_produces_load () =
  let bug, _ = Lazy.force fixture in
  let t = Traffic.create ~seed:3 ~endpoints:8 [ bug ] in
  let offered = ref 0 in
  for _ = 1 to 2 * Traffic.diurnal_period do
    offered := !offered + (Traffic.tick t).Traffic.offered
  done;
  Alcotest.(check bool) "two simulated days produce traffic" true
    (!offered > 0);
  Alcotest.(check int) "no churn: the fleet is intact" 8 (Traffic.alive t)

(* --- end-to-end deployment ----------------------------------------------- *)

let small_cfg =
  {
    Deploy.default_config with
    Deploy.endpoints = 6;
    duration_ticks = 8;
    shards = 2;
  }

let check_clean name (s : Deploy.summary) =
  Alcotest.(check bool) (name ^ ": incremental == batch on every bucket")
    true s.Deploy.agree;
  Alcotest.(check bool) (name ^ ": accounting reconciles") true
    s.Deploy.accounted;
  Alcotest.(check int) (name ^ ": final drain left nothing") 0
    s.Deploy.leftover_queue

let test_stream_end_to_end () =
  let bug, _ = Lazy.force fixture in
  let ticks = ref [] in
  let s =
    Deploy.run ~tick:(fun p -> ticks := p :: !ticks) small_cfg [ bug ]
  in
  check_clean "e2e" s;
  Alcotest.(check int) "one bucket for one bug" 1 s.Deploy.bucket_count;
  (match s.Deploy.rows with
  | [ r ] ->
    Alcotest.(check bool) "diagnosed" true (r.Deploy.top_pattern <> None);
    Alcotest.(check bool) "root cause matches ground truth" true
      r.Deploy.root_cause_match;
    Alcotest.(check bool) "the endpoints were deduped" true
      (r.Deploy.endpoints_hit > 1)
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows));
  Alcotest.(check bool) "p99 >= p50" true
    (s.Deploy.latency_p99_ns >= s.Deploy.latency_p50_ns);
  Alcotest.(check bool) "throughput measured" true
    (s.Deploy.reports_per_sec > 0.0);
  (* the ?tick hook fired once per tick, with monotone cumulative counts *)
  let ticks = List.rev !ticks in
  Alcotest.(check int) "tick hook fired once per tick"
    small_cfg.Deploy.duration_ticks (List.length ticks);
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.Deploy.p_offered <= b.Deploy.p_offered
      && a.Deploy.p_drained <= b.Deploy.p_drained
      && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "offered/drained monotone across ticks" true
    (monotone ticks);
  let line = Deploy.watch_line (List.hd (List.rev ticks)) in
  Alcotest.(check bool)
    (Printf.sprintf "watch line renders (%s)" line)
    true
    (String.length line > 0
    && String.sub line 0 8 = "[stream]"
    && String.length line < 200)

let test_stream_overload_sheds_but_agrees () =
  (* One shard, many endpoints: the queue saturates and sheds, but what
     does get diagnosed still matches the batch and the accounting still
     closes. *)
  let bug, _ = Lazy.force fixture in
  let s =
    Deploy.run
      {
        Deploy.default_config with
        Deploy.endpoints = 48;
        duration_ticks = 8;
        shards = 1;
        queue_capacity = 32;
        drain_per_tick = 8;
      }
      [ bug ]
  in
  check_clean "overload" s;
  Alcotest.(check bool) "overload shed something" true (s.Deploy.shed > 0);
  Alcotest.(check bool) "shed ratio in (0, 1)" true
    (s.Deploy.shed_ratio > 0.0 && s.Deploy.shed_ratio < 1.0);
  Alcotest.(check bool) "high watermark crossed" true
    (s.Deploy.watermark_highs >= 1)

let test_stream_churn () =
  let bug, _ = Lazy.force fixture in
  let s =
    Deploy.run
      { small_cfg with Deploy.churn = true; duration_ticks = 24; seed = 11 }
      [ bug ]
  in
  check_clean "churn" s;
  Alcotest.(check int) "population closes: initial + joins - leaves - crashes"
    (small_cfg.Deploy.endpoints + s.Deploy.joins - s.Deploy.leaves
   - s.Deploy.crashes)
    s.Deploy.final_endpoints

let test_stream_all_fault_classes () =
  (* The acceptance sweep: every chaos fault class runs against the
     streaming path without breaking the incremental==batch equivalence,
     the accounting invariant, or the final drain. *)
  let bug, _ = Lazy.force fixture in
  List.iter
    (fun cls ->
      let name = Chaos.Fault.name cls in
      let s =
        Deploy.run
          {
            small_cfg with
            Deploy.endpoints = 4;
            duration_ticks = 6;
            fault = Some cls;
            seed = 5;
          }
          [ bug ]
      in
      check_clean name s)
    Chaos.Fault.all

let test_stream_churn_parallel_identical () =
  (* The service-plane determinism claim: one worker domain per shard
     must replay exactly the inline per-shard operation sequence, so a
     seeded churn scenario produces byte-identical results whatever the
     domain count.  One baseline reproduction shared across both runs —
     prepare is the expensive part and must not differ either. *)
  let bug, _ = Lazy.force fixture in
  let cfg =
    { small_cfg with Deploy.churn = true; duration_ticks = 24; seed = 11 }
  in
  let baselines = Traffic.prepare [ bug ] in
  let inline =
    Deploy.run ~baselines { cfg with Deploy.shard_domains = 1 } [ bug ]
  in
  let par =
    Deploy.run ~baselines { cfg with Deploy.shard_domains = 4 } [ bug ]
  in
  check_clean "churn inline" inline;
  check_clean "churn 4 domains" par;
  Alcotest.(check int) "inline mode spawned no workers" 0
    inline.Deploy.domains_used;
  Alcotest.(check bool) "parallel mode spawned workers" true
    (par.Deploy.domains_used >= 1);
  Alcotest.(check bool) "bucket tables identical across domain counts" true
    (inline.Deploy.rows = par.Deploy.rows);
  Alcotest.(check int) "offered identical" inline.Deploy.offered
    par.Deploy.offered;
  Alcotest.(check int) "shed identical" inline.Deploy.shed par.Deploy.shed;
  Alcotest.(check int) "drained identical" inline.Deploy.drained
    par.Deploy.drained;
  Alcotest.(check int) "one latency pair per shard" cfg.Deploy.shards
    (Array.length par.Deploy.shard_latency);
  Array.iter
    (fun (p50, p99) ->
      Alcotest.(check bool) "per-shard p99 >= p50 >= 0" true
        (p99 >= p50 && p50 >= 0.0))
    par.Deploy.shard_latency

let test_stream_fault_classes_parallel_identical () =
  (* Every chaos fault class, inline vs shard-per-domain: same seeded
     scenario, same bucket table and accounting totals. *)
  let bug, _ = Lazy.force fixture in
  let baselines = Traffic.prepare [ bug ] in
  List.iter
    (fun cls ->
      let name = Chaos.Fault.name cls in
      let cfg =
        {
          small_cfg with
          Deploy.endpoints = 4;
          duration_ticks = 6;
          fault = Some cls;
          seed = 5;
        }
      in
      let inline =
        Deploy.run ~baselines { cfg with Deploy.shard_domains = 1 } [ bug ]
      in
      let par =
        Deploy.run ~baselines { cfg with Deploy.shard_domains = 4 } [ bug ]
      in
      check_clean (name ^ " under 4 domains") par;
      Alcotest.(check bool)
        (name ^ ": rows identical across domain counts")
        true
        (inline.Deploy.rows = par.Deploy.rows);
      Alcotest.(check int) (name ^ ": shed identical") inline.Deploy.shed
        par.Deploy.shed)
    Chaos.Fault.all

let test_stream_rejects_bad_config () =
  let bug, _ = Lazy.force fixture in
  Alcotest.check_raises "shards < 1"
    (Invalid_argument "Stream.Deploy.run: shards < 1") (fun () ->
      ignore (Deploy.run { small_cfg with Deploy.shards = 0 } [ bug ]));
  Alcotest.check_raises "duration < 1"
    (Invalid_argument "Stream.Deploy.run: duration_ticks < 1") (fun () ->
      ignore (Deploy.run { small_cfg with Deploy.duration_ticks = 0 } [ bug ]));
  Alcotest.check_raises "shard_domains < 1"
    (Invalid_argument "Stream.Deploy.run: shard_domains < 1") (fun () ->
      ignore (Deploy.run { small_cfg with Deploy.shard_domains = 0 } [ bug ]))

let tests =
  [
    ( "stream.incremental",
      [
        Alcotest.test_case "equals batch, one shot" `Quick
          test_incremental_equals_batch;
        Alcotest.test_case "equals batch, interleaved snapshots" `Quick
          test_incremental_equals_batch_interleaved;
        Alcotest.test_case "no diagnosis before a failing report" `Quick
          test_incremental_none_before_failing;
      ] );
    ( "stream.shard",
      [
        Alcotest.test_case "drop-oldest keeps the freshest" `Quick
          test_shard_drop_oldest_keeps_freshest;
        Alcotest.test_case "drop-newest keeps the backlog" `Quick
          test_shard_drop_newest_keeps_backlog;
        Alcotest.test_case "watermarks warn, clear, warn again" `Quick
          test_shard_watermarks;
      ] );
    ( "stream.router",
      [
        Alcotest.test_case "early success held then routed" `Quick
          test_router_holds_then_routes_success;
        Alcotest.test_case "malformed packets forwarded, not swallowed" `Quick
          test_router_forwards_malformed;
        Alcotest.test_case "pending pool bounded" `Quick
          test_router_pending_pool_bounded;
      ] );
    ( "stream.traffic",
      [
        Alcotest.test_case "pure function of seed" `Quick
          test_traffic_deterministic;
        Alcotest.test_case "diurnal load produces traffic" `Quick
          test_traffic_diurnal_produces_load;
      ] );
    ( "stream.deploy",
      [
        Alcotest.test_case "end-to-end streaming diagnosis" `Quick
          test_stream_end_to_end;
        Alcotest.test_case "overload sheds but still agrees" `Quick
          test_stream_overload_sheds_but_agrees;
        Alcotest.test_case "churn keeps the population honest" `Quick
          test_stream_churn;
        Alcotest.test_case "all nine fault classes pass" `Quick
          test_stream_all_fault_classes;
        Alcotest.test_case "churn identical across domain counts" `Quick
          test_stream_churn_parallel_identical;
        Alcotest.test_case "fault classes identical across domain counts"
          `Quick test_stream_fault_classes_parallel_identical;
        Alcotest.test_case "bad config rejected" `Quick
          test_stream_rejects_bad_config;
      ] );
  ]
