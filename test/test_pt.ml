(* Tests for the PT model: packet codec, PSB scanning, the tracer, and —
   most importantly — decoder fidelity: the decoded instruction sequence
   and its coarse time intervals must agree with what the interpreter
   actually executed. *)

module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty
module Packet = Pt.Packet

(* --- packet codec ------------------------------------------------------- *)

(* Decoder steps are a flat array since the perf overhaul; tests keep
   list-shaped assertions through this view. *)
let steps_list (d : Pt.Decoder.result) = Array.to_list d.Pt.Decoder.steps

let arbitrary_packet =
  QCheck.Gen.(
    oneof
      [
        map (fun tsc -> Packet.Psb { tsc }) (int_range 0 1_000_000_000);
        map (fun pc -> Packet.Fup { pc }) (int_range 0 1_000_000);
        map (fun pc -> Packet.Tip { pc }) (int_range 0 1_000_000);
        return Packet.Tip_end;
        map (fun b -> Packet.Tnt b) bool;
        map2
          (fun count bits ->
            (* Canonical form: bits above [count] are already masked. *)
            Packet.Tnt_packed { bits = bits land ((1 lsl count) - 1); count })
          (int_range 1 Packet.tnt_max_bits)
          (int_range 0 ((1 lsl 30) - 1));
        map (fun ctc -> Packet.Mtc { ctc = ctc land 0xff }) (int_range 0 255);
        map (fun tsc -> Packet.Tma { tsc }) (int_range 0 1_000_000_000);
        map (fun delta -> Packet.Cyc { delta }) (int_range 0 100_000);
      ])

let prop_packet_roundtrip =
  QCheck.Test.make ~name:"packet stream round-trips" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) arbitrary_packet))
    (fun packets ->
      (* Streams start at a PSB so decode_stream can begin at 0. *)
      let packets = Packet.Psb { tsc = 0 } :: packets in
      let buf = Buffer.create 256 in
      List.iter (Packet.encode buf) packets;
      let decoded = List.map fst (Packet.decode_stream (Buffer.to_bytes buf) ~pos:0) in
      decoded = packets)

let prop_psb_unique =
  QCheck.Test.make
    ~name:"scan_psb never fires inside non-PSB packet bytes" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) arbitrary_packet))
    (fun packets ->
      (* Remove PSBs, then scanning must find nothing. *)
      let without =
        List.filter (function Packet.Psb _ -> false | _ -> true) packets
      in
      let buf = Buffer.create 256 in
      List.iter (Packet.encode buf) without;
      Packet.scan_psb (Buffer.to_bytes buf) ~pos:0 = None)

let prop_packed_tnt_equals_per_bit =
  (* The packed multi-bit TNT is pure wire compression: encoding a branch
     run as one Tnt_packed and decoding — through the list decoder or the
     cursor — must yield exactly the per-bit v1 run, first branch first. *)
  QCheck.Test.make ~name:"packed TNT encode/decode equals per-bit v1"
    ~count:500
    (QCheck.make QCheck.Gen.(list_size (int_range 1 Packet.tnt_max_bits) bool))
    (fun branches ->
      let count = List.length branches in
      let bits =
        List.fold_left
          (fun (acc, j) b -> ((if b then acc lor (1 lsl j) else acc), j + 1))
          (0, 0) branches
        |> fst
      in
      let buf = Buffer.create 16 in
      Packet.encode buf (Packet.Psb { tsc = 0 });
      Packet.encode buf (Packet.Tnt_packed { bits; count });
      let bytes = Buffer.to_bytes buf in
      let per_bit =
        match List.map fst (Packet.decode_stream bytes ~pos:0) with
        | [ Packet.Psb _; Packet.Tnt_packed { bits = b'; count = c' } ] ->
          List.init c' (fun j -> (b' lsr j) land 1 = 1)
        | _ -> []
      in
      let cursor_bits =
        let c = Packet.Cursor.make bytes ~pos:0 in
        Packet.Cursor.advance c;
        (* skip the PSB *)
        Packet.Cursor.advance c;
        if c.Packet.Cursor.kind = Packet.Cursor.Tnt then
          List.init c.Packet.Cursor.count (fun j ->
              (c.Packet.Cursor.value lsr j) land 1 = 1)
        else []
      in
      per_bit = branches && cursor_bits = branches)

let prop_cursor_matches_decode_stream =
  (* The zero-allocation cursor and the list decoder are two readers of
     one format: over any well-formed stream they must see the same
     packet sequence (with packed TNT runs viewed bit-expanded). *)
  QCheck.Test.make ~name:"Cursor agrees with decode_stream" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) arbitrary_packet))
    (fun packets ->
      let packets = Packet.Psb { tsc = 0 } :: packets in
      let buf = Buffer.create 256 in
      List.iter (Packet.encode buf) packets;
      let bytes = Buffer.to_bytes buf in
      let expand = function
        | Packet.Tnt_packed { bits; count } ->
          List.init count (fun j ->
              Packet.Tnt ((bits lsr j) land 1 = 1))
        | p -> [ p ]
      in
      let expected =
        List.concat_map expand (List.map fst (Packet.decode_stream bytes ~pos:0))
      in
      let c = Packet.Cursor.make bytes ~pos:0 in
      let rec collect acc =
        Packet.Cursor.advance c;
        match c.Packet.Cursor.kind with
        | Packet.Cursor.Eof -> List.rev acc
        | Packet.Cursor.Psb -> collect (Packet.Psb { tsc = c.Packet.Cursor.value } :: acc)
        | Packet.Cursor.Fup -> collect (Packet.Fup { pc = c.Packet.Cursor.value } :: acc)
        | Packet.Cursor.Tip -> collect (Packet.Tip { pc = c.Packet.Cursor.value } :: acc)
        | Packet.Cursor.Tip_end -> collect (Packet.Tip_end :: acc)
        | Packet.Cursor.Tnt ->
          let bits = c.Packet.Cursor.value and n = c.Packet.Cursor.count in
          let run =
            List.init n (fun j -> Packet.Tnt ((bits lsr j) land 1 = 1))
          in
          collect (List.rev_append run acc)
        | Packet.Cursor.Mtc -> collect (Packet.Mtc { ctc = c.Packet.Cursor.value } :: acc)
        | Packet.Cursor.Tma -> collect (Packet.Tma { tsc = c.Packet.Cursor.value } :: acc)
        | Packet.Cursor.Cyc -> collect (Packet.Cyc { delta = c.Packet.Cursor.value } :: acc)
      in
      collect [] = expected)

let test_psb_found_after_garbage () =
  let buf = Buffer.create 64 in
  Packet.encode buf (Packet.Tnt true);
  Packet.encode buf (Packet.Cyc { delta = 12345 });
  let garbage_len = Buffer.length buf in
  Packet.encode buf (Packet.Psb { tsc = 77 });
  (match Packet.scan_psb (Buffer.to_bytes buf) ~pos:0 with
  | Some pos -> Alcotest.(check int) "skips to PSB" garbage_len pos
  | None -> Alcotest.fail "PSB not found")

let test_truncated_packet_dropped () =
  let buf = Buffer.create 16 in
  Packet.encode buf (Packet.Psb { tsc = 1 });
  Packet.encode buf (Packet.Tip { pc = 0x12345 });
  let whole = Buffer.to_bytes buf in
  let cut = Bytes.sub whole 0 (Bytes.length whole - 1) in
  let decoded = Packet.decode_stream cut ~pos:0 in
  Alcotest.(check int) "only the PSB survives" 1 (List.length decoded)

(* --- tracer + decoder fidelity ------------------------------------------ *)

(* A program with branches, calls, loops and several threads. *)
let fixture_module () =
  let m = Lir.Irmod.create "fixture" in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  Lir.Irmod.declare_global m "lock" (T.Struct "Mutex");
  Lir.Irmod.declare_global m "shared" T.I64;
  B.define m "bump" ~params:[ ("by", T.I64) ] ~ret:T.I64 (fun b ->
      B.mutex_lock b (V.Global "lock");
      let v = B.load b (V.Global "shared") in
      let v' = B.add b v (B.param b 0) in
      B.store b ~value:v' ~ptr:(V.Global "shared");
      B.mutex_unlock b (V.Global "lock");
      B.ret b v');
  B.define m "worker" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 12) (fun i ->
          B.work b ~ns:2_000;
          let odd = B.icmp b Lir.Instr.Eq (B.binop b Lir.Instr.And i (V.i64 1)) (V.i64 1) in
          B.if_ b odd
            ~then_:(fun () -> ignore (B.call b ~ret:T.I64 "bump" [ V.i64 2 ]))
            ~else_:(fun () -> ignore (B.call b ~ret:T.I64 "bump" [ V.i64 1 ])));
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global "lock" ];
      let t1 = B.spawn b "worker" (V.i64 0) in
      let t2 = B.spawn b "worker" (V.i64 1) in
      B.join b t1;
      B.join b t2;
      B.ret_void b);
  Lir.Verify.check_exn m;
  Lir.Irmod.layout m;
  m

(* Run with tracing AND an oracle hook recording what really executed. *)
let run_with_oracle ?(config = Pt.Config.default) ?(seed = 1) m =
  let driver = Pt.Driver.create ~config () in
  let actual : (int, (int * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let oracle ~tid ~time (i : Lir.Instr.t) =
    let l =
      match Hashtbl.find_opt actual tid with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.add actual tid l;
        l
    in
    l := (i.Lir.Instr.iid, time) :: !l;
    0.0
  in
  let hooks =
    Sim.Hooks.combine (Pt.Driver.hooks driver)
      { Sim.Hooks.none with on_instr = Some oracle }
  in
  let cfg = { Sim.Interp.default_config with seed; hooks } in
  let result = Sim.Interp.run ~config:cfg m ~entry:"main" in
  let actual =
    Hashtbl.fold (fun tid l acc -> (tid, List.rev !l) :: acc) actual []
  in
  (result, driver, List.sort compare actual)

let test_decoder_matches_execution () =
  let m = fixture_module () in
  let result, driver, actual = run_with_oracle m in
  Alcotest.(check bool) "completed" true
    (result.Sim.Interp.outcome = Sim.Interp.Completed);
  let snap =
    Pt.Driver.snapshot_now driver ~at_time_ns:result.Sim.Interp.final_time_ns
  in
  List.iter
    (fun (tid, bytes) ->
      let d = Pt.Decoder.decode m ~config:Pt.Config.default bytes in
      Alcotest.(check bool)
        (Printf.sprintf "tid %d decodes clean" tid)
        false d.Pt.Decoder.desynced;
      let decoded_iids = List.map (fun s -> s.Pt.Decoder.iid) (steps_list d) in
      let actual_list = List.assoc tid actual in
      (* The trace ends at the last control event, so the decoded sequence
         must be a prefix of the actual instruction sequence. *)
      let actual_iids = List.map fst actual_list in
      let rec is_prefix a b =
        match a, b with
        | [], _ -> true
        | x :: a', y :: b' -> x = y && is_prefix a' b'
        | _ :: _, [] -> false
      in
      Alcotest.(check bool)
        (Printf.sprintf "tid %d decoded sequence is an execution prefix" tid)
        true
        (is_prefix decoded_iids actual_iids);
      (* Coverage: everything up to the final straight-line tail decodes. *)
      Alcotest.(check bool)
        (Printf.sprintf "tid %d decodes most of the execution" tid)
        true
        (List.length decoded_iids >= List.length actual_iids - 30))
    snap.Pt.Driver.traces

let test_decoder_time_bounds_contain_truth () =
  let m = fixture_module () in
  let result, driver, actual = run_with_oracle m in
  let snap =
    Pt.Driver.snapshot_now driver ~at_time_ns:result.Sim.Interp.final_time_ns
  in
  List.iter
    (fun (tid, bytes) ->
      let d = Pt.Decoder.decode m ~config:Pt.Config.default bytes in
      let actual_list = List.assoc tid actual in
      List.iteri
        (fun k (s : Pt.Decoder.step) ->
          let _, t_actual = List.nth actual_list k in
          Alcotest.(check bool)
            (Printf.sprintf "tid %d step %d lower bound" tid k)
            true
            (float_of_int s.Pt.Decoder.t_lo <= t_actual +. 1.0);
          Alcotest.(check bool)
            (Printf.sprintf "tid %d step %d upper bound" tid k)
            true
            (match s.Pt.Decoder.t_hi with
            | None -> true
            | Some hi -> t_actual <= float_of_int hi +. 1.0))
        (steps_list d))
    snap.Pt.Driver.traces

let test_ring_wrap_resync () =
  (* A tiny buffer forces wrap-around; the decoder must resync at a PSB
     and still produce a valid suffix of the execution. *)
  let m = fixture_module () in
  let config =
    { Pt.Config.default with Pt.Config.buffer_size = 256; psb_period_bytes = 64 }
  in
  let result, driver, actual = run_with_oracle ~config m in
  let snap =
    Pt.Driver.snapshot_now driver ~at_time_ns:result.Sim.Interp.final_time_ns
  in
  let checked = ref 0 in
  List.iter
    (fun (tid, bytes) ->
      let d = Pt.Decoder.decode m ~config bytes in
      (* A full buffer whose first packet is not a PSB has wrapped. *)
      if Bytes.length bytes = 256 then begin
        incr checked;
        Alcotest.(check bool) "no desync" false d.Pt.Decoder.desynced;
        (* The decoded iids must appear as a contiguous subsequence at the
           END of the actual execution (minus the untraced tail). *)
        let decoded = List.map (fun s -> s.Pt.Decoder.iid) (steps_list d) in
        let actual_iids = List.map fst (List.assoc tid actual) in
        let is_sub a b =
          (* a appears contiguously in b *)
          let la = List.length a and lb = List.length b in
          if la > lb then false
          else
            let rec take n = function
              | [] -> []
              | x :: r -> if n = 0 then [] else x :: take (n - 1) r
            in
            let rec drop n l =
              if n = 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r
            in
            let rec go i =
              i + la <= lb && (take la (drop i b) = a || go (i + 1))
            in
            go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "tid %d decoded suffix is contiguous subsequence" tid)
          true (is_sub decoded actual_iids)
      end)
    snap.Pt.Driver.traces;
  Alcotest.(check bool) "at least one buffer wrapped" true (!checked > 0)

let test_tail_stop_reaches_failing_pc () =
  (* Crash mid-block: the tail walk must reach the failing instruction. *)
  let m = Lir.Irmod.create "t" in
  ignore (Lir.Irmod.declare_struct m "Box" [ T.I64 ]);
  Lir.Irmod.declare_global m "box" (T.Ptr (T.Struct "Box"));
  let crash_iid = ref (-1) in
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.work b ~ns:1000;
      let p = B.load b (V.Global "box") in
      let f = B.gep b p 0 in
      let v = B.load b f in
      crash_iid := B.last_iid b;
      B.call_void b Lir.Intrinsics.print_i64 [ v ];
      B.ret_void b);
  Lir.Verify.check_exn m;
  Lir.Irmod.layout m;
  let driver = Pt.Driver.create () in
  let config =
    { Sim.Interp.default_config with hooks = Pt.Driver.hooks driver }
  in
  let result = Sim.Interp.run ~config m ~entry:"main" in
  (match result.Sim.Interp.outcome with
  | Sim.Interp.Failed { failure; time_ns } ->
    let snap = Pt.Driver.snapshot_now driver ~at_time_ns:time_ns in
    let bytes = List.assoc 0 snap.Pt.Driver.traces in
    let pc = (Lir.Irmod.instr_by_iid m !crash_iid).Lir.Instr.pc in
    let d =
      Pt.Decoder.decode m ~config:Pt.Config.default
        ~tail_stop:(pc, int_of_float time_ns)
        bytes
    in
    let iids = List.map (fun s -> s.Pt.Decoder.iid) (steps_list d) in
    Alcotest.(check bool) "failing instr decoded" true (List.mem !crash_iid iids);
    Alcotest.(check int) "it is the crash" (Sim.Failure.failing_iid failure)
      !crash_iid
  | _ -> Alcotest.fail "expected crash")

let test_timing_modes_degrade_gracefully () =
  let m = fixture_module () in
  let run_mode timing =
    let config = { Pt.Config.default with Pt.Config.timing } in
    let result, driver, _ = run_with_oracle ~config m in
    let snap =
      Pt.Driver.snapshot_now driver ~at_time_ns:result.Sim.Interp.final_time_ns
    in
    let bytes = List.assoc 1 snap.Pt.Driver.traces in
    Pt.Decoder.decode m ~config bytes
  in
  let fine = run_mode (Pt.Config.Cyc_and_mtc { mtc_period_ns = 1024 }) in
  let coarse = run_mode (Pt.Config.Mtc_only { mtc_period_ns = 4096 }) in
  let width d =
    List.fold_left
      (fun acc (s : Pt.Decoder.step) ->
        let hi =
          match s.Pt.Decoder.t_hi with
          | Some hi -> min hi 1_000_000_000
          | None -> 1_000_000_000
        in
        acc + (hi - s.Pt.Decoder.t_lo))
      0 (steps_list d)
    / max 1 (List.length (steps_list d))
  in
  Alcotest.(check bool) "coarse timing widens intervals" true
    (width coarse >= width fine);
  Alcotest.(check bool) "both decode the same instructions" true
    (List.map (fun s -> s.Pt.Decoder.iid) (steps_list fine)
    = List.map (fun s -> s.Pt.Decoder.iid) (steps_list coarse))

let test_open_window_is_explicit () =
  (* A trace whose last packets carry no timing (coarse Mtc_only mode, so
     events after the final MTC have no later clock reading): the decoder
     must represent the open upper bound explicitly instead of leaking a
     max_int sentinel into window arithmetic downstream. *)
  let m = fixture_module () in
  let config =
    {
      Pt.Config.default with
      Pt.Config.timing = Pt.Config.Mtc_only { mtc_period_ns = 4096 };
    }
  in
  let result, driver, _ = run_with_oracle ~config m in
  let snap =
    Pt.Driver.snapshot_now driver ~at_time_ns:result.Sim.Interp.final_time_ns
  in
  let open_seen = ref false in
  let steps = ref 0 in
  List.iter
    (fun (_tid, bytes) ->
      let d = Pt.Decoder.decode m ~config bytes in
      List.iter
        (fun (s : Pt.Decoder.step) ->
          incr steps;
          match s.Pt.Decoder.t_hi with
          | None -> open_seen := true
          | Some hi ->
            (* Closed windows are well-formed: hi - lo never overflows
               and is non-negative. *)
            Alcotest.(check bool) "window non-negative" true
              (hi - s.Pt.Decoder.t_lo >= 0 && hi < max_int / 2))
        (steps_list d))
    snap.Pt.Driver.traces;
  Alcotest.(check bool) "decoded something" true (!steps > 0);
  Alcotest.(check bool) "the untimed tail has an explicitly open bound" true
    !open_seen

let test_tracer_stats () =
  let m = fixture_module () in
  let result, driver, _ = run_with_oracle m in
  ignore result;
  let tr = Pt.Driver.tracer driver in
  Alcotest.(check bool) "events seen" true (Pt.Tracer.events_seen tr > 50);
  Alcotest.(check bool) "bytes written" true (Pt.Tracer.bytes_written tr > 100);
  Alcotest.(check int) "three buffers" 3 (Pt.Tracer.thread_count tr);
  Alcotest.(check bool) "timing packets flow" true
    (Pt.Tracer.timing_packets tr > 10)

let test_watchpoint_fires () =
  let m = fixture_module () in
  Lir.Irmod.layout m;
  (* Watch the first instruction of bump. *)
  let pc = Lir.Irmod.block_start_pc m ~fname:"bump" ~label:"entry" in
  let driver = Pt.Driver.create () in
  Pt.Driver.set_watchpoints driver ~pcs:[ pc ];
  let config =
    { Sim.Interp.default_config with hooks = Pt.Driver.hooks driver }
  in
  ignore (Sim.Interp.run ~config m ~entry:"main");
  match Pt.Driver.watch_snapshot driver with
  | Some snap ->
    Alcotest.(check (option int)) "trigger pc" (Some pc) snap.Pt.Driver.trigger_pc;
    Alcotest.(check bool) "has traces" true (snap.Pt.Driver.traces <> [])
  | None -> Alcotest.fail "watchpoint did not fire"

let test_decoder_empty_and_garbage () =
  let m = fixture_module () in
  let d = Pt.Decoder.decode m ~config:Pt.Config.default Bytes.empty in
  Alcotest.(check int) "empty snapshot, no steps" 0 (List.length (steps_list d));
  (* Garbage without a PSB: everything counted as lost, nothing decoded. *)
  let garbage = Bytes.make 64 '\x07' in
  let d = Pt.Decoder.decode m ~config:Pt.Config.default garbage in
  Alcotest.(check int) "garbage, no steps" 0 (List.length (steps_list d));
  Alcotest.(check int) "all bytes lost" 64 d.Pt.Decoder.lost_bytes

let prop_decoder_total_on_corrupt_rings =
  (* Found by the chaos harness: a corrupted ring snapshot used to escape
     the decoder as Invalid_argument ("Packet.decode: bad header ...") or
     as Not_found when a damaged TIP packet carried a pc that maps to no
     instruction.  Ring bytes are untrusted in-production input: the
     decoder must decode what it can, resync or flag desync — never
     raise. *)
  let m = fixture_module () in
  let result, driver, _ = run_with_oracle m in
  let traces =
    (Pt.Driver.snapshot_now driver ~at_time_ns:result.Sim.Interp.final_time_ns)
      .Pt.Driver.traces
  in
  QCheck.Test.make
    ~name:"decoder is total and matches the reference on corrupted rings"
    ~count:200
    QCheck.(int_bound 100_000)
    (fun seed ->
      let prng = Snorlax_util.Prng.create ~seed in
      List.for_all
        (fun (_tid, ring) ->
          let ring = Bytes.copy ring in
          let len = Bytes.length ring in
          let ring =
            if len = 0 then ring
            else begin
              (* Overwrite a span with garbage, flip a bit, maybe cut. *)
              let start = Snorlax_util.Prng.int prng ~bound:len in
              let span =
                1 + Snorlax_util.Prng.int prng ~bound:(min 24 (len - start))
              in
              for i = start to start + span - 1 do
                Bytes.set ring i
                  (Char.chr (Snorlax_util.Prng.int prng ~bound:256))
              done;
              let p = Snorlax_util.Prng.int prng ~bound:len in
              let bit = Snorlax_util.Prng.int prng ~bound:8 in
              Bytes.set ring p
                (Char.chr (Char.code (Bytes.get ring p) lxor (1 lsl bit)));
              if Snorlax_util.Prng.bool prng then
                Bytes.sub ring 0 (Snorlax_util.Prng.int prng ~bound:len)
              else ring
            end
          in
          (* Totality, and bit-identical agreement between the cursor
             walker and the frozen v1 reference pipeline — corrupt bytes
             must degrade identically in both. *)
          match
            ( Pt.Decoder.decode m ~config:Pt.Config.default ring,
              Pt.Decoder.decode_reference m ~config:Pt.Config.default ring )
          with
          | a, b -> a = b
          | exception _ -> false)
        traces)

let test_thread_ended_surfaced () =
  (* The decoder used to consume TIP.END and then throw the fact away;
     [thread_ended] now distinguishes a trace that is complete (the
     thread's entry function returned) from one cut by the ring. *)
  let m = fixture_module () in
  let result, driver, _ = run_with_oracle m in
  let traces =
    (Pt.Driver.snapshot_now driver ~at_time_ns:result.Sim.Interp.final_time_ns)
      .Pt.Driver.traces
  in
  let config = Pt.Config.default in
  let ended =
    List.filter
      (fun (_, ring) -> (Pt.Decoder.decode m ~config ring).Pt.Decoder.thread_ended)
      traces
  in
  Alcotest.(check bool)
    "a run to completion decodes ended threads" true
    (List.length ended > 0);
  (* Cutting the ring's final byte removes the TIP.END: same trace, but
     no longer a completed thread. *)
  let _, ring = List.hd ended in
  let cut = Bytes.sub ring 0 (Bytes.length ring - 1) in
  let d = Pt.Decoder.decode m ~config cut in
  Alcotest.(check bool) "truncated trace is not ended" false
    d.Pt.Decoder.thread_ended;
  (* Both engines agree on the flag. *)
  List.iter
    (fun (_, ring) ->
      Alcotest.(check bool)
        "engines agree on thread_ended"
        (Pt.Decoder.decode_raw m ~config ring).Pt.Decoder.thread_ended
        (Pt.Decoder.decode_reference m ~config ring).Pt.Decoder.thread_ended)
    traces

let test_decoder_mismatched_stream_desyncs () =
  let m = fixture_module () in
  Lir.Irmod.layout m;
  (* A syntactically valid stream whose control packets cannot match the
     program: sync at main's entry then claim a conditional branch. *)
  let buf = Buffer.create 32 in
  Packet.encode buf (Packet.Psb { tsc = 0 });
  Packet.encode buf
    (Packet.Fup { pc = Lir.Irmod.block_start_pc m ~fname:"main" ~label:"entry" });
  Packet.encode buf (Packet.Tnt true);
  let d = Pt.Decoder.decode m ~config:Pt.Config.default (Buffer.to_bytes buf) in
  Alcotest.(check bool) "flagged as desync" true d.Pt.Decoder.desynced

(* --- decode cache -------------------------------------------------------- *)

module Cache = Pt.Decode_cache

let cache_fixture () =
  let m = fixture_module () in
  let result, driver, _ = run_with_oracle m in
  let snap =
    Pt.Driver.snapshot_now driver ~at_time_ns:result.Sim.Interp.final_time_ns
  in
  let _, bytes = List.hd snap.Pt.Driver.traces in
  (m, bytes)

let test_cache_find_add_stats () =
  let m, bytes = cache_fixture () in
  let c = Cache.create ~capacity:4 () in
  let k = Cache.key m ~config:Pt.Config.default bytes in
  Alcotest.(check bool) "cold probe misses" true (Cache.find c k = None);
  let d = Pt.Decoder.decode m ~config:Pt.Config.default bytes in
  Cache.add c k d;
  (match Cache.find c k with
  | Some d' ->
    (* The cached result is shared, not copied: steps arrays are the
       contract's "treat as immutable" values. *)
    Alcotest.(check bool) "hit shares the result" true (d' == d)
  | None -> Alcotest.fail "expected a hit after add");
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Alcotest.(check int) "evictions" 0 s.Cache.evictions;
  Alcotest.(check int) "entries" 1 s.Cache.entries

let test_cache_key_sensitivity () =
  let m, bytes = cache_fixture () in
  let config = Pt.Config.default in
  let k = Cache.key m ~config bytes in
  Alcotest.(check string) "same inputs, same key" k (Cache.key m ~config bytes);
  (* The tail replay target changes the decoded step suffix, so it MUST
     change the key: a no-tail decode cached for a tailed request would
     silently truncate the failing thread's steps. *)
  let k_tail = Cache.key m ~config ~tail_stop:(0x40, 900) bytes in
  Alcotest.(check bool) "tail_stop in key" false (k = k_tail);
  Alcotest.(check bool) "different tail pc differs" false
    (k_tail = Cache.key m ~config ~tail_stop:(0x44, 900) bytes);
  Alcotest.(check bool) "different tail time differs" false
    (k_tail = Cache.key m ~config ~tail_stop:(0x40, 901) bytes);
  let other_cfg = { config with Pt.Config.timing = Pt.Config.No_timing } in
  Alcotest.(check bool) "config in key" false
    (k = Cache.key m ~config:other_cfg bytes);
  let flipped = Bytes.copy bytes in
  Bytes.set flipped 0 (Char.chr (Char.code (Bytes.get flipped 0) lxor 1));
  Alcotest.(check bool) "snapshot bytes in key" false
    (k = Cache.key m ~config flipped)

let test_cache_lru_eviction () =
  let m, bytes = cache_fixture () in
  let c = Cache.create ~capacity:2 () in
  let d = Pt.Decoder.decode m ~config:Pt.Config.default bytes in
  let key_n n = Cache.key m ~config:Pt.Config.default ~tail_stop:(n, 0) bytes in
  Cache.add c (key_n 1) d;
  Cache.add c (key_n 2) d;
  (* Touch 1 so 2 becomes the LRU victim when 3 arrives. *)
  Alcotest.(check bool) "1 hits" true (Cache.find c (key_n 1) <> None);
  Cache.add c (key_n 3) d;
  Alcotest.(check bool) "1 survives" true (Cache.find c (key_n 1) <> None);
  Alcotest.(check bool) "2 evicted" true (Cache.find c (key_n 2) = None);
  Alcotest.(check bool) "3 present" true (Cache.find c (key_n 3) <> None);
  let s = Cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check int) "entries at capacity" 2 s.Cache.entries

let test_cache_capacity_zero_disabled () =
  let m, bytes = cache_fixture () in
  let c = Cache.create ~capacity:0 () in
  Alcotest.(check bool) "disabled" false (Cache.enabled c);
  let k = Cache.key m ~config:Pt.Config.default bytes in
  let d = Pt.Decoder.decode m ~config:Pt.Config.default bytes in
  Cache.add c k d;
  Alcotest.(check bool) "add is a no-op" true (Cache.find c k = None);
  Alcotest.(check int) "nothing stored" 0 (Cache.stats c).Cache.entries

let test_cache_set_capacity_shrinks () =
  let m, bytes = cache_fixture () in
  let c = Cache.create ~capacity:8 () in
  let d = Pt.Decoder.decode m ~config:Pt.Config.default bytes in
  for n = 1 to 6 do
    Cache.add c (Cache.key m ~config:Pt.Config.default ~tail_stop:(n, 0) bytes) d
  done;
  Cache.set_capacity c 2;
  let s = Cache.stats c in
  Alcotest.(check int) "shrunk to capacity" 2 s.Cache.entries;
  Alcotest.(check int) "shrink counted as evictions" 4 s.Cache.evictions;
  Cache.clear c;
  let s = Cache.stats c in
  Alcotest.(check int) "clear empties" 0 s.Cache.entries;
  Alcotest.(check int) "clear resets counters" 0 s.Cache.evictions

let test_cache_hit_equals_fresh_decode () =
  let m, bytes = cache_fixture () in
  let c = Cache.create ~capacity:4 () in
  let config = Pt.Config.default in
  let k = Cache.key m ~config bytes in
  Cache.add c k (Pt.Decoder.decode m ~config bytes);
  let cached = Option.get (Cache.find c k) in
  let fresh = Pt.Decoder.decode m ~config bytes in
  Alcotest.(check bool) "steps equal" true
    (cached.Pt.Decoder.steps = fresh.Pt.Decoder.steps);
  Alcotest.(check int) "lost_bytes equal" fresh.Pt.Decoder.lost_bytes
    cached.Pt.Decoder.lost_bytes;
  Alcotest.(check bool) "desynced equal" fresh.Pt.Decoder.desynced
    cached.Pt.Decoder.desynced

let test_cache_striping () =
  (* Small caches keep one segment — the exact global LRU the eviction
     unit tests above rely on; big caches stripe, and capacity spreads
     across the segments with the summed stats still reconciling. *)
  let small = Cache.create ~capacity:8 () in
  Alcotest.(check int) "small cache single-segment" 1 (Cache.segments small);
  let big = Cache.create ~capacity:256 () in
  Alcotest.(check bool) "big cache stripes" true (Cache.segments big > 1);
  let m, bytes = cache_fixture () in
  let d = Pt.Decoder.decode m ~config:Pt.Config.default bytes in
  for n = 1 to 300 do
    Cache.add big (Printf.sprintf "k%d" n) d
  done;
  let s = Cache.stats big in
  Alcotest.(check bool) "entries bounded by capacity" true
    (s.Cache.entries <= 256);
  let segs = Cache.segment_stats big in
  Alcotest.(check int) "one stats row per segment" (Cache.segments big)
    (Array.length segs);
  let sum f = Array.fold_left (fun a (x : Cache.stats) -> a + f x) 0 segs in
  Alcotest.(check int) "per-segment entries sum" s.Cache.entries
    (sum (fun x -> x.Cache.entries));
  Alcotest.(check int) "per-segment evictions sum" s.Cache.evictions
    (sum (fun x -> x.Cache.evictions))

(* One decode result shared by every op: the hammer exercises the
   cache's locking and accounting, not the decoder. *)
let hammer_fixture =
  lazy
    (let m, bytes = cache_fixture () in
     Pt.Decoder.decode m ~config:Pt.Config.default bytes)

let prop_cache_multidomain_accounting =
  QCheck.Test.make
    ~name:"striped cache accounting reconciles under concurrent domains"
    ~count:10
    QCheck.(pair (int_range 2 4) (int_range 0 1000))
    (fun (ndom, salt) ->
      let d = Lazy.force hammer_fixture in
      let c = Cache.create ~capacity:128 () in
      let nkeys = 200 and ops = 400 in
      let worker w () =
        let probes = ref 0 in
        for i = 0 to ops - 1 do
          let k = Printf.sprintf "k%d" (((i * (w + salt + 1)) + w) mod nkeys) in
          incr probes;
          match Cache.find c k with
          | Some _ -> ()
          | None -> Cache.add c k d
        done;
        !probes
      in
      let doms = List.init ndom (fun w -> Domain.spawn (worker w)) in
      let probes = List.fold_left (fun a t -> a + Domain.join t) 0 doms in
      let s = Cache.stats c in
      let segs = Cache.segment_stats c in
      let sum f = Array.fold_left (fun a (x : Cache.stats) -> a + f x) 0 segs in
      (* Every probe is a hit or a miss, never lost or double-counted;
         the per-segment rows sum to the summed stats; entries stay
         within capacity; and nothing materializes entries out of thin
         air (every entry and eviction traces back to a missed add). *)
      s.Cache.hits + s.Cache.misses = probes
      && sum (fun x -> x.Cache.hits) = s.Cache.hits
      && sum (fun x -> x.Cache.misses) = s.Cache.misses
      && sum (fun x -> x.Cache.evictions) = s.Cache.evictions
      && sum (fun x -> x.Cache.entries) = s.Cache.entries
      && s.Cache.entries <= 128
      && s.Cache.entries + s.Cache.evictions <= s.Cache.misses
      && Array.length segs = Cache.segments c)

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    ( "pt.packets",
      [
        qtest prop_packet_roundtrip;
        qtest prop_psb_unique;
        qtest prop_packed_tnt_equals_per_bit;
        qtest prop_cursor_matches_decode_stream;
        Alcotest.test_case "psb after garbage" `Quick test_psb_found_after_garbage;
        Alcotest.test_case "truncated dropped" `Quick test_truncated_packet_dropped;
      ] );
    ( "pt.decoder",
      [
        Alcotest.test_case "matches execution" `Quick test_decoder_matches_execution;
        Alcotest.test_case "time bounds contain truth" `Quick
          test_decoder_time_bounds_contain_truth;
        Alcotest.test_case "ring wrap resync" `Quick test_ring_wrap_resync;
        Alcotest.test_case "tail reaches crash" `Quick test_tail_stop_reaches_failing_pc;
        Alcotest.test_case "timing modes" `Quick test_timing_modes_degrade_gracefully;
        Alcotest.test_case "open time window is explicit" `Quick
          test_open_window_is_explicit;
        Alcotest.test_case "empty and garbage input" `Quick
          test_decoder_empty_and_garbage;
        Alcotest.test_case "mismatched stream desyncs" `Quick
          test_decoder_mismatched_stream_desyncs;
        Alcotest.test_case "thread_ended surfaced" `Quick
          test_thread_ended_surfaced;
        qtest prop_decoder_total_on_corrupt_rings;
      ] );
    ( "pt.driver",
      [
        Alcotest.test_case "tracer stats" `Quick test_tracer_stats;
        Alcotest.test_case "watchpoint fires" `Quick test_watchpoint_fires;
      ] );
    ( "pt.decode_cache",
      [
        Alcotest.test_case "find/add/stats" `Quick test_cache_find_add_stats;
        Alcotest.test_case "key sensitivity" `Quick test_cache_key_sensitivity;
        Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
        Alcotest.test_case "capacity 0 disables" `Quick
          test_cache_capacity_zero_disabled;
        Alcotest.test_case "set_capacity shrinks, clear resets" `Quick
          test_cache_set_capacity_shrinks;
        Alcotest.test_case "hit equals fresh decode" `Quick
          test_cache_hit_equals_fresh_decode;
        Alcotest.test_case "striping" `Quick test_cache_striping;
        qtest prop_cache_multidomain_accounting;
      ] );
  ]
