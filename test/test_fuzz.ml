(* Property tests over randomly generated programs: a seeded generator
   builds arbitrary (but verifiable) multithreaded LIR modules, and we
   check end-to-end invariants — the verifier accepts them, execution is
   deterministic per seed, and the PT decode of every thread is a timed
   prefix of what the interpreter actually executed. *)

module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty
module Prng = Snorlax_util.Prng

(* --- random program generator ------------------------------------------- *)

(* Straight-line/body statements use a small stack of i64 values rooted in
   allocas and two shared globals; control flow comes from bounded loops
   and conditionals; cross-thread traffic from lock-protected updates. *)
let gen_body prng b ~depth ~fuel =
  let slot = B.alloca b ~name:"slot" T.I64 in
  B.store b ~value:(V.i64 (Prng.int prng ~bound:100)) ~ptr:slot;
  let rec stmt ~depth ~fuel =
    if !fuel > 0 then begin
      decr fuel;
      match Prng.int prng ~bound:(if depth > 2 then 6 else 9) with
      | 0 ->
        let v = B.load b slot in
        B.store b ~value:(B.add b v (V.i64 (Prng.int prng ~bound:10))) ~ptr:slot
      | 1 ->
        let v = B.load b (V.Global "shared_a") in
        B.store b ~value:(B.binop b Lir.Instr.Xor v (V.i64 3)) ~ptr:slot;
        ignore v
      | 2 -> B.work b ~ns:(10 + Prng.int prng ~bound:500)
      | 3 ->
        B.mutex_lock b (V.Global "lock");
        let v = B.load b (V.Global "shared_b") in
        B.store b ~value:(B.add b v (V.i64 1)) ~ptr:(V.Global "shared_b");
        B.mutex_unlock b (V.Global "lock")
      | 4 ->
        let v = B.load b slot in
        B.call_void b Lir.Intrinsics.print_i64 [ v ]
      | 5 ->
        let r = B.rand b ~bound:7 in
        B.store b ~value:r ~ptr:slot
      | 6 ->
        (* conditional *)
        let v = B.load b slot in
        let c = B.icmp b Lir.Instr.Slt v (V.i64 (Prng.int prng ~bound:100)) in
        B.if_ b c
          ~then_:(fun () -> stmt ~depth:(depth + 1) ~fuel)
          ~else_:(fun () -> stmt ~depth:(depth + 1) ~fuel)
      | 7 ->
        (* bounded loop *)
        let n = 1 + Prng.int prng ~bound:5 in
        B.for_ b ~from:0 ~below:(V.i64 n) (fun _ ->
            stmt ~depth:(depth + 1) ~fuel)
      | _ ->
        (* call a helper if one exists *)
        if Prng.bool prng then
          ignore (B.call b ~ret:T.I64 "helper" [ B.load b slot ])
        else stmt ~depth:(depth + 1) ~fuel
    end
  in
  let n = 2 + Prng.int prng ~bound:6 in
  for _ = 1 to n do
    stmt ~depth ~fuel
  done

let gen_module seed =
  let prng = Prng.create ~seed in
  let m = Lir.Irmod.create (Printf.sprintf "fuzz%d" seed) in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  Lir.Irmod.declare_global m "lock" (T.Struct "Mutex");
  Lir.Irmod.declare_global m "shared_a" T.I64;
  Lir.Irmod.declare_global m "shared_b" T.I64;
  B.define m "helper" ~params:[ ("x", T.I64) ] ~ret:T.I64 (fun b ->
      let x = B.param b 0 in
      let c = B.icmp b Lir.Instr.Sgt x (V.i64 50) in
      let big = B.fresh_label b "big" in
      let small = B.fresh_label b "small" in
      B.cond_br b c big small;
      B.start_block b big;
      B.ret b (B.sub b x (V.i64 50));
      B.start_block b small;
      B.ret b (B.add b x (V.i64 1)));
  let nworkers = 1 + Prng.int prng ~bound:3 in
  for w = 0 to nworkers - 1 do
    B.define m
      (Printf.sprintf "worker%d" w)
      ~params:[ ("arg", T.I64) ] ~ret:T.Void
      (fun b ->
        gen_body prng b ~depth:0 ~fuel:(ref (8 + Prng.int prng ~bound:16));
        B.ret_void b)
  done;
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global "lock" ];
      let tids =
        List.init nworkers (fun w ->
            B.spawn b (Printf.sprintf "worker%d" w) (V.i64 w))
      in
      List.iter (fun t -> B.join b t) tids;
      B.ret_void b);
  m

(* --- properties ---------------------------------------------------------- *)

let prop_generated_verify =
  QCheck.Test.make ~name:"fuzz: generated modules verify" ~count:60
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let m = gen_module seed in
      Lir.Verify.check m = [])

let prop_generated_complete =
  QCheck.Test.make ~name:"fuzz: generated modules run to completion" ~count:40
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let m = gen_module seed in
      let r = Sim.Interp.run m ~entry:"main" in
      r.Sim.Interp.outcome = Sim.Interp.Completed)

let prop_run_deterministic =
  QCheck.Test.make ~name:"fuzz: same seed, same execution" ~count:25
    QCheck.(pair (int_range 1 5_000) (int_range 1 50))
    (fun (mseed, rseed) ->
      let run () =
        let m = gen_module mseed in
        let config = { Sim.Interp.default_config with seed = rseed } in
        let r = Sim.Interp.run ~config m ~entry:"main" in
        (r.Sim.Interp.output, r.Sim.Interp.steps, r.Sim.Interp.final_time_ns)
      in
      run () = run ())

(* Decoder fidelity against the execution oracle, over random programs. *)
let decode_matches_oracle mseed rseed =
  let m = gen_module mseed in
  Lir.Irmod.layout m;
  let driver = Pt.Driver.create () in
  let actual : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  let oracle ~tid ~time:_ (i : Lir.Instr.t) =
    (match Hashtbl.find_opt actual tid with
    | Some l -> l := i.Lir.Instr.iid :: !l
    | None -> Hashtbl.add actual tid (ref [ i.Lir.Instr.iid ]));
    0.0
  in
  let hooks =
    Sim.Hooks.combine (Pt.Driver.hooks driver)
      { Sim.Hooks.none with on_instr = Some oracle }
  in
  let config = { Sim.Interp.default_config with seed = rseed; hooks } in
  let r = Sim.Interp.run ~config m ~entry:"main" in
  r.Sim.Interp.outcome = Sim.Interp.Completed
  && List.for_all
       (fun (tid, bytes) ->
         let d = Pt.Decoder.decode m ~config:Pt.Config.default bytes in
         if d.Pt.Decoder.desynced then false
         else
           let decoded = List.map (fun s -> s.Pt.Decoder.iid) (Array.to_list d.Pt.Decoder.steps) in
           let actual_iids =
             match Hashtbl.find_opt actual tid with
             | Some l -> List.rev !l
             | None -> []
           in
           let rec is_prefix a b =
             match a, b with
             | [], _ -> true
             | x :: a', y :: b' -> x = y && is_prefix a' b'
             | _ :: _, [] -> false
           in
           is_prefix decoded actual_iids)
       (Pt.Driver.snapshot_now driver ~at_time_ns:r.Sim.Interp.final_time_ns)
         .Pt.Driver.traces

let prop_decode_prefix =
  QCheck.Test.make
    ~name:"fuzz: decoded trace is an execution prefix (random programs)"
    ~count:30
    QCheck.(pair (int_range 1 5_000) (int_range 1 20))
    (fun (mseed, rseed) -> decode_matches_oracle mseed rseed)

(* Time-interval soundness on random programs. *)
let prop_decode_time_bounds =
  QCheck.Test.make
    ~name:"fuzz: decoded intervals contain true execution times" ~count:15
    QCheck.(int_range 1 5_000)
    (fun mseed ->
      let m = gen_module mseed in
      Lir.Irmod.layout m;
      let driver = Pt.Driver.create () in
      let actual : (int, float list ref) Hashtbl.t = Hashtbl.create 8 in
      let oracle ~tid ~time (_ : Lir.Instr.t) =
        (match Hashtbl.find_opt actual tid with
        | Some l -> l := time :: !l
        | None -> Hashtbl.add actual tid (ref [ time ]));
        0.0
      in
      let hooks =
        Sim.Hooks.combine (Pt.Driver.hooks driver)
          { Sim.Hooks.none with on_instr = Some oracle }
      in
      let config = { Sim.Interp.default_config with seed = 5; hooks } in
      let r = Sim.Interp.run ~config m ~entry:"main" in
      r.Sim.Interp.outcome = Sim.Interp.Completed
      && List.for_all
           (fun (tid, bytes) ->
             let d = Pt.Decoder.decode m ~config:Pt.Config.default bytes in
             let times =
               match Hashtbl.find_opt actual tid with
               | Some l -> Array.of_list (List.rev !l)
               | None -> [||]
             in
             List.for_all
               (fun (k, (s : Pt.Decoder.step)) ->
                 k < Array.length times
                 && float_of_int s.Pt.Decoder.t_lo <= times.(k) +. 1.0
                 && (match s.Pt.Decoder.t_hi with
                    | None -> true
                    | Some hi -> times.(k) <= float_of_int hi +. 1.0))
               (List.mapi (fun k s -> (k, s)) (Array.to_list d.Pt.Decoder.steps)))
           (Pt.Driver.snapshot_now driver ~at_time_ns:r.Sim.Interp.final_time_ns)
             .Pt.Driver.traces)

(* The points-to analysis is sound on random programs in one useful
   sense: scope-restricting to the executed set never *adds* objects. *)
let prop_scope_restriction_shrinks =
  QCheck.Test.make ~name:"fuzz: scope restriction only shrinks points-to"
    ~count:15
    QCheck.(int_range 1 5_000)
    (fun mseed ->
      let m = gen_module mseed in
      Lir.Irmod.layout m;
      let full = Analysis.Pointsto.analyze_all m in
      let restricted = Analysis.Pointsto.analyze m ~scope:(fun iid -> iid mod 2 = 0) in
      let ok = ref true in
      Lir.Irmod.iter_instrs m (fun _ _ i ->
          if Lir.Instr.is_memory_access i then begin
            let o_full = Analysis.Pointsto.accessed_objects full i in
            let o_restr = Analysis.Pointsto.accessed_objects restricted i in
            if not (Analysis.Memobj.Set.subset o_restr o_full) then ok := false
          end);
      !ok)

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    ( "fuzz",
      [
        qtest prop_generated_verify;
        qtest prop_generated_complete;
        qtest prop_run_deterministic;
        qtest prop_decode_prefix;
        qtest prop_decode_time_bounds;
        qtest prop_scope_restriction_shrinks;
      ] );
  ]
