(* The fleet subsystem: wire-format round-trips (including on corrupt
   input, which must return Error and never raise), signature dedup,
   the collector's sampling and success-routing policies, and a small
   end-to-end deployment whose cross-endpoint diagnosis must land on the
   known root cause. *)

module Report = Snorlax_core.Report
module Wire = Fleet.Wire
module Collector = Fleet.Collector

(* --- fixtures ------------------------------------------------------------ *)

let sample_traces =
  [ (0, Bytes.of_string "\x01\x02\x03ring"); (2, Bytes.of_string "") ]

let crash_report =
  {
    Report.info =
      Report.Crash_info { failing_iid = 51; crash_kind = Report.Bad_pointer };
    failing_tid = 1;
    failure_time_ns = 123_456;
    traces = sample_traces;
  }

let deadlock_report =
  {
    Report.info = Report.Deadlock_info { blocked = [ (0, 7); (1, 9) ] };
    failing_tid = 1;
    failure_time_ns = 42;
    traces = [ (1, Bytes.of_string "x") ];
  }

let success_report =
  {
    Report.s_traces = sample_traces;
    trigger_time_ns = 99;
    trigger_tid = 0;
    trigger_pc = 0x10d4;
  }

let envelope ?prov payload =
  {
    Wire.endpoint = 3;
    seed = 1717;
    bug_id = "pbzip2-1";
    config = Pt.Config.default;
    prov;
    payload;
  }

let sample_prov = { Wire.runs = 37; sync_ops = 412; sync_digest = 0x5eed1a2b }

let check_roundtrip name env =
  match Wire.decode (Wire.encode env) with
  | Error msg -> Alcotest.failf "%s: decode error: %s" name msg
  | Ok got ->
    Alcotest.(check int) (name ^ " endpoint") env.Wire.endpoint got.Wire.endpoint;
    Alcotest.(check int) (name ^ " seed") env.Wire.seed got.Wire.seed;
    Alcotest.(check string) (name ^ " bug id") env.Wire.bug_id got.Wire.bug_id;
    Alcotest.(check bool)
      (name ^ " config") true
      (got.Wire.config.Pt.Config.buffer_size
       = env.Wire.config.Pt.Config.buffer_size
      && got.Wire.config.Pt.Config.timing = env.Wire.config.Pt.Config.timing
      && got.Wire.config.Pt.Config.psb_period_bytes
         = env.Wire.config.Pt.Config.psb_period_bytes);
    Alcotest.(check bool)
      (name ^ " provenance") true (got.Wire.prov = env.Wire.prov);
    Alcotest.(check bool)
      (name ^ " payload") true
      (match (env.Wire.payload, got.Wire.payload) with
      | Wire.Failing a, Wire.Failing b -> a = b
      | Wire.Success a, Wire.Success b -> a = b
      | _ -> false)

(* --- wire round-trips ---------------------------------------------------- *)

let test_wire_roundtrip_crash () =
  check_roundtrip "crash" (envelope (Wire.Failing crash_report))

let test_wire_roundtrip_deadlock () =
  check_roundtrip "deadlock" (envelope (Wire.Failing deadlock_report))

let test_wire_roundtrip_success () =
  check_roundtrip "success" (envelope (Wire.Success success_report))

let test_wire_roundtrip_provenance () =
  check_roundtrip "provenance"
    (envelope ~prov:sample_prov (Wire.Failing crash_report))

let test_wire_v1_back_compat () =
  (* A not-yet-upgraded endpoint ships the version-1 layout (no
     provenance block); the v2 decoder must accept it with prov=None. *)
  let env = envelope ~prov:sample_prov (Wire.Success success_report) in
  match Wire.decode (Wire.encode_v1 env) with
  | Error msg -> Alcotest.failf "v1 decode error: %s" msg
  | Ok got ->
    Alcotest.(check bool) "v1 has no provenance" true (got.Wire.prov = None);
    Alcotest.(check string) "v1 bug id survives" env.Wire.bug_id got.Wire.bug_id;
    Alcotest.(check bool)
      "v1 payload survives" true
      (match got.Wire.payload with
      | Wire.Success s -> s = success_report
      | Wire.Failing _ -> false)

let test_wire_roundtrip_timing_modes () =
  List.iter
    (fun timing ->
      check_roundtrip "timing mode"
        (envelope (Wire.Failing crash_report)
        |> fun e ->
        { e with Wire.config = { e.Wire.config with Pt.Config.timing } }))
    [
      Pt.Config.Cyc_and_mtc { mtc_period_ns = 64 };
      Pt.Config.Mtc_only { mtc_period_ns = 2048 };
      Pt.Config.No_timing;
    ]

let gen_envelope =
  QCheck.Gen.(
    let* endpoint = int_bound 1000 in
    let* seed = int in
    let* bug_id = string_size ~gen:printable (int_bound 20) in
    let* n_traces = int_bound 3 in
    let* traces =
      list_size (return n_traces)
        (pair (int_bound 8) (map Bytes.of_string (string_size (int_bound 50))))
    in
    let* failing = bool in
    let* payload =
      if failing then
        let* iid = int_bound 10_000 in
        let* tid = int_bound 16 in
        let* time = int_bound 1_000_000_000 in
        return
          (Wire.Failing
             {
               Report.info =
                 Report.Crash_info
                   { failing_iid = iid; crash_kind = Report.Use_after_free };
               failing_tid = tid;
               failure_time_ns = time;
               traces;
             })
      else
        let* tid = int_bound 16 in
        let* pc = int_bound 1_000_000 in
        let* time = int_bound 1_000_000_000 in
        return
          (Wire.Success
             {
               Report.s_traces = traces;
               trigger_time_ns = time;
               trigger_tid = tid;
               trigger_pc = pc;
             })
    in
    let* prov =
      let* has_prov = bool in
      if not has_prov then return None
      else
        let* runs = int_bound 100_000 in
        let* sync_ops = int_bound 1_000_000 in
        let* sync_digest = int_bound max_int in
        return (Some { Wire.runs; sync_ops; sync_digest })
    in
    return
      {
        Wire.endpoint;
        seed;
        bug_id;
        config = Pt.Config.default;
        prov;
        payload;
      })

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"Wire round-trips arbitrary envelopes" ~count:300
    (QCheck.make gen_envelope)
    (fun env ->
      match Wire.decode (Wire.encode env) with
      | Ok got -> got = env
      | Error _ -> false)

(* --- corrupt input: Error, never an exception ---------------------------- *)

let decode_total b =
  match Wire.decode b with
  | Ok _ -> `Ok
  | Error _ -> `Error
  | exception _ -> `Raised

let test_wire_truncations () =
  (* Every proper prefix of a valid packet must decode to Error — with a
     provenance block present so its truncations are covered too. *)
  let full = Wire.encode (envelope ~prov:sample_prov (Wire.Failing crash_report)) in
  for len = 0 to Bytes.length full - 1 do
    match decode_total (Bytes.sub full 0 len) with
    | `Error -> ()
    | `Ok -> Alcotest.failf "prefix of %d bytes decoded Ok" len
    | `Raised -> Alcotest.failf "prefix of %d bytes raised" len
  done

let test_wire_bad_version () =
  let full = Wire.encode (envelope (Wire.Success success_report)) in
  Bytes.set full 0 '\x7f';
  Alcotest.(check bool) "bad version is Error" true (decode_total full = `Error)

let test_wire_trailing_garbage () =
  let full = Wire.encode (envelope (Wire.Success success_report)) in
  let padded = Bytes.cat full (Bytes.of_string "\x00") in
  Alcotest.(check bool) "trailing garbage is Error" true
    (decode_total padded = `Error)

let test_wire_empty () =
  Alcotest.(check bool) "empty is Error" true
    (decode_total Bytes.empty = `Error)

let prop_wire_corrupt_never_raises =
  QCheck.Test.make ~name:"Wire.decode is total on random bytes" ~count:500
    QCheck.(string_of_size Gen.(int_range 0 200))
    (fun s -> decode_total (Bytes.of_string s) <> `Raised)

let prop_wire_flip_never_raises =
  (* Single-byte corruption of a real packet: decode may succeed or fail,
     but must not raise. *)
  QCheck.Test.make ~name:"Wire.decode survives single-byte corruption"
    ~count:300
    QCheck.(pair small_nat (int_bound 255))
    (fun (pos, byte) ->
      let b = Wire.encode (envelope (Wire.Failing crash_report)) in
      let pos = pos mod Bytes.length b in
      Bytes.set b pos (Char.chr byte);
      decode_total b <> `Raised)

(* --- collector ----------------------------------------------------------- *)

(* A real failing report (with decodable rings) for collector tests:
   reproduce pbzip2-1 once per "endpoint" seed range. *)
let collected_fixture =
  lazy
    (let bug = Corpus.Registry.find_exn "pbzip2-1" in
     match
       Corpus.Runner.collect bug ~success_per_failing:2 ~seed_base:1 ()
     with
     | Ok c -> (bug, c)
     | Error msg -> Alcotest.failf "fixture: %s" msg)

let ship collector env =
  match Collector.ingest collector (Wire.encode env) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "ingest: %s" msg

let real_envelope ?(endpoint = 0) ?prov payload =
  let bug, _ = Lazy.force collected_fixture in
  {
    Wire.endpoint;
    seed = 1;
    bug_id = bug.Corpus.Bug.id;
    config = Pt.Config.default;
    prov;
    payload;
  }

let test_collector_dedup () =
  let _, c = Lazy.force collected_fixture in
  let failing = List.hd c.Corpus.Runner.failing in
  let t = Collector.create () in
  ship t (real_envelope ~endpoint:0 (Wire.Failing failing));
  ship t (real_envelope ~endpoint:5 (Wire.Failing failing));
  match Collector.buckets t with
  | [ b ] ->
    Alcotest.(check int) "one bucket, two endpoints" 2
      (List.length b.Collector.endpoints);
    Alcotest.(check int) "both kept" 2 (Collector.failing_kept b);
    Alcotest.(check int) "failing received" 2
      (Collector.totals t).Collector.failing_received
  | bs -> Alcotest.failf "expected 1 bucket, got %d" (List.length bs)

let test_collector_sampling () =
  let _, c = Lazy.force collected_fixture in
  let failing = List.hd c.Corpus.Runner.failing in
  let t =
    Collector.create
      ~policy:{ Collector.max_failing = 1; max_success = 1; max_pending = 64 }
      ()
  in
  for e = 0 to 3 do
    ship t (real_envelope ~endpoint:e (Wire.Failing failing))
  done;
  List.iter
    (fun s -> ship t (real_envelope ~endpoint:9 (Wire.Success s)))
    c.Corpus.Runner.successful;
  let b = List.hd (Collector.buckets t) in
  Alcotest.(check int) "kept first failing" 1 (Collector.failing_kept b);
  Alcotest.(check int) "dropped the rest" 3 (Collector.failing_dropped b);
  Alcotest.(check int) "kept first success" 1 (Collector.success_kept b);
  Alcotest.(check int) "dropped second success" 1 (Collector.success_dropped b);
  Alcotest.(check int) "all 4 endpoints counted" 5
    (List.length b.Collector.endpoints)

let test_collector_routes_early_success () =
  (* A success shipped before any failing report is held, then claimed
     when the failure's bucket appears. *)
  let _, c = Lazy.force collected_fixture in
  let failing = List.hd c.Corpus.Runner.failing in
  let success = List.hd c.Corpus.Runner.successful in
  let t = Collector.create () in
  ship t (real_envelope ~endpoint:1 (Wire.Success success));
  Alcotest.(check int) "held while unrouted" 1
    (Collector.totals t).Collector.unrouted;
  ship t (real_envelope ~endpoint:0 (Wire.Failing failing));
  let b = List.hd (Collector.buckets t) in
  Alcotest.(check int) "claimed on bucket creation" 1
    (Collector.success_kept b);
  Alcotest.(check int) "nothing pending" 0
    (Collector.totals t).Collector.unrouted

let test_collector_rejects_unknown_bug () =
  let t = Collector.create () in
  let env =
    { (envelope (Wire.Failing crash_report)) with Wire.bug_id = "nope-1" }
  in
  (match Collector.ingest t (Wire.encode env) with
  | Ok () -> Alcotest.fail "unknown bug id accepted"
  | Error _ -> ());
  Alcotest.(check int) "counted as decode error" 1
    (Collector.totals t).Collector.decode_errors

let test_collector_rejects_garbage () =
  let t = Collector.create () in
  (match Collector.ingest t (Bytes.of_string "not a packet") with
  | Ok () -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  Alcotest.(check int) "received counted" 1 (Collector.totals t).Collector.received;
  Alcotest.(check int) "decode error counted" 1
    (Collector.totals t).Collector.decode_errors

let test_collector_pending_pool_bounded () =
  (* Successes that never route (no bucket ever matches their trigger pc)
     must not accumulate forever: the pending pool is capped per bug. *)
  let t = Collector.create () in
  for i = 1 to 200 do
    ship t
      (real_envelope ~endpoint:(i mod 7)
         (Wire.Success { success_report with Report.trigger_time_ns = i }))
  done;
  let totals = Collector.totals t in
  let cap = Collector.default_policy.Collector.max_pending in
  Alcotest.(check int)
    (Printf.sprintf "pending pool bounded (%d held)" totals.Collector.unrouted)
    cap totals.Collector.unrouted;
  Alcotest.(check int) "evictions counted" (200 - cap)
    totals.Collector.pending_dropped;
  Alcotest.(check int) "all 200 still counted as received" 200
    totals.Collector.success_received

(* Every packet the collector ever received is accounted for exactly once:
   rejected, kept-or-dropped in a bucket, still pending, or evicted. *)
let sum_seen t =
  List.fold_left
    (fun acc (b : Collector.bucket) ->
      acc + b.Collector.failing_seen + b.Collector.success_seen)
    0 (Collector.buckets t)

let check_reconciled name t =
  let totals = Collector.totals t in
  Alcotest.(check int) name totals.Collector.received
    (totals.Collector.decode_errors + sum_seen t + totals.Collector.unrouted
   + totals.Collector.pending_dropped)

let test_collector_arrival_order () =
  (* The collector keeps reports in fleet arrival order even though the
     internal lists are consed newest-first. *)
  let _, c = Lazy.force collected_fixture in
  let failing = List.hd c.Corpus.Runner.failing in
  let success = List.hd c.Corpus.Runner.successful in
  let t = Collector.create () in
  List.iter
    (fun i ->
      ship t
        (real_envelope ~endpoint:i
           (Wire.Failing { failing with Report.failure_time_ns = i })))
    [ 1; 2; 3 ];
  List.iter
    (fun i ->
      ship t
        (real_envelope ~endpoint:i
           (Wire.Success { success with Report.trigger_time_ns = i })))
    [ 7; 8; 9 ];
  let b = List.hd (Collector.buckets t) in
  Alcotest.(check (list int))
    "failing kept in arrival order" [ 1; 2; 3 ]
    (List.map
       (fun (r : Report.failing_report) -> r.Report.failure_time_ns)
       (Collector.failing b));
  Alcotest.(check (list int))
    "successes kept in arrival order" [ 7; 8; 9 ]
    (List.map
       (fun (r : Report.success_report) -> r.Report.trigger_time_ns)
       (Collector.successful b))

let test_collector_out_of_order_duplicates () =
  (* Wire-level mischief: a success arrives before its failure, the same
     failing packet is delivered twice, a success is duplicated, and a
     garbage packet lands in between.  Everything must end up in one
     bucket with counters that reconcile. *)
  let _, c = Lazy.force collected_fixture in
  let failing = List.hd c.Corpus.Runner.failing in
  let success = List.hd c.Corpus.Runner.successful in
  let t = Collector.create () in
  ship t (real_envelope ~endpoint:1 (Wire.Success success));
  ship t (real_envelope ~endpoint:0 (Wire.Failing failing));
  ship t (real_envelope ~endpoint:0 (Wire.Failing failing));
  ship t (real_envelope ~endpoint:1 (Wire.Success success));
  ignore (Collector.ingest t (Bytes.of_string "garbage"));
  match Collector.buckets t with
  | [ b ] ->
    Alcotest.(check int) "both failing deliveries kept" 2
      (Collector.failing_kept b);
    Alcotest.(check int) "both success deliveries kept" 2
      (Collector.success_kept b);
    Alcotest.(check int) "garbage counted" 1
      (Collector.totals t).Collector.decode_errors;
    Alcotest.(check int) "nothing left pending" 0
      (Collector.totals t).Collector.unrouted;
    check_reconciled "counters reconcile" t
  | bs -> Alcotest.failf "expected 1 bucket, got %d" (List.length bs)

let test_collector_counters_reconcile () =
  (* A mixed stream — unroutable successes overflowing a tiny pending
     pool, garbage, repeated failures, routable successes — reconciles:
     received = decode_errors + seen-in-buckets + pending + evicted. *)
  let _, c = Lazy.force collected_fixture in
  let failing = List.hd c.Corpus.Runner.failing in
  let success = List.hd c.Corpus.Runner.successful in
  let t =
    Collector.create
      ~policy:{ Collector.default_policy with Collector.max_pending = 3 }
      ()
  in
  for i = 1 to 10 do
    (* trigger pc matching no watchpoint set: held forever, then evicted *)
    ship t
      (real_envelope ~endpoint:(i mod 4)
         (Wire.Success
            { success with Report.trigger_pc = 0xdead; trigger_time_ns = i }))
  done;
  ignore (Collector.ingest t (Bytes.of_string "junk"));
  ignore (Collector.ingest t (Bytes.of_string ""));
  for e = 0 to 2 do
    ship t (real_envelope ~endpoint:e (Wire.Failing failing))
  done;
  ship t (real_envelope ~endpoint:0 (Wire.Success success));
  ship t (real_envelope ~endpoint:1 (Wire.Success success));
  let totals = Collector.totals t in
  Alcotest.(check int) "received" 17 totals.Collector.received;
  Alcotest.(check int) "decode errors" 2 totals.Collector.decode_errors;
  Alcotest.(check int) "pending now" 3 totals.Collector.unrouted;
  Alcotest.(check int) "evicted" 7 totals.Collector.pending_dropped;
  Alcotest.(check int) "seen in buckets" 5 (sum_seen t);
  check_reconciled "counters reconcile" t

(* --- provenance mining --------------------------------------------------- *)

let test_collector_qualifiers () =
  (* Failing runs stop syncing early (low sync_ops, one digest); healthy
     runs sync hundreds of times.  The miner must find a discriminating
     feature with full failing coverage and no successful coverage. *)
  let _, c = Lazy.force collected_fixture in
  let failing = List.hd c.Corpus.Runner.failing in
  let success = List.hd c.Corpus.Runner.successful in
  let t = Collector.create () in
  List.iter
    (fun e ->
      ship t
        (real_envelope ~endpoint:e
           ~prov:{ Wire.runs = 40; sync_ops = 10 + e; sync_digest = 1 }
           (Wire.Failing failing)))
    [ 0; 1; 2 ];
  List.iter
    (fun e ->
      ship t
        (real_envelope ~endpoint:e
           ~prov:{ Wire.runs = 40; sync_ops = 500 + e; sync_digest = 2 }
           (Wire.Success success)))
    [ 3; 4; 5 ];
  let b = List.hd (Collector.buckets t) in
  match Collector.qualifiers b with
  | [] -> Alcotest.fail "no qualifier mined from a clean split"
  | q :: _ as qs ->
    Alcotest.(check bool) "at most 3 qualifiers" true (List.length qs <= 3);
    Alcotest.(check bool)
      (Printf.sprintf "strong discrimination (%s)"
         (Collector.qualifier_to_string q))
      true
      (q.Collector.q_fail_frac >= 0.75 && q.Collector.q_succ_frac <= 0.25)

let test_collector_qualifiers_need_both_sides () =
  (* With a single failing report every feature discriminates trivially;
     the miner must stay silent below 2 samples per side. *)
  let _, c = Lazy.force collected_fixture in
  let failing = List.hd c.Corpus.Runner.failing in
  let t = Collector.create () in
  ship t
    (real_envelope ~endpoint:0
       ~prov:{ Wire.runs = 1; sync_ops = 3; sync_digest = 9 }
       (Wire.Failing failing));
  let b = List.hd (Collector.buckets t) in
  Alcotest.(check int) "no qualifiers from one report" 0
    (List.length (Collector.qualifiers b))

let test_collector_accepts_v1_packets () =
  (* Mixed-version fleet: v1 packets (no provenance) route normally and
     simply contribute no provenance samples. *)
  let _, c = Lazy.force collected_fixture in
  let failing = List.hd c.Corpus.Runner.failing in
  let t = Collector.create () in
  (match
     Collector.ingest t
       (Wire.encode_v1 (real_envelope ~endpoint:0 (Wire.Failing failing)))
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "v1 ingest: %s" msg);
  let b = List.hd (Collector.buckets t) in
  Alcotest.(check int) "v1 failing kept" 1 (Collector.failing_kept b);
  Alcotest.(check int) "no qualifiers" 0 (List.length (Collector.qualifiers b))

(* The reason the decode cache exists: the collector re-diagnoses a bucket
   as reports trickle in, and every re-run decodes the same rings.  A warm
   re-diagnosis must invoke the decoder at most half as often as the cold
   one (here: not at all — every snapshot is byte-identical). *)
let test_rediagnosis_reuses_decodes () =
  let _, c = Lazy.force collected_fixture in
  let failing = List.hd c.Corpus.Runner.failing in
  let t = Collector.create () in
  for e = 0 to 2 do
    ship t (real_envelope ~endpoint:e (Wire.Failing failing))
  done;
  List.iter
    (fun s -> ship t (real_envelope (Wire.Success s)))
    c.Corpus.Runner.successful;
  let b = List.hd (Collector.buckets t) in
  let shared = Pt.Decode_cache.shared in
  Pt.Decode_cache.clear shared;
  ignore (Collector.diagnose t b);
  let s1 = Pt.Decode_cache.stats shared in
  ignore (Collector.diagnose t b);
  let s2 = Pt.Decode_cache.stats shared in
  let cold = s1.Pt.Decode_cache.misses in
  let warm = s2.Pt.Decode_cache.misses - cold in
  Alcotest.(check bool) "cold run decoded something" true (cold > 0);
  Alcotest.(check bool)
    (Printf.sprintf "re-diagnosis decodes at most half (cold %d, warm %d)"
       cold warm)
    true
    (2 * warm <= cold);
  Alcotest.(check bool) "cache hits prove the reuse" true
    (s2.Pt.Decode_cache.hits - s1.Pt.Decode_cache.hits > 0)

(* --- end to end ---------------------------------------------------------- *)

let test_fleet_end_to_end () =
  let bug = Corpus.Registry.find_exn "pbzip2-1" in
  let s = Fleet.Deploy.run ~endpoints:3 [ bug ] in
  Alcotest.(check int) "no decode errors" 0 s.Fleet.Deploy.decode_errors;
  Alcotest.(check int) "no unrouted successes" 0 s.Fleet.Deploy.unrouted;
  Alcotest.(check bool) "some bytes crossed the wire" true
    (s.Fleet.Deploy.wire_bytes > 0);
  match s.Fleet.Deploy.rows with
  | [ r ] ->
    Alcotest.(check int) "all endpoints in one bucket" 3
      r.Fleet.Deploy.endpoints_hit;
    Alcotest.(check bool) "dedup collapsed the fleet" true
      (s.Fleet.Deploy.dedup_ratio >= 3.0);
    Alcotest.(check bool) "diagnosed" true (r.Fleet.Deploy.top_pattern <> None);
    Alcotest.(check bool) "root cause matches ground truth" true
      r.Fleet.Deploy.root_cause_match;
    Alcotest.(check bool) "report->diagnosis p50 measured" true
      (s.Fleet.Deploy.latency_p50_ns > 0.0);
    Alcotest.(check bool) "p99 >= p50" true
      (s.Fleet.Deploy.latency_p99_ns >= s.Fleet.Deploy.latency_p50_ns)
  | rows -> Alcotest.failf "expected 1 bucket, got %d" (List.length rows)

let test_deploy_rejects_zero_endpoints () =
  Alcotest.check_raises "endpoints < 1"
    (Invalid_argument "Deploy.run: endpoints < 1") (fun () ->
      ignore (Fleet.Deploy.run ~endpoints:0 []))

let test_deploy_zero_buckets () =
  (* An empty scenario list is a legal (if pointless) deployment: every
     per-bucket average must come back 0.0, not a 0/0 NaN. *)
  let s = Fleet.Deploy.run ~endpoints:2 [] in
  Alcotest.(check int) "no buckets" 0 s.Fleet.Deploy.bucket_count;
  Alcotest.(check (float 0.0)) "dedup ratio guarded" 0.0
    s.Fleet.Deploy.dedup_ratio;
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " is a number") false (Float.is_nan v))
    [
      ("dedup_ratio", s.Fleet.Deploy.dedup_ratio);
      ("latency_p50_ns", s.Fleet.Deploy.latency_p50_ns);
      ("latency_p99_ns", s.Fleet.Deploy.latency_p99_ns);
      ("diagnosis_ns", s.Fleet.Deploy.diagnosis_ns);
    ]

let test_deploy_tick_hook () =
  (* The ?tick hook behind --watch: once per endpoint, cumulative
     shipped count monotone, and the rendered line well-formed. *)
  let bug = Corpus.Registry.find_exn "pbzip2-1" in
  let seen = ref [] in
  let s =
    Fleet.Deploy.run ~endpoints:3 ~tick:(fun p -> seen := p :: !seen) [ bug ]
  in
  let ticks = List.rev !seen in
  Alcotest.(check int) "fired once per endpoint" 3 (List.length ticks);
  Alcotest.(check (list int))
    "endpoints reported in order" [ 0; 1; 2 ]
    (List.map (fun p -> p.Fleet.Deploy.tick_endpoint) ticks);
  let shipped = List.map (fun p -> p.Fleet.Deploy.tick_shipped) ticks in
  Alcotest.(check bool) "shipped counts monotone" true
    (List.sort compare shipped = shipped);
  Alcotest.(check int) "last tick saw the whole fleet's packets"
    s.Fleet.Deploy.shipped
    (List.nth shipped (List.length shipped - 1));
  List.iter
    (fun p ->
      let line = Fleet.Deploy.watch_line p in
      Alcotest.(check bool)
        (Printf.sprintf "watch line renders (%s)" line)
        true
        (String.length line > 0 && String.sub line 0 7 = "[watch]"))
    ticks

(* The satellite property for the v2 wire format: provenance survives
   the packet stream treatment a real fleet gives it — packets get
   duplicated and reordered in flight, and each copy must still decode
   to exactly the provenance it was encoded with. *)
let prop_wire_stream_preserves_provenance =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 8 in
      let* provs =
        list_size (return n)
          (triple (int_bound 100_000) (int_bound 1_000_000) (int_bound max_int))
      in
      let* shuffle_seed = int_bound 10_000 in
      return (provs, shuffle_seed))
  in
  QCheck.Test.make
    ~name:"Wire v2 provenance survives duplication and reordering" ~count:100
    (QCheck.make gen)
    (fun (provs, shuffle_seed) ->
      let packets =
        List.mapi
          (fun i (runs, sync_ops, sync_digest) ->
            let env =
              {
                (envelope ~prov:{ Wire.runs; sync_ops; sync_digest }
                   (Wire.Failing crash_report))
                with
                Wire.endpoint = i;
              }
            in
            Wire.encode env)
          provs
      in
      (* duplicate every packet, then shuffle the doubled stream *)
      let stream = Array.of_list (packets @ packets) in
      let prng = Snorlax_util.Prng.create ~seed:shuffle_seed in
      Snorlax_util.Prng.shuffle prng stream;
      let decoded =
        Array.to_list stream
        |> List.map (fun b ->
               match Wire.decode b with
               | Ok e -> (e.Wire.endpoint, e.Wire.prov)
               | Error msg -> QCheck.Test.fail_reportf "decode: %s" msg)
      in
      let expect =
        List.concat_map
          (fun l -> [ l; l ])
          (List.mapi
             (fun i (runs, sync_ops, sync_digest) ->
               (i, Some { Wire.runs; sync_ops; sync_digest }))
             provs)
      in
      List.sort compare decoded = List.sort compare expect)

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    ( "fleet.wire",
      [
        Alcotest.test_case "crash round-trip" `Quick test_wire_roundtrip_crash;
        Alcotest.test_case "deadlock round-trip" `Quick
          test_wire_roundtrip_deadlock;
        Alcotest.test_case "success round-trip" `Quick
          test_wire_roundtrip_success;
        Alcotest.test_case "timing modes round-trip" `Quick
          test_wire_roundtrip_timing_modes;
        Alcotest.test_case "provenance round-trip" `Quick
          test_wire_roundtrip_provenance;
        Alcotest.test_case "v1 packets decode with prov=None" `Quick
          test_wire_v1_back_compat;
        Alcotest.test_case "every truncation is Error" `Quick
          test_wire_truncations;
        Alcotest.test_case "bad version" `Quick test_wire_bad_version;
        Alcotest.test_case "trailing garbage" `Quick test_wire_trailing_garbage;
        Alcotest.test_case "empty input" `Quick test_wire_empty;
        qtest prop_wire_roundtrip;
        qtest prop_wire_corrupt_never_raises;
        qtest prop_wire_flip_never_raises;
      ] );
    ( "fleet.collector",
      [
        Alcotest.test_case "signature dedup across endpoints" `Quick
          test_collector_dedup;
        Alcotest.test_case "sampling keeps first K" `Quick
          test_collector_sampling;
        Alcotest.test_case "early success held then routed" `Quick
          test_collector_routes_early_success;
        Alcotest.test_case "unknown bug id rejected" `Quick
          test_collector_rejects_unknown_bug;
        Alcotest.test_case "garbage packet rejected" `Quick
          test_collector_rejects_garbage;
        Alcotest.test_case "pending pool bounded" `Quick
          test_collector_pending_pool_bounded;
        Alcotest.test_case "kept reports preserve arrival order" `Quick
          test_collector_arrival_order;
        Alcotest.test_case "out-of-order and duplicate delivery" `Quick
          test_collector_out_of_order_duplicates;
        Alcotest.test_case "qualifier mined from a provenance split" `Quick
          test_collector_qualifiers;
        Alcotest.test_case "no qualifiers below 2 samples a side" `Quick
          test_collector_qualifiers_need_both_sides;
        Alcotest.test_case "mixed-version fleet (v1 packets)" `Quick
          test_collector_accepts_v1_packets;
        Alcotest.test_case "re-diagnosis reuses decodes" `Quick
          test_rediagnosis_reuses_decodes;
        Alcotest.test_case "counters reconcile on a mixed stream" `Quick
          test_collector_counters_reconcile;
      ] );
    ( "fleet.deploy",
      [
        Alcotest.test_case "end-to-end cross-endpoint diagnosis" `Quick
          test_fleet_end_to_end;
        Alcotest.test_case "zero endpoints rejected" `Quick
          test_deploy_rejects_zero_endpoints;
        Alcotest.test_case "zero buckets: averages guarded, no NaN" `Quick
          test_deploy_zero_buckets;
        Alcotest.test_case "?tick hook: once per endpoint, monotone" `Quick
          test_deploy_tick_hook;
        qtest prop_wire_stream_preserves_provenance;
      ] );
  ]
