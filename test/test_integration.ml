(* End-to-end tests: full client/server diagnosis on representative corpus
   bugs (one of each kind per language side), the hypothesis measurement
   machinery, and the overhead workloads. *)

module Core = Snorlax_core

let diagnose id =
  let bug = Corpus.Registry.find_exn id in
  match Corpus.Runner.collect bug () with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
    let res =
      Core.Diagnosis.diagnose c.Corpus.Runner.built.Corpus.Bug.m
        ~config:Pt.Config.default ~failing:c.Corpus.Runner.failing
        ~successful:c.Corpus.Runner.successful
    in
    (c, res)

let check_diagnosis id =
  let c, res = diagnose id in
  match res.Core.Diagnosis.top with
  | None -> Alcotest.fail (id ^ ": no pattern")
  | Some top ->
    let gt = c.Corpus.Runner.built.Corpus.Bug.ground_truth in
    Alcotest.(check bool) (id ^ " root cause") true
      (Core.Accuracy.root_cause_match ~diagnosed:top.Core.Statistics.pattern
         ~ground_truth:gt);
    Alcotest.(check (float 1e-6)) (id ^ " A_O") 100.0
      (Core.Accuracy.ordering_accuracy ~diagnosed:top.Core.Statistics.pattern
         ~ground_truth:gt);
    Alcotest.(check (float 1e-6)) (id ^ " F1") 1.0 top.Core.Statistics.f1

let test_deadlock_c () = check_diagnosis "sqlite-1"
let test_order_c () = check_diagnosis "pbzip2-1"
let test_order_uaf () = check_diagnosis "transmission-3"
let test_atomicity_c () = check_diagnosis "mysql-7"
let test_assert_path () = check_diagnosis "aget-1"
let test_deadlock_java () = check_diagnosis "log4j-1"
let test_atomicity_java () = check_diagnosis "lucene-2"

let test_stage_funnel_shrinks () =
  let _, res = diagnose "httpd-3" in
  let c = res.Core.Diagnosis.stage_counts in
  Alcotest.(check bool) "executed < total" true
    (c.Core.Diagnosis.after_trace_processing < c.Core.Diagnosis.total_instrs);
  Alcotest.(check bool) "candidates < executed" true
    (c.Core.Diagnosis.after_points_to < c.Core.Diagnosis.after_trace_processing);
  Alcotest.(check bool) "rank1 <= candidates" true
    (c.Core.Diagnosis.after_type_ranking <= c.Core.Diagnosis.after_points_to);
  Alcotest.(check bool) "root cause smallest" true
    (c.Core.Diagnosis.after_statistics <= c.Core.Diagnosis.after_patterns)

let test_true_pattern_beats_decoys () =
  let _, res = diagnose "mysql-6" in
  match res.Core.Diagnosis.scored with
  | top :: rest ->
    List.iter
      (fun (s : Core.Statistics.scored) ->
        Alcotest.(check bool) "top dominates or ties" true
          (s.Core.Statistics.f1 <= top.Core.Statistics.f1))
      rest;
    Alcotest.(check bool) "some decoy is demoted" true
      (List.exists
         (fun (s : Core.Statistics.scored) ->
           s.Core.Statistics.f1 < top.Core.Statistics.f1)
         rest)
  | [] -> Alcotest.fail "no patterns"

let test_more_failing_runs_still_accurate () =
  let bug = Corpus.Registry.find_exn "pbzip2-2" in
  match Corpus.Runner.collect bug ~failing_count:2 () with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
    let res =
      Core.Diagnosis.diagnose c.Corpus.Runner.built.Corpus.Bug.m
        ~config:Pt.Config.default ~failing:c.Corpus.Runner.failing
        ~successful:c.Corpus.Runner.successful
    in
    (match res.Core.Diagnosis.top with
    | Some top ->
      Alcotest.(check bool) "still correct" true
        (Core.Accuracy.root_cause_match ~diagnosed:top.Core.Statistics.pattern
           ~ground_truth:c.Corpus.Runner.built.Corpus.Bug.ground_truth)
    | None -> Alcotest.fail "no pattern")

let test_hypothesis_measurement () =
  let bug = Corpus.Registry.find_exn "pbzip2-1" in
  let m = Experiments.Hypothesis.measure ~samples:3 bug in
  Alcotest.(check int) "one delta pair" 1 (List.length m.Experiments.Hypothesis.deltas_us);
  let samples = List.hd m.Experiments.Hypothesis.deltas_us in
  Alcotest.(check int) "three samples" 3 (List.length samples);
  List.iter
    (fun d -> Alcotest.(check bool) "positive gap" true (d > 0.0))
    samples;
  let row = Experiments.Hypothesis.row_of_measurement m in
  Alcotest.(check bool) "average in coarse range" true
    (List.hd row.Experiments.Hypothesis.avg_us > 1.0)

let test_workload_overhead_positive () =
  let spec = Experiments.Workloads.find "memcached" in
  let ov =
    Experiments.Workloads.run_overhead spec ~threads:2 ~seed:3
      ~tracer_config:(Some Pt.Config.default) ~gist_costs:None
  in
  Alcotest.(check bool) "tracing costs something" true (ov > 0.0);
  Alcotest.(check bool) "but stays cheap (< 5%)" true (ov < 0.05)

let test_gist_overhead_exceeds_snorlax () =
  let spec = Experiments.Workloads.find "sqlite" in
  let snorlax =
    Experiments.Workloads.run_overhead spec ~threads:8 ~seed:3
      ~tracer_config:(Some Pt.Config.default) ~gist_costs:None
  in
  let gist =
    Experiments.Workloads.run_overhead spec ~threads:8 ~seed:3
      ~tracer_config:None ~gist_costs:(Some Gist.default_costs)
  in
  Alcotest.(check bool) "gist costs more at 8 threads" true (gist > snorlax)

let test_scalability_trend () =
  let points =
    Experiments.Scalability.run ~threads:[ 2; 16 ] ~seed:3 ()
  in
  match points with
  | [ p2; p16 ] ->
    Alcotest.(check bool) "gist overhead grows steeply" true
      (p16.Experiments.Scalability.gist_pct
      > 2.0 *. p2.Experiments.Scalability.gist_pct);
    Alcotest.(check bool) "snorlax stays low" true
      (p16.Experiments.Scalability.snorlax_pct < 6.0)
  | _ -> Alcotest.fail "expected two points"

let test_full_eval_set_accuracy () =
  (* The paper's headline: every evaluation bug diagnosed with full
     accuracy from one failure.  Uses the memoized runs shared with the
     experiment tests. *)
  List.iter
    (fun (e : Experiments.Eval_runs.entry) ->
      let ok, ao, _ = Experiments.Eval_runs.accuracy_of e in
      Alcotest.(check bool) (e.Experiments.Eval_runs.bug.Corpus.Bug.id ^ " correct") true ok;
      Alcotest.(check (float 1e-6))
        (e.Experiments.Eval_runs.bug.Corpus.Bug.id ^ " A_O")
        100.0 ao)
    (Experiments.Eval_runs.eval_entries ())

let test_gist_needs_more_failures () =
  let entry = Experiments.Eval_runs.get (Corpus.Registry.find_exn "pbzip2-1") in
  let row = Experiments.Latency.of_entry entry in
  Alcotest.(check int) "snorlax needs one" 1 row.Experiments.Latency.snorlax_failures;
  Alcotest.(check bool) "gist needs more" true
    (row.Experiments.Latency.gist_recurrences > 1)

let tests =
  [
    ( "integration.diagnosis",
      [
        Alcotest.test_case "deadlock (sqlite-1)" `Slow test_deadlock_c;
        Alcotest.test_case "order violation (pbzip2-1)" `Slow test_order_c;
        Alcotest.test_case "use-after-free (transmission-3)" `Slow test_order_uaf;
        Alcotest.test_case "atomicity (mysql-7)" `Slow test_atomicity_c;
        Alcotest.test_case "assert-detected (aget-1)" `Slow test_assert_path;
        Alcotest.test_case "deadlock java (log4j-1)" `Slow test_deadlock_java;
        Alcotest.test_case "atomicity java (lucene-2)" `Slow test_atomicity_java;
        Alcotest.test_case "stage funnel shrinks" `Slow test_stage_funnel_shrinks;
        Alcotest.test_case "true pattern beats decoys" `Slow
          test_true_pattern_beats_decoys;
        Alcotest.test_case "two failing runs" `Slow test_more_failing_runs_still_accurate;
      ] );
    ( "integration.experiments",
      [
        Alcotest.test_case "hypothesis measurement" `Slow test_hypothesis_measurement;
        Alcotest.test_case "tracing overhead positive" `Slow
          test_workload_overhead_positive;
        Alcotest.test_case "gist overhead larger" `Slow test_gist_overhead_exceeds_snorlax;
        Alcotest.test_case "scalability trend" `Slow test_scalability_trend;
        Alcotest.test_case "gist latency" `Slow test_gist_needs_more_failures;
        Alcotest.test_case "full eval set (11 bugs)" `Slow
          test_full_eval_set_accuracy;
      ] );
  ]
