(* Tests for the telemetry subsystem: metrics registry semantics, span
   nesting, JSON round-trips, Chrome trace export, and the pipeline /
   simulator instrumentation built on top of them. *)

module Obs = Obs
module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty
module Core = Snorlax_core

(* --- metrics ------------------------------------------------------------ *)

let test_counter_semantics () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "a/hits" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Metrics.value c);
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  Alcotest.(check int) "accumulates" 5 (Obs.Metrics.value c);
  let c' = Obs.Metrics.counter m "a/hits" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "same name, same cell" 6 (Obs.Metrics.value c);
  Alcotest.(check (option int)) "find_counter" (Some 6)
    (Obs.Metrics.find_counter m "a/hits");
  Alcotest.(check (option int)) "unknown name" None
    (Obs.Metrics.find_counter m "nope")

let test_gauge_semantics () =
  let m = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge m "a/level" in
  Alcotest.(check (option (float 0.0))) "unset" None (Obs.Metrics.gauge_value g);
  Obs.Metrics.set g 2.0;
  Obs.Metrics.set g 7.5;
  Alcotest.(check (option (float 0.0))) "latest wins" (Some 7.5)
    (Obs.Metrics.gauge_value g)

let test_kind_mismatch_rejected () =
  let m = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter m "x");
  Alcotest.(check bool) "gauge under a counter name" true
    (match Obs.Metrics.gauge m "x" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_histogram_stats () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  List.iter (Obs.Metrics.observe h) [ 1.0; 2.0; 3.0; 100.0 ];
  let s = Obs.Metrics.stats h in
  Alcotest.(check int) "count" 4 s.Obs.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 106.0 s.Obs.Metrics.sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Obs.Metrics.min;
  Alcotest.(check (float 1e-9)) "max" 100.0 s.Obs.Metrics.max;
  (* Bucketed percentiles: upper bound of the bucket, within 2x above. *)
  Alcotest.(check bool) "p50 bracket" true
    (s.Obs.Metrics.p50 >= 2.0 && s.Obs.Metrics.p50 <= 4.0);
  Alcotest.(check bool) "p99 bracket" true
    (s.Obs.Metrics.p99 >= 100.0 && s.Obs.Metrics.p99 <= 200.0)

let prop_histogram_percentile_bracket =
  QCheck.Test.make
    ~name:"histogram percentile upper-bounds the true value within 2x"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range 0.0 1e9))
    (fun xs ->
      let m = Obs.Metrics.create () in
      let h = Obs.Metrics.histogram m "h" in
      List.iter (Obs.Metrics.observe h) xs;
      let s = Obs.Metrics.stats h in
      let true_p50 = Snorlax_util.Stats.percentile xs ~p:50.0 in
      s.Obs.Metrics.p50 >= true_p50
      && s.Obs.Metrics.p50 <= Float.max 1.0 (2.0 *. true_p50))

let test_metrics_merge () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter a "c") 2;
  Obs.Metrics.add (Obs.Metrics.counter b "c") 3;
  Obs.Metrics.add (Obs.Metrics.counter b "only_b") 7;
  Obs.Metrics.set (Obs.Metrics.gauge a "g") 1.0;
  Obs.Metrics.set (Obs.Metrics.gauge b "g") 9.0;
  Obs.Metrics.observe (Obs.Metrics.histogram a "h") 4.0;
  Obs.Metrics.observe (Obs.Metrics.histogram b "h") 40.0;
  Obs.Metrics.merge ~into:a b;
  Alcotest.(check (option int)) "counters add" (Some 5)
    (Obs.Metrics.find_counter a "c");
  Alcotest.(check (option int)) "missing counters appear" (Some 7)
    (Obs.Metrics.find_counter a "only_b");
  Alcotest.(check (option (float 0.0))) "gauge takes source" (Some 9.0)
    (Obs.Metrics.find_gauge a "g");
  match Obs.Metrics.find_histogram a "h" with
  | Some s ->
    Alcotest.(check int) "histogram counts add" 2 s.Obs.Metrics.count;
    Alcotest.(check (float 1e-9)) "histogram sums add" 44.0 s.Obs.Metrics.sum
  | None -> Alcotest.fail "merged histogram missing"

(* --- spans -------------------------------------------------------------- *)

(* A deterministic clock: each read advances time by 10 units. *)
let ticking_clock () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. 10.0;
    !t

let test_span_nesting () =
  let tr = Obs.Span.create ~clock:(ticking_clock ()) () in
  Obs.Span.with_span tr "outer" (fun outer ->
      Obs.Span.with_span tr "inner" (fun inner ->
          Alcotest.(check (option int)) "inner nests under outer"
            (Some outer.Obs.Span.id) inner.Obs.Span.parent);
      ());
  Obs.Span.with_span tr "sibling" (fun s ->
      Alcotest.(check (option int)) "root level after outer closed" None
        s.Obs.Span.parent);
  Alcotest.(check (list string)) "start order"
    [ "outer"; "inner"; "sibling" ]
    (List.map (fun s -> s.Obs.Span.name) (Obs.Span.spans tr));
  Alcotest.(check int) "no orphans" 0 (List.length (Obs.Span.orphans tr))

let test_span_tracks_isolated () =
  let tr = Obs.Span.create ~clock:(ticking_clock ()) () in
  let a = Obs.Span.start tr ~track:1 "a" in
  let b = Obs.Span.start tr ~track:2 "b" in
  Alcotest.(check (option int)) "different tracks do not nest" None
    b.Obs.Span.parent;
  Obs.Span.finish tr b;
  Obs.Span.finish tr a

let test_span_timing_and_finish () =
  let tr = Obs.Span.create ~clock:(ticking_clock ()) () in
  let sp = Obs.Span.start tr "s" in
  Alcotest.(check bool) "open" true (Obs.Span.is_open sp);
  Alcotest.(check bool) "duration NaN while open" true
    (Float.is_nan (Obs.Span.duration_ns sp));
  Obs.Span.finish tr sp;
  Alcotest.(check (float 1e-9)) "one tick long" 10.0 (Obs.Span.duration_ns sp);
  Alcotest.(check bool) "double finish rejected" true
    (match Obs.Span.finish tr sp with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_span_orphans_reported () =
  let tr = Obs.Span.create ~clock:(ticking_clock ()) () in
  let sp = Obs.Span.start tr "leaked" in
  ignore (Obs.Span.start tr "leaked/child");
  Alcotest.(check int) "both orphaned" 2 (List.length (Obs.Span.orphans tr));
  ignore sp

let test_span_args_mutable_after_finish () =
  let tr = Obs.Span.create ~clock:(ticking_clock ()) () in
  let sp = Obs.Span.with_span tr "s" (fun sp -> sp) in
  Obs.Span.set_arg sp "candidates" (Obs.Span.Int 42);
  Alcotest.(check bool) "arg recorded late" true
    (Obs.Span.find_arg sp "candidates" = Some (Obs.Span.Int 42))

let test_wall_clock_monotone () =
  let prev = ref (Obs.Span.wall_clock_ns ()) in
  for _ = 1 to 1000 do
    let t = Obs.Span.wall_clock_ns () in
    Alcotest.(check bool) "strictly increasing" true (t > !prev);
    prev := t
  done

(* --- json --------------------------------------------------------------- *)

let json_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          let scalar =
            oneof
              [
                return Obs.Json.Null;
                map (fun b -> Obs.Json.Bool b) bool;
                map (fun i -> Obs.Json.Int i) int;
                map (fun f -> Obs.Json.Float f) (float_range (-1e12) 1e12);
                map (fun s -> Obs.Json.String s) (string_size (int_range 0 10));
              ]
          in
          if n <= 0 then scalar
          else
            oneof
              [
                scalar;
                map
                  (fun l -> Obs.Json.List l)
                  (list_size (int_range 0 4) (self (n / 2)));
                map
                  (fun kvs -> Obs.Json.Obj kvs)
                  (list_size (int_range 0 4)
                     (pair (string_size (int_range 0 8)) (self (n / 2))));
              ])
        (min n 4))

let prop_json_roundtrip =
  QCheck.Test.make ~name:"Json.parse inverts Json.to_string" ~count:500
    (QCheck.make ~print:Obs.Json.to_string json_gen)
    (fun j -> Obs.Json.parse (Obs.Json.to_string j) = Ok j)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted: " ^ s))
    [ ""; "{"; "[1,]"; "{\"a\":1} trailing"; "nul"; "\"unterminated" ]

(* --- chrome trace export ------------------------------------------------ *)

let events_of json =
  match Obs.Json.member "traceEvents" json with
  | Some evs -> Option.get (Obs.Json.to_list evs)
  | None -> Alcotest.fail "no traceEvents"

let event_field name ev =
  match Obs.Json.member name ev with
  | Some (Obs.Json.String s) -> s
  | _ -> Alcotest.fail ("missing field " ^ name)

let test_chrome_export_shape () =
  let tr = Obs.Span.create ~clock:(ticking_clock ()) () in
  Obs.Span.with_span tr "diagnosis/stage" (fun sp ->
      Obs.Span.set_arg sp "candidates" (Obs.Span.Int 3));
  let leaked = Obs.Span.start tr "leak" in
  ignore leaked;
  let m = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter m "hits") 9;
  let doc = Obs.Chrome_trace.export ~metrics:m tr in
  (* The export must be self-consistent JSON: print and re-parse. *)
  (match Obs.Json.parse (Obs.Json.to_string doc) with
  | Ok j -> Alcotest.(check bool) "round-trips" true (j = doc)
  | Error e -> Alcotest.fail e);
  let evs = events_of doc in
  let phases = List.map (event_field "ph") evs in
  Alcotest.(check bool) "has a complete event" true (List.mem "X" phases);
  Alcotest.(check bool) "open span exports as B" true (List.mem "B" phases);
  Alcotest.(check bool) "counter exports as C" true (List.mem "C" phases);
  let stage =
    List.find (fun e -> event_field "name" e = "diagnosis/stage") evs
  in
  Alcotest.(check string) "category from the name prefix" "diagnosis"
    (event_field "cat" stage);
  match Obs.Json.member "args" stage with
  | Some args ->
    Alcotest.(check bool) "span args exported" true
      (Obs.Json.member "candidates" args = Some (Obs.Json.Int 3))
  | None -> Alcotest.fail "stage event has no args"

(* --- scope -------------------------------------------------------------- *)

let with_scope f =
  ignore (Obs.Scope.enable ());
  Fun.protect ~finally:Obs.Scope.disable f

let test_scope_noop_when_disabled () =
  Obs.Scope.disable ();
  Obs.Scope.count "ghost" 1;
  Obs.Scope.with_span "ghost" (fun () -> ());
  Alcotest.(check bool) "disabled" false (Obs.Scope.enabled ());
  Alcotest.(check string) "empty summary" "" (Obs.Scope.summary ());
  Alcotest.(check bool) "no export" true (Obs.Scope.export_chrome () = None)

let test_scope_records () =
  with_scope (fun () ->
      Obs.Scope.with_span "work" (fun () -> Obs.Scope.count "things" 2);
      let ctx = Option.get (Obs.Scope.current ()) in
      Alcotest.(check (option int)) "counter visible" (Some 2)
        (Obs.Metrics.find_counter ctx.Obs.Scope.metrics "things");
      Alcotest.(check (list string)) "span visible" [ "work" ]
        (List.map
           (fun s -> s.Obs.Span.name)
           (Obs.Span.spans ctx.Obs.Scope.trace)))

(* --- pipeline instrumentation ------------------------------------------- *)

let diagnose_quick () =
  let bug = Corpus.Registry.find_exn "pbzip2-1" in
  match Corpus.Runner.collect bug () with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
    let res =
      Core.Diagnosis.diagnose c.Corpus.Runner.built.Corpus.Bug.m
        ~config:Pt.Config.default ~failing:c.Corpus.Runner.failing
        ~successful:c.Corpus.Runner.successful
    in
    (c, res)

let stage_count res name =
  let sp =
    List.find (fun s -> s.Obs.Span.name = name) res.Core.Diagnosis.spans
  in
  match Obs.Span.find_arg sp "candidates" with
  | Some (Obs.Span.Int n) -> n
  | _ -> Alcotest.fail (name ^ ": no candidates arg")

let check_diagnosis_spans res =
  Alcotest.(check (list string)) "root plus the seven stages, in order"
    ("diagnosis" :: Core.Diagnosis.stage_names)
    (List.map (fun s -> s.Obs.Span.name) res.Core.Diagnosis.spans);
  List.iter
    (fun (sp : Obs.Span.span) ->
      Alcotest.(check bool) (sp.Obs.Span.name ^ " finished") false
        (Obs.Span.is_open sp);
      Alcotest.(check bool) (sp.Obs.Span.name ^ " timed") true
        (Obs.Span.duration_ns sp >= 0.0))
    res.Core.Diagnosis.spans;
  (* The span args must tell the same funnel story as the legacy record. *)
  let sc = res.Core.Diagnosis.stage_counts in
  Alcotest.(check int) "layout count" sc.Core.Diagnosis.total_instrs
    (stage_count res "diagnosis/layout");
  Alcotest.(check int) "trace processing count"
    sc.Core.Diagnosis.after_trace_processing
    (stage_count res "diagnosis/trace_processing");
  Alcotest.(check int) "points-to count" sc.Core.Diagnosis.after_points_to
    (stage_count res "diagnosis/points_to");
  Alcotest.(check int) "anchor count" 1 (stage_count res "diagnosis/anchor");
  Alcotest.(check int) "type ranking count"
    sc.Core.Diagnosis.after_type_ranking
    (stage_count res "diagnosis/type_ranking");
  Alcotest.(check int) "patterns count" sc.Core.Diagnosis.after_patterns
    (stage_count res "diagnosis/patterns");
  Alcotest.(check int) "statistics count" sc.Core.Diagnosis.after_statistics
    (stage_count res "diagnosis/statistics")

let test_diagnosis_spans_without_scope () =
  Obs.Scope.disable ();
  let _, res = diagnose_quick () in
  check_diagnosis_spans res;
  Alcotest.(check bool) "timings derived from spans" true
    (res.Core.Diagnosis.timings.Core.Diagnosis.hybrid_analysis_s >= 0.0
    && res.Core.Diagnosis.timings.Core.Diagnosis.pipeline_s > 0.0)

let test_diagnosis_spans_in_scope () =
  with_scope (fun () ->
      let _, res = diagnose_quick () in
      check_diagnosis_spans res;
      let ctx = Option.get (Obs.Scope.current ()) in
      let names =
        List.map (fun s -> s.Obs.Span.name) (Obs.Span.spans ctx.Obs.Scope.trace)
      in
      Alcotest.(check bool) "stages land in the ambient trace" true
        (List.for_all (fun n -> List.mem n names) Core.Diagnosis.stage_names);
      Alcotest.(check bool) "corpus root span present" true
        (List.mem "corpus/pbzip2-1" names);
      (* The runner and decoder publish through the same scope. *)
      let counter n =
        Option.value ~default:0 (Obs.Metrics.find_counter ctx.Obs.Scope.metrics n)
      in
      Alcotest.(check bool) "runs counted" true (counter "corpus/runs" > 0);
      (* The shared decode cache may already hold these snapshots (earlier
         tests decode the same fixture); decode work then shows up as
         cache hits instead of decoder invocations. *)
      Alcotest.(check bool) "decodes counted" true
        (counter "pt/decode_calls" + counter "decode_cache/hits" > 0);
      Alcotest.(check bool) "sim instrs counted" true
        (counter "sim/instructions" > 0))

(* --- simulator scheduler telemetry -------------------------------------- *)

(* Four threads hammering one mutex with a delay inside the critical
   section: contention, parking and context switches are all certain. *)
let contended_module () =
  let m = Lir.Irmod.create "contended" in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  Lir.Irmod.declare_global m "lock" (T.Struct "Mutex");
  Lir.Irmod.declare_global m "counter" T.I64;
  B.define m "worker" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 20) (fun _ ->
          B.mutex_lock b (V.Global "lock");
          let v = B.load b (V.Global "counter") in
          B.io_delay b ~ns:5_000;
          B.store b ~value:(B.add b v (V.i64 1)) ~ptr:(V.Global "counter");
          B.mutex_unlock b (V.Global "lock"));
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global "lock" ];
      let tids = List.init 4 (fun i -> B.spawn b "worker" (V.i64 i)) in
      List.iter (fun t -> B.join b t) tids;
      B.ret_void b);
  Lir.Verify.check_exn m;
  m

let test_sim_scheduler_telemetry () =
  with_scope (fun () ->
      let m = contended_module () in
      Lir.Irmod.layout m;
      let config =
        { Sim.Interp.default_config with seed = 5; hooks = Sim.Telemetry.hooks () }
      in
      let r = Sim.Interp.run ~config m ~entry:"main" in
      Alcotest.(check bool) "run completed" true
        (r.Sim.Interp.outcome = Sim.Interp.Completed);
      let ctx = Option.get (Obs.Scope.current ()) in
      let counter n =
        Option.value ~default:0 (Obs.Metrics.find_counter ctx.Obs.Scope.metrics n)
      in
      Alcotest.(check bool) "instructions counted" true
        (counter "sim/instructions" > 0);
      Alcotest.(check bool) "context switches counted" true
        (counter "sim/context_switches" > 0);
      Alcotest.(check bool) "contention counted" true
        (counter "sim/lock_contention" > 0);
      match Obs.Metrics.find_histogram ctx.Obs.Scope.metrics "sim/parked_ns" with
      | Some s ->
        Alcotest.(check bool) "parked time observed" true
          (s.Obs.Metrics.count > 0 && s.Obs.Metrics.max > 0.0)
      | None -> Alcotest.fail "no parked_ns histogram")

(* The determinism contract: telemetry hooks must not perturb a run. *)
let test_sim_telemetry_preserves_determinism () =
  let outcome_of hooks =
    let m = contended_module () in
    Lir.Irmod.layout m;
    let config = { Sim.Interp.default_config with seed = 9; hooks } in
    let r = Sim.Interp.run ~config m ~entry:"main" in
    (r.Sim.Interp.outcome, r.Sim.Interp.final_time_ns)
  in
  let bare = outcome_of Sim.Hooks.none in
  let instrumented =
    with_scope (fun () -> outcome_of (Sim.Telemetry.hooks ()))
  in
  Alcotest.(check bool) "identical outcome and virtual time" true
    (bare = instrumented)

(* --- bench_diff ---------------------------------------------------------- *)

let parse_exn s =
  match Obs.Json.parse s with
  | Ok j -> j
  | Error msg -> Alcotest.failf "parse: %s" msg

let diff ?(max_regress = 10.0) a b =
  Obs.Bench_diff.compare ~old_:(parse_exn a) ~new_:(parse_exn b) ~max_regress

let find_row (r : Obs.Bench_diff.report) key =
  match
    List.find_opt
      (fun (row : Obs.Bench_diff.row) -> row.Obs.Bench_diff.key = key)
      r.Obs.Bench_diff.rows
  with
  | Some row -> row
  | None -> Alcotest.failf "no row for %s" key

let test_bench_diff_lower_is_better () =
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " gates") true (Obs.Bench_diff.lower_is_better k))
    [
      "seq_cold_ns"; "total_us"; "collect_ms"; "traceEvents/decode/dur";
      "wire_bytes"; "cache_misses"; "cache_evictions"; "decode_errors";
      "lost_bytes"; "pt/decode_calls"; "dropped";
    ];
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (k ^ " informational") false
        (Obs.Bench_diff.lower_is_better k))
    [ "endpoints"; "warm_speedup"; "cache_hits"; "top_f1"; "buckets"; "runs" ]

let test_bench_diff_self_clean () =
  let doc = {|{"a_ns": 12.5, "nested": {"wire_bytes": 100}, "speedup": 2.0}|} in
  let r = diff doc doc in
  Alcotest.(check int) "no regressions against self" 0
    r.Obs.Bench_diff.regressions;
  Alcotest.(check int) "all leaves flattened" 3
    (List.length r.Obs.Bench_diff.rows)

let test_bench_diff_detects_regression () =
  let old_ = {|{"a_ns": 100, "b_ns": 100, "speedup": 3.0}|} in
  let new_ = {|{"a_ns": 150, "b_ns": 105, "speedup": 1.0}|} in
  let r = diff old_ new_ in
  (* a_ns +50% regresses; b_ns +5% is inside the 10% tolerance; speedup
     collapsing is informational — wall-time keys are the gate. *)
  Alcotest.(check int) "one regression" 1 r.Obs.Bench_diff.regressions;
  Alcotest.(check bool) "a_ns flagged" true
    (find_row r "a_ns").Obs.Bench_diff.regressed;
  Alcotest.(check bool) "b_ns within tolerance" false
    (find_row r "b_ns").Obs.Bench_diff.regressed;
  Alcotest.(check bool) "speedup not gated" false
    (find_row r "speedup").Obs.Bench_diff.gated;
  let strict = diff ~max_regress:1.0 old_ new_ in
  Alcotest.(check int) "tighter tolerance catches b_ns" 2
    strict.Obs.Bench_diff.regressions

let test_bench_diff_zero_baseline () =
  (* 0 -> 0 is clean; 0 -> anything positive regresses (no percentage
     exists, so any growth from a clean baseline must flag). *)
  let r = diff {|{"errors": 0}|} {|{"errors": 0}|} in
  Alcotest.(check int) "0 -> 0 clean" 0 r.Obs.Bench_diff.regressions;
  let r = diff {|{"errors": 0}|} {|{"errors": 3}|} in
  Alcotest.(check int) "0 -> 3 regresses" 1 r.Obs.Bench_diff.regressions

let test_bench_diff_asymmetric_keys () =
  let r = diff {|{"gone_ns": 5, "kept_ns": 5}|} {|{"kept_ns": 5, "new_ns": 9}|} in
  Alcotest.(check int) "missing keys never gate" 0 r.Obs.Bench_diff.regressions;
  let gone = find_row r "gone_ns" in
  Alcotest.(check bool) "disappeared metric reported" true
    (gone.Obs.Bench_diff.new_v = None);
  let added = find_row r "new_ns" in
  Alcotest.(check bool) "added metric reported" true
    (added.Obs.Bench_diff.old_v = None);
  Alcotest.(check bool) "added gated-named metric never regresses" false
    added.Obs.Bench_diff.regressed;
  (* Growing an artifact (new fields land in BENCH_*.json as benches
     evolve) must compare clean against an older baseline in both
     directions — only keys present on both sides can gate. *)
  let grown =
    diff
      {|{"stream_seq_ns": 100}|}
      {|{"stream_seq_ns": 100, "stream_par_ns": 900, "shard_latency": [{"name": "s0", "queue_wait_p99_ns": 5e6}]}|}
  in
  Alcotest.(check int) "grown artifact clean vs old baseline" 0
    grown.Obs.Bench_diff.regressions;
  let shrunk =
    diff
      {|{"stream_seq_ns": 100, "stream_par_ns": 900}|}
      {|{"stream_seq_ns": 100}|}
  in
  Alcotest.(check int) "shrunk artifact clean too" 0
    shrunk.Obs.Bench_diff.regressions;
  Alcotest.(check int) "disappeared key still reported" 2
    (List.length shrunk.Obs.Bench_diff.rows)

let test_bench_diff_named_list_elements () =
  (* Chrome trace events: list elements key by their "name" field, so
     span durations diff across runs even though lists are positional. *)
  let old_ = {|{"traceEvents": [{"name": "decode", "dur": 100}]}|} in
  let new_ = {|{"traceEvents": [{"name": "other", "dur": 1}, {"name": "decode", "dur": 200}]}|} in
  let r = diff old_ new_ in
  let row = find_row r "traceEvents/decode/dur" in
  Alcotest.(check bool) "matched by name across positions" true
    row.Obs.Bench_diff.regressed

(* --- histogram edge cases ------------------------------------------------ *)

let test_histogram_empty () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "h" in
  let s = Obs.Metrics.stats h in
  Alcotest.(check int) "count" 0 s.Obs.Metrics.count;
  Alcotest.(check (float 0.0)) "sum" 0.0 s.Obs.Metrics.sum;
  Alcotest.(check (float 0.0)) "min" 0.0 s.Obs.Metrics.min;
  Alcotest.(check (float 0.0)) "max" 0.0 s.Obs.Metrics.max;
  Alcotest.(check (float 0.0)) "p50" 0.0 s.Obs.Metrics.p50;
  Alcotest.(check (float 0.0)) "p99" 0.0 (Obs.Metrics.percentile h ~p:99.0);
  Alcotest.(check bool) "no cumulative buckets" true
    (Obs.Metrics.cumulative_buckets h = [])

let test_histogram_single_sample () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "h" in
  Obs.Metrics.observe h 7.0;
  (* One sample: every percentile is that sample (the bucket's upper
     bound clamps to the observed max). *)
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "p%.0f" p)
        7.0
        (Obs.Metrics.percentile h ~p))
    [ 0.0; 50.0; 100.0 ]

let test_histogram_negative_clamps () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "h" in
  Obs.Metrics.observe h (-5.0);
  let s = Obs.Metrics.stats h in
  Alcotest.(check int) "counted" 1 s.Obs.Metrics.count;
  Alcotest.(check (float 0.0)) "clamped to zero" 0.0 s.Obs.Metrics.min;
  Alcotest.(check (float 0.0)) "max also zero" 0.0 s.Obs.Metrics.max;
  Alcotest.(check (float 0.0)) "sum unaffected by the negative" 0.0
    s.Obs.Metrics.sum

let prop_cumulative_buckets_monotone =
  QCheck.Test.make
    ~name:"cumulative buckets are monotone and end at the total count"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 0 60) (float_range (-10.0) 1e15))
    (fun xs ->
      let m = Obs.Metrics.create () in
      let h = Obs.Metrics.histogram m "h" in
      List.iter (Obs.Metrics.observe h) xs;
      let bkts = Obs.Metrics.cumulative_buckets h in
      let rec monotone = function
        | (le1, c1) :: ((le2, c2) :: _ as rest) ->
          le1 < le2 && c1 <= c2 && monotone rest
        | _ -> true
      in
      monotone bkts
      &&
      match List.rev bkts with
      | [] -> xs = []
      | (_, last) :: _ -> last = (Obs.Metrics.stats h).Obs.Metrics.count)

(* --- structured log + flight recorder ------------------------------------ *)

(* Capture sink plus state restore: the log's level and sink list are
   process-wide, so every test puts them back. *)
let with_log_capture ?(level = Obs.Log.Debug) f =
  let seen = ref [] in
  Obs.Log.clear_sinks ();
  Obs.Log.add_sink (fun e -> seen := e :: !seen);
  Obs.Log.set_level level;
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.clear_sinks ();
      Obs.Log.set_level Obs.Log.Info)
    (fun () -> f seen)

let names_of seen = List.rev_map (fun e -> e.Obs.Log.name) !seen

let test_log_level_filtering () =
  with_log_capture ~level:Obs.Log.Warn (fun seen ->
      Obs.Log.debug "a";
      Obs.Log.info "b";
      Obs.Log.warn "c";
      Obs.Log.error "d";
      Alcotest.(check (list string)) "only warn and above forwarded"
        [ "c"; "d" ] (names_of seen))

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_log_format_event () =
  let e =
    {
      Obs.Log.ts_ns = 1_234_567.0;
      level = Obs.Log.Warn;
      name = "fleet/ingest_reject";
      span = Some "fleet/ingest";
      fields =
        [
          ("reason", Obs.Log.Str "bad byte");
          ("bytes", Obs.Log.Int 17);
          ("ok", Obs.Log.Bool false);
          ("ratio", Obs.Log.Float 0.5);
        ];
    }
  in
  let line = Obs.Log.format_event e in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in " ^ line) true (contains line needle))
    [
      "WARN";
      "fleet/ingest_reject";
      "(in fleet/ingest)";
      "reason=\"bad byte\"";  (* space forces quoting *)
      "bytes=17";
      "ok=false";
      "ratio=0.5";
    ]

let test_log_json_sink_parses () =
  let path = Filename.temp_file "snorlax_log" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Obs.Log.clear_sinks ();
      Obs.Log.add_sink (Obs.Log.json_sink oc);
      Fun.protect
        ~finally:(fun () ->
          Obs.Log.clear_sinks ();
          close_out_noerr oc)
        (fun () ->
          Obs.Log.warn
            ~fields:[ ("k", Obs.Log.Str "v"); ("n", Obs.Log.Int 3) ]
            "json/event");
      let lines =
        In_channel.with_open_text path In_channel.input_lines
      in
      match lines with
      | [ line ] -> (
        match Obs.Json.parse line with
        | Error msg -> Alcotest.failf "sink line is not JSON: %s" msg
        | Ok j ->
          Alcotest.(check bool) "event name" true
            (Obs.Json.member "event" j = Some (Obs.Json.String "json/event"));
          Alcotest.(check bool) "level" true
            (Obs.Json.member "level" j = Some (Obs.Json.String "warn"));
          let fields = Option.get (Obs.Json.member "fields" j) in
          Alcotest.(check bool) "fields preserved" true
            (Obs.Json.member "n" fields = Some (Obs.Json.Int 3)))
      | l -> Alcotest.failf "expected 1 line, got %d" (List.length l))

let mk_event i =
  {
    Obs.Log.ts_ns = float_of_int i;
    level = Obs.Log.Info;
    name = Printf.sprintf "e%d" i;
    span = None;
    fields = [];
  }

let test_recorder_ring () =
  let r = Obs.Log.Recorder.create ~capacity:4 () in
  Alcotest.(check string) "empty dump" "" (Obs.Log.Recorder.dump r);
  for i = 1 to 10 do
    Obs.Log.Recorder.record r (mk_event i)
  done;
  Alcotest.(check (list string)) "keeps the last capacity, oldest first"
    [ "e7"; "e8"; "e9"; "e10" ]
    (List.map (fun e -> e.Obs.Log.name) (Obs.Log.Recorder.events r));
  Alcotest.(check int) "seen counts every record" 10
    (Obs.Log.Recorder.seen r);
  let dump = Obs.Log.Recorder.dump r in
  Alcotest.(check bool) "dump header" true
    (contains dump "flight recorder (last 4 of 10 events):");
  Obs.Log.Recorder.clear r;
  Alcotest.(check int) "clear resets" 0 (Obs.Log.Recorder.seen r);
  Alcotest.(check string) "dump empty again" "" (Obs.Log.Recorder.dump r)

let test_recorder_captures_below_level_and_replays () =
  let r = Obs.Log.Recorder.create ~capacity:8 () in
  with_log_capture ~level:Obs.Log.Error (fun seen ->
      Obs.Log.with_recorder r (fun () ->
          Obs.Log.info "inside";
          Obs.Log.debug "below-threshold");
      Obs.Log.info "outside";
      Alcotest.(check int) "nothing forwarded below Error" 0
        (List.length !seen);
      Alcotest.(check (list string)) "ring captured regardless of level"
        [ "inside"; "below-threshold" ]
        (List.map (fun e -> e.Obs.Log.name) (Obs.Log.Recorder.events r));
      (* The black-box dump action: replay pushes the retained events to
         the sinks even though their level never passed the filter. *)
      Obs.Log.replay r;
      Alcotest.(check (list string)) "replay bypasses the threshold"
        [ "inside"; "below-threshold" ] (names_of seen))

let test_log_span_correlation () =
  with_log_capture (fun seen ->
      with_scope (fun () ->
          Obs.Scope.with_span "corr/span" (fun () -> Obs.Log.info "in");
          Obs.Log.info "out");
      match List.rev !seen with
      | [ a; b ] ->
        Alcotest.(check (option string)) "inside the span"
          (Some "corr/span") a.Obs.Log.span;
        Alcotest.(check (option string)) "outside" None b.Obs.Log.span
      | l -> Alcotest.failf "expected 2 events, got %d" (List.length l))

(* --- openmetrics exposition ---------------------------------------------- *)

let test_openmetrics_name_sanitize () =
  Alcotest.(check string) "slash" "pt_decode_ns"
    (Obs.Openmetrics.metric_name "pt/decode_ns");
  Alcotest.(check string) "leading digit" "_9lives"
    (Obs.Openmetrics.metric_name "9lives");
  Alcotest.(check string) "empty" "_" (Obs.Openmetrics.metric_name "")

let test_openmetrics_render_shape () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter m "pt/decode_calls") 3;
  Obs.Metrics.set (Obs.Metrics.gauge m "fleet/dedup_ratio") 2.5;
  let h = Obs.Metrics.histogram m "fleet/ingest_ns" in
  List.iter (Obs.Metrics.observe h) [ 1.0; 3.0; 1000.0 ];
  let text = Obs.Openmetrics.render m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains text needle))
    [
      "# TYPE pt_decode_calls counter";
      "pt_decode_calls_total 3";
      "# TYPE fleet_dedup_ratio gauge";
      "fleet_dedup_ratio 2.5";
      "# TYPE fleet_ingest_ns histogram";
      "fleet_ingest_ns_bucket{le=\"+Inf\"} 3";
      "fleet_ingest_ns_count 3";
    ];
  Alcotest.(check bool) "terminated by # EOF" true
    (String.length text >= 6
    && String.sub text (String.length text - 6) 6 = "# EOF\n");
  match Obs.Openmetrics.lint text with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "own render fails lint: %s" msg

let test_openmetrics_lint_rejects () =
  List.iter
    (fun (what, text) ->
      match Obs.Openmetrics.lint text with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "lint accepted %s" what)
    [
      ("missing # EOF", "# TYPE a counter\na_total 3\n");
      ("content after # EOF", "# EOF\n# TYPE a counter\na_total 3\n");
      ("counter without _total", "# TYPE a counter\na 3\n# EOF\n");
      ("negative counter", "# TYPE a counter\na_total -1\n# EOF\n");
      ("sample outside a family", "a_total 3\n# EOF\n");
      ( "non-cumulative buckets",
        "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\n\
         h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n# EOF\n" );
      ( "missing +Inf bucket",
        "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 3\nh_count 2\n# EOF\n"
      );
      ( "count disagrees with +Inf",
        "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 5\n\
         # EOF\n" );
      ("duplicate family", "# TYPE a gauge\na 1\n# TYPE a gauge\na 2\n# EOF\n");
      ("bad name", "# TYPE 1a counter\n1a_total 3\n# EOF\n");
    ]

let prop_openmetrics_render_lints_clean =
  QCheck.Test.make ~name:"render output always lints clean" ~count:100
    QCheck.(
      list_of_size
        Gen.(int_range 0 20)
        (pair (int_bound 2) (float_range 0.0 1e12)))
    (fun specs ->
      let m = Obs.Metrics.create () in
      List.iteri
        (fun i (kind, v) ->
          let name = Printf.sprintf "m%d/k-%d" i kind in
          match kind with
          | 0 -> Obs.Metrics.add (Obs.Metrics.counter m name) (int_of_float v)
          | 1 -> Obs.Metrics.set (Obs.Metrics.gauge m name) v
          | _ -> Obs.Metrics.observe (Obs.Metrics.histogram m name) v)
        specs;
      Obs.Openmetrics.lint (Obs.Openmetrics.render m) = Ok ())

(* --- chrome counter time series ------------------------------------------ *)

let test_chrome_counter_time_series () =
  with_scope (fun () ->
      Obs.Scope.with_span "phase/one" (fun () -> Obs.Scope.count "work" 1);
      Obs.Scope.with_span "phase/two" (fun () -> Obs.Scope.count "work" 2);
      (* [count] accumulates, so the boundary samples see 1 then 3. *)
      let doc = Option.get (Obs.Scope.export_chrome ()) in
      let values =
        List.filter_map
          (fun e ->
            if event_field "ph" e = "C" && event_field "name" e = "work" then
              match Obs.Json.member "args" e with
              | Some args -> Obs.Json.member "value" args
              | None -> None
            else None)
          (events_of doc)
      in
      (* Span-boundary samples carry the counter's value *at that time* —
         a real series, not just the final stamp. *)
      Alcotest.(check bool) "intermediate value sampled" true
        (List.mem (Obs.Json.Int 1) values);
      Alcotest.(check bool) "final value sampled" true
        (List.mem (Obs.Json.Int 3) values);
      Alcotest.(check bool) "at least boundary samples plus end stamp" true
        (List.length values >= 3))

(* --- worker-registry merge wiring ----------------------------------------- *)

let test_parallel_decode_merges_worker_metrics () =
  (* Pool workers decode with private registries (the ambient scope is
     not domain-safe); after the barrier they must be folded back, so
     the ambient registry sees one decode_ns sample per actual decoder
     invocation — the counters used to be silently dropped. *)
  let bug = Corpus.Registry.find_exn "pbzip2-1" in
  match Corpus.Runner.collect bug () with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
    let m = c.Corpus.Runner.built.Corpus.Bug.m in
    let traces = (List.hd c.Corpus.Runner.failing).Core.Report.traces in
    with_scope (fun () ->
        let cache = Pt.Decode_cache.create ~capacity:0 () in
        ignore
          (Core.Trace_processing.process m ~config:Pt.Config.default ~jobs:4
             ~cache traces);
        let ctx = Option.get (Obs.Scope.current ()) in
        let metrics = ctx.Obs.Scope.metrics in
        let calls =
          Option.value ~default:0
            (Obs.Metrics.find_counter metrics "pt/decode_calls")
        in
        Alcotest.(check bool) "decoder invoked" true (calls > 0);
        match Obs.Metrics.find_histogram metrics "pt/decode_ns" with
        | None -> Alcotest.fail "worker decode_ns histogram not merged"
        | Some s ->
          Alcotest.(check int) "one decode_ns sample per invocation" calls
            s.Obs.Metrics.count)

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    ( "obs.metrics",
      [
        Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
        Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
        Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch_rejected;
        Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
        Alcotest.test_case "merge" `Quick test_metrics_merge;
        Alcotest.test_case "empty histogram" `Quick test_histogram_empty;
        Alcotest.test_case "single sample percentiles" `Quick
          test_histogram_single_sample;
        Alcotest.test_case "negative observe clamps" `Quick
          test_histogram_negative_clamps;
        qtest prop_histogram_percentile_bracket;
        qtest prop_cumulative_buckets_monotone;
      ] );
    ( "obs.log",
      [
        Alcotest.test_case "level filtering" `Quick test_log_level_filtering;
        Alcotest.test_case "text formatting" `Quick test_log_format_event;
        Alcotest.test_case "json sink parses" `Quick test_log_json_sink_parses;
        Alcotest.test_case "recorder ring" `Quick test_recorder_ring;
        Alcotest.test_case "recorder replay bypasses level" `Quick
          test_recorder_captures_below_level_and_replays;
        Alcotest.test_case "span correlation" `Quick test_log_span_correlation;
      ] );
    ( "obs.openmetrics",
      [
        Alcotest.test_case "name sanitize" `Quick test_openmetrics_name_sanitize;
        Alcotest.test_case "render shape" `Quick test_openmetrics_render_shape;
        Alcotest.test_case "lint rejects malformed" `Quick
          test_openmetrics_lint_rejects;
        qtest prop_openmetrics_render_lints_clean;
      ] );
    ( "obs.span",
      [
        Alcotest.test_case "nesting" `Quick test_span_nesting;
        Alcotest.test_case "tracks isolated" `Quick test_span_tracks_isolated;
        Alcotest.test_case "timing and finish" `Quick test_span_timing_and_finish;
        Alcotest.test_case "orphans" `Quick test_span_orphans_reported;
        Alcotest.test_case "late args" `Quick test_span_args_mutable_after_finish;
        Alcotest.test_case "wall clock monotone" `Quick test_wall_clock_monotone;
      ] );
    ( "obs.json",
      [
        Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        qtest prop_json_roundtrip;
      ] );
    ( "obs.chrome",
      [
        Alcotest.test_case "export shape" `Quick test_chrome_export_shape;
        Alcotest.test_case "counter time series" `Quick
          test_chrome_counter_time_series;
      ] );
    ( "obs.scope",
      [
        Alcotest.test_case "noop when disabled" `Quick test_scope_noop_when_disabled;
        Alcotest.test_case "records" `Quick test_scope_records;
      ] );
    ( "obs.pipeline",
      [
        Alcotest.test_case "diagnosis spans (no scope)" `Quick
          test_diagnosis_spans_without_scope;
        Alcotest.test_case "diagnosis spans (ambient scope)" `Quick
          test_diagnosis_spans_in_scope;
        Alcotest.test_case "scheduler telemetry" `Quick
          test_sim_scheduler_telemetry;
        Alcotest.test_case "telemetry preserves determinism" `Quick
          test_sim_telemetry_preserves_determinism;
        Alcotest.test_case "parallel decode merges worker metrics" `Quick
          test_parallel_decode_merges_worker_metrics;
      ] );
    ( "obs.bench_diff",
      [
        Alcotest.test_case "lower-is-better heuristic" `Quick
          test_bench_diff_lower_is_better;
        Alcotest.test_case "self-diff is clean" `Quick test_bench_diff_self_clean;
        Alcotest.test_case "detects regressions" `Quick
          test_bench_diff_detects_regression;
        Alcotest.test_case "zero baseline" `Quick test_bench_diff_zero_baseline;
        Alcotest.test_case "asymmetric keys" `Quick test_bench_diff_asymmetric_keys;
        Alcotest.test_case "named list elements" `Quick
          test_bench_diff_named_list_elements;
      ] );
  ]
