(* Tests for the fix subsystem: synthesis invariants over the whole
   corpus, the oracle's rejection of a deliberately wrong patch, and
   parallel/sequential sweep equivalence. *)

module Core = Snorlax_core

(* Every synthesizable candidate patch, across all corpus bugs, must (a)
   leave the module well-formed and (b) touch only the functions it
   declares: every other function prints identically to a fresh build.
   At least one template per diagnosed bug must synthesize, or the fix
   ladder would have nothing to validate. *)
let test_patches_verify_and_localize () =
  let patched_total = ref 0 in
  List.iter
    (fun (bug : Corpus.Bug.t) ->
      match Experiments.Eval_runs.get_result bug with
      | Error msg -> Alcotest.failf "%s did not reproduce: %s" bug.id msg
      | Ok entry -> (
        match entry.Experiments.Eval_runs.diagnosis.Core.Diagnosis.top with
        | None -> Alcotest.failf "%s diagnosed no pattern" bug.id
        | Some top ->
          let pattern = top.Core.Statistics.pattern in
          let reference = (bug.build ()).Corpus.Bug.m in
          let ok_templates = ref 0 in
          List.iter
            (fun template ->
              let m = (bug.build ()).Corpus.Bug.m in
              match Fix.Patch.synthesize ~m ~pattern template with
              | Error _ -> ()
              | Ok patch ->
                incr ok_templates;
                incr patched_total;
                let name = Fix.Patch.template_name template in
                (match Lir.Verify.check m with
                | [] -> ()
                | errs ->
                  Alcotest.failf "%s/%s: %d verifier errors" bug.id name
                    (List.length errs));
                List.iter
                  (fun (f : Lir.Func.t) ->
                    if not (List.mem f.fname patch.Fix.Patch.touched_funcs)
                    then
                      let orig = Lir.Irmod.find_func reference f.fname in
                      Alcotest.(check string)
                        (Printf.sprintf "%s/%s leaves %s untouched" bug.id
                           name f.fname)
                        (Lir.Printer.func_to_string orig)
                        (Lir.Printer.func_to_string f))
                  (Lir.Irmod.funcs m))
            (Fix.Patch.candidates pattern);
          Alcotest.(check bool)
            (bug.id ^ " has at least one applicable template")
            true (!ok_templates > 0)))
    Corpus.Registry.all;
  Alcotest.(check bool) "patched something" true (!patched_total > 0)

(* A deliberately wrong patch — the new mutex bracketing only the remote
   side of a diagnosed atomicity pair — must not earn [Fixed]: the
   HB-oracle sweep still sees the diagnosed pair racy (or the failure
   still reproduces). *)
let test_one_sided_patch_rejected () =
  let bug = Corpus.Registry.find_exn "mysql-7" in
  let entry =
    match Experiments.Eval_runs.get_result bug with
    | Ok e -> e
    | Error msg -> Alcotest.failf "mysql-7 did not reproduce: %s" msg
  in
  let pattern =
    match entry.Experiments.Eval_runs.diagnosis.Core.Diagnosis.top with
    | Some top -> top.Core.Statistics.pattern
    | None -> Alcotest.fail "mysql-7 diagnosed no pattern"
  in
  let remote_iid =
    match pattern with
    | Core.Patterns.Atomicity { remote_iid; _ } -> remote_iid
    | _ -> Alcotest.fail "mysql-7 should diagnose an atomicity pattern"
  in
  let m = (bug.build ()).Corpus.Bug.m in
  let g = Lir.Rewrite.fresh_global m ~base:"__wrong_mutex" Lir.Ty.I64 in
  let call callee =
    Lir.Instr.Call { dst = None; callee; args = [ Lir.Value.Global g ] }
  in
  ignore
    (Lir.Rewrite.insert_before m ~iid:remote_iid
       [ call Lir.Intrinsics.mutex_lock ]);
  ignore
    (Lir.Rewrite.insert_after m ~iid:remote_iid
       [ call Lir.Intrinsics.mutex_unlock ]);
  Lir.Verify.check_exn m;
  Lir.Irmod.layout m;
  let collected = entry.Experiments.Eval_runs.collected in
  let j =
    Fix.Validate.judge_patch ~bug ~collected ~pattern
      ~sweep_seeds:(Fix.Validate.sweep_seed_list ~collected ~seeds:5)
      m
  in
  match j.Fix.Validate.verdict with
  | Fix.Validate.Fixed ->
    Alcotest.fail "a one-sided lock must not pass validation"
  | Fix.Validate.Not_fixed _ | Fix.Validate.Regressed _ -> ()

(* The parallel fix sweep must return exactly the sequential sweep's
   verdict table: same order, same verdicts, same winning templates. *)
let test_parallel_matches_sequential () =
  let bugs =
    List.map Corpus.Registry.find_exn [ "mysql-7"; "pbzip2-1"; "derby-1" ]
  in
  let project results =
    List.map
      (fun (id, r) ->
        match r with
        | Error msg -> (id, "error", msg)
        | Ok (b : Fix.Validate.bug_report) ->
          ( id,
            Fix.Validate.verdict_name b.verdict,
            match b.template with
            | None -> "-"
            | Some t -> Fix.Patch.template_name t ))
      results
  in
  let seq = project (Fix.Validate.fix_all ~sweep_jobs:1 ~seeds:2 bugs) in
  let par = project (Fix.Validate.fix_all ~sweep_jobs:4 ~seeds:2 bugs) in
  Alcotest.(check (list (triple string string string)))
    "parallel == sequential" seq par;
  List.iter
    (fun (id, verdict, _) ->
      Alcotest.(check string) (id ^ " fixed") "fixed" verdict)
    seq

let tests =
  [
    ( "fix.synthesis",
      [
        Alcotest.test_case "patches verify and localize" `Slow
          test_patches_verify_and_localize;
      ] );
    ( "fix.validation",
      [
        Alcotest.test_case "one-sided patch rejected" `Slow
          test_one_sided_patch_rejected;
        Alcotest.test_case "parallel == sequential" `Slow
          test_parallel_matches_sequential;
      ] );
  ]
