(* Chaos harness smoke tests: a small number of real trials through the
   full inject -> wire -> collector -> diagnosis loop, plus unit checks
   on the fault vocabulary and the injector's bookkeeping. *)

let bug () =
  match Corpus.Registry.find "pbzip2-1" with
  | Some b -> b
  | None -> Alcotest.fail "corpus bug pbzip2-1 missing"

let test_fault_names_roundtrip () =
  List.iter
    (fun cls ->
      match Chaos.Fault.of_name (Chaos.Fault.name cls) with
      | Some cls' ->
        Alcotest.(check string)
          "roundtrip" (Chaos.Fault.name cls) (Chaos.Fault.name cls')
      | None ->
        Alcotest.failf "of_name rejects %s" (Chaos.Fault.name cls))
    Chaos.Fault.all;
  Alcotest.(check (option reject)) "unknown name" None
    (Chaos.Fault.of_name "no-such-fault")

let test_run_rejects_bad_params () =
  let b = bug () in
  (match Chaos.Harness.run ~seeds:0 [ b ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "seeds=0 accepted");
  (match Chaos.Harness.run ~seeds:1 [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty bug list accepted");
  match Chaos.Harness.run ~seeds:1 ~endpoints:0 [ b ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "endpoints=0 accepted"

(* A genuine end-to-end chaos run, small enough for the test suite: every
   fault class, two seeds.  The harness's own gate must hold: no
   invariant violations, no escaping exceptions, deterministic seeds. *)
let test_smoke_all_classes () =
  match Chaos.Harness.run ~seeds:2 [ bug () ] with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    Alcotest.(check int) "classes covered"
      (List.length Chaos.Fault.all)
      (List.length r.Chaos.Harness.classes);
    Alcotest.(check int) "invariant violations" 0 r.Chaos.Harness.total_violations;
    Alcotest.(check int) "uncaught exceptions" 0 r.Chaos.Harness.total_uncaught;
    Alcotest.(check bool) "gate" true (Chaos.Harness.ok r);
    List.iter
      (fun s ->
        Alcotest.(check int)
          (Chaos.Fault.name s.Chaos.Harness.summary_cls ^ " trials")
          2 s.Chaos.Harness.trials)
      r.Chaos.Harness.classes;
    (* Faults were actually injected, and the payload-preserving classes
       still let the true root cause through. *)
    Alcotest.(check bool) "faults injected" true (r.Chaos.Harness.total_faults > 0);
    List.iter
      (fun s ->
        if Chaos.Fault.payload_preserving s.Chaos.Harness.summary_cls then
          Alcotest.(check int)
            (Chaos.Fault.name s.Chaos.Harness.summary_cls ^ " rc survival")
            2 s.Chaos.Harness.rc_matched_trials)
      r.Chaos.Harness.classes

let test_json_shape () =
  match Chaos.Harness.run ~seeds:1 ~classes:[ Chaos.Fault.Wire_drop ] [ bug () ] with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    let s = Obs.Json.to_string (Chaos.Harness.to_json r) in
    let contains needle =
      let n = String.length needle and l = String.length s in
      let rec go i = i + n <= l && (String.sub s i n = needle || go (i + 1)) in
      go 0
    in
    List.iter
      (fun needle ->
        if not (contains needle) then
          Alcotest.failf "missing %S in %s" needle s)
      [
        "\"bench\":\"chaos\"";
        "\"class\":\"wire-drop\"";
        "\"total_invariant_violations\"";
        "\"ok\"";
      ]

(* The injector must be a pure function of its Prng: same seed, same
   stream, byte for byte. *)
let prop_inject_deterministic =
  QCheck.Test.make ~name:"inject is deterministic per seed" ~count:30
    QCheck.(pair (int_bound 1_000) (int_bound 8))
    (fun (seed, cls_idx) ->
      let cls = List.nth Chaos.Fault.all cls_idx in
      let b = bug () in
      match Corpus.Runner.collect b () with
      | Error _ -> QCheck.assume_fail ()
      | Ok c ->
        let build () =
          let prng = Snorlax_util.Prng.create ~seed in
          Chaos.Inject.build ~prng ~cls ~bug_id:b.Corpus.Bug.id
            ~config:Pt.Config.default ~endpoints:2
            ~failing:c.Corpus.Runner.failing
            ~successful:c.Corpus.Runner.successful
        in
        let a = build () and b' = build () in
        a.Chaos.Inject.packets = b'.Chaos.Inject.packets
        && a.Chaos.Inject.faults = b'.Chaos.Inject.faults
        && a.Chaos.Inject.failing_sent = b'.Chaos.Inject.failing_sent)

(* One lane per bug: the parallel sweep must be invisible in the output
   — identical report (trials are independent per (bug, class, seed))
   and the same progress lines in the same bug order, just replayed on
   the submitting domain at merge time. *)
let test_parallel_sweep_identical () =
  let bugs =
    List.filter_map Corpus.Registry.find [ "pbzip2-1"; "aget-1" ]
  in
  if List.length bugs <> 2 then Alcotest.fail "corpus bugs missing";
  let classes = [ Chaos.Fault.Wire_drop; Chaos.Fault.Wire_duplicate ] in
  let collect jobs =
    let lines = ref [] in
    match
      Chaos.Harness.run ~seeds:2 ~classes
        ~progress:(fun l -> lines := l :: !lines)
        ~jobs bugs
    with
    | Error msg -> Alcotest.fail msg
    | Ok r -> (r, List.rev !lines)
  in
  let seq_r, seq_lines = collect 1 in
  let par_r, par_lines = collect 4 in
  Alcotest.(check bool) "report identical across jobs" true (seq_r = par_r);
  Alcotest.(check (list string)) "progress replayed in bug order" seq_lines
    par_lines;
  Alcotest.(check bool) "gate holds" true (Chaos.Harness.ok par_r)

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    ( "chaos.harness",
      [
        Alcotest.test_case "fault names roundtrip" `Quick
          test_fault_names_roundtrip;
        Alcotest.test_case "run rejects bad params" `Quick
          test_run_rejects_bad_params;
        Alcotest.test_case "smoke: all classes, gate holds" `Slow
          test_smoke_all_classes;
        Alcotest.test_case "bench json shape" `Quick test_json_shape;
        Alcotest.test_case "parallel sweep identical" `Slow
          test_parallel_sweep_identical;
        qtest prop_inject_deterministic;
      ] );
  ]
