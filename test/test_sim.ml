(* Tests for the discrete-event simulator: instruction semantics, memory
   faults, mutexes, deadlock detection, threads, hooks and determinism. *)

module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty

let run ?(seed = 1) ?hooks m =
  let config =
    match hooks with
    | None -> { Sim.Interp.default_config with seed }
    | Some hooks -> { Sim.Interp.default_config with seed; hooks }
  in
  Sim.Interp.run ~config m ~entry:"main"

let completed r =
  match r.Sim.Interp.outcome with Sim.Interp.Completed -> true | _ -> false

let failure_of r =
  match r.Sim.Interp.outcome with
  | Sim.Interp.Failed { failure; _ } -> Some failure
  | _ -> None

let output r = r.Sim.Interp.output

(* Build a main that prints the result of [body]. *)
let expr_module body =
  let m = Lir.Irmod.create "t" in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  ignore (Lir.Irmod.declare_struct m "Pair" [ T.I64; T.I64 ]);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let v = body b in
      B.call_void b Lir.Intrinsics.print_i64 [ v ];
      B.ret_void b);
  Lir.Verify.check_exn m;
  m

let eval body = output (run (expr_module body))

(* --- arithmetic & data flow -------------------------------------------- *)

let test_arith () =
  Alcotest.(check (list int)) "add" [ 7 ]
    (eval (fun b -> B.add b (V.i64 3) (V.i64 4)));
  Alcotest.(check (list int)) "sub" [ -1 ]
    (eval (fun b -> B.sub b (V.i64 3) (V.i64 4)));
  Alcotest.(check (list int)) "mul" [ 12 ]
    (eval (fun b -> B.mul b (V.i64 3) (V.i64 4)));
  Alcotest.(check (list int)) "sdiv" [ 3 ]
    (eval (fun b -> B.binop b Lir.Instr.Sdiv (V.i64 7) (V.i64 2)));
  Alcotest.(check (list int)) "srem" [ 1 ]
    (eval (fun b -> B.binop b Lir.Instr.Srem (V.i64 7) (V.i64 2)));
  Alcotest.(check (list int)) "xor" [ 6 ]
    (eval (fun b -> B.binop b Lir.Instr.Xor (V.i64 3) (V.i64 5)));
  Alcotest.(check (list int)) "shl" [ 12 ]
    (eval (fun b -> B.binop b Lir.Instr.Shl (V.i64 3) (V.i64 2)))

let test_icmp () =
  let check name cmp a b expect =
    Alcotest.(check (list int)) name [ expect ]
      (eval (fun bb ->
           let c = B.icmp bb cmp (V.i64 a) (V.i64 b) in
           B.cast bb c T.I64))
  in
  check "slt true" Lir.Instr.Slt 1 2 1;
  check "slt false" Lir.Instr.Slt 2 1 0;
  check "eq" Lir.Instr.Eq 5 5 1;
  check "ne" Lir.Instr.Ne 5 5 0;
  check "sge" Lir.Instr.Sge 5 5 1

let test_memory_roundtrip () =
  Alcotest.(check (list int)) "alloca store/load" [ 42 ]
    (eval (fun b ->
         let p = B.alloca b T.I64 in
         B.store b ~value:(V.i64 42) ~ptr:p;
         B.load b p))

let test_gep_fields_distinct () =
  Alcotest.(check (list int)) "fields do not clobber" [ 10 ]
    (eval (fun b ->
         let p = B.malloc b (T.Struct "Pair") in
         B.store b ~value:(V.i64 10) ~ptr:(B.gep b p 0);
         B.store b ~value:(V.i64 20) ~ptr:(B.gep b p 1);
         B.load b (B.gep b p 0)))

let test_array_indexing () =
  Alcotest.(check (list int)) "array cells" [ 5 ]
    (eval (fun b ->
         let arr = B.alloca b (T.Array (T.I64, 4)) in
         B.store b ~value:(V.i64 5) ~ptr:(B.index b arr (V.i64 2));
         B.store b ~value:(V.i64 9) ~ptr:(B.index b arr (V.i64 3));
         B.load b (B.index b arr (V.i64 2))))

let test_call_and_return () =
  let m = Lir.Irmod.create "t" in
  B.define m "double" ~params:[ ("x", T.I64) ] ~ret:T.I64 (fun b ->
      B.ret b (B.add b (B.param b 0) (B.param b 0)));
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let v = B.call b ~ret:T.I64 "double" [ V.i64 21 ] in
      B.call_void b Lir.Intrinsics.print_i64 [ v ];
      B.ret_void b);
  Lir.Verify.check_exn m;
  Alcotest.(check (list int)) "call result" [ 42 ] (output (run m))

let test_recursion () =
  let m = Lir.Irmod.create "t" in
  B.define m "fact" ~params:[ ("n", T.I64) ] ~ret:T.I64 (fun b ->
      let n = B.param b 0 in
      let base = B.icmp b Lir.Instr.Sle n (V.i64 1) in
      let lt = B.fresh_label b "base" in
      let le = B.fresh_label b "rec" in
      B.cond_br b base lt le;
      B.start_block b lt;
      B.ret b (V.i64 1);
      B.start_block b le;
      let rec_v = B.call b ~ret:T.I64 "fact" [ B.sub b n (V.i64 1) ] in
      B.ret b (B.mul b n rec_v));
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let v = B.call b ~ret:T.I64 "fact" [ V.i64 5 ] in
      B.call_void b Lir.Intrinsics.print_i64 [ v ];
      B.ret_void b);
  Lir.Verify.check_exn m;
  Alcotest.(check (list int)) "5!" [ 120 ] (output (run m))

let test_loop_sum () =
  Alcotest.(check (list int)) "sum 0..9" [ 45 ]
    (eval (fun b ->
         let acc = B.alloca b T.I64 in
         B.store b ~value:(V.i64 0) ~ptr:acc;
         B.for_ b ~from:0 ~below:(V.i64 10) (fun i ->
             let v = B.load b acc in
             B.store b ~value:(B.add b v i) ~ptr:acc);
         B.load b acc))

(* --- faults ------------------------------------------------------------- *)

let test_null_deref () =
  let m = expr_module (fun b -> B.load b (V.Null (T.Ptr T.I64))) in
  match failure_of (run m) with
  | Some (Sim.Failure.Crash { reason = Sim.Failure.Null_deref; _ }) -> ()
  | _ -> Alcotest.fail "expected null-deref crash"

let test_use_after_free () =
  let m = Lir.Irmod.create "t" in
  ignore (Lir.Irmod.declare_struct m "Pair" [ T.I64; T.I64 ]);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let p = B.malloc b (T.Struct "Pair") in
      B.store b ~value:(V.i64 1) ~ptr:(B.gep b p 0);
      B.call_void b Lir.Intrinsics.free [ B.cast b p (T.Ptr T.I8) ];
      let v = B.load b (B.gep b p 0) in
      B.call_void b Lir.Intrinsics.print_i64 [ v ];
      B.ret_void b);
  Lir.Verify.check_exn m;
  match failure_of (run m) with
  | Some (Sim.Failure.Crash { reason = Sim.Failure.Use_after_free; _ }) -> ()
  | _ -> Alcotest.fail "expected UAF crash"

let test_assert_failure () =
  let m = Lir.Irmod.create "t" in
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.assert_true b (V.Imm (0L, T.I1));
      B.ret_void b);
  Lir.Verify.check_exn m;
  match failure_of (run m) with
  | Some (Sim.Failure.Assert_fail _) -> ()
  | _ -> Alcotest.fail "expected assertion failure"

let test_double_free_faults () =
  let m = Lir.Irmod.create "t" in
  ignore (Lir.Irmod.declare_struct m "Pair" [ T.I64; T.I64 ]);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let p = B.malloc b (T.Struct "Pair") in
      let raw = B.cast b p (T.Ptr T.I8) in
      B.call_void b Lir.Intrinsics.free [ raw ];
      B.call_void b Lir.Intrinsics.free [ raw ];
      B.ret_void b);
  Lir.Verify.check_exn m;
  match failure_of (run m) with
  | Some (Sim.Failure.Crash _) -> ()
  | _ -> Alcotest.fail "expected crash on double free"

(* Division and remainder by zero are structured fail-stop events (a
   hardware SIGFPE), not host-level [failwith]s that would abort an
   embedding validation sweep. *)
let test_div_by_zero_structured () =
  let m =
    expr_module (fun b -> B.binop b Lir.Instr.Sdiv (V.i64 7) (V.i64 0))
  in
  match failure_of (run m) with
  | Some (Sim.Failure.Arith_fault { fault = Sim.Failure.Div_by_zero; _ } as f)
    ->
    Alcotest.(check string) "kind" "arith-fault" (Sim.Failure.kind_name f)
  | _ -> Alcotest.fail "expected a structured div-by-zero failure"

let test_rem_by_zero_structured () =
  let m =
    expr_module (fun b -> B.binop b Lir.Instr.Srem (V.i64 7) (V.i64 0))
  in
  match failure_of (run m) with
  | Some (Sim.Failure.Arith_fault { fault = Sim.Failure.Rem_by_zero; _ }) -> ()
  | _ -> Alcotest.fail "expected a structured rem-by-zero failure"

(* A register read the verifier's block-order approximation accepts but no
   executed instruction defined: jump over the defining block.  Must be a
   structured failure, not an escaped host exception. *)
let test_undef_read_structured () =
  let m = Lir.Irmod.create "t" in
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let def = B.fresh_label b "def" in
      let use = B.fresh_label b "use" in
      let skip = B.icmp b Lir.Instr.Eq (V.i64 0) (V.i64 0) in
      B.cond_br b skip use def;
      B.start_block b def;
      let x = B.add b (V.i64 1) (V.i64 2) in
      B.br b use;
      B.start_block b use;
      B.call_void b Lir.Intrinsics.print_i64 [ x ];
      B.ret_void b);
  Lir.Verify.check_exn m;
  match failure_of (run m) with
  | Some (Sim.Failure.Undef_read { rname; _ } as f) ->
    Alcotest.(check string) "kind" "undef-read" (Sim.Failure.kind_name f);
    Alcotest.(check bool) "names the register" true (String.length rname > 0)
  | _ -> Alcotest.fail "expected a structured undefined-register failure"

(* thread_create whose entry pc names no function: a structured
   thread-misuse at the faulting call. *)
let test_create_not_function_structured () =
  let m = Lir.Irmod.create "t" in
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let t =
        B.call b ~ret:T.I64 Lir.Intrinsics.thread_create
          [ V.i64 987_654; V.i64 0 ]
      in
      ignore t;
      B.ret_void b);
  Lir.Verify.check_exn m;
  match failure_of (run m) with
  | Some
      (Sim.Failure.Thread_misuse { misuse = Sim.Failure.Create_not_function; _ }
       as f) ->
    Alcotest.(check string) "kind" "thread-misuse" (Sim.Failure.kind_name f)
  | _ -> Alcotest.fail "expected a structured create-not-function failure"

(* Joining a tid that was never spawned. *)
let test_join_unknown_structured () =
  let m = Lir.Irmod.create "t" in
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b Lir.Intrinsics.thread_join [ V.i64 99 ];
      B.ret_void b);
  Lir.Verify.check_exn m;
  match failure_of (run m) with
  | Some (Sim.Failure.Thread_misuse { misuse = Sim.Failure.Join_unknown; _ })
    ->
    ()
  | _ -> Alcotest.fail "expected a structured join-of-unknown-tid failure"

(* --- threads & locks ---------------------------------------------------- *)

let counter_module ~locked ~threads ~iters =
  let m = Lir.Irmod.create "t" in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  Lir.Irmod.declare_global m "lock" (T.Struct "Mutex");
  Lir.Irmod.declare_global m "counter" T.I64;
  B.define m "worker" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.for_ b ~from:0 ~below:(V.i64 iters) (fun _ ->
          if locked then B.mutex_lock b (V.Global "lock");
          let v = B.load b (V.Global "counter") in
          B.io_delay b ~ns:50;
          B.store b ~value:(B.add b v (V.i64 1)) ~ptr:(V.Global "counter");
          if locked then B.mutex_unlock b (V.Global "lock"));
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global "lock" ];
      let tids = List.init threads (fun i -> B.spawn b "worker" (V.i64 i)) in
      List.iter (fun t -> B.join b t) tids;
      let v = B.load b (V.Global "counter") in
      B.call_void b Lir.Intrinsics.print_i64 [ v ];
      B.ret_void b);
  Lir.Verify.check_exn m;
  m

let test_locked_counter_exact () =
  let m = counter_module ~locked:true ~threads:4 ~iters:100 in
  Alcotest.(check (list int)) "no lost updates" [ 400 ] (output (run m))

let test_unlocked_counter_races () =
  (* The delay inside the read-modify-write makes lost updates certain. *)
  let m = counter_module ~locked:false ~threads:4 ~iters:100 in
  match output (run m) with
  | [ v ] -> Alcotest.(check bool) "updates lost" true (v < 400)
  | _ -> Alcotest.fail "expected one output"

let test_join_waits () =
  let m = Lir.Irmod.create "t" in
  Lir.Irmod.declare_global m "flag" T.I64;
  B.define m "child" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.io_delay b ~ns:10_000;
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "flag");
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let t = B.spawn b "child" (V.i64 0) in
      B.join b t;
      let v = B.load b (V.Global "flag") in
      B.call_void b Lir.Intrinsics.print_i64 [ v ];
      B.ret_void b);
  Lir.Verify.check_exn m;
  Alcotest.(check (list int)) "join ordered" [ 1 ] (output (run m))

let two_lock_deadlock_module ~delay =
  let m = Lir.Irmod.create "t" in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  Lir.Irmod.declare_global m "la" (T.Struct "Mutex");
  Lir.Irmod.declare_global m "lb" (T.Struct "Mutex");
  let worker name first second =
    B.define m name ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
        B.mutex_lock b (V.Global first);
        B.work b ~ns:delay;
        B.mutex_lock b (V.Global second);
        B.mutex_unlock b (V.Global second);
        B.mutex_unlock b (V.Global first);
        B.ret_void b)
  in
  worker "t1" "la" "lb";
  worker "t2" "lb" "la";
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global "la" ];
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global "lb" ];
      let a = B.spawn b "t1" (V.i64 0) in
      let c = B.spawn b "t2" (V.i64 0) in
      B.join b a;
      B.join b c;
      B.ret_void b);
  Lir.Verify.check_exn m;
  m

let test_deadlock_detected () =
  let m = two_lock_deadlock_module ~delay:100_000 in
  match failure_of (run m) with
  | Some (Sim.Failure.Deadlock { waiters }) ->
    Alcotest.(check int) "two waiters" 2 (List.length waiters)
  | _ -> Alcotest.fail "expected deadlock"

let test_no_deadlock_when_disjoint () =
  (* Without overlap the same program completes. *)
  let m = two_lock_deadlock_module ~delay:0 in
  (* delay 0 can still deadlock by scheduling; retry over seeds: at least
     one seed must complete, showing detection is not a false positive. *)
  let any_completed =
    List.exists (fun seed -> completed (run ~seed m)) [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "some interleavings complete" true any_completed

let test_three_way_deadlock () =
  let m = Lir.Irmod.create "t" in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  List.iter (fun g -> Lir.Irmod.declare_global m g (T.Struct "Mutex"))
    [ "l0"; "l1"; "l2" ];
  let worker name first second =
    B.define m name ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
        B.mutex_lock b (V.Global first);
        B.work b ~ns:100_000;
        B.mutex_lock b (V.Global second);
        B.mutex_unlock b (V.Global second);
        B.mutex_unlock b (V.Global first);
        B.ret_void b)
  in
  worker "w0" "l0" "l1";
  worker "w1" "l1" "l2";
  worker "w2" "l2" "l0";
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      List.iter
        (fun g -> B.call_void b Lir.Intrinsics.mutex_init [ V.Global g ])
        [ "l0"; "l1"; "l2" ];
      let ts = List.map (fun w -> B.spawn b w (V.i64 0)) [ "w0"; "w1"; "w2" ] in
      List.iter (fun t -> B.join b t) ts;
      B.ret_void b);
  Lir.Verify.check_exn m;
  match failure_of (run m) with
  | Some (Sim.Failure.Deadlock { waiters }) ->
    Alcotest.(check int) "three waiters" 3 (List.length waiters)
  | _ -> Alcotest.fail "expected 3-way deadlock"

let test_self_deadlock () =
  let m = Lir.Irmod.create "t" in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  Lir.Irmod.declare_global m "l" (T.Struct "Mutex");
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global "l" ];
      B.mutex_lock b (V.Global "l");
      B.mutex_lock b (V.Global "l");
      B.ret_void b);
  Lir.Verify.check_exn m;
  (* A self-relock is an API misuse reported at the faulting call, not a
     one-thread "deadlock cycle". *)
  match failure_of (run m) with
  | Some (Sim.Failure.Lock_misuse { misuse = Sim.Failure.Relock; tid; _ }) ->
    Alcotest.(check int) "faulting thread" 0 tid
  | _ -> Alcotest.fail "expected relock misuse"

let test_unlock_unheld_is_program_error () =
  let m = Lir.Irmod.create "t" in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  Lir.Irmod.declare_global m "l" (T.Struct "Mutex");
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.mutex_unlock b (V.Global "l");
      B.ret_void b);
  Lir.Verify.check_exn m;
  (* Structured failure, not a host exception escaping the simulator. *)
  match failure_of (run m) with
  | Some (Sim.Failure.Lock_misuse { misuse = Sim.Failure.Unlock_free; _ }) -> ()
  | _ -> Alcotest.fail "expected unlock-free misuse"

let test_double_unlock_is_program_error () =
  let m = Lir.Irmod.create "t" in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  Lir.Irmod.declare_global m "l" (T.Struct "Mutex");
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global "l" ];
      B.mutex_lock b (V.Global "l");
      B.mutex_unlock b (V.Global "l");
      B.mutex_unlock b (V.Global "l");
      B.ret_void b);
  Lir.Verify.check_exn m;
  match failure_of (run m) with
  | Some (Sim.Failure.Lock_misuse { misuse = Sim.Failure.Unlock_free; _ }) -> ()
  | _ -> Alcotest.fail "expected double-unlock misuse"

let test_unlock_by_non_owner_is_program_error () =
  (* The child unlocks a mutex main holds: the failure names the child and
     main's ownership survives (owner state is not corrupted). *)
  let m = Lir.Irmod.create "t" in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  Lir.Irmod.declare_global m "l" (T.Struct "Mutex");
  B.define m "thief" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.mutex_unlock b (V.Global "l");
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global "l" ];
      B.mutex_lock b (V.Global "l");
      let t = B.spawn b "thief" (V.i64 0) in
      B.work b ~ns:200_000;
      B.mutex_unlock b (V.Global "l");
      B.join b t;
      B.ret_void b);
  Lir.Verify.check_exn m;
  match failure_of (run m) with
  | Some
      (Sim.Failure.Lock_misuse { misuse = Sim.Failure.Unlock_unowned; tid; _ })
    ->
    Alcotest.(check int) "thief thread blamed" 1 tid
  | _ -> Alcotest.fail "expected unlock-unowned misuse"

(* --- mutex unit behaviour ----------------------------------------------- *)

let test_mutex_fifo () =
  let mx = Sim.Mutexes.create () in
  Alcotest.(check bool) "t0 acquires" true
    (Sim.Mutexes.lock mx ~addr:100 ~tid:0 = Sim.Mutexes.Acquired);
  Alcotest.(check bool) "t1 blocks" true
    (Sim.Mutexes.lock mx ~addr:100 ~tid:1 = Sim.Mutexes.Blocked);
  Alcotest.(check bool) "t2 blocks" true
    (Sim.Mutexes.lock mx ~addr:100 ~tid:2 = Sim.Mutexes.Blocked);
  (match Sim.Mutexes.unlock mx ~addr:100 ~tid:0 with
  | Ok (Some next) -> Alcotest.(check int) "fifo handoff" 1 next
  | _ -> Alcotest.fail "expected handoff");
  Alcotest.(check (option int)) "owner is t1" (Some 1)
    (Sim.Mutexes.holder mx ~addr:100)

let test_mutex_wrong_owner () =
  let mx = Sim.Mutexes.create () in
  ignore (Sim.Mutexes.lock mx ~addr:5 ~tid:0);
  match Sim.Mutexes.unlock mx ~addr:5 ~tid:3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

(* --- misc runtime ------------------------------------------------------- *)

let test_rand_deterministic () =
  let build () =
    expr_module (fun b -> B.rand b ~bound:1000)
  in
  let a = output (run ~seed:9 (build ())) in
  let b = output (run ~seed:9 (build ())) in
  Alcotest.(check (list int)) "same seed same value" a b

let test_time_advances () =
  let m = expr_module (fun b ->
      B.work b ~ns:1_000_000;
      V.i64 0)
  in
  let r = run m in
  Alcotest.(check bool) "about 1ms" true
    (r.Sim.Interp.final_time_ns > 900_000.0
    && r.Sim.Interp.final_time_ns < 1_200_000.0)

let test_fuel_exhaustion () =
  let m = Lir.Irmod.create "t" in
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let l = B.fresh_label b "spin" in
      B.br b l;
      B.start_block b l;
      B.br b l);
  Lir.Verify.check_exn m;
  let config = { Sim.Interp.default_config with max_steps = 1000 } in
  match (Sim.Interp.run ~config m ~entry:"main").Sim.Interp.outcome with
  | Sim.Interp.Fuel_exhausted -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_control_events_fire () =
  let m = counter_module ~locked:true ~threads:2 ~iters:3 in
  let starts = ref 0 and branches = ref 0 and rets = ref 0 in
  let hooks =
    {
      Sim.Hooks.on_control =
        Some
          (fun ~time:_ e ->
            (match e with
            | Sim.Hooks.Thread_start _ -> incr starts
            | Sim.Hooks.Cond_branch _ -> incr branches
            | Sim.Hooks.Ret_branch _ -> incr rets
            | Sim.Hooks.Thread_exit _ -> ());
            0.0);
      on_instr = None;
      gate = None;
      on_sched = None;
      on_obs = None;
    }
  in
  ignore (run ~hooks m);
  Alcotest.(check int) "three thread starts" 3 !starts;
  Alcotest.(check bool) "branches observed" true (!branches > 0);
  Alcotest.(check bool) "returns observed" true (!rets > 0)

let test_instr_hook_cost_charged () =
  let build () = expr_module (fun _ -> V.i64 0) in
  let base = (run (build ())).Sim.Interp.final_time_ns in
  let hooks =
    { Sim.Hooks.none with
      on_instr = Some (fun ~tid:_ ~time:_ _ -> 100.0) }
  in
  let taxed = (run ~hooks (build ())).Sim.Interp.final_time_ns in
  Alcotest.(check bool) "cost added" true (taxed > base +. 150.0)

let test_hooks_combine () =
  let calls = ref 0 in
  let h () =
    { Sim.Hooks.none with
      on_control = Some (fun ~time:_ _ -> incr calls; 1.0) }
  in
  let combined = Sim.Hooks.combine (h ()) (h ()) in
  (match combined.Sim.Hooks.on_control with
  | Some f ->
    let cost = f ~time:0.0 (Sim.Hooks.Thread_exit { tid = 0 }) in
    Alcotest.(check (float 1e-9)) "costs add" 2.0 cost
  | None -> Alcotest.fail "combined lost on_control");
  Alcotest.(check int) "both fired" 2 !calls

(* --- condition variables ------------------------------------------------ *)

let condvar_module ~producer_signals =
  let m = Lir.Irmod.create "cv" in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  ignore (Lir.Irmod.declare_struct m "Cond" [ T.I64 ]);
  Lir.Irmod.declare_global m "lock" (T.Struct "Mutex");
  Lir.Irmod.declare_global m "nonempty" (T.Struct "Cond");
  Lir.Irmod.declare_global m "items" T.I64;
  Lir.Irmod.declare_global m "consumed" T.I64;
  B.define m "consumer" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.mutex_lock b (V.Global "lock");
      B.while_ b
        ~cond:(fun () ->
          let n = B.load b (V.Global "items") in
          B.icmp b Lir.Instr.Eq n (V.i64 0))
        ~body:(fun () ->
          B.cond_wait b ~cond:(V.Global "nonempty") ~mutex:(V.Global "lock"));
      let n = B.load b (V.Global "items") in
      B.store b ~value:(B.sub b n (V.i64 1)) ~ptr:(V.Global "items");
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "consumed");
      B.mutex_unlock b (V.Global "lock");
      B.ret_void b);
  B.define m "producer" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.io_delay b ~ns:50_000;
      B.mutex_lock b (V.Global "lock");
      let n = B.load b (V.Global "items") in
      B.store b ~value:(B.add b n (V.i64 1)) ~ptr:(V.Global "items");
      (* BUG knob: forgetting to signal loses the wakeup. *)
      if producer_signals then B.cond_signal b (V.Global "nonempty");
      B.mutex_unlock b (V.Global "lock");
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global "lock" ];
      B.call_void b Lir.Intrinsics.cond_init [ V.Global "nonempty" ];
      let c = B.spawn b "consumer" (V.i64 0) in
      let p = B.spawn b "producer" (V.i64 0) in
      B.join b p;
      B.join b c;
      let v = B.load b (V.Global "consumed") in
      B.call_void b Lir.Intrinsics.print_i64 [ v ];
      B.ret_void b);
  Lir.Verify.check_exn m;
  m

let test_condvar_handoff () =
  let m = condvar_module ~producer_signals:true in
  let r = run m in
  Alcotest.(check bool) "completes" true (completed r);
  Alcotest.(check (list int)) "item consumed" [ 1 ] (output r)

let test_condvar_missed_signal_hangs () =
  let m = condvar_module ~producer_signals:false in
  match (run m).Sim.Interp.outcome with
  | Sim.Interp.Stuck -> ()
  | _ -> Alcotest.fail "expected a missed-wakeup hang"

let test_cond_wait_requires_mutex () =
  let m = Lir.Irmod.create "cv" in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  ignore (Lir.Irmod.declare_struct m "Cond" [ T.I64 ]);
  Lir.Irmod.declare_global m "lock" (T.Struct "Mutex");
  Lir.Irmod.declare_global m "cv" (T.Struct "Cond");
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.cond_wait b ~cond:(V.Global "cv") ~mutex:(V.Global "lock");
      B.ret_void b);
  Lir.Verify.check_exn m;
  match failure_of (run m) with
  | Some (Sim.Failure.Lock_misuse { misuse = Sim.Failure.Wait_unlocked; _ }) ->
    ()
  | _ -> Alcotest.fail "expected wait-unlocked misuse"

(* The bug this regression pins: a signalled waiter that blocks on the
   mutex re-acquisition used to be recorded as blocked at the SIGNALLER's
   instruction; a deadlock closing while it re-acquires then blamed the
   wrong call site.  The waiter must be attributed to its own cond_wait.

   Layout: t1 takes l2, then lock/cond_wait(cv, lock) — parking releases
   [lock] but keeps l2.  Main wakes it while holding [lock] (so the
   re-acquisition blocks), then tries l2: a real two-thread cycle closed
   by main, with t1 blocked at its cond_wait call. *)
let test_cond_reacquire_blames_wait_site () =
  let m = Lir.Irmod.create "cv" in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  ignore (Lir.Irmod.declare_struct m "Cond" [ T.I64 ]);
  Lir.Irmod.declare_global m "lock" (T.Struct "Mutex");
  Lir.Irmod.declare_global m "l2" (T.Struct "Mutex");
  Lir.Irmod.declare_global m "cv" (T.Struct "Cond");
  B.define m "t1" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.mutex_lock b (V.Global "l2");
      B.mutex_lock b (V.Global "lock");
      B.cond_wait b ~cond:(V.Global "cv") ~mutex:(V.Global "lock");
      B.mutex_unlock b (V.Global "lock");
      B.mutex_unlock b (V.Global "l2");
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global "lock" ];
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global "l2" ];
      B.call_void b Lir.Intrinsics.cond_init [ V.Global "cv" ];
      let t = B.spawn b "t1" (V.i64 0) in
      B.io_delay b ~ns:200_000;
      B.mutex_lock b (V.Global "lock");
      B.cond_signal b (V.Global "cv");
      B.mutex_lock b (V.Global "l2");
      B.mutex_unlock b (V.Global "l2");
      B.mutex_unlock b (V.Global "lock");
      B.join b t;
      B.ret_void b);
  Lir.Verify.check_exn m;
  (* t1's cond_wait call iid, straight from the built module. *)
  let wait_iid = ref (-1) in
  Lir.Irmod.iter_instrs m (fun f _ i ->
      match i.Lir.Instr.kind with
      | Lir.Instr.Call { callee; _ }
        when String.equal callee Lir.Intrinsics.cond_wait
             && String.equal f.Lir.Func.fname "t1" ->
        wait_iid := i.Lir.Instr.iid
      | _ -> ());
  match failure_of (run m) with
  | Some (Sim.Failure.Deadlock { waiters }) ->
    let t1_entry =
      List.find_opt (fun (tid, _, _) -> tid = 1) waiters
    in
    (match t1_entry with
    | Some (_, iid, _) ->
      Alcotest.(check int) "t1 blamed at its cond_wait" !wait_iid iid
    | None -> Alcotest.fail "t1 missing from deadlock waiters")
  | _ -> Alcotest.fail "expected a deadlock closed during re-acquisition"

let test_condvar_broadcast_wakes_all () =
  let m = Lir.Irmod.create "cv" in
  ignore (Lir.Irmod.declare_struct m "Mutex" [ T.I64 ]);
  ignore (Lir.Irmod.declare_struct m "Cond" [ T.I64 ]);
  Lir.Irmod.declare_global m "lock" (T.Struct "Mutex");
  Lir.Irmod.declare_global m "go" (T.Struct "Cond");
  Lir.Irmod.declare_global m "released" T.I64;
  Lir.Irmod.declare_global m "ready" T.I64;
  B.define m "waiter" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.mutex_lock b (V.Global "lock");
      B.while_ b
        ~cond:(fun () ->
          let g = B.load b (V.Global "ready") in
          B.icmp b Lir.Instr.Eq g (V.i64 0))
        ~body:(fun () ->
          B.cond_wait b ~cond:(V.Global "go") ~mutex:(V.Global "lock"));
      let r = B.load b (V.Global "released") in
      B.store b ~value:(B.add b r (V.i64 1)) ~ptr:(V.Global "released");
      B.mutex_unlock b (V.Global "lock");
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global "lock" ];
      B.call_void b Lir.Intrinsics.cond_init [ V.Global "go" ];
      let ws = List.init 3 (fun i -> B.spawn b "waiter" (V.i64 i)) in
      B.io_delay b ~ns:100_000;
      B.mutex_lock b (V.Global "lock");
      B.store b ~value:(V.i64 1) ~ptr:(V.Global "ready");
      B.cond_broadcast b (V.Global "go");
      B.mutex_unlock b (V.Global "lock");
      List.iter (fun t -> B.join b t) ws;
      let v = B.load b (V.Global "released") in
      B.call_void b Lir.Intrinsics.print_i64 [ v ];
      B.ret_void b);
  Lir.Verify.check_exn m;
  let r = run m in
  Alcotest.(check bool) "completes" true (completed r);
  Alcotest.(check (list int)) "all three released" [ 3 ] (output r)

(* Random lock/unlock traffic against a reference model: owner and FIFO
   queue per address tracked independently. *)
let prop_mutex_model =
  QCheck.Test.make ~name:"mutexes agree with a reference model" ~count:200
    QCheck.(list (triple (int_range 0 3) (int_range 0 2) bool))
    (fun ops ->
      let mx = Sim.Mutexes.create () in
      (* model: addr -> (owner option, waiter queue); thread -> waiting? *)
      let model : (int, int option * int list) Hashtbl.t = Hashtbl.create 4 in
      let waiting : (int, unit) Hashtbl.t = Hashtbl.create 4 in
      let held : (int, int) Hashtbl.t = Hashtbl.create 4 in
      (* tid -> addr held *)
      let get addr =
        Option.value ~default:(None, []) (Hashtbl.find_opt model addr)
      in
      let ok = ref true in
      List.iter
        (fun (tid, addr, is_lock) ->
          if not (Hashtbl.mem waiting tid) then
            if is_lock && not (Hashtbl.mem held tid) then begin
              (* only lock when not already holding anything: keeps the
                 model deadlock-free *)
              match get addr with
              | None, q ->
                if Sim.Mutexes.lock mx ~addr ~tid <> Sim.Mutexes.Acquired then
                  ok := false;
                Hashtbl.replace model addr (Some tid, q);
                Hashtbl.replace held tid addr
              | Some owner, q when owner <> tid ->
                if Sim.Mutexes.lock mx ~addr ~tid <> Sim.Mutexes.Blocked then
                  ok := false;
                Hashtbl.replace model addr (Some owner, q @ [ tid ]);
                Hashtbl.replace waiting tid ()
              | Some _, _ -> ()
            end
            else if (not is_lock) && Hashtbl.find_opt held tid = Some addr then begin
              match get addr with
              | Some owner, q when owner = tid -> (
                Hashtbl.remove held tid;
                match Sim.Mutexes.unlock mx ~addr ~tid, q with
                | Ok None, [] -> Hashtbl.replace model addr (None, [])
                | Ok (Some next), expected :: rest ->
                  if next <> expected then ok := false;
                  Hashtbl.remove waiting next;
                  Hashtbl.replace held next addr;
                  Hashtbl.replace model addr (Some next, rest)
                | _, _ -> ok := false)
              | _ -> ()
            end)
        ops;
      !ok)

let tests =
  [
    ( "sim.semantics",
      [
        Alcotest.test_case "arithmetic" `Quick test_arith;
        Alcotest.test_case "comparisons" `Quick test_icmp;
        Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
        Alcotest.test_case "struct fields" `Quick test_gep_fields_distinct;
        Alcotest.test_case "array indexing" `Quick test_array_indexing;
        Alcotest.test_case "call/return" `Quick test_call_and_return;
        Alcotest.test_case "recursion" `Quick test_recursion;
        Alcotest.test_case "loop sum" `Quick test_loop_sum;
      ] );
    ( "sim.faults",
      [
        Alcotest.test_case "null deref" `Quick test_null_deref;
        Alcotest.test_case "use after free" `Quick test_use_after_free;
        Alcotest.test_case "assert failure" `Quick test_assert_failure;
        Alcotest.test_case "double free" `Quick test_double_free_faults;
        Alcotest.test_case "div by zero" `Quick test_div_by_zero_structured;
        Alcotest.test_case "rem by zero" `Quick test_rem_by_zero_structured;
        Alcotest.test_case "undef read" `Quick test_undef_read_structured;
        Alcotest.test_case "create not function" `Quick
          test_create_not_function_structured;
        Alcotest.test_case "join unknown" `Quick test_join_unknown_structured;
      ] );
    ( "sim.threads",
      [
        Alcotest.test_case "locked counter exact" `Quick test_locked_counter_exact;
        Alcotest.test_case "unlocked counter races" `Quick
          test_unlocked_counter_races;
        Alcotest.test_case "join waits" `Quick test_join_waits;
        Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
        Alcotest.test_case "no false deadlock" `Quick test_no_deadlock_when_disjoint;
        Alcotest.test_case "three-way deadlock" `Quick test_three_way_deadlock;
        Alcotest.test_case "self deadlock" `Quick test_self_deadlock;
        Alcotest.test_case "unlock unheld" `Quick test_unlock_unheld_is_program_error;
        Alcotest.test_case "double unlock" `Quick
          test_double_unlock_is_program_error;
        Alcotest.test_case "unlock by non-owner" `Quick
          test_unlock_by_non_owner_is_program_error;
      ] );
    ( "sim.mutexes",
      [
        Alcotest.test_case "fifo handoff" `Quick test_mutex_fifo;
        Alcotest.test_case "wrong owner" `Quick test_mutex_wrong_owner;
        QCheck_alcotest.to_alcotest prop_mutex_model;
      ] );
    ( "sim.condvars",
      [
        Alcotest.test_case "wait/signal handoff" `Quick test_condvar_handoff;
        Alcotest.test_case "missed signal hangs" `Quick
          test_condvar_missed_signal_hangs;
        Alcotest.test_case "wait requires mutex" `Quick test_cond_wait_requires_mutex;
        Alcotest.test_case "re-acquire blames wait site" `Quick
          test_cond_reacquire_blames_wait_site;
        Alcotest.test_case "broadcast wakes all" `Quick
          test_condvar_broadcast_wakes_all;
      ] );
    ( "sim.runtime",
      [
        Alcotest.test_case "rand deterministic" `Quick test_rand_deterministic;
        Alcotest.test_case "time advances" `Quick test_time_advances;
        Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
        Alcotest.test_case "control events" `Quick test_control_events_fire;
        Alcotest.test_case "instr hook cost" `Quick test_instr_hook_cost_charged;
        Alcotest.test_case "hooks combine" `Quick test_hooks_combine;
      ] );
  ]
