(* Tests for the experiment layer: workload construction, the report
   runners' shapes, and the ablation sweeps. *)

let test_workload_specs_cover_systems () =
  let names = List.map (fun s -> s.Experiments.Workloads.name) Experiments.Workloads.specs in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " has a workload") true
        (List.mem expected names))
    [ "mysql"; "httpd"; "memcached"; "sqlite"; "transmission"; "pbzip2"; "aget" ]

let test_workload_builds_and_completes () =
  let spec = Experiments.Workloads.find "httpd" in
  let m, monitored = Experiments.Workloads.build spec ~threads:3 in
  Alcotest.(check int) "verifies" 0 (List.length (Lir.Verify.check m));
  let r = Sim.Interp.run m ~entry:"main" in
  Alcotest.(check bool) "completes" true (r.Sim.Interp.outcome = Sim.Interp.Completed);
  Alcotest.(check int) "spawns the workers" 4 r.Sim.Interp.threads_spawned;
  (* The monitored predicate marks real accesses of the worker. *)
  let marked = ref 0 in
  Lir.Irmod.iter_instrs m (fun _ _ i ->
      if monitored i.Lir.Instr.iid then incr marked);
  Alcotest.(check bool) "some accesses monitored" true (!marked > 3)

let test_overhead_is_monitoring_cost () =
  let spec = Experiments.Workloads.find "aget" in
  let none =
    Experiments.Workloads.run_overhead spec ~threads:2 ~seed:4
      ~tracer_config:None ~gist_costs:None
  in
  Alcotest.(check (float 1e-9)) "no monitor, no overhead" 0.0 none

let test_hypothesis_rows_have_expected_arity () =
  let bug = Corpus.Registry.find_exn "mysql-7" in
  let m = Experiments.Hypothesis.measure ~samples:2 bug in
  Alcotest.(check int) "atomicity has two delta pairs" 2
    (List.length m.Experiments.Hypothesis.deltas_us);
  let bug = Corpus.Registry.find_exn "sqlite-1" in
  let m = Experiments.Hypothesis.measure ~samples:2 bug in
  Alcotest.(check int) "deadlock has one delta pair" 1
    (List.length m.Experiments.Hypothesis.deltas_us)

let test_hypothesis_summary_math () =
  let mk avg mn =
    {
      Experiments.Hypothesis.r_bug = Corpus.Registry.find_exn "pbzip2-1";
      avg_us = [ avg ];
      std_us = [ 1.0 ];
      min_us = mn;
    }
  in
  let lo, hi, global_min =
    Experiments.Hypothesis.summary [ [ mk 100.0 80.0 ]; [ mk 300.0 91.0 ] ]
  in
  Alcotest.(check (float 1e-9)) "lowest avg" 100.0 lo;
  Alcotest.(check (float 1e-9)) "highest avg" 300.0 hi;
  Alcotest.(check (float 1e-9)) "global min" 80.0 global_min

let test_eval_runs_cached () =
  let bug = Corpus.Registry.find_exn "pbzip2-1" in
  let a = Experiments.Eval_runs.get bug in
  let b = Experiments.Eval_runs.get bug in
  Alcotest.(check bool) "memoized" true (a == b);
  let ok, ao, _ = Experiments.Eval_runs.accuracy_of a in
  Alcotest.(check bool) "cached entry is correct" true ok;
  Alcotest.(check (float 1e-6)) "cached entry A_O" 100.0 ao

let test_stage_shares_sum () =
  let entry = Experiments.Eval_runs.get (Corpus.Registry.find_exn "pbzip2-1") in
  let s = Experiments.Stages.of_entry entry in
  Alcotest.(check int) "five shares" 5 (List.length s.Experiments.Stages.shares);
  let total = List.fold_left ( +. ) 0.0 s.Experiments.Stages.shares in
  Alcotest.(check bool) "shares sum to ~100%" true
    (total > 99.0 && total < 101.0);
  Alcotest.(check bool) "trace processing dominates" true
    (List.hd s.Experiments.Stages.shares > 50.0)

let test_analysis_time_row () =
  let entry = Experiments.Eval_runs.get (Corpus.Registry.find_exn "pbzip2-1") in
  let row = Experiments.Analysis_time.of_entry entry in
  Alcotest.(check bool) "hybrid faster than static" true
    (row.Experiments.Analysis_time.speedup > 1.0);
  Alcotest.(check bool) "scope reduction > 1" true
    (row.Experiments.Analysis_time.scope_reduction > 1.0)

let test_ablation_timing_degrades () =
  let rows = Experiments.Ablations.timing_sweep () in
  Alcotest.(check int) "five modes" 5 (List.length rows);
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  Alcotest.(check bool) "default mode diagnoses correctly" true
    first.Experiments.Ablations.correct;
  Alcotest.(check bool) "no timing cannot order" false
    last.Experiments.Ablations.correct;
  Alcotest.(check bool) "candidates survive even unordered" true
    (last.Experiments.Ablations.candidates > 0)

let test_ablation_ring_cliff () =
  let rows = Experiments.Ablations.ring_sweep () in
  let biggest = List.hd rows in
  let smallest = List.nth rows (List.length rows - 1) in
  Alcotest.(check bool) "full ring diagnoses" true
    biggest.Experiments.Ablations.r_correct;
  Alcotest.(check bool) "tiny ring loses the window" false
    smallest.Experiments.Ablations.r_correct;
  Alcotest.(check bool) "decoded events shrink" true
    (smallest.Experiments.Ablations.decoded_events
    < biggest.Experiments.Ablations.decoded_events)

let test_ablation_success_budget () =
  let rows =
    match Experiments.Ablations.success_budget_sweep () with
    | Ok rows -> rows
    | Error msg -> Alcotest.failf "sweep did not reproduce: %s" msg
  in
  let zero = List.hd rows in
  let full = List.nth rows (List.length rows - 1) in
  Alcotest.(check bool) "no successes, no separation" true
    (zero.Experiments.Ablations.margin <= full.Experiments.Ablations.margin);
  Alcotest.(check bool) "full budget separates and is correct" true
    (full.Experiments.Ablations.b_correct
    && full.Experiments.Ablations.margin > 0.5)

(* Reproduction failures must surface which bug and which seed scan
   failed, not just the collect loop's bare counts.  [max_tries:0] forces
   the failure instantly without burning reproduction time. *)
let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_sweep_error_keeps_context () =
  match Experiments.Ablations.success_budget_sweep ~bug_id:"pbzip2-1"
          ~max_tries:0 ()
  with
  | Ok _ -> Alcotest.fail "a 0-try sweep cannot reproduce anything"
  | Error msg ->
    Alcotest.(check bool) "names the bug" true (contains msg "pbzip2-1");
    Alcotest.(check bool) "names the system" true (contains msg "pbzip2");
    Alcotest.(check bool) "names the seed scan" true (contains msg "seeds from 1")

let test_eval_runs_error_keeps_context () =
  let bug = Corpus.Registry.find_exn "derby-1" in
  match Experiments.Eval_runs.get_result ~max_tries:0 bug with
  | Ok _ -> Alcotest.fail "a 0-try collection cannot reproduce anything"
  | Error msg ->
    Alcotest.(check bool) "names the bug" true (contains msg "derby-1");
    Alcotest.(check bool) "names the system" true (contains msg "derby");
    Alcotest.(check bool) "names the kind" true (contains msg "deadlock");
    (* The failure must not poison the memo table: a real collection
       afterwards succeeds and is cached. *)
    (match Experiments.Eval_runs.get_result bug with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "post-error collection failed: %s" msg)

let test_latency_chromium () =
  Alcotest.(check (float 1e-6)) "factor math" 2052.0
    (Experiments.Latency.chromium_scenario ~avg_recurrences:3.0 ~tracked_bugs:684)

let tests =
  [
    ( "experiments.workloads",
      [
        Alcotest.test_case "specs cover the systems" `Quick
          test_workload_specs_cover_systems;
        Alcotest.test_case "builds and completes" `Slow
          test_workload_builds_and_completes;
        Alcotest.test_case "no monitor, no overhead" `Slow
          test_overhead_is_monitoring_cost;
      ] );
    ( "experiments.runners",
      [
        Alcotest.test_case "hypothesis arity" `Slow
          test_hypothesis_rows_have_expected_arity;
        Alcotest.test_case "hypothesis summary" `Quick test_hypothesis_summary_math;
        Alcotest.test_case "eval runs cached" `Slow test_eval_runs_cached;
        Alcotest.test_case "stage shares" `Slow test_stage_shares_sum;
        Alcotest.test_case "analysis time row" `Slow test_analysis_time_row;
        Alcotest.test_case "latency math" `Quick test_latency_chromium;
      ] );
    ( "experiments.ablations",
      [
        Alcotest.test_case "timing degrades gracefully" `Slow
          test_ablation_timing_degrades;
        Alcotest.test_case "ring-buffer cliff" `Slow test_ablation_ring_cliff;
        Alcotest.test_case "success budget" `Slow test_ablation_success_budget;
        Alcotest.test_case "sweep error keeps context" `Quick
          test_sweep_error_keeps_context;
        Alcotest.test_case "eval-runs error keeps context" `Slow
          test_eval_runs_error_keeps_context;
      ] );
  ]
