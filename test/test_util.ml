(* Unit and property tests for the utility layer: PRNG, ring buffer,
   varint codec, statistics, table renderer. *)

module Prng = Snorlax_util.Prng
module Ringbuf = Snorlax_util.Ringbuf
module Varint = Snorlax_util.Varint
module Stats = Snorlax_util.Stats
module Tablefmt = Snorlax_util.Tablefmt

let check_float = Alcotest.(check (float 1e-9))

(* --- prng --------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false
    (Prng.next64 a = Prng.next64 b)

let test_prng_copy_independent () =
  let a = Prng.create ~seed:7 in
  let b = Prng.copy a in
  ignore (Prng.next64 a);
  ignore (Prng.next64 a);
  let third_of_a = Prng.next64 a in
  ignore (Prng.next64 b);
  ignore (Prng.next64 b);
  Alcotest.(check int64) "copy replays" third_of_a (Prng.next64 b)

let test_prng_split () =
  let a = Prng.create ~seed:7 in
  let b = Prng.split a in
  Alcotest.(check bool) "split stream differs" false
    (Prng.next64 a = Prng.next64 b)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int stays within [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let t = Prng.create ~seed in
      let v = Prng.int t ~bound in
      v >= 0 && v < bound)

let prop_in_range =
  QCheck.Test.make ~name:"Prng.in_range inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let hi = lo + span in
      let t = Prng.create ~seed in
      let v = Prng.in_range t ~lo ~hi in
      v >= lo && v <= hi)

let prop_float_in_bounds =
  QCheck.Test.make ~name:"Prng.float stays within [0, bound)" ~count:500
    QCheck.(pair small_int (float_range 0.001 1e6))
    (fun (seed, bound) ->
      let t = Prng.create ~seed in
      let v = Prng.float t ~bound in
      v >= 0.0 && v < bound)

let test_prng_chance_extremes () =
  let t = Prng.create ~seed:3 in
  Alcotest.(check bool) "p=0 never" false (Prng.chance t ~p:0.0);
  Alcotest.(check bool) "p=1 always" true (Prng.chance t ~p:1.0)

let test_prng_uniformity () =
  (* Rough chi-square-free sanity: all buckets populated. *)
  let t = Prng.create ~seed:11 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Prng.int t ~bound:10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i n ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform" i)
        true
        (n > 800 && n < 1200))
    buckets

let test_prng_shuffle_permutes () =
  let t = Prng.create ~seed:5 in
  let arr = Array.init 20 (fun i -> i) in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 20 (fun i -> i)) sorted

let test_prng_pick_member () =
  let t = Prng.create ~seed:5 in
  let arr = [| 2; 4; 8 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "picked element" true (Array.mem (Prng.pick t arr) arr)
  done

(* --- ringbuf ------------------------------------------------------------ *)

let test_ringbuf_basic () =
  let rb = Ringbuf.create ~capacity:8 in
  Ringbuf.write_bytes rb (Bytes.of_string "abc");
  Alcotest.(check int) "length" 3 (Ringbuf.length rb);
  Alcotest.(check string) "snapshot" "abc" (Bytes.to_string (Ringbuf.snapshot rb));
  Alcotest.(check bool) "not wrapped" false (Ringbuf.wrapped rb)

let test_ringbuf_wrap () =
  let rb = Ringbuf.create ~capacity:4 in
  Ringbuf.write_bytes rb (Bytes.of_string "abcdefg");
  Alcotest.(check int) "length capped" 4 (Ringbuf.length rb);
  Alcotest.(check string) "keeps newest" "defg"
    (Bytes.to_string (Ringbuf.snapshot rb));
  Alcotest.(check bool) "wrapped" true (Ringbuf.wrapped rb);
  Alcotest.(check int) "total written" 7 (Ringbuf.total_written rb)

let test_ringbuf_clear () =
  let rb = Ringbuf.create ~capacity:4 in
  Ringbuf.write_bytes rb (Bytes.of_string "xyz");
  Ringbuf.clear rb;
  Alcotest.(check int) "empty after clear" 0 (Ringbuf.length rb);
  Alcotest.(check int) "counter reset" 0 (Ringbuf.total_written rb)

let prop_ringbuf_suffix =
  QCheck.Test.make
    ~name:"Ringbuf.snapshot equals the suffix of everything written"
    ~count:200
    QCheck.(pair (int_range 1 64) (string_of_size Gen.(int_range 0 300)))
    (fun (cap, data) ->
      let rb = Ringbuf.create ~capacity:cap in
      Ringbuf.write_bytes rb (Bytes.of_string data);
      let keep = min cap (String.length data) in
      let expected = String.sub data (String.length data - keep) keep in
      String.equal expected (Bytes.to_string (Ringbuf.snapshot rb)))

(* --- varint ------------------------------------------------------------- *)

(* Generators that always exercise the boundary values (7-bit group edges
   and the int extremes) alongside uniform draws. *)
let unsigned_boundaries = [ 0; 1; 127; 128; 16383; 16384; max_int - 1; max_int ]

let signed_boundaries =
  [ 0; 1; -1; 63; 64; -64; -65; max_int; min_int + 1; min_int ]

let gen_unsigned_with_boundaries =
  QCheck.(
    oneof [ oneofl unsigned_boundaries; int_range 0 max_int ])

let gen_signed_with_boundaries =
  QCheck.(oneof [ oneofl signed_boundaries; int ])

let unsigned_roundtrips v =
  let buf = Buffer.create 10 in
  Varint.write_unsigned buf v;
  let v', next = Varint.read_unsigned (Buffer.to_bytes buf) ~pos:0 in
  v = v' && next = Buffer.length buf

let signed_roundtrips v =
  let buf = Buffer.create 10 in
  Varint.write_signed buf v;
  let v', next = Varint.read_signed (Buffer.to_bytes buf) ~pos:0 in
  v = v' && next = Buffer.length buf

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"Varint unsigned round-trip" ~count:1000
    gen_unsigned_with_boundaries unsigned_roundtrips

let prop_varint_signed_roundtrip =
  QCheck.Test.make ~name:"Varint signed round-trip" ~count:1000
    gen_signed_with_boundaries signed_roundtrips

let test_varint_boundary_values () =
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "unsigned %d round-trips" v)
        true (unsigned_roundtrips v))
    unsigned_boundaries;
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "signed %d round-trips" v)
        true (signed_roundtrips v))
    signed_boundaries

let encoded_size_agrees v =
  let buf = Buffer.create 10 in
  Varint.write_unsigned buf v;
  Buffer.length buf = Varint.encoded_size v

let prop_varint_size =
  QCheck.Test.make ~name:"Varint.encoded_size matches encoding" ~count:500
    gen_unsigned_with_boundaries encoded_size_agrees

let test_varint_size_boundaries () =
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "encoded_size %d agrees" v)
        true (encoded_size_agrees v))
    unsigned_boundaries

let prop_varint_try_read_matches =
  QCheck.Test.make
    ~name:"Varint.try_read_unsigned agrees with read_unsigned" ~count:500
    gen_unsigned_with_boundaries
    (fun v ->
      let buf = Buffer.create 10 in
      Varint.write_unsigned buf v;
      let b = Buffer.to_bytes buf in
      Varint.try_read_unsigned b ~pos:0 = Some (Varint.read_unsigned b ~pos:0))

let test_varint_try_read_truncated () =
  let buf = Buffer.create 4 in
  Varint.write_unsigned buf 300;
  let b = Bytes.sub (Buffer.to_bytes buf) 0 1 in
  Alcotest.(check bool) "truncated is None" true
    (Varint.try_read_unsigned b ~pos:0 = None);
  Alcotest.(check bool) "signed truncated is None" true
    (Varint.try_read_signed b ~pos:0 = None);
  Alcotest.(check bool) "negative pos is None" true
    (Varint.try_read_unsigned b ~pos:(-1) = None);
  Alcotest.(check bool) "pos past end is None" true
    (Varint.try_read_unsigned b ~pos:99 = None)

let test_varint_negative_rejected () =
  let buf = Buffer.create 4 in
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Varint.write_unsigned: negative") (fun () ->
      Varint.write_unsigned buf (-1))

let test_varint_truncated () =
  let buf = Buffer.create 4 in
  Varint.write_unsigned buf 300;
  let b = Bytes.sub (Buffer.to_bytes buf) 0 1 in
  Alcotest.check_raises "truncated input"
    (Invalid_argument "Varint.read_unsigned: truncated") (fun () ->
      ignore (Varint.read_unsigned b ~pos:0))

(* --- stats -------------------------------------------------------------- *)

let test_stats_mean_stddev () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "empty mean" 0.0 (Stats.mean []);
  check_float "stddev of constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check_float "population stddev" (sqrt 2.0)
    (Stats.stddev [ 1.0; 2.0; 3.0; 4.0; 5.0 ])

let test_stats_geomean () =
  check_float "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  check_float "empty geomean" 0.0 (Stats.geomean [])

let test_stats_geomean_nonpositive () =
  (* A zero-duration sample must not crash the process: non-positive
     inputs are skipped and the geomean is taken over the positive rest. *)
  check_float "zero sample skipped" 4.0 (Stats.geomean [ 0.0; 2.0; 8.0 ]);
  check_float "negative sample skipped" 4.0 (Stats.geomean [ -3.0; 2.0; 8.0 ]);
  check_float "all non-positive" 0.0 (Stats.geomean [ 0.0; -1.0 ])

let prop_geomean_total =
  QCheck.Test.make
    ~name:"geomean is total and equals the geomean of the positive subset"
    ~count:500
    QCheck.(list (float_range (-1e6) 1e6))
    (fun xs ->
      let v = Stats.geomean xs in
      let positives = List.filter (fun x -> x > 0.0) xs in
      match positives with
      | [] -> v = 0.0
      | _ ->
        let expected =
          exp (Stats.mean (List.map log positives))
        in
        Float.abs (v -. expected) <= 1e-9 *. Float.max 1.0 (Float.abs expected))

let test_stats_min_max () =
  let lo, hi = Stats.min_max [ 3.0; -1.0; 7.0 ] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.0 hi

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "median" 3.0 (Stats.percentile xs ~p:50.0);
  check_float "p100" 5.0 (Stats.percentile xs ~p:100.0);
  check_float "p0 is the minimum" 1.0 (Stats.percentile xs ~p:0.0);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p outside [0,100]") (fun () ->
      ignore (Stats.percentile xs ~p:100.5))

let nonempty_floats =
  QCheck.(list_of_size Gen.(int_range 1 40) (float_range (-1e6) 1e6))

let prop_percentile_p0_min =
  QCheck.Test.make ~name:"percentile p=0 is the minimum" ~count:300
    nonempty_floats
    (fun xs -> Stats.percentile xs ~p:0.0 = fst (Stats.min_max xs))

let prop_percentile_p100_max =
  QCheck.Test.make ~name:"percentile p=100 is the maximum" ~count:300
    nonempty_floats
    (fun xs -> Stats.percentile xs ~p:100.0 = snd (Stats.min_max xs))

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:300
    QCheck.(triple nonempty_floats (float_range 0.0 100.0) (float_range 0.0 100.0))
    (fun (xs, p1, p2) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs ~p:lo <= Stats.percentile xs ~p:hi)

let test_stats_f1 () =
  check_float "perfect" 1.0 (Stats.f1 ~precision:1.0 ~recall:1.0);
  check_float "zero" 0.0 (Stats.f1 ~precision:0.0 ~recall:0.0);
  check_float "harmonic" (2.0 *. 0.5 *. 1.0 /. 1.5)
    (Stats.f1 ~precision:0.5 ~recall:1.0)

let test_stats_precision_recall () =
  let p, r = Stats.precision_recall ~true_pos:8 ~false_pos:2 ~false_neg:0 in
  check_float "precision" 0.8 p;
  check_float "recall" 1.0 r;
  let p0, r0 = Stats.precision_recall ~true_pos:0 ~false_pos:0 ~false_neg:0 in
  check_float "degenerate precision" 0.0 p0;
  check_float "degenerate recall" 0.0 r0

(* For any confusion counts — including all-zero and single-sample
   populations — precision, recall and F1 stay finite and inside [0,1],
   and F1 collapses to 0 exactly when there are no true positives. *)
let prop_confusion_counts_bounded =
  QCheck.Test.make ~name:"precision/recall/f1 bounded on any counts"
    ~count:500
    QCheck.(triple (int_range 0 50) (int_range 0 50) (int_range 0 50))
    (fun (tp, fp, fn) ->
      let p, r = Stats.precision_recall ~true_pos:tp ~false_pos:fp ~false_neg:fn in
      let f = Stats.f1 ~precision:p ~recall:r in
      let in_unit x = (not (Float.is_nan x)) && x >= 0.0 && x <= 1.0 in
      in_unit p && in_unit r && in_unit f
      && (tp > 0 || f = 0.0)
      && (not (tp > 0 && fp = 0 && fn = 0) || f = 1.0))

(* stddev is total: 0 on empty and single-sample populations, 0 on
   constant lists, and never NaN. *)
let prop_stddev_total =
  QCheck.Test.make ~name:"stddev total and non-negative" ~count:500
    QCheck.(list (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Stats.stddev xs in
      (not (Float.is_nan s))
      && s >= 0.0
      && (List.length xs >= 2 || s = 0.0))

let prop_stddev_constant =
  QCheck.Test.make ~name:"stddev of a constant population is 0" ~count:200
    QCheck.(pair (float_range (-1e6) 1e6) (int_range 1 20))
    (fun (x, n) -> Stats.stddev (List.init n (fun _ -> x)) = 0.0)

let test_kendall () =
  Alcotest.(check int) "identical" 0
    (Stats.kendall_tau_distance [ 1; 2; 3 ] [ 1; 2; 3 ]);
  Alcotest.(check int) "one swap" 1
    (Stats.kendall_tau_distance [ 1; 2; 3 ] [ 1; 3; 2 ]);
  Alcotest.(check int) "full reversal" 3
    (Stats.kendall_tau_distance [ 1; 2; 3 ] [ 3; 2; 1 ])

let test_ordering_accuracy () =
  check_float "identical" 100.0 (Stats.ordering_accuracy [ 1; 2; 3 ] [ 1; 2; 3 ]);
  check_float "paper example" (100.0 *. (1.0 -. (1.0 /. 3.0)))
    (Stats.ordering_accuracy [ 1; 2; 3 ] [ 1; 3; 2 ]);
  check_float "no common pairs" 100.0 (Stats.ordering_accuracy [ 1 ] [ 2 ])

let prop_ordering_accuracy_bounds =
  QCheck.Test.make ~name:"ordering accuracy within [0,100]" ~count:300
    QCheck.(pair (list small_int) (list small_int))
    (fun (a, b) ->
      let v = Stats.ordering_accuracy a b in
      v >= 0.0 && v <= 100.0)

(* --- tablefmt ----------------------------------------------------------- *)

let test_tablefmt_renders () =
  let t = Tablefmt.create ~headers:[ "a"; "bb" ] in
  Tablefmt.add_row t [ "1"; "2" ];
  Tablefmt.add_separator t;
  Tablefmt.add_row t [ "333"; "4" ];
  let out = Tablefmt.render t in
  Alcotest.(check bool) "contains header" true
    (String.length out > 0
    && String.length (List.hd (String.split_on_char '\n' out)) > 0);
  Alcotest.(check bool) "right-aligns" true
    (String.length out > 10)

let test_tablefmt_arity_checked () =
  let t = Tablefmt.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "row arity"
    (Invalid_argument "Tablefmt.add_row: arity mismatch") (fun () ->
      Tablefmt.add_row t [ "only-one" ])

let test_tablefmt_formats () =
  Alcotest.(check string) "us" "154.3" (Tablefmt.fmt_us 154.31);
  Alcotest.(check string) "pct" "0.97" (Tablefmt.fmt_pct 0.9701);
  Alcotest.(check string) "factor" "4.6x" (Tablefmt.fmt_x 4.6)

(* --- dynbuf ------------------------------------------------------------- *)

module Dynbuf = Snorlax_util.Dynbuf
module Pool = Snorlax_util.Pool

let test_dynbuf_basic () =
  let b = Dynbuf.create () in
  Alcotest.(check int) "empty" 0 (Dynbuf.length b);
  Alcotest.(check (array int)) "empty to_array" [||] (Dynbuf.to_array b);
  for i = 0 to 99 do
    Dynbuf.push b (i * i)
  done;
  Alcotest.(check int) "length" 100 (Dynbuf.length b);
  Alcotest.(check int) "get" (42 * 42) (Dynbuf.get b 42);
  Alcotest.(check (array int)) "to_array in push order"
    (Array.init 100 (fun i -> i * i))
    (Dynbuf.to_array b);
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Dynbuf.get")
    (fun () -> ignore (Dynbuf.get b 100));
  Alcotest.check_raises "get negative" (Invalid_argument "Dynbuf.get")
    (fun () -> ignore (Dynbuf.get b (-1)))

let test_dynbuf_iter () =
  let b = Dynbuf.create () in
  List.iter (Dynbuf.push b) [ 3; 1; 4; 1; 5 ];
  let seen = ref [] in
  Dynbuf.iter (fun x -> seen := x :: !seen) b;
  Alcotest.(check (list int)) "iter order" [ 3; 1; 4; 1; 5 ] (List.rev !seen);
  let indexed = ref [] in
  Dynbuf.iteri (fun i x -> indexed := (i, x) :: !indexed) b;
  Alcotest.(check (list (pair int int)))
    "iteri order"
    [ (0, 3); (1, 1); (2, 4); (3, 1); (4, 5) ]
    (List.rev !indexed)

let test_dynbuf_clear_reuses () =
  let b = Dynbuf.create () in
  for i = 0 to 40 do
    Dynbuf.push b i
  done;
  Dynbuf.clear b;
  Alcotest.(check int) "empty after clear" 0 (Dynbuf.length b);
  Dynbuf.push b 7;
  Alcotest.(check (array int)) "refilled" [| 7 |] (Dynbuf.to_array b)

let prop_dynbuf_matches_list =
  QCheck.Test.make ~name:"Dynbuf.to_array equals the pushed list" ~count:300
    QCheck.(list int)
    (fun xs ->
      let b = Dynbuf.create () in
      List.iter (Dynbuf.push b) xs;
      Dynbuf.to_array b = Array.of_list xs
      && Dynbuf.length b = List.length xs)

(* --- pool --------------------------------------------------------------- *)

(* The determinism contract: map output must be identical to a sequential
   run for every pool size, including sizes above the item count. *)
let test_pool_map_matches_sequential () =
  let input = Array.init 57 (fun i -> i) in
  let f _ x = (x * 2) + 1 in
  let expected = Array.mapi f input in
  List.iter
    (fun jobs ->
      let p = Pool.create ~jobs in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expected (Pool.map p f input);
      Pool.shutdown p)
    [ 1; 2; 4; 64 ]

let test_pool_run_covers_all_indices () =
  let p = Pool.create ~jobs:4 in
  let hits = Array.make 100 0 in
  (* Slots are disjoint per index, so unsynchronized writes are safe. *)
  Pool.run p 100 (fun i -> hits.(i) <- hits.(i) + 1);
  Pool.shutdown p;
  Alcotest.(check (array int)) "each index exactly once" (Array.make 100 1) hits

let test_pool_empty_batch () =
  let p = Pool.create ~jobs:2 in
  Pool.run p 0 (fun _ -> Alcotest.fail "batch of 0 must not call f");
  Alcotest.(check (array int)) "empty map" [||] (Pool.map p (fun _ x -> x) [||]);
  Pool.shutdown p

let test_pool_propagates_exception () =
  (* Fail fast: the first exception cancels the unclaimed rest of the
     batch.  Inline (jobs=1) the claim order is the index order, so the
     cut-off is exact: nothing after the poisoned item runs. *)
  let p = Pool.create ~jobs:1 in
  let completed = Atomic.make 0 in
  let raised =
    match
      Pool.run p 10 (fun i ->
          if i = 3 then failwith "boom" else Atomic.incr completed)
    with
    | () -> false
    | exception Failure msg -> msg = "boom"
  in
  Pool.shutdown p;
  Alcotest.(check bool) "re-raises" true raised;
  Alcotest.(check int) "stops at the poisoned item" 3 (Atomic.get completed)

let test_pool_cancels_rest_on_failure () =
  (* One poisoned trace must fail the batch fast, not after the pool has
     chewed through everything behind it.  Item 0 fails immediately;
     items already claimed by other domains may still finish, but the
     bulk of the batch must be cancelled, never run. *)
  let n = 10_000 in
  let p = Pool.create ~jobs:3 in
  let completed = Atomic.make 0 in
  let raised =
    match
      Pool.run p n (fun i ->
          if i = 0 then failwith "poison" else Atomic.incr completed)
    with
    | () -> false
    | exception Failure msg -> msg = "poison"
  in
  Pool.shutdown p;
  Alcotest.(check bool) "re-raises" true raised;
  Alcotest.(check bool)
    "most of the batch never ran" true
    (Atomic.get completed < n / 2)

let test_pool_get_jobs1_is_sequential () =
  (* Regression: [get ~jobs:1] used to reuse any existing bigger shared
     pool, silently running "sequential" decode paths (including the
     benchmark's sequential baseline) in parallel.  A jobs:1 request must
     run every item on the submitting domain. *)
  let (_ : Pool.t) = Pool.get ~jobs:4 in
  let p = Pool.get ~jobs:1 in
  Alcotest.(check int) "jobs honored" 1 (Pool.jobs p);
  let self = Domain.self () in
  let elsewhere = Atomic.make 0 in
  Pool.run p 32 (fun _ ->
      if not (Domain.self () = self) then Atomic.incr elsewhere);
  Alcotest.(check int) "all items on the submitting domain" 0
    (Atomic.get elsewhere)

let test_pool_submit_overlaps_merge () =
  let p = Pool.create ~jobs:2 in
  let results = Array.make 16 0 in
  let h = Pool.submit p 16 (fun i -> results.(i) <- (i * i) + 1) in
  (* Consume in input order while the batch is in flight — the shape of
     the overlapped decode merge. *)
  for i = 0 to 15 do
    Pool.wait_item p h i;
    Alcotest.(check int) (Printf.sprintf "item %d" i) ((i * i) + 1) results.(i)
  done;
  Pool.await p h;
  (* The pool is free again for the next batch. *)
  let h2 = Pool.submit p 4 (fun i -> results.(i) <- -i) in
  Pool.await p h2;
  Pool.shutdown p;
  Alcotest.(check int) "second batch ran" (-3) results.(3)

let test_pool_balanced_chunks () =
  let weights = [| 50; 1; 90; 3; 3; 70; 2; 2 |] in
  let chunks = Pool.balanced_chunks ~weights ~chunks:3 in
  Alcotest.(check bool)
    "at most the requested chunks" true
    (Array.length chunks <= 3);
  let seen = Array.make (Array.length weights) 0 in
  Array.iter (Array.iter (fun i -> seen.(i) <- seen.(i) + 1)) chunks;
  Alcotest.(check (array int))
    "each index in exactly one chunk"
    (Array.make (Array.length weights) 1)
    seen;
  (* Greedy LPT keeps the heaviest chunk well under the all-in-one total:
     with these weights no chunk should exceed half the grand total. *)
  let total = Array.fold_left ( + ) 0 weights in
  Array.iter
    (fun c ->
      let w = Array.fold_left (fun acc i -> acc + weights.(i)) 0 c in
      Alcotest.(check bool) "no chunk dominates" true (w * 2 <= total + 90))
    chunks

let prop_pool_balanced_chunks_partition =
  QCheck.Test.make ~name:"balanced_chunks is a deterministic exact partition"
    ~count:200
    QCheck.(pair (int_range 1 6) (list small_nat))
    (fun (chunks, ws) ->
      let weights = Array.of_list ws in
      let a = Pool.balanced_chunks ~weights ~chunks in
      let b = Pool.balanced_chunks ~weights ~chunks in
      let seen = Array.make (Array.length weights) 0 in
      Array.iter (Array.iter (fun i -> seen.(i) <- seen.(i) + 1)) a;
      a = b
      && Array.length a <= chunks
      && Array.for_all (fun c -> Array.length c > 0) a
      && Array.for_all (( = ) 1) seen)

let test_pool_reusable_after_batch () =
  let p = Pool.create ~jobs:3 in
  let a = Pool.map p (fun _ x -> x + 1) (Array.init 20 (fun i -> i)) in
  let b = Pool.map p (fun _ x -> x * 3) (Array.init 31 (fun i -> i)) in
  Pool.shutdown p;
  Alcotest.(check (array int)) "first batch" (Array.init 20 (fun i -> i + 1)) a;
  Alcotest.(check (array int)) "second batch" (Array.init 31 (fun i -> i * 3)) b

let test_pool_shutdown_idempotent () =
  let p = Pool.create ~jobs:2 in
  Pool.shutdown p;
  Pool.shutdown p;
  (* A stopped pool still runs batches, inline. *)
  Alcotest.(check (array int))
    "inline after shutdown"
    [| 0; 2; 4 |]
    (Pool.map p (fun _ x -> 2 * x) [| 0; 1; 2 |])

let test_pool_default_jobs_clamped () =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs 0;
  Alcotest.(check int) "clamped to 1" 1 (Pool.default_jobs ());
  Pool.set_default_jobs 6;
  Alcotest.(check int) "set" 6 (Pool.default_jobs ());
  Pool.set_default_jobs saved

let test_pool_with_pool_scoped () =
  (* The scoped helper: returns the body's value, and its pool is torn
     down (runs inline afterwards) whether the body returns or raises. *)
  let escaped = ref None in
  let v =
    Pool.with_pool ~jobs:3 (fun p ->
        escaped := Some p;
        Array.fold_left ( + ) 0 (Pool.map p (fun _ x -> x) (Array.init 10 Fun.id)))
  in
  Alcotest.(check int) "returns the body's value" 45 v;
  (match !escaped with
  | Some p ->
    (* Shut down means inline: batches still run, on this domain. *)
    Alcotest.(check (array int))
      "torn down (inline) after exit"
      [| 0; 2; 4 |]
      (Pool.map p (fun _ x -> 2 * x) [| 0; 1; 2 |])
  | None -> Alcotest.fail "body never ran");
  let raised =
    match Pool.with_pool ~jobs:2 (fun _ -> failwith "scoped") with
    | (_ : int) -> false
    | exception Failure msg -> msg = "scoped"
  in
  Alcotest.(check bool) "exception propagates" true raised

let test_pool_with_pool_avoids_shared_slot () =
  (* Regression for the sweep-isolation audit: a scoped pool must never
     become (or resize) the process-wide shared pool, and [get ~jobs:1]
     must hand back the dedicated inline pool without assigning the
     shared slot — the inline pool is eager and reused, not recreated. *)
  let shared_before = Pool.get ~jobs:3 in
  Pool.with_pool ~jobs:5 (fun p ->
      Alcotest.(check bool) "scoped pool is private" true
        (p != shared_before));
  Alcotest.(check bool)
    "shared slot untouched by with_pool" true
    (Pool.get ~jobs:2 == shared_before);
  let i1 = Pool.get ~jobs:1 in
  let i2 = Pool.get ~jobs:1 in
  Alcotest.(check bool) "inline pool is the same eager one" true (i1 == i2);
  Alcotest.(check int) "inline pool is sequential" 1 (Pool.jobs i1);
  Alcotest.(check bool)
    "jobs:1 did not leak into the shared slot" true
    (Pool.get ~jobs:2 == shared_before)

let test_pool_with_default_jobs_scoped () =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs 4;
  let inner =
    Pool.with_default_jobs 2 (fun () ->
        let a = Pool.default_jobs () in
        let b = Pool.with_default_jobs 1 (fun () -> Pool.default_jobs ()) in
        let c = Pool.default_jobs () in
        (a, b, c))
  in
  Alcotest.(check (triple int int int)) "nested scoping" (2, 1, 2) inner;
  Alcotest.(check int) "restored" 4 (Pool.default_jobs ());
  (match Pool.with_default_jobs 1 (fun () -> failwith "boom") with
  | () -> Alcotest.fail "expected raise"
  | exception Failure _ -> ());
  Alcotest.(check int) "restored after raise" 4 (Pool.default_jobs ());
  (* The override is domain-local: a domain spawned inside the scope
     sees the process default, not the caller's pin. *)
  let seen_elsewhere =
    Pool.with_default_jobs 2 (fun () ->
        Domain.join (Domain.spawn (fun () -> Pool.default_jobs ())))
  in
  Alcotest.(check int) "override does not cross domains" 4 seen_elsewhere;
  Pool.set_default_jobs saved

let prop_pool_map_deterministic =
  QCheck.Test.make ~name:"Pool.map equals Array.mapi for any size" ~count:25
    QCheck.(pair (int_range 1 5) (list small_int))
    (fun (jobs, xs) ->
      let input = Array.of_list xs in
      let f i x = (i * 31) + x in
      let p = Pool.create ~jobs in
      let out = Pool.map p f input in
      Pool.shutdown p;
      out = Array.mapi f input)

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    ( "util.prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
        Alcotest.test_case "split" `Quick test_prng_split;
        Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
        Alcotest.test_case "uniform buckets" `Quick test_prng_uniformity;
        Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
        Alcotest.test_case "pick member" `Quick test_prng_pick_member;
        qtest prop_int_in_bounds;
        qtest prop_in_range;
        qtest prop_float_in_bounds;
      ] );
    ( "util.ringbuf",
      [
        Alcotest.test_case "basic" `Quick test_ringbuf_basic;
        Alcotest.test_case "wrap keeps newest" `Quick test_ringbuf_wrap;
        Alcotest.test_case "clear" `Quick test_ringbuf_clear;
        qtest prop_ringbuf_suffix;
      ] );
    ( "util.varint",
      [
        Alcotest.test_case "negative rejected" `Quick test_varint_negative_rejected;
        Alcotest.test_case "truncated input" `Quick test_varint_truncated;
        Alcotest.test_case "boundary round-trips" `Quick
          test_varint_boundary_values;
        Alcotest.test_case "encoded_size at boundaries" `Quick
          test_varint_size_boundaries;
        Alcotest.test_case "try_read on truncated input" `Quick
          test_varint_try_read_truncated;
        qtest prop_varint_roundtrip;
        qtest prop_varint_signed_roundtrip;
        qtest prop_varint_size;
        qtest prop_varint_try_read_matches;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
        Alcotest.test_case "geomean" `Quick test_stats_geomean;
        Alcotest.test_case "geomean skips non-positive samples" `Quick
          test_stats_geomean_nonpositive;
        Alcotest.test_case "min/max" `Quick test_stats_min_max;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "f1" `Quick test_stats_f1;
        Alcotest.test_case "precision/recall" `Quick test_stats_precision_recall;
        Alcotest.test_case "kendall tau" `Quick test_kendall;
        Alcotest.test_case "ordering accuracy" `Quick test_ordering_accuracy;
        qtest prop_geomean_total;
        qtest prop_ordering_accuracy_bounds;
        qtest prop_percentile_p0_min;
        qtest prop_percentile_p100_max;
        qtest prop_percentile_monotone;
        qtest prop_confusion_counts_bounded;
        qtest prop_stddev_total;
        qtest prop_stddev_constant;
      ] );
    ( "util.tablefmt",
      [
        Alcotest.test_case "renders" `Quick test_tablefmt_renders;
        Alcotest.test_case "arity checked" `Quick test_tablefmt_arity_checked;
        Alcotest.test_case "formats" `Quick test_tablefmt_formats;
      ] );
    ( "util.dynbuf",
      [
        Alcotest.test_case "push/get/to_array" `Quick test_dynbuf_basic;
        Alcotest.test_case "iter/iteri order" `Quick test_dynbuf_iter;
        Alcotest.test_case "clear reuses storage" `Quick test_dynbuf_clear_reuses;
        qtest prop_dynbuf_matches_list;
      ] );
    ( "util.pool",
      [
        Alcotest.test_case "map matches sequential" `Quick
          test_pool_map_matches_sequential;
        Alcotest.test_case "run covers all indices" `Quick
          test_pool_run_covers_all_indices;
        Alcotest.test_case "empty batch" `Quick test_pool_empty_batch;
        Alcotest.test_case "exception propagates, fail fast" `Quick
          test_pool_propagates_exception;
        Alcotest.test_case "failure cancels the unclaimed rest" `Quick
          test_pool_cancels_rest_on_failure;
        Alcotest.test_case "get ~jobs:1 is sequential" `Quick
          test_pool_get_jobs1_is_sequential;
        Alcotest.test_case "submit overlaps in-order consumption" `Quick
          test_pool_submit_overlaps_merge;
        Alcotest.test_case "balanced chunks" `Quick test_pool_balanced_chunks;
        qtest prop_pool_balanced_chunks_partition;
        Alcotest.test_case "reusable across batches" `Quick
          test_pool_reusable_after_batch;
        Alcotest.test_case "shutdown idempotent, then inline" `Quick
          test_pool_shutdown_idempotent;
        Alcotest.test_case "default jobs clamped" `Quick
          test_pool_default_jobs_clamped;
        Alcotest.test_case "with_pool scoped teardown" `Quick
          test_pool_with_pool_scoped;
        Alcotest.test_case "with_pool never touches the shared slot" `Quick
          test_pool_with_pool_avoids_shared_slot;
        Alcotest.test_case "with_default_jobs domain-local scoping" `Quick
          test_pool_with_default_jobs_scoped;
        qtest prop_pool_map_deterministic;
      ] );
  ]
