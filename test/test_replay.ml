(* Tests for the coarse record/replay extension and the gate hook it is
   built on. *)

module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty

(* The knife-edge race from examples/record_replay.ml. *)
let build_race () =
  let m = Lir.Irmod.create "rr" in
  ignore (Lir.Irmod.declare_struct m "Msg" [ T.I64 ]);
  Lir.Irmod.declare_global m "mailbox" (T.Ptr (T.Struct "Msg"));
  B.define m "logger" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      B.io_delay b ~ns:380_000;
      let msg = B.load b ~name:"msg" (V.Global "mailbox") in
      let v = B.load b (B.gep b msg 0) in
      B.call_void b Lir.Intrinsics.print_i64 [ v ];
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let msg = B.malloc b ~name:"msg" (T.Struct "Msg") in
      B.store b ~value:(V.i64 42) ~ptr:(B.gep b msg 0);
      B.store b ~value:msg ~ptr:(V.Global "mailbox");
      let t = B.spawn b "logger" (V.i64 0) in
      B.work b ~ns:380_000;
      B.store b ~value:(V.Null (T.Ptr (T.Struct "Msg"))) ~ptr:(V.Global "mailbox");
      B.call_void b Lir.Intrinsics.print_i64 [ V.i64 0 ];
      B.join b t;
      B.ret_void b);
  Lir.Verify.check_exn m;
  Lir.Irmod.layout m;
  m

let racy_iids m =
  let found = ref [] in
  Lir.Irmod.iter_instrs m (fun _ _ i ->
      match i.Lir.Instr.kind with
      | Lir.Instr.Store { ptr = Lir.Value.Global "mailbox"; _ }
      | Lir.Instr.Load { ptr = Lir.Value.Global "mailbox"; _ } ->
        found := i.Lir.Instr.iid :: !found
      | _ -> ());
  !found

let failed r =
  match r.Sim.Interp.outcome with Sim.Interp.Failed _ -> true | _ -> false

let run ~seed m =
  Sim.Interp.run ~config:{ Sim.Interp.default_config with seed } m ~entry:"main"

let rec find_seed p m seed = if p (run ~seed m) then seed else find_seed p m (seed + 1)

(* --- the gate primitive -------------------------------------------------- *)

let test_gate_delays_execution () =
  (* Gate every instruction of thread 0 once: the run still completes but
     takes longer. *)
  let build () = build_race () in
  let base = (run ~seed:2 (build ())).Sim.Interp.final_time_ns in
  let gated_once = Hashtbl.create 64 in
  let hooks =
    {
      Sim.Hooks.on_control = None;
      on_instr = None;
      gate =
        Some
          (fun ~tid ~time:_ (i : Lir.Instr.t) ->
            if tid = 0 && not (Hashtbl.mem gated_once i.Lir.Instr.iid) then begin
              Hashtbl.add gated_once i.Lir.Instr.iid ();
              500.0
            end
            else 0.0);
      on_sched = None;
      on_obs = None;
    }
  in
  let r =
    Sim.Interp.run
      ~config:{ Sim.Interp.default_config with seed = 2; hooks }
      (build ()) ~entry:"main"
  in
  Alcotest.(check bool) "still finishes" true
    (match r.Sim.Interp.outcome with
    | Sim.Interp.Completed | Sim.Interp.Failed _ -> true
    | _ -> false);
  Alcotest.(check bool) "visibly slower" true
    (r.Sim.Interp.final_time_ns > base +. 2000.0)

let test_gate_zero_is_noop () =
  let build () = build_race () in
  let plain = run ~seed:3 (build ()) in
  let hooks =
    { Sim.Hooks.none with gate = Some (fun ~tid:_ ~time:_ _ -> 0.0) }
  in
  let gated =
    Sim.Interp.run
      ~config:{ Sim.Interp.default_config with seed = 3; hooks }
      (build ()) ~entry:"main"
  in
  Alcotest.(check (list int)) "same output" plain.Sim.Interp.output
    gated.Sim.Interp.output;
  Alcotest.(check (float 1.0)) "same time" plain.Sim.Interp.final_time_ns
    gated.Sim.Interp.final_time_ns

(* --- record -------------------------------------------------------------- *)

let test_record_captures_order () =
  let m = build_race () in
  let racy = racy_iids m in
  let failing_seed = find_seed failed m 1 in
  let r, schedule = Replay.record ~seed:failing_seed m ~entry:"main" ~racy_iids:racy in
  Alcotest.(check bool) "recorded run failed" true (failed r);
  (* init store, null store, logger load = 3 racing accesses. *)
  Alcotest.(check int) "three events" 3 (Replay.schedule_length schedule)

let test_record_deterministic () =
  let m = build_race () in
  let racy = racy_iids m in
  let _, s1 = Replay.record ~seed:7 m ~entry:"main" ~racy_iids:racy in
  let _, s2 = Replay.record ~seed:7 m ~entry:"main" ~racy_iids:racy in
  Alcotest.(check bool) "same schedule" true (s1.Replay.order = s2.Replay.order)

(* --- replay -------------------------------------------------------------- *)

let test_replay_same_seed_is_faithful () =
  let m = build_race () in
  let racy = racy_iids m in
  let failing_seed = find_seed failed m 1 in
  let r0, schedule = Replay.record ~seed:failing_seed m ~entry:"main" ~racy_iids:racy in
  let r1, fidelity =
    Replay.replay ~seed:failing_seed m ~entry:"main" ~racy_iids:racy schedule
  in
  Alcotest.(check bool) "same outcome kind" (failed r0) (failed r1);
  Alcotest.(check int) "no divergence" 0 fidelity.Replay.diverged;
  Alcotest.(check bool) "no give-up" false fidelity.Replay.gave_up

let test_replay_forces_failure_on_passing_seed () =
  let m = build_race () in
  let racy = racy_iids m in
  let failing_seed = find_seed failed m 1 in
  let passing_seed = find_seed (fun r -> not (failed r)) m (failing_seed + 1) in
  let _, schedule = Replay.record ~seed:failing_seed m ~entry:"main" ~racy_iids:racy in
  let free = run ~seed:passing_seed m in
  Alcotest.(check bool) "free run passes" false (failed free);
  let replayed, fidelity =
    Replay.replay ~seed:passing_seed m ~entry:"main" ~racy_iids:racy schedule
  in
  Alcotest.(check bool) "replay reproduces the failure" true (failed replayed);
  Alcotest.(check int) "fully enforced" 3 fidelity.Replay.enforced

let test_replay_empty_schedule_noop () =
  let m = build_race () in
  let racy = racy_iids m in
  let passing_seed = find_seed (fun r -> not (failed r)) m 1 in
  let free = run ~seed:passing_seed m in
  let replayed, fidelity =
    Replay.replay ~seed:passing_seed m ~entry:"main" ~racy_iids:racy
      { Replay.order = [||] }
  in
  Alcotest.(check bool) "outcome unchanged" (failed free) (failed replayed);
  Alcotest.(check int) "nothing enforced" 0 fidelity.Replay.enforced

let test_replay_gives_up_on_infeasible () =
  let m = build_race () in
  let racy = racy_iids m in
  (* A schedule demanding an event from a thread that never produces it. *)
  let bogus = { Replay.order = [| (99, List.hd racy) |] } in
  let r, fidelity =
    Replay.replay ~seed:1 ~max_stalls:20 m ~entry:"main" ~racy_iids:racy bogus
  in
  Alcotest.(check bool) "run still terminates" true
    (match r.Sim.Interp.outcome with
    | Sim.Interp.Completed | Sim.Interp.Failed _ -> true
    | _ -> false);
  Alcotest.(check bool) "enforcement gave up" true fidelity.Replay.gave_up

let test_racy_iids_of_pattern () =
  let p =
    Snorlax_core.Patterns.Order
      { remote_iid = 9; anchor_iid = 4; shape = Snorlax_core.Patterns.WR }
  in
  Alcotest.(check (list int)) "sorted unique" [ 4; 9 ]
    (Replay.racy_iids_of_pattern p)

let tests =
  [
    ( "replay",
      [
        Alcotest.test_case "gate delays execution" `Quick test_gate_delays_execution;
        Alcotest.test_case "zero gate is noop" `Quick test_gate_zero_is_noop;
        Alcotest.test_case "record captures order" `Quick test_record_captures_order;
        Alcotest.test_case "record deterministic" `Quick test_record_deterministic;
        Alcotest.test_case "same-seed replay faithful" `Quick
          test_replay_same_seed_is_faithful;
        Alcotest.test_case "replay forces failure" `Quick
          test_replay_forces_failure_on_passing_seed;
        Alcotest.test_case "empty schedule noop" `Quick test_replay_empty_schedule_noop;
        Alcotest.test_case "gives up on infeasible" `Quick
          test_replay_gives_up_on_infeasible;
        Alcotest.test_case "pattern to racy set" `Quick test_racy_iids_of_pattern;
      ] );
  ]
