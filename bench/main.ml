(* Benchmark and reproduction harness.

   Part 1 — Bechamel micro-benchmarks: one Test.make per table/figure of
   the paper, timing the computational kernel that experiment exercises
   (client run, trace decode, hybrid vs static points-to, full pipeline,
   monitored workloads, Gist planning).

   Part 2 — the full reproduction: prints every table and figure the
   paper's evaluation contains, with the paper's own numbers quoted for
   comparison.  `dune exec bench/main.exe` runs both; pass `--quick` to
   reduce the hypothesis sample count, `--decode-only` or `--fleet-only`
   to emit just that one BENCH artifact. *)

open Bechamel
open Toolkit

(* --- shared fixtures (prepared once, outside the timed sections) -------- *)

let pbzip_entry = lazy (Experiments.Eval_runs.get (Corpus.Registry.find_exn "pbzip2-1"))

let mysql_module =
  lazy
    (let built = (Corpus.Registry.find_exn "mysql-1").Corpus.Bug.build () in
     Lir.Irmod.layout built.Corpus.Bug.m;
     built.Corpus.Bug.m)

let failing_fixture =
  lazy
    (let e = Lazy.force pbzip_entry in
     let c = e.Experiments.Eval_runs.collected in
     let m = c.Corpus.Runner.built.Corpus.Bug.m in
     let first = List.hd c.Corpus.Runner.failing in
     (m, c, first))

let executed_fixture =
  lazy
    (let m, _, first = Lazy.force failing_fixture in
     let tp =
       Snorlax_core.Diagnosis.process_failing m ~config:Pt.Config.default first
     in
     (m, tp.Snorlax_core.Trace_processing.executed))

(* --- one micro-benchmark per table/figure -------------------------------- *)

(* Tables 1-3: the measurement unit is one reproduction attempt of a
   corpus bug under the timestamp instrumentation. *)
let bench_hypothesis_run =
  Test.make ~name:"tables1-3: instrumented client run (pbzip2-1)"
    (Staged.stage (fun () ->
         let e = Lazy.force pbzip_entry in
         let built = e.Experiments.Eval_runs.collected.Corpus.Runner.built in
         ignore (Corpus.Runner.run_untraced ~built ~entry:"main" ~seed:11 ())))

(* Table 4: hybrid (scope-restricted) vs whole-program points-to. *)
let bench_hybrid_pta =
  Test.make ~name:"table4: hybrid points-to (executed scope)"
    (Staged.stage (fun () ->
         let m, executed = Lazy.force executed_fixture in
         ignore
           (Analysis.Pointsto.analyze m ~scope:(fun iid ->
                Snorlax_core.Trace_processing.Iset.mem iid executed))))

let bench_static_pta =
  Test.make ~name:"table4: whole-program points-to"
    (Staged.stage (fun () ->
         ignore (Analysis.Pointsto.analyze_all (Lazy.force mysql_module))))

(* Figure 7 / section 6.1: the full server-side pipeline on one received
   failure report (steps 2-7). *)
let bench_pipeline =
  Test.make ~name:"fig7: full diagnosis pipeline (pbzip2-1)"
    (Staged.stage (fun () ->
         let m, c, _ = Lazy.force failing_fixture in
         ignore
           (Snorlax_core.Diagnosis.diagnose m ~config:Pt.Config.default
              ~failing:c.Corpus.Runner.failing
              ~successful:c.Corpus.Runner.successful)))

(* The decoder alone: steps 2-3 on the failing thread's ring snapshot. *)
let bench_decoder =
  Test.make ~name:"fig7: trace decode (failing thread ring)"
    (Staged.stage (fun () ->
         let m, _, first = Lazy.force failing_fixture in
         let _, bytes = List.hd first.Snorlax_core.Report.traces in
         ignore (Pt.Decoder.decode m ~config:Pt.Config.default bytes)))

(* Figure 8: one traced workload execution (the overhead numerator). *)
let bench_traced_workload =
  Test.make ~name:"fig8: traced throughput workload (memcached)"
    (Staged.stage (fun () ->
         let spec = Experiments.Workloads.find "memcached" in
         ignore
           (Experiments.Workloads.run_overhead spec ~threads:2 ~seed:3
              ~tracer_config:(Some Pt.Config.default) ~gist_costs:None)))

(* Figure 9: the Gist-instrumented counterpart. *)
let bench_gist_workload =
  Test.make ~name:"fig9: gist-instrumented workload (memcached)"
    (Staged.stage (fun () ->
         let spec = Experiments.Workloads.find "memcached" in
         ignore
           (Experiments.Workloads.run_overhead spec ~threads:2 ~seed:3
              ~tracer_config:None ~gist_costs:(Some Gist.default_costs))))

(* Section 6.3: Gist's slice planning per failure report. *)
let bench_gist_plan =
  Test.make ~name:"sec6.3: gist slice plan"
    (Staged.stage (fun () ->
         let m, executed = Lazy.force executed_fixture in
         let _, _, first = Lazy.force failing_fixture in
         let pta =
           Analysis.Pointsto.analyze m ~scope:(fun iid ->
               Snorlax_core.Trace_processing.Iset.mem iid executed)
         in
         ignore
           (Gist.plan m ~points_to:pta
              ~failing_iid:(Snorlax_core.Report.failing_anchor_iid first))))

let run_benchmarks () =
  let tests =
    [
      bench_hypothesis_run;
      bench_hybrid_pta;
      bench_static_pta;
      bench_pipeline;
      bench_decoder;
      bench_traced_workload;
      bench_gist_workload;
      bench_gist_plan;
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None
      ~stabilize:false ()
  in
  print_endline "=== Bechamel micro-benchmarks (one per table/figure) ===";
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
        |> Analyze.all ols Instance.monotonic_clock
      in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | _ -> nan
          in
          Printf.printf "  %-50s %12.0f ns/run\n%!" name ns)
        results)
    tests

(* --- part 2: the reproduction harness ------------------------------------ *)

let run_reproduction ~samples =
  print_endline "\n=== Paper reproduction: every table and figure ===";
  let t1 = Experiments.Report.print_table1 ~samples () in
  let t2 = Experiments.Report.print_table2 ~samples () in
  let t3 = Experiments.Report.print_table3 ~samples () in
  Experiments.Report.print_hypothesis_summary [ t1; t2; t3 ];
  ignore (Experiments.Report.print_accuracy ());
  ignore (Experiments.Report.print_figure7 ());
  ignore (Experiments.Report.print_table4 ());
  ignore (Experiments.Report.print_figure8 ());
  ignore (Experiments.Report.print_figure9 ());
  ignore (Experiments.Report.print_latency ());
  Experiments.Ablations.print_all ()

(* --- part 3: pipeline telemetry artifact --------------------------------- *)

(* One instrumented diagnosis run, exported as a Chrome trace so a
   benchmark run leaves a profile artifact behind.  Runs before the timed
   sections and disables the scope afterwards, keeping the micro-benchmark
   loops on the telemetry-off fast path. *)
let emit_pipeline_trace () =
  (* Force the fixture first: its own reproduction runs (and any diagnosis
     they do) must not pollute the exported pipeline trace. *)
  let m, c, _ = Lazy.force failing_fixture in
  ignore (Obs.Scope.enable ());
  ignore
    (Snorlax_core.Diagnosis.diagnose m ~config:Pt.Config.default
       ~failing:c.Corpus.Runner.failing
       ~successful:c.Corpus.Runner.successful);
  let json = Option.get (Obs.Scope.export_chrome ()) in
  Obs.Scope.disable ();
  let path = "BENCH_pipeline.json" in
  match
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Obs.Json.to_string json);
        Out_channel.output_char oc '\n')
  with
  | () -> Printf.printf "Pipeline trace written to %s\n%!" path
  | exception Sys_error msg ->
    Printf.eprintf "cannot write %s: %s\n" path msg;
    exit 1

(* --- part 4: fleet deployment artifact ----------------------------------- *)

(* A small simulated deployment, summarized as JSON: how many bytes the
   wire format needs, how well signature dedup collapses the fleet's
   reports, and how long the cross-endpoint diagnosis takes. *)
let emit_fleet_bench () =
  let bug = Corpus.Registry.find_exn "pbzip2-1" in
  let s = Fleet.Deploy.run ~endpoints:6 [ bug ] in
  let top_f1, rc_match =
    match s.Fleet.Deploy.rows with
    | r :: _ -> (r.Fleet.Deploy.f1, r.Fleet.Deploy.root_cause_match)
    | [] -> (0.0, false)
  in
  let json =
    Obs.Json.Obj
      [
        ("endpoints", Obs.Json.Int s.Fleet.Deploy.endpoints);
        ("scenarios", Obs.Json.Int s.Fleet.Deploy.scenarios);
        ("reports_shipped", Obs.Json.Int s.Fleet.Deploy.shipped);
        ("wire_bytes", Obs.Json.Int s.Fleet.Deploy.wire_bytes);
        ("buckets", Obs.Json.Int s.Fleet.Deploy.bucket_count);
        ("dedup_ratio", Obs.Json.Float s.Fleet.Deploy.dedup_ratio);
        ("decode_errors", Obs.Json.Int s.Fleet.Deploy.decode_errors);
        ("unrouted", Obs.Json.Int s.Fleet.Deploy.unrouted);
        ("collect_ns", Obs.Json.Float s.Fleet.Deploy.collect_ns);
        ("diagnosis_ns", Obs.Json.Float s.Fleet.Deploy.diagnosis_ns);
        ("total_ns", Obs.Json.Float s.Fleet.Deploy.total_ns);
        ( "report_to_diagnosis_p50_ns",
          Obs.Json.Float s.Fleet.Deploy.latency_p50_ns );
        ( "report_to_diagnosis_p99_ns",
          Obs.Json.Float s.Fleet.Deploy.latency_p99_ns );
        ("top_f1", Obs.Json.Float top_f1);
        ("root_cause_match", Obs.Json.Bool rc_match);
      ]
  in
  let path = "BENCH_fleet.json" in
  match
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Obs.Json.to_string json);
        Out_channel.output_char oc '\n')
  with
  | () -> Printf.printf "Fleet summary written to %s\n%!" path
  | exception Sys_error msg ->
    Printf.eprintf "cannot write %s: %s\n" path msg;
    exit 1

(* --- part 5: decode throughput artifact ---------------------------------- *)

(* The trace-processing stage dominates the pipeline (BENCH_pipeline.json
   puts it at ~96% of a diagnosis), so it gets its own artifact: the same
   report set decoded sequentially, with the domain pool, and against a
   warm memo cache.  The cache's own miss counter doubles as the decoder
   invocation count, which is how the cold/warm comparison is proved
   rather than inferred from wall time. *)
let emit_decode_bench () =
  let e = Lazy.force pbzip_entry in
  let c = e.Experiments.Eval_runs.collected in
  let m = c.Corpus.Runner.built.Corpus.Bug.m in
  let failing = c.Corpus.Runner.failing in
  let successful = c.Corpus.Runner.successful in
  let reports = List.length failing + List.length successful in
  let traces =
    List.fold_left
      (fun n (r : Snorlax_core.Report.failing_report) ->
        n + List.length r.Snorlax_core.Report.traces)
      0 failing
    + List.fold_left
        (fun n (s : Snorlax_core.Report.success_report) ->
          n + List.length s.Snorlax_core.Report.s_traces)
        0 successful
  in
  let run ~jobs ~engine ~cache () =
    List.iter
      (fun r ->
        ignore
          (Snorlax_core.Diagnosis.process_failing ~jobs ~engine ~cache m
             ~config:Pt.Config.default r))
      failing;
    List.iter
      (fun s ->
        ignore
          (Snorlax_core.Diagnosis.process_successful ~jobs ~engine ~cache m
             ~config:Pt.Config.default s))
      successful
  in
  let time f =
    (* Best of 3: the artifact feeds bench-compare, so prefer the stable
       floor over a mean that inherits GC noise. *)
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Obs.Span.wall_clock_ns () in
      f ();
      best := Float.min !best (Obs.Span.wall_clock_ns () -. t0)
    done;
    !best
  in
  let no_cache = Pt.Decode_cache.create ~capacity:0 () in
  (* The baseline is the v1 reference pipeline decoded one trace at a
     time — exactly what shipped before the overhaul.  The contender is
     the cursor walker under the batched pool at 4 jobs.  [seq_new_ns]
     isolates how much of the win is raw decoder speed (visible even on
     a single-core box, where extra domains cannot help). *)
  let jobs = 4 in
  let seq_cold_ns = time (run ~jobs:1 ~engine:`Reference ~cache:no_cache) in
  let seq_new_ns = time (run ~jobs:1 ~engine:`Cursor ~cache:no_cache) in
  let par_cold_ns = time (run ~jobs ~engine:`Cursor ~cache:no_cache) in
  (* Cold/warm split on a private cache: misses after the first pass are
     exactly the decoder invocations a cold server performs; misses added
     by a second identical pass are the warm-path invocations. *)
  let cache = Pt.Decode_cache.create ~capacity:1024 () in
  run ~jobs:1 ~engine:`Cursor ~cache ();
  let cold = Pt.Decode_cache.stats cache in
  let warm_ns = time (run ~jobs:1 ~engine:`Cursor ~cache) in
  let warm = Pt.Decode_cache.stats cache in
  let decode_calls_cold = cold.Pt.Decode_cache.misses in
  let decode_calls_warm =
    (* Three timed warm passes; per-pass invocation count. *)
    (warm.Pt.Decode_cache.misses - cold.Pt.Decode_cache.misses) / 3
  in
  let ratio a b = if b > 0.0 then a /. b else 0.0 in
  let json =
    Obs.Json.Obj
      [
        ("reports", Obs.Json.Int reports);
        ("traces", Obs.Json.Int traces);
        ("jobs", Obs.Json.Int jobs);
        ("seq_cold_ns", Obs.Json.Float seq_cold_ns);
        ("seq_new_ns", Obs.Json.Float seq_new_ns);
        ("par_cold_ns", Obs.Json.Float par_cold_ns);
        ("warm_ns", Obs.Json.Float warm_ns);
        ("parallel_speedup", Obs.Json.Float (ratio seq_cold_ns par_cold_ns));
        ("raw_speedup", Obs.Json.Float (ratio seq_cold_ns seq_new_ns));
        ("warm_speedup", Obs.Json.Float (ratio seq_cold_ns warm_ns));
        ("decode_calls_cold", Obs.Json.Int decode_calls_cold);
        ("decode_calls_warm", Obs.Json.Int decode_calls_warm);
        ("cache_hits", Obs.Json.Int warm.Pt.Decode_cache.hits);
        ("cache_misses", Obs.Json.Int warm.Pt.Decode_cache.misses);
        ("cache_evictions", Obs.Json.Int warm.Pt.Decode_cache.evictions);
        ("cache_entries", Obs.Json.Int warm.Pt.Decode_cache.entries);
      ]
  in
  let path = "BENCH_decode.json" in
  match
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Obs.Json.to_string json);
        Out_channel.output_char oc '\n')
  with
  | () ->
    Printf.printf
      "Decode bench written to %s (%d traces, cold %d decodes, warm %d)\n%!"
      path traces decode_calls_cold decode_calls_warm
  | exception Sys_error msg ->
    Printf.eprintf "cannot write %s: %s\n" path msg;
    exit 1

(* The streaming fleet under the shard-per-domain service: the same
   seeded scenario serviced inline (shard_domains = 1) and with one
   worker domain per shard (shard_domains = 4), sharing one baseline
   reproduction and starting each timed run from a cold shared decode
   cache.  The SPSC handoff replays each shard's exact inline operation
   sequence, so the two bucket tables must compare equal — the runs may
   differ only in wall clock.  The >= 2x speedup assertion is a
   multicore claim; on hosts with fewer than 4 cores the ratio is still
   measured and reported, but the gate records itself as skipped (extra
   domains cannot beat physics on one core). *)
let emit_stream_bench () =
  let module Deploy = Stream.Deploy in
  let bugs = Corpus.Registry.eval_set in
  let baselines = Stream.Traffic.prepare bugs in
  let cfg domains =
    {
      Deploy.default_config with
      Deploy.endpoints = 48;
      duration_ticks = 72;
      shards = 4;
      shard_domains = domains;
      churn = true;
      seed = 42;
    }
  in
  let run domains () =
    Pt.Decode_cache.clear Pt.Decode_cache.shared;
    Deploy.run ~baselines (cfg domains) bugs
  in
  (* Best of 3, like the decode bench: the stable floor, not a mean that
     inherits GC and scheduler noise. *)
  let best f =
    let best = ref None in
    for _ = 1 to 3 do
      let s = f () in
      match !best with
      | Some (b : Deploy.summary) when b.Deploy.stream_ns <= s.Deploy.stream_ns
        ->
        ()
      | _ -> best := Some s
    done;
    Option.get !best
  in
  let seq = best (run 1) in
  let par = best (run 4) in
  let fail msg =
    Printf.eprintf "stream bench: %s\n" msg;
    exit 1
  in
  if seq.Deploy.rows <> par.Deploy.rows then
    fail "bucket tables differ between 1-domain and 4-domain runs";
  List.iter
    (fun (tag, (s : Deploy.summary)) ->
      if not s.Deploy.agree then
        fail (tag ^ ": incremental diagnosis diverged from batch");
      if not s.Deploy.accounted then
        fail (tag ^ ": backpressure accounting failed");
      if s.Deploy.leftover_queue <> 0 then
        fail (tag ^ ": final drain left packets queued"))
    [ ("seq", seq); ("par", par) ];
  let cores = Domain.recommended_domain_count () in
  let speedup =
    if par.Deploy.stream_ns > 0.0 then
      seq.Deploy.stream_ns /. par.Deploy.stream_ns
    else 0.0
  in
  let gate = if cores >= 4 then "enforced" else "skipped_few_cores" in
  if gate = "enforced" && speedup < 2.0 then
    fail
      (Printf.sprintf "stream_parallel_speedup %.2f < 2.0 (%d cores)" speedup
         cores);
  let json =
    Obs.Json.Obj
      [
        ("endpoints", Obs.Json.Int (cfg 1).Deploy.endpoints);
        ("duration_ticks", Obs.Json.Int (cfg 1).Deploy.duration_ticks);
        ("shards", Obs.Json.Int (cfg 1).Deploy.shards);
        ("shard_domains", Obs.Json.Int (cfg 4).Deploy.shard_domains);
        ("domains_used", Obs.Json.Int par.Deploy.domains_used);
        ("bugs", Obs.Json.Int (List.length bugs));
        ("churn", Obs.Json.Bool true);
        ("offered", Obs.Json.Int par.Deploy.offered);
        ("shed", Obs.Json.Int par.Deploy.shed);
        ("drained", Obs.Json.Int par.Deploy.drained);
        ("buckets", Obs.Json.Int par.Deploy.bucket_count);
        ("reports_per_sec", Obs.Json.Float par.Deploy.reports_per_sec);
        ("shed_ratio", Obs.Json.Float par.Deploy.shed_ratio);
        ( "report_to_diagnosis_p50_ns",
          Obs.Json.Float par.Deploy.latency_p50_ns );
        ( "report_to_diagnosis_p99_ns",
          Obs.Json.Float par.Deploy.latency_p99_ns );
        ( "shard_latency",
          Obs.Json.List
            (Array.to_list
               (Array.mapi
                  (fun i (p50, p99) ->
                    Obs.Json.Obj
                      [
                        ("shard", Obs.Json.Int i);
                        ("queue_wait_p50_ns", Obs.Json.Float p50);
                        ("queue_wait_p99_ns", Obs.Json.Float p99);
                      ])
                  par.Deploy.shard_latency)) );
        ("incremental_agrees_batch", Obs.Json.Bool par.Deploy.agree);
        ("accounted", Obs.Json.Bool par.Deploy.accounted);
        ("rows_identical", Obs.Json.Bool true);
        ("stream_seq_ns", Obs.Json.Float seq.Deploy.stream_ns);
        ("stream_par_ns", Obs.Json.Float par.Deploy.stream_ns);
        ("stream_parallel_speedup", Obs.Json.Float speedup);
        ("cores", Obs.Json.Int cores);
        ("parallel_gate", Obs.Json.String gate);
      ]
  in
  let path = "BENCH_stream.json" in
  match
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Obs.Json.to_string json);
        Out_channel.output_char oc '\n')
  with
  | () ->
    Printf.printf
      "Stream bench written to %s (seq %.1f ms, par %.1f ms, speedup %.2fx \
       on %d core(s), gate %s)\n%!"
      path
      (seq.Deploy.stream_ns /. 1e6)
      (par.Deploy.stream_ns /. 1e6)
      speedup cores gate
  | exception Sys_error msg ->
    Printf.eprintf "cannot write %s: %s\n" path msg;
    exit 1

(* The fix sweep as a benchmark: corpus-wide fix rate per bug class and
   validation throughput (seeds/sec), written to BENCH_fix.json.  The
   sweep fans one bug per pool lane; the verdict table is deterministic
   (asserted parallel == sequential in the test suite), so the numbers
   here are throughput only. *)
let emit_fix_bench () =
  let bugs = Corpus.Registry.all in
  let results =
    Fix.Validate.fix_all ~sweep_jobs:(Snorlax_util.Pool.default_jobs ())
      ~seeds:5 bugs
  in
  let s = Fix.Validate.summarize results in
  if s.Fix.Validate.fix_rate < 0.6 then begin
    Printf.eprintf "fix bench: fix rate %.2f below the 0.6 floor\n"
      s.Fix.Validate.fix_rate;
    exit 1
  end;
  let path = "BENCH_fix.json" in
  match
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc
          (Obs.Json.to_string (Fix.Validate.to_json results));
        Out_channel.output_char oc '\n')
  with
  | () ->
    Printf.printf
      "Fix bench written to %s (%d/%d fixed, %.0f%% rate, %.1f validation \
       seeds/sec)\n%!"
      path s.Fix.Validate.fixed s.Fix.Validate.bugs
      (100.0 *. s.Fix.Validate.fix_rate)
      s.Fix.Validate.seeds_per_sec
  | exception Sys_error msg ->
    Printf.eprintf "cannot write %s: %s\n" path msg;
    exit 1

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let decode_only = Array.exists (String.equal "--decode-only") Sys.argv in
  let fleet_only = Array.exists (String.equal "--fleet-only") Sys.argv in
  let stream_only = Array.exists (String.equal "--stream-only") Sys.argv in
  let fix_only = Array.exists (String.equal "--fix-only") Sys.argv in
  if decode_only then emit_decode_bench ()
  else if fleet_only then emit_fleet_bench ()
  else if stream_only then emit_stream_bench ()
  else if fix_only then emit_fix_bench ()
  else begin
    emit_pipeline_trace ();
    emit_fleet_bench ();
    emit_decode_bench ();
    run_benchmarks ();
    run_reproduction ~samples:(if quick then 3 else 10)
  end
