(* Show the coarse interleaving the decoder reconstructs around an
   atomicity violation: decode the failing trace of the MySQL
   SHOW PROCESSLIST bug and print the timed instances of the three target
   events — the RWR sandwich is visible in the coarse timestamps alone.

   Run with: dune exec examples/atomicity_window.exe *)

module Core = Snorlax_core
module Tp = Core.Trace_processing

let () =
  let bug = Corpus.Registry.find_exn "mysql-7" in
  Printf.printf "Bug: %s — %s\n\n%!" bug.Corpus.Bug.id bug.Corpus.Bug.description;
  match Corpus.Runner.collect bug () with
  | Error msg -> prerr_endline msg
  | Ok c ->
    let m = c.Corpus.Runner.built.Corpus.Bug.m in
    let failing = List.hd c.Corpus.Runner.failing in
    let tp = Core.Diagnosis.process_failing m ~config:Pt.Config.default failing in
    let gt = c.Corpus.Runner.built.Corpus.Bug.ground_truth in
    let label k = List.nth [ "check (R)"; "swap  (W)"; "reuse (R)" ] k in
    List.iteri
      (fun k iid ->
        Printf.printf "%s  %s\n" (label k)
          (Lir.Printer.instr_with_location m iid);
        let last3 =
          let l = Tp.instances tp ~iid in
          let n = List.length l in
          List.filteri (fun i _ -> i >= n - 3) l
        in
        List.iter
          (fun (e : Tp.event) ->
            Printf.printf "    thread %d executed in [%d, %s] ns\n" e.Tp.tid
              e.Tp.t_lo
              (match e.Tp.t_hi with
              | Some hi -> string_of_int hi
              | None -> "open"))
          last3)
      gt;
    (* Let the full pipeline confirm. *)
    let result =
      Core.Diagnosis.diagnose m ~config:Pt.Config.default
        ~failing:c.Corpus.Runner.failing ~successful:c.Corpus.Runner.successful
    in
    match result.Core.Diagnosis.top with
    | Some top ->
      Printf.printf "\nDiagnosed (F1 = %.2f):\n%s\n" top.Core.Statistics.f1
        (Core.Patterns.describe m top.Core.Statistics.pattern)
    | None -> print_endline "no pattern found"
