(* Diagnose the classic SQLite-style lock-order deadlock from the corpus
   and show what the client actually shipped to the server: per-thread
   ring-buffer snapshots and the hung threads' blocked pcs.

   Run with: dune exec examples/deadlock_diagnosis.exe *)

module Core = Snorlax_core

let () =
  let bug = Corpus.Registry.find_exn "sqlite-1" in
  Printf.printf "Bug: %s — %s\n\n%!" bug.Corpus.Bug.id bug.Corpus.Bug.description;
  match Corpus.Runner.collect bug () with
  | Error msg -> prerr_endline msg
  | Ok c ->
    let m = c.Corpus.Runner.built.Corpus.Bug.m in
    let failing = List.hd c.Corpus.Runner.failing in
    (* What the client sent (Figure 2, step 1). *)
    Printf.printf "Client report at t=%d ns:\n" failing.Core.Report.failure_time_ns;
    (match failing.Core.Report.info with
    | Core.Report.Deadlock_info { blocked } ->
      List.iter
        (fun (tid, iid) ->
          Printf.printf "  thread %d blocked at %s\n" tid
            (Lir.Printer.instr_with_location m iid))
        blocked
    | Core.Report.Crash_info _ -> ());
    List.iter
      (fun (tid, bytes) ->
        Printf.printf "  thread %d ring snapshot: %d bytes of packets\n" tid
          (Bytes.length bytes))
      failing.Core.Report.traces;
    (* Server-side diagnosis. *)
    let result =
      Core.Diagnosis.diagnose m ~config:Pt.Config.default
        ~failing:c.Corpus.Runner.failing ~successful:c.Corpus.Runner.successful
    in
    (match result.Core.Diagnosis.top with
    | Some top ->
      Printf.printf "\nDiagnosed (F1 = %.2f):\n%s\n" top.Core.Statistics.f1
        (Core.Patterns.describe m top.Core.Statistics.pattern);
      Printf.printf "\nThe fix: make both paths acquire db_lock before journal_lock.\n"
    | None -> print_endline "no pattern found")
