(* Compare Snorlax with the Gist baseline on one bug (§6.3): diagnosis
   latency in failure recurrences, and monitoring overhead as the
   application scales from 2 to 32 threads.

   Run with: dune exec examples/gist_comparison.exe *)

module Core = Snorlax_core
module Tp = Core.Trace_processing

let () =
  let bug = Corpus.Registry.find_exn "pbzip2-1" in
  Printf.printf "Bug: %s — %s\n\n%!" bug.Corpus.Bug.id bug.Corpus.Bug.description;
  match Corpus.Runner.collect bug () with
  | Error msg -> prerr_endline msg
  | Ok c ->
    let m = c.Corpus.Runner.built.Corpus.Bug.m in
    let failing = List.hd c.Corpus.Runner.failing in
    let tp = Core.Diagnosis.process_failing m ~config:Pt.Config.default failing in
    let points_to =
      Analysis.Pointsto.analyze m ~scope:(fun iid ->
          Tp.Iset.mem iid tp.Tp.executed)
    in
    (* Latency: Snorlax needs the one failure we already have; Gist widens
       its instrumented slice window on every recurrence. *)
    let plan =
      Gist.plan m ~points_to
        ~failing_iid:(Core.Report.failing_anchor_iid failing)
    in
    let recurrences =
      Gist.recurrences_needed plan
        ~targets:c.Corpus.Runner.built.Corpus.Bug.ground_truth
    in
    Printf.printf "Diagnosis latency:\n";
    Printf.printf "  Snorlax: 1 failure\n";
    Printf.printf "  Gist:    %d failure recurrences (slice of %d instructions)\n"
      recurrences
      (List.length plan.Gist.slice);
    Printf.printf
      "  ...and with 684 bugs tracked (Chromium), Gist monitors the right \
       bug once per 684 executions: ~%.0f failures per diagnosis.\n\n"
      (Gist.latency_factor_vs_snorlax ~recurrences ~tracked_bugs:684);
    (* Overhead scaling on this system's throughput workload. *)
    let base_spec = Experiments.Workloads.find bug.Corpus.Bug.system in
    Printf.printf "Monitoring overhead on the %s workload:\n"
      bug.Corpus.Bug.system;
    List.iter
      (fun threads ->
        (* Keep total simulated work bounded as threads grow. *)
        let spec =
          {
            base_spec with
            Experiments.Workloads.requests =
              max 10 (base_spec.Experiments.Workloads.requests * 2 / threads);
          }
        in
        let snorlax =
          Experiments.Workloads.run_overhead spec ~threads ~seed:5
            ~tracer_config:(Some Pt.Config.default) ~gist_costs:None
        in
        let gist =
          Experiments.Workloads.run_overhead spec ~threads ~seed:5
            ~tracer_config:None ~gist_costs:(Some Gist.default_costs)
        in
        Printf.printf "  %2d threads: snorlax %5.2f%%   gist %6.2f%%\n" threads
          (100.0 *. snorlax) (100.0 *. gist))
      [ 2; 4; 8; 16; 32 ]
