(* Quickstart: build a small racy program with the LIR builder, run it
   under the PT-style tracer until it crashes, gather successful traces at
   the failure location, and let Lazy Diagnosis name the root cause.

   Run with: dune exec examples/quickstart.exe *)

module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty
module Core = Snorlax_core

(* A producer publishes a message buffer; a logger thread reads it after a
   flush delay.  The producer retires the buffer too early: a classic WR
   order violation. *)
let build_program () =
  let m = Lir.Irmod.create "quickstart" in
  ignore (Lir.Irmod.declare_struct m "Msg" [ T.I64 ]);
  Lir.Irmod.declare_global m "mailbox" (T.Ptr (T.Struct "Msg"));
  B.define m "logger" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      (* Flush takes a while; sometimes a long while. *)
      let slow = B.icmp b Lir.Instr.Eq (B.rand b ~bound:2) (V.i64 0) in
      B.if_ b slow
        ~then_:(fun () -> B.io_delay b ~ns:600_000)
        ~else_:(fun () -> B.io_delay b ~ns:100_000);
      let msg = B.load b ~name:"msg" (V.Global "mailbox") in
      let body = B.gep b ~name:"body" msg 0 in
      let v = B.load b ~name:"v" body in
      B.call_void b Lir.Intrinsics.print_i64 [ v ];
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      let msg = B.malloc b ~name:"msg" (T.Struct "Msg") in
      B.store b ~value:(V.i64 42) ~ptr:(B.gep b msg 0);
      B.store b ~value:msg ~ptr:(V.Global "mailbox");
      let t = B.spawn b "logger" (V.i64 0) in
      B.work b ~ns:300_000;
      (* BUG: retire the mailbox without waiting for the logger. *)
      B.store b ~value:(V.Null (T.Ptr (T.Struct "Msg"))) ~ptr:(V.Global "mailbox");
      B.call_void b Lir.Intrinsics.print_i64 [ V.i64 0 ] (* "shutting down" *);
      B.join b t;
      B.ret_void b);
  Lir.Verify.check_exn m;
  m

let run_traced m ~seed ~watch_pcs =
  let driver = Pt.Driver.create () in
  if watch_pcs <> [] then Pt.Driver.set_watchpoints driver ~pcs:watch_pcs;
  let config =
    { Sim.Interp.default_config with seed; hooks = Pt.Driver.hooks driver }
  in
  (Sim.Interp.run ~config m ~entry:"main", driver)

let () =
  (* Telemetry on for the whole session: every pipeline stage below lands
     in the span tree printed at the end. *)
  ignore (Obs.Scope.enable ());
  let m = build_program () in
  Lir.Irmod.layout m;
  (* 1. Run until the bug bites, with always-on tracing. *)
  let rec find_failure seed =
    let result, driver = run_traced m ~seed ~watch_pcs:[] in
    match result.Sim.Interp.outcome with
    | Sim.Interp.Failed { failure; time_ns } ->
      Printf.printf "Run %d failed: %s\n" seed (Sim.Failure.to_string failure);
      let snap = Pt.Driver.snapshot_now driver ~at_time_ns:time_ns in
      (seed, Core.Report.of_sim_failure failure ~time_ns ~traces:snap.Pt.Driver.traces)
    | _ -> find_failure (seed + 1)
  in
  let failing_seed, failing = find_failure 1 in
  (* 2. Gather successful traces at the failure location (step 8). *)
  let watch_pcs = Corpus.Runner.watch_pcs_for m failing in
  let rec gather seed acc =
    if List.length acc >= 10 then List.rev acc
    else
      let result, driver = run_traced m ~seed ~watch_pcs in
      match result.Sim.Interp.outcome, Pt.Driver.watch_snapshot driver with
      | Sim.Interp.Completed, Some snap ->
        let s =
          {
            Core.Report.s_traces = snap.Pt.Driver.traces;
            trigger_time_ns = int_of_float snap.Pt.Driver.at_time_ns;
            trigger_tid = Option.value ~default:0 snap.Pt.Driver.trigger_tid;
            trigger_pc = Option.value ~default:0 snap.Pt.Driver.trigger_pc;
          }
        in
        gather (seed + 1) (s :: acc)
      | _ -> gather (seed + 1) acc
  in
  let successful = gather (failing_seed + 1) [] in
  (* 3. Diagnose. *)
  let result =
    Core.Diagnosis.diagnose m ~config:Pt.Config.default ~failing:[ failing ]
      ~successful
  in
  (match result.Core.Diagnosis.top with
  | Some top ->
    Printf.printf "\nRoot cause (F1 = %.2f):\n%s\n" top.Core.Statistics.f1
      (Core.Patterns.describe m top.Core.Statistics.pattern)
  | None -> print_endline "no pattern found");
  (* 4. The same diagnosis, as the telemetry subsystem saw it — the table
     `snorlax diagnose --obs-summary` prints. *)
  print_string "\nPipeline telemetry (what --obs-summary shows):\n";
  print_string (Obs.Scope.summary ())
