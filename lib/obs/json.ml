type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal form that parses back to the same double, so a
   print/parse round trip is the identity on every finite float. *)
let float_repr f =
  if not (Float.is_finite f) then invalid_arg "Json: non-finite float"
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let error c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected '%c'" ch)

let expect_lit c lit value =
  if
    c.pos + String.length lit <= String.length c.s
    && String.sub c.s c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    value
  end
  else error c (Printf.sprintf "expected %s" lit)

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
      | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
      | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
      | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
      | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.s then error c "truncated \\u escape";
        let hex = String.sub c.s c.pos 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | None -> error c "bad \\u escape"
        | Some code ->
          c.pos <- c.pos + 4;
          add_utf8 buf code;
          go ())
      | _ -> error c "bad escape")
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub c.s start (c.pos - start) in
  let is_float =
    String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') text
  in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error c "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* Integer literal too large for an int: fall back to float. *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (k, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          field ()
        | Some '}' -> advance c
        | _ -> error c "expected ',' or '}'"
      in
      field ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [] in
      let rec item () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          item ()
        | Some ']' -> advance c
        | _ -> error c "expected ',' or ']'"
      in
      item ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string c)
  | Some 't' -> expect_lit c "true" (Bool true)
  | Some 'f' -> expect_lit c "false" (Bool false)
  | Some 'n' -> expect_lit c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c (Printf.sprintf "unexpected '%c'" ch)

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage"
    else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors ---------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None

let number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
