(** Hierarchical timed spans — the structured replacement for ad-hoc
    [Sys.time] bracketing.

    A collector keeps one stack of open spans per display track (track 0
    is the pipeline itself; simulated threads can use their tid), so a
    span started while another is open on the same track becomes its
    child.  Timing uses monotonically-guarded wall-clock nanoseconds.
    Span names are slash-scoped, e.g. ["diagnosis/trace_processing"] —
    the prefix becomes the Chrome-trace category. *)

type arg_value = Str of string | Int of int | Float of float

type span = {
  id : int;
  name : string;
  track : int;
  parent : int option;  (** id of the enclosing open span on this track *)
  start_ns : float;
  mutable end_ns : float;  (** NaN while open *)
  mutable args : (string * arg_value) list;
}

type t

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh collector.  [clock] (returning nanoseconds) is injectable for
    deterministic tests; the default is guarded [Unix.gettimeofday]. *)

val wall_clock_ns : unit -> float
(** The default clock: wall time in ns since process start, nudged to be
    strictly increasing (an absolute epoch would round the 1 ns nudge away
    at double precision). *)

val raw_clock_ns : unit -> float
(** Same epoch, no monotone nudge and no shared state — the clock pool
    worker domains may use ([wall_clock_ns] races off the main domain). *)

val start : t -> ?track:int -> ?args:(string * arg_value) list -> string -> span

val finish : t -> span -> unit
(** Stamp the end time and pop the span from its track's open stack.
    Raises [Invalid_argument] if already finished. *)

val with_span :
  t -> ?track:int -> ?args:(string * arg_value) list -> string ->
  (span -> 'a) -> 'a
(** [start], run, then [finish] — even on exception. *)

val set_arg : span -> string -> arg_value -> unit
(** Attach or overwrite an argument; allowed after [finish] so funnel
    counts computed later in the pipeline can still be recorded. *)

val find_arg : span -> string -> arg_value option

val is_open : span -> bool

val duration_ns : span -> float
(** End minus start; NaN while open. *)

val elapsed_ns : t -> span -> float
(** Like [duration_ns] but reads the clock for a still-open span. *)

val open_span : t -> ?track:int -> unit -> span option
(** The innermost still-open span on [track] (default 0) — what a log
    event emitted "now" correlates to. *)

val spans : t -> span list
(** Every span ever started, in start order. *)

val orphans : t -> span list
(** Spans started but never finished — instrumentation bugs (or a crash
    unwound past them); the exporter emits them as open "B" events. *)

val render_tree : t -> string
(** Compact text rendering: one indented row per span with its duration in
    microseconds and its args, via [Util.Tablefmt]. *)
