(* --- exposition --------------------------------------------------------- *)

let name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let metric_name s =
  let s = String.map (fun c -> if name_char c then c else '_') s in
  if s = "" then "_"
  else if s.[0] >= '0' && s.[0] <= '9' then "_" ^ s
  else s

(* Exposition floats: integral values print as integers (bucket counts
   and most ns sums are), everything else via %g. *)
let num v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let render m =
  let buf = Buffer.create 1024 in
  let seen = Hashtbl.create 16 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun raw ->
      let name = metric_name raw in
      if not (Hashtbl.mem seen name) then begin
        match Metrics.find_counter m raw with
        | Some v ->
          Hashtbl.add seen name ();
          line "# TYPE %s counter" name;
          line "%s_total %d" name v
        | None -> (
          match Metrics.find_gauge m raw with
          | Some v ->
            Hashtbl.add seen name ();
            line "# TYPE %s gauge" name;
            line "%s %s" name (num v)
          | None -> (
            match Metrics.find_histogram_raw m raw with
            | Some (bkts, s) ->
              Hashtbl.add seen name ();
              line "# TYPE %s histogram" name;
              List.iter
                (fun (le, c) -> line "%s_bucket{le=\"%s\"} %d" name (num le) c)
                bkts;
              line "%s_bucket{le=\"+Inf\"} %d" name s.Metrics.count;
              line "%s_sum %s" name (num s.Metrics.sum);
              line "%s_count %d" name s.Metrics.count
            | None -> ()))
      end)
    (Metrics.names m);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* --- lint --------------------------------------------------------------- *)

exception Bad of string

let valid_name s =
  s <> ""
  && (match s.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all name_char s

type family = {
  f_name : string;
  f_kind : string;  (* counter | gauge | histogram *)
  mutable samples : int;
  (* histogram accounting *)
  mutable last_bucket : float option;  (* last cumulative bucket value *)
  mutable inf_bucket : float option;
  mutable h_count : float option;
  mutable h_sum : bool;
}

(* One sample line: [name value] or [name{k="v",...} value].  Returns the
   sample name, its labels and its value. *)
let parse_sample ln =
  let name_end =
    match (String.index_opt ln '{', String.index_opt ln ' ') with
    | Some b, Some sp -> min b sp
    | Some b, None -> b
    | None, Some sp -> sp
    | None, None -> raise (Bad "sample has no value")
  in
  let name = String.sub ln 0 name_end in
  if not (valid_name name) then raise (Bad ("bad metric name " ^ name));
  let labels, rest =
    if name_end < String.length ln && ln.[name_end] = '{' then begin
      match String.index_from_opt ln name_end '}' with
      | None -> raise (Bad "unterminated label set")
      | Some close ->
        let body = String.sub ln (name_end + 1) (close - name_end - 1) in
        let labels =
          if body = "" then []
          else
            List.map
              (fun kv ->
                match String.index_opt kv '=' with
                | None -> raise (Bad ("bad label " ^ kv))
                | Some eq ->
                  let k = String.sub kv 0 eq in
                  let v = String.sub kv (eq + 1) (String.length kv - eq - 1) in
                  if not (valid_name k) then raise (Bad ("bad label name " ^ k));
                  let vl = String.length v in
                  if vl < 2 || v.[0] <> '"' || v.[vl - 1] <> '"' then
                    raise (Bad ("label value not quoted in " ^ kv));
                  let v = String.sub v 1 (vl - 2) in
                  if String.contains v '"' || String.contains v '\\' then
                    raise (Bad ("unsupported escape in label " ^ kv));
                  (k, v))
              (String.split_on_char ',' body)
        in
        (labels, String.sub ln (close + 1) (String.length ln - close - 1))
    end
    else (([] : (string * string) list), String.sub ln name_end (String.length ln - name_end))
  in
  let rl = String.length rest in
  if rl < 2 || rest.[0] <> ' ' then raise (Bad "expected single space before value");
  let value = String.sub rest 1 (rl - 1) in
  if String.contains value ' ' then raise (Bad "trailing garbage after value");
  match float_of_string_opt value with
  | None -> raise (Bad ("bad sample value " ^ value))
  | Some v -> (name, labels, v)

let close_family = function
  | None -> ()
  | Some f ->
    if f.samples = 0 then raise (Bad ("family " ^ f.f_name ^ " has no samples"));
    if f.f_kind = "histogram" then begin
      if f.inf_bucket = None then
        raise (Bad ("histogram " ^ f.f_name ^ " missing +Inf bucket"));
      if not f.h_sum then raise (Bad ("histogram " ^ f.f_name ^ " missing _sum"));
      match (f.h_count, f.inf_bucket) with
      | None, _ -> raise (Bad ("histogram " ^ f.f_name ^ " missing _count"))
      | Some c, Some inf when c <> inf ->
        raise
          (Bad
             (Printf.sprintf "histogram %s _count %s disagrees with +Inf bucket %s"
                f.f_name (num c) (num inf)))
      | _ -> ()
    end

let check_sample fam ln =
  let name, labels, v = parse_sample ln in
  match fam with
  | None -> raise (Bad ("sample " ^ name ^ " outside any # TYPE family"))
  | Some f -> (
    f.samples <- f.samples + 1;
    match f.f_kind with
    | "counter" ->
      if name <> f.f_name ^ "_total" then
        raise (Bad ("counter sample must be " ^ f.f_name ^ "_total, got " ^ name));
      if v < 0.0 then raise (Bad "negative counter value")
    | "gauge" ->
      if name <> f.f_name then
        raise (Bad ("gauge sample must be " ^ f.f_name ^ ", got " ^ name))
    | _ (* histogram *) ->
      if name = f.f_name ^ "_bucket" then begin
        let le =
          match List.assoc_opt "le" labels with
          | Some le -> le
          | None -> raise (Bad "histogram bucket missing le label")
        in
        if f.inf_bucket <> None then
          raise (Bad "bucket after the +Inf bucket");
        if le = "+Inf" then f.inf_bucket <- Some v
        else begin
          (match float_of_string_opt le with
          | None -> raise (Bad ("bad le bound " ^ le))
          | Some _ -> ());
          match f.last_bucket with
          | Some prev when v < prev ->
            raise
              (Bad
                 (Printf.sprintf "bucket counts not cumulative: %s after %s"
                    (num v) (num prev)))
          | _ -> f.last_bucket <- Some v
        end;
        (match f.last_bucket with
        | Some prev when f.inf_bucket <> None && Option.get f.inf_bucket < prev ->
          raise (Bad "+Inf bucket below a finite bucket")
        | _ -> ())
      end
      else if name = f.f_name ^ "_sum" then f.h_sum <- true
      else if name = f.f_name ^ "_count" then f.h_count <- Some v
      else
        raise (Bad ("unexpected histogram sample " ^ name)))

let lint text =
  let lines = String.split_on_char '\n' text in
  let fam : family option ref = ref None in
  let declared = Hashtbl.create 16 in
  let saw_eof = ref false in
  try
    List.iteri
      (fun i ln ->
        let lineno = i + 1 in
        try
          if !saw_eof && ln <> "" then raise (Bad "content after # EOF");
          if ln = "" then begin
            (* only the trailing newline's empty remainder is allowed *)
            if i <> List.length lines - 1 then raise (Bad "blank line")
          end
          else if ln = "# EOF" then begin
            close_family !fam;
            fam := None;
            saw_eof := true
          end
          else if String.length ln > 0 && ln.[0] = '#' then begin
            match String.split_on_char ' ' ln with
            | [ "#"; "TYPE"; name; kind ] ->
              if not (valid_name name) then
                raise (Bad ("bad family name " ^ name));
              if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
                raise (Bad ("unknown metric type " ^ kind));
              if Hashtbl.mem declared name then
                raise (Bad ("family " ^ name ^ " declared twice"));
              Hashtbl.add declared name ();
              close_family !fam;
              fam :=
                Some
                  {
                    f_name = name;
                    f_kind = kind;
                    samples = 0;
                    last_bucket = None;
                    inf_bucket = None;
                    h_count = None;
                    h_sum = false;
                  }
            | "#" :: "HELP" :: name :: _ ->
              if not (valid_name name) then
                raise (Bad ("bad family name " ^ name))
            | _ -> raise (Bad "malformed comment line")
          end
          else check_sample !fam ln
        with Bad msg -> raise (Bad (Printf.sprintf "line %d: %s" lineno msg)))
      lines;
    if not !saw_eof then Error "missing terminating # EOF" else Ok ()
  with Bad msg -> Error msg
