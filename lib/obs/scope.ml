type ctx = { metrics : Metrics.t; trace : Span.t }

let state : ctx option ref = ref None

let enable () =
  let c = { metrics = Metrics.create (); trace = Span.create () } in
  state := Some c;
  c

let disable () = state := None

let current () = !state

let enabled () = Option.is_some !state

let with_span ?args name f =
  match !state with
  | None -> f ()
  | Some c -> Span.with_span c.trace ?args name (fun _ -> f ())

let count name n =
  match !state with
  | None -> ()
  | Some c -> Metrics.add (Metrics.counter c.metrics name) n

let set_gauge name v =
  match !state with
  | None -> ()
  | Some c -> Metrics.set (Metrics.gauge c.metrics name) v

let observe name v =
  match !state with
  | None -> ()
  | Some c -> Metrics.observe (Metrics.histogram c.metrics name) v

let timed name f =
  match !state with
  | None -> f ()
  | Some c ->
    let t0 = Span.wall_clock_ns () in
    Fun.protect
      ~finally:(fun () ->
        Metrics.observe
          (Metrics.histogram c.metrics name)
          (Span.wall_clock_ns () -. t0))
      f

let export_chrome () =
  match !state with
  | None -> None
  | Some c -> Some (Chrome_trace.export ~metrics:c.metrics c.trace)

let export_metrics () =
  match !state with None -> None | Some c -> Some (Metrics.to_json c.metrics)

let summary () =
  match !state with
  | None -> ""
  | Some c ->
    let buf = Buffer.create 512 in
    if Span.spans c.trace <> [] then begin
      Buffer.add_string buf "Spans:\n";
      Buffer.add_string buf (Span.render_tree c.trace)
    end;
    let m = Metrics.render c.metrics in
    if m <> "" then begin
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf "Metrics:\n";
      Buffer.add_string buf m
    end;
    Buffer.contents buf
