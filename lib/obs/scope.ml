type ctx = {
  metrics : Metrics.t;
  trace : Span.t;
  mutable samples_rev : (float * (string * float) list) list;
  mutable n_samples : int;
  last_values : (string, float) Hashtbl.t;
}

(* Domain-local: each domain sees its own (usually absent) context, so a
   worker domain's recording calls are no-ops unless the worker installed
   a private context with [using].  This is what makes the ambient calls
   sprinkled through the decoder/collector safe to run on pool and shard
   domains — they never touch another domain's registry. *)
let state : ctx option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let make () =
  {
    metrics = Metrics.create ();
    trace = Span.create ();
    samples_rev = [];
    n_samples = 0;
    last_values = Hashtbl.create 32;
  }

let enable () =
  let c = make () in
  (Domain.DLS.get state) := Some c;
  c

let disable () = (Domain.DLS.get state) := None

let current () = !(Domain.DLS.get state)

let enabled () = Option.is_some !(Domain.DLS.get state)

let using c f =
  let slot = Domain.DLS.get state in
  let prev = !slot in
  slot := Some c;
  Fun.protect ~finally:(fun () -> slot := prev) f

(* Counter/gauge time series for the Chrome exporter: at every span or
   timed-section boundary, record the scalars that changed since the last
   sample.  Capped so a hot timed section cannot grow the trace without
   bound — after the cap only the end-of-trace stamp remains. *)
let max_samples = 8192

let sample c =
  if c.n_samples < max_samples then begin
    let changed =
      List.filter_map
        (fun name ->
          let v =
            match Metrics.find_counter c.metrics name with
            | Some n -> Some (float_of_int n)
            | None -> Metrics.find_gauge c.metrics name
          in
          match v with
          | None -> None
          | Some v -> (
            match Hashtbl.find_opt c.last_values name with
            | Some prev when prev = v -> None
            | _ ->
              Hashtbl.replace c.last_values name v;
              Some (name, v)))
        (Metrics.names c.metrics)
    in
    if changed <> [] then begin
      c.samples_rev <- (Span.wall_clock_ns (), changed) :: c.samples_rev;
      c.n_samples <- c.n_samples + 1
    end
  end

let with_span ?args name f =
  match !(Domain.DLS.get state) with
  | None -> f ()
  | Some c ->
    Fun.protect
      ~finally:(fun () -> sample c)
      (fun () -> Span.with_span c.trace ?args name (fun _ -> f ()))

let count name n =
  match !(Domain.DLS.get state) with
  | None -> ()
  | Some c -> Metrics.add (Metrics.counter c.metrics name) n

let set_gauge name v =
  match !(Domain.DLS.get state) with
  | None -> ()
  | Some c -> Metrics.set (Metrics.gauge c.metrics name) v

let observe name v =
  match !(Domain.DLS.get state) with
  | None -> ()
  | Some c -> Metrics.observe (Metrics.histogram c.metrics name) v

let timed name f =
  match !(Domain.DLS.get state) with
  | None -> f ()
  | Some c ->
    let t0 = Span.wall_clock_ns () in
    Fun.protect
      ~finally:(fun () ->
        Metrics.observe
          (Metrics.histogram c.metrics name)
          (Span.wall_clock_ns () -. t0);
        sample c)
      f

let merge_worker m =
  match !(Domain.DLS.get state) with None -> () | Some c -> Metrics.merge ~into:c.metrics m

let export_chrome () =
  match !(Domain.DLS.get state) with
  | None -> None
  | Some c ->
    Some
      (Chrome_trace.export ~metrics:c.metrics
         ~samples:(List.rev c.samples_rev) c.trace)

let export_metrics () =
  match !(Domain.DLS.get state) with None -> None | Some c -> Some (Metrics.to_json c.metrics)

let export_openmetrics () =
  match !(Domain.DLS.get state) with None -> None | Some c -> Some (Openmetrics.render c.metrics)

let summary () =
  match !(Domain.DLS.get state) with
  | None -> ""
  | Some c ->
    let buf = Buffer.create 512 in
    if Span.spans c.trace <> [] then begin
      Buffer.add_string buf "Spans:\n";
      Buffer.add_string buf (Span.render_tree c.trace)
    end;
    let m = Metrics.render c.metrics in
    if m <> "" then begin
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf "Metrics:\n";
      Buffer.add_string buf m
    end;
    Buffer.contents buf
