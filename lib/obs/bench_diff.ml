type row = {
  key : string;
  old_v : float option;
  new_v : float option;
  delta_pct : float option;
  gated : bool;
  regressed : bool;
}

type report = { rows : row list; regressions : int }

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Decided on the metric's own name, not the full path: a duration nested
   under an arbitrary parent key must still gate. *)
let lower_is_better key =
  let leaf =
    match String.rindex_opt key '/' with
    | Some i -> String.sub key (i + 1) (String.length key - i - 1)
    | None -> key
  in
  let ends_with suf =
    let n = String.length suf and m = String.length leaf in
    m >= n && String.sub leaf (m - n) n = suf
  in
  ends_with "_ns" || ends_with "_us" || ends_with "_ms" || leaf = "dur"
  || contains ~sub:"bytes" leaf
  || contains ~sub:"miss" leaf
  || contains ~sub:"evict" leaf
  || contains ~sub:"error" leaf
  || contains ~sub:"lost" leaf
  || contains ~sub:"drop" leaf
  || contains ~sub:"desync" leaf
  || contains ~sub:"calls" leaf

(* Flatten to (path, number) pairs, document order.  List elements with a
   "name" string field key by it (Chrome trace events); others by index.
   First writer wins on a duplicated path, so repeated event names (span
   re-entries, counter samples) diff against their first occurrence. *)
let flatten json =
  let out = ref [] in
  let seen = Hashtbl.create 64 in
  let join prefix k = if prefix = "" then k else prefix ^ "/" ^ k in
  let add path v =
    if not (Hashtbl.mem seen path) then begin
      Hashtbl.add seen path ();
      out := (path, v) :: !out
    end
  in
  let rec go prefix = function
    | Json.Int i -> add prefix (float_of_int i)
    | Json.Float f -> add prefix f
    | Json.Obj fields -> List.iter (fun (k, v) -> go (join prefix k) v) fields
    | Json.List items ->
      List.iteri
        (fun i item ->
          let k =
            match Json.member "name" item with
            | Some (Json.String name) -> name
            | _ -> string_of_int i
          in
          go (join prefix k) item)
        items
    | Json.Null | Json.Bool _ | Json.String _ -> ()
  in
  go "" json;
  List.rev !out

let compare ~old_ ~new_ ~max_regress =
  let olds = flatten old_ and news = flatten new_ in
  let new_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace new_tbl k v) news;
  let old_keys = Hashtbl.create 64 in
  List.iter (fun (k, _) -> Hashtbl.replace old_keys k ()) olds;
  let row key old_v new_v =
    let delta_pct =
      match old_v, new_v with
      | Some o, Some n when o <> 0.0 -> Some ((n -. o) /. Float.abs o *. 100.0)
      | _ -> None
    in
    let gated = lower_is_better key in
    let regressed =
      gated
      &&
      match old_v, new_v with
      | Some o, Some n ->
        if o = 0.0 then n > 0.0 else n > o *. (1.0 +. (max_regress /. 100.0))
      | _ -> false
    in
    { key; old_v; new_v; delta_pct; gated; regressed }
  in
  let shared =
    List.map (fun (k, o) -> row k (Some o) (Hashtbl.find_opt new_tbl k)) olds
  in
  let added =
    List.filter_map
      (fun (k, n) ->
        if Hashtbl.mem old_keys k then None else Some (row k None (Some n)))
      news
  in
  let rows = shared @ added in
  let regressions =
    List.fold_left (fun n r -> if r.regressed then n + 1 else n) 0 rows
  in
  { rows; regressions }
