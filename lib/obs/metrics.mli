(** The telemetry metrics registry: named counters, gauges and log-scale
    histograms behind stable handles.

    The registry is plain mutable state confined to one domain — updates
    through a handle are a single unsynchronized int/float write, which is
    what keeps the always-on cost near zero.  For a future multicore
    split, each domain owns a private registry and [merge] folds them into
    one after the fact, the same way per-thread PT ring buffers are only
    reconciled at snapshot time. *)

type t

val create : unit -> t

(** {2 Counters} — monotonically increasing integer totals. *)

type counter

val counter : t -> string -> counter
(** The counter registered under this name, creating it on first use.
    Raises [Invalid_argument] if the name is already registered as a
    different metric kind. *)

val incr : counter -> unit

val add : counter -> int -> unit

val value : counter -> int

val counter_name : counter -> string

(** {2 Gauges} — a latest-value float sample. *)

type gauge

val gauge : t -> string -> gauge

val set : gauge -> float -> unit

val gauge_value : gauge -> float option
(** [None] until the first [set]. *)

val gauge_name : gauge -> string

(** {2 Histograms} — power-of-two log-scale buckets, built for wide-range
    nanosecond durations.  Negative observations clamp to 0. *)

type histogram

val histogram : t -> string -> histogram

val observe : histogram -> float -> unit

val histogram_name : histogram -> string

type hstats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;  (** bucket upper bound — within 2x of the true percentile *)
  p90 : float;
  p99 : float;
}

val stats : histogram -> hstats

val percentile : histogram -> p:float -> float
(** Nearest-rank percentile ([p] in 0..100) over the log-scale buckets:
    the answer is the hit bucket's upper bound clamped to the observed
    max, so it brackets the true percentile within one power of two.
    0 for an empty histogram. *)

val cumulative_buckets : histogram -> (float * int) list
(** [(le, cumulative_count)] per bucket up to the highest occupied one —
    the cumulative series OpenMetrics exposition needs.  Empty for an
    empty histogram; the implicit +Inf bucket equals the total count. *)

(** {2 Registry-wide operations} *)

val names : t -> string list
(** All registered metric names, in registration order. *)

val find_counter : t -> string -> int option

val find_gauge : t -> string -> float option

val find_histogram : t -> string -> hstats option

val find_histogram_raw : t -> string -> ((float * int) list * hstats) option
(** {!cumulative_buckets} plus {!stats} by name — what the OpenMetrics
    exporter reads. *)

val merge : into:t -> t -> unit
(** Fold [src] into [into]: counters and histogram buckets add; a gauge
    takes the source value when the source has one. *)

val to_json : t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}]. *)

val render : t -> string
(** Aligned ASCII tables (scalars, then histograms) via [Util.Tablefmt]. *)
