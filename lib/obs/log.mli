(** Structured, leveled event log with an always-on flight recorder.

    Call sites emit named events with typed key/value fields instead of
    formatted strings, so the same event can render as a terse text line,
    a JSON-lines record, or a flight-recorder entry.  Events correlate to
    the innermost open span of the ambient {!Scope} when one is enabled.

    Two consumers see each event:

    - {b Sinks} — pluggable (stderr text, JSON-lines file), attached
      explicitly and filtered by the global level.  With no sinks
      attached (the default) nothing is formatted or written.
    - {b Flight recorders} — bounded rings that capture {e every} event
      regardless of level or sinks.  The ring is cheap to feed (one
      array store) and is only materialized — formatted, last-N — when a
      failure fires, the iReplayer-style "pay at diagnosis time" trade.

    The log's mutable state is domain-local: every domain has its own
    always-on default ring and its own [with_recorder] stack, so worker
    domains may log freely — their events land in rings the worker (or
    its shard) owns, never in another domain's.  Sinks and the level
    threshold are process-wide configuration held in atomics, written at
    CLI startup; sink output from concurrent domains may interleave at
    line granularity. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> level option
(** Inverse of {!level_name}; [None] on unknown names. *)

type field = Str of string | Int of int | Float of float | Bool of bool

type event = {
  ts_ns : float;  (** wall-clock ns since process start ({!Span.wall_clock_ns}) *)
  level : level;
  name : string;  (** slash-scoped event name, e.g. ["fleet/ingest_reject"] *)
  span : string option;
      (** innermost open ambient-scope span when the event fired *)
  fields : (string * field) list;
}

(** {2 Emitting} *)

val log : level -> ?fields:(string * field) list -> string -> unit
(** Emit an event: always recorded into every active flight recorder,
    and forwarded to sinks when [level] passes the global threshold. *)

val debug : ?fields:(string * field) list -> string -> unit

val info : ?fields:(string * field) list -> string -> unit

val warn : ?fields:(string * field) list -> string -> unit

val error : ?fields:(string * field) list -> string -> unit

(** {2 Sinks and level} *)

val set_level : level -> unit
(** Minimum level forwarded to sinks (default [Info]).  Does not affect
    flight recorders, which always capture everything. *)

val level : unit -> level

val add_sink : (event -> unit) -> unit

val clear_sinks : unit -> unit

val text_sink : out_channel -> event -> unit
(** One aligned line per event:
    [\[  12.345ms\] WARN  fleet/ingest_reject (in fleet/collect) reason=...]. *)

val json_sink : out_channel -> event -> unit
(** One JSON object per line:
    [{"ts_ns":..,"level":"warn","event":..,"span":..,"fields":{..}}]. *)

val format_event : event -> string
(** The text-sink line (no trailing newline); also the flight-recorder
    dump format. *)

(** {2 Flight recorder} *)

module Recorder : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** A bounded ring keeping the last [capacity] (default 64) events. *)

  val record : t -> event -> unit

  val events : t -> event list
  (** Retained events, oldest first. *)

  val seen : t -> int
  (** Total events ever recorded, including overwritten ones. *)

  val clear : t -> unit

  val dump : t -> string
  (** The retained tail formatted one event per line, prefixed with a
      [flight recorder (last N of M events)] header; [""] when empty. *)
end

val default_recorder : Recorder.t
(** The main domain's always-on ring (capacity 128).  Every event lands
    in the emitting domain's own such ring even when no sinks are
    attached; this handle is the one events on the main domain feed. *)

val with_recorder : Recorder.t -> (unit -> 'a) -> 'a
(** Additionally capture events emitted during [f] {e on this domain}
    into this ring — the per-endpoint/per-shard flight recorder.  Nests;
    always pops, even on raise.  A ring must not be actively captured by
    two domains at once ([record] is unsynchronized); the shard service
    guarantees this by construction — each shard's ring is fed only by
    the one worker that owns the shard. *)

val dump_tail : unit -> string
(** {!Recorder.dump} of the calling domain's default ring. *)

val replay : Recorder.t -> unit
(** Re-emit the retained events to the attached sinks, bypassing the
    level threshold — the "dump the black box" action after a failure.
    No-op when no sinks are attached. *)
