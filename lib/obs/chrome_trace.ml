(* Chrome trace-event ("about://tracing" / Perfetto) JSON export.

   Spans become complete ("ph":"X") duration events with microsecond
   timestamps; still-open spans become begin ("B") events so crashes keep
   their partial timeline; counters and gauges become counter ("C")
   samples — a time series from the scope's span-boundary snapshots plus
   a final stamp at the end of the trace, so Perfetto shows each metric's
   evolution, not just its final value.  The format reference is the
   Trace Event Format document; Perfetto's legacy JSON importer accepts
   exactly this shape. *)

let pid = 1

let category name =
  match String.index_opt name '/' with
  | Some i -> String.sub name 0 i
  | None -> "app"

let arg_json = function
  | Span.Str s -> Json.String s
  | Span.Int i -> Json.Int i
  | Span.Float f -> Json.Float f

let us ns = ns /. 1e3

let span_event (sp : Span.span) =
  let base =
    [
      ("name", Json.String sp.name);
      ("cat", Json.String (category sp.name));
      ("ts", Json.Float (us sp.start_ns));
      ("pid", Json.Int pid);
      ("tid", Json.Int sp.track);
      ("args", Json.Obj (List.rev_map (fun (k, v) -> (k, arg_json v)) sp.args));
    ]
  in
  if Span.is_open sp then Json.Obj (("ph", Json.String "B") :: base)
  else
    Json.Obj
      (("ph", Json.String "X")
      :: ("dur", Json.Float (us (Span.duration_ns sp)))
      :: base)

let counter_event ~ts name value =
  Json.Obj
    [
      ("name", Json.String name);
      ("cat", Json.String (category name));
      ("ph", Json.String "C");
      ("ts", Json.Float (us ts));
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("value", value) ]);
    ]

let metadata_event name args =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj args);
    ]

let sample_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Json.Int (int_of_float v)
  else Json.Float v

let export ?metrics ?(samples = []) trace =
  let spans = Span.spans trace in
  let end_ts =
    List.fold_left
      (fun acc (sp : Span.span) ->
        Float.max acc
          (if Span.is_open sp then sp.start_ns else sp.end_ns))
      0.0 spans
  in
  let series_events =
    List.concat_map
      (fun (ts, kvs) ->
        List.map (fun (name, v) -> counter_event ~ts name (sample_value v)) kvs)
      samples
  in
  let metric_events =
    match metrics with
    | None -> []
    | Some m ->
      List.filter_map
        (fun name ->
          match Metrics.find_counter m name with
          | Some v -> Some (counter_event ~ts:end_ts name (Json.Int v))
          | None -> (
            match Metrics.find_gauge m name with
            | Some v -> Some (counter_event ~ts:end_ts name (Json.Float v))
            | None -> None))
        (Metrics.names m)
  in
  let events =
    metadata_event "process_name" [ ("name", Json.String "snorlax") ]
    :: List.map span_event spans
    @ series_events @ metric_events
  in
  Json.Obj
    [
      ("traceEvents", Json.List events); ("displayTimeUnit", Json.String "ns");
    ]
