(** Export a span collector (and optionally a metrics registry) as a
    Chrome trace-event JSON document loadable in [about://tracing] and
    {{:https://ui.perfetto.dev}Perfetto}.

    Finished spans export as complete ("X") events with microsecond
    timestamps and durations; open spans export as begin ("B") events;
    counters and gauges export as counter ("C") samples — the
    span-boundary time series handed in via [samples] plus a final stamp
    at the last span boundary, so Perfetto plots each metric's evolution
    over the run. *)

val export :
  ?metrics:Metrics.t ->
  ?samples:(float * (string * float) list) list ->
  Span.t ->
  Json.t
(** The whole document: [{"traceEvents": [...], "displayTimeUnit": "ns"}].
    [samples] are [(ts_ns, scalar values)] snapshots in time order —
    {!Scope} collects them at span boundaries.  Integral sample values
    export as JSON ints, everything else as floats. *)
