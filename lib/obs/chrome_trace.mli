(** Export a span collector (and optionally a metrics registry) as a
    Chrome trace-event JSON document loadable in [about://tracing] and
    {{:https://ui.perfetto.dev}Perfetto}.

    Finished spans export as complete ("X") events with microsecond
    timestamps and durations; open spans export as begin ("B") events;
    counters and gauges export as counter ("C") samples stamped at the
    last span boundary. *)

val export : ?metrics:Metrics.t -> Span.t -> Json.t
(** The whole document: [{"traceEvents": [...], "displayTimeUnit": "ns"}]. *)
