module Tablefmt = Snorlax_util.Tablefmt

type arg_value = Str of string | Int of int | Float of float

type span = {
  id : int;
  name : string;
  track : int;
  parent : int option;
  start_ns : float;
  mutable end_ns : float;  (* NaN while the span is open *)
  mutable args : (string * arg_value) list;
}

type t = {
  clock : unit -> float;
  mutable next_id : int;
  mutable spans_rev : span list;  (* every started span, newest first *)
  open_stacks : (int, span list ref) Hashtbl.t;  (* per display track *)
}

(* gettimeofday can step backwards under NTP; spans need monotonically
   non-decreasing stamps or Chrome-trace durations go negative, so ties
   and regressions are nudged forward by 1 ns.  Stamps are relative to
   process start: at epoch magnitude (~1.8e18 ns) a double's ULP is 256 ns
   and the nudge would round away, while relative stamps keep sub-ns
   resolution for months. *)
let epoch = Unix.gettimeofday ()

(* No monotone guard, no shared state: safe to call from pool worker
   domains, where [wall_clock_ns]'s [last] ref would race. *)
let raw_clock_ns () = (Unix.gettimeofday () -. epoch) *. 1e9

let wall_clock_ns =
  let last = ref 0.0 in
  fun () ->
    let t = raw_clock_ns () in
    let t = if t > !last then t else !last +. 1.0 in
    last := t;
    t

let create ?(clock = wall_clock_ns) () =
  { clock; next_id = 0; spans_rev = []; open_stacks = Hashtbl.create 4 }

let stack t track =
  match Hashtbl.find_opt t.open_stacks track with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.add t.open_stacks track s;
    s

let start t ?(track = 0) ?(args = []) name =
  let st = stack t track in
  let parent = match !st with [] -> None | p :: _ -> Some p.id in
  let sp =
    {
      id = t.next_id;
      name;
      track;
      parent;
      start_ns = t.clock ();
      end_ns = Float.nan;
      args;
    }
  in
  t.next_id <- t.next_id + 1;
  t.spans_rev <- sp :: t.spans_rev;
  st := sp :: !st;
  sp

let is_open sp = Float.is_nan sp.end_ns

let finish t sp =
  if not (is_open sp) then invalid_arg "Span.finish: span already finished";
  sp.end_ns <- t.clock ();
  let st = stack t sp.track in
  st := List.filter (fun s -> s.id <> sp.id) !st

let with_span t ?track ?args name f =
  let sp = start t ?track ?args name in
  Fun.protect ~finally:(fun () -> if is_open sp then finish t sp) (fun () -> f sp)

let set_arg sp key v = sp.args <- (key, v) :: List.remove_assoc key sp.args

let find_arg sp key = List.assoc_opt key sp.args

let duration_ns sp = sp.end_ns -. sp.start_ns

let elapsed_ns t sp =
  if is_open sp then t.clock () -. sp.start_ns else duration_ns sp

let open_span t ?(track = 0) () =
  match Hashtbl.find_opt t.open_stacks track with
  | Some { contents = sp :: _ } -> Some sp
  | Some { contents = [] } | None -> None

let spans t = List.rev t.spans_rev

let orphans t = List.filter is_open (spans t)

let arg_to_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f

let render_tree t =
  let all = spans t in
  let children = Hashtbl.create 32 in
  List.iter
    (fun sp ->
      match sp.parent with
      | Some pid ->
        let l =
          match Hashtbl.find_opt children pid with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.add children pid l;
            l
        in
        l := sp :: !l
      | None -> ())
    all;
  let tbl = Tablefmt.create ~headers:[ "span"; "us"; "args" ] in
  Tablefmt.set_align tbl Tablefmt.[ Left; Right; Left ];
  let rec emit depth sp =
    let dur =
      if is_open sp then "open"
      else Printf.sprintf "%.1f" (duration_ns sp /. 1e3)
    in
    let args =
      String.concat " "
        (List.rev_map (fun (k, v) -> k ^ "=" ^ arg_to_string v) sp.args)
    in
    Tablefmt.add_row tbl [ String.make (2 * depth) ' ' ^ sp.name; dur; args ];
    List.iter (emit (depth + 1))
      (match Hashtbl.find_opt children sp.id with
      | Some l -> List.rev !l
      | None -> [])
  in
  List.iter (fun sp -> if sp.parent = None then emit 0 sp) all;
  Tablefmt.render tbl
