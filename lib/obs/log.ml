type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type field = Str of string | Int of int | Float of float | Bool of bool

type event = {
  ts_ns : float;
  level : level;
  name : string;
  span : string option;
  fields : (string * field) list;
}

(* --- formatting --------------------------------------------------------- *)

let bare_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = '/' || c = ':'

let field_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b
  | Str s ->
    if s <> "" && String.for_all bare_char s then s else Printf.sprintf "%S" s

let format_event e =
  let buf = Buffer.create 96 in
  Buffer.add_string buf
    (Printf.sprintf "[%10.3fms] %-5s %s" (e.ts_ns /. 1e6)
       (String.uppercase_ascii (level_name e.level))
       e.name);
  (match e.span with
  | Some s -> Buffer.add_string buf (" (in " ^ s ^ ")")
  | None -> ());
  List.iter
    (fun (k, v) -> Buffer.add_string buf (" " ^ k ^ "=" ^ field_to_string v))
    e.fields;
  Buffer.contents buf

let field_json = function
  | Str s -> Json.String s
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b

let event_json e =
  Json.Obj
    ([
       ("ts_ns", Json.Float e.ts_ns);
       ("level", Json.String (level_name e.level));
       ("event", Json.String e.name);
     ]
    @ (match e.span with
      | Some s -> [ ("span", Json.String s) ]
      | None -> [])
    @ [ ("fields", Json.Obj (List.map (fun (k, v) -> (k, field_json v)) e.fields)) ])

let text_sink oc e =
  output_string oc (format_event e);
  output_char oc '\n';
  flush oc

let json_sink oc e =
  output_string oc (Json.to_string (event_json e));
  output_char oc '\n';
  flush oc

(* --- flight recorder ---------------------------------------------------- *)

module Recorder = struct
  type t = { buf : event option array; mutable next : int; mutable total : int }

  let create ?(capacity = 64) () =
    if capacity <= 0 then invalid_arg "Log.Recorder.create: capacity must be positive";
    { buf = Array.make capacity None; next = 0; total = 0 }

  let record r e =
    r.buf.(r.next) <- Some e;
    r.next <- (r.next + 1) mod Array.length r.buf;
    r.total <- r.total + 1

  let seen r = r.total

  let clear r =
    Array.fill r.buf 0 (Array.length r.buf) None;
    r.next <- 0;
    r.total <- 0

  let events r =
    let cap = Array.length r.buf in
    let out = ref [] in
    for i = cap - 1 downto 0 do
      match r.buf.((r.next + i) mod cap) with
      | Some e -> out := e :: !out
      | None -> ()
    done;
    !out

  let dump r =
    match events r with
    | [] -> ""
    | evs ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "flight recorder (last %d of %d events):"
           (List.length evs) r.total);
      List.iter
        (fun e ->
          Buffer.add_char buf '\n';
          Buffer.add_string buf ("  " ^ format_event e))
        evs;
      Buffer.contents buf
end

(* Each domain owns its always-on ring: workers that log never race on
   a shared array, and a shard worker's events stay in rings that shard
   owns (its flight recorder via [with_recorder], plus the worker
   domain's private default ring). *)
let default_key : Recorder.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Recorder.create ~capacity:128 ())

(* Bound at module init, i.e. the main domain's ring. *)
let default_recorder = Domain.DLS.get default_key

(* Extra rings currently capturing, innermost first ([with_recorder]).
   Domain-local: a recorder pushed on one domain captures only that
   domain's events, so a worker wrapping its work in [with_recorder]
   cannot see (or race with) events from its siblings. *)
let extra_recorders : Recorder.t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let with_recorder r f =
  let extras = Domain.DLS.get extra_recorders in
  extras := r :: !extras;
  Fun.protect
    ~finally:(fun () -> extras := List.filter (fun r' -> r' != r) !extras)
    f

(* --- emission ----------------------------------------------------------- *)

(* Level and sinks are process-wide configuration, written once at CLI
   startup and read from every domain — atomics make the cross-domain
   reads well-defined without a lock on the hot path. *)
let min_level = Atomic.make Info

let set_level l = Atomic.set min_level l

let level () = Atomic.get min_level

let sinks : (event -> unit) list Atomic.t = Atomic.make []

let add_sink s = Atomic.set sinks (Atomic.get sinks @ [ s ])

let clear_sinks () = Atomic.set sinks []

let current_span_name () =
  match Scope.current () with
  | None -> None
  | Some c ->
    Option.map
      (fun (sp : Span.span) -> sp.Span.name)
      (Span.open_span c.Scope.trace ())

let log lvl ?(fields = []) name =
  let e =
    {
      ts_ns = Span.wall_clock_ns ();
      level = lvl;
      name;
      span = current_span_name ();
      fields;
    }
  in
  Recorder.record (Domain.DLS.get default_key) e;
  List.iter (fun r -> Recorder.record r e) !(Domain.DLS.get extra_recorders);
  let ss = Atomic.get sinks in
  if ss <> [] && level_rank lvl >= level_rank (Atomic.get min_level) then
    List.iter (fun s -> s e) ss

let debug ?fields name = log Debug ?fields name

let info ?fields name = log Info ?fields name

let warn ?fields name = log Warn ?fields name

let error ?fields name = log Error ?fields name

let dump_tail () = Recorder.dump (Domain.DLS.get default_key)

let replay r =
  let ss = Atomic.get sinks in
  if ss <> [] then
    List.iter (fun e -> List.iter (fun s -> s e) ss) (Recorder.events r)
