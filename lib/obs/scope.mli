(** The ambient telemetry context.

    Instrumentation points all over the stack (the PT decoder, the
    simulator's scheduler hook, the corpus runner) record through this
    module rather than threading a registry through every signature.
    When no scope is enabled — the default — every recording call is a
    single [None] match, which is what keeps telemetry-off runs at the
    seed's speed.

    The context slot is domain-local ([Domain.DLS]): a freshly spawned
    domain always starts with no scope, so ambient recording calls on
    pool or shard worker domains are no-ops unless the worker installs
    a private context with {!using}.  Cross-domain telemetry therefore
    flows one way only — workers record into contexts they own, and the
    submitting domain folds those registries back in with
    {!merge_worker} after a barrier. *)

type ctx = {
  metrics : Metrics.t;
  trace : Span.t;
  mutable samples_rev : (float * (string * float) list) list;
      (** counter/gauge time series for the Chrome exporter: [(ts_ns,
          changed scalars)] recorded at span boundaries, newest first *)
  mutable n_samples : int;
  last_values : (string, float) Hashtbl.t;  (** exporter internals *)
}

val make : unit -> ctx
(** A fresh context, not installed anywhere.  Workers pass one to
    {!using}; the owner reads [ctx.metrics] after the worker quiesces. *)

val enable : unit -> ctx
(** Install (and return) a fresh context on the calling domain,
    replacing any previous one. *)

val using : ctx -> (unit -> 'a) -> 'a
(** Run [f] with [c] installed as the calling domain's context,
    restoring the previous one afterwards (even on raise).  This is how
    a worker domain gets private ambient telemetry: recordings land in
    [c.metrics], which the spawning domain merges after joining. *)

val disable : unit -> unit

val current : unit -> ctx option

val enabled : unit -> bool

val with_span :
  ?args:(string * Span.arg_value) list -> string -> (unit -> 'a) -> 'a
(** Run under a span of the current trace; just runs [f] when disabled. *)

val count : string -> int -> unit
(** Add to a counter by name; no-op when disabled. *)

val set_gauge : string -> float -> unit

val observe : string -> float -> unit
(** Record into a histogram by name; no-op when disabled. *)

val timed : string -> (unit -> 'a) -> 'a
(** Run [f] and record its wall-clock duration (ns) into the named
    histogram — even when [f] raises.  Just runs [f] when disabled.
    Like {!with_span}, completing a timed section samples changed
    counters/gauges into the Chrome-trace time series. *)

val merge_worker : Metrics.t -> unit
(** Fold a pool-worker's private registry into the ambient one
    ({!Metrics.merge}); no-op when disabled.  This is how domain-local
    telemetry rejoins the main registry — workers must never touch the
    ambient context directly. *)

val export_chrome : unit -> Json.t option
(** The current context as a Chrome trace-event document, including the
    counter/gauge time series sampled at span boundaries. *)

val export_metrics : unit -> Json.t option
(** The current context's metrics registry as JSON. *)

val export_openmetrics : unit -> string option
(** The current context's registry as OpenMetrics exposition text. *)

val summary : unit -> string
(** Span tree plus metrics tables, for [--obs-summary]; empty when
    disabled. *)
