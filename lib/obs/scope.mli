(** The ambient telemetry context.

    Instrumentation points all over the stack (the PT decoder, the
    simulator's scheduler hook, the corpus runner) record through this
    module rather than threading a registry through every signature.
    When no scope is enabled — the default — every recording call is a
    single [None] match, which is what keeps telemetry-off runs at the
    seed's speed. *)

type ctx = { metrics : Metrics.t; trace : Span.t }

val enable : unit -> ctx
(** Install (and return) a fresh context, replacing any previous one. *)

val disable : unit -> unit

val current : unit -> ctx option

val enabled : unit -> bool

val with_span :
  ?args:(string * Span.arg_value) list -> string -> (unit -> 'a) -> 'a
(** Run under a span of the current trace; just runs [f] when disabled. *)

val count : string -> int -> unit
(** Add to a counter by name; no-op when disabled. *)

val set_gauge : string -> float -> unit

val observe : string -> float -> unit
(** Record into a histogram by name; no-op when disabled. *)

val timed : string -> (unit -> 'a) -> 'a
(** Run [f] and record its wall-clock duration (ns) into the named
    histogram — even when [f] raises.  Just runs [f] when disabled. *)

val export_chrome : unit -> Json.t option
(** The current context as a Chrome trace-event document. *)

val export_metrics : unit -> Json.t option
(** The current context's metrics registry as JSON. *)

val summary : unit -> string
(** Span tree plus metrics tables, for [--obs-summary]; empty when
    disabled. *)
