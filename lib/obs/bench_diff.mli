(** Structural diff of two BENCH_*.json artifacts, for CI regression
    gating (`snorlax bench-compare A.json B.json --max-regress PCT`).

    Both documents are flattened to [path -> number] maps: object fields
    join with ["/"], and list elements key by their ["name"] field when
    they have one (Chrome trace events) or by index otherwise.  Keys
    present in only one document are reported but never gate.

    Only metrics whose name says "lower is better" (durations like
    [*_ns]/[dur], byte counts, miss/eviction/error/drop counters, decoder
    invocation counts) can regress; other numbers — ratios, speedups,
    totals without a direction — are informational. *)

type row = {
  key : string;
  old_v : float option;  (** None: metric only in the new artifact *)
  new_v : float option;  (** None: metric disappeared *)
  delta_pct : float option;  (** (new - old) / old * 100, when both exist and old <> 0 *)
  gated : bool;  (** name says lower-is-better, so it can regress *)
  regressed : bool;
}

type report = { rows : row list; regressions : int }

val lower_is_better : string -> bool
(** The name heuristic, exposed for tests: decided on the last
    ["/"]-separated segment of the key. *)

val compare : old_:Json.t -> new_:Json.t -> max_regress:float -> report
(** [max_regress] is the allowed relative increase in percent: a gated
    metric regresses when [new > old * (1 + max_regress / 100)] (with
    [old = 0] treated as regressed whenever [new > 0]).  Rows come back
    in the old document's key order, new-only keys last. *)
