(** A minimal self-contained JSON value type with a compact printer and a
    strict parser — just enough for the telemetry exporters (Chrome
    trace-event files, metrics dumps) and for round-trip tests, without
    pulling an external dependency into the build. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Floats print in the shortest form
    that parses back to the identical double, so [parse (to_string v)]
    reconstructs [v] exactly.  Raises [Invalid_argument] on NaN or
    infinite floats, which JSON cannot represent. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document (trailing garbage is an
    error).  Integer literals that fit in [int] parse as [Int]; numbers
    with a fraction or exponent parse as [Float]. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val to_list : t -> t list option
(** The items of a [List]; [None] on other constructors. *)

val number : t -> float option
(** [Int] or [Float] as a float; [None] on other constructors. *)
