(** Prometheus/OpenMetrics text exposition of a {!Metrics} registry.

    [render] emits one [# TYPE] block per metric: counters as
    [name_total], gauges as bare samples, histograms as cumulative
    [name_bucket{le="..."}] series (one bucket per occupied power-of-two
    bucket plus the mandatory [+Inf]) followed by [name_sum] and
    [name_count], terminated by [# EOF].  Slash-scoped registry names are
    sanitized ([pt/decode_ns] → [pt_decode_ns]).

    [lint] is the inverse gate: it re-parses exposition text and rejects
    malformed output — bad metric names, samples outside a [# TYPE]
    family, non-cumulative bucket series, missing [+Inf] or [# EOF] —
    so check.sh can verify every emitted snapshot is scrape-able. *)

val metric_name : string -> string
(** Sanitize a registry name into the OpenMetrics charset
    [[a-zA-Z0-9_:]], mapping every other byte to [_] and prefixing [_]
    when the first byte is a digit. *)

val render : Metrics.t -> string
(** The registry as exposition text, in registration order.  Unset
    gauges are skipped.  If two registry names sanitize to the same
    exposition name, later ones are dropped (exposition names must be
    unique). *)

val lint : string -> (unit, string) result
(** Check exposition text for well-formedness; [Error] carries a
    ["line N: ..."] description of the first problem. *)
