module Tablefmt = Snorlax_util.Tablefmt

type counter = { c_name : string; mutable count : int }

type gauge = { g_name : string; mutable g_value : float; mutable g_set : bool }

let bucket_count = 64

type histogram = {
  h_name : string;
  buckets : int array;  (* bucket [i>0] counts values in [2^(i-1), 2^i); bucket 0 is [0,1) *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type entry = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  entries : (string, entry) Hashtbl.t;
  mutable order_rev : string list;  (* registration order, reversed *)
}

let create () = { entries = Hashtbl.create 32; order_rev = [] }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register t name make match_entry =
  match Hashtbl.find_opt t.entries name with
  | Some e -> (
    match match_entry e with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as a %s" name
           (kind_name e)))
  | None ->
    let e, v = make () in
    Hashtbl.add t.entries name e;
    t.order_rev <- name :: t.order_rev;
    v

let counter t name =
  register t name
    (fun () ->
      let c = { c_name = name; count = 0 } in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun () ->
      let g = { g_name = name; g_value = 0.0; g_set = false } in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let histogram t name =
  register t name
    (fun () ->
      let h =
        {
          h_name = name;
          buckets = Array.make bucket_count 0;
          h_count = 0;
          h_sum = 0.0;
          h_min = Float.infinity;
          h_max = Float.neg_infinity;
        }
      in
      (Histogram h, h))
    (function Histogram h -> Some h | _ -> None)

let add c n = c.count <- c.count + n

let incr c = add c 1

let counter_name c = c.c_name

let value c = c.count

let set g v =
  g.g_value <- v;
  g.g_set <- true

let gauge_name g = g.g_name

let gauge_value g = if g.g_set then Some g.g_value else None

(* Log-scale bucketing: values land in power-of-two buckets, so a
   nanosecond histogram spans ten orders of magnitude in 64 ints.
   [Float.frexp] gives the exponent e with v in [2^(e-1), 2^e). *)
let bucket_of v =
  if v < 1.0 then 0
  else
    let _, e = Float.frexp v in
    min (bucket_count - 1) (max 0 e)

let bucket_upper i = if i = 0 then 1.0 else Float.ldexp 1.0 i

let observe h v =
  let v = Float.max v 0.0 in
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_min <- Float.min h.h_min v;
  h.h_max <- Float.max h.h_max v

let histogram_name h = h.h_name

type hstats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(* Nearest-rank percentile over the buckets; the answer is the bucket's
   upper bound clamped to the observed max, so it is an upper estimate
   within one power of two of the true value. *)
let bucket_percentile h ~p =
  if h.h_count = 0 then 0.0
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int h.h_count)))
    in
    let seen = ref 0 in
    let result = ref h.h_max in
    (try
       Array.iteri
         (fun i n ->
           seen := !seen + n;
           if !seen >= rank then begin
             result := Float.min (bucket_upper i) h.h_max;
             raise Exit
           end)
         h.buckets
     with Exit -> ());
    !result
  end

let percentile h ~p = bucket_percentile h ~p

(* Cumulative (le, count) pairs up to the highest occupied bucket — the
   shape OpenMetrics histogram exposition wants.  The final +Inf bucket is
   the caller's to add (its count is [h.h_count]). *)
let cumulative_buckets h =
  let last =
    let i = ref (-1) in
    Array.iteri (fun j n -> if n > 0 then i := j) h.buckets;
    !i
  in
  let acc = ref 0 and out = ref [] in
  for i = 0 to last do
    acc := !acc + h.buckets.(i);
    out := (bucket_upper i, !acc) :: !out
  done;
  List.rev !out

let stats h =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = (if h.h_count = 0 then 0.0 else h.h_min);
    max = (if h.h_count = 0 then 0.0 else h.h_max);
    p50 = bucket_percentile h ~p:50.0;
    p90 = bucket_percentile h ~p:90.0;
    p99 = bucket_percentile h ~p:99.0;
  }

(* --- whole-registry operations ------------------------------------------ *)

let names t = List.rev t.order_rev

let find_counter t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Counter c) -> Some c.count
  | _ -> None

let find_gauge t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Gauge g) when g.g_set -> Some g.g_value
  | _ -> None

let find_histogram t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Histogram h) -> Some (stats h)
  | _ -> None

let find_histogram_raw t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Histogram h) -> Some (cumulative_buckets h, stats h)
  | _ -> None

(* Merging supports the future one-registry-per-domain layout: counters
   and histogram buckets add, gauges keep the source's latest value. *)
let merge ~into src =
  List.iter
    (fun name ->
      match Hashtbl.find src.entries name with
      | Counter c -> add (counter into name) c.count
      | Gauge g -> if g.g_set then set (gauge into name) g.g_value
      | Histogram h ->
        let dst = histogram into name in
        Array.iteri
          (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n)
          h.buckets;
        dst.h_count <- dst.h_count + h.h_count;
        dst.h_sum <- dst.h_sum +. h.h_sum;
        dst.h_min <- Float.min dst.h_min h.h_min;
        dst.h_max <- Float.max dst.h_max h.h_max)
    (names src)

let to_json t =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun name ->
      match Hashtbl.find t.entries name with
      | Counter c -> counters := (name, Json.Int c.count) :: !counters
      | Gauge g ->
        if g.g_set then gauges := (name, Json.Float g.g_value) :: !gauges
      | Histogram h ->
        let s = stats h in
        hists :=
          ( name,
            Json.Obj
              [
                ("count", Json.Int s.count);
                ("sum", Json.Float s.sum);
                ("min", Json.Float s.min);
                ("max", Json.Float s.max);
                ("p50", Json.Float s.p50);
                ("p90", Json.Float s.p90);
                ("p99", Json.Float s.p99);
              ] )
          :: !hists)
    (names t);
  Json.Obj
    [
      ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !hists));
    ]

let render t =
  let buf = Buffer.create 256 in
  let scalars =
    List.filter_map
      (fun name ->
        match Hashtbl.find t.entries name with
        | Counter c -> Some (name, "counter", string_of_int c.count)
        | Gauge g when g.g_set -> Some (name, "gauge", Printf.sprintf "%g" g.g_value)
        | Gauge _ | Histogram _ -> None)
      (names t)
  in
  if scalars <> [] then begin
    let tbl = Tablefmt.create ~headers:[ "metric"; "kind"; "value" ] in
    Tablefmt.set_align tbl Tablefmt.[ Left; Left; Right ];
    List.iter (fun (n, k, v) -> Tablefmt.add_row tbl [ n; k; v ]) scalars;
    Buffer.add_string buf (Tablefmt.render tbl)
  end;
  let hists =
    List.filter_map
      (fun name ->
        match Hashtbl.find t.entries name with
        | Histogram h -> Some (name, stats h)
        | Counter _ | Gauge _ -> None)
      (names t)
  in
  if hists <> [] then begin
    if scalars <> [] then Buffer.add_char buf '\n';
    let tbl =
      Tablefmt.create
        ~headers:[ "histogram"; "count"; "mean"; "p50"; "p90"; "p99"; "max" ]
    in
    Tablefmt.set_align tbl
      Tablefmt.[ Left; Right; Right; Right; Right; Right; Right ];
    List.iter
      (fun (n, s) ->
        let mean = if s.count = 0 then 0.0 else s.sum /. float_of_int s.count in
        Tablefmt.add_row tbl
          [
            n;
            string_of_int s.count;
            Printf.sprintf "%.0f" mean;
            Printf.sprintf "%.0f" s.p50;
            Printf.sprintf "%.0f" s.p90;
            Printf.sprintf "%.0f" s.p99;
            Printf.sprintf "%.0f" s.max;
          ])
      hists;
    Buffer.add_string buf (Tablefmt.render tbl)
  end;
  Buffer.contents buf
