(* Constraint graph nodes are either a virtual register or the cells of an
   abstract object.  Solving is a standard worklist over inclusion edges,
   with load/store/gep constraints re-expanded as pointer points-to sets
   grow (rules (1)-(4) of Figure 3 in the paper). *)

type node = Var of int (* register rid *) | Cell of Memobj.t

module Node = struct
  type t = node

  let compare = Stdlib.compare
end

module Nmap = Map.Make (Node)
module Nset = Set.Make (Node)

module Gep_edge = struct
  type t = int * node (* field, dst *)

  let compare = Stdlib.compare
end

module Gset = Set.Make (Gep_edge)

(* Edge targets are sets, not lists: membership is checked on every
   (re-)expansion during solving, and large programs put thousands of
   targets behind one hub node. *)
type graph = {
  mutable pts : Memobj.Set.t Nmap.t;
  mutable copy : Nset.t Nmap.t; (* src -> dsts *)
  mutable loads : Nset.t Nmap.t; (* ptr -> load dsts *)
  mutable stores : Nset.t Nmap.t; (* ptr -> stored value nodes *)
  mutable geps : Gset.t Nmap.t; (* base -> (field, dst) *)
  mutable iterations : int;
}

type t = {
  m : Lir.Irmod.t;
  g : graph;
  scoped_instrs : int;
}

let find_default map node ~default =
  match Nmap.find_opt node map with Some v -> v | None -> default

let pts g n = find_default g.pts n ~default:Memobj.Set.empty

(* Direct points-to contribution of an operand: globals and functions are
   address constants; registers are graph variables looked up at use time. *)
let operand_node v =
  match (v : Lir.Value.t) with
  | Lir.Value.Reg r -> Some (Var r.Lir.Value.rid)
  | Lir.Value.Imm _ | Lir.Value.Null _ | Lir.Value.Global _ | Lir.Value.Fn_ref _
    ->
    None

let operand_consts v =
  match (v : Lir.Value.t) with
  | Lir.Value.Global gname -> Memobj.Set.singleton (Memobj.Global gname)
  | Lir.Value.Fn_ref f -> Memobj.Set.singleton (Memobj.Func f)
  | Lir.Value.Reg _ | Lir.Value.Imm _ | Lir.Value.Null _ -> Memobj.Set.empty

let add_pts g node objs =
  let cur = pts g node in
  let merged = Memobj.Set.union cur objs in
  if not (Memobj.Set.equal cur merged) then begin
    g.pts <- Nmap.add node merged g.pts;
    true
  end
  else false

let add_edge map src dst =
  let cur = find_default !map src ~default:Nset.empty in
  if Nset.mem dst cur then false
  else begin
    map := Nmap.add src (Nset.add dst cur) !map;
    true
  end

let add_gep_edge map src dst =
  let cur = find_default !map src ~default:Gset.empty in
  if Gset.mem dst cur then false
  else begin
    map := Nmap.add src (Gset.add dst cur) !map;
    true
  end

let generate_constraints m ~scope g =
  let pending = ref [] in
  let seed node objs =
    if not (Memobj.Set.is_empty objs) then pending := (node, objs) :: !pending
  in
  let copy = ref g.copy
  and loads = ref g.loads
  and stores = ref g.stores
  and geps = ref g.geps in
  (* Flow from operand [v] into [dst]: constants seed directly, registers
     add a copy edge. *)
  let flow v dst =
    seed dst (operand_consts v);
    match operand_node v with
    | Some src -> ignore (add_edge copy src dst)
    | None -> ()
  in
  let ret_regs = Hashtbl.create 16 in
  (* Collect in-scope return operands per function for call binding. *)
  Lir.Irmod.iter_instrs m (fun f _ i ->
      if scope i.Lir.Instr.iid then
        match i.Lir.Instr.kind with
        | Lir.Instr.Ret (Some v) ->
          let cur =
            Option.value ~default:[] (Hashtbl.find_opt ret_regs f.Lir.Func.fname)
          in
          Hashtbl.replace ret_regs f.Lir.Func.fname (v :: cur)
        | _ -> ());
  let visit _f _b (i : Lir.Instr.t) =
    if scope i.Lir.Instr.iid then
      match i.Lir.Instr.kind with
      | Lir.Instr.Alloca { dst; _ } ->
        seed (Var dst.Lir.Value.rid) (Memobj.Set.singleton (Memobj.Stack i.Lir.Instr.iid))
      | Lir.Instr.Cast { dst; src } -> flow src (Var dst.Lir.Value.rid)
      | Lir.Instr.Binop { dst; lhs; rhs; _ } ->
        (* Pointer arithmetic via integers: conservative copy. *)
        flow lhs (Var dst.Lir.Value.rid);
        flow rhs (Var dst.Lir.Value.rid)
      | Lir.Instr.Icmp _ -> ()
      | Lir.Instr.Gep { dst; base; field } -> (
        seed (Var dst.Lir.Value.rid)
          (Memobj.Set.of_list
             (List.map
                (fun o -> Memobj.Field (o, field))
                (Memobj.Set.elements (operand_consts base))));
        match operand_node base with
        | Some bn -> ignore (add_gep_edge geps bn (field, Var dst.Lir.Value.rid))
        | None -> ())
      | Lir.Instr.Index { dst; base; _ } ->
        (* Array elements collapse onto the array object. *)
        flow base (Var dst.Lir.Value.rid)
      | Lir.Instr.Load { dst; ptr } -> (
        let dn = Var dst.Lir.Value.rid in
        Memobj.Set.iter
          (fun o -> ignore (add_edge copy (Cell o) dn))
          (operand_consts ptr);
        match operand_node ptr with
        | Some pn -> ignore (add_edge loads pn dn)
        | None -> ())
      | Lir.Instr.Store { value; ptr } -> (
        Memobj.Set.iter
          (fun o -> flow value (Cell o))
          (operand_consts ptr);
        match operand_node ptr with
        | None -> ()
        | Some pn -> (
          match operand_node value with
          | Some vn -> ignore (add_edge stores pn vn)
          | None ->
            (* A stored address constant rides on a synthetic variable so
               it reaches pointees discovered during solving. *)
            let consts = operand_consts value in
            if not (Memobj.Set.is_empty consts) then begin
              let synthetic = Var (-i.Lir.Instr.iid - 1) in
              seed synthetic consts;
              ignore (add_edge stores pn synthetic)
            end))
      | Lir.Instr.Call { dst; callee; args } ->
        if String.equal callee Lir.Intrinsics.malloc then (
          match dst with
          | Some d ->
            seed (Var d.Lir.Value.rid)
              (Memobj.Set.singleton (Memobj.Heap i.Lir.Instr.iid))
          | None -> ())
        else if String.equal callee Lir.Intrinsics.thread_create then (
          match args with
          | Lir.Value.Fn_ref f :: arg :: _ when Lir.Irmod.has_func m f -> (
            let target = Lir.Irmod.find_func m f in
            match target.Lir.Func.params with
            | p :: _ -> flow arg (Var p.Lir.Value.rid)
            | [] -> ())
          | _ -> ())
        else if Lir.Intrinsics.is_intrinsic callee then ()
        else begin
          (match Lir.Irmod.find_func m callee with
          | target ->
            (try
               List.iter2
                 (fun (p : Lir.Value.reg) a -> flow a (Var p.Lir.Value.rid))
                 target.Lir.Func.params args
             with Invalid_argument _ -> ())
          | exception Not_found -> ());
          match dst with
          | Some d ->
            List.iter
              (fun v -> flow v (Var d.Lir.Value.rid))
              (Option.value ~default:[] (Hashtbl.find_opt ret_regs callee))
          | None -> ()
        end
      | Lir.Instr.Br _ | Lir.Instr.Cond_br _ | Lir.Instr.Ret _
      | Lir.Instr.Unreachable ->
        ()
  in
  Lir.Irmod.iter_instrs m visit;
  g.copy <- !copy;
  g.loads <- !loads;
  g.stores <- !stores;
  g.geps <- !geps;
  !pending

let solve g pending =
  let worklist = Queue.create () in
  let dirty = Hashtbl.create 64 in
  let touch n =
    if not (Hashtbl.mem dirty n) then begin
      Hashtbl.add dirty n ();
      Queue.add n worklist
    end
  in
  (* Materializing a copy edge also propagates the source's current set. *)
  let add_copy_edge src dst =
    let cur = find_default g.copy src ~default:Nset.empty in
    if not (Nset.mem dst cur) then begin
      g.copy <- Nmap.add src (Nset.add dst cur) g.copy;
      if add_pts g dst (pts g src) then touch dst
    end
  in
  List.iter
    (fun (n, objs) -> if add_pts g n objs then touch n)
    pending;
  while not (Queue.is_empty worklist) do
    let n = Queue.pop worklist in
    Hashtbl.remove dirty n;
    g.iterations <- g.iterations + 1;
    let objs = pts g n in
    (* Copy edges propagate the whole set. *)
    Nset.iter
      (fun dst -> if add_pts g dst objs then touch dst)
      (find_default g.copy n ~default:Nset.empty);
    (* Loads: dst includes the contents of every pointee of n. *)
    Nset.iter
      (fun dst -> Memobj.Set.iter (fun o -> add_copy_edge (Cell o) dst) objs)
      (find_default g.loads n ~default:Nset.empty);
    (* Stores: every pointee's cells include the stored node's set. *)
    Nset.iter
      (fun vn -> Memobj.Set.iter (fun o -> add_copy_edge vn (Cell o)) objs)
      (find_default g.stores n ~default:Nset.empty);
    (* Geps: field projection of each pointee. *)
    Gset.iter
      (fun (field, dst) ->
        let projected =
          Memobj.Set.map (fun o -> Memobj.Field (o, field)) objs
        in
        if add_pts g dst projected then touch dst)
      (find_default g.geps n ~default:Gset.empty)
  done

let analyze m ~scope =
  Lir.Irmod.layout m;
  let g =
    {
      pts = Nmap.empty;
      copy = Nmap.empty;
      loads = Nmap.empty;
      stores = Nmap.empty;
      geps = Nmap.empty;
      iterations = 0;
    }
  in
  let pending = generate_constraints m ~scope g in
  solve g pending;
  let scoped = ref 0 in
  Lir.Irmod.iter_instrs m (fun _ _ i ->
      if scope i.Lir.Instr.iid then incr scoped);
  { m; g; scoped_instrs = !scoped }

let analyze_all m = analyze m ~scope:(fun _ -> true)

let instructions_analyzed t = t.scoped_instrs
let solver_iterations t = t.g.iterations

let pts_of_operand t v =
  let consts = operand_consts v in
  match operand_node v with
  | Some n -> Memobj.Set.union consts (pts t.g n)
  | None -> consts

let pts_of_object t o = pts t.g (Cell o)

let accessed_objects t (i : Lir.Instr.t) =
  match i.Lir.Instr.kind with
  | Lir.Instr.Load { ptr; _ } | Lir.Instr.Store { ptr; _ } ->
    pts_of_operand t ptr
  | Lir.Instr.Call { callee; args; _ }
    when String.equal callee Lir.Intrinsics.mutex_lock
         || String.equal callee Lir.Intrinsics.mutex_unlock
         || String.equal callee Lir.Intrinsics.free -> (
    match args with a :: _ -> pts_of_operand t a | [] -> Memobj.Set.empty)
  | _ -> Memobj.Set.empty

let may_alias t a b =
  not (Memobj.Set.disjoint (pts_of_operand t a) (pts_of_operand t b))
