module Imap = Map.Make (Int)
module Dynbuf = Snorlax_util.Dynbuf

module Vc = struct
  type t = int Imap.t

  let empty = Imap.empty
  let get t k = match Imap.find_opt k t with Some v -> v | None -> 0
  let tick k t = Imap.add k (get t k + 1) t
  let join a b = Imap.union (fun _ x y -> Some (max x y)) a b
  let leq a b = Imap.for_all (fun k v -> v <= get b k) a
end

type access_kind = Read | Write

type event =
  | Access of
      { tid : int; iid : int; addr : int; size : int; kind : access_kind }
  | Free of { tid : int; iid : int; addr : int; size : int }
  | Lock_attempt of { tid : int; iid : int; lock : int }
  | Acquire of { tid : int; iid : int; lock : int }
  | Release of { tid : int; iid : int; lock : int }
  | Fork of { parent : int; child : int; iid : int }
  | Join of { tid : int; target : int; iid : int }
  | Cond_wake of { waker : int; woken : int; cond : int }

type ordering = Racy | Lock_ordered | Enforced

type race = {
  a_iid : int;
  b_iid : int;
  a_kind : access_kind;
  b_kind : access_kind;
}

type verdict =
  | No_conflict
  | Conflict of { ordering : ordering; path : string list }

(* Sync nodes: one per synchronization action, threaded in program order
   within each thread ([n_pos] is the index in the thread's own node
   list) plus labelled cross-thread edges.  Accesses are not nodes — each
   access record remembers how many sync nodes its thread had emitted, so
   a path query starts at the thread's next sync node after the access
   and ends at any sync node preceding the other access. *)
type edge_kind = E_fork | E_join | E_cond | E_lock

type node = {
  n_tid : int;
  n_pos : int;
  n_label : string;
  mutable n_out : (edge_kind * int) list;
}

type tstate = {
  (* Own component starts at 1 so an access epoch is never ≤ the 0 a
     foreign clock reports for threads it has no edge from. *)
  mutable full : Vc.t;
  mutable enf : Vc.t;
  tnodes : int Dynbuf.t; (* node ids, program order *)
  mutable held : (int * int) list; (* lock addr -> acquiring iid *)
}

type arec = {
  r_tid : int;
  r_iid : int;
  r_kind : access_kind;
  r_ep_full : int;
  r_ep_enf : int;
  r_pos : int;
}

(* Weakest ordering observed for a static pair: 0 racy, 1 lock-mediated,
   2 enforced; [pa]/[pb] witness that weakest dynamic instance pair in
   stream order. *)
type pinfo = { mutable cls : int; mutable pa : arec; mutable pb : arec }

type t = {
  threads : (int, tstate) Hashtbl.t;
  lock_clocks : (int, Vc.t) Hashtbl.t;
  last_release : (int, int) Hashtbl.t; (* lock -> release node id *)
  cells : (int, arec list ref) Hashtbl.t; (* addr -> last record per key *)
  mutable franges : (arec * int * int) list; (* free records, [lo, hi) *)
  pairs : (int * int, pinfo) Hashtbl.t;
  kinds : (int, access_kind) Hashtbl.t;
  nodes : node Dynbuf.t;
  ledges : (int * int * int * int * int, unit) Hashtbl.t;
  ledges_order : (int * int * int * int * int) Dynbuf.t;
  mutable events : int;
}

let create () =
  {
    threads = Hashtbl.create 16;
    lock_clocks = Hashtbl.create 16;
    last_release = Hashtbl.create 16;
    cells = Hashtbl.create 1024;
    franges = [];
    pairs = Hashtbl.create 256;
    kinds = Hashtbl.create 256;
    nodes = Dynbuf.create ();
    ledges = Hashtbl.create 64;
    ledges_order = Dynbuf.create ();
    events = 0;
  }

let tstate t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some ts -> ts
  | None ->
    let ts =
      {
        full = Vc.tick tid Vc.empty;
        enf = Vc.tick tid Vc.empty;
        tnodes = Dynbuf.create ();
        held = [];
      }
    in
    Hashtbl.add t.threads tid ts;
    ts

let new_node t ts ~tid ~label =
  let id = Dynbuf.length t.nodes in
  let n = { n_tid = tid; n_pos = Dynbuf.length ts.tnodes; n_label = label; n_out = [] } in
  Dynbuf.push t.nodes n;
  Dynbuf.push ts.tnodes id;
  id

let add_edge t kind ~src ~dst =
  let n = Dynbuf.get t.nodes src in
  n.n_out <- (kind, dst) :: n.n_out

(* 0 racy / 1 lock / 2 enforced for prior record [r] vs the current state
   of the accessing thread. *)
let classify ts (r : arec) =
  if r.r_ep_full <= Vc.get ts.full r.r_tid then
    if r.r_ep_enf <= Vc.get ts.enf r.r_tid then 2 else 1
  else 0

let note_pair t ~(first : arec) ~(second : arec) cls =
  let key =
    if first.r_iid <= second.r_iid then (first.r_iid, second.r_iid)
    else (second.r_iid, first.r_iid)
  in
  match Hashtbl.find_opt t.pairs key with
  | None -> Hashtbl.add t.pairs key { cls; pa = first; pb = second }
  | Some p ->
    if cls < p.cls then begin
      p.cls <- cls;
      p.pa <- first;
      p.pb <- second
    end

let process_access t ~tid ~iid ~addr ~size ~kind ~is_free =
  let ts = tstate t tid in
  Hashtbl.replace t.kinds iid kind;
  let cur =
    {
      r_tid = tid;
      r_iid = iid;
      r_kind = kind;
      r_ep_full = Vc.get ts.full tid;
      r_ep_enf = Vc.get ts.enf tid;
      r_pos = Dynbuf.length ts.tnodes;
    }
  in
  let hi = addr + max 1 size in
  let consider (r : arec) =
    let conflicting =
      (r.r_kind = Write || kind = Write)
      && not (r.r_tid = tid && r.r_iid = iid)
    in
    if conflicting then
      let cls = if r.r_tid = tid then 2 else classify ts r in
      note_pair t ~first:r ~second:cur cls
  in
  (* Prior frees overlapping this byte range always apply. *)
  List.iter
    (fun (r, lo, fhi) -> if lo < hi && addr < fhi then consider r)
    t.franges;
  if is_free then begin
    (* A free conflicts with every recorded cell inside the block; frees
       are rare, so the full-table scan is cheap in practice. *)
    Hashtbl.iter
      (fun a recs -> if a >= addr && a < hi then List.iter consider !recs)
      t.cells;
    t.franges <- (cur, addr, hi) :: t.franges
  end
  else begin
    (match Hashtbl.find_opt t.cells addr with
    | Some recs -> List.iter consider !recs
    | None -> ());
    (* Keep only the newest record per (tid, iid, kind): ordering against
       future accesses through a superseded instance is implied by
       program order to the newer one, so nothing is lost. *)
    let recs =
      match Hashtbl.find_opt t.cells addr with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add t.cells addr r;
        r
    in
    recs :=
      cur
      :: List.filter
           (fun r ->
             not (r.r_tid = tid && r.r_iid = iid && r.r_kind = kind))
           !recs
  end

let feed t event =
  t.events <- t.events + 1;
  match event with
  | Access { tid; iid; addr; size; kind } ->
    process_access t ~tid ~iid ~addr ~size ~kind ~is_free:false
  | Free { tid; iid; addr; size } ->
    process_access t ~tid ~iid ~addr ~size ~kind:Write ~is_free:true
  | Lock_attempt { tid; iid; lock } ->
    let ts = tstate t tid in
    List.iter
      (fun (held, hiid) ->
        if held <> lock then begin
          let e = (tid, held, hiid, lock, iid) in
          if not (Hashtbl.mem t.ledges e) then begin
            Hashtbl.add t.ledges e ();
            Dynbuf.push t.ledges_order e
          end
        end)
      ts.held
  | Acquire { tid; iid; lock } ->
    let ts = tstate t tid in
    (match Hashtbl.find_opt t.lock_clocks lock with
    | Some lc -> ts.full <- Vc.join ts.full lc
    | None -> ());
    let n =
      new_node t ts ~tid
        ~label:(Printf.sprintf "t%d acquires lock 0x%x (iid %d)" tid lock iid)
    in
    (match Hashtbl.find_opt t.last_release lock with
    | Some rel -> add_edge t E_lock ~src:rel ~dst:n
    | None -> ());
    ts.held <- (lock, iid) :: List.remove_assoc lock ts.held
  | Release { tid; iid; lock } ->
    let ts = tstate t tid in
    Hashtbl.replace t.lock_clocks lock ts.full;
    ts.full <- Vc.tick tid ts.full;
    let n =
      new_node t ts ~tid
        ~label:(Printf.sprintf "t%d releases lock 0x%x (iid %d)" tid lock iid)
    in
    Hashtbl.replace t.last_release lock n;
    ts.held <- List.remove_assoc lock ts.held
  | Fork { parent; child; iid } ->
    let ps = tstate t parent in
    let pn =
      new_node t ps ~tid:parent
        ~label:(Printf.sprintf "t%d forks t%d (iid %d)" parent child iid)
    in
    let cs = tstate t child in
    cs.full <- Vc.join cs.full ps.full;
    cs.enf <- Vc.join cs.enf ps.enf;
    ps.full <- Vc.tick parent ps.full;
    ps.enf <- Vc.tick parent ps.enf;
    let cn =
      new_node t cs ~tid:child ~label:(Printf.sprintf "t%d begins" child)
    in
    add_edge t E_fork ~src:pn ~dst:cn
  | Join { tid; target; iid } ->
    let ts = tstate t tid in
    let gs = tstate t target in
    ts.full <- Vc.join ts.full gs.full;
    ts.enf <- Vc.join ts.enf gs.enf;
    let en =
      new_node t gs ~tid:target ~label:(Printf.sprintf "t%d ends" target)
    in
    let jn =
      new_node t ts ~tid
        ~label:(Printf.sprintf "t%d joins t%d (iid %d)" tid target iid)
    in
    add_edge t E_join ~src:en ~dst:jn
  | Cond_wake { waker; woken; cond } ->
    let ws = tstate t waker in
    let vs = tstate t woken in
    vs.full <- Vc.join vs.full ws.full;
    vs.enf <- Vc.join vs.enf ws.enf;
    ws.full <- Vc.tick waker ws.full;
    ws.enf <- Vc.tick waker ws.enf;
    let sn =
      new_node t ws ~tid:waker
        ~label:(Printf.sprintf "t%d signals cond 0x%x" waker cond)
    in
    let wn =
      new_node t vs ~tid:woken
        ~label:(Printf.sprintf "t%d wakes on cond 0x%x" woken cond)
    in
    add_edge t E_cond ~src:sn ~dst:wn

(* Breadth-first search over the sync-node graph from just after access
   [a] to just before access [b]; [allow_lock] selects the full relation
   or the enforced subgraph. *)
let find_path t ~allow_lock (a : arec) (b : arec) =
  let endpoints mid =
    (Printf.sprintf "t%d iid %d" a.r_tid a.r_iid :: mid)
    @ [ Printf.sprintf "t%d iid %d" b.r_tid b.r_iid ]
  in
  if a.r_tid = b.r_tid then
    [
      Printf.sprintf "t%d program order: iid %d precedes iid %d" a.r_tid
        a.r_iid b.r_iid;
    ]
  else
    match Hashtbl.find_opt t.threads a.r_tid with
    | None -> []
    | Some ats ->
      if Dynbuf.length ats.tnodes <= a.r_pos then []
      else begin
        let start = Dynbuf.get ats.tnodes a.r_pos in
        let prev = Hashtbl.create 64 in
        let q = Queue.create () in
        Hashtbl.add prev start (-1);
        Queue.add start q;
        let goal = ref None in
        while !goal = None && not (Queue.is_empty q) do
          let id = Queue.pop q in
          let n = Dynbuf.get t.nodes id in
          if n.n_tid = b.r_tid && n.n_pos < b.r_pos then goal := Some id
          else begin
            let push dst =
              if not (Hashtbl.mem prev dst) then begin
                Hashtbl.add prev dst id;
                Queue.add dst q
              end
            in
            (match Hashtbl.find_opt t.threads n.n_tid with
            | Some nts when n.n_pos + 1 < Dynbuf.length nts.tnodes ->
              push (Dynbuf.get nts.tnodes (n.n_pos + 1))
            | Some _ | None -> ());
            List.iter
              (fun (k, dst) -> if allow_lock || k <> E_lock then push dst)
              n.n_out
          end
        done;
        match !goal with
        | None -> []
        | Some g ->
          let rec walk id acc =
            if id = -1 then acc
            else
              walk (Hashtbl.find prev id)
                ((Dynbuf.get t.nodes id).n_label :: acc)
          in
          endpoints (walk g [])
      end

let pair_verdict t a b =
  let key = (min a b, max a b) in
  match Hashtbl.find_opt t.pairs key with
  | None -> No_conflict
  | Some p ->
    let ordering =
      match p.cls with 0 -> Racy | 1 -> Lock_ordered | _ -> Enforced
    in
    let path =
      match ordering with
      | Racy -> []
      | Lock_ordered -> find_path t ~allow_lock:true p.pa p.pb
      | Enforced -> find_path t ~allow_lock:false p.pa p.pb
    in
    Conflict { ordering; path }

let races t =
  Hashtbl.fold
    (fun (a_iid, b_iid) (p : pinfo) acc ->
      if p.cls = 0 then
        {
          a_iid;
          b_iid;
          a_kind = Hashtbl.find t.kinds a_iid;
          b_kind = Hashtbl.find t.kinds b_iid;
        }
        :: acc
      else acc)
    t.pairs []
  |> List.sort (fun x y -> compare (x.a_iid, x.b_iid) (y.a_iid, y.b_iid))

let lock_edges t = List.of_seq (Dynbuf.to_array t.ledges_order |> Array.to_seq)
let event_count t = t.events
let race_count t = List.length (races t)
