(** Ground-truth happens-before oracle: a vector-clock race detector over
    an observed execution, independent of the trace-processing → points-to
    → patterns → statistics pipeline it cross-checks.

    The engine consumes a linearized event stream (the simulator's
    {!Sim.Hooks} observation hook produces one, but the type here is
    sim-agnostic) and maintains TWO happens-before relations at once:

    - the {e full} relation, with every edge kind — program order, thread
      create/join, condvar signal→wake, and mutex release→acquire;
    - the {e enforced} relation, which drops the lock edges.

    The distinction is what classification needs: fork/join/cond/program
    order hold in {e every} execution of the program, while a
    release→acquire edge merely reflects the order the locks happened to
    be granted in this run — the opposite order is equally possible.  So a
    conflicting pair ordered only by lock edges is still a pair that can
    execute in either order (the bug-pattern sense of "racy"), whereas a
    pair ordered by enforced edges cannot flip, and a diagnosis that
    claims it can is wrong. *)

module Vc : sig
  (** Sparse integer vector clocks (thread id → logical time). *)

  type t

  val empty : t
  val get : t -> int -> int
  (** 0 for components never set. *)

  val tick : int -> t -> t
  (** Increment one component. *)

  val join : t -> t -> t
  (** Pointwise maximum. *)

  val leq : t -> t -> bool
  (** Pointwise ≤ (the happens-before partial order on clocks). *)
end

type access_kind = Read | Write

type event =
  | Access of
      { tid : int; iid : int; addr : int; size : int; kind : access_kind }
      (** a load/store touching [size] bytes at [addr] *)
  | Free of { tid : int; iid : int; addr : int; size : int }
      (** deallocation: a write to the whole [size]-byte block *)
  | Lock_attempt of { tid : int; iid : int; lock : int }
      (** fires whether or not the lock is granted; while other locks are
          held it contributes hold-while-acquiring lock-order edges *)
  | Acquire of { tid : int; iid : int; lock : int }
  | Release of { tid : int; iid : int; lock : int }
  | Fork of { parent : int; child : int; iid : int }
  | Join of { tid : int; target : int; iid : int }
  | Cond_wake of { waker : int; woken : int; cond : int }
      (** a signal/broadcast handed the wakeup to a parked waiter *)

type t

val create : unit -> t

val feed : t -> event -> unit
(** Consume the next event.  Events must arrive in a linearization
    consistent with the execution (the simulator hook order is one). *)

type ordering =
  | Racy  (** no happens-before path at all: a data race *)
  | Lock_ordered
      (** ordered, but only through mutex release→acquire edges — the
          orders can flip between runs, so the pair is a true bug-pattern
          candidate even though this run had no simultaneous access *)
  | Enforced
      (** ordered by program order / fork / join / cond edges that hold in
          every execution: the pair can never execute in the other order *)

type race = {
  a_iid : int;
  b_iid : int;
  a_kind : access_kind;
  b_kind : access_kind;
}
(** A conflicting static pair ([a_iid < b_iid], or [a_iid = b_iid] when
    one instruction races with itself across threads) observed with no
    ordering path. *)

type verdict =
  | No_conflict
      (** the two instructions never touched overlapping memory from
          different dynamic instances, or never conflicted (both reads) *)
  | Conflict of { ordering : ordering; path : string list }
      (** [path] walks the happens-before chain that orders the weakest
          observed instance pair (empty for [Racy] — that is the point:
          no path exists) *)

val pair_verdict : t -> int -> int -> verdict
(** Judgement for a static instruction pair, aggregated over every
    conflicting dynamic instance pair: the weakest ordering observed wins
    ([Racy] < [Lock_ordered] < [Enforced]). *)

val races : t -> race list
(** All racy pairs, sorted by (a_iid, b_iid); duplicate-free. *)

val lock_edges : t -> (int * int * int * int * int) list
(** Hold-while-acquiring facts [(tid, held_lock, held_iid, wanted_lock,
    wanted_iid)]: the thread attempted [wanted_lock] (at [wanted_iid])
    while holding [held_lock] (acquired at [held_iid]).  Chains of these
    with distinct threads and matching addresses witness deadlock
    cycles. *)

val event_count : t -> int
val race_count : t -> int
