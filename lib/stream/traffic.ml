module Report = Snorlax_core.Report
module Prng = Snorlax_util.Prng
module Pool = Snorlax_util.Pool
module Wire = Fleet.Wire
module Inject = Chaos.Inject
module Fault = Chaos.Fault

(* One reproduction of a bug, made once at stream start; endpoints
   re-envelope these reports per incident (the chaos-harness trick), so
   a fleet of hundreds costs one simulator run per scenario, not one per
   endpoint per tick. *)
type baseline = {
  bug : Corpus.Bug.t;
  b_failing : (Report.failing_report * int * Corpus.Runner.sync_profile) list;
  b_success : (Report.success_report * int * Corpus.Runner.sync_profile) list;
  runs_needed : int;
}

type endpoint = {
  ep_id : int;
  ep_bug : int;  (* index into baselines *)
  ep_skew : int;  (* clock offset, nonzero only under Clock_skew *)
  mutable ep_incidents : int;
}

type t = {
  prng : Prng.t;
  config : Pt.Config.t;
  fault : Fault.cls option;
  churn : bool;
  baselines : baseline array;
  mutable eps : endpoint list;  (* alive, oldest first *)
  mutable next_id : int;
  mutable tick_no : int;
  faults : int ref;
}

type batch = {
  tick : int;
  packets : bytes list;
  offered : int;
  incidents : int;
  load : float;
  burst : bool;
  joins : int;
  leaves : int;
  crashes : int;
}

(* Diurnal curve: a 24-tick "day" whose per-endpoint incident probability
   swings between the night floor and the daytime peak, plus occasional
   whole-fleet bursts (a bad deploy, a thundering herd). *)
let diurnal_period = 24
let load_floor = 0.08
let load_peak = 0.45
let burst_p = 0.08
let burst_mult = 3.0

(* Churn event probabilities per tick (only with [churn = true]); a
   crashing endpoint ships a truncated incident and disappears. *)
let join_p = 0.06
let leave_p = 0.04
let crash_p = 0.04

(* Under the Endpoint_death fault class, crashes are the fault itself:
   frequent, counted, and each dead machine is replaced so the fleet
   does not bleed dry over a long run. *)
let death_fault_p = 0.2

let alive t = List.length t.eps
let faults t = !(t.faults)

let add_endpoint t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let skew =
    match t.fault with
    | Some cls -> Inject.skew_offset t.prng ~faults:t.faults cls
    | None -> 0
  in
  let ep =
    {
      ep_id = id;
      ep_bug = id mod Array.length t.baselines;
      ep_skew = skew;
      ep_incidents = 0;
    }
  in
  t.eps <- t.eps @ [ ep ];
  ep

let baseline_of bug (c : Corpus.Runner.collected) =
  {
    bug;
    b_failing =
      List.map2
        (fun r (seed, sync) -> (r, seed, sync))
        c.Corpus.Runner.failing
        (List.combine c.Corpus.Runner.failing_seeds c.Corpus.Runner.failing_sync);
    b_success =
      List.map2
        (fun r (seed, sync) -> (r, seed, sync))
        c.Corpus.Runner.successful
        (List.combine c.Corpus.Runner.success_seeds c.Corpus.Runner.success_sync);
    runs_needed = c.Corpus.Runner.runs_needed;
  }

(* The baseline corpus sweep: one simulator reproduction per bug, fanned
   across a scoped pool.  Per-bug isolation: each lane runs with
   sequential nested decode and a private telemetry context; results
   merge in input order, and failure warnings are (re-)emitted on the
   coordinating domain, so the outcome is identical to the sequential
   loop whatever the pool size. *)
let prepare ?(config = Pt.Config.default) ?jobs bugs =
  let arr = Array.of_list bugs in
  let n = Array.length arr in
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let eff = min (min jobs (Domain.recommended_domain_count ())) n in
  let collect bug = Corpus.Runner.collect bug ~pt_config:config ~seed_base:1 () in
  let results =
    if eff <= 1 then Array.map collect arr
    else begin
      let telemetry = Obs.Scope.enabled () in
      let out = Array.make n None in
      let regs = Array.make n None in
      Pool.with_pool ~jobs:eff (fun pool ->
          Pool.run pool n (fun i ->
              Pool.with_default_jobs 1 @@ fun () ->
              if telemetry then begin
                let c = Obs.Scope.make () in
                regs.(i) <- Some c.Obs.Scope.metrics;
                Obs.Scope.using c (fun () -> out.(i) <- Some (collect arr.(i)))
              end
              else out.(i) <- Some (collect arr.(i))));
      Array.iter (Option.iter Obs.Scope.merge_worker) regs;
      Array.map (function Some r -> r | None -> assert false) out
    end
  in
  List.filter_map
    (fun i ->
      let bug = arr.(i) in
      match results.(i) with
      | Ok c -> Some (baseline_of bug c)
      | Error msg ->
        Obs.Log.warn "stream/baseline_failed"
          ~fields:
            [
              ("bug", Obs.Log.Str bug.Corpus.Bug.id);
              ("reason", Obs.Log.Str msg);
            ];
        None)
    (List.init n Fun.id)

let create ~seed ~endpoints ?(churn = false) ?fault
    ?(config = Pt.Config.default) ?baselines bugs =
  if endpoints < 1 then invalid_arg "Traffic.create: endpoints < 1";
  let baselines =
    match baselines with Some bl -> bl | None -> prepare ~config bugs
  in
  if baselines = [] then invalid_arg "Traffic.create: no bug reproduced";
  let t =
    {
      prng = Prng.create ~seed;
      config;
      fault;
      churn;
      baselines = Array.of_list baselines;
      eps = [];
      next_id = 0;
      tick_no = 0;
      faults = ref 0;
    }
  in
  for _ = 1 to endpoints do
    ignore (add_endpoint t)
  done;
  t

(* One incident: the endpoint's baseline reports re-enveloped with its
   identity and fresh provenance, content faults applied per report.  A
   crashing endpoint ships only a prefix (Endpoint_death semantics). *)
let incident t ep ~truncate =
  ep.ep_incidents <- ep.ep_incidents + 1;
  let b = t.baselines.(ep.ep_bug) in
  let seed_off = (ep.ep_id * Fleet.Endpoint.seed_stride) + ep.ep_incidents in
  let envelope seed (sync : Corpus.Runner.sync_profile) payload =
    {
      Wire.endpoint = ep.ep_id;
      seed = seed + seed_off;
      bug_id = b.bug.Corpus.Bug.id;
      config = t.config;
      prov =
        Some
          {
            Wire.runs = b.runs_needed;
            sync_ops = sync.Corpus.Runner.sync_ops;
            sync_digest = sync.Corpus.Runner.sync_digest;
          };
      payload;
    }
  in
  let damage_f r =
    match t.fault with
    | None -> r
    | Some cls ->
      Inject.damage_failing cls t.prng ~faults:t.faults ~skew:ep.ep_skew r
  in
  let damage_s s =
    match t.fault with
    | None -> s
    | Some cls ->
      Inject.damage_success cls t.prng ~faults:t.faults ~skew:ep.ep_skew s
  in
  let pkts =
    List.map
      (fun (r, seed, sync) ->
        (Inject.F, Wire.encode (envelope seed sync (Wire.Failing (damage_f r)))))
      b.b_failing
    @ List.map
        (fun (s, seed, sync) ->
          (Inject.S, Wire.encode (envelope seed sync (Wire.Success (damage_s s)))))
        b.b_success
  in
  if not truncate then pkts
  else begin
    let n = List.length pkts in
    let keep = if n = 0 then 0 else Prng.int t.prng ~bound:n in
    if t.fault = Some Fault.Endpoint_death then
      t.faults := !(t.faults) + (n - keep);
    List.filteri (fun i _ -> i < keep) pkts
  end

(* Round-robin interleave across this tick's shipments — concurrent
   endpoints do not arrive one after another. *)
let interleave shipments =
  let q = List.map ref shipments in
  let out = ref [] in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    List.iter
      (fun r ->
        match !r with
        | [] -> ()
        | p :: rest ->
          out := p :: !out;
          r := rest;
          progressed := true)
      q
  done;
  List.rev !out

let load_of t tick =
  let phase =
    2.0 *. Float.pi
    *. float_of_int (tick mod diurnal_period)
    /. float_of_int diurnal_period
  in
  let d = load_floor +. ((load_peak -. load_floor) *. 0.5 *. (1.0 +. sin phase)) in
  if Prng.chance t.prng ~p:burst_p then (Float.min 1.0 (d *. burst_mult), true)
  else (d, false)

let tick t =
  let tickno = t.tick_no in
  t.tick_no <- tickno + 1;
  let load, burst = load_of t tickno in
  let joins = ref 0 and leaves = ref 0 and crashes = ref 0 in
  if t.churn then begin
    if Prng.chance t.prng ~p:join_p then begin
      ignore (add_endpoint t);
      incr joins
    end;
    if Prng.chance t.prng ~p:leave_p && List.length t.eps > 1 then begin
      let arr = Array.of_list t.eps in
      let victim = Prng.pick t.prng arr in
      t.eps <- List.filter (fun e -> not (e == victim)) t.eps;
      incr leaves
    end
  end;
  let crash_victim =
    let want =
      (t.churn && Prng.chance t.prng ~p:crash_p)
      || t.fault = Some Fault.Endpoint_death
         && Prng.chance t.prng ~p:death_fault_p
    in
    if want && t.eps <> [] then Some (Prng.pick t.prng (Array.of_list t.eps))
    else None
  in
  let shipments =
    List.filter_map
      (fun ep ->
        let is_victim =
          match crash_victim with Some v -> v == ep | None -> false
        in
        if is_victim then Some (incident t ep ~truncate:true)
        else if Prng.chance t.prng ~p:load then
          Some (incident t ep ~truncate:false)
        else None)
      t.eps
  in
  (match crash_victim with
  | Some v ->
    incr crashes;
    t.eps <- List.filter (fun e -> not (e == v)) t.eps;
    Obs.Log.warn "stream/endpoint_crash"
      ~fields:
        [ ("endpoint", Obs.Log.Int v.ep_id); ("tick", Obs.Log.Int tickno) ];
    (* Under the death fault class the machine is replaced; churn
       crashes shrink the fleet until a join refills it. *)
    if t.fault = Some Fault.Endpoint_death then ignore (add_endpoint t)
  | None -> ());
  let arrival = interleave shipments in
  let arrival =
    match t.fault with
    | None -> arrival
    | Some cls -> Inject.wire_faults cls t.prng ~faults:t.faults arrival
  in
  {
    tick = tickno;
    packets = List.map snd arrival;
    offered = List.length arrival;
    incidents = List.length shipments;
    load;
    burst;
    joins = !joins;
    leaves = !leaves;
    crashes = !crashes;
  }
