module Wire = Fleet.Wire
module Signature = Fleet.Signature
module Report = Snorlax_core.Report

(* A success report held back because no failing report of its bug has
   established a route yet; re-offered (oldest first) when one does. *)
type held = { h_arrival : float; h_trigger_pc : int; h_packet : bytes }

type t = {
  shards : Shard.t array;
  offer : int -> arrival:float -> bytes -> unit;
  modules : (string, Corpus.Bug.built) Hashtbl.t;
  (* bug id -> (watch_pcs, shard) routes, oldest first — mirroring the
     collector's oldest-bucket-wins success routing. *)
  routes : (string, (int list * int) list) Hashtbl.t;
  route_keys : (string, unit) Hashtbl.t;  (* signature keys already routed *)
  pending : (string, held list) Hashtbl.t;  (* newest first *)
  pending_cap : int;
  mutable pending_dropped : int;
  mutable malformed : int;
  mutable received : int;
}

let create ?(pending_cap = 64) ?offer shards modules =
  if Array.length shards = 0 then invalid_arg "Router.create: no shards";
  if pending_cap < 0 then invalid_arg "Router.create: pending_cap < 0";
  {
    shards;
    offer =
      (match offer with
      | Some f -> f
      | None -> fun idx ~arrival packet -> Shard.offer shards.(idx) ~arrival packet);
    modules;
    routes = Hashtbl.create 8;
    route_keys = Hashtbl.create 16;
    pending = Hashtbl.create 8;
    pending_cap;
    pending_dropped = 0;
    malformed = 0;
    received = 0;
  }

let received t = t.received
let malformed t = t.malformed
let pending_dropped t = t.pending_dropped

let pending_held t =
  Hashtbl.fold (fun _ held acc -> acc + List.length held) t.pending 0

let shard_count t = Array.length t.shards

(* The tracker's own copy of the server-build cache logic; shared with
   every shard collector through the same [modules] table, so a scenario
   binary is built once per deployment. *)
let built_for t bug_id =
  match Hashtbl.find_opt t.modules bug_id with
  | Some b -> Ok b
  | None -> (
    match Corpus.Registry.find bug_id with
    | None -> Error (Printf.sprintf "unknown bug id %s" bug_id)
    | Some bug ->
      let b = bug.Corpus.Bug.build () in
      Lir.Irmod.layout b.Corpus.Bug.m;
      Hashtbl.add t.modules bug_id b;
      Ok b)

let shard_of_key t key = Hashtbl.hash key mod Array.length t.shards

let offer_to t idx ~arrival packet = t.offer idx ~arrival packet

let try_route_success t ~arrival ~bug_id ~trigger_pc packet =
  match Hashtbl.find_opt t.routes bug_id with
  | None -> false
  | Some entries -> (
    match
      List.find_opt (fun (pcs, _) -> List.mem trigger_pc pcs) entries
    with
    | Some (_, idx) ->
      offer_to t idx ~arrival packet;
      true
    | None -> false)

let hold_success t ~arrival ~bug_id ~trigger_pc packet =
  let held = Option.value ~default:[] (Hashtbl.find_opt t.pending bug_id) in
  let held = { h_arrival = arrival; h_trigger_pc = trigger_pc; h_packet = packet } :: held in
  let held =
    let n = List.length held in
    if n <= t.pending_cap then held
    else begin
      let evicted = n - t.pending_cap in
      t.pending_dropped <- t.pending_dropped + evicted;
      Obs.Scope.count "stream/tracker_pending_dropped" evicted;
      Obs.Log.info "stream/tracker_pending_evict"
        ~fields:
          [ ("bug", Obs.Log.Str bug_id); ("evicted", Obs.Log.Int evicted) ];
      List.filteri (fun i _ -> i < t.pending_cap) held
    end
  in
  if held = [] then Hashtbl.remove t.pending bug_id
  else Hashtbl.replace t.pending bug_id held

(* A new route may claim successes that beat their failure to the
   tracker; re-offer them oldest first so shard queues (FIFO) preserve
   the fleet's true arrival order. *)
let drain_pending t bug_id =
  match Hashtbl.find_opt t.pending bug_id with
  | None -> ()
  | Some held ->
    let leftover =
      List.filter
        (fun h ->
          not
            (try_route_success t ~arrival:h.h_arrival ~bug_id
               ~trigger_pc:h.h_trigger_pc h.h_packet))
        (List.rev held)
    in
    if leftover = [] then Hashtbl.remove t.pending bug_id
    else Hashtbl.replace t.pending bug_id (List.rev leftover)

let route_failing t ~arrival ~(env : Wire.envelope) (r : Report.failing_report)
    packet =
  match built_for t env.Wire.bug_id with
  | Error _ ->
    (* Unknown bug: any shard's collector will reject and count it. *)
    offer_to t (shard_of_key t env.Wire.bug_id) ~arrival packet
  | Ok built -> (
    let m = built.Corpus.Bug.m in
    match
      Signature.of_failing m ~config:env.Wire.config ~bug_id:env.Wire.bug_id r
    with
    | Error _ ->
      (* Corrupt report: forward anyway so the owning shard's collector
         counts the decode error — the tracker never hides damage. *)
      offer_to t (shard_of_key t env.Wire.bug_id) ~arrival packet
    | Ok s ->
      let key = Signature.key s in
      let idx = shard_of_key t key in
      if not (Hashtbl.mem t.route_keys key) then begin
        Hashtbl.add t.route_keys key ();
        let watch_pcs = Corpus.Runner.watch_pcs_for m r in
        let entries =
          Option.value ~default:[] (Hashtbl.find_opt t.routes env.Wire.bug_id)
        in
        Hashtbl.replace t.routes env.Wire.bug_id
          (entries @ [ (watch_pcs, idx) ]);
        Obs.Scope.count "stream/routes" 1;
        drain_pending t env.Wire.bug_id
      end;
      offer_to t idx ~arrival packet)

let route t packet =
  t.received <- t.received + 1;
  Obs.Scope.count "stream/tracker_received" 1;
  let arrival = Obs.Span.wall_clock_ns () in
  match Wire.decode packet with
  | Error _ ->
    (* Garbage still flows to a shard — the collector is the single
       source of truth for decode-error accounting. *)
    t.malformed <- t.malformed + 1;
    Obs.Scope.count "stream/tracker_malformed" 1;
    offer_to t (Hashtbl.hash packet mod Array.length t.shards) ~arrival packet
  | Ok env -> (
    match env.Wire.payload with
    | Wire.Failing r -> route_failing t ~arrival ~env r packet
    | Wire.Success r ->
      if
        not
          (try_route_success t ~arrival ~bug_id:env.Wire.bug_id
             ~trigger_pc:r.Report.trigger_pc packet)
      then
        hold_success t ~arrival ~bug_id:env.Wire.bug_id
          ~trigger_pc:r.Report.trigger_pc packet)
