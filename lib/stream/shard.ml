module Collector = Fleet.Collector
module Signature = Fleet.Signature

type shed = Drop_oldest | Drop_newest

let shed_name = function
  | Drop_oldest -> "drop-oldest"
  | Drop_newest -> "drop-newest"

let shed_of_name = function
  | "drop-oldest" -> Some Drop_oldest
  | "drop-newest" -> Some Drop_newest
  | _ -> None

type queued = { q_arrival : float; q_packet : bytes }

type t = {
  id : int;
  collector : Collector.t;
  queue : queued Queue.t;
  capacity : int;
  shed : shed;
  high_mark : int;
  low_mark : int;
  mutable above_high : bool;
  mutable peak_depth : int;
  mutable offered : int;
  mutable shed_count : int;
  mutable drained : int;
  mutable ingest_ok : int;
  mutable ingest_err : int;
  mutable high_crossings : int;
  engines : (string, Incremental.t) Hashtbl.t;
  recorder : Obs.Log.Recorder.t;  (* per-shard flight recorder *)
}

let create ~id ?policy ~capacity ~shed ~modules () =
  if capacity < 1 then invalid_arg "Shard.create: capacity < 1";
  {
    id;
    collector = Collector.create ?policy ~modules ();
    queue = Queue.create ();
    capacity;
    shed;
    (* High/low watermarks at 80%/50% of capacity: warn once when ingest
       outruns service, clear once the backlog has genuinely receded. *)
    high_mark = max 1 (capacity * 8 / 10);
    low_mark = capacity / 2;
    above_high = false;
    peak_depth = 0;
    offered = 0;
    shed_count = 0;
    drained = 0;
    ingest_ok = 0;
    ingest_err = 0;
    high_crossings = 0;
    engines = Hashtbl.create 8;
    recorder = Obs.Log.Recorder.create ~capacity:64 ();
  }

let depth t = Queue.length t.queue
let peak_depth t = t.peak_depth
let offered t = t.offered
let shed_count t = t.shed_count
let drained t = t.drained
let ingest_ok t = t.ingest_ok
let ingest_err t = t.ingest_err
let high_crossings t = t.high_crossings
let collector t = t.collector
let recorder t = t.recorder

let check_watermarks t =
  let d = depth t in
  if d > t.peak_depth then t.peak_depth <- d;
  if (not t.above_high) && d >= t.high_mark then begin
    t.above_high <- true;
    t.high_crossings <- t.high_crossings + 1;
    Obs.Scope.count "stream/watermark_high" 1;
    Obs.Log.warn "stream/backpressure_high"
      ~fields:
        [
          ("shard", Obs.Log.Int t.id);
          ("depth", Obs.Log.Int d);
          ("capacity", Obs.Log.Int t.capacity);
        ]
  end
  else if t.above_high && d <= t.low_mark then begin
    t.above_high <- false;
    Obs.Scope.count "stream/watermark_low" 1;
    Obs.Log.info "stream/backpressure_cleared"
      ~fields:[ ("shard", Obs.Log.Int t.id); ("depth", Obs.Log.Int d) ]
  end

let offer t ~arrival packet =
  t.offered <- t.offered + 1;
  Obs.Scope.count "stream/shard_offered" 1;
  let shed_one () =
    t.shed_count <- t.shed_count + 1;
    Obs.Scope.count "stream/shed" 1
  in
  (if Queue.length t.queue >= t.capacity then
     match t.shed with
     | Drop_newest -> shed_one ()  (* reject the arriving packet *)
     | Drop_oldest ->
       (* Evict the head: under overload the freshest reports are the
          ones worth diagnosing. *)
       ignore (Queue.pop t.queue);
       shed_one ();
       Queue.push { q_arrival = arrival; q_packet = packet } t.queue
   else Queue.push { q_arrival = arrival; q_packet = packet } t.queue);
  check_watermarks t

(* Feed the engine the bucket's new report suffix.  Kept lists are
   stable-prefix+append (first-K sampling never replaces an entry), so
   "what the engine has not seen" is exactly the tail past its counts. *)
let sync_engine t (b : Collector.bucket) =
  let key = Signature.key b.Collector.signature in
  let eng =
    match Hashtbl.find_opt t.engines key with
    | Some e -> e
    | None ->
      let built = Collector.built t.collector b in
      let e =
        Incremental.create built.Corpus.Bug.m ~config:b.Collector.config
      in
      Hashtbl.add t.engines key e;
      e
  in
  let feed seen add reports =
    List.iteri (fun i r -> if i >= seen then add eng r) reports
  in
  let new_f = Collector.failing_kept b - Incremental.n_failing eng in
  let new_s = Collector.success_kept b - Incremental.n_successful eng in
  if new_f > 0 then
    feed (Incremental.n_failing eng)
      (fun e r -> Incremental.add_failing e r)
      (Collector.failing b);
  if new_s > 0 then
    feed (Incremental.n_successful eng)
      (fun e r -> Incremental.add_successful e r)
      (Collector.successful b);
  if new_f > 0 || new_s > 0 then
    (* Force the (possibly deferred) re-derivation now, so the latency
       stamps closed after this refresh include the diagnosis work. *)
    ignore (Incremental.results eng);
  eng

let engine t (b : Collector.bucket) =
  Hashtbl.find_opt t.engines (Signature.key b.Collector.signature)

let refresh t = List.iter (fun b -> ignore (sync_engine t b)) (Collector.buckets t.collector)

type serviced = { s_drained : int; s_ok : int; s_err : int }

let service t ~budget latency_hist =
  Obs.Log.with_recorder t.recorder @@ fun () ->
  let drained_arrivals = ref [] in
  let ok = ref 0 and err = ref 0 and n = ref 0 in
  while !n < budget && not (Queue.is_empty t.queue) do
    let q = Queue.pop t.queue in
    t.drained <- t.drained + 1;
    Obs.Scope.count "stream/drained" 1;
    (match Collector.ingest t.collector q.q_packet with
    | Ok () ->
      incr ok;
      t.ingest_ok <- t.ingest_ok + 1;
      drained_arrivals := q.q_arrival :: !drained_arrivals
    | Error _ ->
      incr err;
      t.ingest_err <- t.ingest_err + 1);
    incr n
  done;
  check_watermarks t;
  if !n > 0 then refresh t;
  (* A report is actionable once its bucket's diagnosis reflects it:
     close every successfully ingested packet's latency here, queue wait
     included. *)
  let t_done = Obs.Span.wall_clock_ns () in
  List.iter
    (fun a ->
      let l = t_done -. a in
      Obs.Metrics.observe latency_hist l;
      Obs.Scope.observe "stream/report_to_diagnosis_ns" l)
    !drained_arrivals;
  { s_drained = !n; s_ok = !ok; s_err = !err }
