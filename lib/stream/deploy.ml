module Core = Snorlax_core
module Collector = Fleet.Collector
module Signature = Fleet.Signature

type config = {
  endpoints : int;
  duration_ticks : int;
  shards : int;
  shard_domains : int;
  churn : bool;
  fault : Chaos.Fault.cls option;
  seed : int;
  shed : Shard.shed;
  queue_capacity : int;
  drain_per_tick : int;
}

let default_config =
  {
    endpoints = 32;
    duration_ticks = 48;
    shards = 4;
    shard_domains = 1;
    churn = false;
    fault = None;
    seed = 42;
    shed = Shard.Drop_oldest;
    queue_capacity = 256;
    drain_per_tick = 64;
  }

type progress = {
  p_tick : int;
  p_load : float;
  p_alive : int;
  p_offered : int;  (** cumulative packets the generator emitted *)
  p_shed : int;
  p_drained : int;
  p_depth : int;  (** total queue depth across shards right now *)
  p_buckets : int;
  p_elapsed_ns : float;
}

let watch_line (p : progress) =
  let secs = p.p_elapsed_ns /. 1e9 in
  let rate = if secs > 0.0 then float_of_int p.p_drained /. secs else 0.0 in
  Printf.sprintf
    "[stream] tick %d: load %.2f, %d eps, %d offered / %d shed / %d drained \
     (%.0f/s), depth %d, %d buckets"
    p.p_tick p.p_load p.p_alive p.p_offered p.p_shed p.p_drained rate p.p_depth
    p.p_buckets

type bucket_row = {
  shard : int;
  bug_id : string;
  signature : string;
  endpoints_hit : int;
  failing_kept : int;
  success_kept : int;
  top_pattern : string option;
  top_describe : string option;
  f1 : float;
  root_cause_match : bool;
  batch_agrees : bool;
      (** incremental top pattern == from-scratch batch top pattern *)
  rederives : int;
  fast_updates : int;
}

type summary = {
  cfg : config;
  ticks : int;
  offered : int;  (** packets the traffic generator emitted *)
  tracker_malformed : int;
  shed : int;
  drained : int;
  ingested_ok : int;
  ingest_errors : int;
  tracker_held : int;
  tracker_dropped : int;
  leftover_queue : int;  (** should be 0 after the final drain *)
  bucket_count : int;
  rows : bucket_row list;
  incidents : int;
  joins : int;
  leaves : int;
  crashes : int;
  final_endpoints : int;
  inject_faults : int;
  peak_queue_depth : int;
  watermark_highs : int;
  rederives : int;
  fast_updates : int;
  reports_per_sec : float;  (** sustained: drained / streaming wall seconds *)
  shed_ratio : float;  (** shed / shard-offered *)
  latency_p50_ns : float;
  latency_p99_ns : float;
  shard_latency : (float * float) array;  (** per-shard (p50, p99) queue-wait *)
  domains_used : int;  (** worker domains actually spawned; 0 = inline *)
  agree : bool;  (** every bucket's [batch_agrees] *)
  accounted : bool;  (** offered = shed + drained + leftover, per shard *)
  stream_ns : float;  (** the streaming phase (generator setup excluded) *)
  total_ns : float;
}

let now = Obs.Span.wall_clock_ns

let diagnose_bucket shards shard_idx shard (b : Collector.bucket) =
  let collector = Shard.collector shard in
  let built = Collector.built collector b in
  let gt = built.Corpus.Bug.ground_truth in
  let snap =
    match Shard.engine shard b with
    | Some eng -> Incremental.results eng
    | None -> None
  in
  let top_pattern, top_describe, f1, rc_match =
    match snap with
    | Some { Incremental.top = Some top; _ } ->
      let p = top.Core.Statistics.pattern in
      ( Some (Core.Patterns.id p),
        Some (Core.Patterns.describe built.Corpus.Bug.m p),
        top.Core.Statistics.f1,
        Core.Accuracy.root_cause_match ~diagnosed:p ~ground_truth:gt )
    | _ -> (None, None, 0.0, false)
  in
  (* The lazy cross-check: a from-scratch batch diagnosis over the same
     kept reports must land on the same top pattern.  Cheap here — the
     traces are warm in the shared decode cache. *)
  let batch = Collector.diagnose collector b in
  let batch_top =
    Option.map
      (fun (s : Core.Statistics.scored) -> Core.Patterns.id s.Core.Statistics.pattern)
      batch.Core.Diagnosis.top
  in
  let batch_agrees =
    match (top_pattern, batch_top) with
    | None, None -> true
    | Some a, Some b -> String.equal a b
    | _ -> false
  in
  if not batch_agrees then
    Obs.Log.error "stream/incremental_diverged"
      ~fields:
        [
          ("shard", Obs.Log.Int shard_idx);
          ("bug", Obs.Log.Str b.Collector.signature.Signature.bug_id);
          ( "incremental",
            Obs.Log.Str (Option.value ~default:"-" top_pattern) );
          ("batch", Obs.Log.Str (Option.value ~default:"-" batch_top));
          ("recorder", Obs.Log.Str (Obs.Log.Recorder.dump (Shard.recorder shards.(shard_idx))));
        ];
  {
    shard = shard_idx;
    bug_id = b.Collector.signature.Signature.bug_id;
    signature = Signature.to_string b.Collector.signature;
    endpoints_hit = List.length b.Collector.endpoints;
    failing_kept = Collector.failing_kept b;
    success_kept = Collector.success_kept b;
    top_pattern;
    top_describe;
    f1;
    root_cause_match = rc_match;
    batch_agrees;
    rederives = (match snap with Some s -> s.Incremental.rederives | None -> 0);
    fast_updates =
      (match snap with Some s -> s.Incremental.fast_updates | None -> 0);
  }

let run ?tick ?baselines cfg bugs =
  if cfg.shards < 1 then invalid_arg "Stream.Deploy.run: shards < 1";
  if cfg.shard_domains < 1 then
    invalid_arg "Stream.Deploy.run: shard_domains < 1";
  if cfg.duration_ticks < 1 then
    invalid_arg "Stream.Deploy.run: duration_ticks < 1";
  Obs.Scope.with_span "stream"
    ~args:
      [
        ("endpoints", Obs.Span.Int cfg.endpoints);
        ("shards", Obs.Span.Int cfg.shards);
        ("domains", Obs.Span.Int cfg.shard_domains);
        ("ticks", Obs.Span.Int cfg.duration_ticks);
      ]
  @@ fun () ->
  let t0 = now () in
  let traffic =
    Traffic.create ~seed:cfg.seed ~endpoints:cfg.endpoints ~churn:cfg.churn
      ?fault:cfg.fault ?baselines bugs
  in
  let modules = Hashtbl.create 8 in
  let shards =
    Array.init cfg.shards (fun id ->
        Shard.create ~id ~capacity:cfg.queue_capacity ~shed:cfg.shed ~modules
          ())
  in
  (* Same private-registry trick as the batch fleet: the summary's
     latency percentiles exist with telemetry off.  One registry per
     shard so each worker domain writes only its own histogram; the
     fleet-wide percentiles come from a merge at the end. *)
  let latency_regs = Array.init cfg.shards (fun _ -> Obs.Metrics.create ()) in
  let latency_hists =
    Array.map (fun r -> Obs.Metrics.histogram r "latency_ns") latency_regs
  in
  let svc =
    Service.create ~shards ~latency:latency_hists ~domains:cfg.shard_domains
  in
  (* [stop] is idempotent: the happy path retires the workers inside the
     timed region below; this protect only covers exceptional exits. *)
  Fun.protect ~finally:(fun () -> Service.stop svc) @@ fun () ->
  let router = Router.create ~offer:(Service.offer svc) shards modules in
  let offered = ref 0 in
  let incidents = ref 0 in
  let joins = ref 0 and leaves = ref 0 and crashes = ref 0 in
  let depth_total () =
    Array.fold_left (fun acc s -> acc + Shard.depth s) 0 shards
  in
  let bucket_total () =
    Array.fold_left
      (fun acc s -> acc + List.length (Collector.buckets (Shard.collector s)))
      0 shards
  in
  (* The streaming phase proper: generate, route, service — per tick. *)
  let t_stream0 = now () in
  for _ = 1 to cfg.duration_ticks do
    let batch = Traffic.tick traffic in
    offered := !offered + batch.Traffic.offered;
    incidents := !incidents + batch.Traffic.incidents;
    joins := !joins + batch.Traffic.joins;
    leaves := !leaves + batch.Traffic.leaves;
    crashes := !crashes + batch.Traffic.crashes;
    List.iter (Router.route router) batch.Traffic.packets;
    Service.service_all svc ~budget:cfg.drain_per_tick;
    match tick with
    | Some f ->
      f
        {
          p_tick = batch.Traffic.tick;
          p_load = batch.Traffic.load;
          p_alive = Traffic.alive traffic;
          p_offered = !offered;
          p_shed = Array.fold_left (fun a s -> a + Shard.shed_count s) 0 shards;
          p_drained = Array.fold_left (fun a s -> a + Shard.drained s) 0 shards;
          p_depth = depth_total ();
          p_buckets = bucket_total ();
          p_elapsed_ns = now () -. t_stream0;
        }
    | None -> ()
  done;
  (* Fleet gone quiet: drain the backlog (bounded — every pass shrinks
     the queues, but guard against a zero-budget misconfiguration). *)
  let guard = ref (cfg.queue_capacity * cfg.shards + 1) in
  while depth_total () > 0 && !guard > 0 do
    Service.service_all svc ~budget:(max 1 cfg.drain_per_tick);
    decr guard
  done;
  (* Retire the workers before timing ends: the join is part of the
     service's cost, and after [stop] every shard is plain data again. *)
  let domains_used = Service.domains svc in
  Service.stop svc;
  let t_streamed = now () in
  let rows =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun idx s ->
              List.map
                (diagnose_bucket shards idx s)
                (Collector.buckets (Shard.collector s)))
            shards))
  in
  let t_done = now () in
  let sum f = Array.fold_left (fun a s -> a + f s) 0 shards in
  let shard_offered = sum Shard.offered in
  let shed = sum Shard.shed_count in
  let drained = sum Shard.drained in
  let leftover = depth_total () in
  let accounted =
    Array.for_all
      (fun s ->
        Shard.offered s
        = Shard.shed_count s + Shard.drained s + Shard.depth s)
      shards
  in
  let stream_ns = t_streamed -. t_stream0 in
  let secs = stream_ns /. 1e9 in
  let shed_ratio =
    if shard_offered = 0 then 0.0
    else float_of_int shed /. float_of_int shard_offered
  in
  Obs.Scope.set_gauge "stream/shed_ratio" shed_ratio;
  let fleet_reg = Obs.Metrics.create () in
  Array.iter (fun r -> Obs.Metrics.merge ~into:fleet_reg r) latency_regs;
  let fleet_hist = Obs.Metrics.histogram fleet_reg "latency_ns" in
  let shard_latency =
    Array.map
      (fun h ->
        ( Obs.Metrics.percentile h ~p:50.0,
          Obs.Metrics.percentile h ~p:99.0 ))
      latency_hists
  in
  {
    cfg;
    ticks = cfg.duration_ticks;
    offered = !offered;
    tracker_malformed = Router.malformed router;
    shed;
    drained;
    ingested_ok = sum Shard.ingest_ok;
    ingest_errors = sum Shard.ingest_err;
    tracker_held = Router.pending_held router;
    tracker_dropped = Router.pending_dropped router;
    leftover_queue = leftover;
    bucket_count = List.length rows;
    rows;
    incidents = !incidents;
    joins = !joins;
    leaves = !leaves;
    crashes = !crashes;
    final_endpoints = Traffic.alive traffic;
    inject_faults = Traffic.faults traffic;
    peak_queue_depth =
      Array.fold_left (fun a s -> max a (Shard.peak_depth s)) 0 shards;
    watermark_highs = sum Shard.high_crossings;
    rederives =
      List.fold_left (fun a (r : bucket_row) -> a + r.rederives) 0 rows;
    fast_updates =
      List.fold_left (fun a (r : bucket_row) -> a + r.fast_updates) 0 rows;
    reports_per_sec =
      (if secs > 0.0 then float_of_int drained /. secs else 0.0);
    shed_ratio;
    latency_p50_ns = Obs.Metrics.percentile fleet_hist ~p:50.0;
    latency_p99_ns = Obs.Metrics.percentile fleet_hist ~p:99.0;
    shard_latency;
    domains_used;
    agree = List.for_all (fun r -> r.batch_agrees) rows;
    accounted;
    stream_ns;
    total_ns = t_done -. t0;
  }
