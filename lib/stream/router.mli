(** The tracker of the MogileFS-style tracker/worker split: a thin,
    stateless-per-packet front tier that decodes only the envelope,
    computes the crash {!Fleet.Signature}, and hashes it to the owning
    {!Shard} — so every report of one bucket lands on one worker and
    shards never coordinate.

    Success reports carry no signature; the tracker routes them by
    trigger pc against the watch-pc routes that failing reports
    establish (oldest route wins, mirroring the collector).  A success
    that beats its failure to the tracker is held in a bounded
    drop-oldest pool and re-offered when the route appears.

    The signature computation decodes the failing ring — the same decode
    the owning shard's collector performs again; both go through the
    shared {!Pt.Decode_cache}, so the second is a memo hit. *)

type t

val create :
  ?pending_cap:int ->
  ?offer:(int -> arrival:float -> bytes -> unit) ->
  Shard.t array ->
  (string, Corpus.Bug.built) Hashtbl.t ->
  t
(** [pending_cap] (default 64) bounds the held-success pool per bug.
    The modules table must be the one the shards share.  [offer]
    overrides how a routed packet reaches shard [idx] (default: direct
    {!Shard.offer}) — the shard-per-domain {!Service} passes its channel
    enqueue here so routing decisions stay on this domain while queue
    mutations move to the owning worker.  Raises [Invalid_argument] on
    an empty shard array or negative cap. *)

val route : t -> bytes -> unit
(** Route one packet, stamping its arrival time.  Total: malformed
    packets are hashed to a shard on raw bytes and forwarded — the
    shard's collector is the single source of truth for decode-error
    accounting, the tracker never swallows a packet (it only ever holds
    routable-later successes). *)

val received : t -> int

val malformed : t -> int
(** Packets whose envelope did not decode at the tracker (still
    forwarded). *)

val pending_held : t -> int
(** Successes currently held for a route. *)

val pending_dropped : t -> int
(** Held successes evicted by the drop-oldest pool cap. *)

val shard_count : t -> int
