module Pool = Snorlax_util.Pool

(* Commands flow one way, router domain -> worker domain, through a
   bounded SPSC channel (one producer: the deploy loop; one consumer:
   the owning worker).  FIFO order is the whole correctness story: all
   of a tick's [Packet]s for a shard precede its [Service], so the
   worker replays exactly the per-shard operation sequence the inline
   path would have run — shed decisions, drain order and therefore
   bucket tables are byte-identical whatever the domain count. *)
type cmd =
  | Packets of (int * float * bytes) list
      (* (shard, arrival, packet) offers in arrival order — a tick's
         worth batched into one channel item so the handoff costs one
         lock round-trip per flush, not one per packet *)
  | Service of { shard : int; budget : int }
  | Stop

type chan = {
  m : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  acked : Condition.t;
  q : cmd Queue.t;
  cap : int;
  mutable issued : int;  (* Service cmds pushed (producer side) *)
  mutable serviced : int;  (* Service cmds completed (consumer side) *)
  mutable failed : exn option;  (* worker death, re-raised on the producer *)
}

type worker = {
  w_chan : chan;
  w_ctx : Obs.Scope.ctx option;  (* private telemetry, merged at [stop] *)
  w_domain : unit Domain.t;
}

type t = {
  shards : Shard.t array;
  latency : Obs.Metrics.histogram array;
  workers : worker array;  (* [||] = inline (single-domain) mode *)
  chan_of : int array;  (* shard index -> worker index *)
  pending : (int * float * bytes) list ref array;
      (* per-worker offer buffer (newest first), owned by the submitting
         domain; flushed as one [Packets] item before each barrier *)
  mutable stopped : bool;
}

(* Deep enough that a burst tick rarely blocks the router; blocking is
   still correct (the consumer always drains), it just serializes. *)
let chan_capacity = 1024

let make_chan () =
  {
    m = Mutex.create ();
    nonempty = Condition.create ();
    nonfull = Condition.create ();
    acked = Condition.create ();
    q = Queue.create ();
    cap = chan_capacity;
    issued = 0;
    serviced = 0;
    failed = None;
  }

let take c =
  Mutex.lock c.m;
  while Queue.is_empty c.q do
    Condition.wait c.nonempty c.m
  done;
  let cmd = Queue.pop c.q in
  Condition.signal c.nonfull;
  Mutex.unlock c.m;
  cmd

let put c cmd =
  Mutex.lock c.m;
  while Queue.length c.q >= c.cap && c.failed = None do
    Condition.wait c.nonfull c.m
  done;
  match c.failed with
  | Some e ->
    Mutex.unlock c.m;
    raise e
  | None ->
    (match cmd with Service _ -> c.issued <- c.issued + 1 | _ -> ());
    Queue.push cmd c.q;
    Condition.signal c.nonempty;
    Mutex.unlock c.m

let ack c =
  Mutex.lock c.m;
  c.serviced <- c.serviced + 1;
  Condition.broadcast c.acked;
  Mutex.unlock c.m

let fail c e =
  Mutex.lock c.m;
  if c.failed = None then c.failed <- Some e;
  Condition.broadcast c.acked;
  Condition.broadcast c.nonfull;
  Mutex.unlock c.m

(* The worker owns its assigned shards outright: every offer, drain,
   collector ingest and incremental-engine update for those shards runs
   here and only here.  Nested decode stays sequential
   ([with_default_jobs 1]) so worker lanes never contend for the shared
   pool, and each shard's events are captured into that shard's flight
   recorder exactly as the inline path does during [Shard.service]. *)
let worker_loop shards latency chan ctx =
  let body () =
    Pool.with_default_jobs 1 @@ fun () ->
    let running = ref true in
    while !running do
      match take chan with
      | Packets offers ->
        List.iter
          (fun (shard, arrival, packet) ->
            Obs.Log.with_recorder
              (Shard.recorder shards.(shard))
              (fun () -> Shard.offer shards.(shard) ~arrival packet))
          offers
      | Service { shard; budget } ->
        ignore (Shard.service shards.(shard) ~budget latency.(shard));
        ack chan
      | Stop -> running := false
    done
  in
  let run () = match ctx with Some c -> Obs.Scope.using c body | None -> body () in
  try run () with e -> fail chan e

let create ~shards ~latency ~domains =
  let n = Array.length shards in
  if Array.length latency <> n then
    invalid_arg "Service.create: latency/shards length mismatch";
  if domains <= 1 || n = 0 then
    {
      shards;
      latency;
      workers = [||];
      chan_of = [||];
      pending = [||];
      stopped = false;
    }
  else begin
    let eff = min domains n in
    let telemetry = Obs.Scope.enabled () in
    let workers =
      Array.init eff (fun _ ->
          let chan = make_chan () in
          let ctx = if telemetry then Some (Obs.Scope.make ()) else None in
          {
            w_chan = chan;
            w_ctx = ctx;
            w_domain =
              Domain.spawn (fun () -> worker_loop shards latency chan ctx);
          })
    in
    let chan_of = Array.init n (fun s -> s mod eff) in
    let pending = Array.init eff (fun _ -> ref []) in
    { shards; latency; workers; chan_of; pending; stopped = false }
  end

let domains t = Array.length t.workers

let inline t = Array.length t.workers = 0

let offer t idx ~arrival packet =
  if inline t then Shard.offer t.shards.(idx) ~arrival packet
  else begin
    let buf = t.pending.(t.chan_of.(idx)) in
    buf := (idx, arrival, packet) :: !buf
  end

let flush t w =
  let buf = t.pending.(w) in
  match !buf with
  | [] -> ()
  | offers ->
    buf := [];
    put t.workers.(w).w_chan (Packets (List.rev offers))

(* Issue one budgeted drain per shard, then barrier on every worker's
   service ack.  On return all workers are quiescent (their queues are
   empty and no command is in flight), so the caller may read shard
   state directly — the ack travels through the channel mutex, which
   establishes the happens-before edge for those reads. *)
let service_all t ~budget =
  if inline t then
    Array.iteri
      (fun i s -> ignore (Shard.service s ~budget t.latency.(i)))
      t.shards
  else begin
    Array.iteri (fun w _ -> flush t w) t.workers;
    Array.iteri
      (fun s _ ->
        put t.workers.(t.chan_of.(s)).w_chan (Service { shard = s; budget }))
      t.shards;
    Array.iter
      (fun w ->
        let c = w.w_chan in
        Mutex.lock c.m;
        while c.serviced < c.issued && c.failed = None do
          Condition.wait c.acked c.m
        done;
        let f = c.failed in
        Mutex.unlock c.m;
        match f with Some e -> raise e | None -> ())
      t.workers
  end

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iteri (fun w _ -> try flush t w with _ -> ()) t.workers;
    Array.iter (fun w -> (try put w.w_chan Stop with _ -> ())) t.workers;
    Array.iter (fun w -> Domain.join w.w_domain) t.workers;
    Array.iter
      (fun w ->
        match w.w_ctx with
        | Some c -> Obs.Scope.merge_worker c.Obs.Scope.metrics
        | None -> ())
      t.workers
  end
