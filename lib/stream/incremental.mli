(** Incremental per-bucket diagnosis: the resident form of the batch
    pipeline ({!Snorlax_core.Diagnosis.diagnose}) for a mothership that
    never stops receiving reports.

    The engine caches one trace processing per report it has seen (so a
    trace is decoded exactly once, and even that through the shared
    {!Pt.Decode_cache}) and maintains per-pattern presence counts.  Two
    update regimes:

    - {b Fast path} — the new report's executed-instruction set is a
      subset of what the bucket has already seen (the common fleet case:
      another endpoint hitting the same schedule).  Nothing derived from
      the executed union can change, so the update is one
      {!Snorlax_core.Patterns.present_in} sweep over the candidate
      patterns — no points-to, no pattern generation, no re-walk of old
      traces.
    - {b Re-derive} — the report executed new code.  The points-to
      scope, candidate set and patterns are recomputed (batch stages
      3–6) and presences recounted over the {e cached} trace
      processings; deferred until the next {!results} call so a burst of
      novel reports costs one re-derivation.

    Both regimes produce byte-for-byte the scored list a from-scratch
    {!Snorlax_core.Diagnosis.diagnose} over the same reports would:
    presence counts are order-independent, and {!results} ranks through
    the exact {!Snorlax_core.Statistics.rank} comparator with the first
    failing trace as the proximity tie-breaker, just like the batch. *)

type t

type snapshot = {
  scored : Snorlax_core.Statistics.scored list;
      (** every candidate pattern, ranked exactly as the batch ranks *)
  top : Snorlax_core.Statistics.scored option;
  unique_top : bool;
  anchor_iid : int;
  snap_failing : int;  (** failing reports folded in so far *)
  snap_successful : int;
  rederives : int;  (** full re-derivations performed (>= 1 once diagnosed) *)
  fast_updates : int;  (** counter-only updates — the incremental win *)
}

val create : Lir.Irmod.t -> config:Pt.Config.t -> t
(** One engine per bucket; [m] is the server's build of the bucket's
    scenario, [config] the tracer parameters its reports decode under. *)

val add_failing :
  t ->
  ?jobs:int ->
  ?cache:Pt.Decode_cache.t ->
  Snorlax_core.Report.failing_report ->
  unit
(** Fold one failing report in (decodes its traces once, caching the
    trace processing).  The first failing report anchors the diagnosis,
    exactly as in the batch pipeline. *)

val add_successful :
  t ->
  ?jobs:int ->
  ?cache:Pt.Decode_cache.t ->
  Snorlax_core.Report.success_report ->
  unit

val results : t -> snapshot option
(** Current diagnosis, re-deriving first if a report grew the executed
    union since the last call.  [None] until a failing report arrives —
    successes alone anchor nothing. *)

val n_failing : t -> int
(** Reports folded in so far — what a caller feeding the engine from a
    collector bucket's stable-prefix report lists uses to find the new
    suffix. *)

val n_successful : t -> int

val rederives : t -> int

val fast_updates : t -> int
