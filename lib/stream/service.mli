(** The shard-per-domain service plane: each {!Shard} (or a round-robin
    group of them when fewer domains than shards are requested) is owned
    by one worker domain, fed by a bounded SPSC command channel from the
    router's domain.

    Ownership is the safety argument.  The router, traffic generator,
    module-build table and pending-success pool stay on the submitting
    domain; a shard's queue, collector, incremental engines, flight
    recorder and accounting counters are touched only by the one worker
    that owns the shard.  The two phases never overlap: while the router
    routes (and may build modules into the shared table), workers only
    execute queue offers, which read no shared state; while workers
    service (collector ingest, decode, diagnosis — reading the module
    table), the router domain is blocked in the {!service_all} barrier.
    Worker telemetry lands in private {!Obs.Scope} contexts merged at
    {!stop}; nested decode inside a worker is pinned sequential via
    [Pool.with_default_jobs 1].

    Determinism: commands are FIFO per channel and all of a tick's
    offers precede its drain, so each shard replays exactly the
    per-shard operation sequence of the single-domain path — bucket
    tables and the [offered = shed + drained + depth] accounting are
    byte-identical whatever the domain count. *)

type t

val create :
  shards:Shard.t array ->
  latency:Obs.Metrics.histogram array ->
  domains:int ->
  t
(** [domains <= 1] (or no shards) selects inline mode: no domains are
    spawned and every call runs on the caller.  Otherwise
    [min domains (Array.length shards)] workers are spawned and shards
    are assigned round-robin.  [latency.(i)] receives shard [i]'s
    queue-wait latency observations; with workers, each histogram is
    written only by the worker owning shard [i] — give every shard its
    own histogram.  Raises [Invalid_argument] on a length mismatch. *)

val domains : t -> int
(** Spawned worker domains; 0 in inline mode. *)

val offer : t -> int -> arrival:float -> bytes -> unit
(** Enqueue a packet for shard [idx] (directly in inline mode).  With
    workers, offers buffer on the submitting domain and ship to the
    owning worker as one batched channel item at the next
    {!service_all} (or {!stop}) — same per-shard FIFO order, a fraction
    of the lock traffic.  Never drops — shed policy applies at the shard
    queue, exactly as inline. *)

val service_all : t -> budget:int -> unit
(** One budgeted {!Shard.service} per shard, then a full barrier.  On
    return every worker is quiescent, so the caller may read shard
    state (depth, counters, buckets) directly.  Re-raises a worker's
    exception on the calling domain. *)

val stop : t -> unit
(** Send stop, join the workers, and fold their private telemetry into
    the ambient scope.  Idempotent; a no-op in inline mode.  Call after
    the final drain, before reading fleet-wide results. *)
