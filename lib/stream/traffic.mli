(** The seeded traffic generator: a simulated production fleet whose
    endpoints hit corpus bugs on diurnal/bursty load curves, with
    optional endpoint churn (join/leave/crash) and an optional
    {!Chaos.Fault} class injected into every shipment.

    Each scenario is reproduced {e once} at stream start (the expensive
    simulator runs); endpoints then re-envelope the baseline reports per
    incident with their own identity, seeds and provenance — the same
    replay trick the chaos harness uses, which is what makes hundreds of
    endpoints over thousands of ticks affordable.  Everything is a pure
    function of [seed]. *)

type t

type batch = {
  tick : int;
  packets : bytes list;  (** encoded wire packets, in arrival order *)
  offered : int;  (** [List.length packets] *)
  incidents : int;  (** endpoints that shipped this tick *)
  load : float;  (** per-endpoint incident probability used this tick *)
  burst : bool;  (** whether a burst multiplier fired *)
  joins : int;
  leaves : int;
  crashes : int;
}

val diurnal_period : int
(** Ticks per simulated "day" (24). *)

type baseline
(** One bug's reproduced reports, ready to re-envelope per incident. *)

val prepare :
  ?config:Pt.Config.t -> ?jobs:int -> Corpus.Bug.t list -> baseline list
(** Reproduce each bug once (the expensive simulator runs), fanning the
    corpus across a scoped domain pool ([jobs] lanes, default
    {!Snorlax_util.Pool.default_jobs}; nested decode inside each lane is
    sequential).  Results keep input order and bugs that fail to
    reproduce are dropped with a [stream/baseline_failed] warning, so
    the output is identical to a sequential loop.  Prepared baselines
    can feed several {!create} calls — e.g. a 1-domain and a 4-domain
    run of the same scenario sharing one reproduction. *)

val create :
  seed:int ->
  endpoints:int ->
  ?churn:bool ->
  ?fault:Chaos.Fault.cls ->
  ?config:Pt.Config.t ->
  ?baselines:baseline list ->
  Corpus.Bug.t list ->
  t
(** Reproduce each bug once and spin up [endpoints] endpoints, assigned
    to scenarios round-robin.  Raises [Invalid_argument] when
    [endpoints < 1] or no bug reproduces.  [churn] enables per-tick
    join/leave/crash events; [fault] applies one chaos class to every
    report (content faults) and every tick's arrival stream (wire
    faults).  A crashing endpoint ships a truncated prefix of its
    incident — the [Endpoint_death] semantics — whether the crash came
    from churn or from the fault class.  [baselines] (from {!prepare},
    with the same [config]) skips the reproduction step; [bugs] is then
    ignored. *)

val tick : t -> batch
(** Advance one tick: decide churn, let each alive endpoint ship an
    incident with the current load probability, interleave shipments
    round-robin, apply wire faults. *)

val alive : t -> int
(** Currently alive endpoints. *)

val faults : t -> int
(** Cumulative fault-injection events (0 when [fault] is [None]). *)
