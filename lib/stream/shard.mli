(** One diagnosis worker (the MogileFS worker to {!Router}'s tracker): a
    bounded ingest queue with explicit shedding, a {!Fleet.Collector}
    owning the buckets hashed to this shard, and one {!Incremental}
    engine per bucket kept in sync after every drain.

    Backpressure is explicit: the queue never grows past [capacity];
    overload sheds per the configured policy and crossing the 80%/50%
    watermarks emits [stream/backpressure_high]/[_cleared] log events
    and [stream/watermark_*] counters. *)

type shed =
  | Drop_oldest
      (** evict the queue head to admit the new packet — freshest
          reports win under overload *)
  | Drop_newest  (** reject the arriving packet — the backlog wins *)

val shed_name : shed -> string
(** ["drop-oldest"] / ["drop-newest"]. *)

val shed_of_name : string -> shed option

type t

val create :
  id:int ->
  ?policy:Fleet.Collector.policy ->
  capacity:int ->
  shed:shed ->
  modules:(string, Corpus.Bug.built) Hashtbl.t ->
  unit ->
  t
(** [modules] shares the server-side scenario builds across all shards
    (and the router).  Raises [Invalid_argument] when [capacity < 1]. *)

val offer : t -> arrival:float -> bytes -> unit
(** Enqueue one packet stamped with its router-arrival time, shedding
    per policy when the queue is full.  Never blocks, never drops
    silently — every shed increments [stream/shed]. *)

type serviced = { s_drained : int; s_ok : int; s_err : int }

val service : t -> budget:int -> Obs.Metrics.histogram -> serviced
(** Drain up to [budget] packets into the collector, then refresh every
    bucket's incremental engine and close the drained packets'
    report→diagnosis latency stamps into the histogram (queue wait
    included).  Runs under the shard's flight recorder. *)

val refresh : t -> unit
(** Sync every bucket's engine without draining (used after out-of-band
    ingest in tests). *)

val engine : t -> Fleet.Collector.bucket -> Incremental.t option
(** The incremental engine owning this bucket, if it has been synced. *)

val collector : t -> Fleet.Collector.t

val recorder : t -> Obs.Log.Recorder.t
(** The shard's flight recorder: the last 64 log events that fired while
    it was servicing — dumped when an invariant breaks. *)

(** {2 Accounting} — [offered = shed + drained + depth] always holds. *)

val depth : t -> int

val peak_depth : t -> int

val offered : t -> int

val shed_count : t -> int

val drained : t -> int

val ingest_ok : t -> int

val ingest_err : t -> int

val high_crossings : t -> int
(** Times the queue rose through the high watermark. *)
