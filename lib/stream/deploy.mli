(** The continuous deployment loop: {!Traffic} generates, {!Router}
    shards, {!Shard}s drain and incrementally diagnose — tick after
    tick, with an explicit final drain when the fleet goes quiet.  This
    is the long-lived form of {!Fleet.Deploy.run}'s one-shot batch. *)

type config = {
  endpoints : int;  (** initial fleet size *)
  duration_ticks : int;
  shards : int;
  shard_domains : int;
      (** worker domains for the {!Service} plane; 1 = inline
          single-domain servicing (the historical behaviour).  Results
          are byte-identical whatever the value — only wall-clock
          changes. *)
  churn : bool;  (** per-tick join/leave/crash events *)
  fault : Chaos.Fault.cls option;  (** one chaos class over the whole stream *)
  seed : int;
  shed : Shard.shed;
  queue_capacity : int;  (** per-shard ingest queue bound *)
  drain_per_tick : int;  (** per-shard service budget per tick *)
}

val default_config : config
(** 32 endpoints, 48 ticks (two diurnal days), 4 shards, 1 domain, no
    churn, no fault, seed 42, drop-oldest, capacity 256, budget 64. *)

type progress = {
  p_tick : int;
  p_load : float;
  p_alive : int;
  p_offered : int;
  p_shed : int;
  p_drained : int;
  p_depth : int;
  p_buckets : int;
  p_elapsed_ns : float;
}
(** What [?tick] sees after every tick's route+service round — the hook
    behind [snorlax stream --watch]. *)

val watch_line : progress -> string
(** The [--watch] snapshot line (no trailing newline). *)

type bucket_row = {
  shard : int;
  bug_id : string;
  signature : string;
  endpoints_hit : int;
  failing_kept : int;
  success_kept : int;
  top_pattern : string option;
  top_describe : string option;
  f1 : float;
  root_cause_match : bool;
  batch_agrees : bool;
      (** the incremental engine's top pattern equals a from-scratch
          batch diagnosis over the same kept reports — checked per
          bucket at the end of every run *)
  rederives : int;
  fast_updates : int;
}

type summary = {
  cfg : config;
  ticks : int;
  offered : int;
  tracker_malformed : int;
  shed : int;
  drained : int;
  ingested_ok : int;
  ingest_errors : int;
  tracker_held : int;
  tracker_dropped : int;
  leftover_queue : int;
  bucket_count : int;
  rows : bucket_row list;
  incidents : int;
  joins : int;
  leaves : int;
  crashes : int;
  final_endpoints : int;
  inject_faults : int;
  peak_queue_depth : int;
  watermark_highs : int;
  rederives : int;
  fast_updates : int;
  reports_per_sec : float;
      (** sustained server throughput: drained / streaming wall seconds *)
  shed_ratio : float;  (** shed / shard-offered *)
  latency_p50_ns : float;
      (** report→diagnosis latency, fleet-wide: router arrival to
          completion of the refresh that folded the report in — queue
          wait included *)
  latency_p99_ns : float;
  shard_latency : (float * float) array;
      (** per-shard (p50, p99) of the same latency, one entry per shard
          — the tail of a hot shard is visible even when the fleet-wide
          percentile looks healthy *)
  domains_used : int;
      (** worker domains the service plane actually spawned (0 when
          running inline) *)
  agree : bool;  (** every bucket's [batch_agrees] *)
  accounted : bool;
      (** offered = shed + drained + depth held per shard — the
          backpressure accounting invariant *)
  stream_ns : float;
  total_ns : float;
}

val run :
  ?tick:(progress -> unit) ->
  ?baselines:Traffic.baseline list ->
  config ->
  Corpus.Bug.t list ->
  summary
(** Raises [Invalid_argument] on a non-positive shard count, domain
    count or duration (and whatever {!Traffic.create} raises).
    [baselines] (from {!Traffic.prepare}) skips the per-bug reproduction
    step — share one reproduction across runs when benchmarking the same
    scenario at several domain counts. *)
