module Core = Snorlax_core
module Tp = Core.Trace_processing
module Report = Core.Report

(* Per-pattern presence counts.  These are the only state the statistics
   stage (§4.5) actually needs: F1 is a pure function of how many
   failing/successful runs a pattern appeared in. *)
type entry = {
  pattern : Core.Patterns.t;
  mutable in_failing : int;
  mutable in_successful : int;
}

(* Everything derived from the executed-instruction union: the hybrid
   points-to solution, the anchor, and the candidate pattern set.  Valid
   until a new report executes code outside the union. *)
type derived = {
  points_to : Analysis.Pointsto.t;
  anchor_iid : int;
  entries : entry list;  (* in pattern-generation order, like the batch *)
}

type t = {
  m : Lir.Irmod.t;
  config : Pt.Config.t;
  mutable first : Report.failing_report option;
  mutable first_tp : Tp.t option;
  mutable failing_tps_rev : Tp.t list;  (* cached, newest first *)
  mutable success_tps_rev : Tp.t list;
  mutable n_failing : int;
  mutable n_successful : int;
  mutable executed : Tp.Iset.t;
  mutable derived : derived option;  (* None = stale, re-derive on demand *)
  mutable rederives : int;
  mutable fast_updates : int;
}

type snapshot = {
  scored : Core.Statistics.scored list;
  top : Core.Statistics.scored option;
  unique_top : bool;
  anchor_iid : int;
  snap_failing : int;
  snap_successful : int;
  rederives : int;
  fast_updates : int;
}

let create m ~config =
  {
    m;
    config;
    first = None;
    first_tp = None;
    failing_tps_rev = [];
    success_tps_rev = [];
    n_failing = 0;
    n_successful = 0;
    executed = Tp.Iset.empty;
    derived = None;
    rederives = 0;
    fast_updates = 0;
  }

let n_failing (t : t) = t.n_failing
let n_successful (t : t) = t.n_successful
let rederives (t : t) = t.rederives
let fast_updates (t : t) = t.fast_updates

let count_into m ~points_to entries ~is_failing tp =
  List.iter
    (fun e ->
      if Core.Patterns.present_in m ~points_to e.pattern tp then
        if is_failing then e.in_failing <- e.in_failing + 1
        else e.in_successful <- e.in_successful + 1)
    entries

(* Full re-derivation — batch stages 3–6 over the cached trace
   processings.  No trace is re-decoded (the tps are cached); only the
   points-to/anchor/pattern derivation and the presence recount run. *)
let derive t first first_tp =
  Obs.Scope.timed "stream/rederive_ns" @@ fun () ->
  let executed = t.executed in
  let points_to =
    Analysis.Pointsto.analyze t.m ~scope:(fun iid -> Tp.Iset.mem iid executed)
  in
  let anchor_iid = Core.Diagnosis.resolve_anchor t.m first_tp first in
  let prefer_free =
    match first.Report.info with
    | Report.Crash_info { crash_kind = Report.Use_after_free; _ } -> true
    | Report.Crash_info _ | Report.Deadlock_info _ -> false
  in
  let candidates =
    Core.Type_ranking.candidates t.m ~points_to ~executed ~anchor_iid
      ~prefer_free ()
  in
  let info =
    match first.Report.info with
    | Report.Crash_info { crash_kind; _ } ->
      Report.Crash_info { failing_iid = anchor_iid; crash_kind }
    | Report.Deadlock_info _ as d -> d
  in
  let patterns =
    Core.Patterns.generate t.m ~points_to ~tp:first_tp ~info
      ~failing_tid:first.Report.failing_tid ~candidates
  in
  let entries =
    List.map (fun p -> { pattern = p; in_failing = 0; in_successful = 0 }) patterns
  in
  List.iter
    (count_into t.m ~points_to entries ~is_failing:true)
    (List.rev t.failing_tps_rev);
  List.iter
    (count_into t.m ~points_to entries ~is_failing:false)
    (List.rev t.success_tps_rev);
  t.rederives <- t.rederives + 1;
  Obs.Scope.count "stream/rederives" 1;
  let d = { points_to; anchor_iid; entries } in
  t.derived <- Some d;
  d

let add_tp t ~is_failing tp =
  if is_failing then begin
    t.failing_tps_rev <- tp :: t.failing_tps_rev;
    t.n_failing <- t.n_failing + 1
  end
  else begin
    t.success_tps_rev <- tp :: t.success_tps_rev;
    t.n_successful <- t.n_successful + 1
  end;
  if Tp.Iset.subset tp.Tp.executed t.executed then
    (* The common fleet case: another endpoint reporting an already-seen
       schedule.  Nothing derived changes — bump the counters. *)
    match t.derived with
    | Some d ->
      count_into t.m ~points_to:d.points_to d.entries ~is_failing tp;
      t.fast_updates <- t.fast_updates + 1;
      Obs.Scope.count "stream/fast_updates" 1
    | None -> ()
  else begin
    (* New code executed: the points-to scope (and with it candidates and
       patterns) may change, so everything derived is stale.  The
       re-derivation is deferred to the next [results] call so a burst of
       novel reports pays for one re-derive, not one each. *)
    t.executed <- Tp.Iset.union t.executed tp.Tp.executed;
    t.derived <- None
  end

let add_failing t ?jobs ?cache (r : Report.failing_report) =
  let tp = Core.Diagnosis.process_failing t.m ~config:t.config ?jobs ?cache r in
  (match t.first with
  | None ->
    t.first <- Some r;
    t.first_tp <- Some tp
  | Some _ -> ());
  add_tp t ~is_failing:true tp

let add_successful t ?jobs ?cache (s : Report.success_report) =
  let tp =
    Core.Diagnosis.process_successful t.m ~config:t.config ?jobs ?cache s
  in
  add_tp t ~is_failing:false tp

let results t =
  match (t.first, t.first_tp) with
  | Some first, Some first_tp ->
    let d =
      match t.derived with Some d -> d | None -> derive t first first_tp
    in
    let scored =
      Core.Statistics.rank ~proximity_tp:first_tp
        (List.map
           (fun e ->
             Core.Statistics.of_counts e.pattern
               ~present_in_failing:e.in_failing
               ~present_in_successful:e.in_successful ~n_failing:t.n_failing)
           d.entries)
    in
    Some
      {
        scored;
        top = Core.Statistics.top scored;
        unique_top = Core.Statistics.is_unique_top scored;
        anchor_iid = d.anchor_iid;
        snap_failing = t.n_failing;
        snap_successful = t.n_successful;
        rederives = t.rederives;
        fast_updates = t.fast_updates;
      }
  | _ -> None
