(* Address-space layout (synthetic, collision-free by construction):
     0x0000_0000 .. 0x0000_0fff   null page (always faults)
     0x0000_1000 .. 0x00ff_ffff   code (instruction pcs; faults on data access)
     0x0100_0000 .. 0x0fff_ffff   globals
     0x1000_0000 .. 0x3fff_ffff   heap
     0x4000_0000 ..               stacks, 0x10_0000 bytes per thread *)

let null_limit = 0x1000
let globals_base = 0x0100_0000
let heap_base = 0x1000_0000
let heap_limit = 0x4000_0000
let stacks_base = 0x4000_0000
let stack_size = 0x10_0000

type access_error = Null | Freed | Unmapped

type t = {
  cells : (int, int) Hashtbl.t;
  globals : (string, int) Hashtbl.t;
  mutable globals_top : int;
  mutable heap_top : int;
  live_heap : (int, int) Hashtbl.t; (* base -> size *)
  mutable freed : (int * int) list; (* (base, size), most recent first *)
  stack_tops : (int, int) Hashtbl.t; (* tid -> next free stack addr *)
}

let create () =
  {
    cells = Hashtbl.create 1024;
    globals = Hashtbl.create 32;
    globals_top = globals_base;
    heap_top = heap_base;
    live_heap = Hashtbl.create 64;
    freed = [];
    stack_tops = Hashtbl.create 16;
  }

let align8 n = (n + 7) land lnot 7

let load_globals t m =
  Lir.Irmod.iter_globals m (fun name ty ->
      let size = align8 (max 8 (Lir.Irmod.size_of m ty)) in
      Hashtbl.replace t.globals name t.globals_top;
      t.globals_top <- t.globals_top + size)

let global_addr t name = Hashtbl.find t.globals name

let alloc_heap t ~size =
  let base = t.heap_top in
  t.heap_top <- t.heap_top + align8 (max 8 size);
  Hashtbl.replace t.live_heap base size;
  (* Re-allocation of a previously freed base is impossible (bump allocator),
     so stale freed records never shadow live memory. *)
  base

let heap_block_size t base = Hashtbl.find_opt t.live_heap base

let free_heap t base =
  match Hashtbl.find_opt t.live_heap base with
  | None -> Error Unmapped
  | Some size ->
    Hashtbl.remove t.live_heap base;
    t.freed <- (base, size) :: t.freed;
    Ok ()

let stack_base tid = stacks_base + (tid * stack_size)

let frame_mark t ~tid =
  match Hashtbl.find_opt t.stack_tops tid with
  | Some top -> top
  | None ->
    let base = stack_base tid in
    Hashtbl.replace t.stack_tops tid base;
    base

let alloc_stack t ~tid ~size =
  let top = frame_mark t ~tid in
  let addr = top in
  Hashtbl.replace t.stack_tops tid (top + align8 (max 8 size));
  addr

let pop_frame t ~tid ~mark = Hashtbl.replace t.stack_tops tid mark

let in_freed t addr =
  List.exists (fun (base, size) -> addr >= base && addr < base + size) t.freed

let validate t addr =
  if addr < null_limit then Error Null
  else if addr < globals_base then Error Unmapped (* code region *)
  else if addr < heap_base then
    if addr < t.globals_top then Ok () else Error Unmapped
  else if addr < heap_limit then
    if in_freed t addr then Error Freed
    else if addr < t.heap_top then Ok ()
    else Error Unmapped
  else Ok () (* stack zone: frame discipline keeps accesses in-bounds *)

let read t ~addr =
  match validate t addr with
  | Error _ as e -> e
  | Ok () -> Ok (Option.value ~default:0 (Hashtbl.find_opt t.cells addr))

let write t ~addr ~value =
  match validate t addr with
  | Error _ as e -> e
  | Ok () ->
    Hashtbl.replace t.cells addr value;
    Ok ()
