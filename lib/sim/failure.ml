type crash_reason = Null_deref | Use_after_free | Unmapped
type lock_misuse = Relock | Unlock_unowned | Unlock_free | Wait_unlocked
type arith_fault = Div_by_zero | Rem_by_zero
type thread_misuse = Create_not_function | Join_unknown

type t =
  | Crash of { tid : int; iid : int; pc : int; reason : crash_reason; addr : int }
  | Assert_fail of { tid : int; iid : int; pc : int }
  | Deadlock of { waiters : (int * int * int) list }
  | Lock_misuse of
      { tid : int; iid : int; pc : int; addr : int; misuse : lock_misuse }
  | Arith_fault of { tid : int; iid : int; pc : int; fault : arith_fault }
  | Undef_read of { tid : int; iid : int; pc : int; rname : string }
  | Thread_misuse of { tid : int; iid : int; pc : int; misuse : thread_misuse }

let failing_iid = function
  | Crash { iid; _ } | Assert_fail { iid; _ } | Lock_misuse { iid; _ }
  | Arith_fault { iid; _ } | Undef_read { iid; _ } | Thread_misuse { iid; _ } ->
    iid
  | Deadlock { waiters } -> (
    match List.rev waiters with
    | (_, iid, _) :: _ -> iid
    | [] -> invalid_arg "Failure.failing_iid: empty deadlock")

let kind_name = function
  | Crash _ -> "crash"
  | Assert_fail _ -> "assert"
  | Deadlock _ -> "deadlock"
  | Lock_misuse _ -> "lock-misuse"
  | Arith_fault _ -> "arith-fault"
  | Undef_read _ -> "undef-read"
  | Thread_misuse _ -> "thread-misuse"

let reason_to_string = function
  | Null_deref -> "null dereference"
  | Use_after_free -> "use after free"
  | Unmapped -> "unmapped access"

let misuse_to_string = function
  | Relock -> "relock of an already-held mutex"
  | Unlock_unowned -> "unlock of a mutex held by another thread"
  | Unlock_free -> "unlock of a mutex nobody holds"
  | Wait_unlocked -> "cond_wait without holding the mutex"

let arith_fault_to_string = function
  | Div_by_zero -> "division by zero"
  | Rem_by_zero -> "remainder by zero"

let thread_misuse_to_string = function
  | Create_not_function -> "thread_create target is not a function"
  | Join_unknown -> "join of an unknown thread"

let to_string = function
  | Crash { tid; iid; pc; reason; addr } ->
    Printf.sprintf "crash: thread %d, iid %d, pc 0x%x, %s of 0x%x" tid iid pc
      (reason_to_string reason) addr
  | Assert_fail { tid; iid; pc } ->
    Printf.sprintf "assertion failure: thread %d, iid %d, pc 0x%x" tid iid pc
  | Deadlock { waiters } ->
    let part (tid, iid, lock) =
      Printf.sprintf "thread %d blocked at iid %d on lock 0x%x" tid iid lock
    in
    "deadlock: " ^ String.concat "; " (List.map part waiters)
  | Lock_misuse { tid; iid; pc; addr; misuse } ->
    Printf.sprintf "lock misuse: thread %d, iid %d, pc 0x%x, %s (mutex 0x%x)"
      tid iid pc (misuse_to_string misuse) addr
  | Arith_fault { tid; iid; pc; fault } ->
    Printf.sprintf "arith fault: thread %d, iid %d, pc 0x%x, %s" tid iid pc
      (arith_fault_to_string fault)
  | Undef_read { tid; iid; pc; rname } ->
    Printf.sprintf
      "undefined-register read: thread %d, iid %d, pc 0x%x, register %%%s" tid
      iid pc rname
  | Thread_misuse { tid; iid; pc; misuse } ->
    Printf.sprintf "thread misuse: thread %d, iid %d, pc 0x%x, %s" tid iid pc
      (thread_misuse_to_string misuse)
