type control_event =
  | Thread_start of { tid : int; entry_pc : int }
  | Cond_branch of { tid : int; pc : int; taken : bool }
  | Ret_branch of { tid : int; target_pc : int option }
  | Thread_exit of { tid : int }

type sched_event =
  | Switch of { prev_tid : int option; next_tid : int; time : float }
  | Contended of { tid : int; addr : int; time : float }
  | Unblocked of { tid : int; parked_ns : float; time : float }

type access_kind = Read | Write | Free

type obs_event =
  | Obs_access of
      { tid : int; iid : int; addr : int; size : int; kind : access_kind;
        time : float }
  | Obs_lock_attempt of { tid : int; iid : int; addr : int; time : float }
  | Obs_lock_acquired of { tid : int; iid : int; addr : int; time : float }
  | Obs_lock_released of { tid : int; iid : int; addr : int; time : float }
  | Obs_cond_park of
      { tid : int; iid : int; cond : int; mutex : int; time : float }
  | Obs_cond_wake of
      { waker_tid : int; woken_tid : int; cond : int; time : float }
  | Obs_spawn of { parent_tid : int; child_tid : int; iid : int; time : float }
  | Obs_join of { tid : int; target_tid : int; iid : int; time : float }

type t = {
  on_control : (time:float -> control_event -> float) option;
  on_instr : (tid:int -> time:float -> Lir.Instr.t -> float) option;
  gate : (tid:int -> time:float -> Lir.Instr.t -> float) option;
  on_sched : (sched_event -> unit) option;
  on_obs : (obs_event -> unit) option;
}

let none =
  { on_control = None; on_instr = None; gate = None; on_sched = None;
    on_obs = None }

let combine a b =
  let on_control =
    match a.on_control, b.on_control with
    | None, f | f, None -> f
    | Some f, Some g -> Some (fun ~time e -> f ~time e +. g ~time e)
  in
  let on_instr =
    match a.on_instr, b.on_instr with
    | None, f | f, None -> f
    | Some f, Some g -> Some (fun ~tid ~time i -> f ~tid ~time i +. g ~tid ~time i)
  in
  let gate =
    match a.gate, b.gate with
    | None, f | f, None -> f
    | Some f, Some g ->
      (* Both gates must agree to proceed; the longer stall wins. *)
      Some (fun ~tid ~time i -> Float.max (f ~tid ~time i) (g ~tid ~time i))
  in
  let on_sched =
    match a.on_sched, b.on_sched with
    | None, f | f, None -> f
    | Some f, Some g -> Some (fun e -> f e; g e)
  in
  let on_obs =
    match a.on_obs, b.on_obs with
    | None, f | f, None -> f
    | Some f, Some g -> Some (fun e -> f e; g e)
  in
  { on_control; on_instr; gate; on_sched; on_obs }

let control_event_tid = function
  | Thread_start { tid; _ } -> tid
  | Cond_branch { tid; _ } -> tid
  | Ret_branch { tid; _ } -> tid
  | Thread_exit { tid } -> tid
