(** Observation points the simulator exposes.

    [on_control] sees exactly what a hardware control-flow tracer sees —
    thread starts/exits, conditional-branch outcomes, and return targets —
    and returns the virtual-time cost (ns) the observation adds, which is
    how the PT tracer's runtime overhead enters the simulation.

    [on_instr] fires before every executed instruction and returns the
    virtual-time cost (ns) its observation adds.  It models the
    clock_gettime instrumentation of §3.2 (cost ~0), the driver's hardware
    watchpoint (trace snapshot at a pc, §5), and Gist-style software
    instrumentation of monitored accesses, whose per-event cost is exactly
    what Figure 9 charges against the baseline.  Snorlax's diagnosis never
    depends on it. *)

type control_event =
  | Thread_start of { tid : int; entry_pc : int }
  | Cond_branch of { tid : int; pc : int; taken : bool }
  | Ret_branch of { tid : int; target_pc : int option }
      (** [None] when the thread's entry function returns *)
  | Thread_exit of { tid : int }

type sched_event =
  | Switch of { prev_tid : int option; next_tid : int; time : float }
      (** the engine picked a different thread than it last stepped *)
  | Contended of { tid : int; addr : int; time : float }
      (** a mutex_lock found the lock held and parked the thread *)
  | Unblocked of { tid : int; parked_ns : float; time : float }
      (** a blocked thread (mutex, condvar or join) became runnable again
          after [parked_ns] of virtual time *)

type access_kind = Read | Write | Free

(** Ground-truth observation stream for happens-before analysis.  Every
    event names the dynamic instruction ([iid]) it stems from, so a
    consumer can relate the stream back to static code.  Lock/condvar
    events carry the synchronization object's address; accesses carry the
    byte range they touch ([size] is the pointee size for loads/stores and
    the whole block extent for [free], which acts as a write to the
    entire allocation). *)
type obs_event =
  | Obs_access of
      { tid : int; iid : int; addr : int; size : int; kind : access_kind;
        time : float }
  | Obs_lock_attempt of { tid : int; iid : int; addr : int; time : float }
      (** fires before the outcome is known, including for attempts that
          block or close a deadlock cycle — this is what exposes
          hold-while-acquiring lock-order edges *)
  | Obs_lock_acquired of { tid : int; iid : int; addr : int; time : float }
  | Obs_lock_released of { tid : int; iid : int; addr : int; time : float }
      (** also fired by the release half of [cond_wait] *)
  | Obs_cond_park of
      { tid : int; iid : int; cond : int; mutex : int; time : float }
  | Obs_cond_wake of
      { waker_tid : int; woken_tid : int; cond : int; time : float }
      (** a signal/broadcast dequeued a waiter; the waiter's mutex
          re-acquisition follows as its own attempt/acquire pair *)
  | Obs_spawn of { parent_tid : int; child_tid : int; iid : int; time : float }
  | Obs_join of { tid : int; target_tid : int; iid : int; time : float }
      (** the join call returned: [target_tid] had finished *)

type t = {
  on_control : (time:float -> control_event -> float) option;
  on_instr : (tid:int -> time:float -> Lir.Instr.t -> float) option;
  gate : (tid:int -> time:float -> Lir.Instr.t -> float) option;
      (** Consulted before executing each instruction: a positive return
          value parks the thread for that many virtual nanoseconds and
          retries (the instruction does not execute yet).  This is the
          schedule-enforcement primitive behind the coarse record/replay
          of §3.3; debug-register stalls would be modelled the same way. *)
  on_sched : (sched_event -> unit) option;
      (** Pure observation of scheduler activity — context switches, lock
          contention, parked-thread time.  Unlike the other hooks it
          returns no cost: telemetry must never perturb the virtual
          timeline it measures. *)
  on_obs : (obs_event -> unit) option;
      (** Pure observation of memory accesses and synchronization, the
          feed for the {!Analysis.Hb} happens-before oracle.  Like
          [on_sched] it returns no cost, so attaching an observer cannot
          change the interleaving being observed — replaying a failing
          seed with an observer reproduces the identical execution. *)
}

val none : t

val combine : t -> t -> t
(** Run both hooks: control costs add up, instruction observers both fire.
    Used to stack the PT driver with experiment instrumentation. *)

val control_event_tid : control_event -> int
