type mutex = { mutable owner : int option; waiters : int Queue.t }

type t = {
  locks : (int, mutex) Hashtbl.t;
  waits : (int, int) Hashtbl.t; (* tid -> lock addr it is queued on *)
}

type lock_result = Acquired | Relocked | Blocked | Deadlocked of int list
type unlock_error = Not_owner of int | Not_locked

let create () = { locks = Hashtbl.create 16; waits = Hashtbl.create 16 }

let get t addr =
  match Hashtbl.find_opt t.locks addr with
  | Some m -> m
  | None ->
    let m = { owner = None; waiters = Queue.create () } in
    Hashtbl.add t.locks addr m;
    m

(* Follow owner-of(waiting-on(...)) links from [start]; a return to [tid]
   closes a deadlock cycle. *)
let find_cycle t ~tid ~start =
  let rec follow current acc =
    if current = tid then Some (List.rev acc)
    else
      match Hashtbl.find_opt t.waits current with
      | None -> None
      | Some addr -> (
        match (Hashtbl.find t.locks addr).owner with
        | None -> None
        | Some next -> follow next (next :: acc))
  in
  follow start [ start ]

let lock t ~addr ~tid =
  let m = get t addr in
  match m.owner with
  | None ->
    m.owner <- Some tid;
    Acquired
  | Some owner when owner = tid ->
    (* A self-relock is an API misuse, not a wait-for cycle: queueing the
       owner behind itself would have reported a one-thread "deadlock". *)
    Relocked
  | Some owner -> (
    match find_cycle t ~tid ~start:owner with
    | Some cycle -> Deadlocked (cycle @ [ tid ])
    | None ->
      Queue.add tid m.waiters;
      Hashtbl.replace t.waits tid addr;
      Blocked)

let unlock t ~addr ~tid =
  let m = get t addr in
  match m.owner with
  | Some owner when owner = tid ->
    if Queue.is_empty m.waiters then begin
      m.owner <- None;
      Ok None
    end
    else begin
      let next = Queue.pop m.waiters in
      Hashtbl.remove t.waits next;
      m.owner <- Some next;
      Ok (Some next)
    end
  | Some owner -> Error (Not_owner owner)
  | None -> Error Not_locked

let holder t ~addr =
  match Hashtbl.find_opt t.locks addr with
  | None -> None
  | Some m -> m.owner

let waiting_on t ~tid = Hashtbl.find_opt t.waits tid
