(** The simulated flat address space: a globals region, a bump-allocated
    heap with use-after-free tracking, and one stack region per thread.

    Cells hold whole machine words (the IR is well-typed, so a cell is only
    ever re-read at the width it was written, modulo casts that reinterpret
    the static type but not the bits).  Reads of valid-but-unwritten
    addresses yield 0, matching zero-initialized globals and calloc-like
    allocation. *)

type t

type access_error = Null | Freed | Unmapped

val create : unit -> t

val load_globals : t -> Lir.Irmod.t -> unit
(** Assign an address to every module global. *)

val global_addr : t -> string -> int
(** Raises [Not_found] for unknown globals. *)

val alloc_heap : t -> size:int -> int

val heap_block_size : t -> int -> int option
(** Size of the live allocation starting exactly at the address, if any —
    the byte range a [free] of that address invalidates. *)

val free_heap : t -> int -> (unit, access_error) result
(** [Error Unmapped] when the address is not a live allocation base. *)

val frame_mark : t -> tid:int -> int
(** Current stack watermark of the thread; pass to {!pop_frame}. *)

val alloc_stack : t -> tid:int -> size:int -> int
val pop_frame : t -> tid:int -> mark:int -> unit

val read : t -> addr:int -> (int, access_error) result
val write : t -> addr:int -> value:int -> (unit, access_error) result
