module Prng = Snorlax_util.Prng

type outcome =
  | Completed
  | Failed of { failure : Failure.t; time_ns : float }
  | Stuck
  | Fuel_exhausted

type run_result = {
  outcome : outcome;
  final_time_ns : float;
  steps : int;
  output : int list;
  threads_spawned : int;
}

type config = { seed : int; max_steps : int; hooks : Hooks.t; cost_scale : float }

let default_config =
  { seed = 1; max_steps = 20_000_000; hooks = Hooks.none; cost_scale = 1.0 }

(* Base instruction costs in nanoseconds, loosely calibrated to a modern
   out-of-order core so that corpus delays in the 100 us range dominate. *)
module Cost = struct
  let arith = 0.8
  let load = 2.0
  let store = 2.0
  let alloca = 1.5
  let branch = 1.2
  let call = 4.0
  let ret = 3.0
  let intrinsic = 6.0
  let malloc = 40.0
  let mutex = 14.0
  let thread_spawn = 2500.0
  let wake = 180.0
  let join = 20.0
end

type status =
  | Runnable
  | Blocked_mutex of { addr : int; call_iid : int; since : float }
  | Blocked_cond of { addr : int; since : float }
  | Blocked_join of { target : int; call_iid : int; since : float }
  | Finished

type frame = {
  func : Lir.Func.t;
  mutable instrs : Lir.Instr.t array;
  mutable idx : int;
  regs : (int, int) Hashtbl.t;
  stack_mark : int;
  ret_dst : Lir.Value.reg option; (* caller register receiving our result *)
}

type thread = {
  tid : int;
  mutable stack : frame list;
  mutable status : status;
  mutable clock : float;
  mutable pending_ret_pc : int option;
      (* return-target of a blocking intrinsic call, traced on wake *)
}

type state = {
  m : Lir.Irmod.t;
  cfg : config;
  mem : Memory.t;
  mutexes : Mutexes.t;
  condvars : Condvars.t;
  threads : (int, thread) Hashtbl.t;
  mutable next_tid : int;
  prng : Prng.t;
  mutable failure : (Failure.t * float) option;
  mutable steps : int;
  mutable output_rev : int list;
  fn_by_entry_pc : (int, Lir.Func.t) Hashtbl.t;
  block_arrays : (string * string, Lir.Instr.t array) Hashtbl.t;
  joiners : (int, int list ref) Hashtbl.t; (* target tid -> waiting tids *)
}

exception Sim_failure

let jitter st base =
  base *. st.cfg.cost_scale *. (0.85 +. Prng.float st.prng ~bound:0.3)

(* Explicit delays (work/io waits) model I/O, network and preemption
   noise; their +/-5% jitter is what makes thread interleavings vary from
   seed to seed, so a bug manifests in some runs and not in others. *)
let delay_jitter st ns = ns *. (0.95 +. Prng.float st.prng ~bound:0.10)

let block_array st (f : Lir.Func.t) label =
  let key = (f.Lir.Func.fname, label) in
  match Hashtbl.find_opt st.block_arrays key with
  | Some a -> a
  | None ->
    let b = Lir.Func.find_block f label in
    let a = Array.of_list b.Lir.Block.instrs in
    Hashtbl.add st.block_arrays key a;
    a

let entry_pc st (f : Lir.Func.t) =
  Lir.Irmod.block_start_pc st.m ~fname:f.Lir.Func.fname
    ~label:(Lir.Func.entry f).Lir.Block.label

let push_frame st th (f : Lir.Func.t) ~args ~ret_dst =
  let regs = Hashtbl.create 16 in
  List.iter2
    (fun (p : Lir.Value.reg) v -> Hashtbl.replace regs p.Lir.Value.rid v)
    f.Lir.Func.params args;
  let frame =
    {
      func = f;
      instrs = block_array st f (Lir.Func.entry f).Lir.Block.label;
      idx = 0;
      regs;
      stack_mark = Memory.frame_mark st.mem ~tid:th.tid;
      ret_dst;
    }
  in
  th.stack <- frame :: th.stack

let spawn_thread st (f : Lir.Func.t) ~arg ~start_clock =
  let tid = st.next_tid in
  st.next_tid <- tid + 1;
  let th =
    { tid; stack = []; status = Runnable; clock = start_clock; pending_ret_pc = None }
  in
  Hashtbl.replace st.threads tid th;
  let args =
    match f.Lir.Func.params with
    | [] -> []
    | [ _ ] -> [ arg ]
    | params -> List.map (fun _ -> 0) params
  in
  push_frame st th f ~args ~ret_dst:None;
  th

let fire_control st th event =
  match st.cfg.hooks.Hooks.on_control with
  | None -> ()
  | Some f -> th.clock <- th.clock +. f ~time:th.clock event

let fire_instr st th (i : Lir.Instr.t) =
  match st.cfg.hooks.Hooks.on_instr with
  | None -> ()
  | Some f -> th.clock <- th.clock +. f ~tid:th.tid ~time:th.clock i

let fire_sched st event =
  match st.cfg.hooks.Hooks.on_sched with None -> () | Some f -> f event

let fire_obs st event =
  match st.cfg.hooks.Hooks.on_obs with None -> () | Some f -> f event

(* Byte extent of a load/store through [ptr]: the pointee size.  Memory
   cells live at distinct offsets computed from these same sizes, so two
   accesses conflict exactly when their byte ranges overlap. *)
let access_size st ptr =
  match Lir.Value.ty_of ~globals:(Lir.Irmod.global_ty st.m) ptr with
  | Lir.Ty.Ptr t -> ( try Lir.Irmod.size_of st.m t with _ -> 8)
  | _ -> 8
  | exception _ -> 8

(* A blocked thread just became runnable: report how long it was parked.
   [since] is when it blocked; its clock was already advanced to the wake
   time by the caller. *)
let fire_unblocked st (th : thread) ~since =
  fire_sched st
    (Hooks.Unblocked
       { tid = th.tid; parked_ns = th.clock -. since; time = th.clock })

let blocked_since (th : thread) =
  match th.status with
  | Blocked_mutex { since; _ } | Blocked_cond { since; _ }
  | Blocked_join { since; _ } ->
    Some since
  | Runnable | Finished -> None

let set_failure st th failure =
  st.failure <- Some (failure, th.clock);
  raise Sim_failure

let crash st th (i : Lir.Instr.t) err addr =
  let reason =
    match (err : Memory.access_error) with
    | Memory.Null -> Failure.Null_deref
    | Memory.Freed -> Failure.Use_after_free
    | Memory.Unmapped -> Failure.Unmapped
  in
  set_failure st th
    (Failure.Crash
       { tid = th.tid; iid = i.Lir.Instr.iid; pc = i.Lir.Instr.pc; reason; addr })

(* A release handed the mutex at [addr] to [next]: wake it at the
   releaser's time plus the wake cost, emit its acquire observation
   (attributed to the lock call that parked it), and trace the pending
   return of that call. *)
let grant_mutex st th ~addr next =
  let w = Hashtbl.find st.threads next in
  let since = blocked_since w in
  let call_iid =
    match w.status with
    | Blocked_mutex { call_iid; _ } -> Some call_iid
    | Runnable | Blocked_cond _ | Blocked_join _ | Finished -> None
  in
  w.status <- Runnable;
  w.clock <- Float.max w.clock th.clock +. jitter st Cost.wake;
  (match since with Some s -> fire_unblocked st w ~since:s | None -> ());
  (match call_iid with
  | Some iid ->
    fire_obs st
      (Hooks.Obs_lock_acquired { tid = w.tid; iid; addr; time = w.clock })
  | None -> ());
  match w.pending_ret_pc with
  | Some pc ->
    w.pending_ret_pc <- None;
    fire_control st w (Hooks.Ret_branch { tid = w.tid; target_pc = Some pc })
  | None -> ()

(* (tid, blocked call iid, lock addr) for each cycle member; [closer] is
   the thread whose lock attempt closed the cycle and goes last. *)
let deadlock_waiters st ~closer cycle =
  let closer_tid, closer_iid, closer_addr = closer in
  let waiter_of tid =
    if tid = closer_tid then closer
    else
      let other = Hashtbl.find st.threads tid in
      match other.status with
      | Blocked_mutex { addr; call_iid; _ } -> (tid, call_iid, addr)
      | Runnable | Blocked_cond _ | Blocked_join _ | Finished ->
        (tid, closer_iid, closer_addr)
  in
  let others = List.filter (fun t -> t <> closer_tid) cycle in
  List.map waiter_of others @ [ closer ]

(* Raised by [eval] where no thread/instruction context is at hand;
   [step] catches it and converts it to a structured [Failure.Undef_read]
   attributed to the instruction that performed the read. *)
exception Undef_register of string

let eval st frame v =
  match (v : Lir.Value.t) with
  | Lir.Value.Reg r -> (
    match Hashtbl.find_opt frame.regs r.Lir.Value.rid with
    | Some v -> v
    | None -> raise (Undef_register r.Lir.Value.rname))
  | Lir.Value.Imm (v, _) -> Int64.to_int v
  | Lir.Value.Global g -> Memory.global_addr st.mem g
  | Lir.Value.Null _ -> 0
  | Lir.Value.Fn_ref f -> entry_pc st (Lir.Irmod.find_func st.m f)

let set_reg frame (r : Lir.Value.reg) v = Hashtbl.replace frame.regs r.Lir.Value.rid v

let field_offset st sname field =
  let fields = Lir.Irmod.struct_fields st.m sname in
  let rec go i = function
    | [] -> invalid_arg "Interp.field_offset"
    | f :: rest -> if i = field then 0 else Lir.Irmod.size_of st.m f + go (i + 1) rest
  in
  go 0 fields

let goto frame st label =
  let a = block_array st frame.func label in
  frame.instrs <- a;
  frame.idx <- 0

(* Return from the current frame: pop, deliver the value, resume caller.
   With an empty remaining stack the thread exits. *)
let do_return st th value =
  match th.stack with
  | [] -> assert false
  | frame :: rest ->
    Memory.pop_frame st.mem ~tid:th.tid ~mark:frame.stack_mark;
    th.stack <- rest;
    (match rest with
    | [] ->
      fire_control st th (Hooks.Ret_branch { tid = th.tid; target_pc = None });
      th.status <- Finished;
      fire_control st th (Hooks.Thread_exit { tid = th.tid });
      (* Wake joiners at our completion time. *)
      (match Hashtbl.find_opt st.joiners th.tid with
      | None -> ()
      | Some waiting ->
        List.iter
          (fun wtid ->
            let w = Hashtbl.find st.threads wtid in
            let since = blocked_since w in
            let join_iid =
              match w.status with
              | Blocked_join { call_iid; _ } -> Some call_iid
              | Runnable | Blocked_mutex _ | Blocked_cond _ | Finished -> None
            in
            w.status <- Runnable;
            w.clock <- Float.max w.clock th.clock +. Cost.join;
            (match since with
            | Some s -> fire_unblocked st w ~since:s
            | None -> ());
            (match join_iid with
            | Some iid ->
              fire_obs st
                (Hooks.Obs_join
                   { tid = w.tid; target_tid = th.tid; iid; time = w.clock })
            | None -> ());
            match w.pending_ret_pc with
            | Some pc ->
              w.pending_ret_pc <- None;
              fire_control st w
                (Hooks.Ret_branch { tid = w.tid; target_pc = Some pc })
            | None -> ())
          !waiting;
        Hashtbl.remove st.joiners th.tid)
    | caller :: _ ->
      let target = caller.instrs.(caller.idx) in
      fire_control st th
        (Hooks.Ret_branch { tid = th.tid; target_pc = Some target.Lir.Instr.pc });
      (match frame.ret_dst, value with
      | Some dst, Some v -> set_reg caller dst v
      | Some dst, None -> set_reg caller dst 0
      | None, _ -> ()))

(* Zero divisors never reach here: [step] turns them into a structured
   [Failure.Arith_fault] before dispatching, with the faulting thread and
   instruction in hand. *)
let exec_binop op a b =
  match (op : Lir.Instr.binop) with
  | Lir.Instr.Add -> a + b
  | Lir.Instr.Sub -> a - b
  | Lir.Instr.Mul -> a * b
  | Lir.Instr.Sdiv -> a / b
  | Lir.Instr.Srem -> a mod b
  | Lir.Instr.And -> a land b
  | Lir.Instr.Or -> a lor b
  | Lir.Instr.Xor -> a lxor b
  | Lir.Instr.Shl -> a lsl b
  | Lir.Instr.Lshr -> a lsr b

let exec_icmp cmp a b =
  let r =
    match (cmp : Lir.Instr.icmp) with
    | Lir.Instr.Eq -> a = b
    | Lir.Instr.Ne -> a <> b
    | Lir.Instr.Slt -> a < b
    | Lir.Instr.Sle -> a <= b
    | Lir.Instr.Sgt -> a > b
    | Lir.Instr.Sge -> a >= b
  in
  if r then 1 else 0

let exec_intrinsic st th frame (i : Lir.Instr.t) dst callee args =
  let arg n = eval st frame (List.nth args n) in
  let return v =
    match dst with Some d -> set_reg frame d v | None -> ()
  in
  let advance cost = th.clock <- th.clock +. jitter st cost in
  if String.equal callee Lir.Intrinsics.malloc then begin
    advance Cost.malloc;
    return (Memory.alloc_heap st.mem ~size:(arg 0))
  end
  else if String.equal callee Lir.Intrinsics.free then begin
    advance Cost.malloc;
    let addr = arg 0 in
    (* Observed before the free so the block extent is still known: a free
       invalidates every byte of the allocation, i.e. writes the range. *)
    (match st.cfg.hooks.Hooks.on_obs with
    | None -> ()
    | Some f ->
      let size =
        match Memory.heap_block_size st.mem addr with
        | Some s -> max 1 s
        | None -> 1
      in
      f
        (Hooks.Obs_access
           { tid = th.tid; iid = i.Lir.Instr.iid; addr; size;
             kind = Hooks.Free; time = th.clock }));
    match Memory.free_heap st.mem addr with
    | Ok () -> ()
    | Error err -> crash st th i err addr
  end
  else if String.equal callee Lir.Intrinsics.mutex_init then advance Cost.intrinsic
  else if String.equal callee Lir.Intrinsics.mutex_lock then begin
    advance Cost.mutex;
    let addr = arg 0 in
    fire_obs st
      (Hooks.Obs_lock_attempt
         { tid = th.tid; iid = i.Lir.Instr.iid; addr; time = th.clock });
    match Mutexes.lock st.mutexes ~addr ~tid:th.tid with
    | Mutexes.Acquired ->
      fire_obs st
        (Hooks.Obs_lock_acquired
           { tid = th.tid; iid = i.Lir.Instr.iid; addr; time = th.clock })
    | Mutexes.Relocked ->
      set_failure st th
        (Failure.Lock_misuse
           { tid = th.tid; iid = i.Lir.Instr.iid; pc = i.Lir.Instr.pc; addr;
             misuse = Failure.Relock })
    | Mutexes.Blocked ->
      th.status <-
        Blocked_mutex { addr; call_iid = i.Lir.Instr.iid; since = th.clock };
      fire_sched st (Hooks.Contended { tid = th.tid; addr; time = th.clock })
    | Mutexes.Deadlocked cycle ->
      let closer = (th.tid, i.Lir.Instr.iid, addr) in
      set_failure st th
        (Failure.Deadlock { waiters = deadlock_waiters st ~closer cycle })
  end
  else if String.equal callee Lir.Intrinsics.mutex_unlock then begin
    advance Cost.mutex;
    let addr = arg 0 in
    match Mutexes.unlock st.mutexes ~addr ~tid:th.tid with
    | Error err ->
      let misuse =
        match err with
        | Mutexes.Not_owner _ -> Failure.Unlock_unowned
        | Mutexes.Not_locked -> Failure.Unlock_free
      in
      set_failure st th
        (Failure.Lock_misuse
           { tid = th.tid; iid = i.Lir.Instr.iid; pc = i.Lir.Instr.pc; addr;
             misuse })
    | Ok next ->
      fire_obs st
        (Hooks.Obs_lock_released
           { tid = th.tid; iid = i.Lir.Instr.iid; addr; time = th.clock });
      (match next with
      | None -> ()
      | Some next -> grant_mutex st th ~addr next)
  end
  else if String.equal callee Lir.Intrinsics.cond_init then advance Cost.intrinsic
  else if String.equal callee Lir.Intrinsics.cond_wait then begin
    advance Cost.mutex;
    let cond_addr = arg 0 and mutex_addr = arg 1 in
    (* Atomically release the mutex and park on the condition. *)
    (match Mutexes.unlock st.mutexes ~addr:mutex_addr ~tid:th.tid with
    | Error _ ->
      set_failure st th
        (Failure.Lock_misuse
           { tid = th.tid; iid = i.Lir.Instr.iid; pc = i.Lir.Instr.pc;
             addr = mutex_addr; misuse = Failure.Wait_unlocked })
    | Ok next ->
      fire_obs st
        (Hooks.Obs_lock_released
           { tid = th.tid; iid = i.Lir.Instr.iid; addr = mutex_addr;
             time = th.clock });
      (match next with
      | None -> ()
      | Some next -> grant_mutex st th ~addr:mutex_addr next));
    Condvars.wait st.condvars ~addr:cond_addr ~tid:th.tid ~mutex_addr
      ~call_iid:i.Lir.Instr.iid;
    fire_obs st
      (Hooks.Obs_cond_park
         { tid = th.tid; iid = i.Lir.Instr.iid; cond = cond_addr;
           mutex = mutex_addr; time = th.clock });
    th.status <- Blocked_cond { addr = cond_addr; since = th.clock }
  end
  else if String.equal callee Lir.Intrinsics.cond_signal
          || String.equal callee Lir.Intrinsics.cond_broadcast then begin
    advance Cost.mutex;
    let cond_addr = arg 0 in
    let woken =
      if String.equal callee Lir.Intrinsics.cond_signal then
        match Condvars.signal st.condvars ~addr:cond_addr with
        | Some w -> [ w ]
        | None -> []
      else Condvars.broadcast st.condvars ~addr:cond_addr
    in
    List.iter
      (fun (wtid, mutex_addr, wait_iid) ->
        let w = Hashtbl.find st.threads wtid in
        let since = blocked_since w in
        w.clock <- Float.max w.clock th.clock +. jitter st Cost.wake;
        (match since with Some s -> fire_unblocked st w ~since:s | None -> ());
        fire_obs st
          (Hooks.Obs_cond_wake
             { waker_tid = th.tid; woken_tid = wtid; cond = cond_addr;
               time = w.clock });
        (* The woken thread re-acquires its mutex before cond_wait
           returns; it may block again right here.  Everything below is
           the waiter's own work, attributed to its cond_wait call. *)
        fire_obs st
          (Hooks.Obs_lock_attempt
             { tid = wtid; iid = wait_iid; addr = mutex_addr; time = w.clock });
        match Mutexes.lock st.mutexes ~addr:mutex_addr ~tid:wtid with
        | Mutexes.Acquired ->
          w.status <- Runnable;
          fire_obs st
            (Hooks.Obs_lock_acquired
               { tid = wtid; iid = wait_iid; addr = mutex_addr;
                 time = w.clock });
          (match w.pending_ret_pc with
          | Some pc ->
            w.pending_ret_pc <- None;
            fire_control st w
              (Hooks.Ret_branch { tid = w.tid; target_pc = Some pc })
          | None -> ())
        | Mutexes.Relocked ->
          (* Unreachable: the waiter released this mutex when it parked. *)
          set_failure st th
            (Failure.Lock_misuse
               { tid = wtid; iid = wait_iid;
                 pc = (Lir.Irmod.instr_by_iid st.m wait_iid).Lir.Instr.pc;
                 addr = mutex_addr; misuse = Failure.Relock })
        | Mutexes.Blocked ->
          w.status <-
            Blocked_mutex
              { addr = mutex_addr; call_iid = wait_iid; since = w.clock };
          fire_sched st
            (Hooks.Contended { tid = wtid; addr = mutex_addr; time = w.clock })
        | Mutexes.Deadlocked cycle ->
          (* A waiter woken while holding other locks can close a real
             wait-for cycle here (it parked with those locks held). *)
          let closer = (wtid, wait_iid, mutex_addr) in
          set_failure st w
            (Failure.Deadlock { waiters = deadlock_waiters st ~closer cycle }))
      woken
  end
  else if String.equal callee Lir.Intrinsics.thread_create then begin
    advance Cost.thread_spawn;
    let fn_pc = arg 0 and a = arg 1 in
    match Hashtbl.find_opt st.fn_by_entry_pc fn_pc with
    | None ->
      set_failure st th
        (Failure.Thread_misuse
           { tid = th.tid; iid = i.Lir.Instr.iid; pc = i.Lir.Instr.pc;
             misuse = Failure.Create_not_function })
    | Some f ->
      let child = spawn_thread st f ~arg:a ~start_clock:th.clock in
      fire_control st child
        (Hooks.Thread_start { tid = child.tid; entry_pc = fn_pc });
      fire_obs st
        (Hooks.Obs_spawn
           { parent_tid = th.tid; child_tid = child.tid; iid = i.Lir.Instr.iid;
             time = th.clock });
      return child.tid
  end
  else if String.equal callee Lir.Intrinsics.thread_join then begin
    advance Cost.join;
    let target = arg 0 in
    match Hashtbl.find_opt st.threads target with
    | None ->
      set_failure st th
        (Failure.Thread_misuse
           { tid = th.tid; iid = i.Lir.Instr.iid; pc = i.Lir.Instr.pc;
             misuse = Failure.Join_unknown })
    | Some tgt ->
      if tgt.status = Finished then
        fire_obs st
          (Hooks.Obs_join
             { tid = th.tid; target_tid = target; iid = i.Lir.Instr.iid;
               time = th.clock })
      else begin
        th.status <-
          Blocked_join { target; call_iid = i.Lir.Instr.iid; since = th.clock };
        let waiting =
          match Hashtbl.find_opt st.joiners target with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.add st.joiners target l;
            l
        in
        waiting := th.tid :: !waiting
      end
  end
  else if String.equal callee Lir.Intrinsics.work then
    th.clock <- th.clock +. delay_jitter st (float_of_int (arg 0))
  else if String.equal callee Lir.Intrinsics.io_delay then
    th.clock <- th.clock +. delay_jitter st (float_of_int (arg 0))
  else if String.equal callee Lir.Intrinsics.assert_true then begin
    advance Cost.intrinsic;
    if arg 0 = 0 then
      set_failure st th
        (Failure.Assert_fail { tid = th.tid; iid = i.Lir.Instr.iid; pc = i.Lir.Instr.pc })
  end
  else if String.equal callee Lir.Intrinsics.print_i64 then begin
    advance Cost.intrinsic;
    st.output_rev <- arg 0 :: st.output_rev
  end
  else if String.equal callee Lir.Intrinsics.rand then begin
    advance Cost.intrinsic;
    return (Prng.int st.prng ~bound:(max 1 (arg 0)))
  end
  else failwith ("Interp: unknown intrinsic " ^ callee)

exception Gated

(* A positive gate verdict parks the thread without executing; the
   scheduler will run whoever is now earliest and retry this thread
   later. *)
let check_gate st th (i : Lir.Instr.t) =
  match st.cfg.hooks.Hooks.gate with
  | None -> ()
  | Some g ->
    let stall = g ~tid:th.tid ~time:th.clock i in
    if stall > 0.0 then begin
      th.clock <- th.clock +. stall;
      st.steps <- st.steps + 1;
      raise Gated
    end

let step st th =
  let frame =
    match th.stack with
    | f :: _ -> f
    | [] -> assert false
  in
  let i = frame.instrs.(frame.idx) in
  check_gate st th i;
  fire_instr st th i;
  st.steps <- st.steps + 1;
  (* Advance past the instruction first so that calls and blocking
     operations resume at the right place. *)
  frame.idx <- frame.idx + 1;
  let advance cost = th.clock <- th.clock +. jitter st cost in
  try
    match i.Lir.Instr.kind with
  | Lir.Instr.Alloca { dst; ty } ->
    advance Cost.alloca;
    let size = Lir.Irmod.size_of st.m ty in
    set_reg frame dst (Memory.alloc_stack st.mem ~tid:th.tid ~size)
  | Lir.Instr.Load { dst; ptr } -> (
    advance Cost.load;
    let addr = eval st frame ptr in
    (* Observed before the memory check so crashing accesses appear in the
       stream too — the oracle wants the access that faulted. *)
    (match st.cfg.hooks.Hooks.on_obs with
    | None -> ()
    | Some f ->
      f
        (Hooks.Obs_access
           { tid = th.tid; iid = i.Lir.Instr.iid; addr;
             size = access_size st ptr; kind = Hooks.Read; time = th.clock }));
    match Memory.read st.mem ~addr with
    | Ok v -> set_reg frame dst v
    | Error err -> crash st th i err addr)
  | Lir.Instr.Store { value; ptr } -> (
    advance Cost.store;
    let addr = eval st frame ptr in
    let v = eval st frame value in
    (match st.cfg.hooks.Hooks.on_obs with
    | None -> ()
    | Some f ->
      f
        (Hooks.Obs_access
           { tid = th.tid; iid = i.Lir.Instr.iid; addr;
             size = access_size st ptr; kind = Hooks.Write; time = th.clock }));
    match Memory.write st.mem ~addr ~value:v with
    | Ok () -> ()
    | Error err -> crash st th i err addr)
  | Lir.Instr.Binop { dst; op; lhs; rhs } -> (
    advance Cost.arith;
    let a = eval st frame lhs in
    let b = eval st frame rhs in
    match op with
    | (Lir.Instr.Sdiv | Lir.Instr.Srem) when b = 0 ->
      let fault =
        if op = Lir.Instr.Sdiv then Failure.Div_by_zero
        else Failure.Rem_by_zero
      in
      set_failure st th
        (Failure.Arith_fault
           { tid = th.tid; iid = i.Lir.Instr.iid; pc = i.Lir.Instr.pc; fault })
    | _ -> set_reg frame dst (exec_binop op a b))
  | Lir.Instr.Icmp { dst; cmp; lhs; rhs } ->
    advance Cost.arith;
    set_reg frame dst (exec_icmp cmp (eval st frame lhs) (eval st frame rhs))
  | Lir.Instr.Gep { dst; base; field } ->
    advance Cost.arith;
    let sname =
      match Lir.Value.ty_of ~globals:(Lir.Irmod.global_ty st.m) base with
      | Lir.Ty.Ptr (Lir.Ty.Struct s) -> s
      | _ -> failwith "Interp: gep base not a struct pointer"
    in
    set_reg frame dst (eval st frame base + field_offset st sname field)
  | Lir.Instr.Index { dst; base; idx } ->
    advance Cost.arith;
    let elem_ty =
      match Lir.Value.ty_of ~globals:(Lir.Irmod.global_ty st.m) base with
      | Lir.Ty.Ptr (Lir.Ty.Array (t, _)) -> t
      | Lir.Ty.Ptr t -> t
      | _ -> failwith "Interp: index base not a pointer"
    in
    let esize = Lir.Irmod.size_of st.m elem_ty in
    set_reg frame dst (eval st frame base + (esize * eval st frame idx))
  | Lir.Instr.Cast { dst; src } ->
    advance Cost.arith;
    set_reg frame dst (eval st frame src)
  | Lir.Instr.Call { dst; callee; args } ->
    advance Cost.call;
    if Lir.Intrinsics.is_intrinsic callee then begin
      exec_intrinsic st th frame i dst callee args;
      (* The library function's return is an indirect branch the hardware
         tracer records; blocking calls are recorded when they wake. *)
      match th.status with
      | Runnable ->
        fire_control st th
          (Hooks.Ret_branch { tid = th.tid; target_pc = Some (i.Lir.Instr.pc + 4) })
      | Blocked_mutex _ | Blocked_cond _ | Blocked_join _ ->
        th.pending_ret_pc <- Some (i.Lir.Instr.pc + 4)
      | Finished -> ()
    end
    else begin
      let f = Lir.Irmod.find_func st.m callee in
      let argv = List.map (eval st frame) args in
      push_frame st th f ~args:argv ~ret_dst:dst
    end
  | Lir.Instr.Br label ->
    advance Cost.branch;
    goto frame st label
  | Lir.Instr.Cond_br { cond; then_; else_ } ->
    advance Cost.branch;
    let taken = eval st frame cond <> 0 in
    fire_control st th
      (Hooks.Cond_branch { tid = th.tid; pc = i.Lir.Instr.pc; taken });
    goto frame st (if taken then then_ else else_)
  | Lir.Instr.Ret v ->
    advance Cost.ret;
    let value = Option.map (eval st frame) v in
    do_return st th value
  | Lir.Instr.Unreachable -> failwith "Interp: reached unreachable"
  with Undef_register rname ->
    set_failure st th
      (Failure.Undef_read
         { tid = th.tid; iid = i.Lir.Instr.iid; pc = i.Lir.Instr.pc; rname })

let pick_runnable st =
  let best = ref None in
  Hashtbl.iter
    (fun _ th ->
      if th.status = Runnable then
        match !best with
        | None -> best := Some th
        | Some b ->
          if
            th.clock < b.clock
            || (th.clock = b.clock && th.tid < b.tid)
          then best := Some th)
    st.threads;
  !best

let any_blocked st =
  Hashtbl.fold
    (fun _ th acc ->
      acc
      ||
      match th.status with
      | Blocked_mutex _ | Blocked_cond _ | Blocked_join _ -> true
      | Runnable | Finished -> false)
    st.threads false

let final_time st =
  Hashtbl.fold (fun _ th acc -> Float.max acc th.clock) st.threads 0.0

let run ?(config = default_config) m ~entry =
  Lir.Irmod.layout m;
  let mem = Memory.create () in
  Memory.load_globals mem m;
  let st =
    {
      m;
      cfg = config;
      mem;
      mutexes = Mutexes.create ();
      condvars = Condvars.create ();
      threads = Hashtbl.create 16;
      next_tid = 0;
      prng = Prng.create ~seed:config.seed;
      failure = None;
      steps = 0;
      output_rev = [];
      fn_by_entry_pc = Hashtbl.create 16;
      block_arrays = Hashtbl.create 64;
      joiners = Hashtbl.create 8;
    }
  in
  List.iter
    (fun f ->
      if f.Lir.Func.blocks <> [] then
        Hashtbl.replace st.fn_by_entry_pc (entry_pc st f) f)
    (Lir.Irmod.funcs m);
  let main_fn = Lir.Irmod.find_func m entry in
  let main = spawn_thread st main_fn ~arg:0 ~start_clock:0.0 in
  fire_control st main
    (Hooks.Thread_start { tid = main.tid; entry_pc = entry_pc st main_fn });
  let outcome = ref None in
  (* -1 = no thread has run yet; a plain int keeps the per-step check an
     unboxed compare on the no-switch fast path. *)
  let last_tid = ref (-1) in
  (try
     while !outcome = None do
       if st.steps >= config.max_steps then outcome := Some Fuel_exhausted
       else
         match pick_runnable st with
         | Some th ->
           if !last_tid <> th.tid then begin
             fire_sched st
               (Hooks.Switch
                  {
                    prev_tid = (if !last_tid < 0 then None else Some !last_tid);
                    next_tid = th.tid;
                    time = th.clock;
                  });
             last_tid := th.tid
           end;
           ( try step st th with Gated -> ())
         | None ->
           if any_blocked st then outcome := Some Stuck
           else outcome := Some Completed
     done
   with Sim_failure ->
     match st.failure with
     | Some (failure, time_ns) -> outcome := Some (Failed { failure; time_ns })
     | None -> assert false);
  let outcome =
    match !outcome with Some o -> o | None -> assert false
  in
  {
    outcome;
    final_time_ns = final_time st;
    steps = st.steps;
    output = List.rev st.output_rev;
    threads_spawned = st.next_tid;
  }
