(** POSIX-style mutexes keyed by address, with FIFO hand-off and wait-for
    cycle detection.  A lock attempt that would close a cycle is reported
    immediately — the simulator's stand-in for the OS-level deadlock
    detection the paper relies on (§4.4). *)

type t

type lock_result =
  | Acquired
  | Relocked  (** [tid] already owns the mutex: a self-relock misuse *)
  | Blocked
  | Deadlocked of int list
      (** tids forming the cycle; the requesting thread is included *)

type unlock_error =
  | Not_owner of int  (** the mutex is held by this other thread *)
  | Not_locked  (** the mutex is free: a double unlock *)

val create : unit -> t

val lock : t -> addr:int -> tid:int -> lock_result
(** On [Blocked], the caller must park the thread; {!unlock} will name it as
    the new owner later. *)

val unlock : t -> addr:int -> tid:int -> (int option, unlock_error) result
(** Releases and hands off to the eldest waiter, returning the new owner.
    [Error _] when [tid] does not hold the mutex; owner state is untouched
    so the caller can report a structured failure. *)

val holder : t -> addr:int -> int option
val waiting_on : t -> tid:int -> int option
(** The lock address a blocked thread is queued on, if any. *)
