type t = { queues : (int, (int * int * int) Queue.t) Hashtbl.t }

let create () = { queues = Hashtbl.create 8 }

let queue t addr =
  match Hashtbl.find_opt t.queues addr with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add t.queues addr q;
    q

let wait t ~addr ~tid ~mutex_addr ~call_iid =
  Queue.add (tid, mutex_addr, call_iid) (queue t addr)

let signal t ~addr =
  let q = queue t addr in
  if Queue.is_empty q then None else Some (Queue.pop q)

let broadcast t ~addr =
  let q = queue t addr in
  let all = List.of_seq (Queue.to_seq q) in
  Queue.clear q;
  all

let waiters t ~addr = Queue.length (queue t addr)
