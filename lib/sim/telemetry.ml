let hooks () =
  match Obs.Scope.current () with
  | None -> Hooks.none
  | Some ctx ->
    let m = ctx.Obs.Scope.metrics in
    (* Handles resolved once here so the per-event path is a bare
       unsynchronized increment, never a name lookup. *)
    let instrs = Obs.Metrics.counter m "sim/instructions" in
    let control = Obs.Metrics.counter m "sim/control_events" in
    let switches = Obs.Metrics.counter m "sim/context_switches" in
    let contentions = Obs.Metrics.counter m "sim/lock_contention" in
    let parked = Obs.Metrics.histogram m "sim/parked_ns" in
    {
      Hooks.on_control =
        Some
          (fun ~time:_ _ ->
            Obs.Metrics.incr control;
            0.0);
      on_instr =
        Some
          (fun ~tid:_ ~time:_ _ ->
            Obs.Metrics.incr instrs;
            0.0);
      gate = None;
      on_sched =
        Some
          (fun event ->
            match event with
            | Hooks.Switch _ -> Obs.Metrics.incr switches
            | Hooks.Contended _ -> Obs.Metrics.incr contentions
            | Hooks.Unblocked { parked_ns; _ } ->
              Obs.Metrics.observe parked parked_ns);
      on_obs = None;
    }
