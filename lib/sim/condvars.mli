(** POSIX-style condition variables keyed by address.  [wait] parks a
    thread after the interpreter has released its mutex; [signal]/
    [broadcast] hand waiters back to the mutex acquisition path (they may
    immediately re-block there).  A signal with no waiters is lost, which
    is exactly the missed-wakeup hang class real programs suffer. *)

type t

val create : unit -> t

val wait : t -> addr:int -> tid:int -> mutex_addr:int -> call_iid:int -> unit
(** Park [tid] on the condition variable, remembering which mutex it must
    re-acquire on wakeup and which cond_wait call parked it ([call_iid]) —
    a re-acquisition that blocks must be attributed to the waiter's own
    cond_wait call, not to whatever instruction the signaller ran. *)

val signal : t -> addr:int -> (int * int * int) option
(** Oldest waiter as [(tid, mutex_addr, call_iid)], removed from the
    queue; [None] when nobody waits (the wakeup is lost). *)

val broadcast : t -> addr:int -> (int * int * int) list
(** All waiters, oldest first. *)

val waiters : t -> addr:int -> int
