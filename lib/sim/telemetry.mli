(** The simulator's telemetry hook: records scheduler activity —
    [sim/context_switches], [sim/lock_contention], the [sim/parked_ns]
    histogram — plus [sim/instructions] and [sim/control_events] counters
    into the ambient {!Obs.Scope}.

    Stack it onto other hooks with {!Hooks.combine}; every callback
    returns zero cost so the observed schedule is unchanged. *)

val hooks : unit -> Hooks.t
(** Resolved against the scope current at call time; {!Hooks.none} when
    telemetry is disabled, so the interpreter's hot path stays free of
    option checks beyond the seed's. *)
