(** Fail-stop events the simulator can detect, mirroring §4's failure
    sources: crashes (invalid memory accesses), assertion failures, and
    deadlocks reported by the runtime (the paper relies on the OS/JVM to
    flag deadlocks). *)

type crash_reason =
  | Null_deref  (** access through a (near-)null pointer *)
  | Use_after_free
  | Unmapped  (** access outside every live region *)

type lock_misuse =
  | Relock  (** locking a mutex the thread already holds *)
  | Unlock_unowned  (** unlocking a mutex another thread holds *)
  | Unlock_free  (** unlocking a mutex nobody holds *)
  | Wait_unlocked  (** cond_wait on a mutex the thread does not hold *)

type arith_fault = Div_by_zero | Rem_by_zero

type thread_misuse =
  | Create_not_function  (** thread_create's entry pc names no function *)
  | Join_unknown  (** join of a tid never spawned *)

type t =
  | Crash of { tid : int; iid : int; pc : int; reason : crash_reason; addr : int }
  | Assert_fail of { tid : int; iid : int; pc : int }
  | Deadlock of {
      waiters : (int * int * int) list;
          (** (tid, iid of the blocked lock call, lock address) for each
              thread in the cycle *)
    }
  | Lock_misuse of
      { tid : int; iid : int; pc : int; addr : int; misuse : lock_misuse }
      (** a lock-API error the runtime detects at the faulting call —
          previously these corrupted owner state or escaped as host
          exceptions; now they are fail-stop events like any other *)
  | Arith_fault of { tid : int; iid : int; pc : int; fault : arith_fault }
      (** division/remainder by zero, which a hardware SIGFPE would flag *)
  | Undef_read of { tid : int; iid : int; pc : int; rname : string }
      (** use of a register no executed instruction defined — undefined
          behaviour the interpreter turns fail-stop instead of escaping as
          a host exception (a synthesized patch that perturbs paths must
          yield a structured verdict, not abort the validation sweep) *)
  | Thread_misuse of { tid : int; iid : int; pc : int; misuse : thread_misuse }
      (** a thread-API error detected at the faulting create/join call *)

val failing_iid : t -> int
(** The instruction the failure is attributed to; for a deadlock, the lock
    call that closed the cycle (the last element of [waiters]). *)

val kind_name : t -> string
(** ["crash"], ["assert"], ["deadlock"], ["lock-misuse"], ["arith-fault"],
    ["undef-read"] or ["thread-misuse"] — what Ubuntu's ErrorTracker-style
    client reports to the server. *)

val to_string : t -> string
