(** Fail-stop events the simulator can detect, mirroring §4's failure
    sources: crashes (invalid memory accesses), assertion failures, and
    deadlocks reported by the runtime (the paper relies on the OS/JVM to
    flag deadlocks). *)

type crash_reason =
  | Null_deref  (** access through a (near-)null pointer *)
  | Use_after_free
  | Unmapped  (** access outside every live region *)

type lock_misuse =
  | Relock  (** locking a mutex the thread already holds *)
  | Unlock_unowned  (** unlocking a mutex another thread holds *)
  | Unlock_free  (** unlocking a mutex nobody holds *)
  | Wait_unlocked  (** cond_wait on a mutex the thread does not hold *)

type t =
  | Crash of { tid : int; iid : int; pc : int; reason : crash_reason; addr : int }
  | Assert_fail of { tid : int; iid : int; pc : int }
  | Deadlock of {
      waiters : (int * int * int) list;
          (** (tid, iid of the blocked lock call, lock address) for each
              thread in the cycle *)
    }
  | Lock_misuse of
      { tid : int; iid : int; pc : int; addr : int; misuse : lock_misuse }
      (** a lock-API error the runtime detects at the faulting call —
          previously these corrupted owner state or escaped as host
          exceptions; now they are fail-stop events like any other *)

val failing_iid : t -> int
(** The instruction the failure is attributed to; for a deadlock, the lock
    call that closed the cycle (the last element of [waiters]). *)

val kind_name : t -> string
(** ["crash"], ["assert"], ["deadlock"] or ["lock-misuse"] — what Ubuntu's
    ErrorTracker-style client reports to the server. *)

val to_string : t -> string
