(** Bridge from the simulator's observation hook to the happens-before
    oracle: each {!Sim.Hooks.obs_event} becomes one {!Analysis.Hb.event}
    fed to an engine.

    Observation has zero virtual-time cost (the hook neither advances the
    clock nor consumes scheduler randomness), so re-running a recorded
    failing seed with these hooks attached reproduces the exact
    interleaving the failure originally took. *)

val feed : Analysis.Hb.t -> Sim.Hooks.obs_event -> unit
(** Translate one event.  [Obs_cond_park] is dropped: parking releases
    the mutex, which the interpreter already reports as a separate
    [Obs_lock_released], and the wake edge arrives with [Obs_cond_wake]. *)

val hooks : Analysis.Hb.t -> Sim.Hooks.t
(** A hook set whose only effect is feeding the engine; pass it as
    [~extra_hooks] to {!Corpus.Runner.run_traced} or merge it with
    {!Sim.Hooks.combine}. *)
