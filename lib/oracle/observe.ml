module Hb = Analysis.Hb

let feed engine (e : Sim.Hooks.obs_event) =
  match e with
  | Sim.Hooks.Obs_access { tid; iid; addr; size; kind; _ } -> (
    match kind with
    | Sim.Hooks.Read ->
      Hb.feed engine (Hb.Access { tid; iid; addr; size; kind = Hb.Read })
    | Sim.Hooks.Write ->
      Hb.feed engine (Hb.Access { tid; iid; addr; size; kind = Hb.Write })
    | Sim.Hooks.Free -> Hb.feed engine (Hb.Free { tid; iid; addr; size }))
  | Obs_lock_attempt { tid; iid; addr; _ } ->
    Hb.feed engine (Hb.Lock_attempt { tid; iid; lock = addr })
  | Obs_lock_acquired { tid; iid; addr; _ } ->
    Hb.feed engine (Hb.Acquire { tid; iid; lock = addr })
  | Obs_lock_released { tid; iid; addr; _ } ->
    Hb.feed engine (Hb.Release { tid; iid; lock = addr })
  | Obs_cond_park _ ->
    (* The mutex handoff around a wait is already visible as its own
       release/acquire events; parking itself orders nothing. *)
    ()
  | Obs_cond_wake { waker_tid; woken_tid; cond; _ } ->
    Hb.feed engine
      (Hb.Cond_wake { waker = waker_tid; woken = woken_tid; cond })
  | Obs_spawn { parent_tid; child_tid; iid; _ } ->
    Hb.feed engine (Hb.Fork { parent = parent_tid; child = child_tid; iid })
  | Obs_join { tid; target_tid; iid; _ } ->
    Hb.feed engine (Hb.Join { tid; target = target_tid; iid })

let hooks engine =
  { Sim.Hooks.none with Sim.Hooks.on_obs = Some (feed engine) }
