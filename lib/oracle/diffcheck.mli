(** Differential cross-check: run a corpus bug through BOTH the
    trace-based diagnosis pipeline and the ground-truth happens-before
    oracle, then compare what each one blames.

    The oracle side re-executes the bug's first failing seed with the
    {!Observe} hooks attached.  Observation is free in virtual time, so
    the re-run reproduces the original failing interleaving exactly, and
    the oracle judges the very execution the diagnosis decoded from PT
    traces.

    Verdict semantics per claimed instruction pair of the top pattern:
    a pair the oracle sees as [Racy] or [Lock_ordered] is confirmed
    (both can execute in either order across runs); a pair the oracle
    proves [Enforced] — ordered by program order / fork / join / condvar
    edges that hold in every execution — can never flip, so a diagnosis
    claiming it is spurious.  [No_conflict] (the instructions never
    touched overlapping memory from different threads) is likewise
    spurious.  Deadlock cycles are checked against the oracle's
    hold-while-acquiring lock-order facts instead.

    Extra oracle races that the top pattern does not mention are
    informational only — benign races (stats counters, racy flags read
    far from the failure) must not turn an agreement into a divergence.
    Only races involving the diagnosis anchor can demote a result to
    [Diagnosis_miss]. *)

type classification =
  | Agree
      (** every pair the top pattern claims is oracle-confirmed, and the
          pattern covers the anchor's racy pairs (if any) *)
  | Diagnosis_miss
      (** the oracle found racy pairs at the diagnosis anchor that the
          top pattern does not cover *)
  | Diagnosis_spurious
      (** the top pattern claims a pair the oracle proves enforced or
          never-conflicting *)
  | Oracle_only
      (** the pipeline produced no top pattern at all, but the oracle
          found races in the failing execution *)

val classification_name : classification -> string

type pair_check = {
  a_iid : int;
  b_iid : int;
  verdict : Analysis.Hb.verdict;
}
(** One claimed pair of the top pattern with the oracle's judgement. *)

type bug_result = {
  bug_id : string;
  bug_kind : string;
  classification : classification;
  oracle_races : int;  (** racy static pairs in the failing execution *)
  oracle_events : int;  (** observation events consumed *)
  anchor_iid : int;
  top_pattern : string option;  (** [Patterns.id] of the top scorer *)
  checked : pair_check list;  (** claimed pairs, in pattern order *)
  spurious : (int * int) list;  (** claimed pairs the oracle rejects *)
  missed : Analysis.Hb.race list;  (** uncovered anchor races *)
  extra_races : int;  (** racy pairs unrelated to the diagnosis *)
  decoder_mismatches : int;
      (** reports whose trace processing differed between the production
          cursor decoder and the frozen v1 reference — must be 0: the two
          engines are bit-identical by contract *)
  notes : string list;
}

val check_bug :
  ?jobs:int -> ?cache:Pt.Decode_cache.t -> Corpus.Bug.t ->
  (bug_result, string) result
(** Full differential check of one bug: reproduce (via
    {!Corpus.Runner.collect}), diagnose, oracle-replay, classify.
    [Error _] when the bug cannot be reproduced.  Emits [oracle/races],
    [oracle/agree] and [oracle/diverge] counters into the ambient
    {!Obs.Scope} when one is enabled. *)

val check_all :
  ?jobs:int ->
  ?sweep_jobs:int ->
  ?cache:Pt.Decode_cache.t ->
  Corpus.Bug.t list ->
  (string * (bug_result, string) result) list
(** [check_bug] over a bug list, tagged by bug id, in registry order.
    [sweep_jobs] (default 1 = sequential) fans the sweep one bug per
    lane across a scoped domain pool; each lane pins nested decode
    sequential (so [jobs] is ignored while sweeping in parallel) and
    runs under a private telemetry context merged back in input order —
    the result list is identical to the sequential sweep's. *)

val diverged : bug_result -> bool
(** True for [Diagnosis_miss], [Diagnosis_spurious] and [Oracle_only]. *)

val to_json : (string * (bug_result, string) result) list -> Obs.Json.t
(** The [BENCH_oracle.json] document: per-bug classification, counters
    and pair verdicts, plus an aggregate summary block. *)
