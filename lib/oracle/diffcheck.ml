module Core = Snorlax_core
module Hb = Analysis.Hb
module Pool = Snorlax_util.Pool

type classification = Agree | Diagnosis_miss | Diagnosis_spurious | Oracle_only

let classification_name = function
  | Agree -> "agree"
  | Diagnosis_miss -> "diagnosis-miss"
  | Diagnosis_spurious -> "diagnosis-spurious"
  | Oracle_only -> "oracle-only"

type pair_check = {
  a_iid : int;
  b_iid : int;
  verdict : Hb.verdict;
}

type bug_result = {
  bug_id : string;
  bug_kind : string;
  classification : classification;
  oracle_races : int;
  oracle_events : int;
  anchor_iid : int;
  top_pattern : string option;
  checked : pair_check list;
  spurious : (int * int) list;
  missed : Hb.race list;
  extra_races : int;
  decoder_mismatches : int;
  notes : string list;
}

let diverged r =
  match r.classification with
  | Agree -> false
  | Diagnosis_miss | Diagnosis_spurious | Oracle_only -> true

(* The instruction pairs a pattern asserts can interleave the wrong way.
   An order violation claims remote-vs-anchor; an atomicity violation
   claims the remote lands between the two local accesses, i.e. both the
   local-remote and remote-anchor pairs can flip.  Deadlock cycles claim
   lock-order facts, checked separately against [Hb.lock_edges]. *)
let claimed_pairs (p : Core.Patterns.t) =
  match p with
  | Core.Patterns.Order { remote_iid; anchor_iid; _ } ->
    [ (remote_iid, anchor_iid) ]
  | Core.Patterns.Atomicity { local_iid; remote_iid; anchor_iid; _ } ->
    [ (local_iid, remote_iid); (remote_iid, anchor_iid) ]
  | Core.Patterns.Deadlock_cycle _ -> []

let confirmed = function
  | Hb.Conflict { ordering = Hb.Racy; _ }
  | Hb.Conflict { ordering = Hb.Lock_ordered; _ } ->
    true
  | Hb.Conflict { ordering = Hb.Enforced; _ } | Hb.No_conflict -> false

let norm (a, b) = if a <= b then (a, b) else (b, a)

(* A two-thread lock cycle among the hold-while-acquiring facts: thread
   t1 held [la] wanting [lb] while some other thread held [lb] wanting
   [la].  The corpus deadlocks are all two-sided, which keeps the check
   honest without a full cycle search. *)
let witnesses_two_cycle edges =
  List.exists
    (fun (t1, la, _, lb, _) ->
      List.exists
        (fun (t2, lc, _, ld, _) -> t1 <> t2 && lc = lb && ld = la)
        edges)
    edges

(* Each deadlock side (hold_iid, attempt_iid) must be witnessed by a
   hold-while-acquiring fact from some thread, and the witnessing threads
   must not all coincide (a one-thread "cycle" is a relock, not a
   deadlock).  Returns (unwitnessed sides, notes). *)
let check_deadlock_sides edges sides =
  let witness (hold, attempt) =
    List.find_opt
      (fun (_, _, held_iid, _, wanted_iid) ->
        held_iid = hold && wanted_iid = attempt)
      edges
  in
  let bad = ref [] and notes = ref [] and tids = ref [] in
  List.iter
    (fun side ->
      match witness side with
      | Some (tid, held_lock, _, wanted_lock, _) ->
        tids := tid :: !tids;
        notes :=
          Printf.sprintf
            "side (hold iid %d, want iid %d) witnessed: thread %d held \
             lock 0x%x wanting 0x%x"
            (fst side) (snd side) tid held_lock wanted_lock
          :: !notes
      | None -> bad := side :: !bad)
    sides;
  let distinct_tids = List.sort_uniq compare !tids in
  let notes =
    if !bad = [] && List.length distinct_tids < 2 then
      "all deadlock sides witnessed by one thread (relock, not a cycle)"
      :: !notes
    else !notes
  in
  let bad =
    if !bad = [] && List.length distinct_tids < 2 then sides else List.rev !bad
  in
  (bad, List.rev notes)

let classify ~(res : Core.Diagnosis.result) ~engine ~races ~bug_kind =
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let top = Option.map (fun s -> s.Core.Statistics.pattern) res.Core.Diagnosis.top in
  let checked, spurious =
    match top with
    | None -> ([], [])
    | Some (Core.Patterns.Deadlock_cycle { sides }) ->
      let edges = Hb.lock_edges engine in
      let bad, dnotes = check_deadlock_sides edges sides in
      List.iter (fun s -> notes := s :: !notes) dnotes;
      ([], bad)
    | Some p ->
      let checks =
        List.map
          (fun (a, b) ->
            { a_iid = a; b_iid = b; verdict = Hb.pair_verdict engine a b })
          (claimed_pairs p)
      in
      let bad =
        List.filter_map
          (fun c ->
            if confirmed c.verdict then None else Some (c.a_iid, c.b_iid))
          checks
      in
      (checks, bad)
  in
  let anchor = res.Core.Diagnosis.anchor_iid in
  let anchor_races =
    List.filter (fun (r : Hb.race) -> r.a_iid = anchor || r.b_iid = anchor) races
  in
  let covered_races =
    match top with
    | None | Some (Core.Patterns.Deadlock_cycle _) -> []
    | Some p ->
      let claimed = List.map norm (claimed_pairs p) in
      List.filter
        (fun (r : Hb.race) -> List.mem (norm (r.a_iid, r.b_iid)) claimed)
        anchor_races
  in
  let missed =
    match top with
    | None | Some (Core.Patterns.Deadlock_cycle _) -> []
    | Some _ -> if covered_races = [] then anchor_races else []
  in
  let extra_races = List.length races - List.length anchor_races in
  let classification =
    match top with
    | None ->
      if races <> [] then begin
        note "pipeline produced no pattern but the oracle saw %d racy pair(s)"
          (List.length races);
        Oracle_only
      end
      else if
        bug_kind = Corpus.Bug.Deadlock
        && witnesses_two_cycle (Hb.lock_edges engine)
      then begin
        note "pipeline produced no pattern but the oracle saw a lock cycle";
        Oracle_only
      end
      else begin
        note "no top pattern and no oracle findings";
        Agree
      end
    | Some _ ->
      if spurious <> [] then Diagnosis_spurious
      else if missed <> [] then Diagnosis_miss
      else Agree
  in
  (classification, checked, spurious, missed, extra_races, List.rev !notes)

let check_bug ?jobs ?cache (bug : Corpus.Bug.t) =
  match Corpus.Runner.collect bug () with
  | Error e -> Error e
  | Ok c ->
    let res =
      Core.Diagnosis.diagnose ?jobs ?cache c.Corpus.Runner.built.Corpus.Bug.m
        ~config:Pt.Config.default ~failing:c.Corpus.Runner.failing
        ~successful:c.Corpus.Runner.successful
    in
    (* Replay the first failing seed with the oracle attached.  [collect]
       ran that seed with no watchpoints and the default PT config; the
       observer costs zero virtual time, so the same seed re-takes the
       identical interleaving the diagnosis decoded. *)
    let seed =
      match c.Corpus.Runner.failing_seeds with
      | s :: _ -> s
      | [] -> invalid_arg "Diffcheck.check_bug: no failing seed"
    in
    let engine = Hb.create () in
    let replay =
      Corpus.Runner.run_traced ~built:c.Corpus.Runner.built ~entry:bug.Corpus.Bug.entry
        ~seed ~pt_config:Pt.Config.default ~watch_pcs:[]
        ~extra_hooks:(Observe.hooks engine) ()
    in
    let replay_notes =
      match replay.Corpus.Runner.result.Sim.Interp.outcome with
      | Sim.Interp.Failed _ | Sim.Interp.Stuck -> []
      | Sim.Interp.Completed | Sim.Interp.Fuel_exhausted ->
        [ "WARNING: oracle replay did not reproduce the failure" ]
    in
    let races = Hb.races engine in
    let classification, checked, spurious, missed, extra_races, notes =
      classify ~res ~engine ~races ~bug_kind:bug.Corpus.Bug.kind
    in
    (* Decoder engine differential: the production cursor walker and the
       frozen v1 reference pipeline must agree bit-for-bit on every
       report of every corpus bug — events, lost bytes and desyncs
       alike.  Decoding is cheap next to reproduction, so this rides the
       registry-wide cross-check for free (cache disabled: both engines
       must actually decode). *)
    let decoder_mismatches =
      let nocache = Pt.Decode_cache.create ~capacity:0 () in
      let m = c.Corpus.Runner.built.Corpus.Bug.m in
      let tp_equal (a : Core.Trace_processing.t) (b : Core.Trace_processing.t)
          =
        a.Core.Trace_processing.events = b.Core.Trace_processing.events
        && a.Core.Trace_processing.lost_bytes
           = b.Core.Trace_processing.lost_bytes
        && a.Core.Trace_processing.desynced_tids
           = b.Core.Trace_processing.desynced_tids
      in
      let bad = ref 0 in
      List.iter
        (fun r ->
          let go engine =
            Core.Diagnosis.process_failing m ~config:Pt.Config.default ~jobs:1
              ~cache:nocache ~engine r
          in
          if not (tp_equal (go `Cursor) (go `Reference)) then incr bad)
        c.Corpus.Runner.failing;
      List.iter
        (fun s ->
          let go engine =
            Core.Diagnosis.process_successful m ~config:Pt.Config.default
              ~jobs:1 ~cache:nocache ~engine s
          in
          if not (tp_equal (go `Cursor) (go `Reference)) then incr bad)
        c.Corpus.Runner.successful;
      !bad
    in
    let r =
      {
        bug_id = bug.Corpus.Bug.id;
        bug_kind = Corpus.Bug.kind_name bug.Corpus.Bug.kind;
        classification;
        oracle_races = List.length races;
        oracle_events = Hb.event_count engine;
        anchor_iid = res.Core.Diagnosis.anchor_iid;
        top_pattern =
          Option.map
            (fun s -> Core.Patterns.id s.Core.Statistics.pattern)
            res.Core.Diagnosis.top;
        checked;
        spurious;
        missed;
        extra_races;
        decoder_mismatches;
        notes = replay_notes @ notes;
      }
    in
    Obs.Scope.count "oracle/races" r.oracle_races;
    Obs.Scope.count (if diverged r then "oracle/diverge" else "oracle/agree") 1;
    Ok r

(* The registry-wide sweep, fanned one-bug-per-lane across a scoped
   pool.  Per-bug isolation keeps the parallel run equivalent to the
   sequential one: each lane pins nested decode sequential (so [jobs]
   never nests a pool inside a pool), runs under a private telemetry
   context, and results land in input order.  The only shared state is
   the decode cache, which is lock-striped. *)
let check_all ?jobs ?sweep_jobs ?cache bugs =
  let arr = Array.of_list bugs in
  let n = Array.length arr in
  let sj = match sweep_jobs with Some j -> max 1 j | None -> 1 in
  let eff = min (min sj (Domain.recommended_domain_count ())) n in
  if eff <= 1 then
    List.map
      (fun (b : Corpus.Bug.t) -> (b.Corpus.Bug.id, check_bug ?jobs ?cache b))
      bugs
  else begin
    let telemetry = Obs.Scope.enabled () in
    let out = Array.make n None in
    let regs = Array.make n None in
    Pool.with_pool ~jobs:eff (fun pool ->
        Pool.run pool n (fun i ->
            Pool.with_default_jobs 1 @@ fun () ->
            let go () = out.(i) <- Some (check_bug ~jobs:1 ?cache arr.(i)) in
            if telemetry then begin
              let c = Obs.Scope.make () in
              regs.(i) <- Some c.Obs.Scope.metrics;
              Obs.Scope.using c go
            end
            else go ()));
    Array.iter (Option.iter Obs.Scope.merge_worker) regs;
    List.init n (fun i ->
        ( arr.(i).Corpus.Bug.id,
          match out.(i) with Some r -> r | None -> assert false ))
  end

let ordering_name = function
  | Hb.Racy -> "racy"
  | Hb.Lock_ordered -> "lock-ordered"
  | Hb.Enforced -> "enforced"

let verdict_json = function
  | Hb.No_conflict -> Obs.Json.String "no-conflict"
  | Hb.Conflict { ordering; path } ->
    Obs.Json.Obj
      [
        ("ordering", Obs.Json.String (ordering_name ordering));
        ("path", Obs.Json.List (List.map (fun s -> Obs.Json.String s) path));
      ]

let result_json (r : bug_result) =
  Obs.Json.Obj
    [
      ("classification", Obs.Json.String (classification_name r.classification));
      ("kind", Obs.Json.String r.bug_kind);
      ("oracle_races", Obs.Json.Int r.oracle_races);
      ("oracle_events", Obs.Json.Int r.oracle_events);
      ("anchor_iid", Obs.Json.Int r.anchor_iid);
      ( "top_pattern",
        match r.top_pattern with
        | None -> Obs.Json.Null
        | Some id -> Obs.Json.String id );
      ( "checked_pairs",
        Obs.Json.List
          (List.map
             (fun c ->
               Obs.Json.Obj
                 [
                   ("a_iid", Obs.Json.Int c.a_iid);
                   ("b_iid", Obs.Json.Int c.b_iid);
                   ("verdict", verdict_json c.verdict);
                 ])
             r.checked) );
      ( "spurious",
        Obs.Json.List
          (List.map
             (fun (a, b) -> Obs.Json.List [ Obs.Json.Int a; Obs.Json.Int b ])
             r.spurious) );
      ( "missed",
        Obs.Json.List
          (List.map
             (fun (m : Hb.race) ->
               Obs.Json.List [ Obs.Json.Int m.a_iid; Obs.Json.Int m.b_iid ])
             r.missed) );
      ("extra_races", Obs.Json.Int r.extra_races);
      ("decoder_mismatches", Obs.Json.Int r.decoder_mismatches);
      ("notes", Obs.Json.List (List.map (fun s -> Obs.Json.String s) r.notes));
    ]

let to_json results =
  let count p =
    List.length
      (List.filter (fun (_, r) -> match r with Ok r -> p r | Error _ -> false)
         results)
  in
  let errors =
    List.length
      (List.filter (fun (_, r) -> Result.is_error r) results)
  in
  Obs.Json.Obj
    [
      ( "summary",
        Obs.Json.Obj
          [
            ("bugs", Obs.Json.Int (List.length results));
            ("agree", Obs.Json.Int (count (fun r -> r.classification = Agree)));
            ( "diagnosis_miss",
              Obs.Json.Int (count (fun r -> r.classification = Diagnosis_miss)) );
            ( "diagnosis_spurious",
              Obs.Json.Int
                (count (fun r -> r.classification = Diagnosis_spurious)) );
            ( "oracle_only",
              Obs.Json.Int (count (fun r -> r.classification = Oracle_only)) );
            ("reproduce_errors", Obs.Json.Int errors);
          ] );
      ( "bugs",
        Obs.Json.Obj
          (List.map
             (fun (id, r) ->
               match r with
               | Ok r -> (id, result_json r)
               | Error e ->
                 (id, Obs.Json.Obj [ ("error", Obs.Json.String e) ]))
             results) );
    ]
