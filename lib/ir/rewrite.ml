(* Surgical in-place edits of built modules: the patch synthesizer splices
   lock/signal scaffolding around existing instructions without rebuilding
   the program, so every untouched instruction keeps its iid (diagnoses,
   ground truth and failure signatures all key on iids).  Every mutator
   invalidates the module layout; pcs and lookup tables rebuild lazily. *)

let locate m ~iid =
  let f, b = Irmod.location_of_iid m iid in
  let rec idx n = function
    | [] -> invalid_arg "Rewrite.locate: iid not in its located block"
    | (i : Instr.t) :: rest -> if i.Instr.iid = iid then n else idx (n + 1) rest
  in
  (f, b, idx 0 b.Block.instrs)

let mint m kinds =
  List.map (fun k -> Instr.make ~iid:(Irmod.fresh_iid m) k) kinds

let splice_at (b : Block.t) at instrs =
  let rec go n = function
    | rest when n = 0 -> instrs @ rest
    | [] -> invalid_arg "Rewrite.splice_at: index out of range"
    | i :: rest -> i :: go (n - 1) rest
  in
  b.Block.instrs <- go at b.Block.instrs

let insert_before m ~iid kinds =
  let _, b, at = locate m ~iid in
  let instrs = mint m kinds in
  splice_at b at instrs;
  Irmod.invalidate_layout m;
  instrs

let insert_after m ~iid kinds =
  let _, b, at = locate m ~iid in
  let target = List.nth b.Block.instrs at in
  if Instr.is_terminator target then
    invalid_arg "Rewrite.insert_after: cannot insert after a terminator";
  let instrs = mint m kinds in
  splice_at b (at + 1) instrs;
  Irmod.invalidate_layout m;
  instrs

let append_block m (f : Func.t) ~label kinds =
  if List.exists (fun b -> String.equal b.Block.label label) f.Func.blocks then
    invalid_arg ("Rewrite.append_block: duplicate label " ^ label);
  let b = Block.create ~label in
  b.Block.instrs <- mint m kinds;
  (match List.rev b.Block.instrs with
  | last :: _ when Instr.is_terminator last -> ()
  | _ -> invalid_arg "Rewrite.append_block: block must end in a terminator");
  f.Func.blocks <- f.Func.blocks @ [ b ];
  Irmod.invalidate_layout m;
  b

let split_before m ~iid ~label =
  let f, b, at = locate m ~iid in
  if List.exists (fun b -> String.equal b.Block.label label) f.Func.blocks then
    invalid_arg ("Rewrite.split_before: duplicate label " ^ label);
  let rec take n = function
    | rest when n = 0 -> ([], rest)
    | [] -> invalid_arg "Rewrite.split_before: index out of range"
    | i :: rest ->
      let pre, post = take (n - 1) rest in
      (i :: pre, post)
  in
  let prefix, suffix = take at b.Block.instrs in
  let cont = Block.create ~label in
  cont.Block.instrs <- suffix;
  (* The new block keeps its position in the def-before-use block order by
     going right after the block it came from: registers defined in the
     prefix stay "earlier" than their uses in the suffix. *)
  let rec place = function
    | [] -> invalid_arg "Rewrite.split_before: block not in function"
    | x :: rest ->
      if x == b then x :: cont :: rest else x :: place rest
  in
  f.Func.blocks <- place f.Func.blocks;
  b.Block.instrs <-
    prefix @ mint m [ Instr.Br label ];
  Irmod.invalidate_layout m;
  (b, cont)

let retarget m (b : Block.t) ~from_ ~to_ =
  match List.rev b.Block.instrs with
  | [] -> invalid_arg "Rewrite.retarget: empty block"
  | last :: rev_prefix ->
    let sub l = if String.equal l from_ then to_ else l in
    let kind =
      match last.Instr.kind with
      | Instr.Br l -> Instr.Br (sub l)
      | Instr.Cond_br { cond; then_; else_ } ->
        Instr.Cond_br { cond; then_ = sub then_; else_ = sub else_ }
      | _ -> invalid_arg "Rewrite.retarget: terminator has no label targets"
    in
    (* Same iid: the branch is the same program point, only its target
       moved; failure signatures and ground truth stay comparable. *)
    b.Block.instrs <-
      List.rev (Instr.make ~iid:last.Instr.iid kind :: rev_prefix);
    Irmod.invalidate_layout m

let fresh_label (f : Func.t) ~base =
  let taken l =
    List.exists (fun b -> String.equal b.Block.label l) f.Func.blocks
  in
  if not (taken base) then base
  else begin
    let k = ref 1 in
    while taken (Printf.sprintf "%s%d" base !k) do
      incr k
    done;
    Printf.sprintf "%s%d" base !k
  end

let fresh_global m ~base ty =
  let taken g =
    match Irmod.global_ty m g with _ -> true | exception Not_found -> false
  in
  let name =
    if not (taken base) then base
    else begin
      let k = ref 1 in
      while taken (Printf.sprintf "%s%d" base !k) do
        incr k
      done;
      Printf.sprintf "%s%d" base !k
    end
  in
  Irmod.declare_global m name ty;
  name
