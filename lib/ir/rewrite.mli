(** In-place rewrites of built modules, for patch synthesis.

    The fix pipeline diagnoses one build of a bug program and then patches
    a {e fresh} build of the same program (builds are deterministic, so
    iids line up).  These helpers splice new instructions around existing
    ones while leaving every original instruction — and hence every iid a
    diagnosis or failure signature refers to — intact.  Each mutator calls
    {!Irmod.invalidate_layout}; pcs and lookup tables rebuild on the next
    use. *)

val locate : Irmod.t -> iid:int -> Func.t * Block.t * int
(** Enclosing function, block and in-block index of an instruction. *)

val insert_before : Irmod.t -> iid:int -> Instr.kind list -> Instr.t list
(** Splice new instructions (minted with fresh iids, in order)
    immediately before the given instruction; returns them. *)

val insert_after : Irmod.t -> iid:int -> Instr.kind list -> Instr.t list
(** Splice immediately after the given instruction.  Raises
    [Invalid_argument] when the target is a terminator. *)

val append_block :
  Irmod.t -> Func.t -> label:Instr.label -> Instr.kind list -> Block.t
(** Add a sealed block (the kind list must end in a terminator) at the end
    of the function's block list. *)

val split_before : Irmod.t -> iid:int -> label:Instr.label -> Block.t * Block.t
(** Split the instruction's block in two right before it: the original
    block keeps the prefix and branches to [label], the new block (placed
    directly after it in block order) carries the instruction, the rest of
    the suffix and the original terminator.  Returns (prefix block,
    continuation block). *)

val retarget : Irmod.t -> Block.t -> from_:Instr.label -> to_:Instr.label -> unit
(** Rewrite the block's terminator, substituting one target label for
    another (the terminator keeps its iid). *)

val fresh_label : Func.t -> base:string -> Instr.label
(** [base], or [base<k>] when taken. *)

val fresh_global : Irmod.t -> base:string -> Ty.t -> string
(** Declare (and return the name of) a new zero-initialized global,
    uniquified against existing globals. *)
