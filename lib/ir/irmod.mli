(** An LIR module: the unit of compilation the server-side analysis sees
    (the analogue of the stripped binary plus its LLVM bitcode in §5).

    Besides struct/global/function tables, a module owns the id and program
    counter spaces: every instruction has a module-unique [iid], and
    {!layout} assigns each a synthetic [pc].  The PT-model tracer emits pcs;
    the decoder and the failure-report path map them back to instructions
    with the lookup functions here. *)

type t

val create : string -> t
val name : t -> string

(** {2 Structs and globals} *)

val declare_struct : t -> string -> Ty.t list -> Ty.t
(** Registers the field list and returns [Ty.Struct name].  Redeclaration
    raises [Invalid_argument]. *)

val struct_fields : t -> string -> Ty.t list
(** Raises [Not_found] on unknown structs. *)

val declare_global : t -> string -> Ty.t -> unit
(** A zero-initialized module global of the given type. *)

val global_ty : t -> string -> Ty.t
val iter_globals : t -> (string -> Ty.t -> unit) -> unit

(** {2 Functions} *)

val add_func : t -> Func.t -> unit
val find_func : t -> string -> Func.t
(** Raises [Not_found] on unknown names. *)

val has_func : t -> string -> bool
val funcs : t -> Func.t list

(** {2 Id and register supply} *)

val fresh_iid : t -> int
val fresh_reg : t -> name:string -> ty:Ty.t -> Value.reg

(** {2 Layout and lookup} *)

val layout : t -> unit
(** Assigns pcs to all instructions and builds the lookup tables.  Must be
    called after the last function is added; idempotent. *)

val generation : t -> int
(** Incremented by every actual layout rebuild (not by idempotent
    re-calls).  Derived structures keyed on a module — e.g. the decoder's
    pc-indexed walk table — pair the module's physical identity with this
    counter to detect stale caches after [add_func] + re-layout. *)

val invalidate_layout : t -> unit
(** Mark the current layout stale so the next lookup (or explicit
    {!layout} call) rebuilds pcs and tables.  [add_func] does this
    implicitly; in-place rewrites of existing blocks (see {!Rewrite})
    must call it explicitly — the pcs shift and the iid/pc tables must
    pick up spliced instructions. *)

val instr_by_iid : t -> int -> Instr.t
val instr_at_pc : t -> int -> Instr.t
val block_start_pc : t -> fname:string -> label:string -> int
val block_at_pc : t -> int -> Func.t * Block.t
(** Resolve a block-entry pc (as carried by TIP packets). *)

val location_of_iid : t -> int -> Func.t * Block.t
(** Enclosing function and block of an instruction. *)

val iter_instrs : t -> (Func.t -> Block.t -> Instr.t -> unit) -> unit
val instr_count : t -> int

val size_of : t -> Ty.t -> int
(** Byte size of a type under this module's struct table. *)
