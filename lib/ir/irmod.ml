type t = {
  mname : string;
  structs : (string, Ty.t list) Hashtbl.t;
  globals : (string, Ty.t) Hashtbl.t;
  mutable funcs_rev : Func.t list;
  mutable next_iid : int;
  mutable next_reg : int;
  mutable laid_out : bool;
  mutable generation : int;  (* bumped by every layout rebuild *)
  by_iid : (int, Instr.t) Hashtbl.t;
  by_pc : (int, Instr.t) Hashtbl.t;
  block_pcs : (string * string, int) Hashtbl.t;
  pc_blocks : (int, Func.t * Block.t) Hashtbl.t;
  iid_locs : (int, Func.t * Block.t) Hashtbl.t;
}

let create mname =
  {
    mname;
    structs = Hashtbl.create 16;
    globals = Hashtbl.create 16;
    funcs_rev = [];
    next_iid = 0;
    next_reg = 0;
    laid_out = false;
    generation = 0;
    by_iid = Hashtbl.create 256;
    by_pc = Hashtbl.create 256;
    block_pcs = Hashtbl.create 64;
    pc_blocks = Hashtbl.create 64;
    iid_locs = Hashtbl.create 256;
  }

let name t = t.mname

let declare_struct t sname fields =
  if Hashtbl.mem t.structs sname then
    invalid_arg ("Irmod.declare_struct: duplicate " ^ sname);
  Hashtbl.add t.structs sname fields;
  Ty.Struct sname

let struct_fields t sname = Hashtbl.find t.structs sname

let declare_global t gname ty =
  if Hashtbl.mem t.globals gname then
    invalid_arg ("Irmod.declare_global: duplicate " ^ gname);
  Hashtbl.add t.globals gname ty

let global_ty t gname = Hashtbl.find t.globals gname
let iter_globals t f = Hashtbl.iter f t.globals

let add_func t f =
  t.laid_out <- false;
  t.funcs_rev <- f :: t.funcs_rev

let funcs t = List.rev t.funcs_rev

let find_func t fname =
  List.find (fun f -> String.equal f.Func.fname fname) t.funcs_rev

let has_func t fname =
  List.exists (fun f -> String.equal f.Func.fname fname) t.funcs_rev

let fresh_iid t =
  let iid = t.next_iid in
  t.next_iid <- iid + 1;
  iid

let fresh_reg t ~name ~ty =
  let rid = t.next_reg in
  t.next_reg <- rid + 1;
  { Value.rid; rname = Printf.sprintf "%s.%d" name rid; rty = ty }

(* Each instruction occupies 4 synthetic bytes; functions start on fresh
   0x1000-aligned pcs so pc ranges of different functions never collide even
   as functions grow. *)
let layout t =
  if not t.laid_out then begin
    Hashtbl.reset t.by_iid;
    Hashtbl.reset t.by_pc;
    Hashtbl.reset t.block_pcs;
    Hashtbl.reset t.pc_blocks;
    Hashtbl.reset t.iid_locs;
    let pc = ref 0x1000 in
    let visit_func f =
      pc := (!pc + 0xfff) land lnot 0xfff;
      let visit_block b =
        let start = !pc in
        Hashtbl.replace t.block_pcs (f.Func.fname, b.Block.label) start;
        Hashtbl.replace t.pc_blocks start (f, b);
        let visit_instr i =
          i.Instr.pc <- !pc;
          Hashtbl.replace t.by_iid i.Instr.iid i;
          Hashtbl.replace t.by_pc !pc i;
          Hashtbl.replace t.iid_locs i.Instr.iid (f, b);
          pc := !pc + 4
        in
        List.iter visit_instr b.Block.instrs
      in
      List.iter visit_block f.Func.blocks
    in
    List.iter visit_func (funcs t);
    t.generation <- t.generation + 1;
    t.laid_out <- true
  end

let generation t = t.generation

let invalidate_layout t = t.laid_out <- false

let ensure_layout t = if not t.laid_out then layout t

let instr_by_iid t iid =
  ensure_layout t;
  Hashtbl.find t.by_iid iid

let instr_at_pc t pc =
  ensure_layout t;
  Hashtbl.find t.by_pc pc

let block_start_pc t ~fname ~label =
  ensure_layout t;
  Hashtbl.find t.block_pcs (fname, label)

let block_at_pc t pc =
  ensure_layout t;
  Hashtbl.find t.pc_blocks pc

let location_of_iid t iid =
  ensure_layout t;
  Hashtbl.find t.iid_locs iid

let iter_instrs t f =
  let visit fn = Func.iter_instrs fn (fun b i -> f fn b i) in
  List.iter visit (funcs t)

let instr_count t =
  List.fold_left (fun acc f -> acc + Func.instr_count f) 0 t.funcs_rev

let size_of t ty = Ty.size_in_bytes ~struct_fields:(struct_fields t) ty
