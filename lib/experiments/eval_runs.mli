(** Shared, memoized end-to-end runs of the 11-bug evaluation set: each
    bug is reproduced once, ten successful traces are gathered at the
    failure location, and the full diagnosis pipeline runs — the inputs to
    §6.1 accuracy, Figure 7, Table 4 and the §6.3 latency comparison. *)

type entry = {
  bug : Corpus.Bug.t;
  collected : Corpus.Runner.collected;
  diagnosis : Snorlax_core.Diagnosis.result;
}

val get_result : ?max_tries:int -> Corpus.Bug.t -> (entry, string) result
(** Memoized per bug id (the corpus builds deterministically, so one
    collection per process is enough).  Errors are not cached; the
    message carries the bug id, system, kind and seed-scan context on
    top of the collect loop's own counts.  [max_tries] bounds the
    reproduction scan (see {!Corpus.Runner.collect}). *)

val get : Corpus.Bug.t -> entry
(** [get_result] for callers that treat reproduction failure as fatal;
    raises [Failure] with the same enriched message. *)

val eval_entries : unit -> entry list
(** All 11 evaluation bugs, collected and diagnosed. *)

val accuracy_of : entry -> bool * float * bool
(** (root-cause match vs ground truth, ordering accuracy A_O, unique top
    F1). *)
