module Core = Snorlax_core

type entry = {
  bug : Corpus.Bug.t;
  collected : Corpus.Runner.collected;
  diagnosis : Core.Diagnosis.result;
}

let cache : (string, entry) Hashtbl.t = Hashtbl.create 16

let get_result ?max_tries bug =
  match Hashtbl.find_opt cache bug.Corpus.Bug.id with
  | Some e -> Ok e
  | None -> (
    match Corpus.Runner.collect bug ?max_tries () with
    | Error msg ->
      (* Keep the full reproduction context: which bug, which system,
         and where the seed scan started — the collect loop's own
         message only carries counts. *)
      Error
        (Printf.sprintf "bug %s (system %s, %s, seeds from 1): %s"
           bug.Corpus.Bug.id bug.Corpus.Bug.system
           (Corpus.Bug.kind_name bug.Corpus.Bug.kind)
           msg)
    | Ok collected ->
      let diagnosis =
        Core.Diagnosis.diagnose collected.Corpus.Runner.built.Corpus.Bug.m
          ~config:Pt.Config.default ~failing:collected.Corpus.Runner.failing
          ~successful:collected.Corpus.Runner.successful
      in
      let e = { bug; collected; diagnosis } in
      Hashtbl.add cache bug.Corpus.Bug.id e;
      Ok e)

let get bug =
  match get_result bug with
  | Ok e -> e
  | Error msg -> failwith ("Eval_runs.get: " ^ msg)

let eval_entries () = List.map get Corpus.Registry.eval_set

let accuracy_of e =
  let gt = e.collected.Corpus.Runner.built.Corpus.Bug.ground_truth in
  match e.diagnosis.Core.Diagnosis.top with
  | None -> (false, 0.0, false)
  | Some top ->
    ( Core.Accuracy.root_cause_match ~diagnosed:top.Core.Statistics.pattern
        ~ground_truth:gt,
      Core.Accuracy.ordering_accuracy ~diagnosed:top.Core.Statistics.pattern
        ~ground_truth:gt,
      e.diagnosis.Core.Diagnosis.unique_top )
