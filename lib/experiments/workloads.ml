module B = Lir.Builder
module V = Lir.Value
module T = Lir.Ty

type spec = {
  name : string;
  requests : int;
  io_gap_ns : int;
  inner_iters : int;
  lock_every : int;
}

(* Profiles loosely follow each system's character: pbzip2 is almost pure
   compute (highest branch density per wall-clock second); servers spend
   most time waiting for clients; aget is network-bound. *)
let specs =
  [
    { name = "mysql"; requests = 60; io_gap_ns = 22_000; inner_iters = 900; lock_every = 2 };
    { name = "httpd"; requests = 70; io_gap_ns = 26_000; inner_iters = 700; lock_every = 3 };
    { name = "memcached"; requests = 90; io_gap_ns = 9_000; inner_iters = 500; lock_every = 1 };
    { name = "sqlite"; requests = 60; io_gap_ns = 14_000; inner_iters = 1_000; lock_every = 2 };
    { name = "transmission"; requests = 50; io_gap_ns = 30_000; inner_iters = 600; lock_every = 4 };
    { name = "pbzip2"; requests = 40; io_gap_ns = 2_500; inner_iters = 2_600; lock_every = 5 };
    { name = "aget"; requests = 60; io_gap_ns = 24_000; inner_iters = 450; lock_every = 3 };
  ]

let find name = List.find (fun s -> String.equal s.name name) specs

let build spec ~threads =
  let m = Lir.Irmod.create (spec.name ^ "-workload") in
  ignore (Corpus.Dsl.mutex_struct m);
  Lir.Irmod.declare_global m "stats_lock" (T.Struct "Mutex");
  Lir.Irmod.declare_global m "total_served" T.I64;
  let worker_access_iids = ref [] in
  let note b = worker_access_iids := B.last_iid b :: !worker_access_iids in
  B.define m "worker" ~params:[ ("arg", T.I64) ] ~ret:T.Void (fun b ->
      let acc = B.alloca b ~name:"acc" T.I64 in
      B.store b ~value:(V.i64 0) ~ptr:acc;
      note b;
      B.for_ b ~from:0 ~below:(V.i64 spec.requests) (fun r ->
          B.io_delay b ~ns:spec.io_gap_ns;
          (* Branch-dense request processing: checksum-like inner loop. *)
          B.for_ b ~from:0 ~below:(V.i64 spec.inner_iters) (fun i ->
              let v = B.load b ~name:"v" acc in
              note b;
              let v = B.add b v i in
              let v = B.binop b Lir.Instr.Xor v (V.i64 0x5bd1) in
              B.store b ~value:v ~ptr:acc;
              note b);
          (* Periodic shared-state update under the stats lock. *)
          let due =
            B.icmp b Lir.Instr.Eq
              (B.binop b Lir.Instr.Srem r (V.i64 spec.lock_every))
              (V.i64 0)
          in
          B.if_ b due
            ~then_:(fun () ->
              B.mutex_lock b (V.Global "stats_lock");
              let t = B.load b ~name:"t" (V.Global "total_served") in
              note b;
              B.store b ~value:(B.add b t (V.i64 1))
                ~ptr:(V.Global "total_served");
              note b;
              B.mutex_unlock b (V.Global "stats_lock"))
            ~else_:(fun () -> ()));
      B.ret_void b);
  B.define m "main" ~params:[] ~ret:T.Void (fun b ->
      B.call_void b Lir.Intrinsics.mutex_init [ V.Global "stats_lock" ];
      let slots = B.alloca b ~name:"tids" (T.Array (T.I64, threads)) in
      B.for_ b ~from:0 ~below:(V.i64 threads) (fun i ->
          let tid = B.spawn b "worker" i in
          let slot = B.index b slots i in
          B.store b ~value:tid ~ptr:slot);
      B.for_ b ~from:0 ~below:(V.i64 threads) (fun i ->
          let slot = B.index b slots i in
          let tid = B.load b ~name:"tid" slot in
          B.join b tid);
      B.ret_void b);
  Lir.Verify.check_exn m;
  let accesses = !worker_access_iids in
  (m, fun iid -> List.mem iid accesses)

let run_time m ~seed ~hooks =
  let config = { Sim.Interp.default_config with seed; hooks } in
  let r = Sim.Interp.run ~config m ~entry:"main" in
  (match r.Sim.Interp.outcome with
  | Sim.Interp.Completed -> ()
  | Sim.Interp.Failed _ | Sim.Interp.Stuck | Sim.Interp.Fuel_exhausted ->
    invalid_arg "Workloads.run_time: workload did not complete");
  r.Sim.Interp.final_time_ns

let run_overhead spec ~threads ~seed ~tracer_config ~gist_costs =
  let m, monitored = build spec ~threads in
  Lir.Irmod.layout m;
  let base = run_time m ~seed ~hooks:Sim.Hooks.none in
  let hooks =
    match tracer_config, gist_costs with
    | Some config, _ ->
      let tracer = Pt.Tracer.create ~config in
      {
        Sim.Hooks.on_control =
          Some (fun ~time e -> Pt.Tracer.on_control tracer ~time e);
        on_instr = None;
        gate = None;
        on_sched = None;
        on_obs = None;
      }
    | None, Some costs ->
      Gist.instrument_hooks ~monitored ~threads ~costs
    | None, None -> Sim.Hooks.none
  in
  let monitored_time = run_time m ~seed ~hooks in
  (monitored_time -. base) /. base
