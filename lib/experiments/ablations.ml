module Core = Snorlax_core
module Tablefmt = Snorlax_util.Tablefmt

let diagnose_with_config bug ~pt_config =
  match Corpus.Runner.collect bug ~pt_config () with
  | Error msg -> Error msg
  | Ok c ->
    let res =
      Core.Diagnosis.diagnose c.Corpus.Runner.built.Corpus.Bug.m
        ~config:pt_config ~failing:c.Corpus.Runner.failing
        ~successful:c.Corpus.Runner.successful
    in
    Ok (c, res)

let correctness c (res : Core.Diagnosis.result) =
  match res.Core.Diagnosis.top with
  | None -> (false, false)
  | Some top ->
    ( true,
      Core.Accuracy.root_cause_match ~diagnosed:top.Core.Statistics.pattern
        ~ground_truth:c.Corpus.Runner.built.Corpus.Bug.ground_truth )

(* --- timing granularity -------------------------------------------------- *)

type timing_row = {
  mode : string;
  patterns : int;
  diagnosed : bool;
  correct : bool;
  candidates : int;
}

let timing_sweep ?(bug_id = "mysql-7") () =
  let bug = Corpus.Registry.find_exn bug_id in
  let modes =
    [
      ("cyc+mtc (default)", Pt.Config.Cyc_and_mtc { mtc_period_ns = 1024 });
      ("mtc only, 4 us", Pt.Config.Mtc_only { mtc_period_ns = 4_096 });
      ("mtc only, 64 us", Pt.Config.Mtc_only { mtc_period_ns = 65_536 });
      ("mtc only, 1 ms", Pt.Config.Mtc_only { mtc_period_ns = 1_048_576 });
      ("no timing", Pt.Config.No_timing);
    ]
  in
  List.map
    (fun (mode, timing) ->
      let pt_config = { Pt.Config.default with Pt.Config.timing } in
      match diagnose_with_config bug ~pt_config with
      | Error _ ->
        { mode; patterns = 0; diagnosed = false; correct = false; candidates = 0 }
      | Ok (c, res) ->
        let diagnosed, correct = correctness c res in
        {
          mode;
          patterns = List.length res.Core.Diagnosis.scored;
          diagnosed;
          correct;
          candidates = res.Core.Diagnosis.stage_counts.Core.Diagnosis.after_points_to;
        })
    modes

(* --- ring-buffer size ----------------------------------------------------- *)

type ring_row = {
  ring_bytes : int;
  decoded_events : int;
  r_diagnosed : bool;
  r_correct : bool;
}

let ring_sweep ?(bug_id = "pbzip2-1") () =
  let bug = Corpus.Registry.find_exn bug_id in
  List.map
    (fun ring_bytes ->
      (* The PSB cadence is a fixed driver setting (4 KB, as deployed);
         rings smaller than it cannot re-sync after wrap-around. *)
      let pt_config =
        { Pt.Config.default with Pt.Config.buffer_size = ring_bytes }
      in
      match diagnose_with_config bug ~pt_config with
      | Error _ ->
        { ring_bytes; decoded_events = 0; r_diagnosed = false; r_correct = false }
      | Ok (c, res) ->
        let diagnosed, correct = correctness c res in
        let first = List.hd c.Corpus.Runner.failing in
        let tp =
          Core.Diagnosis.process_failing c.Corpus.Runner.built.Corpus.Bug.m
            ~config:pt_config first
        in
        {
          ring_bytes;
          decoded_events = Array.length tp.Core.Trace_processing.events;
          r_diagnosed = diagnosed;
          r_correct = correct;
        })
    [ 65536; 16384; 6144; 2048; 512 ]

(* --- successful-trace budget ---------------------------------------------- *)

type budget_row = {
  successes : int;
  top_f1 : float;
  margin : float;
  b_correct : bool;
}

let success_budget_sweep ?(bug_id = "pbzip2-1") ?max_tries () =
  let bug = Corpus.Registry.find_exn bug_id in
  match Corpus.Runner.collect bug ?max_tries () with
  | Error msg ->
    (* Propagate instead of failwith-ing so callers keep the bug and
       seed context the sweep ran under. *)
    Error
      (Printf.sprintf "bug %s (system %s, seeds from 1): %s" bug_id
         bug.Corpus.Bug.system msg)
  | Ok c ->
    let m = c.Corpus.Runner.built.Corpus.Bug.m in
    let gt = c.Corpus.Runner.built.Corpus.Bug.ground_truth in
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    Ok
      (List.map
      (fun successes ->
        let res =
          Core.Diagnosis.diagnose m ~config:Pt.Config.default
            ~failing:c.Corpus.Runner.failing
            ~successful:(take successes c.Corpus.Runner.successful)
        in
        match res.Core.Diagnosis.scored with
        | [] -> { successes; top_f1 = 0.0; margin = 0.0; b_correct = false }
        | (top : Core.Statistics.scored) :: _ ->
          let correct =
            Core.Accuracy.root_cause_match
              ~diagnosed:top.Core.Statistics.pattern ~ground_truth:gt
          in
          (* The margin is the F1 gap between the best pattern covering
             the ground-truth instructions (the RWR sibling of a WR root
             cause counts: same finding) and the best pattern naming other
             code.  Zero means statistics cannot tell them apart. *)
          let covers_gt (s : Core.Statistics.scored) =
            let iids = Core.Patterns.ordered_iids s.Core.Statistics.pattern in
            List.for_all (fun g -> List.mem g iids) gt
          in
          let best pred =
            List.fold_left
              (fun acc (s : Core.Statistics.scored) ->
                if pred s then Float.max acc s.Core.Statistics.f1 else acc)
              0.0 res.Core.Diagnosis.scored
          in
          {
            successes;
            top_f1 = top.Core.Statistics.f1;
            margin = best covers_gt -. best (fun s -> not (covers_gt s));
            b_correct = correct;
          })
      [ 0; 1; 2; 5; 10 ])

(* --- printing -------------------------------------------------------------- *)

let print_all () =
  Printf.printf "\n=== Ablation: timing-packet granularity (mysql-7) ===\n";
  let t =
    Tablefmt.create
      ~headers:[ "timing mode"; "candidates"; "patterns"; "diagnosed"; "correct" ]
  in
  Tablefmt.set_align t
    Tablefmt.[ Left; Right; Right; Left; Left ];
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          r.mode;
          string_of_int r.candidates;
          string_of_int r.patterns;
          (if r.diagnosed then "yes" else "no");
          (if r.correct then "yes" else "events-only");
        ])
    (timing_sweep ());
  Tablefmt.print t;
  Printf.printf
    "Coarser timing keeps the candidate events but erodes the ordering; \
     with no timing the tool degrades to listing events, as section 7 \
     describes.\n";
  Printf.printf "\n=== Ablation: ring-buffer size (pbzip2-1) ===\n";
  let t =
    Tablefmt.create
      ~headers:[ "ring (bytes)"; "decoded events"; "diagnosed"; "correct" ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          string_of_int r.ring_bytes;
          string_of_int r.decoded_events;
          (if r.r_diagnosed then "yes" else "no");
          (if r.r_correct then "yes" else "no");
        ])
    (ring_sweep ());
  Tablefmt.print t;
  Printf.printf
    "The window shrinks with the ring until the bug's control-flow \
     footprint (and eventually the PSB sync point) falls out — the \
     short-distance-hypothesis limit of section 7.\n";
  Printf.printf "\n=== Ablation: successful-trace budget (pbzip2-1) ===\n";
  let t =
    Tablefmt.create ~headers:[ "success traces"; "top F1"; "margin"; "correct" ]
  in
  (match success_budget_sweep () with
  | Error msg -> Printf.printf "success-budget sweep unavailable: %s\n" msg
  | Ok rows ->
    List.iter
      (fun r ->
        Tablefmt.add_row t
          [
            string_of_int r.successes;
            Printf.sprintf "%.2f" r.top_f1;
            Printf.sprintf "%.2f" r.margin;
            (if r.b_correct then "yes" else "no");
          ])
      rows;
    Tablefmt.print t);
  Printf.printf
    "Without successful traces every candidate ties at F1 = 1; a handful \
     of traces separates the root cause, supporting the paper's 10x cap \
     (section 4.5).\n"
