(** Ablations of the design choices DESIGN.md calls out (beyond Table 4
    and Figure 7, which already ablate scope restriction and type
    ranking): timing-packet granularity, ring-buffer size, and the
    successful-trace budget. *)

type timing_row = {
  mode : string;
  patterns : int;  (** candidate patterns the pipeline could still form *)
  diagnosed : bool;
  correct : bool;
  candidates : int;  (** aliasing instructions — reported even unordered *)
}

val timing_sweep : ?bug_id:string -> unit -> timing_row list
(** Re-trace and re-diagnose one bug under CYC+MTC (default), MTC-only at
    widening periods, and no timing at all.  Coarser timing keeps the
    candidate events but loses the ordering, exactly the degradation §7
    describes. *)

type ring_row = {
  ring_bytes : int;
  decoded_events : int;  (** events surviving in the failing thread *)
  r_diagnosed : bool;
  r_correct : bool;
}

val ring_sweep : ?bug_id:string -> unit -> ring_row list
(** Shrink the per-thread ring buffer: once the window (and eventually
    its PSB sync point) no longer covers the bug's control-flow
    footprint, diagnosis degrades — the short-distance-hypothesis limit
    of §7. *)

type budget_row = {
  successes : int;
  top_f1 : float;
  margin : float;  (** top F1 minus the best non-matching pattern's F1 *)
  b_correct : bool;
}

val success_budget_sweep :
  ?bug_id:string -> ?max_tries:int -> unit -> (budget_row list, string) result
(** Diagnose with 0..10 successful traces: without successes every
    pattern ties at F1 = 1 (no statistical power); a few traces restore
    the separation, supporting the paper's empirically-chosen 10x cap.
    [Error _] when the bug will not reproduce within [max_tries] seeds;
    the message carries the bug id, system and seed-scan context. *)

val print_all : unit -> unit
