module Stats = Snorlax_util.Stats

type measurement = {
  bug : Corpus.Bug.t;
  deltas_us : float list list;
  runs_to_reproduce : int list;
}

type row = {
  r_bug : Corpus.Bug.t;
  avg_us : float list;
  std_us : float list;
  min_us : float;
}

(* Timestamp target instructions via the instruction hook — the stand-in
   for clock_gettime calls injected as immediate predecessors (§3.2).
   The last occurrence before the failure is the one in the bug. *)
let measure ?(samples = 10) ?(max_tries = 4000) bug =
  let built = bug.Corpus.Bug.build () in
  Lir.Irmod.layout built.Corpus.Bug.m;
  let pairs = built.Corpus.Bug.delta_pairs in
  let watched =
    List.sort_uniq compare
      (List.concat_map (fun (a, b) -> [ a; b ]) pairs)
  in
  let deltas = Array.make (List.length pairs) [] in
  let repro_runs = ref [] in
  let seed = ref 1 in
  let tries_since = ref 0 in
  let collected = ref 0 in
  while !collected < samples && !seed <= max_tries do
    incr tries_since;
    let last_time = Hashtbl.create 8 in
    let hooks =
      {
        Sim.Hooks.on_control = None;
        on_instr =
          Some
            (fun ~tid:_ ~time (i : Lir.Instr.t) ->
              if List.mem i.Lir.Instr.iid watched then
                Hashtbl.replace last_time i.Lir.Instr.iid time;
              0.0);
        gate = None;
        on_sched = None;
        on_obs = None;
      }
    in
    let config = { Sim.Interp.default_config with seed = !seed; hooks } in
    let r = Sim.Interp.run ~config built.Corpus.Bug.m ~entry:bug.Corpus.Bug.entry in
    (match r.Sim.Interp.outcome with
    | Sim.Interp.Failed _ ->
      let ok =
        List.for_all
          (fun (a, b) -> Hashtbl.mem last_time a && Hashtbl.mem last_time b)
          pairs
      in
      if ok then begin
        List.iteri
          (fun k (a, b) ->
            let dt =
              Float.abs (Hashtbl.find last_time b -. Hashtbl.find last_time a)
              /. 1000.0
            in
            deltas.(k) <- dt :: deltas.(k))
          pairs;
        repro_runs := !tries_since :: !repro_runs;
        tries_since := 0;
        incr collected
      end
    | Sim.Interp.Completed | Sim.Interp.Stuck | Sim.Interp.Fuel_exhausted -> ());
    incr seed
  done;
  if !collected < samples then
    failwith
      (Printf.sprintf "Hypothesis.measure: %s reproduced only %d/%d times"
         bug.Corpus.Bug.id !collected samples);
  {
    bug;
    deltas_us = Array.to_list (Array.map List.rev deltas);
    runs_to_reproduce = List.rev !repro_runs;
  }

let row_of_measurement m =
  let avg_us = List.map Stats.mean m.deltas_us in
  let std_us = List.map Stats.stddev m.deltas_us in
  let min_us =
    List.fold_left
      (fun acc ds -> List.fold_left Float.min acc ds)
      infinity m.deltas_us
  in
  { r_bug = m.bug; avg_us; std_us; min_us }

let run ?samples ~kind () =
  List.map
    (fun bug -> row_of_measurement (measure ?samples bug))
    (Corpus.Registry.by_kind kind)

let summary tables =
  let rows = List.concat tables in
  let all_avgs = List.concat_map (fun r -> r.avg_us) rows in
  let lo, hi = Stats.min_max all_avgs in
  let global_min =
    List.fold_left (fun acc r -> Float.min acc r.min_us) infinity rows
  in
  (lo, hi, global_min)
