(** The end-to-end server-side pipeline (Figure 2, steps 2–7): trace
    processing, hybrid scope-restricted points-to analysis, type-based
    ranking, bug-pattern computation, and statistical diagnosis.

    The per-stage candidate counts feed Figure 7 (stage contributions);
    the timings feed Table 4 (hybrid vs whole-program analysis time). *)

type stage_counts = {
  total_instrs : int;  (** static instructions in the module *)
  after_trace_processing : int;  (** executed instructions (step 2) *)
  after_points_to : int;  (** candidates aliasing the anchor (step 4) *)
  after_type_ranking : int;  (** rank-1 candidates prioritized (step 5) *)
  after_patterns : int;  (** distinct instructions in patterns (step 6) *)
  after_statistics : int;  (** instructions in the top pattern (step 7) *)
}

type timings = {
  hybrid_analysis_s : float;  (** points-to over the executed scope *)
  pipeline_s : float;  (** full steps 2–7 *)
}
(** Compatibility shim: both fields are now derived from the telemetry
    spans (wall-clock), not [Sys.time] CPU sampling. *)

val stage_names : string list
(** The seven pipeline stage span names, in execution order:
    [diagnosis/layout], [diagnosis/trace_processing],
    [diagnosis/points_to], [diagnosis/anchor], [diagnosis/type_ranking],
    [diagnosis/patterns], [diagnosis/statistics].  Each carries a
    [candidates] arg with that stage's funnel count. *)

type result = {
  scored : Statistics.scored list;
  top : Statistics.scored option;
  unique_top : bool;
  stage_counts : stage_counts;
  timings : timings;
  anchor_iid : int;  (** the resolved memory-access anchor *)
  executed_count : int;
  desynced : bool;
  spans : Obs.Span.span list;
      (** this run's telemetry: the [diagnosis] root span followed by the
          seven {!stage_names} stage spans, in start order.  Recorded into
          the ambient {!Obs.Scope} when one is enabled, a private
          collector otherwise. *)
}

val diagnose :
  ?jobs:int ->
  ?cache:Pt.Decode_cache.t ->
  Lir.Irmod.t ->
  config:Pt.Config.t ->
  failing:Report.failing_report list ->
  successful:Report.success_report list ->
  result
(** Diagnose from one or more failing reports (Snorlax needs exactly one;
    more only sharpen statistics) plus successful-execution reports.
    Raises [Invalid_argument] when [failing] is empty.

    [?jobs] and [?cache] govern the trace-processing stage (see
    {!Trace_processing.process}): decode parallelism defaults to
    {!Snorlax_util.Pool.default_jobs} and decode memoization to
    {!Pt.Decode_cache.shared}. *)

val process_failing :
  Lir.Irmod.t ->
  config:Pt.Config.t ->
  ?jobs:int ->
  ?cache:Pt.Decode_cache.t ->
  ?engine:[ `Cursor | `Reference ] ->
  Report.failing_report ->
  Trace_processing.t
(** Decode a failing report's traces, replaying each blocked/failing
    thread to its reported pc.  [?engine] selects the decoder
    implementation (see {!Trace_processing.process}); benchmarks use
    [`Reference] to time the frozen v1 baseline through the same
    pipeline. *)

val process_successful :
  Lir.Irmod.t ->
  config:Pt.Config.t ->
  ?jobs:int ->
  ?cache:Pt.Decode_cache.t ->
  ?engine:[ `Cursor | `Reference ] ->
  Report.success_report ->
  Trace_processing.t
(** Decode a successful report, replaying the triggering thread to the
    watched pc. *)

val resolve_anchor :
  Lir.Irmod.t -> Trace_processing.t -> Report.failing_report -> int
(** The memory access the diagnosis anchors on: the failing instruction
    itself when it is a load/store/lock call, otherwise the nearest
    preceding memory access in the failing thread (assert-style failures
    fail on a register value fed by that access). *)
