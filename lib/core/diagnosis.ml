module Tp = Trace_processing

type stage_counts = {
  total_instrs : int;
  after_trace_processing : int;
  after_points_to : int;
  after_type_ranking : int;
  after_patterns : int;
  after_statistics : int;
}

type timings = { hybrid_analysis_s : float; pipeline_s : float }

type result = {
  scored : Statistics.scored list;
  top : Statistics.scored option;
  unique_top : bool;
  stage_counts : stage_counts;
  timings : timings;
  anchor_iid : int;
  executed_count : int;
  desynced : bool;
  spans : Obs.Span.span list;
}

let stage_names =
  [
    "diagnosis/layout";
    "diagnosis/trace_processing";
    "diagnosis/points_to";
    "diagnosis/anchor";
    "diagnosis/type_ranking";
    "diagnosis/patterns";
    "diagnosis/statistics";
  ]

let build_def_table m =
  let tbl = Hashtbl.create 256 in
  Lir.Irmod.iter_instrs m (fun _ _ i ->
      match Lir.Instr.defined_reg i with
      | Some r -> Hashtbl.replace tbl r.Lir.Value.rid i
      | None -> ());
  tbl

(* One-entry cache keyed by physical module identity: the fleet collector
   re-diagnoses the same bucket module repeatedly, and the def table is a
   pure function of the module, so rebuilding it per resolve_anchor call
   was wasted work.  Physical equality keeps a rebuilt (isomorphic but
   fresh) module from ever seeing another build's instruction objects.
   Domain-local so parallel sweeps and shard workers each memoize their
   own table instead of racing on a shared slot. *)
let def_table_cache :
    (Lir.Irmod.t * (int, Lir.Instr.t) Hashtbl.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let def_table m =
  let slot = Domain.DLS.get def_table_cache in
  match !slot with
  | Some (m', tbl) when m' == m -> tbl
  | Some _ | None ->
    let tbl = build_def_table m in
    slot := Some (m, tbl);
    tbl

(* RETracer-style provenance: follow the faulting pointer value back
   through geps/casts/arithmetic to the load that produced it — that load
   read the racing memory location. *)
let rec provenance defs (v : Lir.Value.t) =
  match v with
  | Lir.Value.Reg r -> (
    match Hashtbl.find_opt defs r.Lir.Value.rid with
    | None -> None
    | Some (def : Lir.Instr.t) -> (
      match def.Lir.Instr.kind with
      | Lir.Instr.Load _ -> Some def.Lir.Instr.iid
      | Lir.Instr.Gep { base; _ } -> provenance defs base
      | Lir.Instr.Index { base; _ } -> provenance defs base
      | Lir.Instr.Cast { src; _ } -> provenance defs src
      | Lir.Instr.Binop { lhs; _ } -> provenance defs lhs
      | _ -> None))
  | Lir.Value.Imm _ | Lir.Value.Global _ | Lir.Value.Null _
  | Lir.Value.Fn_ref _ ->
    None

(* Latest memory access the failing thread performed before the failure
   (the assert-style fallback). *)
let nearest_access m tp (r : Report.failing_report) ~reported =
  let best = ref None in
  Array.iter
    (fun (e : Tp.event) ->
      if
        e.Tp.tid = r.Report.failing_tid
        && Lir.Instr.is_memory_access (Lir.Irmod.instr_by_iid m e.Tp.iid)
      then
        match !best with
        | Some (b : Tp.event) when b.Tp.seq >= e.Tp.seq -> ()
        | Some _ | None -> best := Some e)
    tp.Tp.events;
  match !best with Some e -> e.Tp.iid | None -> reported

let resolve_anchor m tp (r : Report.failing_report) =
  let reported = Report.failing_anchor_iid r in
  match r.Report.info with
  | Report.Deadlock_info _ -> reported
  | Report.Crash_info { crash_kind; _ } -> (
    let i = Lir.Irmod.instr_by_iid m reported in
    match i.Lir.Instr.kind with
    | Lir.Instr.Load { ptr; _ } | Lir.Instr.Store { ptr; _ } -> (
      match crash_kind with
      | Report.Bad_pointer -> (
        match provenance (def_table m) ptr with
        | Some iid -> iid
        | None -> reported)
      | Report.Use_after_free | Report.Assertion -> reported)
    | _ -> nearest_access m tp r ~reported)

let tails_of m (r : Report.failing_report) =
  let pc_of iid = (Lir.Irmod.instr_by_iid m iid).Lir.Instr.pc in
  match r.Report.info with
  | Report.Crash_info { failing_iid; _ } ->
    [ (r.Report.failing_tid, pc_of failing_iid, r.Report.failure_time_ns) ]
  | Report.Deadlock_info { blocked } ->
    List.map
      (fun (tid, iid) -> (tid, pc_of iid, r.Report.failure_time_ns))
      blocked

let process_failing m ~config ?jobs ?cache ?engine (r : Report.failing_report)
    =
  Tp.process m ~config ~fail_tails:(tails_of m r) ?jobs ?cache ?engine
    r.Report.traces

let process_successful m ~config ?jobs ?cache ?engine
    (s : Report.success_report) =
  (* The successful trace was snapped at the watchpoint; replay the
     triggering thread up to the watched pc so the events right before it
     (branch-free code) participate in the statistics, exactly as the
     failing thread is replayed to the crash pc. *)
  Tp.process m ~config
    ~fail_tails:
      [ (s.Report.trigger_tid, s.Report.trigger_pc, s.Report.trigger_time_ns) ]
    ?jobs ?cache ?engine s.Report.s_traces

let diagnose ?jobs ?cache m ~config ~failing ~successful =
  let first =
    match failing with
    | [] -> invalid_arg "Diagnosis.diagnose: no failing report"
    | r :: _ -> r
  in
  (* Spans land in the ambient telemetry scope when one is enabled; a
     private collector otherwise, so the stage timings and the [spans]
     field of the result exist either way. *)
  let trace =
    match Obs.Scope.current () with
    | Some ctx -> ctx.Obs.Scope.trace
    | None -> Obs.Span.create ()
  in
  let recorded = ref [] in
  let stage name f =
    Obs.Span.with_span trace name (fun sp ->
        recorded := sp :: !recorded;
        f sp)
  in
  let set_count sp n = Obs.Span.set_arg sp "candidates" (Obs.Span.Int n) in
  stage "diagnosis" @@ fun root ->
  (* Stage 1: code layout (pc assignment; a no-op when already laid out). *)
  stage "diagnosis/layout" (fun sp ->
      Lir.Irmod.layout m;
      set_count sp (Lir.Irmod.instr_count m));
  (* Stage 2: trace processing (decode + replay) for every execution. *)
  let failing_tps, success_tps, executed =
    stage "diagnosis/trace_processing" (fun sp ->
        let failing_tps =
          List.map (process_failing m ~config ?jobs ?cache) failing
        in
        let success_tps =
          List.map (process_successful m ~config ?jobs ?cache) successful
        in
        let executed =
          List.fold_left
            (fun acc (tp : Tp.t) -> Tp.Iset.union acc tp.Tp.executed)
            Tp.Iset.empty (failing_tps @ success_tps)
        in
        set_count sp (Tp.Iset.cardinal executed);
        Obs.Span.set_arg sp "failing_runs"
          (Obs.Span.Int (List.length failing_tps));
        Obs.Span.set_arg sp "successful_runs"
          (Obs.Span.Int (List.length success_tps));
        (failing_tps, success_tps, executed))
  in
  let first_tp = List.hd failing_tps in
  (* Stage 3: hybrid points-to restricted to executed code. *)
  let points_to, pta_span =
    stage "diagnosis/points_to" (fun sp ->
        ( Analysis.Pointsto.analyze m ~scope:(fun iid ->
              Tp.Iset.mem iid executed),
          sp ))
  in
  (* Stage 4: resolve the memory-access anchor. *)
  let anchor_iid =
    stage "diagnosis/anchor" (fun sp ->
        let anchor_iid = resolve_anchor m first_tp first in
        set_count sp 1;
        Obs.Span.set_arg sp "anchor_iid" (Obs.Span.Int anchor_iid);
        anchor_iid)
  in
  (* Stage 5: candidates ranked by type. *)
  let candidates, type_ranking_span =
    stage "diagnosis/type_ranking" (fun sp ->
        let prefer_free =
          match first.Report.info with
          | Report.Crash_info { crash_kind = Report.Use_after_free; _ } -> true
          | Report.Crash_info _ | Report.Deadlock_info _ -> false
        in
        ( Type_ranking.candidates m ~points_to ~executed ~anchor_iid
            ~prefer_free (),
          sp ))
  in
  (* Stage 6: bug patterns from the first failing trace. *)
  let patterns, patterns_span =
    stage "diagnosis/patterns" (fun sp ->
        let info =
          match first.Report.info with
          | Report.Crash_info { crash_kind; _ } ->
            Report.Crash_info { failing_iid = anchor_iid; crash_kind }
          | Report.Deadlock_info _ as d -> d
        in
        ( Patterns.generate m ~points_to ~tp:first_tp ~info
            ~failing_tid:first.Report.failing_tid ~candidates,
          sp ))
  in
  (* Stage 7: statistical diagnosis over all runs. *)
  let scored, top, statistics_span =
    stage "diagnosis/statistics" (fun sp ->
        let scored =
          Statistics.score m ~points_to ~patterns ~failing:failing_tps
            ~successful:success_tps
        in
        (scored, Statistics.top scored, sp))
  in
  let distinct_iids ps =
    List.sort_uniq compare (List.concat_map Patterns.ordered_iids ps)
  in
  let rank1 = Type_ranking.rank1_count candidates in
  let stage_counts =
    {
      total_instrs = Lir.Irmod.instr_count m;
      after_trace_processing = Tp.Iset.cardinal executed;
      after_points_to = List.length candidates;
      after_type_ranking = (if rank1 > 0 then rank1 else List.length candidates);
      after_patterns = List.length (distinct_iids patterns);
      after_statistics =
        (match top with
        | Some s -> List.length (Patterns.ordered_iids s.Statistics.pattern)
        | None -> 0);
    }
  in
  (* Funnel counts only known now; span args stay writable after finish. *)
  set_count pta_span stage_counts.after_points_to;
  set_count type_ranking_span stage_counts.after_type_ranking;
  set_count patterns_span stage_counts.after_patterns;
  set_count statistics_span stage_counts.after_statistics;
  (* The legacy timing shim, derived from the spans (wall-clock seconds). *)
  let timings =
    {
      hybrid_analysis_s = Obs.Span.duration_ns pta_span /. 1e9;
      pipeline_s = Obs.Span.elapsed_ns trace root /. 1e9;
    }
  in
  {
    scored;
    top;
    unique_top = Statistics.is_unique_top scored;
    stage_counts;
    timings;
    anchor_iid;
    executed_count = Tp.Iset.cardinal executed;
    desynced =
      List.exists (fun (tp : Tp.t) -> tp.Tp.desynced_tids <> []) failing_tps;
    spans = List.rev !recorded;
  }
