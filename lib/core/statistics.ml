module Stats = Snorlax_util.Stats

type scored = {
  pattern : Patterns.t;
  f1 : float;
  precision : float;
  recall : float;
  present_in_failing : int;
  present_in_successful : int;
}

let score m ~points_to ~patterns ~failing ~successful =
  let score_one pattern =
    let count tps =
      List.length
        (List.filter (fun tp -> Patterns.present_in m ~points_to pattern tp) tps)
    in
    let tp_count = count failing in
    let fp_count = count successful in
    let fn_count = List.length failing - tp_count in
    let precision, recall =
      Stats.precision_recall ~true_pos:tp_count ~false_pos:fp_count
        ~false_neg:fn_count
    in
    {
      pattern;
      f1 = Stats.f1 ~precision ~recall;
      precision;
      recall;
      present_in_failing = tp_count;
      present_in_successful = fp_count;
    }
  in
  let scored = List.map score_one patterns in
  (* Equal F1 scores are broken toward the structurally simpler pattern
     (order/deadlock before atomicity): an order violation whose failing
     thread also read the variable earlier always induces a tying
     atomicity candidate, and the fix developers apply targets the order. *)
  let class_rank = function
    | Patterns.Order _ | Patterns.Deadlock_cycle _ -> 0
    | Patterns.Atomicity _ -> 1
  in
  (* Same-class ties are broken by proximate cause: among remote accesses
     that all perfectly separate failing from successful runs, the one
     that executed *last* before the failure is the one the failing read
     actually observed (e.g. the free racing a reader outranks the store
     that preceded that free). *)
  let proximity =
    match failing with
    | [] -> fun _ -> 0
    | tp :: _ -> (
      fun pattern ->
        match pattern with
        | Patterns.Order { remote_iid; _ }
        | Patterns.Atomicity { remote_iid; _ } ->
          List.fold_left
            (fun acc (e : Trace_processing.event) ->
              max acc e.Trace_processing.seq)
            (-1)
            (Trace_processing.instances tp ~iid:remote_iid)
        | Patterns.Deadlock_cycle _ -> 0)
  in
  let cmp a b =
    match compare b.f1 a.f1 with
    | 0 -> (
      match compare (class_rank a.pattern) (class_rank b.pattern) with
      | 0 -> compare (proximity b.pattern) (proximity a.pattern)
      | c -> c)
    | c -> c
  in
  List.stable_sort cmp scored

let top = function [] -> None | s :: _ -> Some s

let is_unique_top = function
  | [] | [ _ ] -> true
  | s1 :: s2 :: _ -> s1.f1 > s2.f1
