module Stats = Snorlax_util.Stats

type scored = {
  pattern : Patterns.t;
  f1 : float;
  precision : float;
  recall : float;
  present_in_failing : int;
  present_in_successful : int;
}

let of_counts pattern ~present_in_failing ~present_in_successful ~n_failing =
  let fn_count = n_failing - present_in_failing in
  let precision, recall =
    Stats.precision_recall ~true_pos:present_in_failing
      ~false_pos:present_in_successful ~false_neg:fn_count
  in
  {
    pattern;
    f1 = Stats.f1 ~precision ~recall;
    precision;
    recall;
    present_in_failing;
    present_in_successful;
  }

(* Equal F1 scores are broken toward the structurally simpler pattern
   (order/deadlock before atomicity): an order violation whose failing
   thread also read the variable earlier always induces a tying
   atomicity candidate, and the fix developers apply targets the order. *)
let class_rank = function
  | Patterns.Order _ | Patterns.Deadlock_cycle _ -> 0
  | Patterns.Atomicity _ -> 1

let rank ?proximity_tp scored =
  (* Same-class ties are broken by proximate cause: among remote accesses
     that all perfectly separate failing from successful runs, the one
     that executed *last* before the failure is the one the failing read
     actually observed (e.g. the free racing a reader outranks the store
     that preceded that free). *)
  let proximity =
    match proximity_tp with
    | None -> fun _ -> 0
    | Some tp -> (
      fun pattern ->
        match pattern with
        | Patterns.Order { remote_iid; _ }
        | Patterns.Atomicity { remote_iid; _ } ->
          List.fold_left
            (fun acc (e : Trace_processing.event) ->
              max acc e.Trace_processing.seq)
            (-1)
            (Trace_processing.instances tp ~iid:remote_iid)
        | Patterns.Deadlock_cycle _ -> 0)
  in
  let cmp a b =
    match compare b.f1 a.f1 with
    | 0 -> (
      match compare (class_rank a.pattern) (class_rank b.pattern) with
      | 0 -> compare (proximity b.pattern) (proximity a.pattern)
      | c -> c)
    | c -> c
  in
  List.stable_sort cmp scored

let score m ~points_to ~patterns ~failing ~successful =
  let n_failing = List.length failing in
  let score_one pattern =
    let count tps =
      List.length
        (List.filter (fun tp -> Patterns.present_in m ~points_to pattern tp) tps)
    in
    of_counts pattern ~present_in_failing:(count failing)
      ~present_in_successful:(count successful) ~n_failing
  in
  let proximity_tp = match failing with [] -> None | tp :: _ -> Some tp in
  rank ?proximity_tp (List.map score_one patterns)

let top = function [] -> None | s :: _ -> Some s

let is_unique_top = function
  | [] | [ _ ] -> true
  | s1 :: s2 :: _ -> s1.f1 > s2.f1
