(** Steps 2 and 3 of Lazy Diagnosis (Figure 2): decode every thread's
    snapshot, derive (a) the set of instructions that executed at all —
    the scope for the hybrid points-to analysis — and (b) the dynamic
    instruction trace, partially ordered by the coarse timing intervals. *)

type event = {
  tid : int;
  seq : int;  (** position in the thread's decoded sequence (program order) *)
  iid : int;
  pc : int;
  t_lo : int;
  t_hi : int option;
      (** [None] is the decoder's open upper bound: the trace ended before
          a later clock reading, so the event is unordered against later
          events on other threads *)
}

module Iset : Set.S with type elt = int

type t = {
  executed : Iset.t;  (** step 2: executed static instructions *)
  events : event array;  (** step 3: all decoded events, grouped by thread *)
  events_by_iid : (int, event array) Hashtbl.t;
      (** dynamic instances per static instruction, in per-thread order —
          flat slices into the same decode, built once, never rebuilt *)
  lost_bytes : int;
  desynced_tids : int list;
}

val process :
  Lir.Irmod.t ->
  config:Pt.Config.t ->
  ?fail_tails:(int * int * int) list ->
  ?jobs:int ->
  ?cache:Pt.Decode_cache.t ->
  ?engine:[ `Cursor | `Reference ] ->
  (int * bytes) list ->
  t
(** [?fail_tails] is a list of [(tid, stop_pc, t_hi)]: each named thread's
    replay is extended past its last packet to [stop_pc] (the failing or
    blocked instruction, whose time is known from the failure report).
    Deadlocks pass one entry per blocked thread.

    Each [(tid, snapshot)] decode is independent (per-thread PT rings).
    Cache misses are grouped into at most [jobs * 2] cost-balanced chunks
    (weighted by snapshot size, {!Snorlax_util.Pool.balanced_chunks}) and
    submitted to a {!Snorlax_util.Pool} batch; the submitting domain
    merges results in input order concurrently with the in-flight
    decodes, waiting only when the next trace's chunk has not finished
    (and helping the pool while it waits).  [?jobs] defaults to
    {!Snorlax_util.Pool.default_jobs}; [~jobs:1] forces the sequential
    path.  The output is identical for every pool size.  Decodes are
    memoized through [?cache] (default {!Pt.Decode_cache.shared}; a
    zero-capacity cache disables memoization); cache and telemetry
    writes stay on the submitting domain (workers fill private
    registries, folded back after the batch).

    [?engine] picks the decoder implementation: [`Cursor] (default) is
    the production {!Pt.Decoder.decode_raw}; [`Reference] routes every
    decode through the frozen v1 {!Pt.Decoder.decode_reference} — the
    benchmark's sequential baseline and the differential-test oracle. *)

val executes_before : event -> event -> bool
(** The partial order of §4.1: true when the coarse intervals are disjoint
    in the right direction, or when both events belong to the same thread
    and follow its (total) program order. *)

val instances : t -> iid:int -> event list
(** Dynamic instances of one static instruction (possibly empty).
    Allocates a fresh list per call; prefer {!instances_arr} on hot
    paths. *)

val instances_arr : t -> iid:int -> event array
(** Zero-copy view of the same instances; treat as read-only. *)
