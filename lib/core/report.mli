(** What travels from a client to the diagnosis server (Figure 2, step 1):
    the failure kind and pc (from the OS error tracker / core dump), and
    the per-thread control-flow trace snapshots.  No data values — Snorlax
    tracks control flow only (§7, privacy). *)

type crash_kind =
  | Bad_pointer
      (** null/wild dereference: the core dump shows a bad pointer value,
          so diagnosis walks back to its provenance as RETracer does *)
  | Use_after_free  (** the faulting address lies in a freed allocation *)
  | Assertion  (** a program-defined failure mode (custom assert, SS7) *)

type failure_info =
  | Crash_info of { failing_iid : int; crash_kind : crash_kind }
      (** crash or assertion: the faulting instruction *)
  | Deadlock_info of { blocked : (int * int) list }
      (** (tid, iid of the blocked lock call) for every deadlocked thread,
          recovered from the hung threads' stacks *)

type failing_report = {
  info : failure_info;
  failing_tid : int;
  failure_time_ns : int;
  traces : (int * bytes) list;  (** per-thread ring snapshots *)
}

type success_report = {
  s_traces : (int * bytes) list;
  trigger_time_ns : int;  (** when the watchpoint fired *)
  trigger_tid : int;  (** the thread that reached the watched pc *)
  trigger_pc : int;
}

val of_sim_failure :
  Sim.Failure.t ->
  time_ns:float ->
  traces:(int * bytes) list ->
  failing_report
(** Package a simulated failure the way the client driver would. *)

val kind_label : failing_report -> string
(** The failure class as a stable string (["bad-pointer"],
    ["use-after-free"], ["assert"], ["deadlock"]) — one of the three crash
    signature components the fleet collector buckets by. *)

val failing_anchor_iid : failing_report -> int
(** The instruction the diagnosis anchors on (the crash pc, or the
    cycle-closing lock call for deadlocks). *)
