module Tp = Trace_processing

type order_shape = WR | RW | WW

type atomicity_shape = RWR | WWR | RWW | WRW

type t =
  | Order of { remote_iid : int; anchor_iid : int; shape : order_shape }
  | Atomicity of {
      local_iid : int;
      remote_iid : int;
      anchor_iid : int;
      shape : atomicity_shape;
      guard_writes : int list;
    }
  | Deadlock_cycle of { sides : (int * int) list }

let order_shape_name = function WR -> "WR" | RW -> "RW" | WW -> "WW"

let atomicity_shape_name = function
  | RWR -> "RWR"
  | WWR -> "WWR"
  | RWW -> "RWW"
  | WRW -> "WRW"

let id = function
  | Order { remote_iid; anchor_iid; shape } ->
    Printf.sprintf "order:%s:%d->%d" (order_shape_name shape) remote_iid
      anchor_iid
  | Atomicity { local_iid; remote_iid; anchor_iid; shape; _ } ->
    Printf.sprintf "atom:%s:%d,%d,%d"
      (atomicity_shape_name shape)
      local_iid remote_iid anchor_iid
  | Deadlock_cycle { sides } ->
    "deadlock:"
    ^ String.concat "|"
        (List.map (fun (h, a) -> Printf.sprintf "%d,%d" h a) sides)

let ordered_iids = function
  | Order { remote_iid; anchor_iid; _ } -> [ remote_iid; anchor_iid ]
  | Atomicity { local_iid; remote_iid; anchor_iid; _ } ->
    [ local_iid; remote_iid; anchor_iid ]
  | Deadlock_cycle { sides } ->
    List.concat_map (fun (h, a) -> [ h; a ]) sides

let describe m p =
  let at iid = Lir.Printer.instr_with_location m iid in
  match p with
  | Order { remote_iid; anchor_iid; shape } ->
    Printf.sprintf "%s order violation:\n  1. %s\n  2. %s"
      (order_shape_name shape) (at remote_iid) (at anchor_iid)
  | Atomicity { local_iid; remote_iid; anchor_iid; shape; _ } ->
    Printf.sprintf "%s atomicity violation:\n  1. %s\n  2. %s\n  3. %s"
      (atomicity_shape_name shape)
      (at local_iid) (at remote_iid) (at anchor_iid)
  | Deadlock_cycle { sides } ->
    let part i (h, a) =
      Printf.sprintf "  thread %d: holds lock from %s\n            attempts %s"
        i (at h) (at a)
    in
    "deadlock cycle:\n" ^ String.concat "\n" (List.mapi part sides)

(* Cap on dynamic-instance scans; corpus loops stay well below this. *)
let instance_cap = 512

let capped xs =
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take instance_cap xs

let access_of_candidate candidates iid =
  List.find_opt (fun (c : Type_ranking.candidate) -> c.Type_ranking.iid = iid) candidates

(* --- Crash path: order and atomicity patterns ------------------------- *)

let order_shape_of remote anchor =
  match remote, anchor with
  | `Write, `Read -> Some WR
  | `Read, `Write -> Some RW
  | `Write, `Write -> Some WW
  | `Read, `Read -> None
  | _, _ -> None (* locks do not form order violations *)

let atomicity_shape_of local remote anchor =
  match local, remote, anchor with
  | `Read, `Write, `Read -> Some RWR
  | `Write, `Write, `Read -> Some WWR
  | `Read, `Write, `Write -> Some RWW
  | `Write, `Read, `Write -> Some WRW
  | _, _, _ -> None

let last_instance_in_tid tp ~iid ~tid =
  let rec last acc = function
    | [] -> acc
    | (e : Tp.event) :: rest ->
      last (if e.Tp.tid = tid then Some e else acc) rest
  in
  last None (Tp.instances tp ~iid)

let generate_crash m ~tp ~anchor_iid ~failing_tid ~candidates =
  ignore m;
  match last_instance_in_tid tp ~iid:anchor_iid ~tid:failing_tid with
  | None -> []
  | Some anchor_ev ->
    let anchor_access =
      match access_of_candidate candidates anchor_iid with
      | Some c -> c.Type_ranking.access
      | None -> `Read
    in
    let seen = Hashtbl.create 32 in
    let out = ref [] in
    let add p =
      let key = id p in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        out := p :: !out
      end
    in
    let remote_events c =
      List.filter
        (fun (e : Tp.event) ->
          e.Tp.tid <> failing_tid && Tp.executes_before e anchor_ev)
        (capped (Tp.instances tp ~iid:c.Type_ranking.iid))
    in
    (* The atomicity-violation local access must be the failing thread's
       access *adjacent* to the anchor: no other instance of either
       instruction in between (otherwise any ancient read would turn every
       order violation into a spurious atomicity one). *)
    let adjacent_local c =
      let priors =
        List.filter
          (fun (e : Tp.event) ->
            e.Tp.tid = failing_tid && e.Tp.seq < anchor_ev.Tp.seq)
          (capped (Tp.instances tp ~iid:c.Type_ranking.iid))
      in
      match List.rev priors with
      | [] -> None
      | l :: _ ->
        let anchor_between =
          List.exists
            (fun (e : Tp.event) ->
              e.Tp.tid = failing_tid && e.Tp.seq > l.Tp.seq
              && e.Tp.seq < anchor_ev.Tp.seq)
            (capped (Tp.instances tp ~iid:anchor_iid))
        in
        if anchor_between then None else Some l
    in
    (* Order violations: remote access before the failing access. *)
    List.iter
      (fun (c : Type_ranking.candidate) ->
        match order_shape_of c.Type_ranking.access anchor_access with
        | None -> ()
        | Some shape ->
          if remote_events c <> [] then
            add (Order { remote_iid = c.Type_ranking.iid; anchor_iid; shape }))
      candidates;
    (* Atomicity violations: a remote access between two adjacent local
       ones, with no other write overwriting the location before the
       anchor re-reads it. *)
    let writes =
      List.filter (fun (c : Type_ranking.candidate) -> c.Type_ranking.access = `Write) candidates
    in
    let unclobbered (r : Tp.event) (a : Tp.event) ~remote_iid =
      not
        (List.exists
           (fun (w : Type_ranking.candidate) ->
             w.Type_ranking.iid <> remote_iid
             && List.exists
                  (fun (we : Tp.event) ->
                    Tp.executes_before r we && Tp.executes_before we a)
                  (capped (Tp.instances tp ~iid:w.Type_ranking.iid)))
           writes)
    in
    List.iter
      (fun (cl : Type_ranking.candidate) ->
        match adjacent_local cl with
        | None -> ()
        | Some l ->
          List.iter
            (fun (cr : Type_ranking.candidate) ->
              match
                atomicity_shape_of cl.Type_ranking.access
                  cr.Type_ranking.access anchor_access
              with
              | None -> ()
              | Some shape ->
                let remotes = remote_events cr in
                let sandwiched =
                  List.exists
                    (fun (r : Tp.event) ->
                      Tp.executes_before l r
                      && unclobbered r anchor_ev
                           ~remote_iid:cr.Type_ranking.iid)
                    remotes
                in
                if sandwiched then
                  add
                    (Atomicity
                       {
                         local_iid = cl.Type_ranking.iid;
                         remote_iid = cr.Type_ranking.iid;
                         anchor_iid;
                         shape;
                         guard_writes =
                           List.filter_map
                             (fun (w : Type_ranking.candidate) ->
                               if w.Type_ranking.iid = cr.Type_ranking.iid then
                                 None
                               else Some w.Type_ranking.iid)
                             writes;
                       }))
            candidates)
      candidates;
    List.rev !out

(* --- Deadlock path ----------------------------------------------------- *)

let is_unlock m iid =
  match (Lir.Irmod.instr_by_iid m iid).Lir.Instr.kind with
  | Lir.Instr.Call { callee; _ } ->
    String.equal callee Lir.Intrinsics.mutex_unlock
  | _ -> false

let is_lock m iid =
  match (Lir.Irmod.instr_by_iid m iid).Lir.Instr.kind with
  | Lir.Instr.Call { callee; _ } -> String.equal callee Lir.Intrinsics.mutex_lock
  | _ -> false

let objs_of m ~points_to iid =
  Analysis.Pointsto.accessed_objects points_to (Lir.Irmod.instr_by_iid m iid)

(* Lock calls by [tid] before [before] whose object set intersects
   [target_objs] and that are not released again before [before]. *)
let live_holds m ~points_to tp ~tid ~before ~target_objs =
  let thread_events =
    Array.to_list tp.Tp.events
    |> List.filter (fun (e : Tp.event) ->
           e.Tp.tid = tid && e.Tp.seq < (before : Tp.event).Tp.seq)
  in
  let holds =
    List.filter
      (fun (e : Tp.event) ->
        is_lock m e.Tp.iid
        && Analysis.Memobj.sets_overlap (objs_of m ~points_to e.Tp.iid) target_objs)
      thread_events
  in
  let released (h : Tp.event) =
    List.exists
      (fun (e : Tp.event) ->
        e.Tp.seq > h.Tp.seq
        && is_unlock m e.Tp.iid
        && Analysis.Memobj.sets_overlap (objs_of m ~points_to e.Tp.iid)
             (objs_of m ~points_to h.Tp.iid))
      thread_events
  in
  List.filter (fun h -> not (released h)) holds

let generate_deadlock m ~points_to ~tp ~blocked =
  let n = List.length blocked in
  if n < 2 then []
  else
    (* blocked is in cycle order: thread i's attempted lock is held by
       thread i+1, hence thread i's relevant hold aliases the attempt of
       thread i-1. *)
    let arr = Array.of_list blocked in
    let attempts =
      Array.map
        (fun (tid, iid) ->
          match last_instance_in_tid tp ~iid ~tid with
          | Some e -> Some (tid, iid, e)
          | None -> None)
        arr
    in
    if Array.exists (fun a -> a = None) attempts then []
    else
      let attempts = Array.map Option.get attempts in
      let side_choices =
        Array.to_list
          (Array.mapi
             (fun i (tid, att_iid, att_ev) ->
               let prev = (i + n - 1) mod n in
               let _, prev_att_iid, _ = attempts.(prev) in
               let target_objs = objs_of m ~points_to prev_att_iid in
               let holds =
                 live_holds m ~points_to tp ~tid ~before:att_ev ~target_objs
               in
               List.map (fun (h : Tp.event) -> (h.Tp.iid, att_iid)) holds)
             attempts)
      in
      (* Cartesian product of per-side hold choices, capped. *)
      let rec product = function
        | [] -> [ [] ]
        | choices :: rest ->
          let tails = product rest in
          List.concat_map
            (fun c -> List.map (fun t -> c :: t) tails)
            choices
      in
      let combos = product side_choices in
      let rec take n = function
        | [] -> []
        | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
      in
      (* Canonical rotation (smallest hold iid first): the cycle has no
         distinguished start, so reports and ground truth compare stably
         regardless of which thread happened to close it. *)
      let canonicalize sides =
        let arr = Array.of_list sides in
        let n = Array.length arr in
        let best = ref 0 in
        for i = 1 to n - 1 do
          if fst arr.(i) < fst arr.(!best) then best := i
        done;
        List.init n (fun i -> arr.((!best + i) mod n))
      in
      List.map
        (fun sides -> Deadlock_cycle { sides = canonicalize sides })
        (take 16 combos)

(* Canonical output order: simpler explanations first (order violations,
   then deadlocks, then atomicity), then by target iids, then by the full
   identity.  Generation itself walks candidate lists whose order leaks
   the type-ranking traversal; sorting here pins the output — and the
   statistics tie-breaks downstream — to the patterns themselves, and
   drops duplicates the two generation paths may both produce. *)
let kind_rank = function
  | Order _ -> 0
  | Deadlock_cycle _ -> 1
  | Atomicity _ -> 2

let canonical ps =
  List.sort_uniq
    (fun a b ->
      compare
        (kind_rank a, ordered_iids a, id a)
        (kind_rank b, ordered_iids b, id b))
    ps

let generate m ~points_to ~tp ~info ~failing_tid ~candidates =
  canonical
    (match (info : Report.failure_info) with
    | Report.Crash_info { failing_iid; _ } ->
      generate_crash m ~tp ~anchor_iid:failing_iid ~failing_tid ~candidates
    | Report.Deadlock_info { blocked } ->
      generate_deadlock m ~points_to ~tp ~blocked)

(* --- Presence checks --------------------------------------------------- *)

let present_order tp ~remote_iid ~anchor_iid =
  let remotes = capped (Tp.instances tp ~iid:remote_iid) in
  let anchors = capped (Tp.instances tp ~iid:anchor_iid) in
  List.exists
    (fun (a : Tp.event) ->
      List.exists
        (fun (r : Tp.event) -> r.Tp.tid <> a.Tp.tid && Tp.executes_before r a)
        remotes)
    anchors

(* The (l, a) pair must be adjacent in the thread: no other instance of
   either instruction strictly between them. *)
let adjacent tp ~local_iid ~anchor_iid (l : Tp.event) (a : Tp.event) =
  let between (e : Tp.event) =
    e.Tp.tid = a.Tp.tid && e.Tp.seq > l.Tp.seq && e.Tp.seq < a.Tp.seq
  in
  (not (List.exists between (capped (Tp.instances tp ~iid:local_iid))))
  && not (List.exists between (capped (Tp.instances tp ~iid:anchor_iid)))

let present_atomicity tp ~local_iid ~remote_iid ~anchor_iid ~guard_writes =
  let locals = capped (Tp.instances tp ~iid:local_iid) in
  let remotes = capped (Tp.instances tp ~iid:remote_iid) in
  let anchors = capped (Tp.instances tp ~iid:anchor_iid) in
  let unclobbered (r : Tp.event) (a : Tp.event) =
    not
      (List.exists
         (fun w ->
           List.exists
             (fun (we : Tp.event) ->
               Tp.executes_before r we && Tp.executes_before we a)
             (capped (Tp.instances tp ~iid:w)))
         guard_writes)
  in
  List.exists
    (fun (a : Tp.event) ->
      List.exists
        (fun (r : Tp.event) ->
          r.Tp.tid <> a.Tp.tid
          && Tp.executes_before r a
          && unclobbered r a
          && List.exists
               (fun (l : Tp.event) ->
                 l.Tp.tid = a.Tp.tid && l.Tp.seq < a.Tp.seq
                 && Tp.executes_before l r
                 && adjacent tp ~local_iid ~anchor_iid l a)
               locals)
        remotes)
    anchors

let present_deadlock m ~points_to tp ~sides =
  (* Instantiate each side in some thread with a live hold before the
     attempt, threads pairwise distinct, then require the crossing: every
     hold precedes the next side's attempt. *)
  let side_insts (h_iid, a_iid) =
    let holds = capped (Tp.instances tp ~iid:h_iid) in
    let attempts = capped (Tp.instances tp ~iid:a_iid) in
    List.concat_map
      (fun (a : Tp.event) ->
        List.filter_map
          (fun (h : Tp.event) ->
            if h.Tp.tid = a.Tp.tid && h.Tp.seq < a.Tp.seq then
              let lives =
                live_holds m ~points_to tp ~tid:h.Tp.tid ~before:a
                  ~target_objs:(objs_of m ~points_to h.Tp.iid)
              in
              if List.exists (fun (l : Tp.event) -> l.Tp.seq = h.Tp.seq) lives
              then Some (h, a)
              else None
            else None)
          holds)
      attempts
  in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  let insts = List.map (fun s -> take 8 (side_insts s)) sides in
  if List.exists (fun l -> l = []) insts then false
  else
    let rec product = function
      | [] -> [ [] ]
      | choices :: rest ->
        let tails = product rest in
        List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices
    in
    let combos = product insts in
    let crossing combo =
      let arr = Array.of_list combo in
      let n = Array.length arr in
      let tids = Array.map (fun ((h : Tp.event), _) -> h.Tp.tid) arr in
      let distinct =
        Array.length arr
        = List.length (List.sort_uniq compare (Array.to_list tids))
      in
      distinct
      && Array.for_all
           (fun b -> b)
           (Array.init n (fun i ->
                let h, _ = arr.(i) in
                let _, a_next = arr.((i + 1) mod n) in
                Tp.executes_before h a_next))
    in
    List.exists crossing combos

let present_in m ~points_to p tp =
  match p with
  | Order { remote_iid; anchor_iid; _ } -> present_order tp ~remote_iid ~anchor_iid
  | Atomicity { local_iid; remote_iid; anchor_iid; guard_writes; _ } ->
    present_atomicity tp ~local_iid ~remote_iid ~anchor_iid ~guard_writes
  | Deadlock_cycle { sides } -> present_deadlock m ~points_to tp ~sides
