(** Step 7 of Lazy Diagnosis: statistical diagnosis.  Each candidate
    pattern's presence is evaluated over the failing execution(s) and the
    successful executions collected at the failure location (step 8); the
    patterns are scored by F1 = harmonic mean of precision and recall
    (§4.5) and the top scorer is reported as the root cause. *)

type scored = {
  pattern : Patterns.t;
  f1 : float;
  precision : float;
  recall : float;
  present_in_failing : int;
  present_in_successful : int;
}

val of_counts :
  Patterns.t ->
  present_in_failing:int ->
  present_in_successful:int ->
  n_failing:int ->
  scored
(** Build one scored entry from presence counts alone — the form an
    incremental collector maintains per pattern without re-walking old
    traces.  [score] is [of_counts] over freshly counted presences. *)

val rank : ?proximity_tp:Trace_processing.t -> scored list -> scored list
(** The exact ordering [score] applies: descending F1, ties prefer
    order/deadlock over atomicity, same-class ties prefer the remote
    access whose last instance in [proximity_tp] (the first failing
    trace) executed latest; stable beyond that. *)

val score :
  Lir.Irmod.t ->
  points_to:Analysis.Pointsto.t ->
  patterns:Patterns.t list ->
  failing:Trace_processing.t list ->
  successful:Trace_processing.t list ->
  scored list
(** Sorted by descending F1; ties prefer order/deadlock patterns over
    atomicity ones (the simpler explanation), then generation order
    (which is type-rank order). *)

val top : scored list -> scored option
(** Highest-F1 pattern, if any. *)

val is_unique_top : scored list -> bool
(** False when several patterns tie at the maximal F1 — the case §4.5
    says requires manual disambiguation. *)
