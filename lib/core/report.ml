type crash_kind = Bad_pointer | Use_after_free | Assertion

type failure_info =
  | Crash_info of { failing_iid : int; crash_kind : crash_kind }
  | Deadlock_info of { blocked : (int * int) list }

type failing_report = {
  info : failure_info;
  failing_tid : int;
  failure_time_ns : int;
  traces : (int * bytes) list;
}

type success_report = {
  s_traces : (int * bytes) list;
  trigger_time_ns : int;
  trigger_tid : int;
  trigger_pc : int;
}

let of_sim_failure failure ~time_ns ~traces =
  let time = int_of_float time_ns in
  match (failure : Sim.Failure.t) with
  | Sim.Failure.Crash { tid; iid; reason; _ } ->
    let crash_kind =
      match reason with
      | Sim.Failure.Null_deref | Sim.Failure.Unmapped -> Bad_pointer
      | Sim.Failure.Use_after_free -> Use_after_free
    in
    {
      info = Crash_info { failing_iid = iid; crash_kind };
      failing_tid = tid;
      failure_time_ns = time;
      traces;
    }
  | Sim.Failure.Assert_fail { tid; iid; _ } ->
    {
      info = Crash_info { failing_iid = iid; crash_kind = Assertion };
      failing_tid = tid;
      failure_time_ns = time;
      traces;
    }
  | Sim.Failure.Lock_misuse { tid; iid; _ } ->
    (* The runtime aborts at the faulting lock call, like an assertion
       firing inside the lock implementation; diagnosis anchors there. *)
    {
      info = Crash_info { failing_iid = iid; crash_kind = Assertion };
      failing_tid = tid;
      failure_time_ns = time;
      traces;
    }
  | Sim.Failure.Arith_fault { tid; iid; _ }
  | Sim.Failure.Undef_read { tid; iid; _ }
  | Sim.Failure.Thread_misuse { tid; iid; _ } ->
    (* Runtime-detected faults at a non-access instruction: like an
       assertion, the diagnosis resolves the anchor to the nearest
       preceding memory access of the failing thread. *)
    {
      info = Crash_info { failing_iid = iid; crash_kind = Assertion };
      failing_tid = tid;
      failure_time_ns = time;
      traces;
    }
  | Sim.Failure.Deadlock { waiters } ->
    let blocked = List.map (fun (tid, iid, _) -> (tid, iid)) waiters in
    let failing_tid =
      match List.rev waiters with
      | (tid, _, _) :: _ -> tid
      | [] -> invalid_arg "Report.of_sim_failure: empty deadlock"
    in
    { info = Deadlock_info { blocked }; failing_tid; failure_time_ns = time; traces }

let kind_label r =
  match r.info with
  | Crash_info { crash_kind = Bad_pointer; _ } -> "bad-pointer"
  | Crash_info { crash_kind = Use_after_free; _ } -> "use-after-free"
  | Crash_info { crash_kind = Assertion; _ } -> "assert"
  | Deadlock_info _ -> "deadlock"

let failing_anchor_iid r =
  match r.info with
  | Crash_info { failing_iid; _ } -> failing_iid
  | Deadlock_info { blocked } -> (
    match
      List.find_opt (fun (tid, _) -> tid = r.failing_tid) (List.rev blocked)
    with
    | Some (_, iid) -> iid
    | None -> (
      match List.rev blocked with
      | (_, iid) :: _ -> iid
      | [] -> invalid_arg "Report.failing_anchor_iid: empty deadlock"))
