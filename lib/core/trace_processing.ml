(* [t_hi = None] mirrors the decoder's open upper bound: the trace ended
   before a later clock reading, so the event is unordered against any
   later event on another thread. *)
type event = {
  tid : int;
  seq : int;
  iid : int;
  pc : int;
  t_lo : int;
  t_hi : int option;
}

module Iset = Set.Make (Int)

type t = {
  executed : Iset.t;
  events : event array;
  events_by_iid : (int, event list) Hashtbl.t;
  lost_bytes : int;
  desynced_tids : int list;
}

let process m ~config ?(fail_tails = []) traces =
  let executed = ref Iset.empty in
  let all_events = ref [] in
  let by_iid = Hashtbl.create 256 in
  let lost = ref 0 in
  let desynced = ref [] in
  let decode_one (tid, snapshot) =
    let tail_stop =
      match List.find_opt (fun (ftid, _, _) -> ftid = tid) fail_tails with
      | Some (_, stop_pc, t_hi) -> Some (stop_pc, t_hi)
      | None -> None
    in
    let d = Pt.Decoder.decode m ~config ?tail_stop snapshot in
    lost := !lost + d.Pt.Decoder.lost_bytes;
    if d.Pt.Decoder.desynced then desynced := tid :: !desynced;
    List.iteri
      (fun seq (s : Pt.Decoder.step) ->
        let e =
          {
            tid;
            seq;
            iid = s.Pt.Decoder.iid;
            pc = s.Pt.Decoder.pc;
            t_lo = s.Pt.Decoder.t_lo;
            t_hi = s.Pt.Decoder.t_hi;
          }
        in
        executed := Iset.add e.iid !executed;
        all_events := e :: !all_events;
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_iid e.iid) in
        Hashtbl.replace by_iid e.iid (e :: cur))
      d.Pt.Decoder.steps
  in
  List.iter decode_one traces;
  (* Per-iid instance lists were built newest-first; restore order. *)
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) by_iid [] in
  List.iter
    (fun k -> Hashtbl.replace by_iid k (List.rev (Hashtbl.find by_iid k)))
    keys;
  {
    executed = !executed;
    events = Array.of_list (List.rev !all_events);
    events_by_iid = by_iid;
    lost_bytes = !lost;
    desynced_tids = !desynced;
  }

let executes_before a b =
  if a.tid = b.tid then a.seq < b.seq
  else match a.t_hi with Some hi -> hi < b.t_lo | None -> false

let instances t ~iid =
  Option.value ~default:[] (Hashtbl.find_opt t.events_by_iid iid)
