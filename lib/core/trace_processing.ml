module Dynbuf = Snorlax_util.Dynbuf
module Pool = Snorlax_util.Pool

(* [t_hi = None] mirrors the decoder's open upper bound: the trace ended
   before a later clock reading, so the event is unordered against any
   later event on another thread. *)
type event = {
  tid : int;
  seq : int;
  iid : int;
  pc : int;
  t_lo : int;
  t_hi : int option;
}

module Iset = Set.Make (Int)

type t = {
  executed : Iset.t;
  events : event array;
  events_by_iid : (int, event array) Hashtbl.t;
  lost_bytes : int;
  desynced_tids : int list;
}

(* Decode every trace, through the memo cache when enabled and across the
   domain pool when it pays.  Returns [(ready, finish)]: [ready i] yields
   trace [i]'s result, blocking only until the chunk containing it has
   finished (helping the pool meanwhile), so the caller's input-order
   merge overlaps the in-flight decodes; [finish ()] joins the batch and
   folds worker telemetry back into the ambient scope. *)
let decode_all m ~config ~tail_for ~engine ~jobs ~cache traces_a =
  let n = Array.length traces_a in
  let use_cache = Pt.Decode_cache.enabled cache in
  let keys = Array.make n "" in
  let is_miss = Array.make n false in
  let results : Pt.Decoder.result option array = Array.make n None in
  let miss_idx = Dynbuf.create () in
  Array.iteri
    (fun i (tid, snapshot) ->
      if use_cache then begin
        let k =
          Pt.Decode_cache.key m ~config ?tail_stop:(tail_for tid) snapshot
        in
        keys.(i) <- k;
        match Pt.Decode_cache.find cache k with
        | Some r -> results.(i) <- Some r
        | None ->
          is_miss.(i) <- true;
          Dynbuf.push miss_idx i
      end
      else begin
        is_miss.(i) <- true;
        Dynbuf.push miss_idx i
      end)
    traces_a;
  let misses = Dynbuf.to_array miss_idx in
  let telemetry = Obs.Scope.enabled () in
  (* Decode is CPU-bound: domains beyond the hardware thread count only
     add scheduler contention, so oversubscribed requests clamp to the
     core count.  [misses] caps further — no point waking idle workers. *)
  let eff_jobs =
    min (min jobs (Domain.recommended_domain_count ())) (Array.length misses)
  in
  let decode_fn =
    match engine with
    | `Cursor -> Pt.Decoder.decode_raw
    | `Reference -> Pt.Decoder.decode_reference
  in
  let decode_one i =
    let tid, snapshot = traces_a.(i) in
    results.(i) <- Some (decode_fn m ~config ?tail_stop:(tail_for tid) snapshot)
  in
  let pool_gauge () =
    if telemetry then
      Obs.Scope.set_gauge "decode/pool_size" (float_of_int (max 1 eff_jobs))
  in
  if eff_jobs > 1 then begin
    (* Chunked batch submission: misses group into at most [jobs * 2]
       chunks, cost-balanced by snapshot size, so one oversized trace
       does not serialize behind a pile of small ones and per-item pool
       round-trips disappear.  The walk table (or layout) is built here,
       on the submitting domain, so workers only ever read it. *)
    (match engine with
    | `Cursor -> Pt.Decoder.prepare m
    | `Reference -> Lir.Irmod.layout m);
    let weights =
      Array.map (fun k -> Bytes.length (snd traces_a.(k))) misses
    in
    let chunks = Pool.balanced_chunks ~weights ~chunks:(eff_jobs * 2) in
    let chunk_of = Array.make n (-1) in
    Array.iteri
      (fun c ks -> Array.iter (fun k -> chunk_of.(misses.(k)) <- c) ks)
      chunks;
    (* One private registry per chunk, created before submission (workers
       only write into their own chunk's): the ambient scope is not
       domain-safe, and a worker's decode wall time can only be measured
       on that worker.  Each trace gets its own pt/decode_ns observation
       and pt/* record, so per-trace counters are chunk-invariant. *)
    let regs =
      Array.init (Array.length chunks) (fun _ ->
          if telemetry then Some (Obs.Metrics.create ()) else None)
    in
    let run_chunk c =
      Array.iter
        (fun k ->
          let i = misses.(k) in
          match regs.(c) with
          | Some reg ->
            let t0 = Obs.Span.raw_clock_ns () in
            decode_one i;
            Obs.Metrics.observe
              (Obs.Metrics.histogram reg "pt/decode_ns")
              (Obs.Span.raw_clock_ns () -. t0);
            Pt.Decoder.record_metrics ~into:reg
              (Option.get results.(i))
              ~snapshot_bytes:(Bytes.length (snd traces_a.(i)))
          | None -> decode_one i)
        chunks.(c)
    in
    let pool = Pool.get ~jobs:eff_jobs in
    let handle = Pool.submit pool (Array.length chunks) run_chunk in
    let ready i =
      if is_miss.(i) then begin
        Pool.wait_item pool handle chunk_of.(i);
        match results.(i) with
        | Some r ->
          (* Cache insertion on the submitting domain, as each trace is
             merged — not deferred to the end of the batch. *)
          if use_cache then Pt.Decode_cache.add cache keys.(i) r;
          r
        | None ->
          (* The batch failed before this chunk ran; join to re-raise. *)
          Pool.await pool handle;
          assert false
      end
      else Option.get results.(i)
    in
    let finish () =
      Pool.await pool handle;
      pool_gauge ();
      if telemetry then
        Array.iter (Option.iter Obs.Scope.merge_worker) regs
    in
    (ready, finish)
  end
  else begin
    (* Sequential path: decode inline with ambient telemetry.  Recording
       per actual invocation keeps pt/decode_calls a true decoder-work
       counter that cache hits do not inflate. *)
    Array.iter
      (fun i ->
        let _, snapshot = traces_a.(i) in
        if telemetry then begin
          Obs.Scope.timed "pt/decode_ns" (fun () -> decode_one i);
          Pt.Decoder.record_metrics
            (Option.get results.(i))
            ~snapshot_bytes:(Bytes.length snapshot)
        end
        else decode_one i;
        if use_cache then
          Pt.Decode_cache.add cache keys.(i) (Option.get results.(i)))
      misses;
    let ready i = Option.get results.(i) in
    (ready, pool_gauge)
  end

let process m ~config ?(fail_tails = []) ?jobs ?cache ?(engine = `Cursor) traces
    =
  (* Lay out before any fan-out so worker domains only ever read the
     module's (idempotent) layout tables. *)
  Lir.Irmod.layout m;
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let cache = match cache with Some c -> c | None -> Pt.Decode_cache.shared in
  (* Tails indexed by tid; first entry per tid wins, matching the old
     List.find_opt scan without the O(traces * tails) cost. *)
  let tails = Hashtbl.create 8 in
  List.iter
    (fun (tid, stop_pc, t_hi) ->
      if not (Hashtbl.mem tails tid) then Hashtbl.add tails tid (stop_pc, t_hi))
    fail_tails;
  let tail_for tid = Hashtbl.find_opt tails tid in
  let traces_a = Array.of_list traces in
  let ready, finish =
    decode_all m ~config ~tail_for ~engine ~jobs ~cache traces_a
  in
  (* Merge in input order, overlapping the in-flight decodes: output is
     identical whatever the pool size. *)
  (* Collect in input order, overlapping the in-flight decodes ([ready]
     helps the pool while it waits); the flat event array is then built
     serially at a known size. *)
  let rs = Array.mapi (fun i _ -> (ready i : Pt.Decoder.result)) traces_a in
  finish ();
  let lost = ref 0 in
  let desynced = ref [] in
  let n_ev = ref 0 in
  Array.iteri
    (fun i (tid, _) ->
      let r = rs.(i) in
      lost := !lost + r.Pt.Decoder.lost_bytes;
      if r.Pt.Decoder.desynced then desynced := tid :: !desynced;
      n_ev := !n_ev + Array.length r.Pt.Decoder.steps)
    traces_a;
  let n_ev = !n_ev in
  let events =
    if n_ev = 0 then [||]
    else begin
      let first =
        let rec find i =
          let steps = rs.(i).Pt.Decoder.steps in
          if Array.length steps > 0 then (fst traces_a.(i), steps.(0))
          else find (i + 1)
        in
        find 0
      in
      let dummy =
        let tid, s = first in
        {
          tid;
          seq = 0;
          iid = s.Pt.Decoder.iid;
          pc = s.Pt.Decoder.pc;
          t_lo = s.Pt.Decoder.t_lo;
          t_hi = s.Pt.Decoder.t_hi;
        }
      in
      let events = Array.make n_ev dummy in
      let k = ref 0 in
      Array.iteri
        (fun i (tid, _) ->
          let steps = rs.(i).Pt.Decoder.steps in
          for seq = 0 to Array.length steps - 1 do
            let s = Array.unsafe_get steps seq in
            Array.unsafe_set events !k
              {
                tid;
                seq;
                iid = s.Pt.Decoder.iid;
                pc = s.Pt.Decoder.pc;
                t_lo = s.Pt.Decoder.t_lo;
                t_hi = s.Pt.Decoder.t_hi;
              };
            incr k
          done)
        traces_a;
      events
    end
  in
  (* Group instances per static instruction with a counting sort over the
     dense iid space: iids are small consecutive ints, so two array
     passes replace a hash lookup per event.  Events order is preserved
     inside each group, so instances stay in per-thread order. *)
  let by_iid = Hashtbl.create 64 in
  let executed = ref Iset.empty in
  if n_ev > 0 then begin
    let max_iid = ref 0 in
    for i = 0 to n_ev - 1 do
      let iid = (Array.unsafe_get events i).iid in
      if iid > !max_iid then max_iid := iid
    done;
    let counts = Array.make (!max_iid + 1) 0 in
    for i = 0 to n_ev - 1 do
      let iid = (Array.unsafe_get events i).iid in
      Array.unsafe_set counts iid (Array.unsafe_get counts iid + 1)
    done;
    let slots = Array.make (!max_iid + 1) [||] in
    let dummy = events.(0) in
    for iid = 0 to !max_iid do
      if counts.(iid) > 0 then begin
        slots.(iid) <- Array.make counts.(iid) dummy;
        counts.(iid) <- 0;
        executed := Iset.add iid !executed
      end
    done;
    for i = 0 to n_ev - 1 do
      let e = Array.unsafe_get events i in
      let a = Array.unsafe_get slots e.iid in
      Array.unsafe_set a (Array.unsafe_get counts e.iid) e;
      Array.unsafe_set counts e.iid (Array.unsafe_get counts e.iid + 1)
    done;
    for iid = 0 to !max_iid do
      if Array.length slots.(iid) > 0 then Hashtbl.add by_iid iid slots.(iid)
    done
  end;
  {
    executed = !executed;
    events;
    events_by_iid = by_iid;
    lost_bytes = !lost;
    desynced_tids = !desynced;
  }

let executes_before a b =
  if a.tid = b.tid then a.seq < b.seq
  else match a.t_hi with Some hi -> hi < b.t_lo | None -> false

let instances_arr t ~iid =
  Option.value ~default:[||] (Hashtbl.find_opt t.events_by_iid iid)

let instances t ~iid = Array.to_list (instances_arr t ~iid)
