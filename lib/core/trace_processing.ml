module Dynbuf = Snorlax_util.Dynbuf
module Pool = Snorlax_util.Pool

(* [t_hi = None] mirrors the decoder's open upper bound: the trace ended
   before a later clock reading, so the event is unordered against any
   later event on another thread. *)
type event = {
  tid : int;
  seq : int;
  iid : int;
  pc : int;
  t_lo : int;
  t_hi : int option;
}

module Iset = Set.Make (Int)

type t = {
  executed : Iset.t;
  events : event array;
  events_by_iid : (int, event array) Hashtbl.t;
  lost_bytes : int;
  desynced_tids : int list;
}

(* Decode every trace, through the memo cache when enabled and across the
   domain pool when it pays.  Returns per-trace results in input order
   plus the subset that were actual decoder invocations (for telemetry
   and cache insertion). *)
let decode_all m ~config ~tail_for ~jobs ~cache traces_a =
  let n = Array.length traces_a in
  let use_cache = Pt.Decode_cache.enabled cache in
  let keys = Array.make n "" in
  let results : Pt.Decoder.result option array = Array.make n None in
  let miss_idx = Dynbuf.create () in
  Array.iteri
    (fun i (tid, snapshot) ->
      if use_cache then begin
        let k =
          Pt.Decode_cache.key m ~config ?tail_stop:(tail_for tid) snapshot
        in
        keys.(i) <- k;
        match Pt.Decode_cache.find cache k with
        | Some r -> results.(i) <- Some r
        | None -> Dynbuf.push miss_idx i
      end
      else Dynbuf.push miss_idx i)
    traces_a;
  let misses = Dynbuf.to_array miss_idx in
  let telemetry = Obs.Scope.enabled () in
  let eff_jobs = min jobs (Array.length misses) in
  let parallel = eff_jobs > 1 in
  (* In the parallel branch each work item records its pt/* metrics —
     including its own decode wall time — into a private registry: the
     ambient scope is not domain-safe, and the decode time of a worker
     can only be measured on that worker.  The registries are folded
     back into the ambient one after the pool barrier, so pool-domain
     metrics are no longer dropped. *)
  let worker_regs : Obs.Metrics.t option array =
    Array.make (if telemetry && parallel then Array.length misses else 0) None
  in
  let decode_one i =
    let tid, snapshot = traces_a.(i) in
    results.(i) <-
      Some (Pt.Decoder.decode_raw m ~config ?tail_stop:(tail_for tid) snapshot)
  in
  let decode_one_recording k =
    let i = misses.(k) in
    let _, snapshot = traces_a.(i) in
    let reg = Obs.Metrics.create () in
    worker_regs.(k) <- Some reg;
    let t0 = Obs.Span.raw_clock_ns () in
    decode_one i;
    Obs.Metrics.observe
      (Obs.Metrics.histogram reg "pt/decode_ns")
      (Obs.Span.raw_clock_ns () -. t0);
    Pt.Decoder.record_metrics ~into:reg
      (Option.get results.(i))
      ~snapshot_bytes:(Bytes.length snapshot)
  in
  if parallel then
    Pool.run (Pool.get ~jobs:eff_jobs) (Array.length misses)
      (if telemetry then decode_one_recording else fun k -> decode_one misses.(k))
  else if telemetry then
    Array.iter
      (fun i -> Obs.Scope.timed "pt/decode_ns" (fun () -> decode_one i))
      misses
  else Array.iter decode_one misses;
  if telemetry then begin
    Obs.Scope.set_gauge "decode/pool_size" (float_of_int (max 1 eff_jobs));
    Array.iter (Option.iter Obs.Scope.merge_worker) worker_regs
  end;
  (* Cache insertion (and, in the sequential path, telemetry) happens
     here on the submitting domain.  Recording per actual invocation
     keeps pt/decode_calls a true decoder-work counter that cache hits
     do not inflate. *)
  Array.iter
    (fun i ->
      let _, snapshot = traces_a.(i) in
      let r = Option.get results.(i) in
      if not parallel then
        Pt.Decoder.record_metrics r ~snapshot_bytes:(Bytes.length snapshot);
      if use_cache then Pt.Decode_cache.add cache keys.(i) r)
    misses;
  Array.map (function Some r -> r | None -> assert false) results

let process m ~config ?(fail_tails = []) ?jobs ?cache traces =
  (* Lay out before any fan-out so worker domains only ever read the
     module's (idempotent) layout tables. *)
  Lir.Irmod.layout m;
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let cache = match cache with Some c -> c | None -> Pt.Decode_cache.shared in
  (* Tails indexed by tid; first entry per tid wins, matching the old
     List.find_opt scan without the O(traces * tails) cost. *)
  let tails = Hashtbl.create 8 in
  List.iter
    (fun (tid, stop_pc, t_hi) ->
      if not (Hashtbl.mem tails tid) then Hashtbl.add tails tid (stop_pc, t_hi))
    fail_tails;
  let tail_for tid = Hashtbl.find_opt tails tid in
  let traces_a = Array.of_list traces in
  let results = decode_all m ~config ~tail_for ~jobs ~cache traces_a in
  (* Merge in input order: output is identical whatever the pool size. *)
  let total_steps =
    Array.fold_left
      (fun acc (r : Pt.Decoder.result) -> acc + Array.length r.Pt.Decoder.steps)
      0 results
  in
  let executed = ref Iset.empty in
  let events = Dynbuf.create () in
  let by_iid_idx : (int, int Dynbuf.t) Hashtbl.t =
    Hashtbl.create (max 16 (total_steps / 8))
  in
  let lost = ref 0 in
  let desynced = ref [] in
  Array.iteri
    (fun i (r : Pt.Decoder.result) ->
      let tid, _ = traces_a.(i) in
      lost := !lost + r.Pt.Decoder.lost_bytes;
      if r.Pt.Decoder.desynced then desynced := tid :: !desynced;
      Array.iteri
        (fun seq (s : Pt.Decoder.step) ->
          let e =
            {
              tid;
              seq;
              iid = s.Pt.Decoder.iid;
              pc = s.Pt.Decoder.pc;
              t_lo = s.Pt.Decoder.t_lo;
              t_hi = s.Pt.Decoder.t_hi;
            }
          in
          executed := Iset.add e.iid !executed;
          let idx = Dynbuf.length events in
          Dynbuf.push events e;
          match Hashtbl.find_opt by_iid_idx e.iid with
          | Some b -> Dynbuf.push b idx
          | None ->
            let b = Dynbuf.create () in
            Dynbuf.push b idx;
            Hashtbl.add by_iid_idx e.iid b)
        r.Pt.Decoder.steps)
    results;
  let events = Dynbuf.to_array events in
  let by_iid = Hashtbl.create (Hashtbl.length by_iid_idx) in
  Hashtbl.iter
    (fun iid idxs ->
      Hashtbl.add by_iid iid (Array.map (Array.get events) (Dynbuf.to_array idxs)))
    by_iid_idx;
  {
    executed = !executed;
    events;
    events_by_iid = by_iid;
    lost_bytes = !lost;
    desynced_tids = !desynced;
  }

let executes_before a b =
  if a.tid = b.tid then a.seq < b.seq
  else match a.t_hi with Some hi -> hi < b.t_lo | None -> false

let instances_arr t ~iid =
  Option.value ~default:[||] (Hashtbl.find_opt t.events_by_iid iid)

let instances t ~iid = Array.to_list (instances_arr t ~iid)
