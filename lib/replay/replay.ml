type schedule = { order : (int * int) array }

let schedule_length s = Array.length s.order

type fidelity = { enforced : int; diverged : int; gave_up : bool }

let record ?(seed = 1) m ~entry ~racy_iids =
  Lir.Irmod.layout m;
  let log = ref [] in
  let hooks =
    {
      Sim.Hooks.on_control = None;
      on_instr =
        Some
          (fun ~tid ~time:_ (i : Lir.Instr.t) ->
            if List.mem i.Lir.Instr.iid racy_iids then
              log := (tid, i.Lir.Instr.iid) :: !log;
            0.0);
      gate = None;
      on_sched = None;
      on_obs = None;
    }
  in
  let config = { Sim.Interp.default_config with seed; hooks } in
  let result = Sim.Interp.run ~config m ~entry in
  (result, { order = Array.of_list (List.rev !log) })

let replay ?(seed = 1) ?(max_stalls = 2000) m ~entry ~racy_iids schedule =
  Lir.Irmod.layout m;
  let cursor = ref 0 in
  let stalls = ref 0 in
  let enforced = ref 0 in
  let diverged = ref 0 in
  let gave_up = ref false in
  let n = Array.length schedule.order in
  (* Park a thread that reaches a racy access out of turn; the scheduler
     then runs whoever holds the next scheduled access.  A bounded stall
     count releases the enforcement when the execution's own control flow
     has diverged from the recording. *)
  let gate ~tid ~time:_ (i : Lir.Instr.t) =
    if (not (List.mem i.Lir.Instr.iid racy_iids)) || !cursor >= n then 0.0
    else
      let want_tid, want_iid = schedule.order.(!cursor) in
      if want_tid = tid && want_iid = i.Lir.Instr.iid then 0.0
      else if !stalls >= max_stalls then begin
        gave_up := true;
        0.0
      end
      else begin
        incr stalls;
        250.0
      end
  in
  let on_instr ~tid ~time:_ (i : Lir.Instr.t) =
    if List.mem i.Lir.Instr.iid racy_iids then begin
      (if !cursor < n then
         let want_tid, want_iid = schedule.order.(!cursor) in
         if want_tid = tid && want_iid = i.Lir.Instr.iid then begin
           incr cursor;
           stalls := 0;
           incr enforced
         end
         else incr diverged
       else incr diverged);
      ()
    end;
    0.0
  in
  let hooks =
    { Sim.Hooks.none with on_instr = Some on_instr; gate = Some gate }
  in
  let config = { Sim.Interp.default_config with seed; hooks } in
  let result = Sim.Interp.run ~config m ~entry in
  (result, { enforced = !enforced; diverged = !diverged; gave_up = !gave_up })

let racy_iids_of_pattern p =
  List.sort_uniq compare (Snorlax_core.Patterns.ordered_iids p)
