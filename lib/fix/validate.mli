(** Oracle-backed validation of synthesized patches, and the corpus-wide
    [snorlax fix] sweep.

    A patch earns [Fixed] only on three kinds of evidence together: the
    original failing seed replayed under the traced harness completes;
    a seed sweep with the HB oracle attached shows no failure, hang or
    racy pair the pristine module did not already show; and the
    diagnosed pattern's own claims are dead (its pairs no longer racy,
    deadlock crossings gate-guarded).  Baseline behaviour can only
    demote a patch to [Not_fixed]; behaviour the baseline never showed
    makes it [Regressed]. *)

type verdict = Fixed | Not_fixed of string | Regressed of string

val verdict_name : verdict -> string
val verdict_reason : verdict -> string

type judgement = {
  verdict : verdict;
  replay_ok : bool;  (** the failing seed completed under the patch *)
  runs : int;  (** simulated executions this judgement performed *)
  notes : string list;
}

type attempt = {
  template : Patch.template;
  outcome : (judgement, string) result;  (** [Error] = synthesis refused *)
}

type bug_report = {
  bug_id : string;
  bug_kind : string;
  pattern : string option;
  verdict : verdict;
  template : Patch.template option;
  patch : string option;
  attempts : attempt list;
  replay_ok : bool;
  sweep_seeds : int;
  runs : int;
  secs : float;
  notes : string list;
}

type baseline
(** Pristine-module behaviour over the sweep seeds: failure signatures,
    racy pairs, hangs.  Computed once per bug and shared across the
    template ladder. *)

val baseline_of :
  collected:Corpus.Runner.collected -> entry:string -> seeds:int list ->
  baseline

val sweep_seed_list :
  collected:Corpus.Runner.collected -> seeds:int -> int list
(** The failing seed plus [seeds] spread-out fresh seeds. *)

val judge_patch :
  bug:Corpus.Bug.t ->
  collected:Corpus.Runner.collected ->
  pattern:Snorlax_core.Patterns.t ->
  ?baseline:baseline ->
  sweep_seeds:int list ->
  Lir.Irmod.t ->
  judgement
(** Judge one patched module (any module whose untouched iids match the
    collected build — including deliberately wrong patches, which the
    negative tests feed through here). *)

val default_sweep_seeds : int

val fix_bug :
  ?jobs:int ->
  ?cache:Pt.Decode_cache.t ->
  ?seeds:int ->
  Corpus.Bug.t ->
  (bug_report, string) result
(** Reproduce, diagnose, then walk the {!Patch.candidates} ladder until a
    template earns [Fixed]; the report carries every attempt.  [Error _]
    when the bug will not reproduce.  Emits [fix/fixed], [fix/not_fixed]
    and [fix/regressed] counters into the ambient {!Obs.Scope}. *)

val fix_all :
  ?jobs:int ->
  ?sweep_jobs:int ->
  ?cache:Pt.Decode_cache.t ->
  ?seeds:int ->
  Corpus.Bug.t list ->
  (string * (bug_report, string) result) list
(** [fix_bug] over a bug list, tagged by bug id, in input order.
    [sweep_jobs] fans one bug per pool lane (nested decode pinned
    sequential, private telemetry scopes merged in input order), so the
    parallel sweep returns exactly the sequential sweep's list. *)

type summary = {
  bugs : int;
  fixed : int;
  not_fixed : int;
  regressed : int;
  errors : int;
  fix_rate : float;  (** fixed / all bugs, reproduction failures included *)
  by_kind : (string * int * int) list;  (** kind, fixed, total *)
  total_runs : int;
  total_secs : float;
  seeds_per_sec : float;
}

val summarize : (string * (bug_report, string) result) list -> summary

val to_json : (string * (bug_report, string) result) list -> Obs.Json.t
(** The [BENCH_fix.json] document: summary block (fix rate overall and
    per bug kind, validation seeds/sec) plus per-bug verdicts and
    attempt ladders. *)
