module Core = Snorlax_core

(* Pattern-directed patch templates, in the spirit of the SHB-based
   context-extractor fixer (PAPERS.md): each bug class maps to a small
   IR transformation applied to a *fresh* build of the bug program
   (builds are deterministic, so the diagnosis' iids resolve in the new
   module), leaving every original instruction and iid intact.

   - Atomicity: a new mutex held across the local..anchor window, with
     the remote access bracketed by the same mutex, so the remote can no
     longer land between the two local accesses (it may still run
     entirely before or after — those are the legal serializations).
   - Order: a flag + condvar; the anchor side signals after the anchor
     executes, the remote side waits for the flag first, turning the
     diagnosed "remote must not precede anchor" into an enforced edge.
   - Deadlock: a gate mutex acquired before each side's held lock and
     released after its attempted lock; the gate is strictly outermost,
     so the crossed acquisition windows serialize and the cycle cannot
     close. *)

type template =
  | Lock_region
  | Lock_function
  | Signal_wait
  | Signal_at_exit
  | Gate_serialize

let template_name = function
  | Lock_region -> "lock-region"
  | Lock_function -> "lock-function"
  | Signal_wait -> "signal-wait"
  | Signal_at_exit -> "signal-at-exit"
  | Gate_serialize -> "gate-serialize"

(* Candidate ladder per bug class, most surgical first; validation tries
   them in order and keeps the first one the oracle accepts. *)
let candidates (p : Core.Patterns.t) =
  match p with
  | Core.Patterns.Atomicity _ -> [ Lock_region; Lock_function ]
  | Core.Patterns.Order _ -> [ Signal_wait; Signal_at_exit ]
  | Core.Patterns.Deadlock_cycle _ -> [ Gate_serialize ]

type t = {
  template : template;
  mutex_global : string;
  touched_funcs : string list;
  description : string;
}

let ( let* ) = Result.bind

let lock_kind g =
  Lir.Instr.Call
    { dst = None; callee = Lir.Intrinsics.mutex_lock;
      args = [ Lir.Value.Global g ] }

let unlock_kind g =
  Lir.Instr.Call
    { dst = None; callee = Lir.Intrinsics.mutex_unlock;
      args = [ Lir.Value.Global g ] }

let locate_checked m iid =
  match Lir.Rewrite.locate m ~iid with
  | loc -> Ok loc
  | exception Not_found -> Error (Printf.sprintf "iid %d not in module" iid)

(* --- region bracketing ----------------------------------------------------

   The window [first..last] (same function) gets the mutex: lock right
   before [first], unlock right after [last], and a trampoline unlock on
   every edge that leaves the window early.  The window must be a
   single-entry, re-entry-free path region, otherwise a run could lock
   twice (relock) or unlock twice (unlock-free) — both fail-stop — so
   unsafe shapes are rejected here and the caller falls back to a coarser
   template; the oracle sweep referees whatever we emit. *)

(* Blocks on [from_] → [to_] paths: forward growth that stops expanding
   at [to_] intersected with backward growth that stops at [from_].
   Stopping at the endpoints keeps surrounding loop headers (reached only
   through the back edge after [to_], or feeding [from_] from above) out
   of the region — the window is one traversal of the path, not the whole
   loop. *)
let region_labels cfg ~from_ ~to_ =
  let grow next stop seed =
    let seen = Hashtbl.create 16 in
    Hashtbl.replace seen seed ();
    let rec go = function
      | [] -> ()
      | l :: rest ->
        let expand = if String.equal l stop then [] else next l in
        let fresh =
          List.filter (fun s -> not (Hashtbl.mem seen s)) expand
        in
        List.iter (fun s -> Hashtbl.replace seen s ()) fresh;
        go (fresh @ rest)
    in
    go [ seed ];
    seen
  in
  let fwd = grow (Lir.Cfg.successors cfg) to_ from_ in
  let bwd = grow (Lir.Cfg.predecessors cfg) from_ to_ in
  if not (Hashtbl.mem fwd to_) then None
  else
    Some
      (Hashtbl.fold
         (fun l () acc -> if Hashtbl.mem bwd l then l :: acc else acc)
         fwd [])

(* Just the label set a bracket would occupy, for overlap pre-checks. *)
let bracket_footprint m ~first_iid ~last_iid =
  let* f1, b1, _ = locate_checked m first_iid in
  let* f2, b2, _ = locate_checked m last_iid in
  if not (String.equal f1.Lir.Func.fname f2.Lir.Func.fname) then
    Error "window spans two functions"
  else if String.equal b1.Lir.Block.label b2.Lir.Block.label then
    Ok (f1.Lir.Func.fname, [ b1.Lir.Block.label ])
  else
    let cfg = Lir.Cfg.of_func f1 in
    match region_labels cfg ~from_:b1.Lir.Block.label ~to_:b2.Lir.Block.label with
    | None -> Error "last not reachable from first"
    | Some region -> Ok (f1.Lir.Func.fname, region)

let bracket_region m ~mutex ~first_iid ~last_iid =
  let* f1, b1, i1 = locate_checked m first_iid in
  let* f2, b2, i2 = locate_checked m last_iid in
  let last_instr = List.nth b2.Lir.Block.instrs i2 in
  if not (String.equal f1.Lir.Func.fname f2.Lir.Func.fname) then
    Error "window spans two functions"
  else if Lir.Instr.is_terminator last_instr then
    Error "window ends on a terminator"
  else if String.equal b1.Lir.Block.label b2.Lir.Block.label then
    if i1 > i2 then Error "window reversed within its block"
    else begin
      ignore (Lir.Rewrite.insert_before m ~iid:first_iid [ lock_kind mutex ]);
      ignore (Lir.Rewrite.insert_after m ~iid:last_iid [ unlock_kind mutex ]);
      Ok [ b1.Lir.Block.label ]
    end
  else begin
    let cfg = Lir.Cfg.of_func f1 in
    let l1 = b1.Lir.Block.label and l2 = b2.Lir.Block.label in
    match region_labels cfg ~from_:l1 ~to_:l2 with
    | None -> Error "anchor not reachable from the window start"
    | Some region ->
      let in_region l = List.mem l region in
      let side_entry =
        List.exists
          (fun v ->
            (not (String.equal v l1))
            && List.exists
                 (fun p -> not (in_region p))
                 (Lir.Cfg.predecessors cfg v))
          region
      in
      let reenters_start =
        List.exists in_region (Lir.Cfg.predecessors cfg l1)
      in
      let cycles_through_end =
        List.exists in_region (Lir.Cfg.successors cfg l2)
      in
      if side_entry then Error "window has a side entry (lock could be skipped)"
      else if reenters_start then
        Error "window re-enters its start (would relock)"
      else if cycles_through_end then
        Error "window cycles through its end (would unlock twice)"
      else begin
        ignore (Lir.Rewrite.insert_before m ~iid:first_iid [ lock_kind mutex ]);
        ignore (Lir.Rewrite.insert_after m ~iid:last_iid [ unlock_kind mutex ]);
        (* Early exits: trampoline unlocks on region-leaving edges, and a
           plain unlock before any in-region return. *)
        List.iter
          (fun u ->
            if not (String.equal u l2) then begin
              let ub = Lir.Func.find_block f1 u in
              let term = Lir.Block.terminator ub in
              match term.Lir.Instr.kind with
              | Lir.Instr.Ret _ ->
                ignore
                  (Lir.Rewrite.insert_before m ~iid:term.Lir.Instr.iid
                     [ unlock_kind mutex ])
              | _ ->
                List.iter
                  (fun v ->
                    if not (in_region v) then begin
                      let tramp =
                        Lir.Rewrite.fresh_label f1 ~base:("__fix_exit_" ^ u)
                      in
                      ignore
                        (Lir.Rewrite.append_block m f1 ~label:tramp
                           [ unlock_kind mutex; Lir.Instr.Br v ]);
                      Lir.Rewrite.retarget m ub ~from_:v ~to_:tramp
                    end)
                  (List.sort_uniq compare (Lir.Block.successors ub))
            end)
          region;
        Ok region
      end
  end

(* Whole-function bracket: lock on entry, unlock before every return.
   Coarse — it serializes complete executions of the function — but safe
   for straight-line shapes the surgical region rejects; validation
   decides whether the coarseness regressed anything (e.g. a blocking
   wait inside the bracket). *)
let bracket_function m ~mutex fname =
  match Lir.Irmod.find_func m fname with
  | exception Not_found -> Error ("no function " ^ fname)
  | f ->
    let entry = Lir.Func.entry f in
    (match entry.Lir.Block.instrs with
    | [] -> Error (fname ^ " has an empty entry block")
    | first :: _ ->
      ignore
        (Lir.Rewrite.insert_before m ~iid:first.Lir.Instr.iid
           [ lock_kind mutex ]);
      List.iter
        (fun b ->
          let term = Lir.Block.terminator b in
          match term.Lir.Instr.kind with
          | Lir.Instr.Ret _ ->
            ignore
              (Lir.Rewrite.insert_before m ~iid:term.Lir.Instr.iid
                 [ unlock_kind mutex ])
          | _ -> ())
        f.Lir.Func.blocks;
      Ok ())

let bracket_single m ~mutex iid =
  let* _, _, _ = locate_checked m iid in
  let _, b, at = Lir.Rewrite.locate m ~iid in
  if Lir.Instr.is_terminator (List.nth b.Lir.Block.instrs at) then
    Error "cannot bracket a terminator"
  else begin
    ignore (Lir.Rewrite.insert_before m ~iid [ lock_kind mutex ]);
    ignore (Lir.Rewrite.insert_after m ~iid [ unlock_kind mutex ]);
    Ok ()
  end

(* --- order enforcement ----------------------------------------------------

   Signal side: flag := 1 + broadcast, under the fix mutex.
   Wait side: split the remote's block right before the remote access and
   park on the condvar until the flag is up.  The flag is never cleared,
   so loops pass straight through once the anchor has run. *)

let signal_kinds ~mutex ~flag ~cond =
  [
    lock_kind mutex;
    Lir.Instr.Store
      { value = Lir.Value.i64 1; ptr = Lir.Value.Global flag };
    Lir.Instr.Call
      { dst = None; callee = Lir.Intrinsics.cond_broadcast;
        args = [ Lir.Value.Global cond ] };
    unlock_kind mutex;
  ]

let insert_wait_before m ~mutex ~flag ~cond iid =
  let* f, _, _ = locate_checked m iid in
  let cont_label = Lir.Rewrite.fresh_label f ~base:"__fix_cont" in
  let prefix, _cont = Lir.Rewrite.split_before m ~iid ~label:cont_label in
  let check_label = Lir.Rewrite.fresh_label f ~base:"__fix_check" in
  let wait_label = Lir.Rewrite.fresh_label f ~base:"__fix_wait" in
  let done_label = Lir.Rewrite.fresh_label f ~base:"__fix_done" in
  let r = Lir.Irmod.fresh_reg m ~name:"__fix_flag" ~ty:Lir.Ty.I64 in
  let c = Lir.Irmod.fresh_reg m ~name:"__fix_set" ~ty:Lir.Ty.I1 in
  ignore
    (Lir.Rewrite.append_block m f ~label:check_label
       [
         Lir.Instr.Load { dst = r; ptr = Lir.Value.Global flag };
         Lir.Instr.Icmp
           { dst = c; cmp = Lir.Instr.Ne; lhs = Lir.Value.Reg r;
             rhs = Lir.Value.i64 0 };
         Lir.Instr.Cond_br
           { cond = Lir.Value.Reg c; then_ = done_label; else_ = wait_label };
       ]);
  ignore
    (Lir.Rewrite.append_block m f ~label:wait_label
       [
         Lir.Instr.Call
           { dst = None; callee = Lir.Intrinsics.cond_wait;
             args = [ Lir.Value.Global cond; Lir.Value.Global mutex ] };
         Lir.Instr.Br check_label;
       ]);
  ignore
    (Lir.Rewrite.append_block m f ~label:done_label
       [ unlock_kind mutex; Lir.Instr.Br cont_label ]);
  let lock_label = Lir.Rewrite.fresh_label f ~base:"__fix_lock" in
  ignore
    (Lir.Rewrite.append_block m f ~label:lock_label
       [ lock_kind mutex; Lir.Instr.Br check_label ]);
  Lir.Rewrite.retarget m prefix ~from_:cont_label ~to_:lock_label;
  Ok f.Lir.Func.fname

(* --- synthesis ------------------------------------------------------------ *)

let check_wellformed m =
  match Lir.Verify.check m with
  | [] -> Ok ()
  | errors ->
    Error
      ("patched module fails verification: "
      ^ String.concat "; "
          (List.map
             (fun { Lir.Verify.where; what } -> where ^ ": " ^ what)
             errors))

let fname_of m iid =
  let* f, _, _ = locate_checked m iid in
  Ok f.Lir.Func.fname

let synthesize ~m ~(pattern : Core.Patterns.t) template =
  let result =
    match (pattern, template) with
    | Core.Patterns.Atomicity { local_iid; remote_iid; anchor_iid; _ },
      Lock_region ->
      let mutex = Lir.Rewrite.fresh_global m ~base:"__fix_mutex" Lir.Ty.I64 in
      let* region = bracket_region m ~mutex ~first_iid:local_iid ~last_iid:anchor_iid in
      let* f_local = fname_of m local_iid in
      let* f_remote, b_remote, _ = locate_checked m remote_iid in
      let remote_covered =
        String.equal f_remote.Lir.Func.fname f_local
        && List.mem b_remote.Lir.Block.label region
      in
      let* () =
        if remote_covered then Ok ()
        else bracket_single m ~mutex remote_iid
      in
      Ok
        ( mutex,
          [ f_local; f_remote.Lir.Func.fname ],
          Printf.sprintf
            "mutex @%s across local..anchor window (%d..%d)%s" mutex local_iid
            anchor_iid
            (if remote_covered then "" else
               Printf.sprintf ", bracketing remote %d" remote_iid) )
    | Core.Patterns.Atomicity { local_iid; remote_iid; anchor_iid; _ },
      Lock_function ->
      let* f_local = fname_of m local_iid in
      let* f_anchor = fname_of m anchor_iid in
      if not (String.equal f_local f_anchor) then
        Error "local and anchor in different functions"
      else begin
        let mutex = Lir.Rewrite.fresh_global m ~base:"__fix_mutex" Lir.Ty.I64 in
        let* () = bracket_function m ~mutex f_local in
        let* f_remote = fname_of m remote_iid in
        let* () =
          if String.equal f_remote f_local then Ok ()
          else bracket_single m ~mutex remote_iid
        in
        Ok
          ( mutex,
            [ f_local; f_remote ],
            Printf.sprintf "mutex @%s over all of %s, bracketing remote %d"
              mutex f_local remote_iid )
      end
    | Core.Patterns.Order { remote_iid; anchor_iid; _ }, Signal_wait ->
      let mutex = Lir.Rewrite.fresh_global m ~base:"__fix_mutex" Lir.Ty.I64 in
      let flag = Lir.Rewrite.fresh_global m ~base:"__fix_done" Lir.Ty.I64 in
      let cond = Lir.Rewrite.fresh_global m ~base:"__fix_cond" Lir.Ty.I64 in
      let* _, _, _ = locate_checked m anchor_iid in
      let anchor_instr = Lir.Irmod.instr_by_iid m anchor_iid in
      let* () =
        if Lir.Instr.is_terminator anchor_instr then
          Error "anchor is a terminator"
        else Ok ()
      in
      ignore
        (Lir.Rewrite.insert_after m ~iid:anchor_iid
           (signal_kinds ~mutex ~flag ~cond));
      let* f_anchor = fname_of m anchor_iid in
      let* f_remote = insert_wait_before m ~mutex ~flag ~cond remote_iid in
      Ok
        ( mutex,
          [ f_anchor; f_remote ],
          Printf.sprintf
            "signal @%s after anchor %d, wait before remote %d" flag
            anchor_iid remote_iid )
    | Core.Patterns.Order { remote_iid; anchor_iid; _ }, Signal_at_exit ->
      let mutex = Lir.Rewrite.fresh_global m ~base:"__fix_mutex" Lir.Ty.I64 in
      let flag = Lir.Rewrite.fresh_global m ~base:"__fix_done" Lir.Ty.I64 in
      let cond = Lir.Rewrite.fresh_global m ~base:"__fix_cond" Lir.Ty.I64 in
      let* f_anchor = fname_of m anchor_iid in
      let f = Lir.Irmod.find_func m f_anchor in
      let rets =
        List.filter_map
          (fun b ->
            let t = Lir.Block.terminator b in
            match t.Lir.Instr.kind with
            | Lir.Instr.Ret _ -> Some t.Lir.Instr.iid
            | _ -> None)
          f.Lir.Func.blocks
      in
      let* () = if rets = [] then Error "anchor function never returns" else Ok () in
      List.iter
        (fun iid ->
          ignore
            (Lir.Rewrite.insert_before m ~iid
               (signal_kinds ~mutex ~flag ~cond)))
        rets;
      let* f_remote = insert_wait_before m ~mutex ~flag ~cond remote_iid in
      Ok
        ( mutex,
          [ f_anchor; f_remote ],
          Printf.sprintf
            "signal @%s at exits of %s, wait before remote %d" flag f_anchor
            remote_iid )
    | Core.Patterns.Deadlock_cycle { sides }, Gate_serialize ->
      let* () = if sides = [] then Error "empty deadlock cycle" else Ok () in
      (* Pre-check the windows are pairwise disjoint: overlapping windows
         in one function would nest the gate inside itself (relock). *)
      let* footprints =
        List.fold_left
          (fun acc (hold, attempt) ->
            let* acc = acc in
            let* fp = bracket_footprint m ~first_iid:hold ~last_iid:attempt in
            Ok (fp :: acc))
          (Ok []) sides
      in
      let overlap =
        let rec pairs = function
          | [] -> false
          | (fn, ls) :: rest ->
            List.exists
              (fun (fn', ls') ->
                String.equal fn fn' && List.exists (fun l -> List.mem l ls') ls)
              rest
            || pairs rest
        in
        pairs footprints
      in
      let* () =
        if overlap then Error "deadlock sides overlap in one function"
        else Ok ()
      in
      let gate = Lir.Rewrite.fresh_global m ~base:"__fix_gate" Lir.Ty.I64 in
      let* fns =
        List.fold_left
          (fun acc (hold, attempt) ->
            let* acc = acc in
            let* _ = bracket_region m ~mutex:gate ~first_iid:hold ~last_iid:attempt in
            let* fn = fname_of m hold in
            Ok (fn :: acc))
          (Ok []) sides
      in
      Ok
        ( gate,
          fns,
          Printf.sprintf
            "gate mutex @%s serializing %d crossed acquisition window(s)" gate
            (List.length sides) )
    | _, (Lock_region | Lock_function | Signal_wait | Signal_at_exit
         | Gate_serialize) ->
      Error
        (Printf.sprintf "template %s does not apply to pattern %s"
           (template_name template)
           (Core.Patterns.id pattern))
  in
  let* mutex_global, touched, description = result in
  let* () = check_wellformed m in
  Lir.Irmod.layout m;
  Ok
    {
      template;
      mutex_global;
      touched_funcs = List.sort_uniq compare touched;
      description;
    }
